/**
 * @file
 * Ablation study of the bandwidth-saving design choices the paper's
 * architecture carries (§2.2): the Hierarchical Z buffer, lossless
 * Z compression, fast clears and the post-shading vertex cache.
 * Each feature is disabled in isolation; the frame images stay
 * identical (verified by the test suite) while cycles and memory
 * traffic show the feature's value.
 */

#include <cstring>

#include "bench_common.hh"

using namespace attila;
using namespace attila::bench;

namespace
{

/**
 * Deep-overdraw scene: N full-screen layers drawn front to back
 * with the depth test on.  Behind the first layer everything is
 * hidden — exactly the case the Hierarchical Z buffer removes at
 * two 8x8 tiles per cycle.
 */
gpu::CommandList
overdrawScene(u32 layers, u32 fbW, u32 fbH)
{
    using namespace gpu;
    using C = Command;
    CommandList list;
    list.push_back(C::writeReg(Reg::FbWidth, RegValue(fbW)));
    list.push_back(C::writeReg(Reg::FbHeight, RegValue(fbH)));
    list.push_back(C::writeReg(Reg::ColorBufferAddr, RegValue(0u)));
    list.push_back(C::writeReg(Reg::ZStencilBufferAddr,
                               RegValue(fbSurfaceBytes(fbW, fbH))));
    list.push_back(C::writeReg(Reg::ViewportWidth, RegValue(fbW)));
    list.push_back(C::writeReg(Reg::ViewportHeight,
                               RegValue(fbH)));
    list.push_back(C::writeReg(Reg::ClearDepth, RegValue(1.0f)));
    list.push_back(C::writeReg(Reg::DepthTestEnable, RegValue(1u)));
    list.push_back(C::writeReg(
        Reg::DepthFunc,
        RegValue(static_cast<u32>(emu::CompareFunc::Less))));
    list.push_back(C::writeReg(Reg::DepthWriteMask, RegValue(1u)));

    emu::ShaderAssembler assembler;
    list.push_back(C::loadVertexProgram(assembler.assemble(
        "!!ARBvp1.0\nMOV result.position, vertex.attrib[0];\n"
        "MOV result.color, vertex.attrib[3];\nEND\n")));
    list.push_back(C::loadFragmentProgram(assembler.assemble(
        "!!ARBfp1.0\nMOV result.color, fragment.color;\nEND\n")));

    // One full-screen triangle per layer, z increasing.
    std::vector<emu::Vec4> positions;
    std::vector<emu::Vec4> colors;
    for (u32 l = 0; l < layers; ++l) {
        const f32 z = -0.9f + 1.6f * static_cast<f32>(l) / layers;
        positions.push_back({-1, -1, z, 1});
        positions.push_back({3, -1, z, 1});
        positions.push_back({-1, 3, z, 1});
        const f32 c = static_cast<f32>(l + 1) / layers;
        for (u32 v = 0; v < 3; ++v)
            colors.push_back({c, 1.0f - c, 0.3f, 1.0f});
    }
    std::vector<u8> pos(positions.size() * 16);
    std::memcpy(pos.data(), positions.data(), pos.size());
    list.push_back(C::writeBuffer(0x400000, std::move(pos)));
    std::vector<u8> col(colors.size() * 16);
    std::memcpy(col.data(), colors.data(), col.size());
    list.push_back(C::writeBuffer(0x500000, std::move(col)));
    for (u32 attr : {0u, 3u}) {
        list.push_back(C::writeReg(Reg::StreamEnable, RegValue(1u),
                                   attr));
        list.push_back(C::writeReg(
            Reg::StreamAddress,
            RegValue(attr == 0 ? 0x400000u : 0x500000u), attr));
        list.push_back(C::writeReg(Reg::StreamStride, RegValue(16u),
                                   attr));
        list.push_back(C::writeReg(
            Reg::StreamFormat_,
            RegValue(static_cast<u32>(StreamFormat::Float4)),
            attr));
    }
    list.push_back(C::clearColor());
    list.push_back(C::clearZStencil());
    for (u32 l = 0; l < layers; ++l)
        list.push_back(C::drawBatch(Primitive::Triangles, 3, l * 3));
    list.push_back(C::swap());
    return list;
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    parseArgs(argc, argv);
    setBench("ablations");
    printHeader("Ablations: HZ / Z-compression / fast clear /"
                " vertex cache");

    auto params = benchParams(/*frames=*/2);
    workloads::ShadowsWorkload shadows(params);
    const gpu::CommandList commands = buildCommands(shadows);

    struct Variant
    {
        const char* name;
        gpu::GpuConfig config;
    };
    std::vector<Variant> variants;
    variants.push_back({"baseline", gpu::GpuConfig::baseline()});
    {
        gpu::GpuConfig config;
        config.hzEnabled = false;
        variants.push_back({"no hierarchical Z", config});
    }
    {
        gpu::GpuConfig config;
        config.zCompression = false;
        variants.push_back({"no Z compression", config});
    }
    {
        gpu::GpuConfig config;
        config.fastClear = false;
        variants.push_back({"no fast clear", config});
    }
    {
        gpu::GpuConfig config;
        config.vertexCacheEntries = 0;
        variants.push_back({"no vertex cache", config});
    }
    {
        // Paper §7 extension: double-rate Z for depth-only passes.
        gpu::GpuConfig config;
        config.doubleRateZ = true;
        variants.push_back({"double-rate Z", config});
    }
    {
        // Paper §7 extension: uniform-tile colour compression.
        gpu::GpuConfig config;
        config.colorCompression = true;
        variants.push_back({"color compression", config});
    }

    std::cout << std::left << std::setw(22) << "variant"
              << std::setw(12) << "cycles" << std::setw(12)
              << "rel. time" << std::setw(16) << "mem bytes"
              << std::setw(14) << "z-mem bytes" << "HZ culled\n";
    u64 baseCycles = 0;
    for (const Variant& variant : variants) {
        const RunResult result =
            run(commands, variant.config, params.frames);
        if (baseCycles == 0)
            baseCycles = result.cycles;
        u64 zBytes = 0;
        for (u32 i = 0; i < variant.config.numRops; ++i) {
            zBytes += result.stat("MemoryController.mc.zcache" +
                                  std::to_string(i) + ".bytes");
        }
        const u64 memBytes =
            result.stat("MemoryController.readBytes") +
            result.stat("MemoryController.writeBytes");
        std::cout << std::left << std::setw(22) << variant.name
                  << std::setw(12) << result.cycles << std::setw(11)
                  << std::fixed << std::setprecision(2)
                  << static_cast<f64>(result.cycles) /
                         static_cast<f64>(baseCycles)
                  << "x" << std::setw(16) << memBytes
                  << std::setw(14) << zBytes
                  << result.stat("HierarchicalZ.tilesCulled")
                  << "\n";
    }
    std::cout << "\nShape: each disabled feature costs memory"
                 " bandwidth (Z bytes for compression/fast clear)"
                 " or cycles (HZ culling, vertex cache reuse);"
                 " double-rate Z buys cycles back on the"
                 " stencil-volume passes.\n";

    // The Hierarchical Z buffer under deep overdraw (front-to-back
    // layers): the scenario it exists for.
    {
        const auto scene = overdrawScene(24, 192, 192);
        gpu::GpuConfig on;
        gpu::GpuConfig off;
        off.hzEnabled = false;
        const RunResult withHz = run(scene, on, 1);
        const RunResult withoutHz = run(scene, off, 1);
        std::cout << "\nHZ under 24x front-to-back overdraw: "
                  << withHz.cycles << " cycles with HZ ("
                  << withHz.stat("HierarchicalZ.tilesCulled")
                  << " tiles culled) vs " << withoutHz.cycles
                  << " without (" << std::fixed
                  << std::setprecision(2)
                  << static_cast<f64>(withoutHz.cycles) /
                         static_cast<f64>(withHz.cycles)
                  << "x)\n";
    }

    // Paper §7 extension: single-pass two-sided stencil volumes.
    {
        auto tsParams = params;
        tsParams.twoSidedVolumes = true;
        workloads::ShadowsWorkload twoSided(tsParams);
        const RunResult result = run(buildCommands(twoSided),
                                     gpu::GpuConfig::baseline(),
                                     tsParams.frames);
        std::cout << "\nTwo-sided stencil volumes (single pass): "
                  << result.cycles << " cycles ("
                  << std::fixed << std::setprecision(2)
                  << static_cast<f64>(result.cycles) /
                         static_cast<f64>(baseCycles)
                  << "x baseline, which draws each volume twice"
                     " per pass)\n";
    }
    return 0;
}

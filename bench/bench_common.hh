/**
 * @file
 * Shared harness for the benchmark binaries that regenerate the
 * paper's tables and figures (see DESIGN.md §3 and EXPERIMENTS.md).
 */

#ifndef ATTILA_BENCH_COMMON_HH
#define ATTILA_BENCH_COMMON_HH

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "gl/context.hh"
#include "gpu/gpu.hh"
#include "sim/config_file.hh"
#include "sim/event_trace.hh"
#include "sim/out_dir.hh"
#include "sim/trace_export.hh"
#include "workloads/cubes.hh"
#include "workloads/shadows.hh"
#include "workloads/terrain.hh"

namespace attila::bench
{

/** Binary-wide benchmark name used in the BENCH_JSON lines; set it
 * once at the top of each bench's main(). */
inline std::string&
benchName()
{
    static std::string name = "bench";
    return name;
}

inline void
setBench(const std::string& name)
{
    benchName() = name;
}

/** Command-line overrides shared by every bench binary.  Unset
 * optionals leave the workload's own config (and any environment
 * overrides) untouched. */
struct BenchOptions
{
    std::optional<gpu::SchedulerKind> scheduler;
    std::optional<u32> threads; ///< 0 = auto (hardware threads).
    std::optional<bool> workSteal;
    std::optional<bool> idleSkip;
    std::optional<bool> emuFastPath;
    std::optional<bool> memFastPath;
    std::optional<bool> eventTrace;
    std::optional<std::string> configFile; ///< --config <file>.
    std::vector<std::string> sets;         ///< --set key=value, in order.
};

inline BenchOptions&
options()
{
    static BenchOptions opts;
    return opts;
}

/**
 * Consume the shared bench flags from argv, compacting the array in
 * place so downstream parsers (google-benchmark's Initialize) only
 * see their own `--benchmark_*` flags and positional arguments.
 * Exits with a diagnostic on a malformed value or an unrecognised
 * `--flag`.
 */
inline void
parseArgs(int& argc, char** argv)
{
    const auto bad = [](const std::string& arg) {
        std::cerr << "error: bad bench flag '" << arg << "'\n"
                  << "usage: --scheduler=serial|parallel "
                     "--threads=N (0 = auto) --work-steal=0|1 "
                     "--idle-skip=0|1 "
                     "--emu-fastpath=0|1 --mem-fastpath=0|1 "
                     "--event-trace[=0|1] "
                     "--config <file> --set section.key=value\n";
        std::exit(2);
    };
    // Value of `--flag=v` or the following argv slot (`--flag v`).
    const auto valueOf = [&](const std::string& flag, int& i,
                             const std::string& arg) {
        if (arg.size() > flag.size() && arg[flag.size()] == '=')
            return arg.substr(flag.size() + 1);
        if (i + 1 >= argc)
            bad(arg);
        return std::string(argv[++i]);
    };
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--scheduler=", 0) == 0) {
            const std::string v = arg.substr(12);
            const auto kind =
                gpu::enumFromName<gpu::SchedulerKind>(v);
            if (!kind)
                bad(arg);
            options().scheduler = *kind;
        } else if (arg == "--config" ||
                   arg.rfind("--config=", 0) == 0) {
            options().configFile = valueOf("--config", i, arg);
        } else if (arg == "--set" || arg.rfind("--set=", 0) == 0) {
            const std::string v = valueOf("--set", i, arg);
            if (v.find('=') == std::string::npos)
                bad(arg);
            options().sets.push_back(v);
        } else if (arg.rfind("--threads=", 0) == 0) {
            // 0 is valid and means "auto": resolve to the hardware
            // thread count (mirrors ATTILA_SCHED_THREADS=0).
            const std::string v = arg.substr(10);
            char* end = nullptr;
            const unsigned long n = std::strtoul(v.c_str(), &end, 10);
            if (v.empty() || *end != '\0')
                bad(arg);
            options().threads = static_cast<u32>(n);
        } else if (arg.rfind("--work-steal=", 0) == 0) {
            const std::string v = arg.substr(13);
            if (v == "1" || v == "true" || v == "on")
                options().workSteal = true;
            else if (v == "0" || v == "false" || v == "off")
                options().workSteal = false;
            else
                bad(arg);
        } else if (arg.rfind("--idle-skip=", 0) == 0) {
            const std::string v = arg.substr(12);
            if (v == "1" || v == "true" || v == "on")
                options().idleSkip = true;
            else if (v == "0" || v == "false" || v == "off")
                options().idleSkip = false;
            else
                bad(arg);
        } else if (arg.rfind("--emu-fastpath=", 0) == 0) {
            const std::string v = arg.substr(15);
            if (v == "1" || v == "true" || v == "on")
                options().emuFastPath = true;
            else if (v == "0" || v == "false" || v == "off")
                options().emuFastPath = false;
            else
                bad(arg);
        } else if (arg.rfind("--mem-fastpath=", 0) == 0) {
            const std::string v = arg.substr(15);
            if (v == "1" || v == "true" || v == "on")
                options().memFastPath = true;
            else if (v == "0" || v == "false" || v == "off")
                options().memFastPath = false;
            else
                bad(arg);
        } else if (arg == "--event-trace" ||
                   arg.rfind("--event-trace=", 0) == 0) {
            if (arg == "--event-trace") {
                options().eventTrace = true;
            } else {
                const std::string v = arg.substr(14);
                if (v == "1" || v == "true" || v == "on")
                    options().eventTrace = true;
                else if (v == "0" || v == "false" || v == "off")
                    options().eventTrace = false;
                else
                    bad(arg);
            }
        } else if (arg.rfind("--benchmark_", 0) == 0) {
            // google-benchmark's own flags pass through untouched.
            argv[out++] = argv[i];
        } else if (arg.rfind("--", 0) == 0 && arg.size() > 2) {
            bad(arg);
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
}

/**
 * Apply the parsed overrides to a run's config.  Layering order
 * (later wins): workload defaults < `--config` file < `ATTILA_*`
 * environment < discrete flags < `--set` assignments.  Environment
 * overrides are consumed here, so the Gpu constructor sees
 * `envApplied` and does not re-apply them on top.
 */
inline void
applyOptions(gpu::GpuConfig& config)
{
    try {
        if (options().configFile)
            config.applyFile(*options().configFile);
        config.applyEnvOverrides();
        if (options().scheduler)
            config.scheduler = *options().scheduler;
        if (options().threads)
            config.schedulerThreads = *options().threads;
        if (options().workSteal)
            config.schedWorkSteal = *options().workSteal;
        if (options().idleSkip)
            config.idleSkip = *options().idleSkip;
        if (options().emuFastPath)
            config.emuFastPath = *options().emuFastPath;
        if (options().memFastPath)
            config.memFastPath = *options().memFastPath;
        if (options().eventTrace)
            config.eventTrace = *options().eventTrace;
        for (const std::string& assignment : options().sets)
            config.applySet(assignment);
    } catch (const sim::ConfigError& e) {
        std::cerr << "error: " << e.what() << "\n";
        std::exit(2);
    }
}

/** Outcome of one simulated run. */
struct RunResult
{
    u64 cycles = 0;
    u32 frames = 0;
    f64 wallSeconds = 0.0;
    std::unique_ptr<gpu::Gpu> gpu;

    /** Wall-clock simulation speed in simulated kilocycles per
     * second of host time. */
    f64
    simKHz() const
    {
        if (wallSeconds <= 0.0)
            return 0.0;
        return static_cast<f64>(cycles) / wallSeconds / 1e3;
    }

    /** Frames per second at the configured clock. */
    f64
    fps() const
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<f64>(frames) *
               static_cast<f64>(gpu->config().clockMHz) * 1e6 /
               static_cast<f64>(cycles);
    }

    u64
    stat(const std::string& name) const
    {
        const sim::Statistic* s = gpu->stats().find(name);
        return s ? s->total() : 0;
    }

    /** Sum a statistic over unit instances 0..count-1. */
    u64
    statSum(const std::string& prefix, u32 count,
            const std::string& suffix) const
    {
        u64 total = 0;
        for (u32 i = 0; i < count; ++i) {
            total += stat(prefix + std::to_string(i) + "." + suffix);
        }
        return total;
    }
};

/** Build a workload's command stream. */
inline gpu::CommandList
buildCommands(workloads::Workload& workload)
{
    const workloads::WorkloadParams& params = workload.params();
    gl::Context ctx(params.width, params.height, 64u << 20);
    workload.setup(ctx);
    for (u32 f = 0; f < params.frames; ++f)
        workload.renderFrame(ctx, f);
    return ctx.takeCommands();
}

/**
 * One machine-readable line per run, greppable as ^BENCH_JSON.  The
 * scheduler fields reflect the effective config (after environment
 * overrides), so speedup sweeps can be driven externally.
 */
/** Sixteen-digit hex rendering of GpuConfig::configHash(), the
 * scenario identity carried on every BENCH_JSON line. */
inline std::string
configHashHex(const gpu::GpuConfig& config)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0')
       << config.configHash();
    return os.str();
}

inline void
emitJson(const std::string& label, const RunResult& result)
{
    const gpu::GpuConfig& c = result.gpu->config();
    std::cout << "BENCH_JSON {\"bench\":\"" << benchName()
              << "\",\"label\":\"" << label
              << "\",\"cycles\":" << result.cycles
              << ",\"frames\":" << result.frames << ",\"fps\":"
              << std::fixed << std::setprecision(3) << result.fps()
              << ",\"wall_s\":" << std::setprecision(6)
              << result.wallSeconds << ",\"khz\":"
              << std::setprecision(3) << result.simKHz()
              << ",\"scheduler\":\"" << gpu::enumName(c.scheduler)
              << "\",\"threads\":" << c.schedulerThreads
              << ",\"threads_resolved\":"
              << result.gpu->simulator().scheduler().threadCount()
              << ",\"work_steal\":"
              << (c.schedWorkSteal ? "true" : "false")
              << ",\"idle_skip\":" << (c.idleSkip ? "true" : "false")
              << ",\"emu_fastpath\":"
              << (c.emuFastPath ? "true" : "false")
              << ",\"mem_fastpath\":"
              << (c.memFastPath ? "true" : "false")
              << ",\"event_trace\":"
              << (c.eventTrace ? "true" : "false")
              << ",\"mem_model\":\"" << gpu::enumName(c.memModel)
              << "\",\"dram_scheduler\":\""
              << gpu::enumName(c.dramScheduler)
              << "\",\"config_hash\":\"" << configHashHex(c)
              << "\"}\n"
              << std::defaultfloat;
}

/** Supplementary machine-readable line carrying a cache's hit/miss
 * counters alongside the run's wall-clock speed, so the CI A/B can
 * assert identical cache behaviour as well as identical cycles. */
inline void
emitCacheJson(const std::string& label, const RunResult& result,
              u64 hits, u64 misses)
{
    const f64 rate =
        hits + misses ? static_cast<f64>(hits) * 100.0 /
                            static_cast<f64>(hits + misses)
                      : 0.0;
    std::cout << "BENCH_JSON {\"bench\":\"" << benchName()
              << "\",\"label\":\"" << label << "\",\"hits\":" << hits
              << ",\"misses\":" << misses << ",\"hit_rate\":"
              << std::fixed << std::setprecision(3) << rate
              << ",\"khz\":" << result.simKHz() << "}\n"
              << std::defaultfloat;
}

/**
 * After a traced run: collect the events, export the binary trace
 * and the Chrome-tracing JSON to out/, aggregate per statistics
 * window and cross-check against the StatisticManager.  A mismatch
 * is a correctness failure (the trace no longer agrees with the
 * independently collected statistics) and exits non-zero.  Runs
 * after the timing stop, so the <5% overhead budget covers recording
 * only — export cost is paid once, off the clock.
 */
inline void
exportEventTrace(const std::string& label, RunResult& result)
{
    sim::EventTraceData data =
        result.gpu->simulator().finishEventTrace();
    std::string stem = benchName() + "_" + label;
    for (char& c : stem) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    const std::string binPath = sim::outPath(stem + ".evtrace");
    const std::string jsonPath = sim::outPath(stem + ".trace.json");
    const u64 window =
        std::max<u64>(1, result.gpu->config().statsWindow);
    sim::writeEventTraceBinary(data, binPath);
    sim::writeChromeTraceJson(data, window, jsonPath);
    const sim::TraceSeries series = sim::aggregateTrace(data, window);
    const auto mismatches =
        sim::crossCheckStats(series, result.gpu->stats());
    std::cout << "BENCH_JSON {\"bench\":\"" << benchName()
              << "\",\"label\":\"" << label
              << "/event_trace\",\"events\":" << data.events.size()
              << ",\"dropped\":" << data.dropped
              << ",\"series\":" << series.counts.size()
              << ",\"match\":"
              << (mismatches.empty() ? "true" : "false")
              << ",\"json\":\"" << jsonPath << "\"}\n";
    if (!mismatches.empty()) {
        std::cerr << "error: event trace disagrees with statistics ("
                  << mismatches.size() << " mismatches):\n";
        for (std::size_t i = 0;
             i < std::min<std::size_t>(mismatches.size(), 10); ++i)
            std::cerr << "  " << mismatches[i] << "\n";
        std::exit(1);
    }
}

/** Run @p commands on a GPU with @p config.  Every run is timed and
 * reported as a BENCH_JSON line tagged with @p label. */
inline RunResult
run(const gpu::CommandList& commands, gpu::GpuConfig config,
    u32 frames, const std::string& label = "run")
{
    config.memorySize = 64u << 20;
    applyOptions(config);
    RunResult result;
    result.gpu = std::make_unique<gpu::Gpu>(config);
    result.gpu->dac().setKeepLastOnly(true);
    result.gpu->submit(commands);
    const auto start = std::chrono::steady_clock::now();
    if (!result.gpu->runUntilIdle(2'000'000'000ull)) {
        std::cerr << "warning: pipeline did not drain\n";
    }
    const auto stop = std::chrono::steady_clock::now();
    result.wallSeconds =
        std::chrono::duration<f64>(stop - start).count();
    result.cycles = result.gpu->cycle();
    result.frames = frames;
    emitJson(label, result);
    if (sim::kEventTraceCompiled &&
        result.gpu->simulator().eventTrace()) {
        exportEventTrace(label, result);
    }
    return result;
}

/** The reduced-scale stand-ins for the paper's game traces. */
inline workloads::WorkloadParams
benchParams(u32 frames = 2, u32 size = 192, u32 aniso = 8)
{
    workloads::WorkloadParams params;
    params.width = size;
    params.height = size;
    params.frames = frames;
    params.textureSize = 64;
    params.anisotropy = aniso;
    params.detail = 8;
    return params;
}

inline void
printHeader(const std::string& title)
{
    std::cout << "\n==== " << title << " ====\n";
}

} // namespace attila::bench

#endif // ATTILA_BENCH_COMMON_HH

/**
 * @file
 * Figure 10 reproduction: rendered-frame verification.  The paper
 * compares a frame rendered by the ATTILA simulator against a real
 * GeForce 5900 to find rendering bugs (DXT alpha decode, negative
 * colour clamping, stencil clear).
 *
 * Here the independent comparator is the functional reference
 * renderer (no real GPU in the loop — see DESIGN.md §1): the timing
 * simulator's DAC dump must match it pixel for pixel on every
 * workload, including the DXT-compressed, stencil-heavy and
 * alpha-tested paths the paper's bugs lived in.
 */

#include "bench_common.hh"

#include "gpu/ref_renderer.hh"

using namespace attila;
using namespace attila::bench;

int
main(int argc, char** argv)
{
    parseArgs(argc, argv);
    setBench("fig10_image_verify");
    printHeader("Figure 10: simulator vs reference image"
                " verification");

    struct Scene
    {
        const char* name;
        gpu::CommandList commands;
        u32 frames;
    };
    std::vector<Scene> scenes;
    {
        auto params = benchParams(/*frames=*/1);
        workloads::ShadowsWorkload shadows(params);
        scenes.push_back({"shadows (stencil + DXT3 + alpha test)",
                          buildCommands(shadows), params.frames});
        workloads::TerrainWorkload terrain(params);
        scenes.push_back({"terrain (DXT1 + fog + multitexture)",
                          buildCommands(terrain), params.frames});
        workloads::CubesWorkload cubes(params);
        scenes.push_back({"cubes (fixed-function lighting)",
                          buildCommands(cubes), params.frames});
    }

    bool allClean = true;
    std::cout << std::left << std::setw(44) << "scene"
              << std::setw(12) << "pixels" << "differing\n";
    for (Scene& scene : scenes) {
        // Short name doubling as the BENCH_JSON label and the stem
        // of the per-scene output files (.ppm, .evtrace, .trace.json).
        const std::string shortName =
            scene.name[0] == 's' ? "shadows"
            : scene.name[0] == 't' ? "terrain"
                                   : "cubes";
        RunResult result = run(scene.commands,
                               gpu::GpuConfig::baseline(),
                               scene.frames, shortName);

        gpu::RefRenderer reference(64u << 20);
        if (options().emuFastPath)
            reference.setFastPath(*options().emuFastPath);
        reference.execute(scene.commands);

        const auto& simFrame = result.gpu->frames().back();
        const auto& refFrame = reference.frames().back();
        const u64 diff = simFrame.diffCount(refFrame);
        allClean &= diff == 0;
        std::cout << std::left << std::setw(44) << scene.name
                  << std::setw(12) << simFrame.pixels.size() << diff
                  << "\n";

        const std::string base =
            sim::outPath("fig10_" + shortName);
        simFrame.writePpm(base + "_sim.ppm");
        refFrame.writePpm(base + "_ref.ppm");
    }

    std::cout << "\n"
              << (allClean
                      ? "All frames identical: no timing-simulator"
                        " rendering bugs detected."
                      : "DIFFERENCES FOUND: inspect the fig10_*.ppm"
                        " pairs (paper §5 found DXT alpha, colour"
                        " clamp and stencil clear bugs this way).")
              << "\n";
    return allClean ? 0 : 1;
}

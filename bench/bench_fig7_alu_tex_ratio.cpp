/**
 * @file
 * Figure 7 reproduction: performance degradation and frame rate when
 * the shader-ALU : texture-unit ratio changes from 1:1 to 3:1.
 *
 * Paper setup (§5): three unified shaders, one ROP, two 64-bit DDR
 * channels; a 384-input global thread window (out-of-order
 * execution) vs a same-size in-order shader input queue; texture
 * units swept 3 -> 1; UT2004 Primeval and Doom3 trDemo2 traces at
 * 1024x768 with 8x anisotropic filtering.
 *
 * This harness runs the same sweep over the terrain (UT2004 stand-
 * in) and shadows (Doom3 stand-in) workloads at reduced scale and
 * prints relative performance (3 TU = 100%) and fps at 600 MHz.
 *
 * Expected shape (paper): thread window loses ~5-10% from 3->2 TUs
 * and much more at 1 TU; the in-order queue is slow and flat — the
 * number of TUs barely matters because one blocked thread stalls
 * the whole shader.
 */

#include "bench_common.hh"

using namespace attila;
using namespace attila::bench;

int
main(int argc, char** argv)
{
    parseArgs(argc, argv);
    setBench("fig7_alu_tex_ratio");
    printHeader("Figure 7: shader ALU vs texture unit ratio");

    struct Trace
    {
        const char* name;
        gpu::CommandList commands;
        u32 frames;
    };
    std::vector<Trace> traces;
    {
        auto params = benchParams();
        workloads::TerrainWorkload terrain(params);
        traces.push_back({"terrain (UT2004-like)",
                          buildCommands(terrain), params.frames});
        workloads::ShadowsWorkload shadows(params);
        traces.push_back({"shadows (Doom3-like)",
                          buildCommands(shadows), params.frames});
    }

    for (const Trace& trace : traces) {
        std::cout << "\n--- " << trace.name << " ---\n";
        std::cout << std::left << std::setw(16) << "scheduler"
                  << std::setw(6) << "TUs" << std::setw(12)
                  << "cycles" << std::setw(10) << "fps@600"
                  << "relative\n";
        for (auto mode : {gpu::ShaderScheduling::ThreadWindow,
                          gpu::ShaderScheduling::InOrderQueue}) {
            f64 base = 0.0;
            for (u32 tus : {3u, 2u, 1u}) {
                const auto config =
                    gpu::GpuConfig::caseStudy(mode, tus);
                const RunResult result =
                    run(trace.commands, config, trace.frames);
                if (tus == 3)
                    base = result.fps();
                const f64 relative =
                    base > 0 ? result.fps() / base * 100.0 : 0.0;
                std::cout
                    << std::left << std::setw(16)
                    << (mode ==
                                gpu::ShaderScheduling::ThreadWindow
                            ? "thread-window"
                            : "in-order-queue")
                    << std::setw(6) << tus << std::setw(12)
                    << result.cycles << std::setw(10) << std::fixed
                    << std::setprecision(2) << result.fps()
                    << std::setprecision(1) << relative << "%\n";
            }
        }
    }
    std::cout << "\nPaper shape: window 3->2 TUs ~5-10% loss, 3->1"
                 " large loss;\nqueue flat across TU counts and much"
                 " slower than the window.\n";
    return 0;
}

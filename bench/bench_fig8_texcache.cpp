/**
 * @file
 * Figure 8 reproduction: texture cache hit rate and texture memory
 * bandwidth as the number of texture units changes (thread-window
 * configuration), plus the per-10K-cycle hit-rate series for one
 * frame.
 *
 * Paper observation: quads assigned to different TUs come from
 * overlapping screen regions, so the same texture data is requested
 * by multiple per-TU caches — more TUs means more duplicated fetch
 * bandwidth and a lower per-TU hit rate (the round-robin work
 * distribution is deliberately "not properly optimized", §5).
 */

#include <sstream>

#include "bench_common.hh"

using namespace attila;
using namespace attila::bench;

int
main(int argc, char** argv)
{
    parseArgs(argc, argv);
    setBench("fig8_texcache");
    printHeader("Figure 8: texture cache behaviour vs TU count");

    auto params = benchParams();
    workloads::ShadowsWorkload shadows(params);
    const gpu::CommandList commands = buildCommands(shadows);

    std::cout << std::left << std::setw(6) << "TUs"
              << std::setw(14) << "tex hits" << std::setw(14)
              << "tex misses" << std::setw(12) << "hit rate"
              << std::setw(16) << "tex mem bytes"
              << "bytes/frame\n";

    std::unique_ptr<gpu::Gpu> keepFor10k;
    for (u32 tus : {3u, 2u, 1u}) {
        const auto config = gpu::GpuConfig::caseStudy(
            gpu::ShaderScheduling::ThreadWindow, tus);
        RunResult result = run(commands, config, params.frames);

        u64 hits = 0, misses = 0, bytes = 0;
        for (u32 t = 0; t < tus; ++t) {
            hits += result.stat("TextureUnit" + std::to_string(t) +
                                ".cacheHits");
            misses += result.stat("TextureUnit" +
                                  std::to_string(t) +
                                  ".cacheMisses");
            bytes += result.stat("MemoryController.mc.texcache" +
                                 std::to_string(t) + ".bytes");
        }
        const f64 rate =
            hits + misses
                ? static_cast<f64>(hits) /
                      static_cast<f64>(hits + misses) * 100.0
                : 0.0;
        std::ostringstream rateStr;
        rateStr << std::fixed << std::setprecision(2) << rate
                << '%';
        std::cout << std::left << std::setw(6) << tus
                  << std::setw(14) << hits << std::setw(14)
                  << misses << std::setw(12) << rateStr.str()
                  << std::setw(16) << bytes
                  << bytes / params.frames << "\n";
        emitCacheJson("texcache_tus" + std::to_string(tus), result,
                      hits, misses);
        if (tus == 3)
            keepFor10k = std::move(result.gpu);
    }

    // Per-10K-cycle hit rate series for the 3 TU run (one frame's
    // worth of windows), as in the paper's right-hand plot.
    std::cout << "\nTexture cache hit rate per 10K-cycle window"
                 " (3 TUs):\nwindow  hit-rate\n";
    const auto* hits0 =
        keepFor10k->stats().find("TextureUnit0.cacheHits");
    const auto* misses0 =
        keepFor10k->stats().find("TextureUnit0.cacheMisses");
    if (hits0 && misses0) {
        const auto& h = hits0->samples();
        const auto& m = misses0->samples();
        const std::size_t windows = std::min(h.size(), m.size());
        for (std::size_t w = 0; w < windows; ++w) {
            const u64 total = h[w] + m[w];
            if (total == 0)
                continue;
            const f64 rate = static_cast<f64>(h[w]) /
                             static_cast<f64>(total) * 100.0;
            std::cout << "  " << std::setw(5) << w << " "
                      << std::fixed << std::setprecision(1) << rate
                      << "%  ";
            const u32 bar = static_cast<u32>(rate / 2.5);
            for (u32 i = 0; i < bar; ++i)
                std::cout << '#';
            std::cout << "\n";
        }
    }
    std::cout << "\nPaper shape: fewer TUs -> higher hit rate and"
                 " less duplicated texture bandwidth.\n";
    return 0;
}

/**
 * @file
 * Figure 9 reproduction: workload characterization — per-unit
 * utilization sampled every 10K cycles over a frame, for (top to
 * bottom in the paper): thread window with 3 TUs, thread window
 * with 1 TU, and the in-order shader input queue with 3 TUs.
 *
 * Paper shape: with the queue every unit is under-utilized (texture
 * latency is never hidden); with the window and 1 TU the texture
 * unit saturates at 95-99% — the GPU is texture-limited.
 */

#include "bench_common.hh"

using namespace attila;
using namespace attila::bench;

namespace
{

struct UnitSeries
{
    std::string label;
    std::vector<f64> utilization; ///< 0..1 per window.
};

void
printSeries(const std::vector<UnitSeries>& series)
{
    const char* shade = " .:-=+*#%@";
    std::size_t windows = 0;
    for (const auto& s : series)
        windows = std::max(windows, s.utilization.size());
    windows = std::min<std::size_t>(windows, 70);
    for (const auto& s : series) {
        std::cout << "  " << std::left << std::setw(16) << s.label
                  << " ";
        f64 avg = 0.0;
        for (std::size_t w = 0; w < windows; ++w) {
            const f64 u = w < s.utilization.size()
                              ? s.utilization[w]
                              : 0.0;
            avg += u;
            std::cout << shade[static_cast<u32>(
                std::min(0.999, u) * 10)];
        }
        if (windows)
            avg /= static_cast<f64>(windows);
        std::cout << "  avg " << std::fixed << std::setprecision(0)
                  << avg * 100 << "%\n";
    }
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    parseArgs(argc, argv);
    setBench("fig9_utilization");
    printHeader("Figure 9: unit utilization per 10K-cycle window");

    auto params = benchParams(/*frames=*/1);
    workloads::ShadowsWorkload shadows(params);
    const gpu::CommandList commands = buildCommands(shadows);

    struct Config
    {
        const char* name;
        gpu::ShaderScheduling mode;
        u32 tus;
    };
    const Config configs[] = {
        {"thread window, 3 TUs",
         gpu::ShaderScheduling::ThreadWindow, 3},
        {"thread window, 1 TU",
         gpu::ShaderScheduling::ThreadWindow, 1},
        {"in-order queue, 3 TUs",
         gpu::ShaderScheduling::InOrderQueue, 3},
    };

    for (const Config& cfg : configs) {
        const auto config =
            gpu::GpuConfig::caseStudy(cfg.mode, cfg.tus);
        RunResult result = run(commands, config, params.frames);
        std::cout << "\n--- " << cfg.name << " ("
                  << result.cycles << " cycles) ---\n";

        auto busySeries = [&](const std::string& statName,
                              const std::string& label)
            -> UnitSeries {
            UnitSeries s;
            s.label = label;
            const auto* stat = result.gpu->stats().find(statName);
            if (!stat)
                return s;
            const u64 window = result.gpu->config().statsWindow;
            for (u64 busy : stat->samples()) {
                s.utilization.push_back(
                    static_cast<f64>(busy) /
                    static_cast<f64>(window));
            }
            return s;
        };

        std::vector<UnitSeries> series;
        series.push_back(
            busySeries("Streamer.busyCycles", "streamer"));
        series.push_back(busySeries(
            "FragmentGenerator.busyCycles", "frag gen"));
        // Shader pool: average across units.
        {
            UnitSeries s;
            s.label = "shader pool";
            for (u32 u = 0; u < config.numShaders; ++u) {
                const auto part = busySeries(
                    "ShaderUnit" + std::to_string(u) +
                        ".busyCycles",
                    "");
                if (s.utilization.size() <
                    part.utilization.size()) {
                    s.utilization.resize(part.utilization.size(),
                                         0.0);
                }
                for (std::size_t w = 0;
                     w < part.utilization.size(); ++w) {
                    s.utilization[w] +=
                        part.utilization[w] / config.numShaders;
                }
            }
            series.push_back(std::move(s));
        }
        {
            UnitSeries s;
            s.label = "texture units";
            for (u32 t = 0; t < cfg.tus; ++t) {
                const auto part = busySeries(
                    "TextureUnit" + std::to_string(t) +
                        ".busyCycles",
                    "");
                if (s.utilization.size() <
                    part.utilization.size()) {
                    s.utilization.resize(part.utilization.size(),
                                         0.0);
                }
                for (std::size_t w = 0;
                     w < part.utilization.size(); ++w) {
                    s.utilization[w] +=
                        part.utilization[w] / cfg.tus;
                }
            }
            series.push_back(std::move(s));
        }
        series.push_back(
            busySeries("ZStencilTest0.busyCycles", "rop z"));
        series.push_back(
            busySeries("ColorWrite0.busyCycles", "rop color"));

        printSeries(series);
    }
    std::cout << "\nPaper shape: the queue configuration leaves every"
                 " unit idle most of the time;\nthe 1 TU window"
                 " configuration saturates the texture unit"
                 " (95-99%).\n";
    return 0;
}

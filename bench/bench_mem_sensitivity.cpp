/**
 * @file
 * Memory-model sensitivity sweep: flat vs banked GDDR timing, FIFO
 * vs FR-FCFS scheduling (paper §2.2's GDDR channel model).
 *
 * Part 1 drives the memory controller directly with two interleaved
 * read streams that map to different rows of the same bank — the
 * worst case for an in-order scheduler (every access is a row
 * conflict) and the best case for FR-FCFS (reordering batches each
 * row's hits together).  The bench fails unless FR-FCFS shows both
 * more row hits and fewer cycles than FIFO on this pattern.
 *
 * Part 2 renders the terrain workload end to end under the three
 * memory models (flat, banked FIFO, banked FR-FCFS), emitting one
 * BENCH_JSON line per configuration; each carries a distinct
 * config_hash, so external sweeps can tell the scenarios apart.
 */

#include "bench_common.hh"

#include <functional>

#include "gpu/memory_controller.hh"
#include "sim/simulator.hh"

using namespace attila;
using namespace attila::bench;

namespace
{

/** Host box owning the MemPort that feeds the controller. */
class StreamClient : public sim::Box
{
  public:
    StreamClient(sim::SignalBinder& binder,
                 sim::StatisticManager& stats,
                 const gpu::GpuConfig& config)
        : Box(binder, stats, "client")
    {
        mem.init(*this, binder, "mc.stream",
                 config.memoryRequestQueue);
    }

    void
    update(Cycle cycle) override
    {
        mem.clock(cycle);
        if (tick)
            tick(cycle);
    }

    gpu::MemPort mem;
    std::function<void(Cycle)> tick;
};

struct StreamResult
{
    u64 cycles = 0;
    u64 rowHits = 0;
    u64 rowConflicts = 0;
};

/**
 * Issue @p perStream reads alternating between two rows of the same
 * bank of channel 0, and run until every response is back.
 */
StreamResult
runStreams(const gpu::GpuConfig& config, u32 perStream)
{
    sim::Simulator simulator;
    emu::GpuMemory memory(1 << 20);
    StreamClient client(simulator.binder(), simulator.stats(),
                        config);
    gpu::MemoryController mc(simulator.binder(), simulator.stats(),
                             config, memory,
                             std::vector<std::string>{"mc.stream"});
    simulator.addBox(&client);
    simulator.addBox(&mc);

    // Channel-0 stripes repeat every channels*interleave bytes; the
    // two streams sit nbk pages apart, so they share a bank but not
    // a row.
    const u32 stride =
        config.memoryChannels * config.channelInterleave;
    const u32 rowB = config.memoryPageBytes * 8;
    const u32 total = perStream * 2;
    u32 sent = 0;
    u32 responses = 0;
    client.tick = [&](Cycle cycle) {
        while (client.mem.hasResponse()) {
            client.mem.popResponse(cycle);
            ++responses;
        }
        while (sent < total && client.mem.canRequest(cycle)) {
            const u32 index = sent / 2;
            const u32 base = (sent % 2) ? rowB : 0;
            auto txn = std::make_shared<gpu::MemTransaction>();
            txn->isRead = true;
            txn->address = base + index * stride;
            txn->size = 64;
            client.mem.request(cycle, std::move(txn));
            ++sent;
        }
    };

    StreamResult result;
    while (responses < total && result.cycles < 1'000'000) {
        simulator.step();
        ++result.cycles;
    }
    result.rowHits = mc.rowHits();
    result.rowConflicts = mc.rowConflicts();
    return result;
}

void
emitStreamJson(const std::string& label, const gpu::GpuConfig& c,
               const StreamResult& r)
{
    std::cout << "BENCH_JSON {\"bench\":\"" << benchName()
              << "\",\"label\":\"" << label
              << "\",\"cycles\":" << r.cycles
              << ",\"row_hits\":" << r.rowHits
              << ",\"row_conflicts\":" << r.rowConflicts
              << ",\"dram_scheduler\":\""
              << gpu::enumName(c.dramScheduler)
              << "\",\"config_hash\":\"" << configHashHex(c)
              << "\"}\n";
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    parseArgs(argc, argv);
    setBench("mem_sensitivity");

    printHeader("DRAM scheduling: interleaved row streams");
    gpu::GpuConfig banked = gpu::GpuConfig::baseline();
    applyOptions(banked);
    banked.memModel = gpu::MemModel::Banked;
    banked.scheduler = gpu::SchedulerKind::Serial;

    gpu::GpuConfig fifoCfg = banked;
    fifoCfg.dramScheduler = gpu::DramSchedPolicy::Fifo;
    gpu::GpuConfig frfcfsCfg = banked;
    frfcfsCfg.dramScheduler = gpu::DramSchedPolicy::FrFcfs;

    const u32 perStream = 64;
    const StreamResult fifo = runStreams(fifoCfg, perStream);
    const StreamResult frfcfs = runStreams(frfcfsCfg, perStream);
    emitStreamJson("stream_fifo", fifoCfg, fifo);
    emitStreamJson("stream_frfcfs", frfcfsCfg, frfcfs);

    std::cout << std::left << std::setw(12) << "policy"
              << std::setw(10) << "cycles" << std::setw(10) << "hits"
              << "conflicts\n"
              << std::setw(12) << "fifo" << std::setw(10)
              << fifo.cycles << std::setw(10) << fifo.rowHits
              << fifo.rowConflicts << "\n"
              << std::setw(12) << "frfcfs" << std::setw(10)
              << frfcfs.cycles << std::setw(10) << frfcfs.rowHits
              << frfcfs.rowConflicts << "\n";

    const bool advantage = frfcfs.rowHits > fifo.rowHits &&
                           frfcfs.cycles < fifo.cycles;
    if (!advantage) {
        std::cout << "FAIL: FR-FCFS shows no row-hit advantage on"
                     " the interleaved-row pattern.\n";
    }

    printHeader("End-to-end: terrain under three memory models");
    auto params = benchParams(/*frames=*/1);
    workloads::TerrainWorkload terrain(params);
    gpu::CommandList commands = buildCommands(terrain);

    gpu::GpuConfig flat = gpu::GpuConfig::baseline();
    applyOptions(flat);
    flat.memModel = gpu::MemModel::Flat;
    run(commands, flat, params.frames, "flat");
    run(commands, fifoCfg, params.frames, "banked_fifo");
    run(commands, frfcfsCfg, params.frames, "banked_frfcfs");

    return advantage ? 0 : 1;
}

/**
 * @file
 * google-benchmark micro-benchmarks of the simulation framework
 * primitives (paper §3 claims the box/signal model is cheap enough
 * for cycle-level full-GPU simulation): signal throughput, object
 * pool recycling, shader emulator instruction rate, cache access
 * rate, rasterizer setup and Z-tile compression.
 */

#include <chrono>
#include <iostream>
#include <memory>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "emu/fragment_op_emulator.hh"
#include "emu/rasterizer_emulator.hh"
#include "emu/shader_emulator.hh"
#include "emu/z_compressor.hh"
#include "sim/object_pool.hh"
#include "sim/signal.hh"
#include "sim/simulator.hh"

using namespace attila;

namespace
{

/** A producer->sink chain exercising the two-phase clock loop. */
struct ClockLoopModel
{
    class Stage : public sim::Box
    {
      public:
        Stage(sim::SignalBinder& binder,
              sim::StatisticManager& stats, const std::string& name,
              const std::string& in, const std::string& out,
              bool stateless = false)
            : Box(binder, stats, name), _stateless(stateless)
        {
            if (!in.empty())
                _in = input(in, 1, 1);
            if (!out.empty())
                _out = output(out, 1, 1);
        }

        void
        update(Cycle cycle) override
        {
            sim::DynamicObjectPtr obj;
            if (_in)
                obj = _in->read(cycle);
            else
                obj = std::make_shared<sim::DynamicObject>();
            if (obj) {
                ++_received;
                if (_out && _out->canWrite(cycle))
                    _out->write(cycle, std::move(obj));
            }
        }

        /** Stateless relays carry no work between cycles: with quiet
         * inputs their update() is a no-op, so they may be skipped. */
        bool
        busy() const override
        {
            return !_stateless;
        }

        u64
        received() const
        {
            return _received;
        }

      private:
        sim::Signal* _in = nullptr;
        sim::Signal* _out = nullptr;
        bool _stateless = false;
        u64 _received = 0;
    };

    explicit ClockLoopModel(u32 stages)
    {
        for (u32 i = 0; i < stages; ++i) {
            const std::string in =
                i == 0 ? "" : "wire" + std::to_string(i - 1);
            const std::string out =
                i + 1 == stages ? "" : "wire" + std::to_string(i);
            boxes.push_back(std::make_unique<Stage>(
                sim.binder(), sim.stats(),
                "stage" + std::to_string(i), in, out));
            sim.addBox(boxes.back().get());
        }
    }

    sim::Simulator sim;
    std::vector<std::unique_ptr<Stage>> boxes;
};

/**
 * A bursty producer feeding a chain of stateless relays: emits
 * @p burstLen objects back to back, then sleeps for the rest of a
 * @p period-cycle window via wakeAt().  Between bursts the whole
 * model is provably idle, so an idle-skipping scheduler fast-forwards
 * straight to the next burst.  Used for the idle-skip A/B wall-clock
 * comparison.
 */
struct IdlePhaseModel
{
    class BurstSource : public sim::Box
    {
      public:
        BurstSource(sim::SignalBinder& binder,
                    sim::StatisticManager& stats,
                    const std::string& out, u32 bursts, u32 burstLen,
                    u32 period)
            : Box(binder, stats, "burst_source"), _bursts(bursts),
              _burstLen(burstLen), _period(period)
        {
            _out = output(out, 1, 1);
            wakeAt(0); // First burst fires at cycle 0.
        }

        void
        update(Cycle cycle) override
        {
            if (_remaining == 0 && _bursts > 0 &&
                cycle >= _nextBurst) {
                _remaining = _burstLen;
                --_bursts;
                _nextBurst = cycle + _period;
            }
            if (_remaining > 0 && _out->canWrite(cycle)) {
                _out->write(cycle,
                            std::make_shared<sim::DynamicObject>());
                if (--_remaining == 0 && _bursts > 0)
                    wakeAt(_nextBurst);
            }
        }

        bool
        busy() const override
        {
            return _remaining > 0;
        }

        bool
        empty() const override
        {
            return _bursts == 0 && _remaining == 0;
        }

      private:
        sim::Signal* _out = nullptr;
        u32 _bursts;
        u32 _burstLen;
        u32 _period;
        u32 _remaining = 0;
        Cycle _nextBurst = 0;
    };

    IdlePhaseModel(u32 stages, u32 bursts, u32 burstLen, u32 period)
    {
        source = std::make_unique<BurstSource>(
            sim.binder(), sim.stats(), "wire0", bursts, burstLen,
            period);
        sim.addBox(source.get());
        for (u32 i = 1; i <= stages; ++i) {
            const std::string in = "wire" + std::to_string(i - 1);
            const std::string out =
                i == stages ? "" : "wire" + std::to_string(i);
            relays.push_back(std::make_unique<ClockLoopModel::Stage>(
                sim.binder(), sim.stats(),
                "relay" + std::to_string(i), in, out,
                /*stateless=*/true));
            sim.addBox(relays.back().get());
        }
    }

    u64
    sinkCount() const
    {
        return relays.back()->received();
    }

    sim::Simulator sim;
    std::unique_ptr<BurstSource> source;
    std::vector<std::unique_ptr<ClockLoopModel::Stage>> relays;
};

} // anonymous namespace

static void
BM_TwoPhaseClockLoop(benchmark::State& state)
{
    ClockLoopModel model(16);
    for (auto _ : state)
        model.sim.step();
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TwoPhaseClockLoop);

static void
BM_SignalWriteRead(benchmark::State& state)
{
    sim::Signal signal("bench", 4, 2);
    auto obj = std::make_shared<sim::DynamicObject>();
    Cycle cycle = 0;
    for (auto _ : state) {
        signal.write(cycle, obj);
        benchmark::DoNotOptimize(signal.read(cycle + 2));
        ++cycle;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SignalWriteRead);

static void
BM_ObjectPoolAcquire(benchmark::State& state)
{
    sim::ObjectPool<sim::DynamicObject> pool;
    for (auto _ : state) {
        auto obj = pool.acquire();
        benchmark::DoNotOptimize(obj.get());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObjectPoolAcquire);

static void
BM_SharedPtrBaseline(benchmark::State& state)
{
    for (auto _ : state) {
        auto obj = std::make_shared<sim::DynamicObject>();
        benchmark::DoNotOptimize(obj.get());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedPtrBaseline);

static void
BM_ShaderEmulatorInstructions(benchmark::State& state)
{
    emu::ShaderAssembler assembler;
    auto prog = assembler.assemble(R"(!!ARBvp1.0
TEMP r0, r1;
DP4 r0.x, program.env[0], vertex.position;
DP4 r0.y, program.env[1], vertex.position;
DP4 r0.z, program.env[2], vertex.position;
DP4 r0.w, program.env[3], vertex.position;
MAD r1, r0, program.env[4], program.env[5];
MOV result.position, r1;
MOV result.color, vertex.color;
END
)");
    emu::ShaderEmulator emulator;
    emu::ConstantBank constants{};
    emu::ShaderThreadState thread;
    for (auto _ : state) {
        thread.pc = 0;
        thread.killed = false;
        emulator.run(*prog, constants, thread);
    }
    state.SetItemsProcessed(state.iterations() *
                            (prog->length() - 1));
}
BENCHMARK(BM_ShaderEmulatorInstructions);

static void
BM_TriangleSetup(benchmark::State& state)
{
    const emu::Viewport vp{0, 0, 1024, 768};
    u64 seed = 1;
    for (auto _ : state) {
        seed = seed * 6364136223846793005ull + 1;
        const f32 jitter =
            static_cast<f32>((seed >> 40) & 0xff) / 256.0f;
        auto setup = emu::RasterizerEmulator::setup(
            {-0.5f + jitter, -0.5f, 0.1f, 1.0f},
            {0.5f, -0.25f, 0.2f, 1.2f},
            {0.0f, 0.6f, 0.3f, 0.9f}, vp);
        benchmark::DoNotOptimize(setup);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TriangleSetup);

static void
BM_FragmentCoverage(benchmark::State& state)
{
    const emu::Viewport vp{0, 0, 256, 256};
    const auto tri = emu::RasterizerEmulator::setup(
        {-1, -1, 0, 1}, {3, -1, 0, 1}, {-1, 3, 0, 1}, vp);
    s32 x = 0, y = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            emu::RasterizerEmulator::evalFragment(tri, x, y));
        x = (x + 7) & 255;
        y = (y + 3) & 255;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FragmentCoverage);

static void
BM_ZTileCompress(benchmark::State& state)
{
    std::array<u32, emu::zTileWords> tile;
    for (u32 y = 0; y < 8; ++y) {
        for (u32 x = 0; x < 8; ++x) {
            tile[y * 8 + x] = emu::packDepthStencil(
                1000000 + x * 977 + y * 311, 0);
        }
    }
    for (auto _ : state) {
        auto result = emu::ZCompressor::compress(tile);
        benchmark::DoNotOptimize(result);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZTileCompress);

namespace
{

/** Run the bursty model for @p cycles with idle skipping on or off;
 * emits one BENCH_JSON line and returns {sink count, wall time}. */
std::pair<u64, f64>
runIdlePhase(u64 cycles, bool idle_skip)
{
    IdlePhaseModel model(/*stages=*/16, /*bursts=*/64,
                         /*burstLen=*/64, /*period=*/4096);
    model.sim.setIdleSkip(idle_skip);
    const auto start = std::chrono::steady_clock::now();
    model.sim.run(cycles);
    const auto stop = std::chrono::steady_clock::now();
    const f64 wall =
        std::chrono::duration<f64>(stop - start).count();
    std::cout << "BENCH_JSON {\"bench\":\"micro_framework\","
              << "\"label\":\"idle_phase_model\",\"cycles\":"
              << cycles << ",\"objects\":" << model.sinkCount()
              << ",\"wall_s\":" << wall << ",\"khz\":"
              << (wall > 0.0 ? static_cast<f64>(cycles) / wall / 1e3
                             : 0.0)
              << ",\"scheduler\":\"serial\",\"threads\":1"
              << ",\"idle_skip\":" << (idle_skip ? "true" : "false")
              << "}\n";
    return {model.sinkCount(), wall};
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    attila::bench::parseArgs(argc, argv);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    const bool idle_skip =
        attila::bench::options().idleSkip.value_or(true);

    // Machine-readable wall-clock line matching the other bench
    // binaries: the raw two-phase clock-loop rate.  Every stage of
    // this model is busy every cycle, so idle skipping has nothing
    // to skip here.
    constexpr u64 cycles = 200'000;
    ClockLoopModel model(16);
    model.sim.setIdleSkip(idle_skip);
    const auto start = std::chrono::steady_clock::now();
    model.sim.run(cycles);
    const auto stop = std::chrono::steady_clock::now();
    const f64 wall =
        std::chrono::duration<f64>(stop - start).count();
    std::cout << "BENCH_JSON {\"bench\":\"micro_framework\","
              << "\"label\":\"two_phase_clock_loop\",\"cycles\":"
              << cycles << ",\"wall_s\":" << wall << ",\"khz\":"
              << (wall > 0.0 ? static_cast<f64>(cycles) / wall / 1e3
                             : 0.0)
              << ",\"scheduler\":\"serial\",\"threads\":1"
              << ",\"idle_skip\":" << (idle_skip ? "true" : "false")
              << "}\n";

    // Idle-skip A/B: a workload that is mostly idle between bursts.
    // The two runs must agree exactly on delivered object counts;
    // the wall-clock ratio is the idle-skip speedup.
    constexpr u64 idleCycles = 64 * 4096;
    const auto [onCount, onWall] = runIdlePhase(idleCycles, true);
    const auto [offCount, offWall] = runIdlePhase(idleCycles, false);
    if (onCount != offCount) {
        std::cerr << "FAIL: idle-skip changed delivered objects ("
                  << onCount << " vs " << offCount << ")\n";
        return 1;
    }
    std::cout << "BENCH_JSON {\"bench\":\"micro_framework\","
              << "\"label\":\"idle_phase_speedup\",\"speedup\":"
              << (onWall > 0.0 ? offWall / onWall : 0.0) << "}\n";
    return 0;
}

/**
 * @file
 * Micro benchmark for the shader-emulator hot path: the per-lane
 * interpreter (ShaderEmulator::run) against the pre-decoded scalar
 * interpreter (runDecoded) and the pre-decoded quad-lockstep
 * interpreter (runQuad), over ALU-, texture- and KIL-heavy fragment
 * programs.
 *
 * Every mode must produce bit-identical output registers and kill
 * masks — the bench exits non-zero on any mismatch, so it doubles as
 * an identity check.  The BENCH_JSON lines include a
 * `fastpath_speedup` figure (scalar wall / quad wall) that CI
 * asserts against.
 */

#include "bench_common.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "emu/decoded_program.hh"
#include "emu/shader_emulator.hh"
#include "emu/shader_isa.hh"

using namespace attila;
using namespace attila::bench;
using namespace attila::emu;

namespace
{

constexpr u32 numQuads = 256;
constexpr u32 iterations = 60;
constexpr u32 repetitions = 5;

/** Deterministic input generator (no external randomness). */
struct Lcg
{
    u64 state = 0x9e3779b97f4a7c15ull;

    u32
    next()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<u32>(state >> 33);
    }

    f32
    uniform(f32 lo, f32 hi)
    {
        const f32 t = static_cast<f32>(next() & 0xffffff) /
                      static_cast<f32>(0xffffff);
        return lo + (hi - lo) * t;
    }
};

/** A pure, per-lane procedural texture: both sampling modes call it
 * with identical arguments, keeping the paths bit-identical. */
Vec4
proceduralTexel(u32 unit, const Vec4& c)
{
    const f32 s =
        std::sin(c.x * 3.0f + static_cast<f32>(unit) * 0.5f);
    const f32 t = std::cos(c.y * 5.0f - c.z);
    return {s * t, s + t, c.z * 0.25f, 1.0f};
}

/** One program's pre-generated thread inputs: quads of 4 lanes. */
struct Workset
{
    std::vector<std::array<ShaderThreadState, 4>> quads;
};

Workset
makeWorkset()
{
    Lcg rng;
    Workset ws;
    ws.quads.resize(numQuads);
    for (auto& quad : ws.quads) {
        for (auto& lane : quad) {
            lane.reset();
            for (u32 r = 0; r < regix::numInputRegs; ++r) {
                lane.in[r] = {rng.uniform(-2.0f, 2.0f),
                              rng.uniform(-2.0f, 2.0f),
                              rng.uniform(-2.0f, 2.0f),
                              rng.uniform(0.25f, 2.0f)};
            }
        }
    }
    return ws;
}

/** Bitwise checksum over the program's output (result.color is the
 * only output register any bench program writes) and kill flags. */
u32
checksum(const std::array<ShaderThreadState, 4>& lanes,
         const std::array<bool, 4>& killed)
{
    u32 sum = 0;
    for (u32 l = 0; l < 4; ++l) {
        for (u32 c = 0; c < 4; ++c) {
            const f32 v = lanes[l].out[0][c];
            u32 bits;
            static_assert(sizeof(bits) == sizeof(f32));
            std::memcpy(&bits, &v, 4);
            sum = sum * 31u + bits;
        }
        sum = sum * 31u + (killed[l] ? 1u : 0u);
    }
    return sum;
}

/**
 * Load one pre-generated quad into the persistent lane state: only
 * the input bank plus pc / kill flags change per fragment (exactly
 * what the shader unit loads per thread).  Output and temp
 * registers carry whatever the previous quad left — execution is
 * bit-identical in every mode, so the carried state is too, and the
 * checksums stay comparable.
 */
void
prime(std::array<ShaderThreadState, 4>& lanes,
      const std::array<ShaderThreadState, 4>& quad)
{
    for (u32 l = 0; l < 4; ++l) {
        lanes[l].in = quad[l].in;
        lanes[l].pc = 0;
        lanes[l].killed = false;
    }
}

struct ModeResult
{
    f64 wallSeconds = 0.0;
    u32 check = 0;
};

/** Best-of-N timing: the minimum wall clock over @ref repetitions
 * filters out scheduler noise on shared machines.  Every repetition
 * must produce the same checksum. */
template <typename Body>
ModeResult
timeMode(Body&& body)
{
    ModeResult result;
    result.wallSeconds = std::numeric_limits<f64>::infinity();
    for (u32 rep = 0; rep < repetitions; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        const u32 check = body();
        const auto stop = std::chrono::steady_clock::now();
        const f64 wall =
            std::chrono::duration<f64>(stop - start).count();
        if (rep == 0)
            result.check = check;
        else if (check != result.check) {
            std::cerr << "FAIL: checksum varies across"
                         " repetitions\n";
            std::exit(1);
        }
        result.wallSeconds = std::min(result.wallSeconds, wall);
    }
    return result;
}

void
emitMicroJson(const std::string& label, const ModeResult& r,
              u64 lanesRun)
{
    const f64 mlps = r.wallSeconds > 0.0
                         ? static_cast<f64>(lanesRun) /
                               r.wallSeconds / 1e6
                         : 0.0;
    std::cout << "BENCH_JSON {\"bench\":\"" << benchName()
              << "\",\"label\":\"" << label << "\",\"wall_s\":"
              << std::fixed << std::setprecision(6) << r.wallSeconds
              << ",\"mlanes_per_s\":" << std::setprecision(3) << mlps
              << "}\n"
              << std::defaultfloat;
}

/** Run one program through all three modes; returns the
 * scalar/quad speedup, exits on any checksum mismatch. */
f64
benchProgram(const std::string& name, const std::string& source)
{
    ShaderAssembler assembler;
    const ShaderProgramPtr prog = assembler.assemble(source);
    const ConstantBank constants =
        ShaderEmulator::makeConstants(*prog);
    ShaderEmulator emulator;
    DecodedProgramCache cache;
    const DecodedProgram& decodedProg = cache.get(prog);
    const Workset ws = makeWorkset();

    auto immediateFn = [](u32 unit, TexTarget, const Vec4& coord,
                          f32, bool) {
        return proceduralTexel(unit, coord);
    };
    const ImmediateSampler immediate = immediateFn;

    auto quadFn = [](u32 unit, TexTarget,
                     const std::array<Vec4, 4>& coords, u8 liveMask,
                     f32, bool) {
        std::array<Vec4, 4> texels{};
        for (u32 l = 0; l < 4; ++l) {
            if (liveMask & (1u << l))
                texels[l] = proceduralTexel(unit, coords[l]);
        }
        return texels;
    };
    const QuadSampler quadSampler = quadFn;

    const ModeResult scalar = timeMode([&] {
        u32 sum = 0;
        std::array<ShaderThreadState, 4> lanes;
        for (auto& lane : lanes)
            lane.reset();
        for (u32 it = 0; it < iterations; ++it) {
            for (const auto& quad : ws.quads) {
                prime(lanes, quad);
                std::array<bool, 4> killed{};
                for (u32 l = 0; l < 4; ++l) {
                    killed[l] = !emulator.run(*prog, constants,
                                              lanes[l], &immediate);
                }
                sum ^= checksum(lanes, killed);
            }
        }
        return sum;
    });

    const ModeResult decoded = timeMode([&] {
        u32 sum = 0;
        std::array<ShaderThreadState, 4> lanes;
        for (auto& lane : lanes)
            lane.reset();
        for (u32 it = 0; it < iterations; ++it) {
            for (const auto& quad : ws.quads) {
                prime(lanes, quad);
                std::array<bool, 4> killed{};
                for (u32 l = 0; l < 4; ++l) {
                    killed[l] = !emulator.runDecoded(
                        decodedProg, constants, lanes[l],
                        &immediate);
                }
                sum ^= checksum(lanes, killed);
            }
        }
        return sum;
    });

    const ModeResult quadMode = timeMode([&] {
        u32 sum = 0;
        std::array<ShaderThreadState, 4> lanes;
        for (auto& lane : lanes)
            lane.reset();
        for (u32 it = 0; it < iterations; ++it) {
            for (const auto& quad : ws.quads) {
                prime(lanes, quad);
                std::array<bool, 4> laneDone{};
                std::array<bool, 4> killed{};
                emulator.runQuad(decodedProg, constants, lanes,
                                 laneDone, killed, quadSampler);
                sum ^= checksum(lanes, killed);
            }
        }
        return sum;
    });

    const u64 lanesRun =
        static_cast<u64>(iterations) * numQuads * 4;
    emitMicroJson(name + "_scalar", scalar, lanesRun);
    emitMicroJson(name + "_decoded", decoded, lanesRun);
    emitMicroJson(name + "_quad", quadMode, lanesRun);

    if (scalar.check != decoded.check ||
        scalar.check != quadMode.check) {
        std::cerr << "FAIL: " << name
                  << " checksums diverge (scalar=" << scalar.check
                  << " decoded=" << decoded.check
                  << " quad=" << quadMode.check << ")\n";
        std::exit(1);
    }

    const f64 speedup = quadMode.wallSeconds > 0.0
                            ? scalar.wallSeconds /
                                  quadMode.wallSeconds
                            : 0.0;
    std::cout << "BENCH_JSON {\"bench\":\"" << benchName()
              << "\",\"label\":\"" << name
              << "_speedup\",\"fastpath_speedup\":" << std::fixed
              << std::setprecision(3) << speedup << "}\n"
              << std::defaultfloat;
    std::cout << "  " << name << ": scalar " << std::fixed
              << std::setprecision(3) << scalar.wallSeconds
              << " s, decoded " << decoded.wallSeconds
              << " s, quad " << quadMode.wallSeconds << " s ("
              << speedup << "x)\n"
              << std::defaultfloat;
    return speedup;
}

/** ALU-heavy: normalize/light/blend arithmetic over most opcodes. */
const char* const aluProgram = R"(!!ARBfp1.0
TEMP n, l, h, t0, t1, acc;
MOV n, fragment.texcoord[0];
DP3 t0.x, n, n;
RSQ t0.x, t0.x;
MUL n, n, t0.x;
MOV l, fragment.texcoord[1];
DP3 t1.x, l, l;
RSQ t1.x, t1.x;
MUL l, l, t1.x;
ADD h, n, l;
DP3 t0.y, h, h;
RSQ t0.y, t0.y;
MUL h, h, t0.y;
DP3_SAT t0.z, n, l;
DP3_SAT t0.w, n, h;
MAD acc, fragment.color, t0.z, t0.w;
LRP acc, t0.z, acc, fragment.color;
MIN acc, acc, fragment.color.wzyx;
MAX acc, acc, -fragment.color;
FRC t1, acc;
FLR t0, acc;
CMP acc, acc, t1, t0;
ABS t1, acc;
MOV l, fragment.texcoord[2];
DP3 t1.x, l, l;
RSQ t1.x, t1.x;
MUL l, l, t1.x;
ADD h, n, l;
DP3 t0.y, h, h;
RSQ t0.y, t0.y;
MUL h, h, t0.y;
DP3_SAT t0.z, n, l;
DP3_SAT t0.w, n, h;
MAD acc, acc, t0.z, t0.w;
LRP acc, t0.w, acc, fragment.color;
SUB t1, acc, fragment.color;
MAD acc, t1, t1, acc;
SGE t0, acc, t1;
SLT t1, acc, fragment.color;
MUL acc, acc, t0;
MAD acc, t1, fragment.color, acc;
MIN acc, acc, fragment.color.wzyx;
MAX acc, acc, -fragment.color;
FRC t1, acc;
FLR t0, acc;
CMP acc, acc, t1, t0;
ABS t1, acc;
ADD_SAT result.color, acc, t1;
END
)";

/** Texture-heavy: two TEX fetches feeding dependent ALU work. */
const char* const texProgram = R"(!!ARBfp1.0
TEMP c0, c1, acc, t0;
TEX c0, fragment.texcoord[0], texture[0], 2D;
TEX c1, fragment.texcoord[1], texture[1], 2D;
MUL acc, c0, c1;
DP3 t0.x, acc, acc;
RSQ t0.x, t0.x;
MAD acc, acc, t0.x, c0;
TEX t0, fragment.texcoord[2], texture[2], 2D;
LRP acc, t0.x, acc, c1;
ADD_SAT result.color, acc, t0;
END
)";

/** KIL-heavy: roughly half the lanes die mid-program. */
const char* const kilProgram = R"(!!ARBfp1.0
TEMP t0, acc;
SUB t0, fragment.color, fragment.texcoord[0];
KIL t0;
MUL acc, fragment.color, t0;
DP4 t0.x, acc, acc;
RSQ t0.x, t0.x;
MUL_SAT result.color, acc, t0.x;
END
)";

} // anonymous namespace

int
main(int argc, char** argv)
{
    parseArgs(argc, argv);
    setBench("micro_shader");
    printHeader("Micro: shader emulator fast path (scalar vs"
                " pre-decoded vs quad-lockstep)");

    const f64 aluSpeedup = benchProgram("alu", aluProgram);
    benchProgram("tex", texProgram);
    benchProgram("kil", kilProgram);

    std::cout << "\nall modes bit-identical; alu fast-path speedup "
              << std::fixed << std::setprecision(2) << aluSpeedup
              << "x\n";
    return 0;
}

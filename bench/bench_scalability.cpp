/**
 * @file
 * Scheduler scalability sweep: threads x scheduler x idle-skip over
 * the Figure 10 scenes.
 *
 * For every scene and idle-skip setting the serial engine is timed
 * first, then the partitioned parallel engine at 1, 2 and 4 threads.
 * Each parallel run must be bit-identical to its serial baseline
 * (cycle count and framebuffer hash — the scheduler contract); wall
 * clock is reported as `speedup_vs_serial` BENCH_JSON lines, which
 * the perf-smoke CI gates on.  `threads_resolved` carries the pool
 * size actually used (threads=0 resolves to the hardware thread
 * count), so a 1-core runner is detectable downstream.
 */

#include "bench_common.hh"

using namespace attila;
using namespace attila::bench;

namespace
{

/** FNV-1a over every frame's pixels (the determinism observable). */
u64
framebufferHash(const gpu::Gpu& gpu)
{
    u64 h = 1469598103934665603ull;
    for (const gpu::FrameImage& frame : gpu.frames()) {
        for (u32 px : frame.pixels) {
            h ^= px;
            h *= 1099511628211ull;
        }
    }
    return h;
}

} // namespace

int
main(int argc, char** argv)
{
    parseArgs(argc, argv);
    setBench("scalability");
    printHeader("Scheduler scalability: serial vs partitioned"
                " parallel");

    struct Scene
    {
        const char* name;
        gpu::CommandList commands;
        u32 frames;
    };
    std::vector<Scene> scenes;
    {
        auto params = benchParams(/*frames=*/1);
        workloads::ShadowsWorkload shadows(params);
        scenes.push_back(
            {"shadows", buildCommands(shadows), params.frames});
        workloads::TerrainWorkload terrain(params);
        scenes.push_back(
            {"terrain", buildCommands(terrain), params.frames});
        workloads::CubesWorkload cubes(params);
        scenes.push_back(
            {"cubes", buildCommands(cubes), params.frames});
    }

    const u32 threadSweep[] = {1, 2, 4};
    bool allIdentical = true;

    std::cout << std::left << std::setw(10) << "scene"
              << std::setw(10) << "idleSkip" << std::setw(10)
              << "engine" << std::setw(9) << "threads"
              << std::setw(12) << "wall_s" << "speedup\n";

    for (Scene& scene : scenes) {
        for (const bool skip : {true, false}) {
            gpu::GpuConfig base = gpu::GpuConfig::baseline();
            base.scheduler = gpu::SchedulerKind::Serial;
            base.idleSkip = skip;
            const std::string tag =
                std::string(scene.name) + (skip ? "_skip1" : "_skip0");
            RunResult serial = run(scene.commands, base,
                                   scene.frames, tag + "_serial");
            const u64 refCycles = serial.cycles;
            const u64 refHash = framebufferHash(*serial.gpu);
            std::cout << std::left << std::setw(10) << scene.name
                      << std::setw(10) << (skip ? "on" : "off")
                      << std::setw(10) << "serial" << std::setw(9)
                      << 1 << std::setw(12) << std::fixed
                      << std::setprecision(3) << serial.wallSeconds
                      << "1.000\n";

            for (const u32 threads : threadSweep) {
                gpu::GpuConfig cfg = gpu::GpuConfig::baseline();
                cfg.scheduler = gpu::SchedulerKind::Parallel;
                cfg.schedulerThreads = threads;
                cfg.idleSkip = skip;
                const std::string label = tag + "_parallel" +
                                          std::to_string(threads);
                RunResult result = run(scene.commands, cfg,
                                       scene.frames, label);
                const bool identical =
                    result.cycles == refCycles &&
                    framebufferHash(*result.gpu) == refHash;
                allIdentical &= identical;

                const f64 speedup =
                    result.wallSeconds > 0.0
                        ? serial.wallSeconds / result.wallSeconds
                        : 0.0;
                const u32 resolved = result.gpu->simulator()
                                         .scheduler()
                                         .threadCount();
                std::cout << std::left << std::setw(10) << scene.name
                          << std::setw(10) << (skip ? "on" : "off")
                          << std::setw(10) << "parallel"
                          << std::setw(9) << threads << std::setw(12)
                          << std::fixed << std::setprecision(3)
                          << result.wallSeconds << std::setprecision(2)
                          << speedup << "x"
                          << (identical ? "" : "  MISMATCH") << "\n";
                std::cout
                    << "BENCH_JSON {\"bench\":\"scalability\","
                       "\"label\":\""
                    << label << "\",\"scene\":\"" << scene.name
                    << "\",\"threads\":" << threads
                    << ",\"threads_resolved\":" << resolved
                    << ",\"idle_skip\":" << (skip ? "true" : "false")
                    << ",\"serial_wall_s\":" << std::setprecision(6)
                    << serial.wallSeconds << ",\"wall_s\":"
                    << result.wallSeconds
                    << ",\"speedup_vs_serial\":"
                    << std::setprecision(3) << speedup
                    << ",\"identical\":"
                    << (identical ? "true" : "false") << "}\n"
                    << std::defaultfloat;
            }
        }
    }

    std::cout << "\n"
              << (allIdentical
                      ? "All parallel runs bit-identical to serial."
                      : "BIT-IDENTITY VIOLATION: parallel results"
                        " diverged from serial.")
              << "\n";
    return allIdentical ? 0 : 1;
}

/**
 * @file
 * Table 1 (and Figures 1/2) reproduction: the baseline
 * architecture's per-unit bandwidths, queue sizes and latencies as
 * actually constructed by the simulator, plus the box-and-signal
 * topology of both pipeline models (the machine-readable version of
 * the paper's block diagrams).
 */

#include "bench_common.hh"

using namespace attila;
using namespace attila::bench;

namespace
{

void
printTopology(const char* title, const gpu::GpuConfig& config)
{
    gpu::GpuConfig cfg = config;
    cfg.memorySize = 8u << 20;
    gpu::Gpu gpu(cfg);
    auto& binder = gpu.simulator().binder();
    std::cout << "\n--- " << title << ": boxes and signals ---\n";
    u32 count = 0;
    for (const std::string& name : binder.signalNames()) {
        if (name.find(".credit") != std::string::npos)
            continue;
        const gpu::Gpu* g = &gpu;
        (void)g;
        std::cout << "  " << std::left << std::setw(28) << name
                  << binder.writerOf(name) << " -> "
                  << binder.readerOf(name) << "\n";
        ++count;
    }
    std::cout << "  (" << count << " data signals)\n";
}

} // anonymous namespace

int
main(int argc, char** argv)
{
    parseArgs(argc, argv);
    setBench("table1_pipeline");
    printHeader("Table 1: baseline ATTILA architecture");

    const gpu::GpuConfig c = gpu::GpuConfig::baseline();
    std::cout << std::left << std::setw(26) << "Unit"
              << std::setw(26) << "Input/Output bandwidth"
              << std::setw(12) << "Queue" << "Latency\n";
    auto row = [](const char* unit, const char* bw, u32 queue,
                  const char* latency) {
        std::cout << std::left << std::setw(26) << unit
                  << std::setw(26) << bw << std::setw(12) << queue
                  << latency << "\n";
    };
    row("Streamer", "1 index / 1 vertex", c.streamerQueue, "Mem");
    row("Primitive Assembly", "1 vertex / 1 triangle",
        c.primitiveAssemblyQueue, "1");
    row("Clipper", "1 triangle / 1 triangle", c.clipperQueue, "6");
    row("Triangle Setup", "1 triangle / 1 triangle", c.setupQueue,
        "10");
    row("Fragment Generation", "1 triangle / 2x64 frag",
        c.fragmentGenQueue, "1");
    row("Hierarchical Z", "2x64 frag / 2x64 frag", c.hzQueue, "1");
    row("Z Test (per ROP)", "4 frag / 4 frag", 64, "2+Mem");
    row("Interpolator", "2x4 frag / 2x4 frag", 0, "2 to 8");
    row("Color Write (per ROP)", "4 frag", 64, "2+Mem");
    row("Vertex Shader", "1 vertex / 1 vertex",
        c.vertexShaderThreads, "variable");
    row("Fragment Shader", "4 frag / 4 frag",
        c.shaderInputsInFlight, "variable");

    std::cout << "\nBaseline configuration:\n"
              << "  unified shaders:        "
              << (c.unifiedShaders ? "yes" : "no") << " ("
              << c.numShaders << " units x "
              << c.shaderInputsPerCycle << " frag/cycle)\n"
              << "  vertex shaders (fig 1): " << c.numVertexShaders
              << "\n"
              << "  ROP units:              " << c.numRops << " x "
              << c.ropFragmentsPerCycle << " frag/cycle\n"
              << "  texture units:          " << c.numTextureUnits
              << "\n"
              << "  memory channels:        " << c.memoryChannels
              << " x " << c.channelBytesPerCycle
              << " B/cycle (burst " << c.memoryBurstBytes
              << " B, interleave " << c.channelInterleave << " B)\n"
              << "  system bus:             "
              << c.systemBusBytesPerCycle << " B/cycle\n"
              << "  shader registers:       " << c.shaderRegisters
              << " (vertex pool " << c.vertexShaderRegisters
              << ")\n";

    // Figures 1 and 2: construct both pipelines and dump their
    // box/signal topology.
    gpu::GpuConfig unified = c;
    unified.unifiedShaders = true;
    printTopology("Figure 2: unified pipeline", unified);

    gpu::GpuConfig nonUnified = c;
    nonUnified.unifiedShaders = false;
    printTopology("Figure 1: non-unified pipeline", nonUnified);

    // Execution-engine speedup: the same baseline pipeline driven by
    // the serial reference scheduler and by the parallel worker-pool
    // scheduler.  Cycle counts must match exactly (the two-phase
    // clock makes intra-cycle order irrelevant); wall-clock KHz is
    // where they differ.
    printHeader("Scheduler speedup: serial vs parallel box loop");
    workloads::WorkloadParams params = benchParams(1, 128);
    workloads::TerrainWorkload terrain(params);
    const gpu::CommandList commands = buildCommands(terrain);

    gpu::GpuConfig serialCfg = c;
    serialCfg.scheduler = gpu::SchedulerKind::Serial;
    const RunResult serial =
        run(commands, serialCfg, params.frames, "terrain_serial");

    gpu::GpuConfig parallelCfg = c;
    parallelCfg.scheduler = gpu::SchedulerKind::Parallel;
    parallelCfg.schedulerThreads = 0; // All hardware threads.
    const RunResult parallel = run(commands, parallelCfg,
                                   params.frames, "terrain_parallel");

    std::cout << "  serial:   " << serial.cycles << " cycles, "
              << std::fixed << std::setprecision(1)
              << serial.simKHz() << " KHz\n"
              << "  parallel: " << parallel.cycles << " cycles, "
              << parallel.simKHz() << " KHz\n"
              << "  speedup:  " << std::setprecision(2)
              << (serial.wallSeconds > 0.0
                      ? parallel.simKHz() / serial.simKHz()
                      : 0.0)
              << "x  cycle counts "
              << (serial.cycles == parallel.cycles ? "MATCH"
                                                   : "DIVERGE")
              << "\n"
              << std::defaultfloat;
    return serial.cycles == parallel.cycles ? 0 : 1;
}

/**
 * @file
 * Table 2 reproduction: the baseline cache configurations (texture,
 * Z, colour: 16 KB, 4-way, 64 lines of 256 bytes) plus measured hit
 * rates and the bandwidth the compression/fast-clear machinery
 * saves on a real workload.
 */

#include "bench_common.hh"

using namespace attila;
using namespace attila::bench;

int
main(int argc, char** argv)
{
    parseArgs(argc, argv);
    setBench("table2_caches");
    printHeader("Table 2: baseline ATTILA caches");

    const gpu::GpuConfig c = gpu::GpuConfig::baseline();
    std::cout << std::left << std::setw(10) << "Cache"
              << std::setw(11) << "Size(KB)" << std::setw(15)
              << "Associativity" << std::setw(8) << "Lines"
              << std::setw(18) << "Line size(bytes)" << "Ports\n";
    auto row = [](const char* name, u32 kb, u32 ways, u32 line,
                  u32 ports) {
        std::cout << std::left << std::setw(10) << name
                  << std::setw(11) << kb << std::setw(15) << ways
                  << std::setw(8) << kb * 1024 / line
                  << std::setw(18) << line << ports << "\n";
    };
    row("Texture", c.textureCacheKB, c.textureCacheWays,
        c.textureCacheLine, c.textureCachePorts);
    row("Z", c.zCacheKB, c.zCacheWays, c.zCacheLine, 4);
    row("Color", c.colorCacheKB, c.colorCacheWays, c.colorCacheLine,
        4);

    // Measured behaviour on the shadows workload.
    auto params = benchParams(/*frames=*/1);
    workloads::ShadowsWorkload shadows(params);
    const gpu::CommandList commands = buildCommands(shadows);
    RunResult result =
        run(commands, gpu::GpuConfig::baseline(), params.frames);

    auto rate = [&](u64 hits, u64 misses) {
        return hits + misses ? static_cast<f64>(hits) * 100.0 /
                                   static_cast<f64>(hits + misses)
                             : 0.0;
    };
    std::cout << "\nMeasured on the shadows workload ("
              << result.cycles << " cycles):\n";
    const u64 texHits =
        result.statSum("TextureUnit", c.numTextureUnits,
                       "cacheHits");
    const u64 texMisses =
        result.statSum("TextureUnit", c.numTextureUnits,
                       "cacheMisses");
    const u64 zHits =
        result.statSum("ZStencilTest", c.numRops, "cacheHits");
    const u64 zMisses =
        result.statSum("ZStencilTest", c.numRops, "cacheMisses");
    const u64 cHits =
        result.statSum("ColorWrite", c.numRops, "cacheHits");
    const u64 cMisses =
        result.statSum("ColorWrite", c.numRops, "cacheMisses");
    std::cout << std::fixed << std::setprecision(2);
    std::cout << "  texture cache hit rate: "
              << rate(texHits, texMisses) << "%  (" << texHits
              << " / " << texHits + texMisses << ")\n";
    std::cout << "  z cache hit rate:       " << rate(zHits, zMisses)
              << "%  (" << zHits << " / " << zHits + zMisses
              << ")\n";
    std::cout << "  color cache hit rate:   " << rate(cHits, cMisses)
              << "%  (" << cHits << " / " << cHits + cMisses
              << ")\n";

    u64 zBytes = 0, colorBytes = 0, texBytes = 0;
    for (u32 i = 0; i < c.numRops; ++i) {
        zBytes += result.stat("MemoryController.mc.zcache" +
                              std::to_string(i) + ".bytes");
        colorBytes += result.stat("MemoryController.mc.colorcache" +
                                  std::to_string(i) + ".bytes");
    }
    for (u32 t = 0; t < c.numTextureUnits; ++t) {
        texBytes += result.stat("MemoryController.mc.texcache" +
                                std::to_string(t) + ".bytes");
    }
    emitCacheJson("texture", result, texHits, texMisses);
    emitCacheJson("z", result, zHits, zMisses);
    emitCacheJson("color", result, cHits, cMisses);
    std::cout << "  memory traffic: z " << zBytes << " B, color "
              << colorBytes << " B, texture " << texBytes << " B\n";
    std::cout << "  (z traffic benefits from 1:2 / 1:4 lossless"
                 " compression and fast clear)\n";
    return 0;
}

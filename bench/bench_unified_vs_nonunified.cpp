/**
 * @file
 * Scaling study (paper §2.2, ref [1]): the same workloads on the
 * unified (Fig 2) and non-unified (Fig 1) shader models, and the
 * embedded single-shader configuration (ref [2]).
 *
 * The unified pool adapts to the vertex/fragment balance: a
 * fragment-heavy scene keeps all unified units busy while the
 * non-unified model's dedicated vertex shaders idle, and vice versa
 * for a vertex-heavy scene.
 */

#include "bench_common.hh"

using namespace attila;
using namespace attila::bench;

int
main(int argc, char** argv)
{
    parseArgs(argc, argv);
    setBench("unified_vs_nonunified");
    printHeader("Unified vs non-unified shader model (paper"
                " refs [1], [2])");

    struct Scene
    {
        const char* name;
        gpu::CommandList commands;
        u32 frames;
    };
    std::vector<Scene> scenes;
    {
        // Fragment heavy: few triangles, large screen coverage.
        auto fragParams = benchParams(/*frames=*/2, /*size=*/192,
                                      /*aniso=*/4);
        fragParams.detail = 4;
        workloads::ShadowsWorkload shadows(fragParams);
        scenes.push_back({"fragment-heavy (shadows)",
                          buildCommands(shadows),
                          fragParams.frames});

        // Vertex heavy: dense terrain grid at low resolution.
        auto vtxParams = benchParams(/*frames=*/2, /*size=*/96,
                                     /*aniso=*/1);
        vtxParams.detail = 24; // 96x96 grid = ~18K triangles.
        workloads::TerrainWorkload terrain(vtxParams);
        scenes.push_back({"vertex-heavy (dense terrain)",
                          buildCommands(terrain),
                          vtxParams.frames});
    }

    std::cout << std::left << std::setw(30) << "scene"
              << std::setw(24) << "configuration" << std::setw(12)
              << "cycles" << "fps@600MHz\n";
    for (const Scene& scene : scenes) {
        struct Config
        {
            const char* name;
            gpu::GpuConfig config;
        };
        gpu::GpuConfig unified = gpu::GpuConfig::baseline();
        unified.unifiedShaders = true;
        // Area-comparable unified part: 4 small vertex + 2 big
        // fragment units are roughly 3 unified units.
        gpu::GpuConfig unified3 = unified;
        unified3.numShaders = 3;
        unified3.numTextureUnits = 3;
        gpu::GpuConfig nonUnified = gpu::GpuConfig::baseline();
        nonUnified.unifiedShaders = false;
        const Config configs[] = {
            {"unified (2 units)", unified},
            {"unified (3 units)", unified3},
            {"non-unified (4V+2F)", nonUnified},
            {"embedded (1 unit)", gpu::GpuConfig::embedded()},
        };
        for (const Config& cfg : configs) {
            const RunResult result =
                run(scene.commands, cfg.config, scene.frames);
            std::cout << std::left << std::setw(30) << scene.name
                      << std::setw(24) << cfg.name << std::setw(12)
                      << result.cycles << std::fixed
                      << std::setprecision(2) << result.fps()
                      << "\n";
        }
    }
    std::cout << "\nShape: the area-comparable unified part"
                 " (3 units) beats the dedicated 4V+2F model on"
                 " both workload balances; the embedded"
                 " configuration trades performance for area on"
                 " every scene.\n";
    return 0;
}

/**
 * @file
 * Embedded GPU example (paper §2.2, ref [2]): the architecture
 * scaled down to the most basic embedded configuration — a single
 * unified shader doing all the vertex, fragment and triangle
 * shading work, one memory channel, small caches — rendering the
 * same scene as the high-end baseline for comparison.
 */

#include <iostream>

#include "gl/context.hh"
#include "gpu/gpu.hh"
#include "workloads/cubes.hh"

using namespace attila;

namespace
{

u64
renderOn(const gpu::GpuConfig& base, const gpu::CommandList& list)
{
    gpu::GpuConfig config = base;
    config.memorySize = 32u << 20;
    gpu::Gpu gpu(config);
    gpu.submit(list);
    if (!gpu.runUntilIdle()) {
        std::cerr << "pipeline did not drain!\n";
        return 0;
    }
    return gpu.cycle();
}

} // anonymous namespace

int
main()
{
    workloads::WorkloadParams params;
    params.width = 160;
    params.height = 120; // QQVGA-ish: an embedded resolution.
    params.frames = 2;
    params.textureSize = 32;
    params.detail = 4;

    gl::Context ctx(params.width, params.height, 32u << 20);
    workloads::CubesWorkload scene(params);
    scene.setup(ctx);
    for (u32 f = 0; f < params.frames; ++f)
        scene.renderFrame(ctx, f);
    const gpu::CommandList commands = ctx.takeCommands();

    const u64 embedded =
        renderOn(gpu::GpuConfig::embedded(), commands);
    const u64 highEnd =
        renderOn(gpu::GpuConfig::baseline(), commands);

    std::cout << "Embedded GPU (1 unified shader, 1 channel):  "
              << embedded << " cycles\n";
    std::cout << "Baseline GPU (2 shaders, 2 ROPs, 4 channels): "
              << highEnd << " cycles\n";
    if (highEnd) {
        std::cout << "Area/performance trade: embedded is "
                  << static_cast<f64>(embedded) /
                         static_cast<f64>(highEnd)
                  << "x slower on the same scene.\n";
    }
    std::cout << "Same microarchitecture, same simulator — only the"
                 " configuration file changed (paper ref [2]).\n";
    return 0;
}

/**
 * @file
 * event_trace_export: convert a binary .evtrace file (written by a
 * bench run with --event-trace, or by sim::writeEventTraceBinary) to
 * Chrome-tracing JSON for ui.perfetto.dev / chrome://tracing.
 *
 *   event_trace_export input.evtrace output.trace.json [--window N]
 *
 * Also prints a summary of the trace (units, events, per-window
 * aggregate series) to stdout, so it doubles as a quick inspection
 * tool when no browser is at hand.
 */

#include <iostream>
#include <string>

#include "sim/event_trace.hh"
#include "sim/logging.hh"
#include "sim/trace_export.hh"

using namespace attila;

int
main(int argc, char** argv)
{
    std::string input;
    std::string output;
    u64 window = 10000;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--window=", 0) == 0) {
            window = std::stoull(arg.substr(9));
        } else if (arg == "--window" && i + 1 < argc) {
            window = std::stoull(argv[++i]);
        } else if (input.empty()) {
            input = arg;
        } else if (output.empty()) {
            output = arg;
        } else {
            std::cerr << "usage: " << argv[0]
                      << " input.evtrace output.trace.json"
                         " [--window N]\n";
            return 2;
        }
    }
    if (input.empty() || output.empty() || window == 0) {
        std::cerr << "usage: " << argv[0]
                  << " input.evtrace output.trace.json"
                     " [--window N]\n";
        return 2;
    }

    try {
        const sim::EventTraceData data =
            sim::readEventTraceBinary(input);
        sim::writeChromeTraceJson(data, window, output);
        const sim::TraceSeries series =
            sim::aggregateTrace(data, window);

        std::cout << "trace: " << input << "\n"
                  << "  boxes: " << data.boxes.size()
                  << "  signals: " << data.signals.size()
                  << "  caches: " << data.caches.size()
                  << "  shaders: " << data.shaders.size() << "\n"
                  << "  events: " << data.events.size()
                  << "  dropped: " << data.dropped << "\n"
                  << "  series (" << window << "-cycle windows): "
                  << series.counts.size() << " over "
                  << series.buckets << " buckets\n"
                  << "wrote " << output
                  << " — open it at https://ui.perfetto.dev\n";
    } catch (const FatalError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}

/**
 * @file
 * Quickstart: render one frame of spinning, lit, textured cubes on
 * the cycle-level ATTILA GPU and dump it as a PPM image.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * Produces out/quickstart.ppm plus a statistics dump, and prints a
 * summary of what the pipeline did.
 */

#include <fstream>
#include <iostream>

#include "gl/context.hh"
#include "gpu/gpu.hh"
#include "sim/out_dir.hh"
#include "workloads/cubes.hh"

using namespace attila;

int
main()
{
    // 1. Configure a baseline ATTILA GPU (Tables 1 and 2 of the
    //    paper): 2 unified shader units, 2 ROPs, 4 memory channels.
    gpu::GpuConfig config = gpu::GpuConfig::baseline();
    config.memorySize = 32u << 20;
    gpu::Gpu gpu(config);

    // 2. Create an AGL context and record a little scene through
    //    the OpenGL-flavoured API.
    workloads::WorkloadParams params;
    params.width = 256;
    params.height = 256;
    params.frames = 1;
    params.textureSize = 64;
    params.detail = 6;
    gl::Context ctx(params.width, params.height, config.memorySize);

    workloads::CubesWorkload scene(params);
    scene.setup(ctx);
    scene.renderFrame(ctx, 0);

    // 3. Submit the translated command stream and run the clock.
    gpu.submit(ctx.takeCommands());
    if (!gpu.runUntilIdle()) {
        std::cerr << "pipeline did not drain!\n";
        return 1;
    }

    // 4. The DAC dumped the frame at SwapBuffers.
    gpu.frames().back().writePpm(sim::outPath("quickstart.ppm"));

    std::cout << "Rendered " << params.width << "x" << params.height
              << " frame in " << gpu.cycle() << " cycles ("
              << static_cast<f64>(config.clockMHz) * 1e6 /
                     static_cast<f64>(gpu.cycle())
              << " fps at " << config.clockMHz << " MHz)\n";

    auto total = [&](const std::string& name) -> u64 {
        const sim::Statistic* stat = gpu.stats().find(name);
        return stat ? stat->total() : 0;
    };
    std::cout << "  vertices shaded:     "
              << total("Streamer.vertices") << "\n";
    std::cout << "  triangles assembled: "
              << total("PrimitiveAssembly.triangles") << "\n";
    std::cout << "  fragments generated: "
              << total("FragmentGenerator.fragments") << "\n";
    std::cout << "  memory traffic:      "
              << total("MemoryController.readBytes") +
                     total("MemoryController.writeBytes")
              << " bytes\n";

    // 5. Dump the full statistics file (the paper's CSV output).
    std::ofstream csv(sim::outPath("quickstart_stats.csv"));
    gpu.stats().writeTotalsCsv(csv);
    std::cout << "Wrote out/quickstart.ppm and"
                 " out/quickstart_stats.csv\n";
    return 0;
}

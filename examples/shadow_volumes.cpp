/**
 * @file
 * Shadow volumes example: the Doom3-style multi-pass stencil
 * workload (depth prepass, per-light stencil volumes, additive
 * lighting, alpha-tested grate) rendered on the timing simulator AND
 * on the independent reference renderer, with the per-pixel
 * difference reported — the paper's Figure 10 methodology.
 */

#include <iostream>

#include "gpu/gpu.hh"
#include "gpu/ref_renderer.hh"
#include "sim/out_dir.hh"
#include "workloads/shadows.hh"

using namespace attila;

int
main(int argc, char** argv)
{
    workloads::WorkloadParams params;
    params.width = 256;
    params.height = 256;
    params.frames = argc > 1
                        ? static_cast<u32>(std::atoi(argv[1]))
                        : 2;
    params.textureSize = 64;
    params.detail = 6;

    // Record the scene once; feed the identical stream to both
    // consumers.
    gl::Context ctx(params.width, params.height, 32u << 20);
    workloads::ShadowsWorkload scene(params);
    scene.setup(ctx);
    for (u32 f = 0; f < params.frames; ++f)
        scene.renderFrame(ctx, f);
    const gpu::CommandList commands = ctx.takeCommands();

    gpu::GpuConfig config = gpu::GpuConfig::baseline();
    config.memorySize = 32u << 20;
    gpu::Gpu gpu(config);
    gpu.submit(commands);
    if (!gpu.runUntilIdle()) {
        std::cerr << "pipeline did not drain!\n";
        return 1;
    }

    gpu::RefRenderer reference(32u << 20);
    reference.execute(commands);

    std::cout << "frame  cycles(cum)  diff-pixels\n";
    for (u32 f = 0; f < params.frames; ++f) {
        const u64 diff =
            gpu.frames()[f].diffCount(reference.frames()[f]);
        std::cout << "  " << f << "    " << gpu.cycle() << "   "
                  << diff << " / "
                  << gpu.frames()[f].pixels.size() << "\n";
        gpu.frames()[f].writePpm(sim::outPath(
            "shadow_sim_frame" + std::to_string(f) + ".ppm"));
        reference.frames()[f].writePpm(sim::outPath(
            "shadow_ref_frame" + std::to_string(f) + ".ppm"));
    }

    auto total = [&](const std::string& name) -> u64 {
        const sim::Statistic* stat = gpu.stats().find(name);
        return stat ? stat->total() : 0;
    };
    std::cout << "stencil-tested fragments: ";
    u64 tested = 0;
    for (u32 r = 0; r < config.numRops; ++r) {
        tested += total("ZStencilTest" + std::to_string(r) +
                        ".fragmentsTested");
    }
    std::cout << tested << "\n";
    std::cout << "HZ tiles culled: "
              << total("HierarchicalZ.tilesCulled") << " of "
              << total("HierarchicalZ.tiles") << "\n";
    std::cout << "Wrote out/shadow_sim_frame*.ppm /"
                 " out/shadow_ref_frame*.ppm\n";
    return 0;
}

/**
 * @file
 * Signal Trace Visualizer: the performance-debugging tool of the
 * paper (§3).  Runs a small render with per-cycle signal tracing
 * enabled, then renders an ASCII timeline of per-signal activity —
 * the utilization view the original GUI tool provided.
 */

#include <algorithm>
#include <iomanip>
#include <iostream>

#include "gl/context.hh"
#include "gpu/gpu.hh"
#include "sim/out_dir.hh"
#include "sim/signal_trace.hh"
#include "workloads/cubes.hh"

using namespace attila;

int
main()
{
    const std::string tracePath =
        sim::outPath("pipeline.sigtrace");

    gpu::GpuConfig config = gpu::GpuConfig::baseline();
    config.memorySize = 32u << 20;
    config.signalTracePath = tracePath;
    gpu::Gpu gpu(config);

    workloads::WorkloadParams params;
    params.width = 128;
    params.height = 128;
    params.frames = 1;
    params.textureSize = 32;
    params.detail = 4;
    gl::Context ctx(params.width, params.height, config.memorySize);
    workloads::CubesWorkload scene(params);
    scene.setup(ctx);
    scene.renderFrame(ctx, 0);
    gpu.submit(ctx.takeCommands());
    gpu.runUntilIdle();
    gpu.simulator().tracer()->flush();

    // --- Analysis ----------------------------------------------------
    sim::SignalTraceReader reader(tracePath);
    std::cout << "signal trace: " << reader.records().size()
              << " records, cycles " << reader.firstCycle() << ".."
              << reader.lastCycle() << "\n\n";

    // Select the busiest data signals for display.
    struct Row
    {
        std::string name;
        u64 total;
    };
    std::vector<Row> rows;
    for (const std::string& name : reader.signalNames()) {
        if (name.find(".credit") != std::string::npos)
            continue; // Flow control noise.
        rows.push_back(
            {name, reader.activity(name, 0, ~0ull >> 1)});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) {
                  return a.total > b.total;
              });
    rows.resize(std::min<std::size_t>(rows.size(), 16));

    // ASCII timeline: 60 buckets across the run.
    const u32 buckets = 60;
    const Cycle span =
        std::max<Cycle>(1, reader.lastCycle() - reader.firstCycle());
    std::cout << std::left << std::setw(26) << "signal"
              << " activity timeline (" << span / buckets
              << " cycles per column)\n";
    const char* shade = " .:-=+*#%@";
    for (const Row& row : rows) {
        u64 maxBucket = 1;
        std::vector<u64> hist(buckets, 0);
        for (u32 b = 0; b < buckets; ++b) {
            const Cycle from =
                reader.firstCycle() + span * b / buckets;
            const Cycle to =
                reader.firstCycle() + span * (b + 1) / buckets;
            hist[b] = reader.activity(row.name, from, to);
            maxBucket = std::max(maxBucket, hist[b]);
        }
        std::cout << std::left << std::setw(26) << row.name << " ";
        for (u32 b = 0; b < buckets; ++b) {
            const u32 level = static_cast<u32>(
                hist[b] * 9 / maxBucket);
            std::cout << shade[level];
        }
        std::cout << "  (" << row.total << ")\n";
    }
    std::cout << "\nTrace file: " << tracePath << "\n";
    return 0;
}

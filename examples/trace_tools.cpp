/**
 * @file
 * Trace tools example: the GLInterceptor / GLPlayer workflow of the
 * paper's OpenGL framework (§4).
 *
 *   1. Record the terrain workload into an AGL trace file (the
 *      GLInterceptor role).
 *   2. Validate the trace by replaying it and comparing frames
 *      against the original (the GLPlayer role).
 *   3. Hot-start the trace at its last frame — state changes and
 *      buffer uploads are applied, earlier draws skipped — and show
 *      that the hot-started frame matches the full replay.
 */

#include <iostream>

#include "gl/trace.hh"
#include "gpu/ref_renderer.hh"
#include "sim/out_dir.hh"
#include "workloads/terrain.hh"

using namespace attila;

int
main()
{
    const std::string tracePath = sim::outPath("terrain.agltrace");
    workloads::WorkloadParams params;
    params.width = 192;
    params.height = 192;
    params.frames = 3;
    params.textureSize = 64;
    params.detail = 6;

    // --- 1. Capture ------------------------------------------------
    gpu::CommandList original;
    {
        gl::Context ctx(params.width, params.height, 32u << 20);
        gl::TraceRecorder recorder(tracePath);
        ctx.setRecorder(&recorder);
        workloads::TerrainWorkload scene(params);
        scene.setup(ctx);
        for (u32 f = 0; f < params.frames; ++f)
            scene.renderFrame(ctx, f);
        original = ctx.takeCommands();
        std::cout << "captured " << recorder.recordCount()
                  << " API calls, " << recorder.frameCount()
                  << " frames -> " << tracePath << "\n";
    }

    // --- 2. Validate -----------------------------------------------
    gl::TracePlayer player(tracePath);
    gpu::RefRenderer referenceOriginal(32u << 20);
    referenceOriginal.execute(original);

    {
        gl::Context ctx(params.width, params.height, 32u << 20);
        player.play(ctx);
        gpu::RefRenderer replayed(32u << 20);
        replayed.execute(ctx.takeCommands());
        u64 diff = 0;
        for (u32 f = 0; f < params.frames; ++f) {
            diff += replayed.frames()[f].diffCount(
                referenceOriginal.frames()[f]);
        }
        std::cout << "replay validation: " << diff
                  << " differing pixels across " << params.frames
                  << " frames\n";
    }

    // --- 3. Hot start ------------------------------------------------
    {
        gl::Context ctx(params.width, params.height, 32u << 20);
        player.play(ctx, params.frames - 1); // Last frame only.
        gpu::RefRenderer hot(32u << 20);
        hot.execute(ctx.takeCommands());
        const u64 diff = hot.frames().back().diffCount(
            referenceOriginal.frames().back());
        std::cout << "hot start at frame " << params.frames - 1
                  << ": " << diff << " differing pixels\n";
        hot.frames().back().writePpm(
            sim::outPath("terrain_hotstart.ppm"));
    }
    return 0;
}

/**
 * @file
 * ClipperEmulator: trivial rejection of triangles completely outside
 * the frustum volume (paper §3).  ATTILA's clipper performs only
 * trivial rejection; partially visible triangles flow on to the
 * rasterizer, which handles them via 2D homogeneous rasterization.
 */

#ifndef ATTILA_EMU_CLIPPER_EMULATOR_HH
#define ATTILA_EMU_CLIPPER_EMULATOR_HH

#include "emu/vector.hh"

namespace attila::emu
{

/** Trivial-rejection clipper. */
class ClipperEmulator
{
  public:
    /**
     * True when the triangle with clip-space positions @p v0 @p v1
     * @p v2 is certainly invisible: all three vertices lie outside
     * the same frustum plane (|x| <= w, |y| <= w, -w <= z <= w) or
     * all have non-positive w.
     */
    static bool
    trivialReject(const Vec4& v0, const Vec4& v1, const Vec4& v2)
    {
        const Vec4* v[3] = {&v0, &v1, &v2};

        bool allWNonPositive = true;
        for (u32 i = 0; i < 3; ++i)
            allWNonPositive &= v[i]->w <= 0.0f;
        if (allWNonPositive)
            return true;

        // One outcode bit per frustum plane.
        u32 andCode = ~0u;
        for (u32 i = 0; i < 3; ++i) {
            const Vec4& p = *v[i];
            u32 code = 0;
            if (p.x < -p.w) code |= 1u << 0;
            if (p.x > p.w) code |= 1u << 1;
            if (p.y < -p.w) code |= 1u << 2;
            if (p.y > p.w) code |= 1u << 3;
            if (p.z < -p.w) code |= 1u << 4;
            if (p.z > p.w) code |= 1u << 5;
            andCode &= code;
        }
        return andCode != 0;
    }
};

} // namespace attila::emu

#endif // ATTILA_EMU_CLIPPER_EMULATOR_HH

#include "emu/decoded_program.hh"

#include <cstdlib>
#include <string>

#include "sim/logging.hh"

namespace attila::emu
{

// The flat register file relies on in/out/temp being laid out
// back to back inside ShaderThreadState.
static_assert(offsetof(ShaderThreadState, in) == 0);
static_assert(offsetof(ShaderThreadState, out) ==
              decoded::outBase * sizeof(Vec4));
static_assert(offsetof(ShaderThreadState, temp) ==
              decoded::tempBase * sizeof(Vec4));

namespace
{

DecodedSrc
decodeSrc(const SrcOperand& src)
{
    DecodedSrc out;
    switch (src.bank) {
      case Bank::Attrib:
        out.offset = static_cast<u16>(decoded::inBase + src.index);
        break;
      case Bank::Temp:
        out.offset = static_cast<u16>(decoded::tempBase + src.index);
        break;
      case Bank::Param:
        out.offset = src.index;
        out.fromConstants = true;
        break;
      default:
        panic("decoded program: read from invalid bank");
    }
    out.swz = src.swizzle;
    out.negate = src.negate;
    out.identity = !src.negate && src.swizzle[0] == 0 &&
                   src.swizzle[1] == 1 && src.swizzle[2] == 2 &&
                   src.swizzle[3] == 3;
    if (src.swizzle[0] == src.swizzle[1] &&
        src.swizzle[1] == src.swizzle[2] &&
        src.swizzle[2] == src.swizzle[3])
        out.splat = static_cast<u8>(src.swizzle[0] + 1);
    return out;
}

} // anonymous namespace

DecodedProgram
DecodedProgram::decode(const ShaderProgram& program)
{
    DecodedProgram out;
    out.code.reserve(program.code.size());
    for (const Instruction& ins : program.code) {
        const OpcodeInfo& info = opcodeInfo(ins.op);
        DecodedIns d;
        d.op = ins.op;
        d.numSrc = info.numSrc;
        d.latency = static_cast<u8>(info.latency);
        d.isTexture = info.isTexture;
        d.hasDst = info.hasDst;
        d.saturate = ins.saturate;
        if (info.hasDst) {
            switch (ins.dst.bank) {
              case Bank::Temp:
                d.dstOffset = static_cast<u16>(decoded::tempBase +
                                               ins.dst.index);
                d.dstTempIndex = ins.dst.index;
                break;
              case Bank::Output:
                d.dstOffset = static_cast<u16>(decoded::outBase +
                                               ins.dst.index);
                break;
              default:
                panic("decoded program: write to invalid bank");
            }
            d.writeMask = ins.dst.writeMask;
        }
        d.texUnit = ins.texUnit;
        d.texTarget = ins.texTarget;
        d.texProjected = ins.op == Opcode::TXP;
        d.texBiased = ins.op == Opcode::TXB;
        for (u32 i = 0; i < info.numSrc; ++i)
            d.src[i] = decodeSrc(ins.src[i]);
        out.hasTexture = out.hasTexture || d.isTexture;
        out.hasKil = out.hasKil || ins.op == Opcode::KIL;
        out.code.push_back(d);
    }
    return out;
}

std::optional<bool>
envFastPathOverride()
{
    const char* env = std::getenv("ATTILA_EMU_FASTPATH");
    if (!env)
        return std::nullopt;
    const std::string flag(env);
    if (flag == "1" || flag == "true" || flag == "on")
        return true;
    if (flag == "0" || flag == "false" || flag == "off")
        return false;
    fatal("ATTILA_EMU_FASTPATH='", flag,
          "' (use 0|1|false|true|off|on)");
}

bool
emuFastPathDefault()
{
    return envFastPathOverride().value_or(true);
}

} // namespace attila::emu

/**
 * @file
 * DecodedProgram: the pre-decoded form of a ShaderProgram that the
 * emulator fast path executes (see docs/SIMULATION_MODEL.md).
 *
 * The interpreter's per-step costs are all *decode* costs: switching
 * on the operand bank, applying swizzles that are usually identity,
 * re-reading OpcodeInfo.  None of that depends on thread state, so it
 * is resolved exactly once per program here: every source operand
 * becomes either a flat offset into the thread's register file or a
 * constant-bank index, with its swizzle/negate baked into a single
 * "identity" flag plus component indices; every instruction carries
 * its opcode class, latency, texture fields and destination
 * pre-resolved.  step() on the fast path never inspects an
 * Instruction again.
 *
 * Decoding changes *where* values are read from, never *how* they
 * are combined: the arithmetic in the decoded interpreter is
 * expression-for-expression identical to ShaderEmulator::step(), so
 * registers stay bit-identical between the two paths.
 */

#ifndef ATTILA_EMU_DECODED_PROGRAM_HH
#define ATTILA_EMU_DECODED_PROGRAM_HH

#include <cstddef>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "emu/shader_emulator.hh"
#include "emu/shader_isa.hh"

namespace attila::emu
{

/** Flat register-file offsets (Vec4 units) into ShaderThreadState:
 * in, out and temp are contiguous arrays, so one base offset replaces
 * the per-read bank switch. */
namespace decoded
{
constexpr u32 inBase = 0;
constexpr u32 outBase = inBase + regix::numInputRegs;
constexpr u32 tempBase = outBase + regix::numOutputRegs;
constexpr u32 numThreadRegs = tempBase + regix::numTempRegs;

/** View a thread's registers as one flat Vec4 array. */
inline Vec4*
regs(ShaderThreadState& state)
{
    return state.in.data();
}

inline const Vec4*
regs(const ShaderThreadState& state)
{
    return state.in.data();
}

} // namespace decoded

/** A pre-resolved source operand. */
struct DecodedSrc
{
    /** Flat thread-register offset, or constant index when
     * fromConstants is set. */
    u16 offset = 0;
    bool fromConstants = false;
    /** Swizzle is xyzw and negate is off: plain copy. */
    bool identity = true;
    /** All four swizzle lanes read the same component (the .x-style
     * scalar reads ARB programs are full of): component + 1, or 0
     * when the swizzle is not a splat. */
    u8 splat = 0;
    std::array<u8, 4> swz{0, 1, 2, 3};
    bool negate = false;
};

/** A pre-resolved instruction: everything step() decides per step,
 * decided once. */
struct DecodedIns
{
    Opcode op = Opcode::END;
    u8 numSrc = 0;
    u8 latency = 1;
    bool isTexture = false;
    bool hasDst = false;
    bool saturate = false;
    /** Destination as a flat thread-register offset; writeMask 0xf
     * means write all components unmasked. */
    u16 dstOffset = 0;
    u8 writeMask = 0xf;
    /** Destination temp index when the target is the Temp bank, else
     * -1 (the ShaderUnit scoreboard keys on temp indices). */
    s16 dstTempIndex = -1;
    u8 texUnit = 0;
    TexTarget texTarget = TexTarget::Tex2D;
    bool texProjected = false; ///< TXP
    bool texBiased = false;    ///< TXB: bias taken from coord.w.
    std::array<DecodedSrc, 3> src{};
};

/** A flattened program ready for the fast interpreter. */
struct DecodedProgram
{
    std::vector<DecodedIns> code;

    /** Whether any instruction is a texture access / a KIL.  A
     * program with neither keeps a quad converged from start to
     * END, which the quad interpreter exploits. */
    bool hasTexture = false;
    bool hasKil = false;

    /** Decode @p program (panics on invalid banks, like step()). */
    static DecodedProgram decode(const ShaderProgram& program);
};

/**
 * Cache of decoded programs keyed by program identity.  Programs are
 * immutable once assembled and handed around as
 * shared_ptr<const ShaderProgram>, so the object address identifies
 * the program; each entry keeps a strong reference so a recycled
 * allocation can never alias a stale decode — releasing the old
 * program and uploading a new one at the same address replaces the
 * entry's source pointer check and re-decodes.
 *
 * Not thread-safe: keep one cache per ShaderUnit / RefRenderer (each
 * box is clocked by exactly one scheduler thread per phase).
 */
class DecodedProgramCache
{
  public:
    /** Decoded form of @p program, decoding on first sight. */
    const DecodedProgram&
    get(const ShaderProgramPtr& program)
    {
        Entry& entry = _entries[program.get()];
        if (entry.source != program) {
            entry.source = program;
            entry.decoded = DecodedProgram::decode(*program);
        }
        return entry.decoded;
    }

    std::size_t
    size() const
    {
        return _entries.size();
    }

  private:
    struct Entry
    {
        ShaderProgramPtr source;
        DecodedProgram decoded;
    };
    std::unordered_map<const ShaderProgram*, Entry> _entries;
};

/** The ATTILA_EMU_FASTPATH environment override (unset: nullopt).
 * Accepts 1|true|on / 0|false|off; anything else is fatal. */
std::optional<bool> envFastPathOverride();

/** Effective default for paths without a GpuConfig (RefRenderer,
 * benches): the environment override, or true. */
bool emuFastPathDefault();

} // namespace attila::emu

#endif // ATTILA_EMU_DECODED_PROGRAM_HH

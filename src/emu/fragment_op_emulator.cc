#include "emu/fragment_op_emulator.hh"

#include <algorithm>
#include <cmath>

namespace attila::emu
{

u32
quantizeDepth(f32 z)
{
    const f32 clamped = std::clamp(z, 0.0f, 1.0f);
    return static_cast<u32>(
        std::lround(static_cast<f64>(clamped) * maxDepthValue));
}

bool
FragmentOpEmulator::compare(CompareFunc func, u32 ref, u32 stored)
{
    switch (func) {
      case CompareFunc::Never: return false;
      case CompareFunc::Less: return ref < stored;
      case CompareFunc::Equal: return ref == stored;
      case CompareFunc::LessEqual: return ref <= stored;
      case CompareFunc::Greater: return ref > stored;
      case CompareFunc::NotEqual: return ref != stored;
      case CompareFunc::GreaterEqual: return ref >= stored;
      case CompareFunc::Always: return true;
    }
    return false;
}

u8
FragmentOpEmulator::stencilOperate(StencilOp op, u8 stored, u8 ref,
                                   u8 writeMask)
{
    u8 value = stored;
    switch (op) {
      case StencilOp::Keep:
        return stored;
      case StencilOp::Zero:
        value = 0;
        break;
      case StencilOp::Replace:
        value = ref;
        break;
      case StencilOp::Incr:
        value = stored == 0xff ? 0xff : static_cast<u8>(stored + 1);
        break;
      case StencilOp::Decr:
        value = stored == 0 ? 0 : static_cast<u8>(stored - 1);
        break;
      case StencilOp::Invert:
        value = static_cast<u8>(~stored);
        break;
      case StencilOp::IncrWrap:
        value = static_cast<u8>(stored + 1);
        break;
      case StencilOp::DecrWrap:
        value = static_cast<u8>(stored - 1);
        break;
    }
    return static_cast<u8>((stored & ~writeMask) |
                           (value & writeMask));
}

ZStencilResult
FragmentOpEmulator::zStencilTest(const ZStencilState& state,
                                 u32 fragDepth, u32 stored,
                                 bool backFacing)
{
    ZStencilResult result;
    const u32 storedDepth = depthOf(stored);
    const u8 storedStencil = stencilOf(stored);

    // Double-sided stencil: back-facing fragments use the back
    // state set.
    const bool useBack = state.twoSided && backFacing;
    const CompareFunc func = useBack ? state.backFunc
                                     : state.stencilFunc;
    const u8 ref = useBack ? state.backRef : state.stencilRef;
    const u8 compareMask =
        useBack ? state.backCompareMask : state.stencilCompareMask;
    const u8 writeMask =
        useBack ? state.backWriteMask : state.stencilWriteMask;
    const StencilOp failOp =
        useBack ? state.backFail : state.stencilFail;
    const StencilOp depthFailOp =
        useBack ? state.backDepthFail : state.depthFail;
    const StencilOp depthPassOp =
        useBack ? state.backDepthPass : state.depthPass;

    if (state.stencilTest) {
        const u8 maskedRef = ref & compareMask;
        const u8 maskedStored = storedStencil & compareMask;
        if (!compare(func, maskedRef, maskedStored)) {
            // Stencil fail: update stencil, cull fragment.
            const u8 ns = stencilOperate(failOp, storedStencil, ref,
                                         writeMask);
            result.pass = false;
            result.newZS = packDepthStencil(storedDepth, ns);
            return result;
        }
    }

    bool depthPass = true;
    if (state.depthTest)
        depthPass = compare(state.depthFunc, fragDepth, storedDepth);

    u8 newStencil = storedStencil;
    if (state.stencilTest) {
        const StencilOp op = depthPass ? depthPassOp : depthFailOp;
        newStencil = stencilOperate(op, storedStencil, ref,
                                    writeMask);
    }

    u32 newDepth = storedDepth;
    if (depthPass && state.depthTest && state.depthWrite)
        newDepth = fragDepth;

    result.pass = depthPass;
    result.newZS = packDepthStencil(newDepth, newStencil);
    return result;
}

Vec4
FragmentOpEmulator::blendFactor(BlendFactor f, const Vec4& src,
                                const Vec4& dst, const Vec4& constant)
{
    switch (f) {
      case BlendFactor::Zero:
        return Vec4(0.0f);
      case BlendFactor::One:
        return Vec4(1.0f);
      case BlendFactor::SrcColor:
        return src;
      case BlendFactor::OneMinusSrcColor:
        return Vec4(1.0f) - src;
      case BlendFactor::DstColor:
        return dst;
      case BlendFactor::OneMinusDstColor:
        return Vec4(1.0f) - dst;
      case BlendFactor::SrcAlpha:
        return Vec4(src.w);
      case BlendFactor::OneMinusSrcAlpha:
        return Vec4(1.0f - src.w);
      case BlendFactor::DstAlpha:
        return Vec4(dst.w);
      case BlendFactor::OneMinusDstAlpha:
        return Vec4(1.0f - dst.w);
      case BlendFactor::ConstantColor:
        return constant;
      case BlendFactor::OneMinusConstantColor:
        return Vec4(1.0f) - constant;
      case BlendFactor::SrcAlphaSaturate: {
        const f32 f2 = std::min(src.w, 1.0f - dst.w);
        return {f2, f2, f2, 1.0f};
      }
    }
    return Vec4(0.0f);
}

Vec4
FragmentOpEmulator::blend(const BlendState& state, const Vec4& src,
                          const Vec4& dst)
{
    const Vec4 sf = blendFactor(state.srcFactor, src, dst,
                                state.constantColor);
    const Vec4 df = blendFactor(state.dstFactor, src, dst,
                                state.constantColor);
    switch (state.equation) {
      case BlendEquation::Add:
        return src * sf + dst * df;
      case BlendEquation::Subtract:
        return src * sf - dst * df;
      case BlendEquation::ReverseSubtract:
        return dst * df - src * sf;
      case BlendEquation::Min:
        return vmin(src, dst);
      case BlendEquation::Max:
        return vmax(src, dst);
    }
    return src;
}

u32
FragmentOpEmulator::packRgba8(const Vec4& c)
{
    const Vec4 s = saturate(c);
    const u32 r = static_cast<u32>(std::lround(s.x * 255.0f));
    const u32 g = static_cast<u32>(std::lround(s.y * 255.0f));
    const u32 b = static_cast<u32>(std::lround(s.z * 255.0f));
    const u32 a = static_cast<u32>(std::lround(s.w * 255.0f));
    return r | (g << 8) | (b << 16) | (a << 24);
}

Vec4
FragmentOpEmulator::unpackRgba8(u32 word)
{
    return {static_cast<f32>(word & 0xff) / 255.0f,
            static_cast<f32>((word >> 8) & 0xff) / 255.0f,
            static_cast<f32>((word >> 16) & 0xff) / 255.0f,
            static_cast<f32>((word >> 24) & 0xff) / 255.0f};
}

u32
FragmentOpEmulator::colorWrite(const BlendState& state,
                               const Vec4& src, u32 storedRgba8)
{
    Vec4 color = src;
    if (state.enabled)
        color = blend(state, src, unpackRgba8(storedRgba8));
    const u32 packed = packRgba8(color);
    if (state.colorMask == 0xf)
        return packed;
    u32 out = storedRgba8;
    for (u32 i = 0; i < 4; ++i) {
        if (state.colorMask & (1u << i)) {
            const u32 shift = i * 8;
            out = (out & ~(0xffu << shift)) |
                  (packed & (0xffu << shift));
        }
    }
    return out;
}

} // namespace attila::emu

/**
 * @file
 * FragmentOpEmulator: the per-fragment test and framebuffer update
 * functions (paper §3) — depth test, stencil test, blending and
 * colour packing, exactly as the OpenGL API defines them.
 *
 * Used by the ROPz (ZStencilTest) and ROPc (ColorWrite) boxes and by
 * the reference renderer.
 */

#ifndef ATTILA_EMU_FRAGMENT_OP_EMULATOR_HH
#define ATTILA_EMU_FRAGMENT_OP_EMULATOR_HH

#include "emu/vector.hh"
#include "sim/types.hh"

namespace attila::emu
{

/** OpenGL comparison functions (depth, stencil, alpha tests). */
enum class CompareFunc : u8
{
    Never, Less, Equal, LessEqual, Greater, NotEqual, GreaterEqual,
    Always,
};

/** OpenGL stencil update operations. */
enum class StencilOp : u8
{
    Keep, Zero, Replace, Incr, Decr, Invert, IncrWrap, DecrWrap,
};

/** OpenGL blending factors. */
enum class BlendFactor : u8
{
    Zero, One, SrcColor, OneMinusSrcColor, DstColor,
    OneMinusDstColor, SrcAlpha, OneMinusSrcAlpha, DstAlpha,
    OneMinusDstAlpha, ConstantColor, OneMinusConstantColor,
    SrcAlphaSaturate,
};

/** OpenGL blending equations. */
enum class BlendEquation : u8 { Add, Subtract, ReverseSubtract, Min,
                                Max };

/** Depth/stencil buffer element: 24-bit depth + 8-bit stencil. */
constexpr u32 depthBits = 24;
constexpr u32 maxDepthValue = (1u << depthBits) - 1;

/** Pack depth (low 24 bits) and stencil (high 8 bits). */
inline u32
packDepthStencil(u32 depth, u8 stencil)
{
    return (static_cast<u32>(stencil) << depthBits) |
           (depth & maxDepthValue);
}

inline u32
depthOf(u32 zs)
{
    return zs & maxDepthValue;
}

inline u8
stencilOf(u32 zs)
{
    return static_cast<u8>(zs >> depthBits);
}

/** Convert a [0,1] float depth to the 24-bit integer scale. */
u32 quantizeDepth(f32 z);

/** Depth/stencil state for one batch (from the GPU registers). */
struct ZStencilState
{
    bool depthTest = false;
    CompareFunc depthFunc = CompareFunc::Less;
    bool depthWrite = true;

    bool stencilTest = false;
    CompareFunc stencilFunc = CompareFunc::Always;
    u8 stencilRef = 0;
    u8 stencilCompareMask = 0xff;
    u8 stencilWriteMask = 0xff;
    StencilOp stencilFail = StencilOp::Keep;
    StencilOp depthFail = StencilOp::Keep;
    StencilOp depthPass = StencilOp::Keep;

    /**
     * Double-sided stencil (a paper §7 extension): back-facing
     * fragments use the separate state below, letting shadow
     * volumes render in a single pass.
     */
    bool twoSided = false;
    CompareFunc backFunc = CompareFunc::Always;
    u8 backRef = 0;
    u8 backCompareMask = 0xff;
    u8 backWriteMask = 0xff;
    StencilOp backFail = StencilOp::Keep;
    StencilOp backDepthFail = StencilOp::Keep;
    StencilOp backDepthPass = StencilOp::Keep;
};

/** Blending / colour write state for one batch. */
struct BlendState
{
    bool enabled = false;
    BlendEquation equation = BlendEquation::Add;
    BlendFactor srcFactor = BlendFactor::One;
    BlendFactor dstFactor = BlendFactor::Zero;
    Vec4 constantColor;
    u8 colorMask = 0xf; ///< Bit 0 red .. bit 3 alpha.
};

/** Result of the combined stencil + depth test on one fragment. */
struct ZStencilResult
{
    bool pass = false; ///< Fragment survives to colour write.
    u32 newZS = 0;     ///< Updated depth/stencil buffer word.
};

/**
 * Per-fragment test and update emulation.  All methods are static:
 * state travels with the call.
 */
class FragmentOpEmulator
{
  public:
    /** Evaluate an OpenGL comparison. */
    static bool compare(CompareFunc func, u32 ref, u32 stored);

    /**
     * Full OpenGL stencil + depth test for one fragment.
     * @param state test configuration
     * @param fragDepth quantized 24-bit fragment depth
     * @param stored current depth/stencil buffer word
     * @param backFacing selects the back-face stencil state when
     *        two-sided stencil is enabled
     */
    static ZStencilResult zStencilTest(const ZStencilState& state,
                                       u32 fragDepth, u32 stored,
                                       bool backFacing = false);

    /** Apply a stencil op to a stored stencil value. */
    static u8 stencilOperate(StencilOp op, u8 stored, u8 ref,
                             u8 writeMask);

    /** Evaluate one blend factor. */
    static Vec4 blendFactor(BlendFactor f, const Vec4& src,
                            const Vec4& dst, const Vec4& constant);

    /**
     * Blend @p src over @p dst per @p state (colour mask applied by
     * the caller via writeColor()).
     */
    static Vec4 blend(const BlendState& state, const Vec4& src,
                      const Vec4& dst);

    /**
     * Final colour buffer update: blend when enabled, clamp, apply
     * the colour mask against @p stored and return the packed RGBA8
     * word.
     */
    static u32 colorWrite(const BlendState& state, const Vec4& src,
                          u32 storedRgba8);

    /** Pack a [0,1]-clamped colour as RGBA8 (r in byte 0). */
    static u32 packRgba8(const Vec4& c);

    /** Unpack an RGBA8 word. */
    static Vec4 unpackRgba8(u32 word);
};

} // namespace attila::emu

#endif // ATTILA_EMU_FRAGMENT_OP_EMULATOR_HH

/**
 * @file
 * Mat4: 4x4 float matrix used by the fixed-function vertex pipeline
 * (modelview / projection stacks) and by workload scene setup.
 */

#ifndef ATTILA_EMU_MATRIX_HH
#define ATTILA_EMU_MATRIX_HH

#include <array>
#include <cmath>

#include "emu/vector.hh"

namespace attila::emu
{

/** Row-major 4x4 float matrix. */
struct Mat4
{
    // m[row][col]
    std::array<std::array<f32, 4>, 4> m{};

    /** Identity matrix. */
    static Mat4
    identity()
    {
        Mat4 r;
        for (u32 i = 0; i < 4; ++i)
            r.m[i][i] = 1.0f;
        return r;
    }

    /** Translation matrix. */
    static Mat4
    translate(f32 x, f32 y, f32 z)
    {
        Mat4 r = identity();
        r.m[0][3] = x;
        r.m[1][3] = y;
        r.m[2][3] = z;
        return r;
    }

    /** Uniform / non-uniform scale matrix. */
    static Mat4
    scale(f32 x, f32 y, f32 z)
    {
        Mat4 r;
        r.m[0][0] = x;
        r.m[1][1] = y;
        r.m[2][2] = z;
        r.m[3][3] = 1.0f;
        return r;
    }

    /** Rotation of @p radians around axis (x, y, z) (normalized). */
    static Mat4
    rotate(f32 radians, f32 x, f32 y, f32 z)
    {
        const f32 len = std::sqrt(x * x + y * y + z * z);
        if (len > 0.0f) {
            x /= len;
            y /= len;
            z /= len;
        }
        const f32 c = std::cos(radians);
        const f32 s = std::sin(radians);
        const f32 t = 1.0f - c;
        Mat4 r = identity();
        r.m[0][0] = t * x * x + c;
        r.m[0][1] = t * x * y - s * z;
        r.m[0][2] = t * x * z + s * y;
        r.m[1][0] = t * x * y + s * z;
        r.m[1][1] = t * y * y + c;
        r.m[1][2] = t * y * z - s * x;
        r.m[2][0] = t * x * z - s * y;
        r.m[2][1] = t * y * z + s * x;
        r.m[2][2] = t * z * z + c;
        return r;
    }

    /** OpenGL-style perspective frustum projection. */
    static Mat4
    frustum(f32 l, f32 r, f32 b, f32 t, f32 n, f32 f)
    {
        Mat4 out;
        out.m[0][0] = 2.0f * n / (r - l);
        out.m[0][2] = (r + l) / (r - l);
        out.m[1][1] = 2.0f * n / (t - b);
        out.m[1][2] = (t + b) / (t - b);
        out.m[2][2] = -(f + n) / (f - n);
        out.m[2][3] = -2.0f * f * n / (f - n);
        out.m[3][2] = -1.0f;
        return out;
    }

    /** gluPerspective-style projection. */
    static Mat4
    perspective(f32 fovy_radians, f32 aspect, f32 n, f32 f)
    {
        const f32 t = n * std::tan(fovy_radians / 2.0f);
        const f32 r = t * aspect;
        return frustum(-r, r, -t, t, n, f);
    }

    /** glOrtho-style projection. */
    static Mat4
    ortho(f32 l, f32 r, f32 b, f32 t, f32 n, f32 f)
    {
        Mat4 out = identity();
        out.m[0][0] = 2.0f / (r - l);
        out.m[0][3] = -(r + l) / (r - l);
        out.m[1][1] = 2.0f / (t - b);
        out.m[1][3] = -(t + b) / (t - b);
        out.m[2][2] = -2.0f / (f - n);
        out.m[2][3] = -(f + n) / (f - n);
        return out;
    }

    /** gluLookAt-style view matrix. */
    static Mat4
    lookAt(const Vec4& eye, const Vec4& center, const Vec4& up)
    {
        Vec4 fwd = center - eye;
        const f32 fl = std::sqrt(dot3(fwd, fwd));
        fwd = fwd * (fl > 0.0f ? 1.0f / fl : 0.0f);
        Vec4 side = cross3(fwd, up);
        const f32 sl = std::sqrt(dot3(side, side));
        side = side * (sl > 0.0f ? 1.0f / sl : 0.0f);
        const Vec4 u = cross3(side, fwd);
        Mat4 r = identity();
        r.m[0][0] = side.x; r.m[0][1] = side.y; r.m[0][2] = side.z;
        r.m[1][0] = u.x;    r.m[1][1] = u.y;    r.m[1][2] = u.z;
        r.m[2][0] = -fwd.x; r.m[2][1] = -fwd.y; r.m[2][2] = -fwd.z;
        return r * translate(-eye.x, -eye.y, -eye.z);
    }

    Mat4
    operator*(const Mat4& o) const
    {
        Mat4 r;
        for (u32 i = 0; i < 4; ++i) {
            for (u32 j = 0; j < 4; ++j) {
                f32 acc = 0.0f;
                for (u32 k = 0; k < 4; ++k)
                    acc += m[i][k] * o.m[k][j];
                r.m[i][j] = acc;
            }
        }
        return r;
    }

    Vec4
    operator*(const Vec4& v) const
    {
        Vec4 r;
        for (u32 i = 0; i < 4; ++i) {
            r[i] = m[i][0] * v.x + m[i][1] * v.y + m[i][2] * v.z +
                   m[i][3] * v.w;
        }
        return r;
    }

    /** Row @p i as a Vec4 (handy for DP4-based transforms). */
    Vec4
    row(u32 i) const
    {
        return {m[i][0], m[i][1], m[i][2], m[i][3]};
    }

    /** Transposed copy. */
    Mat4
    transposed() const
    {
        Mat4 r;
        for (u32 i = 0; i < 4; ++i)
            for (u32 j = 0; j < 4; ++j)
                r.m[i][j] = m[j][i];
        return r;
    }
};

} // namespace attila::emu

#endif // ATTILA_EMU_MATRIX_HH

/**
 * @file
 * Byte-addressable memory abstractions shared by the functional
 * emulators and the timing model.
 *
 * The execution-driven design keeps all rendering data (vertex
 * buffers, textures, framebuffers) in one flat GPU memory image.  The
 * timing path moves the same bytes through caches and the memory
 * controller; functional paths (reference renderer, texture
 * emulator tests) read the image directly through MemoryReader.
 */

#ifndef ATTILA_EMU_MEMORY_HH
#define ATTILA_EMU_MEMORY_HH

#include <cstring>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace attila::emu
{

/** Read-only view of byte-addressable memory. */
class MemoryReader
{
  public:
    virtual ~MemoryReader() = default;

    /** Copy @p size bytes at @p addr into @p out. */
    virtual void read(u32 addr, u32 size, u8* out) const = 0;

    /** Convenience typed read. */
    template <typename T>
    T
    readAs(u32 addr) const
    {
        T v;
        read(addr, sizeof(T), reinterpret_cast<u8*>(&v));
        return v;
    }
};

/** Flat memory image: the GPU local memory. */
class GpuMemory : public MemoryReader
{
  public:
    /** @param size Memory size in bytes. */
    explicit GpuMemory(u32 size) : _data(size, 0) {}

    u32 size() const { return static_cast<u32>(_data.size()); }

    void
    read(u32 addr, u32 size, u8* out) const override
    {
        checkRange(addr, size);
        std::memcpy(out, _data.data() + addr, size);
    }

    /** Write @p size bytes from @p src at @p addr. */
    void
    write(u32 addr, u32 size, const u8* src)
    {
        checkRange(addr, size);
        std::memcpy(_data.data() + addr, src, size);
    }

    template <typename T>
    void
    writeAs(u32 addr, const T& v)
    {
        write(addr, sizeof(T), reinterpret_cast<const u8*>(&v));
    }

    /** Raw pointer access for bulk operations (e.g. the DAC dump). */
    const u8* data() const { return _data.data(); }
    u8* data() { return _data.data(); }

  private:
    void
    checkRange(u32 addr, u32 size) const
    {
        if (addr + static_cast<u64>(size) > _data.size()) {
            panic("GPU memory access out of range: addr ", addr,
                  " size ", size, " memory ", _data.size());
        }
    }

    std::vector<u8> _data;
};

} // namespace attila::emu

#endif // ATTILA_EMU_MEMORY_HH

#include "emu/rasterizer_emulator.hh"

#include <algorithm>
#include <cmath>

namespace attila::emu
{

namespace
{

struct Hom
{
    f64 x, y, w;
};

Hom
crossH(const Hom& p, const Hom& q)
{
    return {p.y * q.w - p.w * q.y, p.w * q.x - p.x * q.w,
            p.x * q.y - p.y * q.x};
}

/** Top-left style fill rule for fragments exactly on an edge. */
bool
edgeAccepts(f64 a, f64 b)
{
    return a > 0.0 || (a == 0.0 && b > 0.0);
}

} // anonymous namespace

TriangleSetup
RasterizerEmulator::setup(const Vec4& v0, const Vec4& v1,
                          const Vec4& v2, const Viewport& vp,
                          bool cullCcw, bool cullCw)
{
    TriangleSetup tri;

    // Viewport transform applied in homogeneous coordinates: maps
    // NDC x in [-1, 1] to window pixels without dividing by w.
    const f64 sx = vp.width * 0.5;
    const f64 sy = vp.height * 0.5;
    const f64 tx = vp.x + sx;
    const f64 ty = vp.y + sy;

    const Vec4* vs[3] = {&v0, &v1, &v2};
    Hom h[3];
    for (u32 i = 0; i < 3; ++i) {
        const f64 w = vs[i]->w;
        h[i].x = vs[i]->x * sx + w * tx;
        h[i].y = vs[i]->y * sy + w * ty;
        h[i].w = w;
    }

    // Edge equations = rows of the adjoint of the vertex matrix.
    Hom e[3];
    e[0] = crossH(h[1], h[2]);
    e[1] = crossH(h[2], h[0]);
    e[2] = crossH(h[0], h[1]);

    f64 det = e[0].x * h[0].x + e[0].y * h[0].y + e[0].w * h[0].w;
    tri.ccw = det > 0.0;

    if (det == 0.0)
        return tri; // Degenerate.
    if ((tri.ccw && cullCcw) || (!tri.ccw && cullCw))
        return tri; // Face-culled.

    if (det < 0.0) {
        // Normalize the orientation so that inside means e_i >= 0.
        for (u32 i = 0; i < 3; ++i) {
            e[i].x = -e[i].x;
            e[i].y = -e[i].y;
            e[i].w = -e[i].w;
        }
        det = -det;
    }

    for (u32 i = 0; i < 3; ++i) {
        tri.a[i] = e[i].x;
        tri.b[i] = e[i].y;
        tri.c[i] = e[i].w;
    }
    tri.det = det;

    // Depth equation: z_window = sum_i e_i * (0.5 z_i + 0.5 w_i) /
    // det.  Note that 0.5 z + 0.5 w avoids dividing by w entirely.
    f64 za = 0.0, zb = 0.0, zc = 0.0;
    for (u32 i = 0; i < 3; ++i) {
        const f64 zi = 0.5 * vs[i]->z + 0.5 * vs[i]->w;
        za += e[i].x * zi;
        zb += e[i].y * zi;
        zc += e[i].w * zi;
    }
    tri.za = za / det;
    tri.zb = zb / det;
    tri.zc = zc / det;

    // Traversal bounding box: projected vertices when every w is
    // positive, the whole viewport otherwise (the homogeneous
    // equations stay valid and the tile tests prune quickly).
    const s32 vpMinX = vp.x;
    const s32 vpMinY = vp.y;
    const s32 vpMaxX = vp.x + static_cast<s32>(vp.width) - 1;
    const s32 vpMaxY = vp.y + static_cast<s32>(vp.height) - 1;

    bool allPositiveW = true;
    for (u32 i = 0; i < 3; ++i)
        allPositiveW &= vs[i]->w > 0.0f;

    if (allPositiveW) {
        f64 minX = 1e300, minY = 1e300;
        f64 maxX = -1e300, maxY = -1e300;
        for (u32 i = 0; i < 3; ++i) {
            const f64 px = h[i].x / h[i].w;
            const f64 py = h[i].y / h[i].w;
            minX = std::min(minX, px);
            minY = std::min(minY, py);
            maxX = std::max(maxX, px);
            maxY = std::max(maxY, py);
        }
        tri.minX = std::max(vpMinX,
                            static_cast<s32>(std::floor(minX)));
        tri.minY = std::max(vpMinY,
                            static_cast<s32>(std::floor(minY)));
        tri.maxX = std::min(vpMaxX,
                            static_cast<s32>(std::ceil(maxX)));
        tri.maxY = std::min(vpMaxY,
                            static_cast<s32>(std::ceil(maxY)));
    } else {
        tri.minX = vpMinX;
        tri.minY = vpMinY;
        tri.maxX = vpMaxX;
        tri.maxY = vpMaxY;
    }

    tri.valid = tri.minX <= tri.maxX && tri.minY <= tri.maxY;
    return tri;
}

FragmentSample
RasterizerEmulator::evalFragment(const TriangleSetup& tri, s32 x,
                                 s32 y)
{
    FragmentSample frag;
    const f64 px = x + 0.5;
    const f64 py = y + 0.5;

    bool inside = true;
    for (u32 i = 0; i < 3; ++i) {
        const f64 e = tri.a[i] * px + tri.b[i] * py + tri.c[i];
        frag.edge[i] = e;
        if (e < 0.0 ||
            (e == 0.0 && !edgeAccepts(tri.a[i], tri.b[i]))) {
            inside = false;
        }
    }
    frag.inside = inside;
    frag.z = static_cast<f32>(tri.za * px + tri.zb * py + tri.zc);
    return frag;
}

bool
RasterizerEmulator::tileOverlap(const TriangleSetup& tri, s32 tileX,
                                s32 tileY, u32 size)
{
    // Reject tiles fully outside the bounding box.
    const s32 x1 = tileX + static_cast<s32>(size) - 1;
    const s32 y1 = tileY + static_cast<s32>(size) - 1;
    if (x1 < tri.minX || tileX > tri.maxX || y1 < tri.minY ||
        tileY > tri.maxY) {
        return false;
    }

    // An edge with all four tile corners (at pixel centers) strictly
    // negative separates the tile from the triangle.
    const f64 x0c = tileX + 0.5;
    const f64 y0c = tileY + 0.5;
    const f64 x1c = x1 + 0.5;
    const f64 y1c = y1 + 0.5;
    for (u32 i = 0; i < 3; ++i) {
        const f64 a = tri.a[i];
        const f64 b = tri.b[i];
        const f64 c = tri.c[i];
        // Max of the edge equation over the tile corners.
        const f64 xa = a >= 0.0 ? x1c : x0c;
        const f64 yb = b >= 0.0 ? y1c : y0c;
        if (a * xa + b * yb + c < 0.0)
            return false;
    }
    return true;
}

void
RasterizerEmulator::traverseRecursive(const TriangleSetup& tri,
                                      u32 size,
                                      const TileVisitor& visit)
{
    if (!tri.valid)
        return;

    // Align the root region to the tile grid and expand to a square
    // power-of-two multiple of the tile size.
    const s32 startX = tri.minX - (tri.minX % static_cast<s32>(size) +
                                   static_cast<s32>(size)) %
                                      static_cast<s32>(size);
    const s32 startY = tri.minY - (tri.minY % static_cast<s32>(size) +
                                   static_cast<s32>(size)) %
                                      static_cast<s32>(size);
    const u32 extentX = static_cast<u32>(tri.maxX - startX + 1);
    const u32 extentY = static_cast<u32>(tri.maxY - startY + 1);
    u32 rootSize = size;
    while (rootSize < extentX || rootSize < extentY)
        rootSize *= 2;

    // Recursive descent: subdivide quadrants, pruning with the
    // conservative edge test (McCool et al.).  A plain self-calling
    // functor — no std::function, no heap.
    struct Descend
    {
        const TriangleSetup& tri;
        u32 size;
        const TileVisitor& visit;

        void
        operator()(s32 x, s32 y, u32 regionSize) const
        {
            if (x > tri.maxX || y > tri.maxY ||
                x + static_cast<s32>(regionSize) <= tri.minX ||
                y + static_cast<s32>(regionSize) <= tri.minY) {
                return;
            }
            if (!tileOverlap(tri, x, y, regionSize))
                return;
            if (regionSize == size) {
                visit(x, y);
                return;
            }
            const u32 half = regionSize / 2;
            const s32 h = static_cast<s32>(half);
            (*this)(x, y, half);
            (*this)(x + h, y, half);
            (*this)(x, y + h, half);
            (*this)(x + h, y + h, half);
        }
    };
    Descend{tri, size, visit}(startX, startY, rootSize);
}

void
RasterizerEmulator::traverseScanline(const TriangleSetup& tri,
                                     u32 size,
                                     const TileVisitor& visit)
{
    if (!tri.valid)
        return;
    const s32 s = static_cast<s32>(size);
    const s32 startX = tri.minX - (tri.minX % s + s) % s;
    const s32 startY = tri.minY - (tri.minY % s + s) % s;

    // Incremental form of tileOverlap(): the corner each edge tests
    // is fixed by the sign of its coefficient, so the y-dependent
    // term b*yb is hoisted out of the row and only a*xa varies along
    // it.  The bounding-box reject inside tileOverlap() never fires
    // here (the loop ranges already stay within the box), and the
    // arithmetic below associates exactly like tileOverlap()'s
    // (a * xa + b * yb + c), keeping the visit set bit-identical.
    bool aPos[3], bPos[3];
    for (u32 i = 0; i < 3; ++i) {
        aPos[i] = tri.a[i] >= 0.0;
        bPos[i] = tri.b[i] >= 0.0;
    }
    for (s32 y = startY; y <= tri.maxY; y += s) {
        const f64 y0c = y + 0.5;
        const f64 y1c = static_cast<f64>(y + s - 1) + 0.5;
        f64 rowTerm[3];
        for (u32 i = 0; i < 3; ++i)
            rowTerm[i] = tri.b[i] * (bPos[i] ? y1c : y0c);
        for (s32 x = startX; x <= tri.maxX; x += s) {
            const f64 x0c = x + 0.5;
            const f64 x1c = static_cast<f64>(x + s - 1) + 0.5;
            bool overlap = true;
            for (u32 i = 0; i < 3; ++i) {
                const f64 xa = aPos[i] ? x1c : x0c;
                if (tri.a[i] * xa + rowTerm[i] + tri.c[i] < 0.0) {
                    overlap = false;
                    break;
                }
            }
            if (overlap)
                visit(x, y);
        }
    }
}

} // namespace attila::emu

/**
 * @file
 * RasterizerEmulator: triangle setup and traversal based on the 2D
 * homogeneous rasterization algorithm of Olano and Greer (paper
 * §2.2).
 *
 * Setup builds the three half-plane edge equations and the depth
 * (z/w) interpolation equation directly from the homogeneous vertex
 * matrix — no clipping required, because the equations stay valid
 * for triangles crossing (or behind) the w = 0 plane.  Vertex
 * positions are divided by w (when w > 0 for all vertices) only to
 * bound the traversal, as in the paper.
 *
 * Two traversal strategies are provided, matching the two fragment
 * generators ATTILA implements: recursive descent (McCool et al.,
 * the default) and a tile scanline (Neon-style).
 */

#ifndef ATTILA_EMU_RASTERIZER_EMULATOR_HH
#define ATTILA_EMU_RASTERIZER_EMULATOR_HH

#include <array>

#include "emu/vector.hh"
#include "sim/function_ref.hh"

namespace attila::emu
{

/** Viewport state: window rectangle for NDC mapping. */
struct Viewport
{
    s32 x = 0;
    s32 y = 0;
    u32 width = 0;
    u32 height = 0;
};

/** Per-triangle setup output: edge and depth equations. */
struct TriangleSetup
{
    /** Edge equations: e_i(x, y) = a[i]x + b[i]y + c[i], inside when
     * all three are >= 0 (after orientation normalization). */
    std::array<f64, 3> a{};
    std::array<f64, 3> b{};
    std::array<f64, 3> c{};

    /** Depth equation: z(x, y) = za*x + zb*y + zc, window z in
     * [0, 1]. */
    f64 za = 0.0, zb = 0.0, zc = 0.0;

    /** Signed determinant of the homogeneous vertex matrix before
     * normalization; sign gives the winding (> 0 = CCW). */
    f64 det = 0.0;

    /** False when the triangle is degenerate (det == 0). */
    bool valid = false;

    /** True when the unnormalized determinant was positive (CCW). */
    bool ccw = true;

    /** Traversal bounding box in pixels, inclusive. */
    s32 minX = 0, minY = 0, maxX = -1, maxY = -1;
};

/** Coverage result for one fragment. */
struct FragmentSample
{
    bool inside = false;
    /** Edge equation values at the pixel center (barycentric up to a
     * common scale); used for attribute interpolation. */
    std::array<f64, 3> edge{};
    /** Window-space depth in [0, 1]. */
    f32 z = 0.0f;
};

/** Callback receiving the origin of each candidate tile.
 * Non-owning (sim::FunctionRef): safe to pass a lambda directly to
 * the traversal functions, but do not store one past the call. */
using TileVisitor = sim::FunctionRef<void(s32 tileX, s32 tileY)>;

class RasterizerEmulator
{
  public:
    /**
     * Triangle setup from clip-space positions.
     *
     * @param cullCcw / @param cullCw face culling: a triangle whose
     * winding matches a set flag yields setup.valid == false.
     */
    static TriangleSetup setup(const Vec4& v0, const Vec4& v1,
                               const Vec4& v2, const Viewport& vp,
                               bool cullCcw = false,
                               bool cullCw = false);

    /** Evaluate coverage and depth for the pixel (x, y). */
    static FragmentSample evalFragment(const TriangleSetup& tri,
                                       s32 x, s32 y);

    /**
     * Conservative overlap test between the triangle and the
     * size x size pixel tile at (tileX, tileY).
     */
    static bool tileOverlap(const TriangleSetup& tri, s32 tileX,
                            s32 tileY, u32 size);

    /**
     * Visit every size x size tile (aligned to size) that may
     * intersect the triangle using recursive descent from the
     * bounding box (the default ATTILA fragment generator).
     */
    static void traverseRecursive(const TriangleSetup& tri, u32 size,
                                  const TileVisitor& visit);

    /** Same visit set, but scanning tiles row by row (Neon-style). */
    static void traverseScanline(const TriangleSetup& tri, u32 size,
                                 const TileVisitor& visit);

    /**
     * Perspective-correct interpolation of a vertex attribute from
     * the edge values of a covered fragment:
     * u = (e0*u0 + e1*u1 + e2*u2) / (e0 + e1 + e2).
     */
    static Vec4
    interpolate(const std::array<f64, 3>& edge, const Vec4& u0,
                const Vec4& u1, const Vec4& u2)
    {
        const f64 sum = edge[0] + edge[1] + edge[2];
        const f64 inv = sum != 0.0 ? 1.0 / sum : 0.0;
        Vec4 out;
        for (u32 i = 0; i < 4; ++i) {
            out[i] = static_cast<f32>(
                (edge[0] * u0[i] + edge[1] * u1[i] +
                 edge[2] * u2[i]) * inv);
        }
        return out;
    }

    /** 1/w at a covered fragment (for fragment.position.w). */
    static f32
    oneOverW(const TriangleSetup& tri,
             const std::array<f64, 3>& edge)
    {
        return static_cast<f32>((edge[0] + edge[1] + edge[2]) /
                                tri.det);
    }
};

} // namespace attila::emu

#endif // ATTILA_EMU_RASTERIZER_EMULATOR_HH

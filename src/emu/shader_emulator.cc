#include "emu/shader_emulator.hh"

#include <cmath>

#include "emu/decoded_program.hh"
#include "sim/logging.hh"

namespace attila::emu
{

namespace
{

/** Fetch a source operand value. */
Vec4
readSrc(const SrcOperand& src, const ShaderThreadState& state,
        const ConstantBank& constants)
{
    Vec4 v;
    switch (src.bank) {
      case Bank::Attrib:
        v = state.in[src.index];
        break;
      case Bank::Temp:
        v = state.temp[src.index];
        break;
      case Bank::Param:
        v = constants[src.index];
        break;
      default:
        panic("shader emulator: read from invalid bank");
    }
    return src.apply(v);
}

/** Write @p value into the destination honoring mask and saturate. */
void
writeDst(const Instruction& ins, ShaderThreadState& state,
         const Vec4& value)
{
    Vec4 v = ins.saturate ? saturate(value) : value;
    Vec4* target = nullptr;
    switch (ins.dst.bank) {
      case Bank::Temp:
        target = &state.temp[ins.dst.index];
        break;
      case Bank::Output:
        target = &state.out[ins.dst.index];
        break;
      default:
        panic("shader emulator: write to invalid bank");
    }
    for (u32 i = 0; i < 4; ++i) {
        if (ins.dst.writeMask & (1u << i))
            (*target)[i] = v[i];
    }
}

/** Broadcast a scalar result to all components. */
Vec4
smear(f32 s)
{
    return {s, s, s, s};
}

/** ARB LIT: lighting coefficients. */
Vec4
litOp(const Vec4& s)
{
    const f32 diffuse = std::max(s.x, 0.0f);
    f32 specular = 0.0f;
    if (s.x > 0.0f) {
        const f32 e = std::clamp(s.w, -128.0f, 128.0f);
        specular = std::pow(std::max(s.y, 0.0f), e);
    }
    return {1.0f, diffuse, specular, 1.0f};
}

} // anonymous namespace

StepResult
ShaderEmulator::step(const ShaderProgram& program,
                     const ConstantBank& constants,
                     ShaderThreadState& state,
                     const ImmediateSampler* sampler) const
{
    if (state.pc >= program.code.size())
        panic("shader emulator: pc ", state.pc,
              " past the end of a program of length ",
              program.code.size());

    const Instruction& ins = program.code[state.pc];
    const OpcodeInfo& info = opcodeInfo(ins.op);

    StepResult result;
    result.latency = info.latency;

    if (ins.op == Opcode::END) {
        result.outcome = StepOutcome::Done;
        return result;
    }

    if (info.isTexture) {
        const Vec4 coord = readSrc(ins.src[0], state, constants);
        const bool projected = ins.op == Opcode::TXP;
        const f32 bias = ins.op == Opcode::TXB ? coord.w : 0.0f;
        if (!sampler || !*sampler) {
            result.outcome = StepOutcome::TexRequest;
            result.texUnit = ins.texUnit;
            result.texTarget = ins.texTarget;
            result.texCoord = coord;
            result.texLodBias = bias;
            result.texProjected = projected;
            return result;
        }
        const Vec4 texel = (*sampler)(ins.texUnit, ins.texTarget,
                                      coord, bias, projected);
        writeDst(ins, state, texel);
        ++state.pc;
        result.outcome = StepOutcome::Continue;
        return result;
    }

    Vec4 a, b, c;
    if (info.numSrc >= 1)
        a = readSrc(ins.src[0], state, constants);
    if (info.numSrc >= 2)
        b = readSrc(ins.src[1], state, constants);
    if (info.numSrc >= 3)
        c = readSrc(ins.src[2], state, constants);

    Vec4 r;
    switch (ins.op) {
      case Opcode::ABS:
        r = {std::fabs(a.x), std::fabs(a.y), std::fabs(a.z),
             std::fabs(a.w)};
        break;
      case Opcode::ADD:
        r = a + b;
        break;
      case Opcode::CMP:
        r = {a.x < 0.0f ? b.x : c.x, a.y < 0.0f ? b.y : c.y,
             a.z < 0.0f ? b.z : c.z, a.w < 0.0f ? b.w : c.w};
        break;
      case Opcode::COS:
        r = smear(std::cos(a.x));
        break;
      case Opcode::DP3:
        r = smear(dot3(a, b));
        break;
      case Opcode::DP4:
        r = smear(dot4(a, b));
        break;
      case Opcode::DPH:
        r = smear(dot3(a, b) + b.w);
        break;
      case Opcode::EX2:
        r = smear(std::exp2(a.x));
        break;
      case Opcode::FLR:
        r = {std::floor(a.x), std::floor(a.y), std::floor(a.z),
             std::floor(a.w)};
        break;
      case Opcode::FRC:
        r = {a.x - std::floor(a.x), a.y - std::floor(a.y),
             a.z - std::floor(a.z), a.w - std::floor(a.w)};
        break;
      case Opcode::KIL:
        if (a.x < 0.0f || a.y < 0.0f || a.z < 0.0f || a.w < 0.0f) {
            state.killed = true;
            result.outcome = StepOutcome::Done;
            return result;
        }
        ++state.pc;
        result.outcome = StepOutcome::Continue;
        return result;
      case Opcode::LG2:
        r = smear(std::log2(a.x));
        break;
      case Opcode::LIT:
        r = litOp(a);
        break;
      case Opcode::LRP:
        r = a * b + (Vec4(1.0f) - a) * c;
        break;
      case Opcode::MAD:
        r = a * b + c;
        break;
      case Opcode::MAX:
        r = vmax(a, b);
        break;
      case Opcode::MIN:
        r = vmin(a, b);
        break;
      case Opcode::MOV:
        r = a;
        break;
      case Opcode::MUL:
        r = a * b;
        break;
      case Opcode::POW:
        r = smear(std::pow(a.x, b.x));
        break;
      case Opcode::RCP:
        r = smear(a.x == 0.0f
                      ? std::numeric_limits<f32>::infinity()
                      : 1.0f / a.x);
        break;
      case Opcode::RSQ:
        r = smear(1.0f / std::sqrt(std::fabs(a.x)));
        break;
      case Opcode::SGE:
        r = {a.x >= b.x ? 1.0f : 0.0f, a.y >= b.y ? 1.0f : 0.0f,
             a.z >= b.z ? 1.0f : 0.0f, a.w >= b.w ? 1.0f : 0.0f};
        break;
      case Opcode::SIN:
        r = smear(std::sin(a.x));
        break;
      case Opcode::SLT:
        r = {a.x < b.x ? 1.0f : 0.0f, a.y < b.y ? 1.0f : 0.0f,
             a.z < b.z ? 1.0f : 0.0f, a.w < b.w ? 1.0f : 0.0f};
        break;
      case Opcode::SUB:
        r = a - b;
        break;
      case Opcode::XPD:
        r = cross3(a, b);
        break;
      default:
        panic("shader emulator: unhandled opcode");
    }

    writeDst(ins, state, r);
    ++state.pc;
    result.outcome = StepOutcome::Continue;
    return result;
}

void
ShaderEmulator::completeTexture(const ShaderProgram& program,
                                ShaderThreadState& state,
                                const Vec4& texel) const
{
    const Instruction& ins = program.code[state.pc];
    if (!opcodeInfo(ins.op).isTexture)
        panic("shader emulator: completeTexture at a non-texture"
              " instruction");
    writeDst(ins, state, texel);
    ++state.pc;
}

bool
ShaderEmulator::run(const ShaderProgram& program,
                    const ConstantBank& constants,
                    ShaderThreadState& state,
                    const ImmediateSampler* sampler) const
{
    for (u32 guard = 0; guard < 65536; ++guard) {
        const StepResult res = step(program, constants, state,
                                    sampler);
        if (res.outcome == StepOutcome::Done)
            return !state.killed;
        if (res.outcome == StepOutcome::TexRequest)
            panic("shader emulator: run() needs an immediate sampler"
                  " for texture instructions");
    }
    panic("shader emulator: program did not terminate");
}

// ---- Pre-decoded fast path -------------------------------------
//
// The interpreters below re-use the exact per-component expressions
// of step() (see execDecodedAlu); only operand *addressing* changed.

namespace
{

// The two operand helpers run once or twice per lane per
// instruction; the surrounding interpreter switch is so large that
// the compiler's inlining budget otherwise outlines them into real
// calls (a Vec4 returned through memory each time), which dominates
// the fast path.  Force the issue.
#if defined(__GNUC__) || defined(__clang__)
#define ATTILA_EMU_FORCE_INLINE inline __attribute__((always_inline))
#else
#define ATTILA_EMU_FORCE_INLINE inline
#endif

/** Fetch a pre-decoded source operand value. */
ATTILA_EMU_FORCE_INLINE Vec4
readSrcD(const DecodedSrc& src, const ShaderThreadState& state,
         const ConstantBank& constants)
{
    const Vec4& v = src.fromConstants
                        ? constants[src.offset]
                        : decoded::regs(state)[src.offset];
    if (src.identity)
        return v;
    const Vec4 r = src.splat
                       ? Vec4(v[static_cast<u32>(src.splat - 1)])
                       : Vec4(v[src.swz[0]], v[src.swz[1]],
                              v[src.swz[2]], v[src.swz[3]]);
    return src.negate ? -r : r;
}

/** Write @p value honoring the pre-decoded mask and saturate. */
ATTILA_EMU_FORCE_INLINE void
writeDstD(const DecodedIns& ins, ShaderThreadState& state,
          const Vec4& value)
{
    const Vec4 v = ins.saturate ? saturate(value) : value;
    Vec4& target = decoded::regs(state)[ins.dstOffset];
    switch (ins.writeMask) {
      case 0xf:
        target = v;
        return;
      case 0x1:
        target.x = v.x;
        return;
      case 0x2:
        target.y = v.y;
        return;
      case 0x4:
        target.z = v.z;
        return;
      case 0x8:
        target.w = v.w;
        return;
      default:
        for (u32 i = 0; i < 4; ++i) {
            if (ins.writeMask & (1u << i))
                target[i] = v[i];
        }
    }
}

/**
 * The ALU dispatch shared by the scalar-decoded and quad paths: one
 * switch per *instruction*, then @p forLanes applies the case to
 * each live lane.  Every case computes the same expression as the
 * matching case of ShaderEmulator::step(), in the same per-lane
 * order, so results are bit-identical to the reference interpreter.
 */
template <typename ForLanes>
inline void
execDecodedAlu(const DecodedIns& ins, const ConstantBank& constants,
               ForLanes&& forLanes)
{
    const auto src1 = [&](ShaderThreadState& s) {
        return readSrcD(ins.src[0], s, constants);
    };
    switch (ins.op) {
      case Opcode::ABS:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            writeDstD(ins, s,
                      {std::fabs(a.x), std::fabs(a.y),
                       std::fabs(a.z), std::fabs(a.w)});
        });
        break;
      case Opcode::ADD:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            writeDstD(ins, s, a + b);
        });
        break;
      case Opcode::CMP:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            const Vec4 c = readSrcD(ins.src[2], s, constants);
            writeDstD(ins, s,
                      {a.x < 0.0f ? b.x : c.x, a.y < 0.0f ? b.y : c.y,
                       a.z < 0.0f ? b.z : c.z,
                       a.w < 0.0f ? b.w : c.w});
        });
        break;
      case Opcode::COS:
        forLanes([&](ShaderThreadState& s) {
            writeDstD(ins, s, smear(std::cos(src1(s).x)));
        });
        break;
      case Opcode::DP3:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            writeDstD(ins, s, smear(dot3(a, b)));
        });
        break;
      case Opcode::DP4:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            writeDstD(ins, s, smear(dot4(a, b)));
        });
        break;
      case Opcode::DPH:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            writeDstD(ins, s, smear(dot3(a, b) + b.w));
        });
        break;
      case Opcode::EX2:
        forLanes([&](ShaderThreadState& s) {
            writeDstD(ins, s, smear(std::exp2(src1(s).x)));
        });
        break;
      case Opcode::FLR:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            writeDstD(ins, s,
                      {std::floor(a.x), std::floor(a.y),
                       std::floor(a.z), std::floor(a.w)});
        });
        break;
      case Opcode::FRC:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            writeDstD(ins, s,
                      {a.x - std::floor(a.x), a.y - std::floor(a.y),
                       a.z - std::floor(a.z),
                       a.w - std::floor(a.w)});
        });
        break;
      case Opcode::LG2:
        forLanes([&](ShaderThreadState& s) {
            writeDstD(ins, s, smear(std::log2(src1(s).x)));
        });
        break;
      case Opcode::LIT:
        forLanes([&](ShaderThreadState& s) {
            writeDstD(ins, s, litOp(src1(s)));
        });
        break;
      case Opcode::LRP:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            const Vec4 c = readSrcD(ins.src[2], s, constants);
            writeDstD(ins, s, a * b + (Vec4(1.0f) - a) * c);
        });
        break;
      case Opcode::MAD:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            const Vec4 c = readSrcD(ins.src[2], s, constants);
            writeDstD(ins, s, a * b + c);
        });
        break;
      case Opcode::MAX:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            writeDstD(ins, s, vmax(a, b));
        });
        break;
      case Opcode::MIN:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            writeDstD(ins, s, vmin(a, b));
        });
        break;
      case Opcode::MOV:
        forLanes([&](ShaderThreadState& s) {
            writeDstD(ins, s, src1(s));
        });
        break;
      case Opcode::MUL:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            writeDstD(ins, s, a * b);
        });
        break;
      case Opcode::POW:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            writeDstD(ins, s, smear(std::pow(a.x, b.x)));
        });
        break;
      case Opcode::RCP:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            writeDstD(ins, s,
                      smear(a.x == 0.0f
                                ? std::numeric_limits<f32>::infinity()
                                : 1.0f / a.x));
        });
        break;
      case Opcode::RSQ:
        forLanes([&](ShaderThreadState& s) {
            writeDstD(
                ins, s,
                smear(1.0f / std::sqrt(std::fabs(src1(s).x))));
        });
        break;
      case Opcode::SGE:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            writeDstD(ins, s,
                      {a.x >= b.x ? 1.0f : 0.0f,
                       a.y >= b.y ? 1.0f : 0.0f,
                       a.z >= b.z ? 1.0f : 0.0f,
                       a.w >= b.w ? 1.0f : 0.0f});
        });
        break;
      case Opcode::SIN:
        forLanes([&](ShaderThreadState& s) {
            writeDstD(ins, s, smear(std::sin(src1(s).x)));
        });
        break;
      case Opcode::SLT:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            writeDstD(ins, s,
                      {a.x < b.x ? 1.0f : 0.0f,
                       a.y < b.y ? 1.0f : 0.0f,
                       a.z < b.z ? 1.0f : 0.0f,
                       a.w < b.w ? 1.0f : 0.0f});
        });
        break;
      case Opcode::SUB:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            writeDstD(ins, s, a - b);
        });
        break;
      case Opcode::XPD:
        forLanes([&](ShaderThreadState& s) {
            const Vec4 a = src1(s);
            const Vec4 b = readSrcD(ins.src[1], s, constants);
            writeDstD(ins, s, cross3(a, b));
        });
        break;
      default:
        panic("shader emulator: unhandled opcode");
    }
}

} // anonymous namespace

StepResult
ShaderEmulator::stepDecoded(const DecodedProgram& program,
                            const ConstantBank& constants,
                            ShaderThreadState& state,
                            const ImmediateSampler* sampler) const
{
    if (state.pc >= program.code.size())
        panic("shader emulator: pc ", state.pc,
              " past the end of a program of length ",
              program.code.size());

    const DecodedIns& ins = program.code[state.pc];

    StepResult result;
    result.latency = ins.latency;

    if (ins.op == Opcode::END) {
        result.outcome = StepOutcome::Done;
        return result;
    }

    if (ins.isTexture) {
        const Vec4 coord = readSrcD(ins.src[0], state, constants);
        const f32 bias = ins.texBiased ? coord.w : 0.0f;
        if (!sampler || !*sampler) {
            result.outcome = StepOutcome::TexRequest;
            result.texUnit = ins.texUnit;
            result.texTarget = ins.texTarget;
            result.texCoord = coord;
            result.texLodBias = bias;
            result.texProjected = ins.texProjected;
            return result;
        }
        const Vec4 texel = (*sampler)(ins.texUnit, ins.texTarget,
                                      coord, bias, ins.texProjected);
        writeDstD(ins, state, texel);
        ++state.pc;
        result.outcome = StepOutcome::Continue;
        return result;
    }

    if (ins.op == Opcode::KIL) {
        const Vec4 a = readSrcD(ins.src[0], state, constants);
        if (a.x < 0.0f || a.y < 0.0f || a.z < 0.0f || a.w < 0.0f) {
            state.killed = true;
            result.outcome = StepOutcome::Done;
            return result;
        }
        ++state.pc;
        result.outcome = StepOutcome::Continue;
        return result;
    }

    const auto oneLane = [&](auto&& fn) { fn(state); };
    execDecodedAlu(ins, constants, oneLane);
    ++state.pc;
    result.outcome = StepOutcome::Continue;
    return result;
}

QuadStepResult
ShaderEmulator::stepQuad(const DecodedProgram& program,
                         const ConstantBank& constants,
                         std::array<ShaderThreadState, 4>& lanes,
                         std::array<bool, 4>& laneDone,
                         const QuadSampler* sampler) const
{
    QuadStepResult result;

    // Reference lane: the first live one (all live lanes share pc).
    s32 ref = -1;
    for (u32 l = 0; l < 4; ++l) {
        if (!laneDone[l]) {
            ref = static_cast<s32>(l);
            break;
        }
    }
    if (ref < 0) {
        result.outcome = StepOutcome::Done;
        return result;
    }

    const u32 pc = lanes[static_cast<u32>(ref)].pc;
    if (pc >= program.code.size())
        panic("shader emulator: pc ", pc,
              " past the end of a program of length ",
              program.code.size());
    const DecodedIns& ins = program.code[pc];
    result.latency = ins.latency;

    if (ins.op == Opcode::END) {
        for (u32 l = 0; l < 4; ++l)
            laneDone[l] = true;
        result.outcome = StepOutcome::Done;
        return result;
    }

    if (ins.isTexture) {
        if (!sampler || !*sampler) {
            // Per-lane coordinate reads; the request fields take
            // the last live lane's values, exactly as the per-lane
            // request build loop overwrote them.
            result.outcome = StepOutcome::TexRequest;
            for (u32 l = 0; l < 4; ++l) {
                if (laneDone[l])
                    continue;
                const Vec4 coord =
                    readSrcD(ins.src[0], lanes[l], constants);
                result.texUnit = ins.texUnit;
                result.texTarget = ins.texTarget;
                result.texCoords[l] = coord;
                result.texLodBias =
                    ins.texBiased ? coord.w : 0.0f;
                result.texProjected = ins.texProjected;
            }
            return result;
        }
        // Inline quad access through the sampler: the *first* live
        // lane supplies the shared bias, as the reference renderer's
        // lockstep loop does.
        std::array<Vec4, 4> coords{};
        u8 live = 0;
        f32 bias = 0.0f;
        for (u32 l = 0; l < 4; ++l) {
            if (laneDone[l])
                continue;
            coords[l] = readSrcD(ins.src[0], lanes[l], constants);
            if (!live)
                bias = ins.texBiased ? coords[l].w : 0.0f;
            live |= static_cast<u8>(1u << l);
        }
        const std::array<Vec4, 4> texels =
            (*sampler)(ins.texUnit, ins.texTarget, coords, live,
                       bias, ins.texProjected);
        completeTextureQuad(program, lanes, laneDone, texels);
        result.outcome = StepOutcome::Continue;
        return result;
    }

    if (ins.op == Opcode::KIL) {
        bool allDone = true;
        for (u32 l = 0; l < 4; ++l) {
            if (laneDone[l])
                continue;
            const Vec4 a =
                readSrcD(ins.src[0], lanes[l], constants);
            if (a.x < 0.0f || a.y < 0.0f || a.z < 0.0f ||
                a.w < 0.0f) {
                lanes[l].killed = true;
                laneDone[l] = true;
            } else {
                ++lanes[l].pc;
                allDone = false;
            }
        }
        result.outcome =
            allDone ? StepOutcome::Done : StepOutcome::Continue;
        return result;
    }

    const auto liveLanes = [&](auto&& fn) {
        for (u32 l = 0; l < 4; ++l) {
            if (!laneDone[l])
                fn(lanes[l]);
        }
    };
    execDecodedAlu(ins, constants, liveLanes);
    for (u32 l = 0; l < 4; ++l) {
        if (!laneDone[l])
            ++lanes[l].pc;
    }
    result.outcome = StepOutcome::Continue;
    return result;
}

void
ShaderEmulator::completeTextureQuad(
    const DecodedProgram& program,
    std::array<ShaderThreadState, 4>& lanes,
    const std::array<bool, 4>& laneDone,
    const std::array<Vec4, 4>& texels) const
{
    for (u32 l = 0; l < 4; ++l) {
        if (laneDone[l])
            continue;
        const DecodedIns& ins = program.code[lanes[l].pc];
        if (!ins.isTexture)
            panic("shader emulator: completeTextureQuad at a"
                  " non-texture instruction");
        writeDstD(ins, lanes[l], texels[l]);
        ++lanes[l].pc;
    }
}

bool
ShaderEmulator::runDecoded(const DecodedProgram& program,
                           const ConstantBank& constants,
                           ShaderThreadState& state,
                           const ImmediateSampler* sampler) const
{
    // Tight interpreter loop: the same readSrcD / writeDstD /
    // execDecodedAlu calls in the same order as stepDecoded(), but
    // without materialising a StepResult per instruction.  The
    // stepping path stays the reference for the timing model; this
    // loop is the run-to-completion fast path.
    const DecodedIns* const code = program.code.data();
    const u32 length = static_cast<u32>(program.code.size());
    const auto oneLane = [&](auto&& fn) { fn(state); };
    // Keep pc in a local: readSrcD/writeDstD only touch the register
    // arrays, so nothing in the loop aliases it; it is synced back to
    // state.pc at every exit the stepping path can observe.
    u32 pc = state.pc;
    for (u32 guard = 0; guard < 65536; ++guard) {
        if (pc >= length)
            panic("shader emulator: pc ", pc,
                  " past the end of a program of length ", length);
        const DecodedIns& ins = code[pc];
        if (ins.op == Opcode::END) {
            state.pc = pc;
            return !state.killed;
        }
        if (ins.isTexture) {
            if (!sampler || !*sampler)
                panic("shader emulator: runDecoded() needs an"
                      " immediate sampler for texture instructions");
            const Vec4 coord =
                readSrcD(ins.src[0], state, constants);
            const f32 bias = ins.texBiased ? coord.w : 0.0f;
            const Vec4 texel =
                (*sampler)(ins.texUnit, ins.texTarget, coord, bias,
                           ins.texProjected);
            writeDstD(ins, state, texel);
            ++pc;
            continue;
        }
        if (ins.op == Opcode::KIL) {
            const Vec4 a = readSrcD(ins.src[0], state, constants);
            if (a.x < 0.0f || a.y < 0.0f || a.z < 0.0f ||
                a.w < 0.0f) {
                state.pc = pc;
                state.killed = true;
                return false;
            }
            ++pc;
            continue;
        }
        execDecodedAlu(ins, constants, oneLane);
        ++pc;
    }
    panic("shader emulator: program did not terminate");
}

void
ShaderEmulator::runQuad(const DecodedProgram& program,
                        const ConstantBank& constants,
                        std::array<ShaderThreadState, 4>& lanes,
                        std::array<bool, 4>& laneDone,
                        std::array<bool, 4>& killed,
                        const QuadSampler& sampler) const
{
    // Tight quad-lockstep loop: identical per-lane arithmetic and
    // ordering to stepQuad() with an inline sampler, minus the
    // per-instruction QuadStepResult and ref-lane rescans.
    const DecodedIns* const code = program.code.data();
    const u32 length = static_cast<u32>(program.code.size());
    const auto liveLanes = [&](auto&& fn) {
        for (u32 l = 0; l < 4; ++l) {
            if (!laneDone[l])
                fn(lanes[l]);
        }
    };
    // Unrolled variant for the common all-lanes-live case (same lane
    // order 0..3, so results match liveLanes bit for bit).
    const auto allLanes = [&](auto&& fn) {
        fn(lanes[0]);
        fn(lanes[1]);
        fn(lanes[2]);
        fn(lanes[3]);
    };
    bool anyDone =
        laneDone[0] || laneDone[1] || laneDone[2] || laneDone[3];
    // Converged kernel: a program with no texture access and no KIL
    // keeps all four lanes live and in lockstep until END, so the
    // quad shares a single register-resident pc and runs without any
    // divergence bookkeeping.  Lane order inside execDecodedAlu is
    // the same 0..3, keeping results bit-identical to the general
    // path below.
    if (!program.hasTexture && !program.hasKil && !anyDone) {
        u32 pc = lanes[0].pc;
        for (u32 guard = 0; guard < 65536; ++guard) {
            if (pc >= length)
                panic("shader emulator: pc ", pc,
                      " past the end of a program of length ",
                      length);
            const DecodedIns& ins = code[pc];
            if (ins.op == Opcode::END) {
                for (u32 l = 0; l < 4; ++l) {
                    lanes[l].pc = pc;
                    laneDone[l] = true;
                    killed[l] = lanes[l].killed;
                }
                return;
            }
            execDecodedAlu(ins, constants, allLanes);
            ++pc;
        }
        panic("shader emulator: fragment program did not"
              " terminate");
    }
    for (u32 guard = 0; guard < 65536; ++guard) {
        s32 ref = -1;
        if (!anyDone) {
            ref = 0;
        } else {
            for (u32 l = 0; l < 4; ++l) {
                if (!laneDone[l]) {
                    ref = static_cast<s32>(l);
                    break;
                }
            }
        }
        if (ref < 0)
            break;
        const u32 pc = lanes[static_cast<u32>(ref)].pc;
        if (pc >= length)
            panic("shader emulator: pc ", pc,
                  " past the end of a program of length ", length);
        const DecodedIns& ins = code[pc];
        if (ins.op == Opcode::END) {
            for (u32 l = 0; l < 4; ++l)
                laneDone[l] = true;
            break;
        }
        if (ins.isTexture) {
            if (!sampler)
                panic("shader emulator: runQuad() needs a quad"
                      " sampler for texture instructions");
            // The *first* live lane supplies the shared bias, as
            // the reference renderer's lockstep loop does.
            std::array<Vec4, 4> coords{};
            u8 live = 0;
            f32 bias = 0.0f;
            for (u32 l = 0; l < 4; ++l) {
                if (laneDone[l])
                    continue;
                coords[l] =
                    readSrcD(ins.src[0], lanes[l], constants);
                if (!live)
                    bias = ins.texBiased ? coords[l].w : 0.0f;
                live |= static_cast<u8>(1u << l);
            }
            const std::array<Vec4, 4> texels =
                sampler(ins.texUnit, ins.texTarget, coords, live,
                        bias, ins.texProjected);
            for (u32 l = 0; l < 4; ++l) {
                if (laneDone[l])
                    continue;
                writeDstD(ins, lanes[l], texels[l]);
                ++lanes[l].pc;
            }
            continue;
        }
        if (ins.op == Opcode::KIL) {
            for (u32 l = 0; l < 4; ++l) {
                if (laneDone[l])
                    continue;
                const Vec4 a =
                    readSrcD(ins.src[0], lanes[l], constants);
                if (a.x < 0.0f || a.y < 0.0f || a.z < 0.0f ||
                    a.w < 0.0f) {
                    lanes[l].killed = true;
                    laneDone[l] = true;
                    anyDone = true;
                } else {
                    ++lanes[l].pc;
                }
            }
            continue;
        }
        if (anyDone) {
            execDecodedAlu(ins, constants, liveLanes);
            for (u32 l = 0; l < 4; ++l) {
                if (!laneDone[l])
                    ++lanes[l].pc;
            }
        } else {
            execDecodedAlu(ins, constants, allLanes);
            for (u32 l = 0; l < 4; ++l)
                ++lanes[l].pc;
        }
        continue;
    }
    for (u32 l = 0; l < 4; ++l) {
        if (!laneDone[l])
            panic("shader emulator: fragment program did not"
                  " terminate");
        killed[l] = lanes[l].killed;
    }
}

ConstantBank
ShaderEmulator::makeConstants(const ShaderProgram& program)
{
    ConstantBank bank{};
    applyLiterals(program, bank);
    return bank;
}

void
ShaderEmulator::applyLiterals(const ShaderProgram& program,
                              ConstantBank& bank)
{
    for (const auto& [slot, value] : program.literals)
        bank[slot] = value;
}

} // namespace attila::emu

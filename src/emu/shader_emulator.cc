#include "emu/shader_emulator.hh"

#include <cmath>

#include "sim/logging.hh"

namespace attila::emu
{

namespace
{

/** Fetch a source operand value. */
Vec4
readSrc(const SrcOperand& src, const ShaderThreadState& state,
        const ConstantBank& constants)
{
    Vec4 v;
    switch (src.bank) {
      case Bank::Attrib:
        v = state.in[src.index];
        break;
      case Bank::Temp:
        v = state.temp[src.index];
        break;
      case Bank::Param:
        v = constants[src.index];
        break;
      default:
        panic("shader emulator: read from invalid bank");
    }
    return src.apply(v);
}

/** Write @p value into the destination honoring mask and saturate. */
void
writeDst(const Instruction& ins, ShaderThreadState& state,
         const Vec4& value)
{
    Vec4 v = ins.saturate ? saturate(value) : value;
    Vec4* target = nullptr;
    switch (ins.dst.bank) {
      case Bank::Temp:
        target = &state.temp[ins.dst.index];
        break;
      case Bank::Output:
        target = &state.out[ins.dst.index];
        break;
      default:
        panic("shader emulator: write to invalid bank");
    }
    for (u32 i = 0; i < 4; ++i) {
        if (ins.dst.writeMask & (1u << i))
            (*target)[i] = v[i];
    }
}

/** Broadcast a scalar result to all components. */
Vec4
smear(f32 s)
{
    return {s, s, s, s};
}

/** ARB LIT: lighting coefficients. */
Vec4
litOp(const Vec4& s)
{
    const f32 diffuse = std::max(s.x, 0.0f);
    f32 specular = 0.0f;
    if (s.x > 0.0f) {
        const f32 e = std::clamp(s.w, -128.0f, 128.0f);
        specular = std::pow(std::max(s.y, 0.0f), e);
    }
    return {1.0f, diffuse, specular, 1.0f};
}

} // anonymous namespace

StepResult
ShaderEmulator::step(const ShaderProgram& program,
                     const ConstantBank& constants,
                     ShaderThreadState& state,
                     const ImmediateSampler* sampler) const
{
    if (state.pc >= program.code.size())
        panic("shader emulator: pc ", state.pc,
              " past the end of a program of length ",
              program.code.size());

    const Instruction& ins = program.code[state.pc];
    const OpcodeInfo& info = opcodeInfo(ins.op);

    StepResult result;
    result.latency = info.latency;

    if (ins.op == Opcode::END) {
        result.outcome = StepOutcome::Done;
        return result;
    }

    if (info.isTexture) {
        const Vec4 coord = readSrc(ins.src[0], state, constants);
        const bool projected = ins.op == Opcode::TXP;
        const f32 bias = ins.op == Opcode::TXB ? coord.w : 0.0f;
        if (!sampler) {
            result.outcome = StepOutcome::TexRequest;
            result.texUnit = ins.texUnit;
            result.texTarget = ins.texTarget;
            result.texCoord = coord;
            result.texLodBias = bias;
            result.texProjected = projected;
            return result;
        }
        const Vec4 texel = (*sampler)(ins.texUnit, ins.texTarget,
                                      coord, bias, projected);
        writeDst(ins, state, texel);
        ++state.pc;
        result.outcome = StepOutcome::Continue;
        return result;
    }

    Vec4 a, b, c;
    if (info.numSrc >= 1)
        a = readSrc(ins.src[0], state, constants);
    if (info.numSrc >= 2)
        b = readSrc(ins.src[1], state, constants);
    if (info.numSrc >= 3)
        c = readSrc(ins.src[2], state, constants);

    Vec4 r;
    switch (ins.op) {
      case Opcode::ABS:
        r = {std::fabs(a.x), std::fabs(a.y), std::fabs(a.z),
             std::fabs(a.w)};
        break;
      case Opcode::ADD:
        r = a + b;
        break;
      case Opcode::CMP:
        r = {a.x < 0.0f ? b.x : c.x, a.y < 0.0f ? b.y : c.y,
             a.z < 0.0f ? b.z : c.z, a.w < 0.0f ? b.w : c.w};
        break;
      case Opcode::COS:
        r = smear(std::cos(a.x));
        break;
      case Opcode::DP3:
        r = smear(dot3(a, b));
        break;
      case Opcode::DP4:
        r = smear(dot4(a, b));
        break;
      case Opcode::DPH:
        r = smear(dot3(a, b) + b.w);
        break;
      case Opcode::EX2:
        r = smear(std::exp2(a.x));
        break;
      case Opcode::FLR:
        r = {std::floor(a.x), std::floor(a.y), std::floor(a.z),
             std::floor(a.w)};
        break;
      case Opcode::FRC:
        r = {a.x - std::floor(a.x), a.y - std::floor(a.y),
             a.z - std::floor(a.z), a.w - std::floor(a.w)};
        break;
      case Opcode::KIL:
        if (a.x < 0.0f || a.y < 0.0f || a.z < 0.0f || a.w < 0.0f) {
            state.killed = true;
            result.outcome = StepOutcome::Done;
            return result;
        }
        ++state.pc;
        result.outcome = StepOutcome::Continue;
        return result;
      case Opcode::LG2:
        r = smear(std::log2(a.x));
        break;
      case Opcode::LIT:
        r = litOp(a);
        break;
      case Opcode::LRP:
        r = a * b + (Vec4(1.0f) - a) * c;
        break;
      case Opcode::MAD:
        r = a * b + c;
        break;
      case Opcode::MAX:
        r = vmax(a, b);
        break;
      case Opcode::MIN:
        r = vmin(a, b);
        break;
      case Opcode::MOV:
        r = a;
        break;
      case Opcode::MUL:
        r = a * b;
        break;
      case Opcode::POW:
        r = smear(std::pow(a.x, b.x));
        break;
      case Opcode::RCP:
        r = smear(a.x == 0.0f
                      ? std::numeric_limits<f32>::infinity()
                      : 1.0f / a.x);
        break;
      case Opcode::RSQ:
        r = smear(1.0f / std::sqrt(std::fabs(a.x)));
        break;
      case Opcode::SGE:
        r = {a.x >= b.x ? 1.0f : 0.0f, a.y >= b.y ? 1.0f : 0.0f,
             a.z >= b.z ? 1.0f : 0.0f, a.w >= b.w ? 1.0f : 0.0f};
        break;
      case Opcode::SIN:
        r = smear(std::sin(a.x));
        break;
      case Opcode::SLT:
        r = {a.x < b.x ? 1.0f : 0.0f, a.y < b.y ? 1.0f : 0.0f,
             a.z < b.z ? 1.0f : 0.0f, a.w < b.w ? 1.0f : 0.0f};
        break;
      case Opcode::SUB:
        r = a - b;
        break;
      case Opcode::XPD:
        r = cross3(a, b);
        break;
      default:
        panic("shader emulator: unhandled opcode");
    }

    writeDst(ins, state, r);
    ++state.pc;
    result.outcome = StepOutcome::Continue;
    return result;
}

void
ShaderEmulator::completeTexture(const ShaderProgram& program,
                                ShaderThreadState& state,
                                const Vec4& texel) const
{
    const Instruction& ins = program.code[state.pc];
    if (!opcodeInfo(ins.op).isTexture)
        panic("shader emulator: completeTexture at a non-texture"
              " instruction");
    writeDst(ins, state, texel);
    ++state.pc;
}

bool
ShaderEmulator::run(const ShaderProgram& program,
                    const ConstantBank& constants,
                    ShaderThreadState& state,
                    const ImmediateSampler* sampler) const
{
    for (u32 guard = 0; guard < 65536; ++guard) {
        const StepResult res = step(program, constants, state,
                                    sampler);
        if (res.outcome == StepOutcome::Done)
            return !state.killed;
        if (res.outcome == StepOutcome::TexRequest)
            panic("shader emulator: run() needs an immediate sampler"
                  " for texture instructions");
    }
    panic("shader emulator: program did not terminate");
}

ConstantBank
ShaderEmulator::makeConstants(const ShaderProgram& program)
{
    ConstantBank bank{};
    applyLiterals(program, bank);
    return bank;
}

void
ShaderEmulator::applyLiterals(const ShaderProgram& program,
                              ConstantBank& bank)
{
    for (const auto& [slot, value] : program.literals)
        bank[slot] = value;
}

} // namespace attila::emu

/**
 * @file
 * ShaderEmulator: the threaded interpreter that executes shader
 * programs instruction by instruction over per-thread register state
 * (paper §3).
 *
 * The emulator is pure functional code: it knows nothing about
 * cycles.  The timing boxes (ShaderUnit) call step() to execute one
 * instruction and learn its latency class; the reference renderer
 * calls run() to execute a whole program.  Texture sampling is
 * delegated through the TextureSampler interface so that the timing
 * path can route requests through the Texture Unit while functional
 * paths sample immediately.
 */

#ifndef ATTILA_EMU_SHADER_EMULATOR_HH
#define ATTILA_EMU_SHADER_EMULATOR_HH

#include <array>

#include "emu/shader_isa.hh"
#include "emu/vector.hh"
#include "sim/function_ref.hh"

namespace attila::emu
{

struct DecodedProgram; // emu/decoded_program.hh

/** Per-thread (per shader input) register state. */
struct ShaderThreadState
{
    std::array<Vec4, regix::numInputRegs> in{};
    std::array<Vec4, regix::numOutputRegs> out{};
    std::array<Vec4, regix::numTempRegs> temp{};
    u32 pc = 0;
    bool killed = false;

    void
    reset()
    {
        in.fill(Vec4());
        out.fill(Vec4());
        temp.fill(Vec4());
        pc = 0;
        killed = false;
    }
};

/** Constant (Param) bank shared by all threads of a program. */
using ConstantBank = std::array<Vec4, regix::numParamRegs>;

/**
 * Callback used to resolve TEX/TXB/TXP instructions immediately
 * (functional paths).  Arguments: texture unit, target, coordinate
 * (TXP already projected, TXB bias in coordinate.w per ARB).
 *
 * Non-owning (sim::FunctionRef): bind it to a *named* callable that
 * outlives every step()/run() call, never to a temporary lambda.
 */
using ImmediateSampler =
    sim::FunctionRef<Vec4(u32 unit, TexTarget target,
                          const Vec4& coord, f32 lodBias,
                          bool projected)>;

/**
 * Quad-context sampler for the lockstep path: resolves one texture
 * instruction for all four lanes at once.  @p coords holds the
 * unprojected per-lane coordinates (inactive lanes keep their
 * default value — they still shape the quad footprint, as in the
 * per-lane path); @p liveMask bit l is set for lanes to sample.
 * Same lifetime contract as ImmediateSampler.
 */
using QuadSampler = sim::FunctionRef<std::array<Vec4, 4>(
    u32 unit, TexTarget target, const std::array<Vec4, 4>& coords,
    u8 liveMask, f32 lodBias, bool projected)>;

/** Outcome of executing one instruction. */
enum class StepOutcome : u8
{
    Continue,   ///< Instruction retired, more follow.
    Done,       ///< END reached (or fragment killed).
    TexRequest, ///< Texture access: the caller must service it.
};

/** Result of ShaderEmulator::step(). */
struct StepResult
{
    StepOutcome outcome = StepOutcome::Continue;
    u32 latency = 1;       ///< Execution latency class in cycles.
    // Valid when outcome == TexRequest:
    u32 texUnit = 0;
    TexTarget texTarget = TexTarget::Tex2D;
    Vec4 texCoord;         ///< Post-swizzle source coordinate.
    f32 texLodBias = 0.0f; ///< TXB bias (coordinate.w).
    bool texProjected = false; ///< TXP: divide coords by q.
};

/** Result of ShaderEmulator::stepQuad(). */
struct QuadStepResult
{
    /** Done means every lane of the quad has finished. */
    StepOutcome outcome = StepOutcome::Continue;
    u32 latency = 1;
    // Valid when outcome == TexRequest (inactive lanes keep default
    // coordinates, exactly as the per-lane request build does):
    u32 texUnit = 0;
    TexTarget texTarget = TexTarget::Tex2D;
    std::array<Vec4, 4> texCoords{};
    f32 texLodBias = 0.0f;
    bool texProjected = false;
};

/**
 * Executes shader programs.  Stateless across threads: all mutable
 * state lives in ShaderThreadState, so one emulator instance can
 * serve any number of interleaved threads (as the multithreaded
 * shader units do).
 */
class ShaderEmulator
{
  public:
    /**
     * Execute the instruction at @p state.pc of @p program.
     *
     * When the instruction is a texture access and @p sampler is
     * null, the result has outcome TexRequest and the thread's pc is
     * NOT advanced: the caller services the request and then calls
     * completeTexture().  With a non-null @p sampler the access is
     * resolved inline.
     */
    StepResult step(const ShaderProgram& program,
                    const ConstantBank& constants,
                    ShaderThreadState& state,
                    const ImmediateSampler* sampler = nullptr) const;

    /**
     * Finish a pending texture access: write @p texel into the
     * destination of the instruction at state.pc and advance.
     */
    void completeTexture(const ShaderProgram& program,
                         ShaderThreadState& state,
                         const Vec4& texel) const;

    /**
     * Run @p program to completion for @p state using @p sampler for
     * texture accesses.  Returns false when the fragment was killed.
     */
    bool run(const ShaderProgram& program,
             const ConstantBank& constants, ShaderThreadState& state,
             const ImmediateSampler* sampler = nullptr) const;

    // ---- Pre-decoded fast path (see emu/decoded_program.hh) ----
    //
    // The decoded interpreters execute the same arithmetic in the
    // same per-lane order as step(); registers stay bit-identical
    // between the two paths.

    /** step() against a pre-decoded program (scalar reference for
     * the decode cache alone, used by the micro benchmark). */
    StepResult stepDecoded(const DecodedProgram& program,
                           const ConstantBank& constants,
                           ShaderThreadState& state,
                           const ImmediateSampler* sampler =
                               nullptr) const;

    /**
     * Execute one instruction for every live lane of a quad in
     * lockstep.  Lane l is live when !laneDone[l]; END and KIL mark
     * lanes done in place.  Without a @p sampler a texture
     * instruction returns TexRequest and advances no pc (service it
     * with completeTextureQuad()); with one, the whole quad's access
     * resolves inline through a single sampler call.
     */
    QuadStepResult stepQuad(const DecodedProgram& program,
                            const ConstantBank& constants,
                            std::array<ShaderThreadState, 4>& lanes,
                            std::array<bool, 4>& laneDone,
                            const QuadSampler* sampler =
                                nullptr) const;

    /** Finish a pending quad texture access: write each live lane's
     * texel and advance its pc. */
    void completeTextureQuad(const DecodedProgram& program,
                             std::array<ShaderThreadState, 4>& lanes,
                             const std::array<bool, 4>& laneDone,
                             const std::array<Vec4, 4>& texels) const;

    /** run() against a pre-decoded program. */
    bool runDecoded(const DecodedProgram& program,
                    const ConstantBank& constants,
                    ShaderThreadState& state,
                    const ImmediateSampler* sampler = nullptr) const;

    /**
     * Run a quad to completion in lockstep; texture instructions
     * resolve through @p sampler.  On return every lane is done and
     * killed[l] reports the KIL outcomes.
     */
    void runQuad(const DecodedProgram& program,
                 const ConstantBank& constants,
                 std::array<ShaderThreadState, 4>& lanes,
                 std::array<bool, 4>& laneDone,
                 std::array<bool, 4>& killed,
                 const QuadSampler& sampler) const;

    /** Build a constant bank from a program's literals (other slots
     * zero). */
    static ConstantBank makeConstants(const ShaderProgram& program);

    /** Merge @p program literals into an existing bank. */
    static void applyLiterals(const ShaderProgram& program,
                              ConstantBank& bank);
};

} // namespace attila::emu

#endif // ATTILA_EMU_SHADER_EMULATOR_HH

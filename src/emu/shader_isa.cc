#include "emu/shader_isa.hh"

#include <cctype>
#include <map>
#include <sstream>

#include "sim/logging.hh"

namespace attila::emu
{

namespace
{

const OpcodeInfo opcodeTable[numOpcodes] = {
    // name  numSrc hasDst scalar texture latency
    {"ABS", 1, true, false, false, 1},
    {"ADD", 2, true, false, false, 4},
    {"CMP", 3, true, false, false, 4},
    {"COS", 1, true, true, false, 9},
    {"DP3", 2, true, false, false, 4},
    {"DP4", 2, true, false, false, 4},
    {"DPH", 2, true, false, false, 4},
    {"EX2", 1, true, true, false, 6},
    {"FLR", 1, true, false, false, 1},
    {"FRC", 1, true, false, false, 1},
    {"KIL", 1, false, false, false, 1},
    {"LG2", 1, true, true, false, 6},
    {"LIT", 1, true, false, false, 9},
    {"LRP", 3, true, false, false, 4},
    {"MAD", 3, true, false, false, 4},
    {"MAX", 2, true, false, false, 2},
    {"MIN", 2, true, false, false, 2},
    {"MOV", 1, true, false, false, 1},
    {"MUL", 2, true, false, false, 4},
    {"POW", 2, true, true, false, 9},
    {"RCP", 1, true, true, false, 6},
    {"RSQ", 1, true, true, false, 6},
    {"SGE", 2, true, false, false, 2},
    {"SIN", 1, true, true, false, 9},
    {"SLT", 2, true, false, false, 2},
    {"SUB", 2, true, false, false, 4},
    {"XPD", 2, true, false, false, 4},
    {"TEX", 1, true, false, true, 1},
    {"TXB", 1, true, false, true, 1},
    {"TXP", 1, true, false, true, 1},
    {"END", 0, false, false, false, 1},
};

} // anonymous namespace

const OpcodeInfo&
opcodeInfo(Opcode op)
{
    return opcodeTable[static_cast<u32>(op)];
}

namespace
{

/** Simple token stream over one statement. */
class TokenStream
{
  public:
    TokenStream(const std::string& text, u32 line)
        : _text(text), _line(line)
    {}

    bool
    atEnd()
    {
        skipSpace();
        return _pos >= _text.size();
    }

    /** Peek at the next character (0 at end). */
    char
    peek()
    {
        skipSpace();
        return _pos < _text.size() ? _text[_pos] : '\0';
    }

    /** Consume one expected punctuation character. */
    void
    expect(char c)
    {
        skipSpace();
        if (_pos >= _text.size() || _text[_pos] != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++_pos;
    }

    /** Consume @p c if present; returns whether it was. */
    bool
    accept(char c)
    {
        skipSpace();
        if (_pos < _text.size() && _text[_pos] == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    /** Read an identifier ([A-Za-z_][A-Za-z0-9_]*). */
    std::string
    identifier()
    {
        skipSpace();
        if (_pos >= _text.size() ||
            (!std::isalpha(static_cast<unsigned char>(_text[_pos])) &&
             _text[_pos] != '_')) {
            fail("expected identifier");
        }
        std::size_t start = _pos;
        while (_pos < _text.size() &&
               (std::isalnum(static_cast<unsigned char>(_text[_pos])) ||
                _text[_pos] == '_')) {
            ++_pos;
        }
        return _text.substr(start, _pos - start);
    }

    /** Read an unsigned integer. */
    u32
    integer()
    {
        skipSpace();
        if (_pos >= _text.size() ||
            !std::isdigit(static_cast<unsigned char>(_text[_pos]))) {
            fail("expected integer");
        }
        u32 v = 0;
        while (_pos < _text.size() &&
               std::isdigit(static_cast<unsigned char>(_text[_pos]))) {
            v = v * 10 + static_cast<u32>(_text[_pos] - '0');
            ++_pos;
        }
        return v;
    }

    /** Read a (possibly signed) float literal. */
    f32
    number()
    {
        skipSpace();
        std::size_t consumed = 0;
        f32 v = 0.0f;
        try {
            v = std::stof(_text.substr(_pos), &consumed);
        } catch (const std::exception&) {
            fail("expected number");
        }
        _pos += consumed;
        return v;
    }

    [[noreturn]] void
    fail(const std::string& msg)
    {
        fatal("shader assembler: line ", _line, ": ", msg, " in '",
              _text, "'");
    }

    u32 line() const { return _line; }

  private:
    void
    skipSpace()
    {
        while (_pos < _text.size() &&
               std::isspace(static_cast<unsigned char>(_text[_pos]))) {
            ++_pos;
        }
    }

    std::string _text;
    u32 _line;
    std::size_t _pos = 0;
};

/** Assembler working state for one program. */
class Assembler
{
  public:
    ShaderProgramPtr
    run(const std::string& source)
    {
        _prog = std::make_shared<ShaderProgram>();
        parseHeader(source);

        for (auto& [text, line] : splitStatements(source)) {
            TokenStream ts(text, line);
            if (ts.atEnd())
                continue;
            parseStatement(ts);
            if (_ended)
                break;
        }
        if (!_ended)
            fatal("shader assembler: missing END");
        analyze();
        return _prog;
    }

  private:
    using RegRef = std::pair<Bank, u32>;

    void
    parseHeader(const std::string& source)
    {
        std::size_t pos = source.find("!!ARB");
        if (pos == std::string::npos)
            fatal("shader assembler: missing !!ARBvp1.0 / !!ARBfp1.0",
                  " header");
        const std::string hdr = source.substr(pos, 10);
        if (hdr.rfind("!!ARBvp", 0) == 0) {
            _prog->target = ShaderTarget::Vertex;
        } else if (hdr.rfind("!!ARBfp", 0) == 0) {
            _prog->target = ShaderTarget::Fragment;
        } else {
            fatal("shader assembler: unknown program header '", hdr,
                  "'");
        }
        _headerEnd = source.find('\n', pos);
        if (_headerEnd == std::string::npos)
            _headerEnd = source.size();
    }

    /** Split into ';'-terminated statements with line numbers,
     * skipping comments and the header. */
    std::vector<std::pair<std::string, u32>>
    splitStatements(const std::string& source)
    {
        std::vector<std::pair<std::string, u32>> out;
        std::string cur;
        u32 line = 1;
        u32 start_line = 1;
        bool in_comment = false;
        for (std::size_t i = _headerEnd; i < source.size(); ++i) {
            const char c = source[i];
            if (c == '\n') {
                ++line;
                in_comment = false;
                cur += ' ';
                continue;
            }
            if (in_comment)
                continue;
            if (c == '#') {
                in_comment = true;
                continue;
            }
            if (c == ';') {
                out.emplace_back(cur, start_line);
                cur.clear();
                start_line = line;
                continue;
            }
            if (cur.empty() &&
                std::isspace(static_cast<unsigned char>(c))) {
                start_line = line;
                continue;
            }
            cur += c;
        }
        if (!cur.empty())
            out.emplace_back(cur, start_line);
        return out;
    }

    void
    parseStatement(TokenStream& ts)
    {
        const std::string kw = ts.identifier();
        if (kw == "TEMP") {
            do {
                declare(ts, ts.identifier(), Bank::Temp,
                        allocTemp(ts));
            } while (ts.accept(','));
        } else if (kw == "PARAM") {
            const std::string name = ts.identifier();
            ts.expect('=');
            declare(ts, name, Bank::Param, parseParamInit(ts));
        } else if (kw == "ATTRIB") {
            const std::string name = ts.identifier();
            ts.expect('=');
            RegRef ref = parseRegRef(ts, /*allow_literal=*/false);
            if (ref.first != Bank::Attrib)
                ts.fail("ATTRIB must bind an input attribute");
            declare(ts, name, ref.first, ref.second);
        } else if (kw == "OUTPUT") {
            const std::string name = ts.identifier();
            ts.expect('=');
            RegRef ref = parseRegRef(ts, false);
            if (ref.first != Bank::Output)
                ts.fail("OUTPUT must bind a result register");
            declare(ts, name, ref.first, ref.second);
        } else if (kw == "ALIAS") {
            const std::string name = ts.identifier();
            ts.expect('=');
            RegRef ref = parseRegRef(ts, false);
            declare(ts, name, ref.first, ref.second);
        } else if (kw == "END") {
            Instruction end;
            end.op = Opcode::END;
            _prog->code.push_back(end);
            _ended = true;
        } else {
            parseInstruction(ts, kw);
        }
    }

    u32
    allocTemp(TokenStream& ts)
    {
        if (_nextTemp >= regix::numTempRegs)
            ts.fail("too many TEMP registers");
        return _nextTemp++;
    }

    void
    declare(TokenStream& ts, const std::string& name, Bank bank,
            u32 index)
    {
        if (_symbols.count(name))
            ts.fail("redeclared symbol '" + name + "'");
        _symbols[name] = {bank, index};
    }

    /** PARAM initializer: program.env/local[n], literal vector or
     * scalar. */
    u32
    parseParamInit(TokenStream& ts)
    {
        if (ts.peek() == '{' || ts.peek() == '-' ||
            std::isdigit(static_cast<unsigned char>(ts.peek())) ||
            ts.peek() == '.') {
            return allocLiteral(ts, parseLiteral(ts));
        }
        RegRef ref = parseRegRef(ts, false);
        if (ref.first != Bank::Param)
            ts.fail("PARAM must bind a constant");
        return ref.second;
    }

    Vec4
    parseLiteral(TokenStream& ts)
    {
        if (ts.accept('{')) {
            Vec4 v(0, 0, 0, 1);
            v.x = ts.number();
            for (u32 i = 1; i < 4 && ts.accept(','); ++i)
                v[i] = ts.number();
            ts.expect('}');
            return v;
        }
        const f32 s = ts.number();
        return {s, s, s, s};
    }

    u32
    allocLiteral(TokenStream& ts, const Vec4& v)
    {
        // Deduplicate identical literals.
        for (const auto& [slot, val] : _prog->literals) {
            if (val == v)
                return slot;
        }
        const u32 slot =
            regix::paramLiteralTop -
            static_cast<u32>(_prog->literals.size());
        if (slot < regix::paramLocalBase + 64)
            ts.fail("too many literal constants");
        _prog->literals.emplace_back(slot, v);
        return slot;
    }

    /** Parse a register reference (no swizzle/mask). */
    RegRef
    parseRegRef(TokenStream& ts, bool allow_literal)
    {
        if (allow_literal &&
            (ts.peek() == '{' ||
             std::isdigit(static_cast<unsigned char>(ts.peek())))) {
            // Use a throwaway TokenStream-independent path: literals
            // in operand position become Param references.
            return {Bank::Param, allocLiteral(ts, parseLiteral(ts))};
        }

        const std::string word = ts.identifier();
        if (auto it = _symbols.find(word); it != _symbols.end())
            return {it->second.first, it->second.second};

        const bool isVertex = _prog->target == ShaderTarget::Vertex;

        if (word == "vertex") {
            if (!isVertex)
                ts.fail("'vertex.*' in a fragment program");
            ts.expect('.');
            const std::string what = ts.identifier();
            if (what == "attrib")
                return {Bank::Attrib, bracketIndex(ts, 16)};
            if (what == "position")
                return {Bank::Attrib, regix::vinPosition};
            if (what == "weight")
                return {Bank::Attrib, regix::vinWeight};
            if (what == "normal")
                return {Bank::Attrib, regix::vinNormal};
            if (what == "color")
                return {Bank::Attrib, regix::vinColor};
            if (what == "fogcoord")
                return {Bank::Attrib, regix::vinFogCoord};
            if (what == "texcoord") {
                return {Bank::Attrib,
                        regix::vinTexCoordBase +
                            optionalBracketIndex(ts, 8)};
            }
            ts.fail("unknown vertex attribute '" + what + "'");
        }

        if (word == "fragment") {
            if (isVertex)
                ts.fail("'fragment.*' in a vertex program");
            ts.expect('.');
            const std::string what = ts.identifier();
            if (what == "position")
                return {Bank::Attrib, regix::finPosition};
            if (what == "color")
                return {Bank::Attrib, regix::ioColor};
            if (what == "fogcoord")
                return {Bank::Attrib, regix::ioFogCoord};
            if (what == "texcoord") {
                return {Bank::Attrib,
                        regix::ioTexCoordBase +
                            optionalBracketIndex(ts, 8)};
            }
            ts.fail("unknown fragment attribute '" + what + "'");
        }

        if (word == "result") {
            ts.expect('.');
            const std::string what = ts.identifier();
            if (isVertex) {
                if (what == "position")
                    return {Bank::Output, regix::vposPosition};
                if (what == "color")
                    return {Bank::Output, regix::ioColor};
                if (what == "fogcoord")
                    return {Bank::Output, regix::ioFogCoord};
                if (what == "texcoord") {
                    return {Bank::Output,
                            regix::ioTexCoordBase +
                                optionalBracketIndex(ts, 8)};
                }
            } else {
                if (what == "color")
                    return {Bank::Output, regix::foutColor};
                if (what == "depth")
                    return {Bank::Output, regix::foutDepth};
            }
            ts.fail("unknown result register '" + what + "'");
        }

        if (word == "program") {
            ts.expect('.');
            const std::string what = ts.identifier();
            if (what == "env")
                return {Bank::Param, bracketIndex(ts, 128)};
            if (what == "local") {
                return {Bank::Param,
                        regix::paramLocalBase + bracketIndex(ts, 64)};
            }
            ts.fail("unknown program parameter '" + what + "'");
        }

        ts.fail("unknown register '" + word + "'");
    }

    u32
    bracketIndex(TokenStream& ts, u32 limit)
    {
        ts.expect('[');
        const u32 i = ts.integer();
        ts.expect(']');
        if (i >= limit)
            ts.fail("register index out of range");
        return i;
    }

    u32
    optionalBracketIndex(TokenStream& ts, u32 limit)
    {
        if (ts.peek() != '[')
            return 0;
        return bracketIndex(ts, limit);
    }

    static u32
    componentIndex(TokenStream& ts, char c)
    {
        switch (c) {
          case 'x': case 'r': return 0;
          case 'y': case 'g': return 1;
          case 'z': case 'b': return 2;
          case 'w': case 'a': return 3;
          default:
            ts.fail(std::string("bad component '") + c + "'");
        }
    }

    SrcOperand
    parseSrc(TokenStream& ts)
    {
        SrcOperand src;
        src.negate = ts.accept('-');
        auto [bank, index] = parseRegRef(ts, /*allow_literal=*/true);
        src.bank = bank;
        src.index = static_cast<u8>(index);
        if (src.bank == Bank::Output)
            ts.fail("output registers are write-only");
        if (ts.accept('.')) {
            const std::string sw = ts.identifier();
            if (sw.size() == 1) {
                const u32 c = componentIndex(ts, sw[0]);
                src.swizzle = {static_cast<u8>(c), static_cast<u8>(c),
                               static_cast<u8>(c), static_cast<u8>(c)};
            } else if (sw.size() == 4) {
                for (u32 i = 0; i < 4; ++i) {
                    src.swizzle[i] =
                        static_cast<u8>(componentIndex(ts, sw[i]));
                }
            } else {
                ts.fail("swizzle must have 1 or 4 components");
            }
        }
        return src;
    }

    DstOperand
    parseDst(TokenStream& ts)
    {
        DstOperand dst;
        auto [bank, index] = parseRegRef(ts, false);
        dst.bank = bank;
        dst.index = static_cast<u8>(index);
        if (dst.bank == Bank::Attrib || dst.bank == Bank::Param)
            ts.fail("destination must be a temp or output register");
        if (ts.accept('.')) {
            const std::string mask = ts.identifier();
            dst.writeMask = 0;
            u32 prev = 0;
            bool first = true;
            for (char c : mask) {
                const u32 comp = componentIndex(ts, c);
                if (!first && comp <= prev)
                    ts.fail("write mask must be in xyzw order");
                dst.writeMask |= static_cast<u8>(1u << comp);
                prev = comp;
                first = false;
            }
        }
        return dst;
    }

    void
    parseInstruction(TokenStream& ts, std::string mnemonic)
    {
        Instruction ins;
        if (mnemonic.size() > 4 &&
            mnemonic.substr(mnemonic.size() - 4) == "_SAT") {
            ins.saturate = true;
            mnemonic = mnemonic.substr(0, mnemonic.size() - 4);
        }

        bool found = false;
        for (u32 i = 0; i < numOpcodes; ++i) {
            if (mnemonic == opcodeTable[i].name) {
                ins.op = static_cast<Opcode>(i);
                found = true;
                break;
            }
        }
        if (!found)
            ts.fail("unknown opcode '" + mnemonic + "'");

        const OpcodeInfo& info = opcodeInfo(ins.op);
        if (info.isTexture &&
            _prog->target == ShaderTarget::Vertex) {
            ts.fail("texture instructions are only available in"
                    " fragment programs");
        }
        if (ins.op == Opcode::KIL &&
            _prog->target == ShaderTarget::Vertex) {
            ts.fail("KIL is only available in fragment programs");
        }

        if (info.hasDst) {
            ins.dst = parseDst(ts);
            ts.expect(',');
        }
        for (u32 i = 0; i < info.numSrc; ++i) {
            if (i > 0)
                ts.expect(',');
            ins.src[i] = parseSrc(ts);
        }
        if (info.isTexture) {
            ts.expect(',');
            const std::string texkw = ts.identifier();
            if (texkw != "texture")
                ts.fail("expected 'texture[n]'");
            ins.texUnit = static_cast<u8>(bracketIndex(ts, 16));
            ts.expect(',');
            // Target: 1D / 2D / 3D / CUBE.  1D/2D/3D start with a
            // digit, so read raw characters.
            if (ts.accept('1')) {
                ts.identifier(); // D
                ins.texTarget = TexTarget::Tex1D;
            } else if (ts.accept('2')) {
                ts.identifier();
                ins.texTarget = TexTarget::Tex2D;
            } else if (ts.accept('3')) {
                ts.identifier();
                ins.texTarget = TexTarget::Tex3D;
            } else {
                const std::string t = ts.identifier();
                if (t != "CUBE")
                    ts.fail("unknown texture target '" + t + "'");
                ins.texTarget = TexTarget::Cube;
            }
        }
        if (!ts.atEnd())
            ts.fail("trailing junk after instruction");
        _prog->code.push_back(ins);
    }

    /** Fill in the static analysis fields of the program. */
    void
    analyze()
    {
        analyzeProgram(*_prog);
    }

    std::shared_ptr<ShaderProgram> _prog;
    std::map<std::string, RegRef> _symbols;
    u32 _nextTemp = 0;
    std::size_t _headerEnd = 0;
    bool _ended = false;
};

const char* const swizzleChars = "xyzw";

std::string
srcToString(const SrcOperand& src)
{
    std::string s;
    if (src.negate)
        s += '-';
    switch (src.bank) {
      case Bank::Attrib: s += "attrib["; break;
      case Bank::Param: s += "param["; break;
      case Bank::Temp: s += "temp["; break;
      default: s += "?["; break;
    }
    s += std::to_string(src.index) + "]";
    const std::array<u8, 4> ident{0, 1, 2, 3};
    if (src.swizzle != ident) {
        s += '.';
        for (u32 i = 0; i < 4; ++i)
            s += swizzleChars[src.swizzle[i]];
    }
    return s;
}

std::string
dstToString(const DstOperand& dst)
{
    std::string s = dst.bank == Bank::Temp ? "temp[" : "output[";
    s += std::to_string(dst.index) + "]";
    if (dst.writeMask != 0xf) {
        s += '.';
        for (u32 i = 0; i < 4; ++i) {
            if (dst.writeMask & (1u << i))
                s += swizzleChars[i];
        }
    }
    return s;
}

} // anonymous namespace

ShaderProgramPtr
ShaderAssembler::assemble(const std::string& source)
{
    Assembler assembler;
    return assembler.run(source);
}

void
analyzeProgram(ShaderProgram& program)
{
    program.numTemps = 0;
    program.inputsRead = 0;
    program.outputsWritten = 0;
    program.texturesUsed = 0;
    program.textureInstructions = 0;
    for (const Instruction& ins : program.code) {
        const OpcodeInfo& info = opcodeInfo(ins.op);
        if (info.hasDst && ins.dst.bank == Bank::Temp) {
            program.numTemps =
                std::max(program.numTemps, u32(ins.dst.index) + 1);
        }
        if (info.hasDst && ins.dst.bank == Bank::Output)
            program.outputsWritten |= 1u << ins.dst.index;
        for (u32 i = 0; i < info.numSrc; ++i) {
            const SrcOperand& src = ins.src[i];
            if (src.bank == Bank::Attrib)
                program.inputsRead |= 1u << src.index;
            if (src.bank == Bank::Temp) {
                program.numTemps =
                    std::max(program.numTemps, u32(src.index) + 1);
            }
        }
        if (info.isTexture) {
            program.texturesUsed |= 1u << ins.texUnit;
            ++program.textureInstructions;
        }
    }
}

std::string
disassemble(const ShaderProgram& program)
{
    std::ostringstream os;
    os << (program.target == ShaderTarget::Vertex ? "!!ARBvp1.0"
                                                  : "!!ARBfp1.0")
       << '\n';
    for (const auto& [slot, val] : program.literals) {
        os << "# param[" << slot << "] = {" << val.x << ", " << val.y
           << ", " << val.z << ", " << val.w << "}\n";
    }
    for (const Instruction& ins : program.code) {
        const OpcodeInfo& info = opcodeInfo(ins.op);
        os << info.name;
        if (ins.saturate)
            os << "_SAT";
        if (info.hasDst)
            os << ' ' << dstToString(ins.dst);
        for (u32 i = 0; i < info.numSrc; ++i)
            os << (i == 0 && !info.hasDst ? " " : ", ")
               << srcToString(ins.src[i]);
        if (info.isTexture) {
            os << ", texture[" << u32(ins.texUnit) << "], ";
            switch (ins.texTarget) {
              case TexTarget::Tex1D: os << "1D"; break;
              case TexTarget::Tex2D: os << "2D"; break;
              case TexTarget::Tex3D: os << "3D"; break;
              case TexTarget::Cube: os << "CUBE"; break;
            }
        }
        os << ";\n";
    }
    return os.str();
}

} // namespace attila::emu

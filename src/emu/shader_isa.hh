/**
 * @file
 * The ATTILA shader ISA, modelled on the ARB vertex/fragment program
 * OpenGL extensions (paper §2.3).
 *
 * The shader works on 4-component 32-bit float registers organised in
 * four banks: input attributes (read only), output attributes (write
 * only), temporaries (read/write) and constants (read only).  SIMD
 * and scalar instructions are supported, plus texture sampling (TEX /
 * TXB / TXP) and fragment kill (KIL) for the fragment/unified
 * targets.
 *
 * Programs are written in an ARB-assembly-style text syntax and
 * assembled with ShaderAssembler; see tests/test_shader_isa.cc for
 * examples.
 */

#ifndef ATTILA_EMU_SHADER_ISA_HH
#define ATTILA_EMU_SHADER_ISA_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "emu/vector.hh"
#include "sim/types.hh"

namespace attila::emu
{

/** Shader program target. */
enum class ShaderTarget : u8 { Vertex, Fragment };

/** Register banks defined by the ARB-style ISA. */
enum class Bank : u8
{
    Attrib,  ///< Read-only input attributes.
    Output,  ///< Write-only output attributes.
    Temp,    ///< Read/write temporaries.
    Param,   ///< Read-only constants.
    None,    ///< No register (e.g. KIL destination).
};

/** Instruction opcodes. */
enum class Opcode : u8
{
    ABS, ADD, CMP, COS, DP3, DP4, DPH, EX2, FLR, FRC, KIL, LG2, LIT,
    LRP, MAD, MAX, MIN, MOV, MUL, POW, RCP, RSQ, SGE, SIN, SLT, SUB,
    XPD, TEX, TXB, TXP, END,
};

/** Number of opcodes (for tables indexed by Opcode). */
constexpr u32 numOpcodes = static_cast<u32>(Opcode::END) + 1;

/** Texture sampling targets. */
enum class TexTarget : u8 { Tex1D, Tex2D, Tex3D, Cube };

/** Static description of an opcode. */
struct OpcodeInfo
{
    const char* name;
    u8 numSrc;        ///< Source operand count.
    bool hasDst;      ///< Writes a destination register.
    bool isScalar;    ///< Operates on the .x of its sources.
    bool isTexture;   ///< Accesses a texture unit.
    u32 latency;      ///< Default execution latency in cycles (1-9).
};

/** Lookup the static info for @p op. */
const OpcodeInfo& opcodeInfo(Opcode op);

/** Source operand: bank, index, swizzle and negation. */
struct SrcOperand
{
    Bank bank = Bank::Temp;
    u8 index = 0;
    /** Per-component source selection, each entry in 0..3. */
    std::array<u8, 4> swizzle{0, 1, 2, 3};
    bool negate = false;

    /** Apply swizzle and negation to @p v. */
    Vec4
    apply(const Vec4& v) const
    {
        Vec4 r(v[swizzle[0]], v[swizzle[1]], v[swizzle[2]],
               v[swizzle[3]]);
        return negate ? -r : r;
    }
};

/** Destination operand: bank, index and write mask. */
struct DstOperand
{
    Bank bank = Bank::None;
    u8 index = 0;
    /** Bit i set selects component i (x=0 .. w=3). */
    u8 writeMask = 0xf;
};

/** One decoded shader instruction. */
struct Instruction
{
    Opcode op = Opcode::END;
    DstOperand dst;
    std::array<SrcOperand, 3> src;
    bool saturate = false;
    u8 texUnit = 0;
    TexTarget texTarget = TexTarget::Tex2D;
};

/**
 * Standard attribute / output register index assignments (following
 * the ARB extensions' conventions).
 */
namespace regix
{

// Vertex program input attributes.
constexpr u8 vinPosition = 0;
constexpr u8 vinWeight = 1;
constexpr u8 vinNormal = 2;
constexpr u8 vinColor = 3;
constexpr u8 vinSecondaryColor = 4;
constexpr u8 vinFogCoord = 5;
constexpr u8 vinTexCoordBase = 8; // .. 15

// Vertex program outputs / fragment program inputs (index-aligned so
// the interpolator maps vertex output k to fragment input k).
constexpr u8 vposPosition = 0;   // vertex result.position
constexpr u8 ioColor = 1;        // color
constexpr u8 ioSecondaryColor = 2;
constexpr u8 ioFogCoord = 3;
constexpr u8 ioTexCoordBase = 4; // .. 11

// Fragment program inputs.
constexpr u8 finPosition = 0; // window x, y, z, 1/w

// Fragment program outputs.
constexpr u8 foutColor = 0;
constexpr u8 foutDepth = 1;

constexpr u32 numInputRegs = 16;
constexpr u32 numOutputRegs = 16;
constexpr u32 numTempRegs = 32;
constexpr u32 numParamRegs = 256;

/** program.local[i] parameters start at this Param bank offset. */
constexpr u32 paramLocalBase = 128;
/** Inline literal constants are allocated downward from the top. */
constexpr u32 paramLiteralTop = 255;

} // namespace regix

/**
 * An assembled shader program: decoded instructions plus the
 * constants baked by inline literals and static analysis results used
 * by the driver and the shader units.
 */
struct ShaderProgram
{
    ShaderTarget target = ShaderTarget::Vertex;
    std::vector<Instruction> code;

    /** Inline literal constants: Param bank slot -> value. */
    std::vector<std::pair<u32, Vec4>> literals;

    /** Highest temp register index used + 1 (thread cost!). */
    u32 numTemps = 0;
    /** Bitmask of read input attribute registers. */
    u32 inputsRead = 0;
    /** Bitmask of written output registers. */
    u32 outputsWritten = 0;
    /** Bitmask of referenced texture units. */
    u32 texturesUsed = 0;
    /** Number of TEX/TXB/TXP instructions. */
    u32 textureInstructions = 0;

    /** Instruction count excluding END. */
    u32
    length() const
    {
        return static_cast<u32>(code.size());
    }
};

using ShaderProgramPtr = std::shared_ptr<const ShaderProgram>;

/**
 * Assembles ARB-style shader program text into a ShaderProgram.
 *
 * Supported syntax (a practical subset of ARB_vertex_program /
 * ARB_fragment_program):
 *
 *   !!ARBvp1.0 | !!ARBfp1.0
 *   TEMP r0, r1;
 *   PARAM c = program.env[4];  PARAM k = {0.5, 1, 2, 4};
 *   ATTRIB p = vertex.attrib[0];
 *   OUTPUT o = result.position;
 *   ALIAS a = r0;
 *   OP[_SAT] dst[.mask], [-]src[.swizzle] ...;
 *   TEX dst, src, texture[0], 2D;
 *   KIL src;
 *   END
 *
 * Direct register references: vertex.position/.normal/.color/
 * .fogcoord/.texcoord[n]/.attrib[n], fragment.position/.color/
 * .fogcoord/.texcoord[n], result.position/.color/.depth/.fogcoord/
 * .texcoord[n], program.env[n], program.local[n], and inline scalar
 * or vector literals.
 */
class ShaderAssembler
{
  public:
    /**
     * Assemble @p source; throws FatalError with a line-numbered
     * message on syntax errors.
     */
    ShaderProgramPtr assemble(const std::string& source);

  private:
    struct Impl;
};

/** Render @p program back to assembly-like text. */
std::string disassemble(const ShaderProgram& program);

/**
 * Recompute the static analysis fields (numTemps, inputsRead,
 * outputsWritten, texture usage) of @p program.  Used after
 * instruction-level program transformations such as the driver's
 * alpha-test injection.
 */
void analyzeProgram(ShaderProgram& program);

} // namespace attila::emu

#endif // ATTILA_EMU_SHADER_ISA_HH

#include "emu/texture_emulator.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace attila::emu
{

namespace
{

constexpr u32 tileDim = 8; ///< Uncompressed textures tile as 8x8.

/** Unpack a 565 color word to a Vec4 (alpha 1). */
Vec4
unpack565(u16 c)
{
    const f32 r = static_cast<f32>((c >> 11) & 0x1f) / 31.0f;
    const f32 g = static_cast<f32>((c >> 5) & 0x3f) / 63.0f;
    const f32 b = static_cast<f32>(c & 0x1f) / 31.0f;
    return {r, g, b, 1.0f};
}

u16
readU16(const u8* p)
{
    return static_cast<u16>(p[0] | (p[1] << 8));
}

u32
readU32(const u8* p)
{
    return static_cast<u32>(p[0] | (p[1] << 8) | (p[2] << 16) |
                            (p[3] << 24));
}

} // anonymous namespace

void
decodeDxt1Block(const u8* block, Vec4 out[16])
{
    const u16 c0 = readU16(block);
    const u16 c1 = readU16(block + 2);
    const u32 bits = readU32(block + 4);
    Vec4 palette[4];
    palette[0] = unpack565(c0);
    palette[1] = unpack565(c1);
    if (c0 > c1) {
        palette[2] = palette[0] * (2.0f / 3.0f) +
                     palette[1] * (1.0f / 3.0f);
        palette[3] = palette[0] * (1.0f / 3.0f) +
                     palette[1] * (2.0f / 3.0f);
        palette[2].w = palette[3].w = 1.0f;
    } else {
        palette[2] = (palette[0] + palette[1]) * 0.5f;
        palette[2].w = 1.0f;
        palette[3] = {0.0f, 0.0f, 0.0f, 0.0f};
    }
    for (u32 i = 0; i < 16; ++i)
        out[i] = palette[(bits >> (2 * i)) & 0x3];
}

void
decodeDxt3Block(const u8* block, Vec4 out[16])
{
    // Color part: always 4-color mode.
    const u16 c0 = readU16(block + 8);
    const u16 c1 = readU16(block + 10);
    const u32 bits = readU32(block + 12);
    Vec4 palette[4];
    palette[0] = unpack565(c0);
    palette[1] = unpack565(c1);
    palette[2] =
        palette[0] * (2.0f / 3.0f) + palette[1] * (1.0f / 3.0f);
    palette[3] =
        palette[0] * (1.0f / 3.0f) + palette[1] * (2.0f / 3.0f);
    for (u32 i = 0; i < 16; ++i) {
        out[i] = palette[(bits >> (2 * i)) & 0x3];
        // Explicit 4-bit alpha.
        const u32 nibble = (block[i / 2] >> ((i % 2) * 4)) & 0xf;
        out[i].w = static_cast<f32>(nibble) / 15.0f;
    }
}

void
decodeDxt5Block(const u8* block, Vec4 out[16])
{
    const f32 a0 = static_cast<f32>(block[0]) / 255.0f;
    const f32 a1 = static_cast<f32>(block[1]) / 255.0f;
    f32 alpha[8];
    alpha[0] = a0;
    alpha[1] = a1;
    if (block[0] > block[1]) {
        for (u32 i = 1; i < 7; ++i) {
            alpha[1 + i] =
                (a0 * static_cast<f32>(7 - i) +
                 a1 * static_cast<f32>(i)) / 7.0f;
        }
    } else {
        for (u32 i = 1; i < 5; ++i) {
            alpha[1 + i] =
                (a0 * static_cast<f32>(5 - i) +
                 a1 * static_cast<f32>(i)) / 5.0f;
        }
        alpha[6] = 0.0f;
        alpha[7] = 1.0f;
    }
    // 48 bits of 3-bit indices.
    u64 abits = 0;
    for (u32 i = 0; i < 6; ++i)
        abits |= static_cast<u64>(block[2 + i]) << (8 * i);

    const u16 c0 = readU16(block + 8);
    const u16 c1 = readU16(block + 10);
    const u32 bits = readU32(block + 12);
    Vec4 palette[4];
    palette[0] = unpack565(c0);
    palette[1] = unpack565(c1);
    palette[2] =
        palette[0] * (2.0f / 3.0f) + palette[1] * (1.0f / 3.0f);
    palette[3] =
        palette[0] * (1.0f / 3.0f) + palette[1] * (2.0f / 3.0f);
    for (u32 i = 0; i < 16; ++i) {
        out[i] = palette[(bits >> (2 * i)) & 0x3];
        out[i].w = alpha[(abits >> (3 * i)) & 0x7];
    }
}

u32
texFormatUnitBytes(TexFormat fmt)
{
    switch (fmt) {
      case TexFormat::RGBA8: return 4;
      case TexFormat::LUM8: return 1;
      case TexFormat::ALPHA8: return 1;
      case TexFormat::DXT1: return 8;
      case TexFormat::DXT3: return 16;
      case TexFormat::DXT5: return 16;
    }
    return 4;
}

bool
texFormatCompressed(TexFormat fmt)
{
    return fmt == TexFormat::DXT1 || fmt == TexFormat::DXT3 ||
           fmt == TexFormat::DXT5;
}

u32
mipStorageBytes(TexFormat fmt, u32 width, u32 height)
{
    if (texFormatCompressed(fmt)) {
        const u32 bw = (width + 3) / 4;
        const u32 bh = (height + 3) / 4;
        return bw * bh * texFormatUnitBytes(fmt);
    }
    const u32 tw = (width + tileDim - 1) / tileDim;
    const u32 th = (height + tileDim - 1) / tileDim;
    return tw * th * tileDim * tileDim * texFormatUnitBytes(fmt);
}

u32
TextureEmulator::texelAddress(const TextureDescriptor& desc, u8 face,
                              u8 level, u32 x, u32 y, u32* bytes)
{
    const MipLevel& mip = desc.mips[face][level];
    const u32 unit = texFormatUnitBytes(desc.format);
    if (texFormatCompressed(desc.format)) {
        const u32 bpr = (mip.width + 3) / 4;
        if (bytes)
            *bytes = unit;
        return mip.address + ((y / 4) * bpr + (x / 4)) * unit;
    }
    const u32 tpr = (mip.width + tileDim - 1) / tileDim;
    const u32 tileBytes = tileDim * tileDim * unit;
    if (bytes)
        *bytes = unit;
    return mip.address +
           ((y / tileDim) * tpr + (x / tileDim)) * tileBytes +
           ((y % tileDim) * tileDim + (x % tileDim)) * unit;
}

s32
TextureEmulator::wrap(WrapMode mode, s32 coord, s32 size)
{
    if (size <= 0)
        return 0;
    switch (mode) {
      case WrapMode::Repeat: {
        s32 m = coord % size;
        if (m < 0)
            m += size;
        return m;
      }
      case WrapMode::Clamp:
        return std::clamp(coord, 0, size - 1);
      case WrapMode::Mirror: {
        const s32 period = 2 * size;
        s32 m = coord % period;
        if (m < 0)
            m += period;
        return m < size ? m : period - 1 - m;
      }
    }
    return 0;
}

Vec4
TextureEmulator::fetchTexel(const TextureDescriptor& desc, u8 face,
                            u8 level, s32 x, s32 y,
                            const MemoryReader& mem)
{
    const MipLevel& mip = desc.mips[face][level];
    const s32 w = static_cast<s32>(mip.width);
    const s32 h = static_cast<s32>(mip.height);
    const u32 xi = static_cast<u32>(wrap(desc.wrapS, x, w));
    const u32 yi = static_cast<u32>(wrap(desc.wrapT, y, h));

    u32 unitBytes = 0;
    const u32 addr =
        texelAddress(desc, face, level, xi, yi, &unitBytes);

    switch (desc.format) {
      case TexFormat::RGBA8: {
        u8 px[4];
        mem.read(addr, 4, px);
        return {px[0] / 255.0f, px[1] / 255.0f, px[2] / 255.0f,
                px[3] / 255.0f};
      }
      case TexFormat::LUM8: {
        u8 l;
        mem.read(addr, 1, &l);
        const f32 v = l / 255.0f;
        return {v, v, v, 1.0f};
      }
      case TexFormat::ALPHA8: {
        u8 a;
        mem.read(addr, 1, &a);
        return {0.0f, 0.0f, 0.0f, a / 255.0f};
      }
      case TexFormat::DXT1:
      case TexFormat::DXT3:
      case TexFormat::DXT5: {
        u8 block[16];
        mem.read(addr, unitBytes, block);
        Vec4 texels[16];
        if (desc.format == TexFormat::DXT1)
            decodeDxt1Block(block, texels);
        else if (desc.format == TexFormat::DXT3)
            decodeDxt3Block(block, texels);
        else
            decodeDxt5Block(block, texels);
        return texels[(yi % 4) * 4 + (xi % 4)];
      }
    }
    return Vec4();
}

void
TextureEmulator::cubeFace(const Vec4& dir, u32& face, f32& s, f32& t)
{
    const f32 ax = std::fabs(dir.x);
    const f32 ay = std::fabs(dir.y);
    const f32 az = std::fabs(dir.z);
    f32 sc, tc, ma;
    if (ax >= ay && ax >= az) {
        ma = ax;
        if (dir.x >= 0.0f) {
            face = 0; sc = -dir.z; tc = -dir.y;
        } else {
            face = 1; sc = dir.z; tc = -dir.y;
        }
    } else if (ay >= ax && ay >= az) {
        ma = ay;
        if (dir.y >= 0.0f) {
            face = 2; sc = dir.x; tc = dir.z;
        } else {
            face = 3; sc = dir.x; tc = -dir.z;
        }
    } else {
        ma = az;
        if (dir.z >= 0.0f) {
            face = 4; sc = dir.x; tc = -dir.y;
        } else {
            face = 5; sc = -dir.x; tc = -dir.y;
        }
    }
    if (ma == 0.0f)
        ma = 1e-20f;
    s = (sc / ma + 1.0f) * 0.5f;
    t = (tc / ma + 1.0f) * 0.5f;
}

namespace
{

/** Convert a sample coordinate to face + normalized (s, t). */
void
resolveCoord(const TextureDescriptor& desc, const Vec4& coord,
             u32& face, f32& s, f32& t)
{
    if (desc.target == TexTarget::Cube) {
        TextureEmulator::cubeFace(coord, face, s, t);
    } else {
        face = 0;
        s = coord.x;
        t = desc.target == TexTarget::Tex1D ? 0.5f : coord.y;
    }
}

/** Append a nearest or bilinear footprint at one mip level. */
void
appendLevelSample(const TextureDescriptor& desc, u32 face, f32 s,
                  f32 t, u8 level, bool linear, f32 weight,
                  SamplePlan& plan)
{
    const MipLevel& mip = desc.mips[face][level];
    const s32 w = static_cast<s32>(mip.width);
    const s32 h = static_cast<s32>(mip.height);
    // Cube faces clamp regardless of the wrap mode.
    const WrapMode ws = desc.target == TexTarget::Cube
                            ? WrapMode::Clamp : desc.wrapS;
    const WrapMode wt = desc.target == TexTarget::Cube
                            ? WrapMode::Clamp : desc.wrapT;

    auto push = [&](s32 x, s32 y, f32 wgt) {
        if (wgt <= 0.0f)
            return;
        TexelRef ref;
        ref.face = static_cast<u8>(face);
        ref.level = level;
        ref.x = static_cast<u16>(
            TextureEmulator::wrap(ws, x, w));
        ref.y = static_cast<u16>(
            TextureEmulator::wrap(wt, y, h));
        u32 bytes = 0;
        ref.address = TextureEmulator::texelAddress(
            desc, ref.face, level, ref.x, ref.y, &bytes);
        ref.bytes = bytes;
        ref.weight = wgt;
        plan.texels.push_back(ref);
    };

    if (!linear) {
        push(static_cast<s32>(std::floor(s * w)),
             static_cast<s32>(std::floor(t * h)), weight);
        return;
    }

    const f32 u = s * static_cast<f32>(w) - 0.5f;
    const f32 v = t * static_cast<f32>(h) - 0.5f;
    const s32 x0 = static_cast<s32>(std::floor(u));
    const s32 y0 = static_cast<s32>(std::floor(v));
    const f32 fx = u - static_cast<f32>(x0);
    const f32 fy = v - static_cast<f32>(y0);
    push(x0, y0, weight * (1.0f - fx) * (1.0f - fy));
    push(x0 + 1, y0, weight * fx * (1.0f - fy));
    push(x0, y0 + 1, weight * (1.0f - fx) * fy);
    push(x0 + 1, y0 + 1, weight * fx * fy);
}

/** Does the min filter interpolate within a level? */
bool
minFilterLinear(MinFilter f)
{
    return f == MinFilter::Linear ||
           f == MinFilter::LinearMipNearest ||
           f == MinFilter::LinearMipLinear;
}

/** Does the min filter blend two mip levels? */
bool
minFilterMipLinear(MinFilter f)
{
    return f == MinFilter::NearestMipLinear ||
           f == MinFilter::LinearMipLinear;
}

/** Does the min filter use mipmaps at all? */
bool
minFilterMipmapped(MinFilter f)
{
    return f != MinFilter::Nearest && f != MinFilter::Linear;
}

/** Mip levels and blend weights one sample touches at @p lod.
 * Shared by the planning and the fused fast paths so level
 * selection can never diverge between them. */
struct LevelSelection
{
    struct LevelWeight { u8 level; f32 weight; };
    LevelWeight levels[2];
    u32 numLevels = 1;
    bool linear = true;
};

LevelSelection
selectLevels(const TextureDescriptor& desc, f32 lod)
{
    LevelSelection sel;
    const u32 maxLevel = desc.levels - 1;
    const bool magnify = lod <= 0.0f;
    sel.linear = magnify ? desc.magLinear
                         : minFilterLinear(desc.minFilter);

    if (magnify || !minFilterMipmapped(desc.minFilter)) {
        sel.levels[0] = {0, 1.0f};
    } else if (minFilterMipLinear(desc.minFilter)) {
        const f32 clamped =
            std::clamp(lod, 0.0f, static_cast<f32>(maxLevel));
        const u32 lo = static_cast<u32>(std::floor(clamped));
        const f32 f = clamped - static_cast<f32>(lo);
        if (lo >= maxLevel || f == 0.0f) {
            sel.levels[0] = {static_cast<u8>(std::min(lo, maxLevel)),
                             1.0f};
        } else {
            sel.levels[0] = {static_cast<u8>(lo), 1.0f - f};
            sel.levels[1] = {static_cast<u8>(lo + 1), f};
            sel.numLevels = 2;
        }
    } else {
        // Mip-nearest.
        const u32 l = static_cast<u32>(std::clamp(
            std::lround(lod), 0l, static_cast<long>(maxLevel)));
        sel.levels[0] = {static_cast<u8>(l), 1.0f};
    }
    return sel;
}

/** fetchTexel with DXT block-decode memoization (same texels). */
Vec4
fetchTexelCached(const TextureDescriptor& desc, u8 face, u8 level,
                 s32 x, s32 y, const MemoryReader& mem,
                 TexBlockCache* cache)
{
    if (!cache || !texFormatCompressed(desc.format)) {
        return TextureEmulator::fetchTexel(desc, face, level, x, y,
                                           mem);
    }
    const MipLevel& mip = desc.mips[face][level];
    const s32 w = static_cast<s32>(mip.width);
    const s32 h = static_cast<s32>(mip.height);
    const u32 xi = static_cast<u32>(
        TextureEmulator::wrap(desc.wrapS, x, w));
    const u32 yi = static_cast<u32>(
        TextureEmulator::wrap(desc.wrapT, y, h));
    u32 unitBytes = 0;
    const u32 addr = TextureEmulator::texelAddress(
        desc, face, level, xi, yi, &unitBytes);
    if (cache->address != addr) {
        u8 block[16];
        mem.read(addr, unitBytes, block);
        if (desc.format == TexFormat::DXT1)
            decodeDxt1Block(block, cache->texels);
        else if (desc.format == TexFormat::DXT3)
            decodeDxt3Block(block, cache->texels);
        else
            decodeDxt5Block(block, cache->texels);
        cache->address = addr;
    }
    return cache->texels[(yi % 4) * 4 + (xi % 4)];
}

/**
 * Fetch-and-blend footprint at one mip level: the fused counterpart
 * of appendLevelSample + executePlan.  Texel order, wrap handling,
 * weight arithmetic and the zero-weight skip are identical, so the
 * accumulator receives the exact same sequence of operations.
 */
void
accumulateLevelSample(const TextureDescriptor& desc, u32 face, f32 s,
                      f32 t, u8 level, bool linear, f32 weight,
                      const MemoryReader& mem, TexBlockCache* cache,
                      Vec4& acc)
{
    const MipLevel& mip = desc.mips[face][level];
    const s32 w = static_cast<s32>(mip.width);
    const s32 h = static_cast<s32>(mip.height);
    // Cube faces clamp regardless of the wrap mode.
    const WrapMode ws = desc.target == TexTarget::Cube
                            ? WrapMode::Clamp : desc.wrapS;
    const WrapMode wt = desc.target == TexTarget::Cube
                            ? WrapMode::Clamp : desc.wrapT;

    auto fetchAdd = [&](s32 x, s32 y, f32 wgt) {
        if (wgt <= 0.0f)
            return;
        const s32 xi = TextureEmulator::wrap(ws, x, w);
        const s32 yi = TextureEmulator::wrap(wt, y, h);
        const Vec4 texel =
            fetchTexelCached(desc, static_cast<u8>(face), level, xi,
                             yi, mem, cache);
        acc = acc + texel * wgt;
    };

    if (!linear) {
        fetchAdd(static_cast<s32>(std::floor(s * w)),
                 static_cast<s32>(std::floor(t * h)), weight);
        return;
    }

    const f32 u = s * static_cast<f32>(w) - 0.5f;
    const f32 v = t * static_cast<f32>(h) - 0.5f;
    const s32 x0 = static_cast<s32>(std::floor(u));
    const s32 y0 = static_cast<s32>(std::floor(v));
    const f32 fx = u - static_cast<f32>(x0);
    const f32 fy = v - static_cast<f32>(y0);
    fetchAdd(x0, y0, weight * (1.0f - fx) * (1.0f - fy));
    fetchAdd(x0 + 1, y0, weight * fx * (1.0f - fy));
    fetchAdd(x0, y0 + 1, weight * (1.0f - fx) * fy);
    fetchAdd(x0 + 1, y0 + 1, weight * fx * fy);
}

} // anonymous namespace

f32
TextureEmulator::quadLod(const TextureDescriptor& desc,
                         const std::array<Vec4, 4>& coords)
{
    u32 face0;
    f32 s[4], t[4];
    for (u32 i = 0; i < 4; ++i) {
        u32 f;
        resolveCoord(desc, coords[i], f, s[i], t[i]);
        if (i == 0)
            face0 = f;
        (void)face0;
    }
    const MipLevel& base = desc.mips[0][0];
    const f32 w = static_cast<f32>(base.width);
    const f32 h = static_cast<f32>(base.height);
    const f32 dudx = (s[1] - s[0]) * w;
    const f32 dvdx = (t[1] - t[0]) * h;
    const f32 dudy = (s[2] - s[0]) * w;
    const f32 dvdy = (t[2] - t[0]) * h;
    const f32 rx = std::sqrt(dudx * dudx + dvdx * dvdx);
    const f32 ry = std::sqrt(dudy * dudy + dvdy * dvdy);
    const f32 rho = std::max(std::max(rx, ry), 1e-6f);
    return std::log2(rho);
}

u32
TextureEmulator::quadAniso(const TextureDescriptor& desc,
                           const std::array<Vec4, 4>& coords)
{
    if (desc.maxAnisotropy <= 1 ||
        desc.target == TexTarget::Tex1D) {
        return 1;
    }
    f32 s[4], t[4];
    for (u32 i = 0; i < 4; ++i) {
        u32 f;
        resolveCoord(desc, coords[i], f, s[i], t[i]);
    }
    const MipLevel& base = desc.mips[0][0];
    const f32 w = static_cast<f32>(base.width);
    const f32 h = static_cast<f32>(base.height);
    const f32 dudx = (s[1] - s[0]) * w;
    const f32 dvdx = (t[1] - t[0]) * h;
    const f32 dudy = (s[2] - s[0]) * w;
    const f32 dvdy = (t[2] - t[0]) * h;
    const f32 rx = std::sqrt(dudx * dudx + dvdx * dvdx);
    const f32 ry = std::sqrt(dudy * dudy + dvdy * dvdy);
    const f32 rmax = std::max(std::max(rx, ry), 1e-6f);
    const f32 rmin = std::max(std::min(rx, ry), 1e-6f);
    const u32 n = static_cast<u32>(std::ceil(rmax / rmin));
    return std::clamp(n, 1u, desc.maxAnisotropy);
}

SamplePlan
TextureEmulator::planSample(const TextureDescriptor& desc,
                            const Vec4& coord, f32 lod, u32 aniso,
                            const Vec4& majorAxis)
{
    SamplePlan plan;
    plan.bilinearOps = 0;

    u32 face;
    f32 s, t;
    resolveCoord(desc, coord, face, s, t);

    const LevelSelection sel = selectLevels(desc, lod);

    const u32 n = std::max(aniso, 1u);
    for (u32 i = 0; i < n; ++i) {
        f32 ss = s, tt = t;
        if (n > 1) {
            const f32 offset =
                (static_cast<f32>(i) + 0.5f) / static_cast<f32>(n) -
                0.5f;
            ss += majorAxis.x * offset;
            tt += majorAxis.y * offset;
        }
        for (u32 li = 0; li < sel.numLevels; ++li) {
            appendLevelSample(desc, face, ss, tt,
                              sel.levels[li].level, sel.linear,
                              sel.levels[li].weight /
                                  static_cast<f32>(n),
                              plan);
            ++plan.bilinearOps;
        }
    }
    // Trilinear charges two bilinear ops per sub-sample, which the
    // loop above already counted (one per level).
    if (plan.bilinearOps == 0)
        plan.bilinearOps = 1;
    return plan;
}

Vec4
TextureEmulator::executePlan(const TextureDescriptor& desc,
                             const SamplePlan& plan,
                             const MemoryReader& mem,
                             TexBlockCache* cache)
{
    Vec4 acc;
    for (const TexelRef& ref : plan.texels) {
        const Vec4 texel =
            fetchTexelCached(desc, ref.face, ref.level, ref.x, ref.y,
                             mem, cache);
        acc = acc + texel * ref.weight;
    }
    return acc;
}

Vec4
TextureEmulator::samplePlanned(const TextureDescriptor& desc,
                               const Vec4& coord, f32 lod, u32 aniso,
                               const Vec4& majorAxis,
                               const MemoryReader& mem,
                               TexBlockCache* cache,
                               u32* bilinearOps)
{
    u32 face;
    f32 s, t;
    resolveCoord(desc, coord, face, s, t);

    const LevelSelection sel = selectLevels(desc, lod);

    Vec4 acc;
    const u32 n = std::max(aniso, 1u);
    for (u32 i = 0; i < n; ++i) {
        f32 ss = s, tt = t;
        if (n > 1) {
            const f32 offset =
                (static_cast<f32>(i) + 0.5f) / static_cast<f32>(n) -
                0.5f;
            ss += majorAxis.x * offset;
            tt += majorAxis.y * offset;
        }
        for (u32 li = 0; li < sel.numLevels; ++li) {
            accumulateLevelSample(desc, face, ss, tt,
                                  sel.levels[li].level, sel.linear,
                                  sel.levels[li].weight /
                                      static_cast<f32>(n),
                                  mem, cache, acc);
        }
    }
    if (bilinearOps)
        *bilinearOps = std::max(n * sel.numLevels, 1u);
    return acc;
}

Vec4
TextureEmulator::sample(const TextureDescriptor& desc,
                        const Vec4& coord, f32 lod,
                        const MemoryReader& mem)
{
    return executePlan(desc, planSample(desc, coord, lod), mem);
}

void
TextureEmulator::quadFootprint(const TextureDescriptor& desc,
                               const std::array<Vec4, 4>& coords,
                               f32 lodBias, u32& aniso, f32& lod,
                               Vec4& majorAxis)
{
    aniso = quadAniso(desc, coords);
    lod = quadLod(desc, coords) + lodBias;
    majorAxis = Vec4();
    if (aniso > 1) {
        // Footprint major axis in (s, t) space, and the lod reduced
        // by the sample count along it.
        f32 s[4], t[4];
        for (u32 i = 0; i < 4; ++i) {
            u32 f;
            resolveCoord(desc, coords[i], f, s[i], t[i]);
        }
        const f32 dudx = s[1] - s[0], dvdx = t[1] - t[0];
        const f32 dudy = s[2] - s[0], dvdy = t[2] - t[0];
        const MipLevel& base = desc.mips[0][0];
        const f32 rx = std::hypot(dudx * base.width,
                                  dvdx * base.height);
        const f32 ry = std::hypot(dudy * base.width,
                                  dvdy * base.height);
        majorAxis = rx >= ry ? Vec4(dudx, dvdx, 0, 0)
                             : Vec4(dudy, dvdy, 0, 0);
        lod -= std::log2(static_cast<f32>(aniso));
    }
}

std::array<Vec4, 4>
TextureEmulator::sampleQuad(const TextureDescriptor& desc,
                            const std::array<Vec4, 4>& coords,
                            f32 lodBias, const MemoryReader& mem,
                            u32* bilinearOps)
{
    u32 aniso;
    f32 lod;
    Vec4 majorAxis;
    quadFootprint(desc, coords, lodBias, aniso, lod, majorAxis);

    u32 ops = 0;
    std::array<Vec4, 4> out;
    for (u32 i = 0; i < 4; ++i) {
        const SamplePlan plan =
            planSample(desc, coords[i], lod, aniso, majorAxis);
        out[i] = executePlan(desc, plan, mem);
        ops += plan.bilinearOps;
    }
    if (bilinearOps)
        *bilinearOps = ops;
    return out;
}

std::array<Vec4, 4>
TextureEmulator::sampleQuadFast(const TextureDescriptor& desc,
                                const std::array<Vec4, 4>& coords,
                                f32 lodBias, const MemoryReader& mem,
                                u32* bilinearOps)
{
    u32 aniso;
    f32 lod;
    Vec4 majorAxis;
    quadFootprint(desc, coords, lodBias, aniso, lod, majorAxis);

    TexBlockCache cache;
    u32 ops = 0;
    std::array<Vec4, 4> out;
    for (u32 i = 0; i < 4; ++i) {
        u32 laneOps = 0;
        out[i] = samplePlanned(desc, coords[i], lod, aniso,
                               majorAxis, mem, &cache, &laneOps);
        ops += laneOps;
    }
    if (bilinearOps)
        *bilinearOps = ops;
    return out;
}

void
TextureEmulator::uploadMip(GpuMemory& mem,
                           const TextureDescriptor& desc, u8 face,
                           u8 level, const u8* src, u32 srcBytes)
{
    const MipLevel& mip = desc.mips[face][level];
    if (texFormatCompressed(desc.format)) {
        // Blocks are stored row-major on both sides: straight copy.
        const u32 expect =
            mipStorageBytes(desc.format, mip.width, mip.height);
        if (srcBytes != expect) {
            fatal("texture upload: compressed mip expects ", expect,
                  " bytes, got ", srcBytes);
        }
        mem.write(mip.address, srcBytes, src);
        return;
    }
    const u32 unit = texFormatUnitBytes(desc.format);
    if (srcBytes != mip.width * mip.height * unit) {
        fatal("texture upload: mip expects ",
              mip.width * mip.height * unit, " bytes, got ",
              srcBytes);
    }
    for (u32 y = 0; y < mip.height; ++y) {
        for (u32 x = 0; x < mip.width; ++x) {
            u32 bytes = 0;
            const u32 addr =
                texelAddress(desc, face, level, x, y, &bytes);
            mem.write(addr, unit,
                      src + (y * mip.width + x) * unit);
        }
    }
}

} // namespace attila::emu

/**
 * @file
 * TextureEmulator: texture address computation, format conversion,
 * level-of-detail selection, filtering and compressed-texture
 * decompression (paper §3).
 *
 * The emulator is split into a *planning* step (which texels does
 * this sample touch, with which weights) and an *execution* step
 * (fetch those texels through a MemoryReader and blend).  The timing
 * TextureUnit uses the plan to drive its cache; functional paths
 * execute plans directly against GPU memory.
 */

#ifndef ATTILA_EMU_TEXTURE_EMULATOR_HH
#define ATTILA_EMU_TEXTURE_EMULATOR_HH

#include <array>
#include <vector>

#include "emu/memory.hh"
#include "emu/shader_isa.hh"
#include "emu/vector.hh"

namespace attila::emu
{

/** Texel storage formats supported in GPU memory. */
enum class TexFormat : u8
{
    RGBA8, ///< 4 bytes/texel, tiled 8x8.
    LUM8,  ///< 1 byte/texel replicated to rgb, alpha 1.
    ALPHA8,///< 1 byte/texel alpha, rgb 0.
    DXT1,  ///< 8-byte 4x4 blocks (BC1).
    DXT3,  ///< 16-byte 4x4 blocks (BC2).
    DXT5,  ///< 16-byte 4x4 blocks (BC3).
};

/** Texture coordinate wrap modes. */
enum class WrapMode : u8 { Repeat, Clamp, Mirror };

/** Minification filter (magnification uses nearest/linear only). */
enum class MinFilter : u8
{
    Nearest,
    Linear,
    NearestMipNearest,
    LinearMipNearest,
    NearestMipLinear,
    LinearMipLinear, ///< Trilinear.
};

/** One mipmap level's placement in GPU memory. */
struct MipLevel
{
    u32 width = 0;
    u32 height = 0;
    u32 depth = 1; ///< 3D textures only; slices share one level.
    u32 address = 0;
};

/** Maximum mip chain length (supports up to 4096x4096). */
constexpr u32 maxMipLevels = 13;

/**
 * GPU-level texture descriptor: everything the Texture Unit needs to
 * sample (the contents of the texture state registers).
 */
struct TextureDescriptor
{
    TexTarget target = TexTarget::Tex2D;
    TexFormat format = TexFormat::RGBA8;
    WrapMode wrapS = WrapMode::Repeat;
    WrapMode wrapT = WrapMode::Repeat;
    MinFilter minFilter = MinFilter::LinearMipLinear;
    bool magLinear = true;
    u32 maxAnisotropy = 1; ///< 1 disables anisotropic filtering.
    u32 levels = 1;        ///< Mip levels present.
    /** [face][level]; non-cube targets use face 0. */
    std::array<std::array<MipLevel, maxMipLevels>, 6> mips{};
};

/** Bytes per texel of an uncompressed format (DXT: per block). */
u32 texFormatUnitBytes(TexFormat fmt);

/** True for block-compressed formats. */
bool texFormatCompressed(TexFormat fmt);

/**
 * Size in bytes of one mip level image with the GPU memory layout
 * (8x8-texel tiles for uncompressed formats, row-major 4x4 blocks
 * for DXT).
 */
u32 mipStorageBytes(TexFormat fmt, u32 width, u32 height);

/** One texel reference inside a sample plan. */
struct TexelRef
{
    u32 address = 0; ///< Byte address of the texel (or its block).
    u32 bytes = 0;   ///< Texel or block size in bytes.
    u8 face = 0;
    u8 level = 0;
    u16 x = 0;       ///< Texel coordinates within the level.
    u16 y = 0;
    f32 weight = 0.0f;
};

/** The set of texels one filtered sample touches. */
struct SamplePlan
{
    std::vector<TexelRef> texels;
    /**
     * Number of bilinear-equivalent filter operations: 1 for
     * nearest/bilinear, 2 for trilinear, N (or 2N) for anisotropic.
     * The Texture Unit charges one cycle per bilinear operation
     * (paper: one bilinear sample per cycle, trilinear every two).
     */
    u32 bilinearOps = 1;
};

/**
 * One decoded compressed block, memoized across the texel fetches of
 * a sample or quad (bilinear corners land in the same 4x4 DXT block
 * most of the time, and the per-texel decode dominates the fetch).
 * Pure memoization: fetch results are bit-identical with or without
 * a cache.
 */
struct TexBlockCache
{
    static constexpr u32 invalidAddress = ~0u;
    u32 address = invalidAddress;
    Vec4 texels[16];
};

/**
 * Texture sampling emulation.  Stateless; all inputs are explicit.
 */
class TextureEmulator
{
  public:
    /**
     * Compute the level-of-detail for a 2x2 fragment quad from the
     * texture coordinates of its four fragments (standard derivative
     * estimate, ARB semantics).  Valid for 2D and cube targets.
     */
    static f32 quadLod(const TextureDescriptor& desc,
                       const std::array<Vec4, 4>& coords);

    /**
     * Anisotropy ratio of the quad footprint, clamped to
     * desc.maxAnisotropy (1 = isotropic).
     */
    static u32 quadAniso(const TextureDescriptor& desc,
                         const std::array<Vec4, 4>& coords);

    /**
     * Plan a filtered sample at @p coord with level-of-detail
     * @p lod (already biased).  @p aniso is the sample count along
     * the anisotropic axis (1 = isotropic); the axis is estimated
     * from @p majorAxis (du, dv per step), pass (0,0,0,0) when
     * aniso == 1.
     */
    static SamplePlan planSample(const TextureDescriptor& desc,
                                 const Vec4& coord, f32 lod,
                                 u32 aniso = 1,
                                 const Vec4& majorAxis = Vec4());

    /** Fetch and blend the texels of @p plan.  @p cache, when given,
     * memoizes the last decoded DXT block (same texels, fewer
     * decodes — share one across a quad's four plans). */
    static Vec4 executePlan(const TextureDescriptor& desc,
                            const SamplePlan& plan,
                            const MemoryReader& mem,
                            TexBlockCache* cache = nullptr);

    /**
     * Plan + execute fused, without materializing a SamplePlan: the
     * fast path for functional sampling.  Follows planSample()'s
     * texel order and weight arithmetic exactly, so the result is
     * bit-identical to executePlan(planSample(...)).  @p bilinearOps
     * (when non-null) receives the same count planSample() reports.
     */
    static Vec4 samplePlanned(const TextureDescriptor& desc,
                              const Vec4& coord, f32 lod, u32 aniso,
                              const Vec4& majorAxis,
                              const MemoryReader& mem,
                              TexBlockCache* cache = nullptr,
                              u32* bilinearOps = nullptr);

    /**
     * Full footprint analysis of a quad: anisotropy sample count,
     * (aniso-adjusted) level-of-detail and the major axis step in
     * (s, t) space.  The Texture Unit uses this to plan the quad's
     * four samples.
     */
    static void quadFootprint(const TextureDescriptor& desc,
                              const std::array<Vec4, 4>& coords,
                              f32 lodBias, u32& aniso, f32& lod,
                              Vec4& majorAxis);

    /** Convenience: plan + execute. */
    static Vec4 sample(const TextureDescriptor& desc,
                       const Vec4& coord, f32 lod,
                       const MemoryReader& mem);

    /**
     * Full quad sample as the Texture Unit performs it: derive lod
     * and anisotropy from the quad, apply @p lodBias, sample all four
     * fragments.  Returns the total bilinear operation count in
     * @p bilinearOps (for timing).
     */
    static std::array<Vec4, 4>
    sampleQuad(const TextureDescriptor& desc,
               const std::array<Vec4, 4>& coords, f32 lodBias,
               const MemoryReader& mem, u32* bilinearOps = nullptr);

    /**
     * sampleQuad() through the shared-footprint fast path: one
     * footprint analysis, fused per-lane sampling and a decoded-block
     * cache shared across the quad.  Bit-identical to sampleQuad().
     */
    static std::array<Vec4, 4>
    sampleQuadFast(const TextureDescriptor& desc,
                   const std::array<Vec4, 4>& coords, f32 lodBias,
                   const MemoryReader& mem,
                   u32* bilinearOps = nullptr);

    /** Decode one texel straight from memory (nearest, no filter). */
    static Vec4 fetchTexel(const TextureDescriptor& desc, u8 face,
                           u8 level, s32 x, s32 y,
                           const MemoryReader& mem);

    /** Byte address of texel (x, y) of a mip level (uncompressed) or
     * of its 4x4 block (DXT). */
    static u32 texelAddress(const TextureDescriptor& desc, u8 face,
                            u8 level, u32 x, u32 y, u32* bytes);

    /**
     * Map a cube-map direction to (face, s, t) per the OpenGL cube
     * map rules.
     */
    static void cubeFace(const Vec4& dir, u32& face, f32& s, f32& t);

    /** Apply a wrap mode to a texel index. */
    static s32 wrap(WrapMode mode, s32 coord, s32 size);

    /**
     * Store a CPU-side image (tightly packed rows, RGBA8 or raw DXT
     * blocks) into GPU memory with the tiled/blocked device layout.
     */
    static void uploadMip(GpuMemory& mem, const TextureDescriptor& d,
                          u8 face, u8 level, const u8* src,
                          u32 srcBytes);
};

/** Decode a DXT1 block (8 bytes) into 16 RGBA texels. */
void decodeDxt1Block(const u8* block, Vec4 out[16]);
/** Decode a DXT3 block (16 bytes) into 16 RGBA texels. */
void decodeDxt3Block(const u8* block, Vec4 out[16]);
/** Decode a DXT5 block (16 bytes) into 16 RGBA texels. */
void decodeDxt5Block(const u8* block, Vec4 out[16]);

} // namespace attila::emu

#endif // ATTILA_EMU_TEXTURE_EMULATOR_HH

/**
 * @file
 * Vec4: the 4-component 32-bit float vector every ATTILA datapath
 * works on (vertex attributes, fragment attributes, shader
 * registers).
 */

#ifndef ATTILA_EMU_VECTOR_HH
#define ATTILA_EMU_VECTOR_HH

#include <algorithm>
#include <cmath>
#include <ostream>

#include "sim/types.hh"

namespace attila::emu
{

/** 4-component float vector. */
struct Vec4
{
    f32 x = 0.0f;
    f32 y = 0.0f;
    f32 z = 0.0f;
    f32 w = 0.0f;

    constexpr Vec4() = default;
    constexpr Vec4(f32 xv, f32 yv, f32 zv, f32 wv)
        : x(xv), y(yv), z(zv), w(wv)
    {}
    constexpr explicit Vec4(f32 s) : x(s), y(s), z(s), w(s) {}

    f32
    operator[](u32 i) const
    {
        switch (i) {
          case 0: return x;
          case 1: return y;
          case 2: return z;
          default: return w;
        }
    }

    f32&
    operator[](u32 i)
    {
        switch (i) {
          case 0: return x;
          case 1: return y;
          case 2: return z;
          default: return w;
        }
    }

    Vec4
    operator+(const Vec4& o) const
    {
        return {x + o.x, y + o.y, z + o.z, w + o.w};
    }

    Vec4
    operator-(const Vec4& o) const
    {
        return {x - o.x, y - o.y, z - o.z, w - o.w};
    }

    Vec4
    operator*(const Vec4& o) const
    {
        return {x * o.x, y * o.y, z * o.z, w * o.w};
    }

    Vec4
    operator*(f32 s) const
    {
        return {x * s, y * s, z * s, w * s};
    }

    Vec4
    operator-() const
    {
        return {-x, -y, -z, -w};
    }

    bool
    operator==(const Vec4& o) const
    {
        return x == o.x && y == o.y && z == o.z && w == o.w;
    }
};

/** 4-component dot product. */
inline f32
dot4(const Vec4& a, const Vec4& b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z + a.w * b.w;
}

/** 3-component dot product. */
inline f32
dot3(const Vec4& a, const Vec4& b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

/** Componentwise minimum. */
inline Vec4
vmin(const Vec4& a, const Vec4& b)
{
    return {std::min(a.x, b.x), std::min(a.y, b.y),
            std::min(a.z, b.z), std::min(a.w, b.w)};
}

/** Componentwise maximum. */
inline Vec4
vmax(const Vec4& a, const Vec4& b)
{
    return {std::max(a.x, b.x), std::max(a.y, b.y),
            std::max(a.z, b.z), std::max(a.w, b.w)};
}

/** Clamp every component to [0, 1]. */
inline Vec4
saturate(const Vec4& v)
{
    return {std::clamp(v.x, 0.0f, 1.0f), std::clamp(v.y, 0.0f, 1.0f),
            std::clamp(v.z, 0.0f, 1.0f), std::clamp(v.w, 0.0f, 1.0f)};
}

/** Cross product of the xyz parts; w is zero. */
inline Vec4
cross3(const Vec4& a, const Vec4& b)
{
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x, 0.0f};
}

inline std::ostream&
operator<<(std::ostream& os, const Vec4& v)
{
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ", "
              << v.w << ')';
}

} // namespace attila::emu

#endif // ATTILA_EMU_VECTOR_HH

#include "emu/z_compressor.hh"

#include "emu/fragment_op_emulator.hh"
#include "sim/logging.hh"

namespace attila::emu
{

namespace
{

constexpr u32 headerBytes = 13; ///< stencil + d00 + dx + dy.
constexpr u32 quarterResidualBits = 6;
constexpr u32 halfResidualBits = 14;

/** Append @p bits low bits of @p value at bit offset @p pos. */
void
putBits(std::vector<u8>& buf, u32& pos, u32 value, u32 bits)
{
    for (u32 i = 0; i < bits; ++i) {
        const u32 byte = (pos + i) / 8;
        const u32 bit = (pos + i) % 8;
        if (byte >= buf.size())
            buf.resize(byte + 1, 0);
        if (value & (1u << i))
            buf[byte] = static_cast<u8>(buf[byte] | (1u << bit));
    }
    pos += bits;
}

/** Read @p bits bits at offset @p pos, sign-extended. */
s32
getBitsSigned(const std::vector<u8>& buf, u32& pos, u32 bits)
{
    u32 v = 0;
    for (u32 i = 0; i < bits; ++i) {
        const u32 byte = (pos + i) / 8;
        const u32 bit = (pos + i) % 8;
        if (byte < buf.size() && (buf[byte] & (1u << bit)))
            v |= 1u << i;
    }
    pos += bits;
    // Sign extend.
    if (v & (1u << (bits - 1)))
        v |= ~((1u << bits) - 1);
    return static_cast<s32>(v);
}

void
putU32(std::vector<u8>& buf, u32 offset, u32 v)
{
    buf[offset] = static_cast<u8>(v);
    buf[offset + 1] = static_cast<u8>(v >> 8);
    buf[offset + 2] = static_cast<u8>(v >> 16);
    buf[offset + 3] = static_cast<u8>(v >> 24);
}

u32
getU32(const std::vector<u8>& buf, u32 offset)
{
    return static_cast<u32>(buf[offset]) |
           (static_cast<u32>(buf[offset + 1]) << 8) |
           (static_cast<u32>(buf[offset + 2]) << 16) |
           (static_cast<u32>(buf[offset + 3]) << 24);
}

/** Try one residual width; returns true and fills @p out on fit. */
bool
tryCompress(const std::array<u32, zTileWords>& tile, u32 residualBits,
            u32 budgetBytes, std::vector<u8>& out)
{
    const u8 stencil = stencilOf(tile[0]);
    for (u32 w : tile) {
        if (stencilOf(w) != stencil)
            return false;
    }

    const s64 d00 = depthOf(tile[0]);
    const s64 dx = static_cast<s64>(depthOf(tile[1])) - d00;
    const s64 dy = static_cast<s64>(depthOf(tile[8])) - d00;

    const s64 lo = -(s64(1) << (residualBits - 1));
    const s64 hi = (s64(1) << (residualBits - 1)) - 1;

    std::array<s32, zTileWords> residuals;
    for (u32 y = 0; y < 8; ++y) {
        for (u32 x = 0; x < 8; ++x) {
            const u32 i = y * 8 + x;
            const s64 predicted = d00 + dx * x + dy * y;
            const s64 r =
                static_cast<s64>(depthOf(tile[i])) - predicted;
            if (r < lo || r > hi)
                return false;
            residuals[i] = static_cast<s32>(r);
        }
    }

    out.clear();
    out.resize(headerBytes, 0);
    out[0] = stencil;
    putU32(out, 1, static_cast<u32>(d00));
    putU32(out, 5, static_cast<u32>(static_cast<s32>(dx)));
    putU32(out, 9, static_cast<u32>(static_cast<s32>(dy)));
    u32 pos = headerBytes * 8;
    for (u32 i = 0; i < zTileWords; ++i) {
        putBits(out, pos,
                static_cast<u32>(residuals[i]) &
                    ((1u << residualBits) - 1),
                residualBits);
    }
    if (out.size() > budgetBytes)
        return false;
    out.resize(budgetBytes, 0);
    return true;
}

} // anonymous namespace

ZCompressResult
ZCompressor::compress(const std::array<u32, zTileWords>& tile)
{
    ZCompressResult result;
    if (tryCompress(tile, quarterResidualBits, zTileBytes / 4,
                    result.data)) {
        result.mode = TileCompression::Quarter;
        return result;
    }
    if (tryCompress(tile, halfResidualBits, zTileBytes / 2,
                    result.data)) {
        result.mode = TileCompression::Half;
        return result;
    }
    result.mode = TileCompression::Uncompressed;
    result.data.clear();
    return result;
}

std::array<u32, zTileWords>
ZCompressor::decompress(TileCompression mode,
                        const std::vector<u8>& data)
{
    if (mode == TileCompression::Uncompressed)
        panic("ZCompressor: decompress called on an uncompressed"
              " tile");

    const u32 residualBits = mode == TileCompression::Quarter
                                 ? quarterResidualBits
                                 : halfResidualBits;

    const u8 stencil = data[0];
    const s64 d00 = getU32(data, 1);
    const s64 dx = static_cast<s32>(getU32(data, 5));
    const s64 dy = static_cast<s32>(getU32(data, 9));

    std::array<u32, zTileWords> tile;
    u32 pos = headerBytes * 8;
    for (u32 y = 0; y < 8; ++y) {
        for (u32 x = 0; x < 8; ++x) {
            const s32 r = getBitsSigned(data, pos, residualBits);
            const s64 depth = d00 + dx * x + dy * y + r;
            tile[y * 8 + x] = packDepthStencil(
                static_cast<u32>(depth) & maxDepthValue, stencil);
        }
    }
    return tile;
}

} // namespace attila::emu

/**
 * @file
 * ZCompressor: lossless depth-tile compression with 1:2 and 1:4
 * ratios (paper §2.2, after the ATI Hot3D presentation and patent).
 *
 * A tile is the 64 depth/stencil words covered by one 256-byte Z
 * cache line (an 8x8 pixel block).  The compressor fits a plane
 * predictor through the depth values — depth is linear across a
 * triangle's interior, so tiles covered by one or two triangles
 * compress extremely well — and stores per-sample residuals in a
 * reduced number of bits.  Compression only succeeds when it is
 * exactly reversible (lossless); otherwise the tile stays
 * uncompressed.
 */

#ifndef ATTILA_EMU_Z_COMPRESSOR_HH
#define ATTILA_EMU_Z_COMPRESSOR_HH

#include <array>
#include <vector>

#include "sim/types.hh"

namespace attila::emu
{

/** Compression state of one framebuffer tile / cache line. */
enum class TileCompression : u8
{
    Uncompressed, ///< 256 bytes.
    Half,         ///< 1:2 — 128 bytes.
    Quarter,      ///< 1:4 — 64 bytes.
};

/** Words per tile (8x8 pixels, one u32 per pixel). */
constexpr u32 zTileWords = 64;
/** Uncompressed tile size in bytes. */
constexpr u32 zTileBytes = zTileWords * 4;

/** Result of a compression attempt. */
struct ZCompressResult
{
    TileCompression mode = TileCompression::Uncompressed;
    /** Compressed payload; empty when uncompressed. */
    std::vector<u8> data;

    u32
    storedBytes() const
    {
        switch (mode) {
          case TileCompression::Half: return zTileBytes / 2;
          case TileCompression::Quarter: return zTileBytes / 4;
          default: return zTileBytes;
        }
    }
};

/**
 * Plane-predictor depth tile compressor.
 */
class ZCompressor
{
  public:
    /**
     * Try to compress @p tile (64 depth/stencil words, row-major
     * 8x8).  Requires a uniform stencil byte across the tile.
     * Attempts 1:4 first, then 1:2.
     */
    static ZCompressResult compress(
        const std::array<u32, zTileWords>& tile);

    /**
     * Reverse compress().  @p mode and @p data must come from a
     * successful compression.
     */
    static std::array<u32, zTileWords> decompress(
        TileCompression mode, const std::vector<u8>& data);
};

} // namespace attila::emu

#endif // ATTILA_EMU_Z_COMPRESSOR_HH

/**
 * @file
 * Enumerations of the AGL API — the OpenGL-flavoured interface of
 * the ATTILA framework (paper §4).
 */

#ifndef ATTILA_GL_API_TYPES_HH
#define ATTILA_GL_API_TYPES_HH

#include "emu/fragment_op_emulator.hh"
#include "emu/texture_emulator.hh"
#include "gpu/regs.hh"

namespace attila::gl
{

/** glEnable/glDisable capabilities. */
enum class Cap : u8
{
    DepthTest,
    StencilTest,
    Blend,
    CullFace,
    ScissorTest,
    AlphaTest,
    Fog,
    Lighting,
    Texture2D,       ///< Applies to the active texture unit.
    VertexProgram,   ///< ARB_vertex_program mode.
    FragmentProgram, ///< ARB_fragment_program mode.
    StencilTwoSide,  ///< EXT_stencil_two_side-style mode.
};

/** glMatrixMode. */
enum class MatrixMode : u8 { ModelView, Projection };

/** glTexEnv modes. */
enum class TexEnvMode : u8 { Modulate, Replace, Decal, Add };

/** glFog modes. */
enum class FogMode : u8 { Linear, Exp, Exp2 };

/** Clear bits. */
constexpr u32 clearColorBit = 1;
constexpr u32 clearDepthBit = 2;
constexpr u32 clearStencilBit = 4;

/** Standard attribute slots (ARB conventions, see emu::regix). */
constexpr u32 attrPosition = 0;
constexpr u32 attrNormal = 2;
constexpr u32 attrColor = 3;
constexpr u32 attrTexCoord0 = 8;

/** Maximum fixed-function lights. */
constexpr u32 maxLights = 4;

/** Per-light fixed-function state. */
struct LightState
{
    bool enabled = false;
    emu::Vec4 direction{0.0f, 0.0f, 1.0f, 0.0f}; ///< To the light.
    emu::Vec4 diffuse{1.0f, 1.0f, 1.0f, 1.0f};
    emu::Vec4 ambient{0.0f, 0.0f, 0.0f, 1.0f};
};

/** Fixed-function material. */
struct MaterialState
{
    emu::Vec4 diffuse{0.8f, 0.8f, 0.8f, 1.0f};
    emu::Vec4 ambient{0.2f, 0.2f, 0.2f, 1.0f};
};

/** Fog state. */
struct FogState
{
    bool enabled = false;
    FogMode mode = FogMode::Linear;
    emu::Vec4 color{0.0f, 0.0f, 0.0f, 0.0f};
    f32 density = 1.0f;
    f32 start = 0.0f;
    f32 end = 1.0f;
};

/** Alpha test state. */
struct AlphaTestState
{
    bool enabled = false;
    emu::CompareFunc func = emu::CompareFunc::Always;
    f32 ref = 0.0f;
};

} // namespace attila::gl

#endif // ATTILA_GL_API_TYPES_HH

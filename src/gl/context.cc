#include "gl/context.hh"

#include <cmath>
#include <cstring>

#include "gl/trace.hh"
#include "gpu/framebuffer.hh"
#include "sim/logging.hh"

namespace attila::gl
{

using emu::Vec4;
using gpu::Command;
using gpu::Reg;
using gpu::RegValue;

namespace
{

constexpr f32 pi = 3.14159265358979323846f;

/** Convert any scalar or enum to the trace-record f64 encoding. */
template <typename T>
f64
asScalar(T v)
{
    if constexpr (std::is_enum_v<T>) {
        return static_cast<f64>(
            static_cast<std::underlying_type_t<T>>(v));
    } else {
        return static_cast<f64>(v);
    }
}

/** Pack a Vec4 into scalars for trace records. */
void
appendVec(std::vector<f64>& scalars, const Vec4& v)
{
    scalars.push_back(v.x);
    scalars.push_back(v.y);
    scalars.push_back(v.z);
    scalars.push_back(v.w);
}

} // anonymous namespace

Context::Context(u32 width, u32 height, u32 memory_size)
    : _width(width),
      _height(height),
      _driver(memory_size,
              // Framebuffer arena: colour + depth/stencil surfaces.
              gpu::fbSurfaceBytes(width, height) * 2)
{
    _colorAddress = 0;
    _zStencilAddress = gpu::fbSurfaceBytes(width, height);
    _viewport = {0, 0, width, height};
}

gpu::CommandList
Context::takeCommands()
{
    return _driver.takeCommands();
}

emu::Mat4&
Context::currentMatrix()
{
    auto& stack = _matrixMode == MatrixMode::ModelView
                      ? _modelViewStack
                      : _projectionStack;
    return stack.back();
}

// ===== Frame =======================================================

void
Context::clearColor(f32 r, f32 g, f32 b, f32 a)
{
    if (_recorder)
        _recorder->record(TraceOp::ClearColorVal, {r, g, b, a});
    _clearColor = {r, g, b, a};
}

void
Context::clearDepth(f32 depth)
{
    if (_recorder)
        _recorder->record(TraceOp::ClearDepthVal, {depth});
    _clearDepth = depth;
}

void
Context::clearStencil(u8 stencil)
{
    if (_recorder)
        _recorder->record(TraceOp::ClearStencilVal,
                          {asScalar(stencil)});
    _clearStencil = stencil;
}

void
Context::emitFrameState()
{
    _driver.writeReg(Reg::FbWidth, RegValue(_width));
    _driver.writeReg(Reg::FbHeight, RegValue(_height));
    _driver.writeReg(Reg::ColorBufferAddr, RegValue(_colorAddress));
    _driver.writeReg(Reg::ZStencilBufferAddr,
                     RegValue(_zStencilAddress));
    _driver.writeReg(Reg::ViewportX,
                     RegValue(static_cast<u32>(_viewport.x)));
    _driver.writeReg(Reg::ViewportY,
                     RegValue(static_cast<u32>(_viewport.y)));
    _driver.writeReg(Reg::ViewportWidth, RegValue(_viewport.width));
    _driver.writeReg(Reg::ViewportHeight,
                     RegValue(_viewport.height));
    _driver.writeReg(Reg::ClearColor, RegValue(_clearColor));
    _driver.writeReg(Reg::ClearDepth, RegValue(_clearDepth));
    _driver.writeReg(Reg::ClearStencil,
                     RegValue(static_cast<u32>(_clearStencil)));
}

void
Context::clear(u32 mask)
{
    if (_recorder)
        _recorder->record(TraceOp::Clear,
                          {asScalar(mask)});
    emitFrameState();
    if (mask & clearColorBit)
        _driver.emit(Command::clearColor());
    if (mask & (clearDepthBit | clearStencilBit))
        _driver.emit(Command::clearZStencil());
}

void
Context::swapBuffers()
{
    if (_recorder)
        _recorder->record(TraceOp::SwapBuffers);
    emitFrameState();
    _driver.emit(Command::swap());
    ++_frames;
}

void
Context::viewport(s32 x, s32 y, u32 w, u32 h)
{
    if (_recorder)
        _recorder->record(TraceOp::Viewport,
                          {asScalar(x), asScalar(y),
                           asScalar(w),
                           asScalar(h)});
    _viewport = {x, y, w, h};
}

// ===== Capabilities ================================================

void
Context::enable(Cap cap)
{
    if (_recorder)
        _recorder->record(TraceOp::Enable,
                          {asScalar(cap)});
    switch (cap) {
      case Cap::DepthTest: _depthTestEnabled = true; break;
      case Cap::StencilTest: _stencilTestEnabled = true; break;
      case Cap::Blend: _blendEnabled = true; break;
      case Cap::CullFace: _cullEnabled = true; break;
      case Cap::ScissorTest: _scissor.enabled = true; break;
      case Cap::AlphaTest: _alphaTest.enabled = true; break;
      case Cap::Fog: _fog.enabled = true; break;
      case Cap::Lighting: _lightingEnabled = true; break;
      case Cap::Texture2D: _texEnabled[_activeUnit] = true; break;
      case Cap::VertexProgram: _vertexProgramEnabled = true; break;
      case Cap::FragmentProgram:
        _fragmentProgramEnabled = true;
        break;
      case Cap::StencilTwoSide:
        _stencilTwoSideEnabled = true;
        break;
    }
}

void
Context::disable(Cap cap)
{
    if (_recorder)
        _recorder->record(TraceOp::Disable,
                          {asScalar(cap)});
    switch (cap) {
      case Cap::DepthTest: _depthTestEnabled = false; break;
      case Cap::StencilTest: _stencilTestEnabled = false; break;
      case Cap::Blend: _blendEnabled = false; break;
      case Cap::CullFace: _cullEnabled = false; break;
      case Cap::ScissorTest: _scissor.enabled = false; break;
      case Cap::AlphaTest: _alphaTest.enabled = false; break;
      case Cap::Fog: _fog.enabled = false; break;
      case Cap::Lighting: _lightingEnabled = false; break;
      case Cap::Texture2D: _texEnabled[_activeUnit] = false; break;
      case Cap::VertexProgram: _vertexProgramEnabled = false; break;
      case Cap::FragmentProgram:
        _fragmentProgramEnabled = false;
        break;
      case Cap::StencilTwoSide:
        _stencilTwoSideEnabled = false;
        break;
    }
}

bool
Context::isEnabled(Cap cap) const
{
    switch (cap) {
      case Cap::DepthTest: return _depthTestEnabled;
      case Cap::StencilTest: return _stencilTestEnabled;
      case Cap::Blend: return _blendEnabled;
      case Cap::CullFace: return _cullEnabled;
      case Cap::ScissorTest: return _scissor.enabled;
      case Cap::AlphaTest: return _alphaTest.enabled;
      case Cap::Fog: return _fog.enabled;
      case Cap::Lighting: return _lightingEnabled;
      case Cap::Texture2D: return _texEnabled[_activeUnit];
      case Cap::VertexProgram: return _vertexProgramEnabled;
      case Cap::FragmentProgram: return _fragmentProgramEnabled;
      case Cap::StencilTwoSide: return _stencilTwoSideEnabled;
    }
    return false;
}

// ===== Per-fragment state ==========================================

void
Context::depthFunc(emu::CompareFunc func)
{
    if (_recorder)
        _recorder->record(TraceOp::DepthFunc,
                          {asScalar(func)});
    _zStencil.depthFunc = func;
}

void
Context::depthMask(bool write)
{
    if (_recorder)
        _recorder->record(TraceOp::DepthMask,
                          {asScalar(write)});
    _zStencil.depthWrite = write;
}

void
Context::stencilFunc(emu::CompareFunc func, u8 ref, u8 mask)
{
    if (_recorder)
        _recorder->record(TraceOp::StencilFuncCall,
                          {asScalar(func),
                           asScalar(ref),
                           asScalar(mask)});
    _zStencil.stencilFunc = func;
    _zStencil.stencilRef = ref;
    _zStencil.stencilCompareMask = mask;
}

void
Context::stencilOp(emu::StencilOp fail, emu::StencilOp zfail,
                   emu::StencilOp zpass)
{
    if (_recorder)
        _recorder->record(TraceOp::StencilOpCall,
                          {asScalar(fail),
                           asScalar(zfail),
                           asScalar(zpass)});
    _zStencil.stencilFail = fail;
    _zStencil.depthFail = zfail;
    _zStencil.depthPass = zpass;
}

void
Context::stencilMask(u8 mask)
{
    if (_recorder)
        _recorder->record(TraceOp::StencilMask,
                          {asScalar(mask)});
    _zStencil.stencilWriteMask = mask;
}

void
Context::stencilFuncBack(emu::CompareFunc func, u8 ref, u8 mask)
{
    if (_recorder)
        _recorder->record(TraceOp::StencilFuncBackCall,
                          {asScalar(func), asScalar(ref),
                           asScalar(mask)});
    _zStencil.backFunc = func;
    _zStencil.backRef = ref;
    _zStencil.backCompareMask = mask;
    _zStencil.backWriteMask = 0xff;
}

void
Context::stencilOpBack(emu::StencilOp fail, emu::StencilOp zfail,
                       emu::StencilOp zpass)
{
    if (_recorder)
        _recorder->record(TraceOp::StencilOpBackCall,
                          {asScalar(fail), asScalar(zfail),
                           asScalar(zpass)});
    _zStencil.backFail = fail;
    _zStencil.backDepthFail = zfail;
    _zStencil.backDepthPass = zpass;
}

void
Context::blendFunc(emu::BlendFactor src, emu::BlendFactor dst)
{
    if (_recorder)
        _recorder->record(TraceOp::BlendFuncCall,
                          {asScalar(src),
                           asScalar(dst)});
    _blend.srcFactor = src;
    _blend.dstFactor = dst;
}

void
Context::blendEquation(emu::BlendEquation eq)
{
    if (_recorder)
        _recorder->record(TraceOp::BlendEquationCall,
                          {asScalar(eq)});
    _blend.equation = eq;
}

void
Context::blendColor(f32 r, f32 g, f32 b, f32 a)
{
    if (_recorder)
        _recorder->record(TraceOp::BlendColorCall, {r, g, b, a});
    _blend.constantColor = {r, g, b, a};
}

void
Context::colorMask(bool r, bool g, bool b, bool a)
{
    if (_recorder)
        _recorder->record(TraceOp::ColorMask,
                          {asScalar(r), asScalar(g),
                           asScalar(b),
                           asScalar(a)});
    _blend.colorMask = static_cast<u8>((r ? 1 : 0) | (g ? 2 : 0) |
                                       (b ? 4 : 0) | (a ? 8 : 0));
}

void
Context::alphaFunc(emu::CompareFunc func, f32 ref)
{
    if (_recorder)
        _recorder->record(TraceOp::AlphaFuncCall,
                          {asScalar(func), ref});
    _alphaTest.func = func;
    _alphaTest.ref = ref;
}

void
Context::scissor(s32 x, s32 y, u32 w, u32 h)
{
    if (_recorder)
        _recorder->record(TraceOp::Scissor,
                          {asScalar(x), asScalar(y),
                           asScalar(w),
                           asScalar(h)});
    _scissor.x = x;
    _scissor.y = y;
    _scissor.width = w;
    _scissor.height = h;
}

// ===== Geometry state ==============================================

void
Context::cullFace(gpu::CullMode mode)
{
    if (_recorder)
        _recorder->record(TraceOp::CullFaceMode,
                          {asScalar(mode)});
    _cullMode = mode;
}

void
Context::frontFaceCcw(bool ccw)
{
    if (_recorder)
        _recorder->record(TraceOp::FrontFace,
                          {asScalar(ccw)});
    _frontCcw = ccw;
}

// ===== Matrices ====================================================

void
Context::matrixMode(MatrixMode mode)
{
    if (_recorder)
        _recorder->record(TraceOp::MatrixModeCall,
                          {asScalar(mode)});
    _matrixMode = mode;
}

void
Context::loadIdentity()
{
    if (_recorder)
        _recorder->record(TraceOp::LoadIdentity);
    currentMatrix() = emu::Mat4::identity();
}

void
Context::loadMatrix(const emu::Mat4& m)
{
    if (_recorder) {
        std::vector<f64> scalars;
        for (u32 i = 0; i < 4; ++i)
            for (u32 j = 0; j < 4; ++j)
                scalars.push_back(m.m[i][j]);
        _recorder->record(TraceOp::LoadMatrix,
                          {scalars[0], scalars[1], scalars[2],
                           scalars[3], scalars[4], scalars[5],
                           scalars[6], scalars[7], scalars[8],
                           scalars[9], scalars[10], scalars[11],
                           scalars[12], scalars[13], scalars[14],
                           scalars[15]});
    }
    currentMatrix() = m;
}

void
Context::multMatrix(const emu::Mat4& m)
{
    if (_recorder) {
        std::vector<f64> scalars;
        for (u32 i = 0; i < 4; ++i)
            for (u32 j = 0; j < 4; ++j)
                scalars.push_back(m.m[i][j]);
        _recorder->record(TraceOp::MultMatrix,
                          {scalars[0], scalars[1], scalars[2],
                           scalars[3], scalars[4], scalars[5],
                           scalars[6], scalars[7], scalars[8],
                           scalars[9], scalars[10], scalars[11],
                           scalars[12], scalars[13], scalars[14],
                           scalars[15]});
    }
    currentMatrix() = currentMatrix() * m;
}

void
Context::pushMatrix()
{
    if (_recorder)
        _recorder->record(TraceOp::PushMatrix);
    auto& stack = _matrixMode == MatrixMode::ModelView
                      ? _modelViewStack
                      : _projectionStack;
    stack.push_back(stack.back());
}

void
Context::popMatrix()
{
    if (_recorder)
        _recorder->record(TraceOp::PopMatrix);
    auto& stack = _matrixMode == MatrixMode::ModelView
                      ? _modelViewStack
                      : _projectionStack;
    if (stack.size() <= 1)
        fatal("Context: matrix stack underflow");
    stack.pop_back();
}

void
Context::translate(f32 x, f32 y, f32 z)
{
    multMatrix(emu::Mat4::translate(x, y, z));
}

void
Context::rotate(f32 degrees, f32 x, f32 y, f32 z)
{
    multMatrix(emu::Mat4::rotate(degrees * pi / 180.0f, x, y, z));
}

void
Context::scale(f32 x, f32 y, f32 z)
{
    multMatrix(emu::Mat4::scale(x, y, z));
}

void
Context::frustum(f32 l, f32 r, f32 b, f32 t, f32 n, f32 f)
{
    multMatrix(emu::Mat4::frustum(l, r, b, t, n, f));
}

void
Context::ortho(f32 l, f32 r, f32 b, f32 t, f32 n, f32 f)
{
    multMatrix(emu::Mat4::ortho(l, r, b, t, n, f));
}

void
Context::perspective(f32 fovy_degrees, f32 aspect, f32 n, f32 f)
{
    multMatrix(emu::Mat4::perspective(fovy_degrees * pi / 180.0f,
                                      aspect, n, f));
}

void
Context::lookAt(const Vec4& eye, const Vec4& center, const Vec4& up)
{
    multMatrix(emu::Mat4::lookAt(eye, center, up));
}

// ===== Lighting / fog / color ======================================

void
Context::light(u32 index, const LightState& state)
{
    if (index >= maxLights)
        fatal("Context: light index out of range");
    if (_recorder) {
        std::vector<f64> s{asScalar(index),
                           asScalar(state.enabled)};
        appendVec(s, state.direction);
        appendVec(s, state.diffuse);
        appendVec(s, state.ambient);
        _recorder->record(TraceOp::Light,
                          {s[0], s[1], s[2], s[3], s[4], s[5], s[6],
                           s[7], s[8], s[9], s[10], s[11], s[12],
                           s[13]});
    }
    _lights[index] = state;
}

void
Context::material(const MaterialState& state)
{
    if (_recorder) {
        std::vector<f64> s;
        appendVec(s, state.diffuse);
        appendVec(s, state.ambient);
        _recorder->record(TraceOp::Material,
                          {s[0], s[1], s[2], s[3], s[4], s[5], s[6],
                           s[7]});
    }
    _material = state;
}

void
Context::sceneAmbient(f32 r, f32 g, f32 b, f32 a)
{
    if (_recorder)
        _recorder->record(TraceOp::SceneAmbient, {r, g, b, a});
    _sceneAmbient = {r, g, b, a};
}

void
Context::fog(const FogState& state)
{
    if (_recorder) {
        _recorder->record(
            TraceOp::FogCall,
            {asScalar(state.mode), state.color.x,
             state.color.y, state.color.z, state.color.w,
             state.density, state.start, state.end});
    }
    const bool enabled = _fog.enabled;
    _fog = state;
    _fog.enabled = enabled; // Enabled via Cap::Fog.
}

void
Context::color(f32 r, f32 g, f32 b, f32 a)
{
    if (_recorder)
        _recorder->record(TraceOp::Color, {r, g, b, a});
    _currentColor = {r, g, b, a};
}

// ===== Buffer objects ==============================================

u32
Context::genBuffer()
{
    if (_recorder)
        _recorder->record(TraceOp::GenBuffer);
    const u32 id = _nextObjectId++;
    _buffers.emplace(id, BufferObject{});
    return id;
}

void
Context::bufferData(u32 buffer, std::vector<u8> data)
{
    if (_recorder) {
        _recorder->record(TraceOp::BufferData,
                          {asScalar(buffer)}, data.data(),
                          data.size());
    }
    auto it = _buffers.find(buffer);
    if (it == _buffers.end())
        fatal("Context: bufferData on unknown buffer ", buffer);
    BufferObject& obj = it->second;

    const u32 bytes = static_cast<u32>(data.size());
    if (obj.uploaded && obj.gpuSize < bytes) {
        _driver.allocator().release(obj.gpuAddress);
        obj.uploaded = false;
    }
    if (!obj.uploaded) {
        obj.gpuAddress = _driver.allocator().allocate(bytes);
        obj.gpuSize = (bytes + 255u) & ~255u;
        obj.uploaded = true;
    }
    obj.data = std::move(data);
    _driver.writeBuffer(obj.gpuAddress, obj.data);
}

void
Context::deleteBuffer(u32 buffer)
{
    if (_recorder)
        _recorder->record(TraceOp::DeleteBuffer,
                          {asScalar(buffer)});
    auto it = _buffers.find(buffer);
    if (it == _buffers.end())
        return;
    if (it->second.uploaded)
        _driver.allocator().release(it->second.gpuAddress);
    _buffers.erase(it);
}

// ===== Vertex arrays ===============================================

void
Context::attribPointer(u32 attr, u32 buffer,
                       gpu::StreamFormat format, u32 stride,
                       u32 offset)
{
    if (_recorder) {
        _recorder->record(TraceOp::AttribPointer,
                          {asScalar(attr),
                           asScalar(buffer),
                           asScalar(format),
                           asScalar(stride),
                           asScalar(offset)});
    }
    if (attr >= gpu::maxVertexStreams)
        fatal("Context: attribute index out of range");
    _attribs[attr] = {true, buffer, format, stride, offset};
}

void
Context::disableAttrib(u32 attr)
{
    if (_recorder)
        _recorder->record(TraceOp::DisableAttrib,
                          {asScalar(attr)});
    if (attr < gpu::maxVertexStreams)
        _attribs[attr].enabled = false;
}

void
Context::vertexPointer(u32 buffer, gpu::StreamFormat format,
                       u32 stride, u32 offset)
{
    attribPointer(attrPosition, buffer, format, stride, offset);
}

void
Context::normalPointer(u32 buffer, u32 stride, u32 offset)
{
    attribPointer(attrNormal, buffer, gpu::StreamFormat::Float3,
                  stride, offset);
}

void
Context::colorPointer(u32 buffer, gpu::StreamFormat format,
                      u32 stride, u32 offset)
{
    attribPointer(attrColor, buffer, format, stride, offset);
}

void
Context::texCoordPointer(u32 unit, u32 buffer,
                         gpu::StreamFormat format, u32 stride,
                         u32 offset)
{
    attribPointer(attrTexCoord0 + unit, buffer, format, stride,
                  offset);
}

// ===== Textures ====================================================

u32
Context::genTexture()
{
    if (_recorder)
        _recorder->record(TraceOp::GenTexture);
    const u32 id = _nextObjectId++;
    _textures.emplace(id, TextureObject{});
    return id;
}

void
Context::bindTexture(u32 texture)
{
    if (_recorder)
        _recorder->record(TraceOp::BindTexture,
                          {asScalar(texture)});
    _boundTexture[_activeUnit] = texture;
}

void
Context::activeTexture(u32 unit)
{
    if (_recorder)
        _recorder->record(TraceOp::ActiveTexture,
                          {asScalar(unit)});
    if (unit >= gpu::maxTextureUnits)
        fatal("Context: texture unit out of range");
    _activeUnit = unit;
}

void
Context::texImage2D(u32 level, emu::TexFormat format, u32 w, u32 h,
                    std::vector<u8> data)
{
    if (_recorder) {
        _recorder->record(TraceOp::TexImage2D,
                          {asScalar(level),
                           asScalar(format),
                           asScalar(w),
                           asScalar(h)},
                          data.data(), data.size());
    }
    auto it = _textures.find(_boundTexture[_activeUnit]);
    if (it == _textures.end())
        fatal("Context: texImage2D with no bound texture");
    TextureObject& tex = it->second;
    tex.desc.target = emu::TexTarget::Tex2D;
    tex.desc.format = format;
    tex.desc.mips[0][level].width = w;
    tex.desc.mips[0][level].height = h;
    tex.cpu[0][level] = std::move(data);
    tex.desc.levels = std::max(tex.desc.levels, level + 1);
    tex.dirty = true;
}

void
Context::texImageCube(u32 face, u32 level, emu::TexFormat format,
                      u32 w, u32 h, std::vector<u8> data)
{
    if (_recorder) {
        _recorder->record(TraceOp::TexImageCube,
                          {asScalar(face),
                           asScalar(level),
                           asScalar(format),
                           asScalar(w),
                           asScalar(h)},
                          data.data(), data.size());
    }
    auto it = _textures.find(_boundTexture[_activeUnit]);
    if (it == _textures.end())
        fatal("Context: texImageCube with no bound texture");
    TextureObject& tex = it->second;
    tex.desc.target = emu::TexTarget::Cube;
    tex.desc.format = format;
    tex.desc.mips[face][level].width = w;
    tex.desc.mips[face][level].height = h;
    tex.cpu[face][level] = std::move(data);
    tex.desc.levels = std::max(tex.desc.levels, level + 1);
    tex.dirty = true;
}

void
Context::texFilter(emu::MinFilter min_filter, bool mag_linear)
{
    if (_recorder)
        _recorder->record(TraceOp::TexFilter,
                          {asScalar(min_filter),
                           asScalar(mag_linear)});
    auto it = _textures.find(_boundTexture[_activeUnit]);
    if (it == _textures.end())
        fatal("Context: texFilter with no bound texture");
    it->second.desc.minFilter = min_filter;
    it->second.desc.magLinear = mag_linear;
    it->second.dirty = true;
}

void
Context::texWrap(emu::WrapMode s, emu::WrapMode t)
{
    if (_recorder)
        _recorder->record(TraceOp::TexWrap,
                          {asScalar(s),
                           asScalar(t)});
    auto it = _textures.find(_boundTexture[_activeUnit]);
    if (it == _textures.end())
        fatal("Context: texWrap with no bound texture");
    it->second.desc.wrapS = s;
    it->second.desc.wrapT = t;
    it->second.dirty = true;
}

void
Context::texMaxAnisotropy(u32 samples)
{
    if (_recorder)
        _recorder->record(TraceOp::TexMaxAniso,
                          {asScalar(samples)});
    auto it = _textures.find(_boundTexture[_activeUnit]);
    if (it == _textures.end())
        fatal("Context: texMaxAnisotropy with no bound texture");
    it->second.desc.maxAnisotropy = std::max(1u, samples);
    it->second.dirty = true;
}

void
Context::generateMipmaps()
{
    if (_recorder)
        _recorder->record(TraceOp::GenerateMipmaps);
    auto it = _textures.find(_boundTexture[_activeUnit]);
    if (it == _textures.end())
        fatal("Context: generateMipmaps with no bound texture");
    TextureObject& tex = it->second;
    if (tex.desc.format != emu::TexFormat::RGBA8)
        fatal("Context: generateMipmaps supports RGBA8 only");

    const u32 faces =
        tex.desc.target == emu::TexTarget::Cube ? 6u : 1u;
    for (u32 face = 0; face < faces; ++face) {
        u32 level = 0;
        while (tex.desc.mips[face][level].width > 1 ||
               tex.desc.mips[face][level].height > 1) {
            const emu::MipLevel& src = tex.desc.mips[face][level];
            const u32 dw = std::max(1u, src.width / 2);
            const u32 dh = std::max(1u, src.height / 2);
            std::vector<u8> down(dw * dh * 4);
            const std::vector<u8>& s = tex.cpu[face][level];
            for (u32 y = 0; y < dh; ++y) {
                for (u32 x = 0; x < dw; ++x) {
                    for (u32 c = 0; c < 4; ++c) {
                        u32 acc = 0;
                        for (u32 dy = 0; dy < 2; ++dy) {
                            for (u32 dx = 0; dx < 2; ++dx) {
                                const u32 sx = std::min(
                                    src.width - 1, x * 2 + dx);
                                const u32 sy = std::min(
                                    src.height - 1, y * 2 + dy);
                                acc += s[(sy * src.width + sx) * 4 +
                                         c];
                            }
                        }
                        down[(y * dw + x) * 4 + c] =
                            static_cast<u8>(acc / 4);
                    }
                }
            }
            ++level;
            tex.desc.mips[face][level].width = dw;
            tex.desc.mips[face][level].height = dh;
            tex.cpu[face][level] = std::move(down);
        }
        tex.desc.levels = std::max(tex.desc.levels, level + 1);
    }
    tex.dirty = true;
}

void
Context::texEnv(TexEnvMode mode)
{
    if (_recorder)
        _recorder->record(TraceOp::TexEnv,
                          {asScalar(mode)});
    _texEnvMode[_activeUnit] = mode;
}

void
Context::deleteTexture(u32 texture)
{
    if (_recorder)
        _recorder->record(TraceOp::DeleteTexture,
                          {asScalar(texture)});
    auto it = _textures.find(texture);
    if (it == _textures.end())
        return;
    if (it->second.allocated)
        _driver.allocator().release(it->second.gpuBase);
    _textures.erase(it);
}

// ===== Programs ====================================================

u32
Context::genProgram()
{
    if (_recorder)
        _recorder->record(TraceOp::GenProgram);
    const u32 id = _nextObjectId++;
    _programs.emplace(id, ProgramObject{});
    return id;
}

void
Context::programString(u32 program, const std::string& source)
{
    if (_recorder)
        _recorder->record(TraceOp::ProgramString,
                          {asScalar(program)}, nullptr, 0,
                          source);
    auto it = _programs.find(program);
    if (it == _programs.end())
        fatal("Context: programString on unknown program ", program);
    emu::ShaderAssembler assembler;
    it->second.source = source;
    it->second.program = assembler.assemble(source);
}

void
Context::bindProgramVertex(u32 program)
{
    if (_recorder)
        _recorder->record(TraceOp::BindProgramVertex,
                          {asScalar(program)});
    _boundVertexProgram = program;
}

void
Context::bindProgramFragment(u32 program)
{
    if (_recorder)
        _recorder->record(TraceOp::BindProgramFragment,
                          {asScalar(program)});
    _boundFragmentProgram = program;
}

void
Context::programEnvParam(emu::ShaderTarget target, u32 index,
                         const Vec4& value)
{
    if (_recorder)
        _recorder->record(TraceOp::ProgramEnvParam,
                          {asScalar(target),
                           asScalar(index), value.x,
                           value.y, value.z, value.w});
    const Reg reg = target == emu::ShaderTarget::Vertex
                        ? Reg::VertexConstant
                        : Reg::FragmentConstant;
    _driver.writeReg(reg, RegValue(value), index);
}

void
Context::programLocalParam(emu::ShaderTarget target, u32 index,
                           const Vec4& value)
{
    if (_recorder)
        _recorder->record(TraceOp::ProgramLocalParam,
                          {asScalar(target),
                           asScalar(index), value.x,
                           value.y, value.z, value.w});
    const Reg reg = target == emu::ShaderTarget::Vertex
                        ? Reg::VertexConstant
                        : Reg::FragmentConstant;
    _driver.writeReg(reg, RegValue(value),
                     emu::regix::paramLocalBase + index);
}

// ===== Draw ========================================================

FixedFunctionKey
Context::makeKey() const
{
    FixedFunctionKey key;
    key.lighting = _lightingEnabled;
    for (u32 l = 0; l < maxLights; ++l) {
        if (_lights[l].enabled)
            key.lightMask |= static_cast<u8>(1u << l);
    }
    key.colorFromArray = _attribs[attrColor].enabled;
    for (u32 u = 0; u < 4; ++u) {
        if (_texEnabled[u] && _boundTexture[u] != 0) {
            key.textureMask |= static_cast<u8>(1u << u);
            key.envModes[u] = _texEnvMode[u];
        }
    }
    key.alphaTest = _alphaTest.enabled;
    key.alphaFunc = _alphaTest.func;
    key.fog = _fog.enabled;
    key.fogMode = _fog.mode;
    return key;
}

void
Context::uploadTexture(u32 unit, TextureObject& tex)
{
    (void)unit;
    const u32 faces =
        tex.desc.target == emu::TexTarget::Cube ? 6u : 1u;

    if (!tex.allocated) {
        u32 total = 0;
        for (u32 face = 0; face < faces; ++face) {
            for (u32 level = 0; level < tex.desc.levels; ++level) {
                const emu::MipLevel& mip = tex.desc.mips[face][level];
                if (mip.width == 0)
                    continue;
                total += (emu::mipStorageBytes(tex.desc.format,
                                               mip.width,
                                               mip.height) +
                          255u) & ~255u;
            }
        }
        tex.gpuBase = _driver.allocator().allocate(total);
        u32 offset = 0;
        for (u32 face = 0; face < faces; ++face) {
            for (u32 level = 0; level < tex.desc.levels; ++level) {
                emu::MipLevel& mip = tex.desc.mips[face][level];
                if (mip.width == 0)
                    continue;
                mip.address = tex.gpuBase + offset;
                offset += (emu::mipStorageBytes(tex.desc.format,
                                                mip.width,
                                                mip.height) +
                           255u) & ~255u;
            }
        }
        tex.allocated = true;
    }

    for (u32 face = 0; face < faces; ++face) {
        for (u32 level = 0; level < tex.desc.levels; ++level) {
            const emu::MipLevel& mip = tex.desc.mips[face][level];
            if (mip.width == 0 || tex.cpu[face][level].empty())
                continue;
            _driver.writeBuffer(
                mip.address,
                Driver::tileMipImage(tex.desc.format, mip.width,
                                     mip.height,
                                     tex.cpu[face][level].data()));
        }
    }
    tex.dirty = false;
    tex.version = _textureVersionCounter++;
}

void
Context::prepareTextures()
{
    // Units needed by the active fragment path.
    u32 needed = 0;
    if (_fragmentProgramEnabled && _boundFragmentProgram) {
        auto it = _programs.find(_boundFragmentProgram);
        if (it != _programs.end() && it->second.program)
            needed = it->second.program->texturesUsed;
    } else {
        needed = makeKey().textureMask;
    }

    for (u32 u = 0; u < gpu::maxTextureUnits; ++u) {
        const bool want = (needed >> u) & 1;
        if (!want) {
            if (_emittedTexture[u] != 0) {
                _driver.writeReg(Reg::TexEnable, RegValue(0u), u);
                _emittedTexture[u] = 0;
            }
            continue;
        }
        auto it = _textures.find(_boundTexture[u]);
        if (it == _textures.end())
            fatal("Context: draw uses texture unit ", u,
                  " with no texture bound");
        TextureObject& tex = it->second;
        if (tex.dirty || !tex.allocated)
            uploadTexture(u, tex);
        if (_emittedTexture[u] != _boundTexture[u] ||
            _emittedTexVersion[u] != tex.version) {
            _driver.writeReg(Reg::TexEnable, RegValue(1u), u);
            _driver.emitTextureDescriptor(u, tex.desc);
            _emittedTexture[u] = _boundTexture[u];
            _emittedTexVersion[u] = tex.version;
        }
    }
}

void
Context::emitFixedFunctionConstants()
{
    const emu::Mat4 mvp =
        _projectionStack.back() * _modelViewStack.back();
    for (u32 i = 0; i < 4; ++i) {
        _driver.writeReg(Reg::VertexConstant, RegValue(mvp.row(i)),
                         envMvpRow0 + i);
    }
    const emu::Mat4& mv = _modelViewStack.back();
    for (u32 i = 0; i < 4; ++i) {
        _driver.writeReg(Reg::VertexConstant, RegValue(mv.row(i)),
                         envModelViewRow0 + i);
    }

    if (_lightingEnabled) {
        Vec4 ambient = _sceneAmbient * _material.ambient;
        for (u32 l = 0; l < maxLights; ++l) {
            if (!_lights[l].enabled)
                continue;
            ambient = ambient +
                      _lights[l].ambient * _material.ambient;
            // Normalize the (eye space) light direction.
            Vec4 dir = _lights[l].direction;
            const f32 len = std::sqrt(dot3(dir, dir));
            if (len > 0.0f)
                dir = dir * (1.0f / len);
            _driver.writeReg(Reg::VertexConstant, RegValue(dir),
                             envLightBase + 2 * l);
            _driver.writeReg(
                Reg::VertexConstant,
                RegValue(_lights[l].diffuse * _material.diffuse),
                envLightBase + 2 * l + 1);
        }
        ambient.w = _material.diffuse.w;
        _driver.writeReg(Reg::VertexConstant, RegValue(ambient),
                         envAmbient);
        _driver.writeReg(Reg::VertexConstant,
                         RegValue(_material.diffuse),
                         envMaterialDiffuse);
    }
    _driver.writeReg(Reg::VertexConstant, RegValue(_currentColor),
                     envCurrentColor);

    if (_fog.enabled) {
        const f32 scale = _fog.end != _fog.start
                              ? 1.0f / (_fog.end - _fog.start)
                              : 1.0f;
        const Vec4 params{scale, _fog.end * scale,
                          _fog.density * 1.442695f, _fog.density};
        _driver.writeReg(Reg::FragmentConstant, RegValue(params),
                         envFogParams);
        _driver.writeReg(Reg::FragmentConstant,
                         RegValue(_fog.color), envFogColor);
    }
    if (_alphaTest.enabled) {
        _driver.writeReg(
            Reg::FragmentConstant,
            RegValue(Vec4{_alphaTest.ref, 0.5f, 1.0f, 0.0f}),
            envAlphaRef);
    }
}

void
Context::preparePrograms()
{
    emu::ShaderProgramPtr vp;
    emu::ShaderProgramPtr fp;

    if (_vertexProgramEnabled && _boundVertexProgram) {
        auto it = _programs.find(_boundVertexProgram);
        if (it == _programs.end() || !it->second.program)
            fatal("Context: bound vertex program has no code");
        vp = it->second.program;
    } else {
        vp = _ffgen.vertexProgram(makeKey());
    }

    if (_fragmentProgramEnabled && _boundFragmentProgram) {
        auto it = _programs.find(_boundFragmentProgram);
        if (it == _programs.end() || !it->second.program)
            fatal("Context: bound fragment program has no code");
        fp = it->second.program;
        if (_alphaTest.enabled &&
            _alphaTest.func != emu::CompareFunc::Always) {
            // Inject the alpha test (library modifies the program,
            // paper §2.2/§4); cached per (program, func).
            const auto cache_key = std::make_pair(
                fp.get(), static_cast<u8>(_alphaTest.func));
            auto cached = _injectedCache.find(cache_key);
            if (cached == _injectedCache.end()) {
                auto injected =
                    FixedFunctionGenerator::injectAlphaTest(
                        *fp, _alphaTest.func);
                cached = _injectedCache
                             .emplace(cache_key, injected)
                             .first;
            }
            fp = cached->second;
        }
    } else {
        fp = _ffgen.fragmentProgram(makeKey());
    }

    if (vp.get() != _loadedVertexProgram) {
        _driver.loadVertexProgram(vp);
        _loadedVertexProgram = vp.get();
    }
    if (fp.get() != _loadedFragmentProgram) {
        _driver.loadFragmentProgram(fp);
        _loadedFragmentProgram = fp.get();
    }

    emitFixedFunctionConstants();
}

void
Context::emitFragmentState()
{
    _driver.writeReg(Reg::DepthTestEnable,
                     RegValue(_depthTestEnabled ? 1u : 0u));
    _driver.writeReg(Reg::DepthFunc,
                     RegValue(static_cast<u32>(_zStencil.depthFunc)));
    _driver.writeReg(Reg::DepthWriteMask,
                     RegValue(_zStencil.depthWrite ? 1u : 0u));
    _driver.writeReg(Reg::StencilTestEnable,
                     RegValue(_stencilTestEnabled ? 1u : 0u));
    _driver.writeReg(
        Reg::StencilFunc,
        RegValue(static_cast<u32>(_zStencil.stencilFunc)));
    _driver.writeReg(Reg::StencilRef,
                     RegValue(static_cast<u32>(_zStencil.stencilRef)));
    _driver.writeReg(
        Reg::StencilCompareMask,
        RegValue(static_cast<u32>(_zStencil.stencilCompareMask)));
    _driver.writeReg(
        Reg::StencilWriteMask,
        RegValue(static_cast<u32>(_zStencil.stencilWriteMask)));
    _driver.writeReg(
        Reg::StencilOpFail,
        RegValue(static_cast<u32>(_zStencil.stencilFail)));
    _driver.writeReg(
        Reg::StencilOpZFail,
        RegValue(static_cast<u32>(_zStencil.depthFail)));
    _driver.writeReg(
        Reg::StencilOpZPass,
        RegValue(static_cast<u32>(_zStencil.depthPass)));
    _driver.writeReg(Reg::StencilTwoSideEnable,
                     RegValue(_stencilTwoSideEnabled ? 1u : 0u));
    _driver.writeReg(
        Reg::StencilBackFunc,
        RegValue(static_cast<u32>(_zStencil.backFunc)));
    _driver.writeReg(Reg::StencilBackRef,
                     RegValue(static_cast<u32>(_zStencil.backRef)));
    _driver.writeReg(
        Reg::StencilBackCompareMask,
        RegValue(static_cast<u32>(_zStencil.backCompareMask)));
    _driver.writeReg(
        Reg::StencilBackWriteMask,
        RegValue(static_cast<u32>(_zStencil.backWriteMask)));
    _driver.writeReg(
        Reg::StencilBackOpFail,
        RegValue(static_cast<u32>(_zStencil.backFail)));
    _driver.writeReg(
        Reg::StencilBackOpZFail,
        RegValue(static_cast<u32>(_zStencil.backDepthFail)));
    _driver.writeReg(
        Reg::StencilBackOpZPass,
        RegValue(static_cast<u32>(_zStencil.backDepthPass)));
    _driver.writeReg(Reg::BlendEnable,
                     RegValue(_blendEnabled ? 1u : 0u));
    _driver.writeReg(
        Reg::BlendEquation_,
        RegValue(static_cast<u32>(_blend.equation)));
    _driver.writeReg(Reg::BlendSrcFactor,
                     RegValue(static_cast<u32>(_blend.srcFactor)));
    _driver.writeReg(Reg::BlendDstFactor,
                     RegValue(static_cast<u32>(_blend.dstFactor)));
    _driver.writeReg(Reg::BlendConstantColor,
                     RegValue(_blend.constantColor));
    _driver.writeReg(Reg::ColorWriteMask,
                     RegValue(static_cast<u32>(_blend.colorMask)));
    _driver.writeReg(
        Reg::CullMode_,
        RegValue(static_cast<u32>(_cullEnabled
                                      ? _cullMode
                                      : gpu::CullMode::None)));
    _driver.writeReg(Reg::FrontFaceCcw,
                     RegValue(_frontCcw ? 1u : 0u));
    _driver.writeReg(Reg::ScissorEnable,
                     RegValue(_scissor.enabled ? 1u : 0u));
    _driver.writeReg(Reg::ScissorX,
                     RegValue(static_cast<u32>(_scissor.x)));
    _driver.writeReg(Reg::ScissorY,
                     RegValue(static_cast<u32>(_scissor.y)));
    _driver.writeReg(Reg::ScissorWidth, RegValue(_scissor.width));
    _driver.writeReg(Reg::ScissorHeight, RegValue(_scissor.height));
}

void
Context::emitStreams()
{
    for (u32 a = 0; a < gpu::maxVertexStreams; ++a) {
        const AttribArray& attr = _attribs[a];
        if (!attr.enabled) {
            _driver.writeReg(Reg::StreamEnable, RegValue(0u), a);
            continue;
        }
        auto it = _buffers.find(attr.buffer);
        if (it == _buffers.end() || !it->second.uploaded)
            fatal("Context: attribute ", a,
                  " references an unuploaded buffer");
        _driver.writeReg(Reg::StreamEnable, RegValue(1u), a);
        _driver.writeReg(Reg::StreamAddress,
                         RegValue(it->second.gpuAddress +
                                  attr.offset),
                         a);
        _driver.writeReg(Reg::StreamStride, RegValue(attr.stride),
                         a);
        _driver.writeReg(Reg::StreamFormat_,
                         RegValue(static_cast<u32>(attr.format)),
                         a);
    }
}

void
Context::draw(gpu::Primitive prim, u32 count, u32 first,
              bool indexed, u32 index_buffer, u32 offset, bool wide)
{
    prepareTextures();
    preparePrograms();
    emitFrameState();
    emitFragmentState();
    emitStreams();

    if (indexed) {
        auto it = _buffers.find(index_buffer);
        if (it == _buffers.end() || !it->second.uploaded)
            fatal("Context: drawElements with an unuploaded index"
                  " buffer");
        _driver.writeReg(Reg::IndexEnable, RegValue(1u));
        _driver.writeReg(Reg::IndexAddress,
                         RegValue(it->second.gpuAddress + offset));
        _driver.writeReg(Reg::IndexWide, RegValue(wide ? 1u : 0u));
    } else {
        _driver.writeReg(Reg::IndexEnable, RegValue(0u));
    }

    _driver.emit(Command::drawBatch(prim, count, first));
    ++_drawCalls;
}

void
Context::drawArrays(gpu::Primitive prim, u32 first, u32 count)
{
    if (_recorder)
        _recorder->record(TraceOp::DrawArrays,
                          {asScalar(prim),
                           asScalar(first),
                           asScalar(count)});
    draw(prim, count, first, false, 0, 0, false);
}

void
Context::drawElements(gpu::Primitive prim, u32 count,
                      u32 index_buffer, u32 offset, bool wide)
{
    if (_recorder)
        _recorder->record(TraceOp::DrawElements,
                          {asScalar(prim),
                           asScalar(count),
                           asScalar(index_buffer),
                           asScalar(offset),
                           asScalar(wide)});
    draw(prim, count, 0, true, index_buffer, offset, wide);
}

} // namespace attila::gl

/**
 * @file
 * Context: the AGL library — ATTILA's OpenGL-flavoured API layer
 * (paper §4).
 *
 * The library manages GL state (matrix stacks, lighting, texture
 * environment, vertex arrays, buffer and texture objects, ARB-style
 * programs) and translates draw calls into the low-level Command
 * Processor command stream through the Driver.  The legacy
 * fixed-function pipeline, alpha test and fog are implemented with
 * driver-generated shader programs (no dedicated hardware units).
 *
 * API calls are recorded by an attached TraceRecorder (the
 * GLInterceptor role) and can be replayed by the TracePlayer.
 */

#ifndef ATTILA_GL_CONTEXT_HH
#define ATTILA_GL_CONTEXT_HH

#include <map>
#include <memory>
#include <vector>

#include "emu/matrix.hh"
#include "gl/api_types.hh"
#include "gl/driver.hh"
#include "gl/fixed_function.hh"

namespace attila::gl
{

class TraceRecorder;

/** The AGL rendering context. */
class Context
{
  public:
    /**
     * @param width / @param height framebuffer dimensions.
     * @param memory_size GPU memory size (allocator bound).
     */
    Context(u32 width, u32 height, u32 memory_size = 64u << 20);

    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    /** Drain the command stream produced so far. */
    gpu::CommandList takeCommands();

    /** Attach a recorder capturing every API call (may be null). */
    void setRecorder(TraceRecorder* recorder)
    {
        _recorder = recorder;
    }

    u32 width() const { return _width; }
    u32 height() const { return _height; }

    // ===== Frame ===================================================
    void clearColor(f32 r, f32 g, f32 b, f32 a);
    void clearDepth(f32 depth);
    void clearStencil(u8 stencil);
    void clear(u32 mask); ///< clearColorBit | clearDepthBit | ...
    void swapBuffers();
    void viewport(s32 x, s32 y, u32 w, u32 h);

    // ===== Capabilities ============================================
    void enable(Cap cap);
    void disable(Cap cap);
    bool isEnabled(Cap cap) const;

    // ===== Per-fragment state ======================================
    void depthFunc(emu::CompareFunc func);
    void depthMask(bool write);
    void stencilFunc(emu::CompareFunc func, u8 ref, u8 mask);
    void stencilOp(emu::StencilOp fail, emu::StencilOp zfail,
                   emu::StencilOp zpass);
    void stencilMask(u8 mask);
    /** Back-face stencil state (with Cap::StencilTwoSide). */
    void stencilFuncBack(emu::CompareFunc func, u8 ref, u8 mask);
    void stencilOpBack(emu::StencilOp fail, emu::StencilOp zfail,
                       emu::StencilOp zpass);
    void blendFunc(emu::BlendFactor src, emu::BlendFactor dst);
    void blendEquation(emu::BlendEquation eq);
    void blendColor(f32 r, f32 g, f32 b, f32 a);
    void colorMask(bool r, bool g, bool b, bool a);
    void alphaFunc(emu::CompareFunc func, f32 ref);
    void scissor(s32 x, s32 y, u32 w, u32 h);

    // ===== Geometry state ==========================================
    void cullFace(gpu::CullMode mode);
    void frontFaceCcw(bool ccw);

    // ===== Matrices (fixed function) ===============================
    void matrixMode(MatrixMode mode);
    void loadIdentity();
    void loadMatrix(const emu::Mat4& m);
    void multMatrix(const emu::Mat4& m);
    void pushMatrix();
    void popMatrix();
    void translate(f32 x, f32 y, f32 z);
    void rotate(f32 degrees, f32 x, f32 y, f32 z);
    void scale(f32 x, f32 y, f32 z);
    void frustum(f32 l, f32 r, f32 b, f32 t, f32 n, f32 f);
    void ortho(f32 l, f32 r, f32 b, f32 t, f32 n, f32 f);
    void perspective(f32 fovy_degrees, f32 aspect, f32 n, f32 f);
    void lookAt(const emu::Vec4& eye, const emu::Vec4& center,
                const emu::Vec4& up);

    // ===== Fixed-function lighting / fog / current color ==========
    void light(u32 index, const LightState& state);
    void material(const MaterialState& state);
    void sceneAmbient(f32 r, f32 g, f32 b, f32 a);
    void fog(const FogState& state);
    void color(f32 r, f32 g, f32 b, f32 a); ///< Current color.

    // ===== Buffer objects ==========================================
    u32 genBuffer();
    void bufferData(u32 buffer, std::vector<u8> data);
    void deleteBuffer(u32 buffer);

    // ===== Vertex arrays ===========================================
    /** Bind attribute @p attr to @p buffer at @p offset. */
    void attribPointer(u32 attr, u32 buffer,
                       gpu::StreamFormat format, u32 stride,
                       u32 offset);
    void disableAttrib(u32 attr);
    // Legacy names.
    void vertexPointer(u32 buffer, gpu::StreamFormat format,
                       u32 stride, u32 offset);
    void normalPointer(u32 buffer, u32 stride, u32 offset);
    void colorPointer(u32 buffer, gpu::StreamFormat format,
                      u32 stride, u32 offset);
    void texCoordPointer(u32 unit, u32 buffer,
                         gpu::StreamFormat format, u32 stride,
                         u32 offset);

    // ===== Textures ================================================
    u32 genTexture();
    void bindTexture(u32 texture); ///< To the active unit.
    void activeTexture(u32 unit);
    void texImage2D(u32 level, emu::TexFormat format, u32 w, u32 h,
                    std::vector<u8> data);
    void texImageCube(u32 face, u32 level, emu::TexFormat format,
                      u32 w, u32 h, std::vector<u8> data);
    void texFilter(emu::MinFilter min_filter, bool mag_linear);
    void texWrap(emu::WrapMode s, emu::WrapMode t);
    void texMaxAnisotropy(u32 samples);
    void generateMipmaps();
    void texEnv(TexEnvMode mode);
    void deleteTexture(u32 texture);

    // ===== ARB-style programs ======================================
    u32 genProgram();
    void programString(u32 program, const std::string& source);
    void bindProgramVertex(u32 program);
    void bindProgramFragment(u32 program);
    void programEnvParam(emu::ShaderTarget target, u32 index,
                         const emu::Vec4& value);
    void programLocalParam(emu::ShaderTarget target, u32 index,
                           const emu::Vec4& value);

    // ===== Draw ====================================================
    void drawArrays(gpu::Primitive prim, u32 first, u32 count);
    /** Indexed draw; @p wide selects 32-bit indices. */
    void drawElements(gpu::Primitive prim, u32 count,
                      u32 index_buffer, u32 offset, bool wide);

    // ===== Statistics ==============================================
    u32 drawCallCount() const { return _drawCalls; }
    u32 frameCount() const { return _frames; }

  private:
    struct BufferObject
    {
        std::vector<u8> data;
        u32 gpuAddress = 0;
        u32 gpuSize = 0;
        bool uploaded = false;
    };

    struct TextureObject
    {
        emu::TextureDescriptor desc;
        /** CPU-side mips [face][level], tightly packed. */
        std::array<std::array<std::vector<u8>, emu::maxMipLevels>,
                   6>
            cpu;
        bool dirty = true;
        bool allocated = false;
        u32 gpuBase = 0;
        u64 version = 0;
    };

    struct ProgramObject
    {
        std::string source;
        emu::ShaderProgramPtr program;
    };

    struct AttribArray
    {
        bool enabled = false;
        u32 buffer = 0;
        gpu::StreamFormat format = gpu::StreamFormat::Float4;
        u32 stride = 0;
        u32 offset = 0;
    };

    emu::Mat4& currentMatrix();
    void emitFrameState();
    void emitFragmentState();
    void prepareTextures();
    void preparePrograms();
    void emitStreams();
    void emitFixedFunctionConstants();
    void draw(gpu::Primitive prim, u32 count, u32 first,
              bool indexed, u32 index_buffer, u32 offset, bool wide);
    FixedFunctionKey makeKey() const;
    void uploadTexture(u32 unit, TextureObject& tex);

    u32 _width;
    u32 _height;
    Driver _driver;
    FixedFunctionGenerator _ffgen;
    TraceRecorder* _recorder = nullptr;

    // Framebuffer placement.
    u32 _colorAddress = 0;
    u32 _zStencilAddress = 0;

    // State.
    emu::Vec4 _clearColor;
    f32 _clearDepth = 1.0f;
    u8 _clearStencil = 0;
    emu::Viewport _viewport;
    gpu::ScissorState _scissor;
    emu::ZStencilState _zStencil;
    bool _depthTestEnabled = false;
    bool _stencilTestEnabled = false;
    bool _stencilTwoSideEnabled = false;
    emu::BlendState _blend;
    bool _blendEnabled = false;
    bool _cullEnabled = false;
    gpu::CullMode _cullMode = gpu::CullMode::Back;
    bool _frontCcw = true;
    AlphaTestState _alphaTest;
    FogState _fog;
    bool _lightingEnabled = false;
    std::array<LightState, maxLights> _lights{};
    MaterialState _material;
    emu::Vec4 _sceneAmbient{0.2f, 0.2f, 0.2f, 1.0f};
    emu::Vec4 _currentColor{1.0f, 1.0f, 1.0f, 1.0f};

    MatrixMode _matrixMode = MatrixMode::ModelView;
    std::vector<emu::Mat4> _modelViewStack{emu::Mat4::identity()};
    std::vector<emu::Mat4> _projectionStack{emu::Mat4::identity()};

    std::map<u32, BufferObject> _buffers;
    std::map<u32, TextureObject> _textures;
    std::map<u32, ProgramObject> _programs;
    u32 _nextObjectId = 1;

    std::array<AttribArray, gpu::maxVertexStreams> _attribs{};
    std::array<u32, gpu::maxTextureUnits> _boundTexture{};
    std::array<bool, gpu::maxTextureUnits> _texEnabled{};
    std::array<TexEnvMode, gpu::maxTextureUnits> _texEnvMode{};
    u32 _activeUnit = 0;

    bool _vertexProgramEnabled = false;
    bool _fragmentProgramEnabled = false;
    u32 _boundVertexProgram = 0;
    u32 _boundFragmentProgram = 0;

    /** Last programs sent to the Command Processor. */
    const emu::ShaderProgram* _loadedVertexProgram = nullptr;
    const emu::ShaderProgram* _loadedFragmentProgram = nullptr;
    /** Cached alpha-test-injected user fragment programs. */
    std::map<std::pair<const emu::ShaderProgram*, u8>,
             emu::ShaderProgramPtr>
        _injectedCache;
    /** Texture descriptor versions last emitted per unit. */
    std::array<u64, gpu::maxTextureUnits> _emittedTexVersion{};
    std::array<u32, gpu::maxTextureUnits> _emittedTexture{};
    u64 _textureVersionCounter = 1;

    u32 _drawCalls = 0;
    u32 _frames = 0;
};

} // namespace attila::gl

#endif // ATTILA_GL_CONTEXT_HH

#include "gl/driver.hh"

#include <cstring>

#include "sim/logging.hh"

namespace attila::gl
{

GpuMemoryAllocator::GpuMemoryAllocator(u32 base, u32 size)
{
    _blocks.push_back({base, size, true});
}

u32
GpuMemoryAllocator::allocate(u32 bytes)
{
    // 256-byte alignment keeps every object cache-line aligned.
    bytes = (bytes + 255u) & ~255u;
    for (auto it = _blocks.begin(); it != _blocks.end(); ++it) {
        if (!it->free || it->size < bytes)
            continue;
        const u32 addr = it->address;
        if (it->size > bytes) {
            _blocks.insert(std::next(it),
                           {addr + bytes, it->size - bytes, true});
        }
        it->size = bytes;
        it->free = false;
        _allocated += bytes;
        return addr;
    }
    fatal("GPU memory allocator: out of memory allocating ", bytes,
          " bytes (", _allocated, " allocated)");
}

void
GpuMemoryAllocator::release(u32 address)
{
    for (auto it = _blocks.begin(); it != _blocks.end(); ++it) {
        if (it->address != address || it->free)
            continue;
        it->free = true;
        _allocated -= it->size;
        // Coalesce with neighbours.
        if (auto next = std::next(it);
            next != _blocks.end() && next->free) {
            it->size += next->size;
            _blocks.erase(next);
        }
        if (it != _blocks.begin()) {
            auto prev = std::prev(it);
            if (prev->free) {
                prev->size += it->size;
                _blocks.erase(it);
            }
        }
        return;
    }
    panic("GPU memory allocator: release of unknown address ",
          address);
}

Driver::Driver(u32 memory_size, u32 fb_bytes)
    : _allocator(fb_bytes, memory_size - fb_bytes)
{
}

gpu::CommandList
Driver::takeCommands()
{
    gpu::CommandList out;
    out.swap(_commands);
    return out;
}

std::vector<u8>
Driver::tileMipImage(emu::TexFormat format, u32 width, u32 height,
                     const u8* src)
{
    const u32 total = emu::mipStorageBytes(format, width, height);
    std::vector<u8> out(total, 0);

    if (emu::texFormatCompressed(format)) {
        // DXT blocks are row-major on both sides.
        std::memcpy(out.data(), src, total);
        return out;
    }

    // Reuse the texel address math with a zero-based descriptor.
    emu::TextureDescriptor desc;
    desc.format = format;
    desc.levels = 1;
    desc.mips[0][0] = {width, height, 1, 0};
    const u32 unit = emu::texFormatUnitBytes(format);
    for (u32 y = 0; y < height; ++y) {
        for (u32 x = 0; x < width; ++x) {
            u32 bytes = 0;
            const u32 addr = emu::TextureEmulator::texelAddress(
                desc, 0, 0, x, y, &bytes);
            std::memcpy(out.data() + addr,
                        src + (y * width + x) * unit, unit);
        }
    }
    return out;
}

void
Driver::emitTextureDescriptor(u32 unit,
                              const emu::TextureDescriptor& desc)
{
    using gpu::Reg;
    using gpu::RegValue;

    writeReg(Reg::TexTarget_,
             RegValue(static_cast<u32>(desc.target)), unit);
    writeReg(Reg::TexFormat_,
             RegValue(static_cast<u32>(desc.format)), unit);
    writeReg(Reg::TexWrapS, RegValue(static_cast<u32>(desc.wrapS)),
             unit);
    writeReg(Reg::TexWrapT, RegValue(static_cast<u32>(desc.wrapT)),
             unit);
    writeReg(Reg::TexMinFilter,
             RegValue(static_cast<u32>(desc.minFilter)), unit);
    writeReg(Reg::TexMagLinear,
             RegValue(static_cast<u32>(desc.magLinear ? 1 : 0)),
             unit);
    writeReg(Reg::TexMaxAniso, RegValue(desc.maxAnisotropy), unit);
    writeReg(Reg::TexLevels, RegValue(desc.levels), unit);

    const u32 faces =
        desc.target == emu::TexTarget::Cube ? 6u : 1u;
    for (u32 face = 0; face < faces; ++face) {
        for (u32 level = 0; level < desc.levels; ++level) {
            // Index packing: (face * maxTextureUnits + unit) *
            // maxMipLevels + level (see applyRegister()).
            const u32 idx =
                (face * gpu::maxTextureUnits + unit) *
                    emu::maxMipLevels +
                level;
            const emu::MipLevel& mip = desc.mips[face][level];
            writeReg(Reg::TexMipAddress, RegValue(mip.address),
                     idx);
            writeReg(Reg::TexMipWidth, RegValue(mip.width), idx);
            writeReg(Reg::TexMipHeight, RegValue(mip.height), idx);
        }
    }
}

} // namespace attila::gl

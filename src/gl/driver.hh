/**
 * @file
 * Driver: the lower layer of the OpenGL framework (paper §4).
 *
 * Offers basic services to the library layer: GPU memory allocation
 * (the MemoryObject abstraction), register writes, command emission,
 * and the device-layout tiling of texture uploads.  The library
 * manages GL state; the driver turns it into Command Processor
 * commands.
 */

#ifndef ATTILA_GL_DRIVER_HH
#define ATTILA_GL_DRIVER_HH

#include <list>
#include <vector>

#include "emu/texture_emulator.hh"
#include "gpu/commands.hh"

namespace attila::gl
{

/**
 * First-fit GPU memory allocator.  The MemoryObject abstraction of
 * the paper: the library allocates, synchronizes and deallocates
 * objects without caring about placement.
 */
class GpuMemoryAllocator
{
  public:
    /**
     * @param base First allocatable byte (below lives the
     *             framebuffer arena).
     * @param size Total allocatable bytes.
     */
    GpuMemoryAllocator(u32 base, u32 size);

    /** Allocate @p bytes (256-byte aligned); throws FatalError when
     * exhausted. */
    u32 allocate(u32 bytes);

    /** Release a prior allocation. */
    void release(u32 address);

    /** Bytes currently allocated. */
    u32 allocated() const { return _allocated; }

  private:
    struct Block
    {
        u32 address;
        u32 size;
        bool free;
    };

    std::list<Block> _blocks;
    u32 _allocated = 0;
};

/** The driver: command emission services for the library layer. */
class Driver
{
  public:
    /**
     * @param memory_size GPU memory size (for allocator bounds).
     * @param fb_bytes Bytes reserved at address 0 for framebuffers.
     */
    Driver(u32 memory_size, u32 fb_bytes);

    /** Pending command stream (drained by the library). */
    gpu::CommandList takeCommands();

    // --- Basic services --------------------------------------------
    void
    writeReg(gpu::Reg reg, const gpu::RegValue& value, u32 index = 0)
    {
        _commands.push_back(gpu::Command::writeReg(reg, value,
                                                   index));
    }

    void
    writeBuffer(u32 address, std::vector<u8> bytes)
    {
        _commands.push_back(
            gpu::Command::writeBuffer(address, std::move(bytes)));
    }

    void
    loadVertexProgram(emu::ShaderProgramPtr prog)
    {
        _commands.push_back(
            gpu::Command::loadVertexProgram(std::move(prog)));
    }

    void
    loadFragmentProgram(emu::ShaderProgramPtr prog)
    {
        _commands.push_back(
            gpu::Command::loadFragmentProgram(std::move(prog)));
    }

    void
    emit(gpu::Command cmd)
    {
        _commands.push_back(std::move(cmd));
    }

    GpuMemoryAllocator& allocator() { return _allocator; }

    /**
     * Convert a tightly-packed CPU mip image into the device tiled
     * layout (8x8-texel tiles; DXT blocks are stored row-major on
     * both sides).
     */
    static std::vector<u8> tileMipImage(emu::TexFormat format,
                                        u32 width, u32 height,
                                        const u8* src);

    /**
     * Emit the texture descriptor registers of @p desc for texture
     * unit @p unit.
     */
    void emitTextureDescriptor(u32 unit,
                               const emu::TextureDescriptor& desc);

  private:
    gpu::CommandList _commands;
    GpuMemoryAllocator _allocator;
};

} // namespace attila::gl

#endif // ATTILA_GL_DRIVER_HH

#include "gl/fixed_function.hh"

#include <sstream>

#include "sim/logging.hh"

namespace attila::gl
{

using emu::CompareFunc;

std::string
FixedFunctionKey::cacheKey() const
{
    std::ostringstream os;
    os << lighting << '.' << u32(lightMask) << '.' << colorFromArray
       << '.' << u32(textureMask) << '.';
    for (TexEnvMode m : envModes)
        os << u32(m);
    os << '.' << alphaTest << u32(alphaFunc) << '.' << fog
       << u32(fogMode);
    return os.str();
}

std::string
FixedFunctionGenerator::vertexSource(const FixedFunctionKey& key)
{
    std::ostringstream os;
    os << "!!ARBvp1.0\n";
    os << "# generated fixed-function vertex program\n";
    os << "DP4 result.position.x, program.env[" << envMvpRow0
       << "], vertex.position;\n";
    os << "DP4 result.position.y, program.env[" << envMvpRow0 + 1
       << "], vertex.position;\n";
    os << "DP4 result.position.z, program.env[" << envMvpRow0 + 2
       << "], vertex.position;\n";
    os << "DP4 result.position.w, program.env[" << envMvpRow0 + 3
       << "], vertex.position;\n";

    if (key.lighting) {
        os << "TEMP nrm, col, ndl;\n";
        // Eye-space normal (rigid modelview assumed).
        for (u32 i = 0; i < 3; ++i) {
            os << "DP3 nrm." << "xyz"[i] << ", program.env["
               << envModelViewRow0 + i << "], vertex.normal;\n";
        }
        os << "MOV col, program.env[" << envAmbient << "];\n";
        for (u32 l = 0; l < maxLights; ++l) {
            if (!(key.lightMask & (1u << l)))
                continue;
            os << "DP3 ndl.x, nrm, program.env["
               << envLightBase + 2 * l << "];\n";
            os << "MAX ndl.x, ndl.x, 0;\n";
            os << "MAD col, ndl.x, program.env["
               << envLightBase + 2 * l + 1 << "], col;\n";
        }
        os << "MOV col.w, program.env[" << envMaterialDiffuse
           << "].w;\n";
        os << "MOV_SAT result.color, col;\n";
    } else if (key.colorFromArray) {
        os << "MOV result.color, vertex.color;\n";
    } else {
        os << "MOV result.color, program.env[" << envCurrentColor
           << "];\n";
    }

    for (u32 u = 0; u < 4; ++u) {
        if (key.textureMask & (1u << u)) {
            os << "MOV result.texcoord[" << u
               << "], vertex.texcoord[" << u << "];\n";
        }
    }

    if (key.fog) {
        // Fog coordinate: eye-space distance approximated by the
        // negated eye-space z (OpenGL's common implementation).
        os << "TEMP eyez;\n";
        os << "DP4 eyez.x, program.env[" << envModelViewRow0 + 2
           << "], vertex.position;\n";
        os << "MOV result.fogcoord.x, -eyez.x;\n";
    }

    os << "END\n";
    return os.str();
}

std::string
FixedFunctionGenerator::fragmentSource(const FixedFunctionKey& key)
{
    std::ostringstream os;
    os << "!!ARBfp1.0\n";
    os << "# generated fixed-function fragment program\n";
    os << "TEMP col, tex, t;\n";
    os << "MOV col, fragment.color;\n";

    for (u32 u = 0; u < 4; ++u) {
        if (!(key.textureMask & (1u << u)))
            continue;
        os << "TEX tex, fragment.texcoord[" << u << "], texture["
           << u << "], 2D;\n";
        switch (key.envModes[u]) {
          case TexEnvMode::Modulate:
            os << "MUL col, col, tex;\n";
            break;
          case TexEnvMode::Replace:
            os << "MOV col, tex;\n";
            break;
          case TexEnvMode::Decal:
            os << "LRP col.xyz, tex.w, tex, col;\n";
            break;
          case TexEnvMode::Add:
            os << "ADD col.xyz, col, tex;\n";
            break;
        }
    }

    if (key.alphaTest && key.alphaFunc != CompareFunc::Always) {
        // Pass flag p in t.x; kill when p - 0.5 < 0.
        const std::string ref =
            "program.env[" + std::to_string(envAlphaRef) + "]";
        switch (key.alphaFunc) {
          case CompareFunc::Never:
            os << "MOV t.x, -" << ref << ".z;\nKIL t.x;\n";
            break;
          case CompareFunc::Less:
            os << "SLT t.x, col.w, " << ref << ".x;\n";
            break;
          case CompareFunc::LessEqual:
            os << "SGE t.x, " << ref << ".x, col.w;\n";
            break;
          case CompareFunc::Greater:
            os << "SLT t.x, " << ref << ".x, col.w;\n";
            break;
          case CompareFunc::GreaterEqual:
            os << "SGE t.x, col.w, " << ref << ".x;\n";
            break;
          case CompareFunc::Equal:
            os << "SGE t.x, col.w, " << ref << ".x;\n"
               << "SGE t.y, " << ref << ".x, col.w;\n"
               << "MUL t.x, t.x, t.y;\n";
            break;
          case CompareFunc::NotEqual:
            os << "SGE t.x, col.w, " << ref << ".x;\n"
               << "SGE t.y, " << ref << ".x, col.w;\n"
               << "MUL t.x, t.x, t.y;\n"
               << "SUB t.x, " << ref << ".z, t.x;\n";
            break;
          default:
            break;
        }
        if (key.alphaFunc != CompareFunc::Never) {
            os << "SUB t.x, t.x, " << ref << ".y;\n";
            os << "KIL t.x;\n";
        }
    }

    if (key.fog) {
        const std::string fp =
            "program.env[" + std::to_string(envFogParams) + "]";
        const std::string fc =
            "program.env[" + std::to_string(envFogColor) + "]";
        os << "TEMP fogf;\n";
        switch (key.fogMode) {
          case FogMode::Linear:
            // f = end*scale - d*scale.
            os << "MAD fogf.x, -fragment.fogcoord.x, " << fp
               << ".x, " << fp << ".y;\n";
            break;
          case FogMode::Exp:
            // f = 2^(-d * density * log2 e).
            os << "MUL fogf.x, fragment.fogcoord.x, " << fp
               << ".z;\n";
            os << "EX2 fogf.x, -fogf.x;\n";
            break;
          case FogMode::Exp2:
            // f = 2^(-(d * density)^2 * log2 e).
            os << "MUL fogf.x, fragment.fogcoord.x, " << fp
               << ".w;\n";
            os << "MUL fogf.x, fogf.x, fogf.x;\n";
            os << "MUL fogf.x, fogf.x, 1.442695;\n";
            os << "EX2 fogf.x, -fogf.x;\n";
            break;
        }
        os << "MOV_SAT fogf.x, fogf.x;\n";
        os << "LRP col.xyz, fogf.x, col, " << fc << ";\n";
    }

    os << "MOV result.color, col;\n";
    os << "END\n";
    return os.str();
}

emu::ShaderProgramPtr
FixedFunctionGenerator::vertexProgram(const FixedFunctionKey& key)
{
    const std::string cache_key = key.cacheKey();
    auto it = _vertexCache.find(cache_key);
    if (it != _vertexCache.end())
        return it->second;
    auto prog = _assembler.assemble(vertexSource(key));
    _vertexCache.emplace(cache_key, prog);
    return prog;
}

emu::ShaderProgramPtr
FixedFunctionGenerator::fragmentProgram(const FixedFunctionKey& key)
{
    const std::string cache_key = key.cacheKey();
    auto it = _fragmentCache.find(cache_key);
    if (it != _fragmentCache.end())
        return it->second;
    auto prog = _assembler.assemble(fragmentSource(key));
    _fragmentCache.emplace(cache_key, prog);
    return prog;
}

namespace
{

emu::Instruction
makeIns(emu::Opcode op)
{
    emu::Instruction ins;
    ins.op = op;
    return ins;
}

emu::SrcOperand
tempSrc(u32 index, char component = 0)
{
    emu::SrcOperand src;
    src.bank = emu::Bank::Temp;
    src.index = static_cast<u8>(index);
    if (component) {
        const u8 c = component == 'x' ? 0
                     : component == 'y' ? 1
                     : component == 'z' ? 2 : 3;
        src.swizzle = {c, c, c, c};
    }
    return src;
}

emu::SrcOperand
paramSrc(u32 index, char component)
{
    emu::SrcOperand src;
    src.bank = emu::Bank::Param;
    src.index = static_cast<u8>(index);
    const u8 c = component == 'x' ? 0
                 : component == 'y' ? 1
                 : component == 'z' ? 2 : 3;
    src.swizzle = {c, c, c, c};
    return src;
}

emu::DstOperand
tempDst(u32 index, u8 mask = 0xf)
{
    emu::DstOperand dst;
    dst.bank = emu::Bank::Temp;
    dst.index = static_cast<u8>(index);
    dst.writeMask = mask;
    return dst;
}

} // anonymous namespace

emu::ShaderProgramPtr
FixedFunctionGenerator::injectAlphaTest(
    const emu::ShaderProgram& program, emu::CompareFunc func)
{
    using emu::Opcode;

    auto out = std::make_shared<emu::ShaderProgram>(program);
    if (func == CompareFunc::Always)
        return out;

    if (program.numTemps + 2 > emu::regix::numTempRegs) {
        fatal("alpha test injection: fragment program uses too many"
              " temporaries");
    }
    const u32 colTemp = program.numTemps;
    const u32 flagTemp = program.numTemps + 1;

    // Reroute result.color writes through a temporary.
    for (emu::Instruction& ins : out->code) {
        if (emu::opcodeInfo(ins.op).hasDst &&
            ins.dst.bank == emu::Bank::Output &&
            ins.dst.index == emu::regix::foutColor) {
            ins.dst.bank = emu::Bank::Temp;
            ins.dst.index = static_cast<u8>(colTemp);
        }
    }

    // Build the test sequence before END.
    std::vector<emu::Instruction> tail;
    const u32 refSlot = envAlphaRef;
    auto alpha = tempSrc(colTemp, 'w');
    auto ref = paramSrc(refSlot, 'x');
    auto half = paramSrc(refSlot, 'y');
    auto one = paramSrc(refSlot, 'z');

    auto push2 = [&](Opcode op, const emu::SrcOperand& a,
                     const emu::SrcOperand& b, u8 mask) {
        emu::Instruction ins = makeIns(op);
        ins.dst = tempDst(flagTemp, mask);
        ins.src[0] = a;
        ins.src[1] = b;
        tail.push_back(ins);
    };

    bool needKilOnFlag = true;
    switch (func) {
      case CompareFunc::Never: {
        emu::Instruction kil = makeIns(Opcode::KIL);
        emu::SrcOperand neg = one;
        neg.negate = true;
        kil.src[0] = neg;
        tail.push_back(kil);
        needKilOnFlag = false;
        break;
      }
      case CompareFunc::Less:
        push2(Opcode::SLT, alpha, ref, 0x1);
        break;
      case CompareFunc::LessEqual:
        push2(Opcode::SGE, ref, alpha, 0x1);
        break;
      case CompareFunc::Greater:
        push2(Opcode::SLT, ref, alpha, 0x1);
        break;
      case CompareFunc::GreaterEqual:
        push2(Opcode::SGE, alpha, ref, 0x1);
        break;
      case CompareFunc::Equal:
        push2(Opcode::SGE, alpha, ref, 0x1);
        push2(Opcode::SGE, ref, alpha, 0x2);
        push2(Opcode::MUL, tempSrc(flagTemp, 'x'),
              tempSrc(flagTemp, 'y'), 0x1);
        break;
      case CompareFunc::NotEqual:
        push2(Opcode::SGE, alpha, ref, 0x1);
        push2(Opcode::SGE, ref, alpha, 0x2);
        push2(Opcode::MUL, tempSrc(flagTemp, 'x'),
              tempSrc(flagTemp, 'y'), 0x1);
        push2(Opcode::SUB, one, tempSrc(flagTemp, 'x'), 0x1);
        break;
      default:
        break;
    }

    if (needKilOnFlag) {
        push2(Opcode::SUB, tempSrc(flagTemp, 'x'), half, 0x1);
        emu::Instruction kil = makeIns(Opcode::KIL);
        kil.src[0] = tempSrc(flagTemp, 'x');
        tail.push_back(kil);
    }

    // MOV result.color, colTemp.
    emu::Instruction mov = makeIns(Opcode::MOV);
    mov.dst.bank = emu::Bank::Output;
    mov.dst.index = emu::regix::foutColor;
    mov.src[0] = tempSrc(colTemp);
    tail.push_back(mov);

    // Splice before END.
    if (out->code.empty() ||
        out->code.back().op != Opcode::END) {
        fatal("alpha test injection: program has no END");
    }
    out->code.pop_back();
    for (const auto& ins : tail)
        out->code.push_back(ins);
    out->code.push_back(makeIns(Opcode::END));

    emu::analyzeProgram(*out);
    return out;
}

} // namespace attila::gl

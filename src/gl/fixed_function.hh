/**
 * @file
 * Fixed-function pipeline emulation through driver-generated shader
 * programs (paper §4, partly based on Igesund & Stavang).
 *
 * ATTILA has no fixed-function transform/lighting or texture-combine
 * hardware, and no alpha test or fog units either (paper §2.2): the
 * library synthesizes ARB-style programs implementing the requested
 * legacy state, and *injects* alpha test (KIL-based) into
 * user-provided fragment programs when the API enables it.
 *
 * Reserved constant (program.env) conventions:
 *   env[0..3]   MVP matrix rows
 *   env[4..7]   modelview matrix rows
 *   env[8+2i]   light i direction (eye space, normalized, to light)
 *   env[9+2i]   light i diffuse * material diffuse
 *   env[16]     accumulated ambient (scene+lights) * material
 *   env[17]     material diffuse (alpha source)
 *   env[18]     current color (no color array)
 *   env[125]    fog parameters (scale, end*scale, density*log2e,
 *               density)
 *   env[126]    fog color
 *   env[127]    (alphaRef, 0.5, 1.0, 0)
 */

#ifndef ATTILA_GL_FIXED_FUNCTION_HH
#define ATTILA_GL_FIXED_FUNCTION_HH

#include <array>
#include <map>
#include <string>

#include "emu/shader_isa.hh"
#include "gl/api_types.hh"

namespace attila::gl
{

/** Reserved env slots. */
constexpr u32 envMvpRow0 = 0;
constexpr u32 envModelViewRow0 = 4;
constexpr u32 envLightBase = 8;
constexpr u32 envAmbient = 16;
constexpr u32 envMaterialDiffuse = 17;
constexpr u32 envCurrentColor = 18;
constexpr u32 envFogParams = 125;
constexpr u32 envFogColor = 126;
constexpr u32 envAlphaRef = 127;

/** Fixed-function state relevant to program generation. */
struct FixedFunctionKey
{
    bool lighting = false;
    u8 lightMask = 0;     ///< Enabled lights (bit per light).
    bool colorFromArray = true;
    u8 textureMask = 0;   ///< Enabled texture units (0..3).
    std::array<TexEnvMode, 4> envModes{};
    bool alphaTest = false;
    emu::CompareFunc alphaFunc = emu::CompareFunc::Always;
    bool fog = false;
    FogMode fogMode = FogMode::Linear;

    std::string cacheKey() const;
};

/** Generates and caches fixed-function shader programs. */
class FixedFunctionGenerator
{
  public:
    /** The vertex program implementing @p key. */
    emu::ShaderProgramPtr vertexProgram(const FixedFunctionKey& key);

    /** The fragment program implementing @p key. */
    emu::ShaderProgramPtr
    fragmentProgram(const FixedFunctionKey& key);

    /**
     * Clone @p program with a KIL-based alpha test appended
     * (and result.color rerouted through a temporary).  The test
     * reads its reference from env[127].x.
     */
    static emu::ShaderProgramPtr injectAlphaTest(
        const emu::ShaderProgram& program, emu::CompareFunc func);

    /** Generated program source (for tests / debugging). */
    static std::string vertexSource(const FixedFunctionKey& key);
    static std::string fragmentSource(const FixedFunctionKey& key);

  private:
    std::map<std::string, emu::ShaderProgramPtr> _vertexCache;
    std::map<std::string, emu::ShaderProgramPtr> _fragmentCache;
    emu::ShaderAssembler _assembler;
};

} // namespace attila::gl

#endif // ATTILA_GL_FIXED_FUNCTION_HH

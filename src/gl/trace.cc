#include "gl/trace.hh"

#include "gl/context.hh"
#include "sim/logging.hh"

namespace attila::gl
{

namespace
{

constexpr char traceMagic[8] = {'A', 'G', 'L', 'T', 'R', 'C', '0',
                                '1'};

template <typename T>
void
writeRaw(std::ofstream& out, const T& v)
{
    out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T
readRaw(std::ifstream& in)
{
    T v{};
    in.read(reinterpret_cast<char*>(&v), sizeof(T));
    return v;
}

} // anonymous namespace

TraceRecorder::TraceRecorder(const std::string& path)
    : _out(path, std::ios::binary)
{
    if (!_out)
        fatal("trace recorder: cannot open '", path, "'");
    _out.write(traceMagic, sizeof(traceMagic));
}

TraceRecorder::~TraceRecorder()
{
    _out.flush();
}

void
TraceRecorder::record(TraceOp op, std::initializer_list<f64> scalars,
                      const u8* blob, std::size_t blob_size,
                      const std::string& text)
{
    writeRaw(_out, static_cast<u16>(op));
    writeRaw(_out, static_cast<u8>(scalars.size()));
    for (f64 s : scalars)
        writeRaw(_out, s);
    writeRaw(_out, static_cast<u32>(blob_size));
    if (blob_size)
        _out.write(reinterpret_cast<const char*>(blob),
                   static_cast<std::streamsize>(blob_size));
    writeRaw(_out, static_cast<u32>(text.size()));
    if (!text.empty())
        _out.write(text.data(),
                   static_cast<std::streamsize>(text.size()));
    ++_records;
    if (op == TraceOp::SwapBuffers)
        ++_frames;
}

TracePlayer::TracePlayer(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("trace player: cannot open '", path, "'");
    char magic[8];
    in.read(magic, 8);
    if (!in || std::memcmp(magic, traceMagic, 8) != 0)
        fatal("trace player: '", path, "' is not an AGL trace");

    while (true) {
        const u16 op = readRaw<u16>(in);
        if (!in)
            break;
        TraceRecord rec;
        rec.op = static_cast<TraceOp>(op);
        const u8 nscalars = readRaw<u8>(in);
        rec.scalars.resize(nscalars);
        for (u8 i = 0; i < nscalars; ++i)
            rec.scalars[i] = readRaw<f64>(in);
        const u32 blob = readRaw<u32>(in);
        rec.blob.resize(blob);
        if (blob) {
            in.read(reinterpret_cast<char*>(rec.blob.data()), blob);
        }
        const u32 text = readRaw<u32>(in);
        rec.text.resize(text);
        if (text)
            in.read(rec.text.data(), text);
        if (!in)
            fatal("trace player: truncated record in '", path, "'");
        if (rec.op == TraceOp::SwapBuffers)
            ++_frames;
        _records.push_back(std::move(rec));
    }
}

void
TracePlayer::play(Context& ctx, u32 first_frame,
                  u32 last_frame) const
{
    u32 frame = 0;
    for (const TraceRecord& rec : _records) {
        if (frame >= last_frame)
            return;
        const bool hotStart = frame < first_frame;
        if (hotStart) {
            // Hot start (paper §4): skip draw commands, clears and
            // swaps; apply state changes and buffer writes only.
            switch (rec.op) {
              case TraceOp::DrawArrays:
              case TraceOp::DrawElements:
              case TraceOp::Clear:
                continue;
              case TraceOp::SwapBuffers:
                ++frame;
                continue;
              default:
                break;
            }
        }
        if (rec.op == TraceOp::SwapBuffers)
            ++frame;
        apply(ctx, rec);
    }
}

void
TracePlayer::apply(Context& ctx, const TraceRecord& rec) const
{
    const auto& s = rec.scalars;
    auto u = [&](u32 i) { return static_cast<u32>(s.at(i)); };
    auto f = [&](u32 i) { return static_cast<f32>(s.at(i)); };
    auto vec = [&](u32 i) {
        return emu::Vec4(f(i), f(i + 1), f(i + 2), f(i + 3));
    };

    switch (rec.op) {
      case TraceOp::ClearColorVal:
        ctx.clearColor(f(0), f(1), f(2), f(3));
        break;
      case TraceOp::ClearDepthVal:
        ctx.clearDepth(f(0));
        break;
      case TraceOp::ClearStencilVal:
        ctx.clearStencil(static_cast<u8>(u(0)));
        break;
      case TraceOp::Clear:
        ctx.clear(u(0));
        break;
      case TraceOp::SwapBuffers:
        ctx.swapBuffers();
        break;
      case TraceOp::Viewport:
        ctx.viewport(static_cast<s32>(s.at(0)),
                     static_cast<s32>(s.at(1)), u(2), u(3));
        break;
      case TraceOp::Enable:
        ctx.enable(static_cast<Cap>(u(0)));
        break;
      case TraceOp::Disable:
        ctx.disable(static_cast<Cap>(u(0)));
        break;
      case TraceOp::DepthFunc:
        ctx.depthFunc(static_cast<emu::CompareFunc>(u(0)));
        break;
      case TraceOp::DepthMask:
        ctx.depthMask(u(0) != 0);
        break;
      case TraceOp::StencilFuncCall:
        ctx.stencilFunc(static_cast<emu::CompareFunc>(u(0)),
                        static_cast<u8>(u(1)),
                        static_cast<u8>(u(2)));
        break;
      case TraceOp::StencilOpCall:
        ctx.stencilOp(static_cast<emu::StencilOp>(u(0)),
                      static_cast<emu::StencilOp>(u(1)),
                      static_cast<emu::StencilOp>(u(2)));
        break;
      case TraceOp::StencilMask:
        ctx.stencilMask(static_cast<u8>(u(0)));
        break;
      case TraceOp::StencilFuncBackCall:
        ctx.stencilFuncBack(static_cast<emu::CompareFunc>(u(0)),
                            static_cast<u8>(u(1)),
                            static_cast<u8>(u(2)));
        break;
      case TraceOp::StencilOpBackCall:
        ctx.stencilOpBack(static_cast<emu::StencilOp>(u(0)),
                          static_cast<emu::StencilOp>(u(1)),
                          static_cast<emu::StencilOp>(u(2)));
        break;
      case TraceOp::BlendFuncCall:
        ctx.blendFunc(static_cast<emu::BlendFactor>(u(0)),
                      static_cast<emu::BlendFactor>(u(1)));
        break;
      case TraceOp::BlendEquationCall:
        ctx.blendEquation(static_cast<emu::BlendEquation>(u(0)));
        break;
      case TraceOp::BlendColorCall:
        ctx.blendColor(f(0), f(1), f(2), f(3));
        break;
      case TraceOp::ColorMask:
        ctx.colorMask(u(0) != 0, u(1) != 0, u(2) != 0, u(3) != 0);
        break;
      case TraceOp::AlphaFuncCall:
        ctx.alphaFunc(static_cast<emu::CompareFunc>(u(0)), f(1));
        break;
      case TraceOp::Scissor:
        ctx.scissor(static_cast<s32>(s.at(0)),
                    static_cast<s32>(s.at(1)), u(2), u(3));
        break;
      case TraceOp::CullFaceMode:
        ctx.cullFace(static_cast<gpu::CullMode>(u(0)));
        break;
      case TraceOp::FrontFace:
        ctx.frontFaceCcw(u(0) != 0);
        break;
      case TraceOp::MatrixModeCall:
        ctx.matrixMode(static_cast<MatrixMode>(u(0)));
        break;
      case TraceOp::LoadIdentity:
        ctx.loadIdentity();
        break;
      case TraceOp::LoadMatrix:
      case TraceOp::MultMatrix: {
        emu::Mat4 m;
        for (u32 i = 0; i < 4; ++i)
            for (u32 j = 0; j < 4; ++j)
                m.m[i][j] = f(i * 4 + j);
        if (rec.op == TraceOp::LoadMatrix)
            ctx.loadMatrix(m);
        else
            ctx.multMatrix(m);
        break;
      }
      case TraceOp::PushMatrix:
        ctx.pushMatrix();
        break;
      case TraceOp::PopMatrix:
        ctx.popMatrix();
        break;
      case TraceOp::GenBuffer:
        ctx.genBuffer();
        break;
      case TraceOp::BufferData:
        ctx.bufferData(u(0), rec.blob);
        break;
      case TraceOp::DeleteBuffer:
        ctx.deleteBuffer(u(0));
        break;
      case TraceOp::AttribPointer:
        ctx.attribPointer(u(0), u(1),
                          static_cast<gpu::StreamFormat>(u(2)),
                          u(3), u(4));
        break;
      case TraceOp::DisableAttrib:
        ctx.disableAttrib(u(0));
        break;
      case TraceOp::GenTexture:
        ctx.genTexture();
        break;
      case TraceOp::BindTexture:
        ctx.bindTexture(u(0));
        break;
      case TraceOp::ActiveTexture:
        ctx.activeTexture(u(0));
        break;
      case TraceOp::TexImage2D:
        ctx.texImage2D(u(0), static_cast<emu::TexFormat>(u(1)),
                       u(2), u(3), rec.blob);
        break;
      case TraceOp::TexImageCube:
        ctx.texImageCube(u(0), u(1),
                         static_cast<emu::TexFormat>(u(2)), u(3),
                         u(4), rec.blob);
        break;
      case TraceOp::TexFilter:
        ctx.texFilter(static_cast<emu::MinFilter>(u(0)),
                      u(1) != 0);
        break;
      case TraceOp::TexWrap:
        ctx.texWrap(static_cast<emu::WrapMode>(u(0)),
                    static_cast<emu::WrapMode>(u(1)));
        break;
      case TraceOp::TexMaxAniso:
        ctx.texMaxAnisotropy(u(0));
        break;
      case TraceOp::GenerateMipmaps:
        ctx.generateMipmaps();
        break;
      case TraceOp::TexEnv:
        ctx.texEnv(static_cast<TexEnvMode>(u(0)));
        break;
      case TraceOp::DeleteTexture:
        ctx.deleteTexture(u(0));
        break;
      case TraceOp::GenProgram:
        ctx.genProgram();
        break;
      case TraceOp::ProgramString:
        ctx.programString(u(0), rec.text);
        break;
      case TraceOp::BindProgramVertex:
        ctx.bindProgramVertex(u(0));
        break;
      case TraceOp::BindProgramFragment:
        ctx.bindProgramFragment(u(0));
        break;
      case TraceOp::ProgramEnvParam:
        ctx.programEnvParam(static_cast<emu::ShaderTarget>(u(0)),
                            u(1), vec(2));
        break;
      case TraceOp::ProgramLocalParam:
        ctx.programLocalParam(static_cast<emu::ShaderTarget>(u(0)),
                              u(1), vec(2));
        break;
      case TraceOp::DrawArrays:
        ctx.drawArrays(static_cast<gpu::Primitive>(u(0)), u(1),
                       u(2));
        break;
      case TraceOp::DrawElements:
        ctx.drawElements(static_cast<gpu::Primitive>(u(0)), u(1),
                         u(2), u(3), u(4) != 0);
        break;
      case TraceOp::Light: {
        LightState light;
        light.enabled = u(1) != 0;
        light.direction = vec(2);
        light.diffuse = vec(6);
        light.ambient = vec(10);
        ctx.light(u(0), light);
        break;
      }
      case TraceOp::Material: {
        MaterialState material;
        material.diffuse = vec(0);
        material.ambient = vec(4);
        ctx.material(material);
        break;
      }
      case TraceOp::SceneAmbient:
        ctx.sceneAmbient(f(0), f(1), f(2), f(3));
        break;
      case TraceOp::FogCall: {
        FogState fogState;
        fogState.mode = static_cast<FogMode>(u(0));
        fogState.color = vec(1);
        fogState.density = f(5);
        fogState.start = f(6);
        fogState.end = f(7);
        ctx.fog(fogState);
        break;
      }
      case TraceOp::Color:
        ctx.color(f(0), f(1), f(2), f(3));
        break;
    }
}

} // namespace attila::gl

/**
 * @file
 * Trace capture and replay (paper §4).
 *
 * TraceRecorder plays the GLInterceptor role: attached to a Context,
 * it records every API call with all parameter values and associated
 * buffer/texture data into a trace file.  TracePlayer (the GLPlayer
 * role) reproduces the captured trace into any Context — for
 * validation, or to feed the simulator.
 *
 * Hot start: because frames are independent, the player can start at
 * any frame; draw calls, clears and swaps of earlier frames are
 * skipped while state changes and buffer/texture uploads are still
 * applied (paper §4).  Traces carry no timestamps, isolating the
 * simulator from CPU-side effects.
 */

#ifndef ATTILA_GL_TRACE_HH
#define ATTILA_GL_TRACE_HH

#include <fstream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace attila::gl
{

class Context;

/** Recorded call identifiers. */
enum class TraceOp : u16
{
    ClearColorVal, ClearDepthVal, ClearStencilVal, Clear,
    SwapBuffers, Viewport, Enable, Disable, DepthFunc, DepthMask,
    StencilFuncCall, StencilOpCall, StencilMask, BlendFuncCall,
    BlendEquationCall, BlendColorCall, ColorMask, AlphaFuncCall,
    Scissor, CullFaceMode, FrontFace, MatrixModeCall, LoadIdentity,
    LoadMatrix, MultMatrix, PushMatrix, PopMatrix, GenBuffer,
    BufferData, DeleteBuffer, AttribPointer, DisableAttrib,
    GenTexture, BindTexture, ActiveTexture, TexImage2D,
    TexImageCube, TexFilter, TexWrap, TexMaxAniso, GenerateMipmaps,
    TexEnv, DeleteTexture, GenProgram, ProgramString,
    BindProgramVertex, BindProgramFragment, ProgramEnvParam,
    ProgramLocalParam, DrawArrays, DrawElements, Light, Material,
    SceneAmbient, FogCall, Color, StencilFuncBackCall,
    StencilOpBackCall,
};

/** One decoded trace record. */
struct TraceRecord
{
    TraceOp op;
    std::vector<f64> scalars;
    std::vector<u8> blob;
    std::string text;
};

/** Records API calls into a trace file (GLInterceptor). */
class TraceRecorder
{
  public:
    explicit TraceRecorder(const std::string& path);
    ~TraceRecorder();

    /** Record one call. */
    void record(TraceOp op, std::initializer_list<f64> scalars = {},
                const u8* blob = nullptr, std::size_t blob_size = 0,
                const std::string& text = {});

    u64 recordCount() const { return _records; }
    u32 frameCount() const { return _frames; }

  private:
    std::ofstream _out;
    u64 _records = 0;
    u32 _frames = 0;
};

/** Replays a trace file into a Context (GLPlayer). */
class TracePlayer
{
  public:
    /** Parse the trace at @p path; throws FatalError on errors. */
    explicit TracePlayer(const std::string& path);

    /** Number of frames (SwapBuffers records) in the trace. */
    u32 frameCount() const { return _frames; }

    const std::vector<TraceRecord>& records() const
    {
        return _records;
    }

    /**
     * Replay frames [@p first_frame, @p last_frame) into @p ctx.
     * Earlier frames are hot-started: draws, clears and swaps are
     * skipped, state changes and uploads still apply.
     */
    void play(Context& ctx, u32 first_frame = 0,
              u32 last_frame = ~0u) const;

  private:
    void apply(Context& ctx, const TraceRecord& rec) const;

    std::vector<TraceRecord> _records;
    u32 _frames = 0;
};

} // namespace attila::gl

#endif // ATTILA_GL_TRACE_HH

#include "gpu/cache.hh"

#include <algorithm>
#include <bit>

namespace attila::gpu
{

FbCache::FbCache(std::string name, const Config& config,
                 sim::Statistic& hits, sim::Statistic& misses,
                 LineBacking* backing)
    : _name(std::move(name)),
      _config(config),
      _backing(backing ? backing : &_defaultBacking),
      _hits(hits),
      _misses(misses)
{
    const u32 lines = (_config.sizeKB * 1024) / _config.lineBytes;
    if (lines == 0 || _config.ways == 0 ||
        lines % _config.ways != 0) {
        fatal("cache '", _name, "': bad geometry (", lines,
              " lines, ", _config.ways, " ways)");
    }
    if (_config.maxOutstanding == 0 || _config.maxOutstanding > 32) {
        fatal("cache '", _name, "': maxOutstanding ",
              _config.maxOutstanding, " outside [1, 32]");
    }
    _sets = lines / _config.ways;
    _lineCount = lines;

    _pow2 = std::has_single_bit(_config.lineBytes) &&
            std::has_single_bit(_sets);
    if (_pow2) {
        _lineMask = _config.lineBytes - 1;
        _lineShift =
            static_cast<u32>(std::countr_zero(_config.lineBytes));
        _setMask = _sets - 1;
    }

    _state.assign(lines, LineState::Invalid);
    _dirty.assign(lines, 0);
    _addr.assign(lines, 0);
    _lastUse.assign(lines, 0);
    _arena.assign(static_cast<std::size_t>(lines) *
                      _config.lineBytes,
                  0);

    _slots.resize(_config.maxOutstanding);
    _freeSlots = _config.maxOutstanding == 32
                     ? ~0u
                     : (1u << _config.maxOutstanding) - 1;
    const u32 ordCap = std::bit_ceil(_config.maxOutstanding);
    _order.assign(ordCap, 0);
    _ordMask = ordCap - 1;

    _backing->setLineBytes(_config.lineBytes);
    _defaultBacking.setLineBytes(_config.lineBytes);
    _hits.setImmediate(!_config.fastPath);
    _misses.setImmediate(!_config.fastPath);
}

s32
FbCache::findLine(u32 lineAddr)
{
    const u32 base = setOf(lineAddr) * _config.ways;
    for (u32 w = 0; w < _config.ways; ++w) {
        const u32 idx = base + w;
        if (_state[idx] != LineState::Invalid &&
            _addr[idx] == lineAddr) {
            return static_cast<s32>(idx);
        }
    }
    return -1;
}

s32
FbCache::pickVictim(u32 set)
{
    s32 best = -1;
    u64 bestUse = ~0ull;
    for (u32 w = 0; w < _config.ways; ++w) {
        const u32 idx = set * _config.ways + w;
        if (_state[idx] == LineState::Filling)
            continue;
        if (_state[idx] == LineState::Invalid)
            return static_cast<s32>(idx);
        if (_lastUse[idx] < bestUse) {
            bestUse = _lastUse[idx];
            best = static_cast<s32>(idx);
        }
    }
    return best;
}

MemTransactionPtr
FbCache::makeTransaction()
{
    if (_config.fastPath)
        return _txnPool.acquire();
    return std::make_shared<MemTransaction>();
}

u8
FbCache::allocFillSlot()
{
    const u32 slot =
        static_cast<u32>(std::countr_zero(_freeSlots));
    _freeSlots &= _freeSlots - 1;
    return static_cast<u8>(slot);
}

void
FbCache::removeFillAt(u32 orderPos)
{
    for (u32 j = orderPos; j + 1 < _ordCount; ++j) {
        _order[(_ordHead + j) & _ordMask] =
            _order[(_ordHead + j + 1) & _ordMask];
    }
    --_ordCount;
}

void
FbCache::queueWriteback(Cycle, u32 lineIndex)
{
    // Encode straight into the transaction's (pooled) payload; an
    // intermediate staging buffer would copy the line twice.
    MemTransactionPtr txn = makeTransaction();
    txn->isRead = false;
    txn->address = _addr[lineIndex];
    txn->data.resize(_config.lineBytes);
    const u32 size = _backing->writeback(
        _addr[lineIndex], lineData(lineIndex), txn->data.data());
    txn->data.resize(size);
    txn->size = size;
    txn->tag = (static_cast<u64>(_addr[lineIndex]) << 1) | 1;

    WbEntry entry;
    entry.addr = _addr[lineIndex];
    entry.txn = std::move(txn);
    _writebacks.push_back(std::move(entry));
    ++_wbLive;
}

CacheAccess
FbCache::access(Cycle cycle, u32 addr, bool forWrite)
{
    if (cycle != _currentCycle) {
        _currentCycle = cycle;
        _accessesThisCycle = 0;
    }
    if (_accessesThisCycle >= _config.ports)
        return CacheAccess::Blocked;

    const u32 lineAddr = lineAddrOf(addr);
    const s32 idx = findLine(lineAddr);
    if (idx >= 0) {
        if (_state[idx] == LineState::Filling)
            return CacheAccess::Miss; // Fill under way.
        ++_accessesThisCycle;
        _lastUse[idx] = ++_useCounter;
        if (forWrite)
            _dirty[idx] = 1;
        _hits.inc();
        if constexpr (sim::kEventTraceCompiled) {
            if (_eventTrace) [[unlikely]] {
                _eventTrace->emit(sim::EventKind::CacheHit, cycle,
                                  _eventTraceId, addr);
            }
        }
        return CacheAccess::Hit;
    }

    // No separate pending-fill search is needed: a live fill keeps
    // its line in Filling state with this address, so findLine()
    // above already reported it as a Miss.  (Cancelled fills have
    // no line and must not satisfy a fresh access.)

    if (_freeSlots == 0)
        return CacheAccess::Blocked; // maxOutstanding reached.

    const u32 set = setOf(lineAddr);
    const s32 victimIdx = pickVictim(set);
    if (victimIdx < 0)
        return CacheAccess::Blocked;

    const u32 victim = static_cast<u32>(victimIdx);
    if (_state[victim] == LineState::Valid && _dirty[victim])
        queueWriteback(cycle, victim);

    _state[victim] = LineState::Filling;
    _dirty[victim] = 0;
    _addr[victim] = lineAddr;
    _lastUse[victim] = ++_useCounter;

    const u8 slotIdx = allocFillSlot();
    FillSlot& slot = _slots[slotIdx];
    slot.addr = lineAddr;
    slot.lineIndex = victim;
    slot.localOnly = _backing->fillSize(lineAddr) == 0;
    slot.issued = false;
    slot.cancelled = false;
    _order[(_ordHead + _ordCount) & _ordMask] = slotIdx;
    ++_ordCount;
    _misses.inc();
    if constexpr (sim::kEventTraceCompiled) {
        if (_eventTrace) [[unlikely]] {
            _eventTrace->emit(sim::EventKind::CacheMiss, cycle,
                              _eventTraceId, addr);
        }
    }
    return CacheAccess::Miss;
}

u8*
FbCache::wordPtr(u32 addr)
{
    const u32 lineAddr = lineAddrOf(addr);
    const s32 idx = findLine(lineAddr);
    if (idx < 0 || _state[idx] != LineState::Valid)
        panic("cache '", _name, "': wordPtr on a non-resident line");
    return lineData(static_cast<u32>(idx)) + (addr - lineAddr);
}

void
FbCache::markDirty(u32 addr)
{
    const u32 lineAddr = lineAddrOf(addr);
    const s32 idx = findLine(lineAddr);
    if (idx < 0 || _state[idx] != LineState::Valid)
        panic("cache '", _name,
              "': markDirty on a non-resident line");
    _dirty[idx] = 1;
}

void
FbCache::clock(Cycle cycle, MemPort& port, MemClient client)
{
    // Service local (no memory traffic) fills immediately,
    // compacting the issue-order ring in place.
    if (_ordCount != 0) {
        const u32 n = _ordCount;
        u32 kept = 0;
        for (u32 i = 0; i < n; ++i) {
            const u8 slotIdx = _order[(_ordHead + i) & _ordMask];
            FillSlot& slot = _slots[slotIdx];
            if (slot.localOnly && !slot.issued) {
                _backing->fillLocal(slot.addr,
                                    lineData(slot.lineIndex));
                _state[slot.lineIndex] = LineState::Valid;
                _freeSlots |= 1u << slotIdx;
            } else {
                _order[(_ordHead + kept) & _ordMask] = slotIdx;
                ++kept;
            }
        }
        _ordCount = kept;
    }

    // Issue writebacks first (they free memory ordering hazards:
    // a fill of the same line must see the written data).
    for (u32 i = _wbHead; i < _writebacks.size(); ++i) {
        WbEntry& wb = _writebacks[i];
        if (wb.issued || wb.done)
            continue;
        if (!port.canRequest(cycle))
            break;
        wb.txn->client = client;
        port.request(cycle, wb.txn);
        wb.issued = true;
    }

    // Issue fills, but never while a writeback of the same address
    // is still outstanding.
    for (u32 i = 0; i < _ordCount; ++i) {
        FillSlot& slot = _slots[_order[(_ordHead + i) & _ordMask]];
        if (slot.issued)
            continue;
        bool conflict = false;
        for (u32 w = _wbHead; w < _writebacks.size(); ++w) {
            if (!_writebacks[w].done &&
                _writebacks[w].addr == slot.addr) {
                conflict = true;
            }
        }
        if (conflict)
            continue;
        if (!port.canRequest(cycle))
            break;
        MemTransactionPtr txn = makeTransaction();
        txn->isRead = true;
        txn->address = slot.addr;
        txn->size = _backing->fillSize(slot.addr);
        txn->client = client;
        txn->tag = static_cast<u64>(slot.addr) << 1;
        port.request(cycle, txn);
        slot.issued = true;
    }

    // Handle responses.
    while (port.hasResponse()) {
        MemTransactionPtr txn = port.popResponse(cycle);
        const u32 addr = static_cast<u32>(txn->tag >> 1);
        if (!txn->isRead) {
            // Writeback acknowledged: tombstone the entry and let
            // the head cursor drain over completed ones.
            for (u32 i = _wbHead; i < _writebacks.size(); ++i) {
                WbEntry& wb = _writebacks[i];
                if (wb.issued && !wb.done && wb.addr == addr) {
                    wb.done = true;
                    wb.txn.reset();
                    --_wbLive;
                    break;
                }
            }
            while (_wbHead < _writebacks.size() &&
                   _writebacks[_wbHead].done) {
                ++_wbHead;
            }
            if (_wbLive == 0) {
                _writebacks.clear();
                _wbHead = 0;
            }
            continue;
        }
        // Fill responses match in issue (FIFO) order: at most one
        // live fill per address exists, and a cancelled fill for
        // the same address always precedes it in the ring.
        bool matched = false;
        for (u32 i = 0; i < _ordCount; ++i) {
            const u8 slotIdx = _order[(_ordHead + i) & _ordMask];
            FillSlot& slot = _slots[slotIdx];
            if (!slot.issued || slot.addr != addr)
                continue;
            if (slot.cancelled) {
                --_cancelled; // Stale data discarded.
            } else {
                _backing->fillFromMemory(addr, txn->data.data(),
                                         txn->size,
                                         lineData(slot.lineIndex));
                _state[slot.lineIndex] = LineState::Valid;
            }
            removeFillAt(i);
            _freeSlots |= 1u << slotIdx;
            matched = true;
            break;
        }
        if (!matched)
            panic("cache '", _name,
                  "': fill response with no pending fill");
    }

    commitStats();
}

bool
FbCache::flushStep(Cycle cycle, MemPort& port, MemClient client)
{
    // Queue writebacks for dirty lines, a few per cycle.
    u32 queued = 0;
    while (_flushScan < _lineCount && queued < 4) {
        if (_state[_flushScan] == LineState::Valid &&
            _dirty[_flushScan]) {
            queueWriteback(cycle, _flushScan);
            _dirty[_flushScan] = 0;
            ++queued;
        }
        ++_flushScan;
    }

    clock(cycle, port, client);

    if (_flushScan >= _lineCount && idle()) {
        _flushScan = 0;
        return true;
    }
    return false;
}

void
FbCache::invalidateAll()
{
    // Drop unissued fills; flag issued ones so their response is
    // discarded rather than resurrecting a stale line.
    const u32 n = _ordCount;
    u32 kept = 0;
    for (u32 i = 0; i < n; ++i) {
        const u8 slotIdx = _order[(_ordHead + i) & _ordMask];
        FillSlot& slot = _slots[slotIdx];
        if (slot.issued) {
            if (!slot.cancelled) {
                slot.cancelled = true;
                ++_cancelled;
            }
            _order[(_ordHead + kept) & _ordMask] = slotIdx;
            ++kept;
        } else {
            _freeSlots |= 1u << slotIdx;
        }
    }
    _ordCount = kept;

    std::fill(_state.begin(), _state.end(), LineState::Invalid);
    std::fill(_dirty.begin(), _dirty.end(), u8{0});
}

bool
FbCache::idle() const
{
    return _ordCount == 0 && _wbLive == 0;
}

void
FbCache::commitStats()
{
    _hits.commit();
    _misses.commit();
}

} // namespace attila::gpu

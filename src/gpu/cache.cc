#include "gpu/cache.hh"

#include <algorithm>

namespace attila::gpu
{

FbCache::FbCache(std::string name, const Config& config,
                 sim::Statistic& hits, sim::Statistic& misses,
                 LineBacking* backing)
    : _name(std::move(name)),
      _config(config),
      _backing(backing ? backing : &_defaultBacking),
      _hits(hits),
      _misses(misses)
{
    const u32 lines = (_config.sizeKB * 1024) / _config.lineBytes;
    if (lines == 0 || _config.ways == 0 ||
        lines % _config.ways != 0) {
        fatal("cache '", _name, "': bad geometry (", lines,
              " lines, ", _config.ways, " ways)");
    }
    _sets = lines / _config.ways;
    _lines.resize(lines);
    for (Line& line : _lines)
        line.data.resize(_config.lineBytes, 0);
    _backing->setLineBytes(_config.lineBytes);
    _defaultBacking.setLineBytes(_config.lineBytes);
}

u32
FbCache::setOf(u32 lineAddr) const
{
    return (lineAddr / _config.lineBytes) % _sets;
}

FbCache::Line*
FbCache::findLine(u32 lineAddr)
{
    const u32 set = setOf(lineAddr);
    for (u32 w = 0; w < _config.ways; ++w) {
        Line& line = _lines[set * _config.ways + w];
        if (line.state != LineState::Invalid &&
            line.addr == lineAddr) {
            return &line;
        }
    }
    return nullptr;
}

s32
FbCache::pickVictim(u32 set)
{
    s32 best = -1;
    u64 bestUse = ~0ull;
    for (u32 w = 0; w < _config.ways; ++w) {
        const u32 idx = set * _config.ways + w;
        const Line& line = _lines[idx];
        if (line.state == LineState::Filling)
            continue;
        if (line.state == LineState::Invalid)
            return static_cast<s32>(idx);
        if (line.lastUse < bestUse) {
            bestUse = line.lastUse;
            best = static_cast<s32>(idx);
        }
    }
    return best;
}

bool
FbCache::fillPendingFor(u32 lineAddr) const
{
    for (const PendingFill& fill : _fills) {
        if (fill.addr == lineAddr)
            return true;
    }
    return false;
}

CacheAccess
FbCache::access(Cycle cycle, u32 addr, bool forWrite)
{
    if (cycle != _currentCycle) {
        _currentCycle = cycle;
        _accessesThisCycle = 0;
    }
    if (_accessesThisCycle >= _config.ports)
        return CacheAccess::Blocked;

    const u32 lineAddr = addr - addr % _config.lineBytes;
    if (Line* line = findLine(lineAddr)) {
        if (line->state == LineState::Filling)
            return CacheAccess::Miss; // Fill under way.
        ++_accessesThisCycle;
        line->lastUse = ++_useCounter;
        if (forWrite)
            line->dirty = true;
        _hits.inc();
        return CacheAccess::Hit;
    }

    if (fillPendingFor(lineAddr))
        return CacheAccess::Miss;

    if (_fills.size() >= _config.maxOutstanding)
        return CacheAccess::Blocked;

    const u32 set = setOf(lineAddr);
    const s32 victimIdx = pickVictim(set);
    if (victimIdx < 0)
        return CacheAccess::Blocked;

    Line& victim = _lines[victimIdx];
    if (victim.state == LineState::Valid && victim.dirty) {
        PendingWriteback wb;
        wb.addr = victim.addr;
        wb.bytes.resize(_config.lineBytes);
        const u32 size = _backing->writeback(victim.addr,
                                             victim.data.data(),
                                             wb.bytes.data());
        wb.bytes.resize(size);
        _writebacks.push_back(std::move(wb));
    }

    victim.state = LineState::Filling;
    victim.dirty = false;
    victim.addr = lineAddr;
    victim.lastUse = ++_useCounter;

    PendingFill fill;
    fill.lineIndex = static_cast<u32>(victimIdx);
    fill.addr = lineAddr;
    fill.localOnly = _backing->fillSize(lineAddr) == 0;
    _fills.push_back(fill);
    _misses.inc();
    return CacheAccess::Miss;
}

u8*
FbCache::wordPtr(u32 addr)
{
    const u32 lineAddr = addr - addr % _config.lineBytes;
    Line* line = findLine(lineAddr);
    if (!line || line->state != LineState::Valid)
        panic("cache '", _name, "': wordPtr on a non-resident line");
    return line->data.data() + (addr - lineAddr);
}

void
FbCache::markDirty(u32 addr)
{
    const u32 lineAddr = addr - addr % _config.lineBytes;
    Line* line = findLine(lineAddr);
    if (!line || line->state != LineState::Valid)
        panic("cache '", _name,
              "': markDirty on a non-resident line");
    line->dirty = true;
}

void
FbCache::clock(Cycle cycle, MemPort& port, MemClient client)
{
    // Service local (no memory traffic) fills immediately.
    for (auto it = _fills.begin(); it != _fills.end();) {
        if (it->localOnly) {
            Line& line = _lines[it->lineIndex];
            _backing->fillLocal(it->addr, line.data.data());
            line.state = LineState::Valid;
            it = _fills.erase(it);
        } else {
            ++it;
        }
    }

    // Issue writebacks first (they free memory ordering hazards:
    // a fill of the same line must see the written data).
    for (PendingWriteback& wb : _writebacks) {
        if (wb.issued)
            continue;
        if (!port.canRequest(cycle))
            break;
        auto txn = std::make_shared<MemTransaction>();
        txn->isRead = false;
        txn->address = wb.addr;
        txn->size = static_cast<u32>(wb.bytes.size());
        txn->data = wb.bytes;
        txn->client = client;
        txn->tag = (static_cast<u64>(wb.addr) << 1) | 1;
        port.request(cycle, txn);
        wb.issued = true;
    }

    // Issue fills, but never while a writeback of the same address
    // is still outstanding.
    for (PendingFill& fill : _fills) {
        if (fill.issued)
            continue;
        bool conflict = false;
        for (const PendingWriteback& wb : _writebacks) {
            if (wb.addr == fill.addr)
                conflict = true;
        }
        if (conflict)
            continue;
        if (!port.canRequest(cycle))
            break;
        auto txn = std::make_shared<MemTransaction>();
        txn->isRead = true;
        txn->address = fill.addr;
        txn->size = _backing->fillSize(fill.addr);
        txn->client = client;
        txn->tag = static_cast<u64>(fill.addr) << 1;
        port.request(cycle, txn);
        fill.issued = true;
    }

    // Handle responses.
    while (port.hasResponse()) {
        MemTransactionPtr txn = port.popResponse(cycle);
        if (!txn->isRead) {
            // Writeback acknowledged.
            const u32 addr = static_cast<u32>(txn->tag >> 1);
            for (auto it = _writebacks.begin();
                 it != _writebacks.end(); ++it) {
                if (it->issued && it->addr == addr) {
                    _writebacks.erase(it);
                    break;
                }
            }
            continue;
        }
        const u32 addr = static_cast<u32>(txn->tag >> 1);
        bool found = false;
        for (auto it = _fills.begin(); it != _fills.end(); ++it) {
            if (it->issued && it->addr == addr) {
                Line& line = _lines[it->lineIndex];
                _backing->fillFromMemory(addr, txn->data.data(),
                                         txn->size,
                                         line.data.data());
                line.state = LineState::Valid;
                _fills.erase(it);
                found = true;
                break;
            }
        }
        if (!found)
            panic("cache '", _name,
                  "': fill response with no pending fill");
    }
}

bool
FbCache::flushStep(Cycle cycle, MemPort& port, MemClient client)
{
    // Queue writebacks for dirty lines, a few per cycle.
    u32 queued = 0;
    while (_flushScan < _lines.size() && queued < 4) {
        Line& line = _lines[_flushScan];
        if (line.state == LineState::Valid && line.dirty) {
            PendingWriteback wb;
            wb.addr = line.addr;
            wb.bytes.resize(_config.lineBytes);
            const u32 size = _backing->writeback(line.addr,
                                                 line.data.data(),
                                                 wb.bytes.data());
            wb.bytes.resize(size);
            _writebacks.push_back(std::move(wb));
            line.dirty = false;
            ++queued;
        }
        ++_flushScan;
    }

    clock(cycle, port, client);

    if (_flushScan >= _lines.size() && idle()) {
        _flushScan = 0;
        return true;
    }
    return false;
}

void
FbCache::invalidateAll()
{
    for (Line& line : _lines) {
        if (line.state == LineState::Filling)
            panic("cache '", _name,
                  "': invalidateAll with fills in flight");
        line.state = LineState::Invalid;
        line.dirty = false;
    }
}

bool
FbCache::idle() const
{
    return _fills.empty() && _writebacks.empty();
}

} // namespace attila::gpu

/**
 * @file
 * FbCache: the set-associative caches attached to the pipeline boxes
 * (Z cache, Color cache, Texture cache — Table 2).
 *
 * As in the paper, caches use a method-based (non-signal) interface
 * attached to their parent box, modelling single-cycle tag and data
 * access.  Misses and writebacks move through the parent's MemPort
 * with full memory controller timing.
 *
 * A LineBacking policy customizes how lines are filled from and
 * written back to memory; this is where the Z compression and fast
 * clear algorithms plug in (the ROPz backing compresses on eviction
 * and services cleared blocks without memory traffic).
 *
 * Host-side layout (not modeled state): line data lives in one
 * contiguous arena and the tag metadata in flat parallel arrays
 * (state / dirty / address / last-use), so the tag walk on the hit
 * path touches a handful of adjacent words instead of pointer-rich
 * Line structs.  Pending fills occupy a fixed MSHR-style slot table
 * with a per-line back-pointer, replacing the linear pending-fill
 * scans, and miss/writeback transactions are recycled through a
 * sharded ObjectPool so steady-state misses allocate nothing.
 */

#ifndef ATTILA_GPU_CACHE_HH
#define ATTILA_GPU_CACHE_HH

#include <cstring>
#include <vector>

#include "gpu/memory_controller.hh"
#include "sim/event_trace.hh"
#include "sim/object_pool.hh"
#include "sim/statistics.hh"

namespace attila::gpu
{

/** Per-block compression / clear state (paper §2.2). */
enum class BlockState : u8
{
    Cleared,      ///< Fast-cleared; no memory backing yet.
    Uncompressed, ///< 256 bytes in memory.
    CompHalf,     ///< 128 bytes (1:2).
    CompQuarter,  ///< 64 bytes (1:4).
};

/** The on-chip block state memory of a ROP unit. */
class BlockStateTable
{
  public:
    void
    reset(u32 blocks, BlockState initial)
    {
        _states.assign(blocks, initial);
    }

    /** Set every block to @p state (the fast clear operation). */
    void
    clearAll(BlockState state)
    {
        std::fill(_states.begin(), _states.end(), state);
    }

    BlockState
    get(u32 block) const
    {
        return block < _states.size() ? _states[block]
                                      : BlockState::Uncompressed;
    }

    void
    set(u32 block, BlockState state)
    {
        if (block < _states.size())
            _states[block] = state;
    }

    u32 blocks() const { return static_cast<u32>(_states.size()); }

  private:
    std::vector<BlockState> _states;
};

/** Fill/writeback policy of a cache. */
class LineBacking
{
  public:
    virtual ~LineBacking() = default;

    /**
     * Bytes to fetch from memory to fill the line at @p lineAddr.
     * Return 0 for lines needing no memory access (cleared blocks);
     * fillLocal() is called instead.
     */
    virtual u32
    fillSize(u32 lineAddr)
    {
        (void)lineAddr;
        return _lineBytes;
    }

    /** Decode @p size fetched bytes into the line. */
    virtual void
    fillFromMemory(u32 lineAddr, const u8* memBytes, u32 size,
                   u8* lineOut)
    {
        (void)lineAddr;
        (void)size;
        std::memcpy(lineOut, memBytes, _lineBytes);
    }

    /** Fill a line that needs no memory traffic. */
    virtual void
    fillLocal(u32 lineAddr, u8* lineOut)
    {
        (void)lineAddr;
        std::memset(lineOut, 0, _lineBytes);
    }

    /**
     * Encode a dirty line for writeback into @p out (at least
     * _lineBytes large); return the byte count to write (the Z
     * compressor returns 64/128/256).
     */
    virtual u32
    writeback(u32 lineAddr, const u8* lineData, u8* out)
    {
        (void)lineAddr;
        std::memcpy(out, lineData, _lineBytes);
        return _lineBytes;
    }

    void setLineBytes(u32 bytes) { _lineBytes = bytes; }

  protected:
    u32 _lineBytes = 256;
};

/** Outcome of a cache access attempt. */
enum class CacheAccess : u8
{
    Hit,     ///< Line resident; data available this cycle.
    Miss,    ///< Fill started (or already pending); retry later.
    Blocked, ///< No resource (ports, victims, memory queue).
};

/** A set-associative, write-back cache with pluggable backing. */
class FbCache
{
  public:
    struct Config
    {
        u32 sizeKB = 16;
        u32 ways = 4;
        u32 lineBytes = 256;
        u32 ports = 4;          ///< Accesses per cycle.
        u32 maxOutstanding = 4; ///< Concurrent misses.
        /** Host fast path: pooled transactions + batched stats
         * (GpuConfig::memFastPath).  Timing-identical either way. */
        bool fastPath = true;
    };

    FbCache(std::string name, const Config& config,
            sim::Statistic& hits, sim::Statistic& misses,
            LineBacking* backing = nullptr);

    /**
     * Request the line containing @p addr.  On Hit, lineData() is
     * valid this cycle.  @p forWrite allocates and marks dirty.
     */
    CacheAccess access(Cycle cycle, u32 addr, bool forWrite);

    /** Pointer to the 4-byte word at @p addr (line must be
     * resident). */
    u8* wordPtr(u32 addr);

    /** Mark the resident line containing @p addr dirty. */
    void markDirty(u32 addr);

    /** Pump fills and writebacks through @p port; call every
     * cycle. */
    void clock(Cycle cycle, MemPort& port, MemClient client);

    /**
     * Write all dirty lines back to memory.  Call every cycle until
     * it returns true; no access() calls may interleave.
     */
    bool flushStep(Cycle cycle, MemPort& port, MemClient client);

    /**
     * Drop every line (after a fast clear).  Safe while fills are in
     * flight: unissued fills are dropped and issued fills are
     * cancelled — their eventual response is discarded, so a stale
     * line can never be resurrected into the cleared cache.
     */
    void invalidateAll();

    /** True when no fills or writebacks are in flight. */
    bool idle() const;

    u32 lineBytes() const { return _config.lineBytes; }
    u32 lineCount() const { return _lineCount; }
    u32 ways() const { return _config.ways; }
    u32 sets() const { return _sets; }

    /** Fills awaiting a (discarded) response after invalidateAll();
     * exposed for tests. */
    u32 cancelledFills() const { return _cancelled; }

    /** Transactions ever heap-allocated by the internal pool; the
     * zero-steady-state-allocation check watches this plateau. */
    u64 txnAllocations() const { return _txnPool.allocated(); }

    /**
     * Attach the structured event trace under cache unit id @p id.
     * Hit/miss events are emitted exactly where the hit/miss
     * statistics increment, so trace aggregates and statistics agree
     * by construction.
     */
    void
    setEventTrace(sim::EventTrace* trace, u16 id)
    {
        _eventTrace = trace;
        _eventTraceId = id;
    }

  private:
    enum class LineState : u8 { Invalid, Filling, Valid };

    /** One MSHR slot: a miss in flight towards memory. */
    struct FillSlot
    {
        u32 addr = 0;
        u32 lineIndex = 0;
        bool localOnly = false;
        bool issued = false;
        bool cancelled = false;
    };

    /** A dirty line travelling back to memory.  The payload is
     * encoded straight into the pooled transaction at eviction. */
    struct WbEntry
    {
        u32 addr = 0;
        MemTransactionPtr txn;
        bool issued = false;
        bool done = false;
    };

    u32
    lineAddrOf(u32 addr) const
    {
        return _pow2 ? addr & ~_lineMask
                     : addr - addr % _config.lineBytes;
    }

    u32
    setOf(u32 lineAddr) const
    {
        return _pow2 ? (lineAddr >> _lineShift) & _setMask
                     : (lineAddr / _config.lineBytes) % _sets;
    }

    u8* lineData(u32 lineIndex)
    {
        return _arena.data() +
               static_cast<std::size_t>(lineIndex) *
                   _config.lineBytes;
    }

    /** Tag walk: resident (non-Invalid) line index or -1. */
    s32 findLine(u32 lineAddr);
    s32 pickVictim(u32 set);
    void queueWriteback(Cycle unusedCycle, u32 lineIndex);
    MemTransactionPtr makeTransaction();
    u8 allocFillSlot();
    void removeFillAt(u32 orderPos);
    void commitStats();

    std::string _name;
    Config _config;
    LineBacking _defaultBacking;
    LineBacking* _backing;
    u32 _sets;
    u32 _lineCount;
    bool _pow2;      ///< lineBytes and sets both powers of two.
    u32 _lineMask = 0;
    u32 _lineShift = 0;
    u32 _setMask = 0;

    // SoA tag metadata + one arena for all line data.
    std::vector<LineState> _state;
    std::vector<u8> _dirty;
    std::vector<u32> _addr;
    std::vector<u64> _lastUse;
    std::vector<u8> _arena;

    // MSHR table: fixed slots + FIFO issue order ring.
    std::vector<FillSlot> _slots;
    u32 _freeSlots = 0; ///< Bitmask of free slot indices.
    std::vector<u8> _order;
    u32 _ordMask = 0;
    u32 _ordHead = 0;
    u32 _ordCount = 0;
    u32 _cancelled = 0;

    // Writeback FIFO: vector-with-cursor, entries completing out of
    // order are tombstoned (done) until the head drains.
    std::vector<WbEntry> _writebacks;
    u32 _wbHead = 0;
    u32 _wbLive = 0;

    sim::ObjectPool<MemTransaction> _txnPool;

    u32 _accessesThisCycle = 0;
    Cycle _currentCycle = ~0ull;
    u64 _useCounter = 0;
    u32 _flushScan = 0;
    sim::BatchedStat _hits;
    sim::BatchedStat _misses;
    sim::EventTrace* _eventTrace = nullptr;
    u16 _eventTraceId = 0;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_CACHE_HH

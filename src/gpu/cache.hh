/**
 * @file
 * FbCache: the set-associative caches attached to the pipeline boxes
 * (Z cache, Color cache, Texture cache — Table 2).
 *
 * As in the paper, caches use a method-based (non-signal) interface
 * attached to their parent box, modelling single-cycle tag and data
 * access.  Misses and writebacks move through the parent's MemPort
 * with full memory controller timing.
 *
 * A LineBacking policy customizes how lines are filled from and
 * written back to memory; this is where the Z compression and fast
 * clear algorithms plug in (the ROPz backing compresses on eviction
 * and services cleared blocks without memory traffic).
 */

#ifndef ATTILA_GPU_CACHE_HH
#define ATTILA_GPU_CACHE_HH

#include <deque>
#include <functional>
#include <vector>

#include "gpu/memory_controller.hh"
#include "sim/statistics.hh"

namespace attila::gpu
{

/** Per-block compression / clear state (paper §2.2). */
enum class BlockState : u8
{
    Cleared,      ///< Fast-cleared; no memory backing yet.
    Uncompressed, ///< 256 bytes in memory.
    CompHalf,     ///< 128 bytes (1:2).
    CompQuarter,  ///< 64 bytes (1:4).
};

/** The on-chip block state memory of a ROP unit. */
class BlockStateTable
{
  public:
    void
    reset(u32 blocks, BlockState initial)
    {
        _states.assign(blocks, initial);
    }

    /** Set every block to @p state (the fast clear operation). */
    void
    clearAll(BlockState state)
    {
        std::fill(_states.begin(), _states.end(), state);
    }

    BlockState
    get(u32 block) const
    {
        return block < _states.size() ? _states[block]
                                      : BlockState::Uncompressed;
    }

    void
    set(u32 block, BlockState state)
    {
        if (block < _states.size())
            _states[block] = state;
    }

    u32 blocks() const { return static_cast<u32>(_states.size()); }

  private:
    std::vector<BlockState> _states;
};

/** Fill/writeback policy of a cache. */
class LineBacking
{
  public:
    virtual ~LineBacking() = default;

    /**
     * Bytes to fetch from memory to fill the line at @p lineAddr.
     * Return 0 for lines needing no memory access (cleared blocks);
     * fillLocal() is called instead.
     */
    virtual u32
    fillSize(u32 lineAddr)
    {
        (void)lineAddr;
        return _lineBytes;
    }

    /** Decode @p size fetched bytes into the line. */
    virtual void
    fillFromMemory(u32 lineAddr, const u8* memBytes, u32 size,
                   u8* lineOut)
    {
        (void)lineAddr;
        (void)size;
        std::memcpy(lineOut, memBytes, _lineBytes);
    }

    /** Fill a line that needs no memory traffic. */
    virtual void
    fillLocal(u32 lineAddr, u8* lineOut)
    {
        (void)lineAddr;
        std::memset(lineOut, 0, _lineBytes);
    }

    /**
     * Encode a dirty line for writeback into @p out (at least
     * _lineBytes large); return the byte count to write (the Z
     * compressor returns 64/128/256).
     */
    virtual u32
    writeback(u32 lineAddr, const u8* lineData, u8* out)
    {
        (void)lineAddr;
        std::memcpy(out, lineData, _lineBytes);
        return _lineBytes;
    }

    void setLineBytes(u32 bytes) { _lineBytes = bytes; }

  protected:
    u32 _lineBytes = 256;
};

/** Outcome of a cache access attempt. */
enum class CacheAccess : u8
{
    Hit,     ///< Line resident; data available this cycle.
    Miss,    ///< Fill started (or already pending); retry later.
    Blocked, ///< No resource (ports, victims, memory queue).
};

/** A set-associative, write-back cache with pluggable backing. */
class FbCache
{
  public:
    struct Config
    {
        u32 sizeKB = 16;
        u32 ways = 4;
        u32 lineBytes = 256;
        u32 ports = 4;          ///< Accesses per cycle.
        u32 maxOutstanding = 4; ///< Concurrent misses.
    };

    FbCache(std::string name, const Config& config,
            sim::Statistic& hits, sim::Statistic& misses,
            LineBacking* backing = nullptr);

    /**
     * Request the line containing @p addr.  On Hit, lineData() is
     * valid this cycle.  @p forWrite allocates and marks dirty.
     */
    CacheAccess access(Cycle cycle, u32 addr, bool forWrite);

    /** Pointer to the 4-byte word at @p addr (line must be
     * resident). */
    u8* wordPtr(u32 addr);

    /** Mark the resident line containing @p addr dirty. */
    void markDirty(u32 addr);

    /** Pump fills and writebacks through @p port; call every
     * cycle. */
    void clock(Cycle cycle, MemPort& port, MemClient client);

    /**
     * Write all dirty lines back to memory.  Call every cycle until
     * it returns true; no access() calls may interleave.
     */
    bool flushStep(Cycle cycle, MemPort& port, MemClient client);

    /** Drop every line (after a fast clear). */
    void invalidateAll();

    /** True when no fills or writebacks are in flight. */
    bool idle() const;

    u32 lineBytes() const { return _config.lineBytes; }
    u32 lineCount() const { return static_cast<u32>(_lines.size()); }
    u32 ways() const { return _config.ways; }
    u32 sets() const { return _sets; }

  private:
    enum class LineState : u8 { Invalid, Filling, Valid };

    struct Line
    {
        LineState state = LineState::Invalid;
        bool dirty = false;
        u32 addr = 0; ///< Line-aligned address.
        u64 lastUse = 0;
        std::vector<u8> data;
    };

    struct PendingFill
    {
        u32 lineIndex = 0;
        u32 addr = 0;
        bool localOnly = false;
        bool issued = false;
    };

    struct PendingWriteback
    {
        u32 addr = 0;
        std::vector<u8> bytes;
        bool issued = false;
    };

    u32 setOf(u32 lineAddr) const;
    Line* findLine(u32 lineAddr);
    s32 pickVictim(u32 set);
    bool fillPendingFor(u32 lineAddr) const;

    std::string _name;
    Config _config;
    LineBacking _defaultBacking;
    LineBacking* _backing;
    u32 _sets;
    std::vector<Line> _lines;
    std::deque<PendingFill> _fills;
    std::deque<PendingWriteback> _writebacks;
    u32 _accessesThisCycle = 0;
    Cycle _currentCycle = ~0ull;
    u64 _useCounter = 0;
    u32 _flushScan = 0;
    sim::Statistic& _hits;
    sim::Statistic& _misses;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_CACHE_HH

#include "gpu/clipper.hh"

#include "emu/clipper_emulator.hh"

namespace attila::gpu
{

Clipper::Clipper(sim::SignalBinder& binder,
                 sim::StatisticManager& stats,
                 const GpuConfig& config)
    : Box(binder, stats, "Clipper"),
      _statTriangles(stat("triangles")),
      _statRejected(stat("trivialRejects")),
      _statBusy(stat("busyCycles"))
{
    _in.init(*this, binder, "assembly.clipper",
             config.trianglesPerCycle, 1, config.clipperQueue);
    _out.init(*this, binder, "clipper.setup",
              config.trianglesPerCycle, config.clipperLatency,
              config.setupQueue);
}

void
Clipper::update(Cycle cycle)
{
    _in.clock(cycle);
    _out.clock(cycle);

    if (_in.empty())
        return;
    if (!_out.canSend(cycle))
        return;
    _statBusy.inc();

    TriangleObjPtr tri = _in.pop(cycle);
    if (tri->isMarker()) {
        _out.send(cycle, tri);
        return;
    }
    _statTriangles.inc();

    const u32 pos = emu::regix::vposPosition;
    if (emu::ClipperEmulator::trivialReject(tri->vertex[0][pos],
                                            tri->vertex[1][pos],
                                            tri->vertex[2][pos])) {
        _statRejected.inc();
        return; // Culled.
    }
    _out.send(cycle, tri);
}

bool
Clipper::empty() const
{
    return _in.empty();
}

} // namespace attila::gpu

/**
 * @file
 * Clipper: trivial rejection of triangles completely outside the
 * frustum volume (paper §2.2).  All other triangles, including
 * partially visible ones, flow free to the rasterizer — the 2D
 * homogeneous algorithm removes the need for true clipping.
 */

#ifndef ATTILA_GPU_CLIPPER_HH
#define ATTILA_GPU_CLIPPER_HH

#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "sim/box.hh"

namespace attila::gpu
{

/** The Clipper box. */
class Clipper : public sim::Box
{
  public:
    Clipper(sim::SignalBinder& binder, sim::StatisticManager& stats,
            const GpuConfig& config);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet. */
    bool busy() const override { return !empty(); }

  private:
    LinkRx<TriangleObj> _in;
    LinkTx _out;

    sim::Statistic& _statTriangles;
    sim::Statistic& _statRejected;
    sim::Statistic& _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_CLIPPER_HH

#include "gpu/color_write.hh"

#include <cstring>

#include "emu/fragment_op_emulator.hh"

namespace attila::gpu
{

using emu::FragmentOpEmulator;

ColorWrite::ColorWrite(sim::SignalBinder& binder,
                       sim::StatisticManager& stats,
                       const GpuConfig& config, u32 unit,
                       emu::GpuMemory& memory)
    : Box(binder, stats, "ColorWrite" + std::to_string(unit)),
      _config(config),
      _unit(unit),
      _memory(memory),
      _cache("colorcache" + std::to_string(unit),
             FbCache::Config{config.colorCacheKB,
                             config.colorCacheWays,
                             config.colorCacheLine, 4,
                             config.colorCacheMshr,
                             config.memFastPath},
             stat("cacheHits"), stat("cacheMisses"), &_backing),
      _statQuads(stat("quads")),
      _statFragments(stat("fragments")),
      _statBlended(stat("blendedFragments")),
      _statBusy(stat("busyCycles"))
{
    _statQuads.setImmediate(!config.memFastPath);
    _statFragments.setImmediate(!config.memFastPath);
    _statBlended.setImmediate(!config.memFastPath);
    _statBusy.setImmediate(!config.memFastPath);
    const std::string id = std::to_string(unit);
    _earlyIn.init(*this, binder, "ffifo.ropc" + id, 2, 1, 16);
    _lateIn.init(*this, binder, "ropz" + id + ".ropc", 1,
                 config.ropLatency, 8);
    _retire.init(*this, binder, "ropc" + id + ".retire", 1, 1, 8);
    _ctrl.init(*this, binder, "cp.ctrl.ropc" + id, 1, 1, 2);
    _ack.init(*this, binder, "ack.ropc" + id, 1, 1, 2);
    _mem.init(*this, binder, "mc.colorcache" + id,
              config.memoryRequestQueue);
    _backing.compressionEnabled = config.colorCompression;
}

void
ColorWrite::processControl(Cycle cycle)
{
    if (_ctrlPhase == CtrlPhase::Clearing) {
        if (cycle < _ctrlDoneAt || !_ack.canSend(cycle))
            return;
        auto ack = std::make_shared<AckObj>();
        ack->kind = _ctrlKind;
        ack->unit = _unit;
        _ack.send(cycle, ack);
        _ctrlPhase = CtrlPhase::None;
        return;
    }
    if (_ctrlPhase == CtrlPhase::Flushing) {
        if (!_cache.flushStep(cycle, _mem, MemClient::ColorCache))
            return;
        if (!_ack.canSend(cycle))
            return;
        auto ack = std::make_shared<AckObj>();
        ack->kind = _ctrlKind;
        ack->unit = _unit;
        _ack.send(cycle, ack);
        _ctrlPhase = CtrlPhase::None;
        return;
    }

    if (_ctrl.empty())
        return;
    ControlObjPtr ctrl = _ctrl.pop(cycle);
    _ctrlKind = ctrl->kind;
    const RenderState& state = *ctrl->state;

    if (ctrl->kind == ControlKind::ClearColor) {
        _backing.info->bufferBase = state.colorBufferAddress;
        _backing.info->clearWord =
            FragmentOpEmulator::packRgba8(state.clearColor);
        const u32 tiles =
            fbSurfaceBytes(state.width, state.height) / fbTileBytes;
        _cache.invalidateAll();
        if (_config.fastClear) {
            _backing.info->table.reset(tiles, BlockState::Cleared);
            _ctrlDoneAt = cycle + _config.clearCycles;
        } else {
            _backing.info->table.reset(tiles,
                                       BlockState::Uncompressed);
            for (u32 t = _unit; t < tiles; t += _config.numRops) {
                for (u32 w = 0; w < fbTilePixels; ++w) {
                    _memory.writeAs<u32>(
                        _backing.info->bufferBase + t * fbTileBytes +
                            w * 4,
                        _backing.info->clearWord);
                }
            }
            const u32 myTiles =
                (tiles + _config.numRops - 1) / _config.numRops;
            _ctrlDoneAt =
                cycle + static_cast<Cycle>(myTiles) * fbTileBytes /
                            (_config.memoryChannels *
                             _config.channelBytesPerCycle);
        }
        _ctrlPhase = CtrlPhase::Clearing;
        return;
    }
    if (ctrl->kind == ControlKind::Flush) {
        _ctrlPhase = CtrlPhase::Flushing;
        return;
    }
    panic("ColorWrite: unexpected control message");
}

bool
ColorWrite::colorAccess(Cycle cycle, QuadObj& quad)
{
    const RenderState& state = *quad.state;
    if (state.blend.colorMask == 0)
        return true; // Writes disabled.

    const u32 lineAddr = fbTileAddress(
        state.colorBufferAddress, state.width,
        static_cast<u32>(quad.x0), static_cast<u32>(quad.y0));
    if (_cache.access(cycle, lineAddr, false) != CacheAccess::Hit)
        return false;

    bool wrote = false;
    for (u32 f = 0; f < 4; ++f) {
        if (!quad.coverage[f])
            continue;
        _statFragments.inc();
        if (state.blend.enabled)
            _statBlended.inc();
        const u32 x = static_cast<u32>(quad.x0) + (f % 2);
        const u32 y = static_cast<u32>(quad.y0) + (f / 2);
        const u32 addr = fbPixelAddress(state.colorBufferAddress,
                                        state.width, x, y);
        u32 stored;
        std::memcpy(&stored, _cache.wordPtr(addr), 4);
        const u32 updated = FragmentOpEmulator::colorWrite(
            state.blend, quad.out[f][emu::regix::foutColor], stored);
        if (updated != stored) {
            std::memcpy(_cache.wordPtr(addr), &updated, 4);
            wrote = true;
        }
    }
    if (wrote)
        _cache.markDirty(lineAddr);
    return true;
}

bool
ColorWrite::popMarkers(Cycle cycle, LinkRx<QuadObj>& rx, bool late)
{
    if (rx.empty() || !rx.front()->isMarker())
        return false;
    const QuadObjPtr& head = rx.front();

    if (head->marker == MarkerKind::BatchStart) {
        if (!_haveCur) {
            // Adopt the next batch (streams deliver batches in
            // issue order).
            _haveCur = true;
            _curBatch = head->batchId;
            _endEarly = _endLate = false;
            rx.pop(cycle);
            return true;
        }
        if (head->batchId == _curBatch) {
            rx.pop(cycle);
            return true;
        }
        return false; // Next batch's start: wait.
    }

    // BatchEnd.
    if (_haveCur && head->batchId == _curBatch) {
        rx.pop(cycle);
        (late ? _endLate : _endEarly) = true;
        if (_endEarly && _endLate) {
            _retireQueue.push_back(_curBatch);
            _haveCur = false;
        }
        return true;
    }
    return false;
}

void
ColorWrite::processQuads(Cycle cycle)
{
    // Drain any markers first (they cost no ROP throughput).
    while (popMarkers(cycle, _lateIn, true) ||
           popMarkers(cycle, _earlyIn, false)) {
    }

    if (!_haveCur)
        return;

    // One quad per cycle (4 fragments, Table 1); a batch's quads
    // arrive on exactly one of the two inputs.
    for (LinkRx<QuadObj>* rx : {&_lateIn, &_earlyIn}) {
        if (rx->empty() || rx->front()->isMarker())
            continue;
        if (rx->front()->batchId != _curBatch)
            continue;
        QuadObjPtr quad = rx->front();
        if (!colorAccess(cycle, *quad))
            return;
        rx->pop(cycle);
        _statQuads.inc();
        _statBusy.inc();
        return;
    }
}

void
ColorWrite::tryRetire(Cycle cycle)
{
    while (!_retireQueue.empty() && _retire.canSend(cycle)) {
        auto retire = std::make_shared<RetireObj>();
        retire->batchId = _retireQueue.pop_front();
        retire->unit = _unit;
        _retire.send(cycle, retire);
    }
}

void
ColorWrite::update(Cycle cycle)
{
    _earlyIn.clock(cycle);
    _lateIn.clock(cycle);
    _retire.clock(cycle);
    _ctrl.clock(cycle);
    _ack.clock(cycle);
    _mem.clock(cycle);

    processControl(cycle);
    if (_ctrlPhase == CtrlPhase::None) {
        processQuads(cycle);
        _cache.clock(cycle, _mem, MemClient::ColorCache);
    }
    tryRetire(cycle);
    _statQuads.commit();
    _statFragments.commit();
    _statBlended.commit();
    _statBusy.commit();
}

bool
ColorWrite::empty() const
{
    return _earlyIn.empty() && _lateIn.empty() &&
           _retireQueue.empty() && _ctrl.empty() &&
           _ctrlPhase == CtrlPhase::None && _cache.idle();
}

} // namespace attila::gpu

/**
 * @file
 * ColorWrite (ROPc): updates the framebuffer with the colours
 * computed by the fragment shaders, implementing all the OpenGL
 * blend and update functions (paper §2.2).  The Color cache supports
 * fast colour clear of the whole buffer through the per-block state
 * memory.  The architecture mirrors the Z and Stencil test unit.
 *
 * ColorWrite is the end of the pipeline: when a batch's end markers
 * have arrived on both datapaths (early: from the Fragment FIFO;
 * late: through ROPz) the unit reports batch retirement to the
 * Command Processor.
 */

#ifndef ATTILA_GPU_COLOR_WRITE_HH
#define ATTILA_GPU_COLOR_WRITE_HH

#include "emu/memory.hh"
#include "gpu/cache.hh"
#include "gpu/framebuffer.hh"
#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "sim/box.hh"
#include "sim/ring_queue.hh"

namespace attila::gpu
{

/** Shared colour-buffer clear information (ROPc <-> DAC). */
struct ColorClearInfo
{
    BlockStateTable table;
    u32 bufferBase = 0;
    u32 clearWord = 0;
};

/**
 * Line backing implementing fast colour clear, plus the §7 colour
 * compression extension: a tile whose 64 pixels are identical
 * writes back (and fills) at 1:4 — the word is replicated on fill.
 */
class ColorBacking : public LineBacking
{
  public:
    std::shared_ptr<ColorClearInfo> info =
        std::make_shared<ColorClearInfo>();
    bool compressionEnabled = false;

    u32
    blockOf(u32 lineAddr) const
    {
        return (lineAddr - info->bufferBase) / fbTileBytes;
    }

    u32
    fillSize(u32 lineAddr) override
    {
        switch (info->table.get(blockOf(lineAddr))) {
          case BlockState::Cleared:
            return 0;
          case BlockState::CompQuarter:
            return _lineBytes / 4;
          default:
            return _lineBytes;
        }
    }

    void
    fillLocal(u32 lineAddr, u8* lineOut) override
    {
        (void)lineAddr;
        for (u32 i = 0; i < _lineBytes / 4; ++i)
            std::memcpy(lineOut + i * 4, &info->clearWord, 4);
    }

    void
    fillFromMemory(u32 lineAddr, const u8* memBytes, u32 size,
                   u8* lineOut) override
    {
        if (info->table.get(blockOf(lineAddr)) ==
            BlockState::CompQuarter) {
            // Uniform tile: replicate the stored word.
            (void)size;
            for (u32 i = 0; i < _lineBytes / 4; ++i)
                std::memcpy(lineOut + i * 4, memBytes, 4);
            return;
        }
        std::memcpy(lineOut, memBytes, _lineBytes);
    }

    u32
    writeback(u32 lineAddr, const u8* lineData, u8* out) override
    {
        if (compressionEnabled) {
            u32 first;
            std::memcpy(&first, lineData, 4);
            bool uniform = true;
            for (u32 i = 1; i < _lineBytes / 4 && uniform; ++i) {
                u32 word;
                std::memcpy(&word, lineData + i * 4, 4);
                uniform = word == first;
            }
            if (uniform) {
                info->table.set(blockOf(lineAddr),
                                BlockState::CompQuarter);
                std::memcpy(out, lineData, _lineBytes / 4);
                return _lineBytes / 4;
            }
        }
        info->table.set(blockOf(lineAddr), BlockState::Uncompressed);
        std::memcpy(out, lineData, _lineBytes);
        return _lineBytes;
    }
};

/** The Color Write box. */
class ColorWrite : public sim::Box
{
  public:
    ColorWrite(sim::SignalBinder& binder,
               sim::StatisticManager& stats, const GpuConfig& config,
               u32 unit, emu::GpuMemory& memory);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet. */
    bool busy() const override { return !empty(); }

    /** Clear-state shared with the DAC for frame assembly. */
    std::shared_ptr<const ColorClearInfo>
    clearInfo() const
    {
        return _backing.info;
    }

    /** Wire the color cache's hit/miss events (cache unit name = box
     * name, matching the cacheHits/cacheMisses statistics). */
    void
    attachEventTrace(sim::EventTrace& trace) override
    {
        _cache.setEventTrace(&trace, trace.registerCache(name()));
    }

  private:
    enum class CtrlPhase : u8 { None, Clearing, Flushing };

    void processControl(Cycle cycle);
    void processQuads(Cycle cycle);
    /** Pop any markers of the current/next batch at an input head.
     *  Returns true when something was consumed. */
    bool popMarkers(Cycle cycle, LinkRx<QuadObj>& rx, bool late);
    bool colorAccess(Cycle cycle, QuadObj& quad);
    void tryRetire(Cycle cycle);

    const GpuConfig& _config;
    const u32 _unit;
    emu::GpuMemory& _memory;

    LinkRx<QuadObj> _earlyIn;
    LinkRx<QuadObj> _lateIn;
    LinkTx _retire;
    LinkRx<ControlObj> _ctrl;
    LinkTx _ack;
    MemPort _mem;

    ColorBacking _backing;
    FbCache _cache;

    CtrlPhase _ctrlPhase = CtrlPhase::None;
    Cycle _ctrlDoneAt = 0;
    ControlKind _ctrlKind = ControlKind::Flush;

    /** Batch sequencing: colour accesses happen in batch order. */
    bool _haveCur = false;
    u32 _curBatch = 0;
    bool _endEarly = false; ///< Early-path BatchEnd popped.
    bool _endLate = false;  ///< Late-path BatchEnd popped.
    sim::RingQueue<u32> _retireQueue;

    sim::BatchedStat _statQuads;
    sim::BatchedStat _statFragments;
    sim::BatchedStat _statBlended;
    sim::BatchedStat _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_COLOR_WRITE_HH

#include "gpu/command_processor.hh"

#include <algorithm>

namespace attila::gpu
{

CommandProcessor::CommandProcessor(sim::SignalBinder& binder,
                                   sim::StatisticManager& stats,
                                   const GpuConfig& config)
    : Box(binder, stats, "CommandProcessor"),
      _config(config),
      _statCommands(stat("commands")),
      _statDraws(stat("draws")),
      _statBusBytes(stat("systemBusBytes")),
      _statBusy(stat("busyCycles"))
{
    _drawOut.init(*this, binder, "cp.draw", 1, 1, 4);
    _txns.setPooled(config.memFastPath);
    _mem.init(*this, binder, "mc.cp", _config.memoryRequestQueue);

    for (u32 i = 0; i < config.numRops; ++i) {
        auto retire = std::make_unique<LinkRx<RetireObj>>();
        retire->init(*this, binder,
                     "ropc" + std::to_string(i) + ".retire", 1, 1, 8);
        _retireIn.push_back(std::move(retire));

        _ctrlRopz.emplace_back();
        _ctrlRopz.back().init(*this, binder,
                              "cp.ctrl.ropz" + std::to_string(i), 1,
                              1, 2);
        _ctrlRopc.emplace_back();
        _ctrlRopc.back().init(*this, binder,
                              "cp.ctrl.ropc" + std::to_string(i), 1,
                              1, 2);

        auto ack = std::make_unique<LinkRx<AckObj>>();
        ack->init(*this, binder, "ack.ropz" + std::to_string(i), 1, 1,
                  2);
        _ackIn.push_back(std::move(ack));
        ack = std::make_unique<LinkRx<AckObj>>();
        ack->init(*this, binder, "ack.ropc" + std::to_string(i), 1, 1,
                  2);
        _ackIn.push_back(std::move(ack));
    }
    _ctrlHz.init(*this, binder, "cp.ctrl.hz", 1, 1, 2);
    _ctrlDac.init(*this, binder, "cp.ctrl.dac", 1, 1, 2);
    auto ack = std::make_unique<LinkRx<AckObj>>();
    ack->init(*this, binder, "ack.hz", 1, 1, 2);
    _ackIn.push_back(std::move(ack));
    ack = std::make_unique<LinkRx<AckObj>>();
    ack->init(*this, binder, "ack.dac", 1, 1, 2);
    _ackIn.push_back(std::move(ack));
}

void
CommandProcessor::submit(const CommandList& list)
{
    for (const Command& cmd : list)
        _pending.push_back(cmd);
}

u32
CommandProcessor::expectedAcks(ControlKind kind) const
{
    switch (kind) {
      case ControlKind::ClearColor:
        return _config.numRops;
      case ControlKind::ClearZStencil:
        return _config.numRops + 1; // + HZ.
      case ControlKind::Flush:
        return _config.numRops * 2; // ROPz + ROPc.
      case ControlKind::DumpFrame:
        return 1;
      case ControlKind::HzPoison:
        return 0;
    }
    return 0;
}

bool
CommandProcessor::broadcastControl(Cycle cycle, ControlKind kind)
{
    // All targets must have credit before any message is sent so the
    // broadcast is atomic.
    auto targetsOf = [&](ControlKind k)
        -> std::vector<LinkTx*> {
        std::vector<LinkTx*> t;
        switch (k) {
          case ControlKind::ClearColor:
            for (auto& l : _ctrlRopc)
                t.push_back(&l);
            break;
          case ControlKind::ClearZStencil:
            for (auto& l : _ctrlRopz)
                t.push_back(&l);
            t.push_back(&_ctrlHz);
            break;
          case ControlKind::Flush:
            for (auto& l : _ctrlRopz)
                t.push_back(&l);
            for (auto& l : _ctrlRopc)
                t.push_back(&l);
            break;
          case ControlKind::DumpFrame:
            t.push_back(&_ctrlDac);
            break;
          case ControlKind::HzPoison:
            t.push_back(&_ctrlHz);
            break;
        }
        return t;
    };

    auto targets = targetsOf(kind);
    for (LinkTx* t : targets) {
        if (!t->canSend(cycle))
            return false;
    }
    auto state = std::make_shared<const RenderState>(_staging);
    for (LinkTx* t : targets) {
        auto ctrl = std::make_shared<ControlObj>();
        ctrl->kind = kind;
        ctrl->state = state;
        ctrl->setInfo("ctrl");
        t->send(cycle, ctrl);
    }
    _ctrlAcksPending = expectedAcks(kind);
    return true;
}

void
CommandProcessor::startCommand(Cycle cycle)
{
    if (_pending.empty())
        return;
    _current = _pending.front();

    switch (_current.op) {
      case CommandOp::WriteReg:
        applyRegister(_staging, _current.reg, _current.regIndex,
                      _current.value);
        _pending.pop_front();
        _statCommands.inc();
        break;

      case CommandOp::LoadVertexProgram:
        _staging.vertexProgram = _current.program;
        emu::ShaderEmulator::applyLiterals(*_current.program,
                                           _staging.vertexConstants);
        // Instruction memory preload over the system bus: 16 bytes
        // per instruction.
        _busyUntil = cycle + std::max<u64>(
            1, _current.program->length() * 16 /
                   _config.systemBusBytesPerCycle);
        _phase = Phase::BusTransfer;
        _memBytesSent = 0;
        _pending.pop_front();
        _statCommands.inc();
        break;

      case CommandOp::LoadFragmentProgram:
        _staging.fragmentProgram = _current.program;
        emu::ShaderEmulator::applyLiterals(
            *_current.program, _staging.fragmentConstants);
        _busyUntil = cycle + std::max<u64>(
            1, _current.program->length() * 16 /
                   _config.systemBusBytesPerCycle);
        _phase = Phase::BusTransfer;
        _memBytesSent = 0;
        _pending.pop_front();
        _statCommands.inc();
        break;

      case CommandOp::WriteBuffer: {
        // Cross the system bus first; GPU memory writes follow.
        const u32 bytes =
            static_cast<u32>(_current.data->size());
        _statBusBytes.inc(bytes);
        _busyUntil = cycle + std::max<u64>(
            1, bytes / _config.systemBusBytesPerCycle);
        _phase = Phase::BusTransfer;
        _memBytesSent = 0;
        _statCommands.inc();
        break;
      }

      case CommandOp::Draw: {
        if (_inflightBatches >= 2)
            return; // Geometry + fragment phase both occupied.
        if (!_drawOut.canSend(cycle))
            return;
        if (_staging.raisesDepth()) {
            if (!broadcastControl(cycle, ControlKind::HzPoison))
                return;
        }
        auto cmd = std::make_shared<DrawCmdObj>();
        cmd->marker = MarkerKind::BatchStart;
        cmd->batchId = _nextBatchId++;
        cmd->state = std::make_shared<const RenderState>(_staging);
        cmd->params = _current.draw;
        cmd->setInfo("draw");
        _drawOut.send(cycle, cmd);
        ++_inflightBatches;
        _pending.pop_front();
        _statCommands.inc();
        _statDraws.inc();
        break;
      }

      case CommandOp::ClearColor:
      case CommandOp::ClearZStencil:
      case CommandOp::Swap:
        // Barrier commands: drain first.
        _phase = Phase::DrainWait;
        _statCommands.inc();
        break;
    }
}

void
CommandProcessor::continueCommand(Cycle cycle)
{
    switch (_phase) {
      case Phase::Idle:
        startCommand(cycle);
        break;

      case Phase::BusTransfer:
        if (cycle < _busyUntil)
            break;
        if (_current.op == CommandOp::WriteBuffer) {
            _phase = Phase::MemWrite;
        } else {
            _phase = Phase::Idle;
        }
        break;

      case Phase::MemWrite: {
        // Stream the buffer into GPU memory in 256-byte chunks.
        const auto& bytes = *_current.data;
        while (_memBytesSent < bytes.size() &&
               _mem.canRequest(cycle)) {
            const u32 chunk = std::min<u32>(
                256, static_cast<u32>(bytes.size()) - _memBytesSent);
            auto txn = _txns.acquire();
            txn->isRead = false;
            txn->address = _current.address + _memBytesSent;
            txn->size = chunk;
            txn->data.assign(bytes.begin() + _memBytesSent,
                             bytes.begin() + _memBytesSent + chunk);
            txn->client = MemClient::CommandProcessor;
            _mem.request(cycle, txn);
            _memBytesSent += chunk;
            ++_memAcksPending;
        }
        while (_mem.hasResponse()) {
            _mem.popResponse(cycle);
            --_memAcksPending;
        }
        if (_memBytesSent >= bytes.size() && _memAcksPending == 0) {
            _pending.pop_front();
            _phase = Phase::Idle;
        }
        break;
      }

      case Phase::DrainWait:
        if (_inflightBatches != 0)
            break;
        {
            ControlKind kind;
            if (_current.op == CommandOp::ClearColor)
                kind = ControlKind::ClearColor;
            else if (_current.op == CommandOp::ClearZStencil)
                kind = ControlKind::ClearZStencil;
            else
                kind = ControlKind::Flush; // Swap stage 1.
            if (!broadcastControl(cycle, kind))
                break;
            _swapAfterCtrl = _current.op == CommandOp::Swap;
            _phase = Phase::CtrlWait;
        }
        break;

      case Phase::CtrlWait:
        if (_ctrlAcksPending != 0)
            break;
        if (_swapAfterCtrl) {
            // Swap stage 2: ask the DAC to dump the frame.
            if (!broadcastControl(cycle, ControlKind::DumpFrame))
                break;
            _swapAfterCtrl = false;
            break;
        }
        if (_current.op == CommandOp::Swap)
            ++_framesCompleted;
        _pending.pop_front();
        _phase = Phase::Idle;
        break;
    }
}

void
CommandProcessor::update(Cycle cycle)
{
    _drawOut.clock(cycle);
    for (auto& l : _ctrlRopz)
        l.clock(cycle);
    for (auto& l : _ctrlRopc)
        l.clock(cycle);
    _ctrlHz.clock(cycle);
    _ctrlDac.clock(cycle);
    _mem.clock(cycle);

    // Retirements: a batch retires once every ROPc reported it.
    for (auto& retire : _retireIn) {
        retire->clock(cycle);
        while (!retire->empty()) {
            auto obj = retire->pop(cycle);
            u32& count = _retireCounts[obj->batchId];
            if (++count == _config.numRops) {
                _retireCounts.erase(obj->batchId);
                if (_inflightBatches == 0)
                    panic("CommandProcessor: retire with no batch in"
                          " flight");
                --_inflightBatches;
            }
        }
    }

    // Acks.
    for (auto& ack : _ackIn) {
        ack->clock(cycle);
        while (!ack->empty()) {
            ack->pop(cycle);
            if (_ctrlAcksPending == 0)
                panic("CommandProcessor: unexpected control ack");
            --_ctrlAcksPending;
        }
    }

    if (!_pending.empty())
        _statBusy.inc();

    continueCommand(cycle);
}

bool
CommandProcessor::empty() const
{
    return _pending.empty() && _inflightBatches == 0 &&
           _phase == Phase::Idle;
}

} // namespace attila::gpu

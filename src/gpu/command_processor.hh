/**
 * @file
 * CommandProcessor: the unit controlling the whole pipeline (paper
 * §2.2).
 *
 * It consumes the command stream produced by the driver: register
 * writes, buffer uploads over the system bus, shader program loads,
 * batch draws, fast clears and swaps.  Register state is staged and
 * snapshotted per Draw, which lets two batches be pipelined (one in
 * the geometry phase, one in the fragment phase) with no register
 * hazards.  Clears and swaps are pipeline barriers: the processor
 * waits for every in-flight batch to retire, then broadcasts control
 * messages to the ROPs / HZ / DAC and waits for their acks.
 */

#ifndef ATTILA_GPU_COMMAND_PROCESSOR_HH
#define ATTILA_GPU_COMMAND_PROCESSOR_HH

#include <deque>
#include <map>

#include "gpu/commands.hh"
#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "gpu/txn_pool.hh"
#include "gpu/memory_controller.hh"
#include "sim/box.hh"

namespace attila::gpu
{

/** A draw command travelling to the Streamer. */
class DrawCmdObj : public WorkObject
{
  public:
    DrawParams params;
};

/** The Command Processor box. */
class CommandProcessor : public sim::Box
{
  public:
    CommandProcessor(sim::SignalBinder& binder,
                     sim::StatisticManager& stats,
                     const GpuConfig& config);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet (busyCycles only counts
     * cycles with commands pending, which empty() covers). */
    bool busy() const override { return !empty(); }

    /** Append a command stream for execution. */
    void submit(const CommandList& list);

    /** Batches issued so far (diagnostics). */
    u32 batchesIssued() const { return _nextBatchId; }
    /** Frames completed (Swap commands retired). */
    u32 framesCompleted() const { return _framesCompleted; }

  private:
    enum class Phase : u8
    {
        Idle,        ///< Ready for the next command.
        BusTransfer, ///< Buffer bytes crossing the system bus.
        MemWrite,    ///< Buffer writes in flight to GPU memory.
        DrainWait,   ///< Waiting for in-flight batches to retire.
        CtrlWait,    ///< Waiting for control acks.
    };

    void startCommand(Cycle cycle);
    void continueCommand(Cycle cycle);
    bool broadcastControl(Cycle cycle, ControlKind kind);
    u32 expectedAcks(ControlKind kind) const;

    const GpuConfig& _config;
    std::deque<Command> _pending;
    RenderState _staging;
    u32 _nextBatchId = 0;
    u32 _inflightBatches = 0;
    u32 _framesCompleted = 0;

    Phase _phase = Phase::Idle;
    Command _current;
    Cycle _busyUntil = 0;
    u32 _memBytesSent = 0;
    u32 _memAcksPending = 0;
    u32 _ctrlAcksPending = 0;
    bool _swapAfterCtrl = false;
    std::map<u32, u32> _retireCounts; ///< batchId -> ROPc reports.

    LinkTx _drawOut;
    std::vector<std::unique_ptr<LinkRx<RetireObj>>> _retireIn;
    std::vector<LinkTx> _ctrlRopz;
    std::vector<LinkTx> _ctrlRopc;
    LinkTx _ctrlHz;
    LinkTx _ctrlDac;
    std::vector<std::unique_ptr<LinkRx<AckObj>>> _ackIn;
    MemPort _mem;
    TxnAllocator _txns;

    sim::Statistic& _statCommands;
    sim::Statistic& _statDraws;
    sim::Statistic& _statBusBytes;
    sim::Statistic& _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_COMMAND_PROCESSOR_HH

/**
 * @file
 * The Command Processor's instruction set (paper §4): register
 * writes, buffer writes into GPU memory, shader program loads, batch
 * draws, fast clears and swap.  The OpenGL framework translates API
 * calls into streams of these commands; both the timing GPU and the
 * functional reference renderer consume the same streams.
 */

#ifndef ATTILA_GPU_COMMANDS_HH
#define ATTILA_GPU_COMMANDS_HH

#include <memory>
#include <vector>

#include "emu/shader_isa.hh"
#include "gpu/regs.hh"

namespace attila::gpu
{

/** Command opcodes. */
enum class CommandOp : u8
{
    WriteReg,      ///< Write one render state register.
    WriteBuffer,   ///< Upload data from system memory to GPU memory.
    LoadVertexProgram,
    LoadFragmentProgram,
    Draw,          ///< Render a batch.
    ClearColor,    ///< Fast clear of the colour buffer.
    ClearZStencil, ///< Fast clear of depth and stencil.
    Swap,          ///< Finish the frame (DAC dump).
};

/** Draw parameters. */
struct DrawParams
{
    Primitive primitive = Primitive::Triangles;
    u32 count = 0; ///< Number of indices / vertices in the batch.
    u32 first = 0; ///< First sequential index (non-indexed draws).
};

/** One Command Processor command. */
struct Command
{
    CommandOp op = CommandOp::Draw;

    // WriteReg.
    Reg reg = Reg::FbWidth;
    u32 regIndex = 0;
    RegValue value;

    // WriteBuffer.
    u32 address = 0;
    std::shared_ptr<const std::vector<u8>> data;

    // Load*Program.
    emu::ShaderProgramPtr program;

    // Draw.
    DrawParams draw;

    static Command
    writeReg(Reg reg, const RegValue& v, u32 index = 0)
    {
        Command c;
        c.op = CommandOp::WriteReg;
        c.reg = reg;
        c.regIndex = index;
        c.value = v;
        return c;
    }

    static Command
    writeBuffer(u32 address, std::vector<u8> bytes)
    {
        Command c;
        c.op = CommandOp::WriteBuffer;
        c.address = address;
        c.data = std::make_shared<const std::vector<u8>>(
            std::move(bytes));
        return c;
    }

    static Command
    loadVertexProgram(emu::ShaderProgramPtr prog)
    {
        Command c;
        c.op = CommandOp::LoadVertexProgram;
        c.program = std::move(prog);
        return c;
    }

    static Command
    loadFragmentProgram(emu::ShaderProgramPtr prog)
    {
        Command c;
        c.op = CommandOp::LoadFragmentProgram;
        c.program = std::move(prog);
        return c;
    }

    static Command
    drawBatch(Primitive prim, u32 count, u32 first = 0)
    {
        Command c;
        c.op = CommandOp::Draw;
        c.draw.primitive = prim;
        c.draw.count = count;
        c.draw.first = first;
        return c;
    }

    static Command
    clearColor()
    {
        Command c;
        c.op = CommandOp::ClearColor;
        return c;
    }

    static Command
    clearZStencil()
    {
        Command c;
        c.op = CommandOp::ClearZStencil;
        return c;
    }

    static Command
    swap()
    {
        Command c;
        c.op = CommandOp::Swap;
        return c;
    }
};

/** A stream of commands, as produced by the driver for one frame or
 * one trace segment. */
using CommandList = std::vector<Command>;

} // namespace attila::gpu

#endif // ATTILA_GPU_COMMANDS_HH

#include "gpu/dac.hh"

#include <fstream>

#include "emu/fragment_op_emulator.hh"

namespace attila::gpu
{

void
FrameImage::writePpm(const std::string& path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("DAC: cannot open '", path, "' for writing");
    out << "P6\n" << width << ' ' << height << "\n255\n";
    // OpenGL y-up to PPM top-down.
    for (s32 y = static_cast<s32>(height) - 1; y >= 0; --y) {
        for (u32 x = 0; x < width; ++x) {
            const u32 p = pixel(x, static_cast<u32>(y));
            const char rgb[3] = {static_cast<char>(p & 0xff),
                                 static_cast<char>((p >> 8) & 0xff),
                                 static_cast<char>((p >> 16) & 0xff)};
            out.write(rgb, 3);
        }
    }
}

u64
FrameImage::diffCount(const FrameImage& other) const
{
    if (width != other.width || height != other.height)
        return static_cast<u64>(width) * height;
    u64 diff = 0;
    for (std::size_t i = 0; i < pixels.size(); ++i) {
        if (pixels[i] != other.pixels[i])
            ++diff;
    }
    return diff;
}

Dac::Dac(sim::SignalBinder& binder, sim::StatisticManager& stats,
         const GpuConfig& config)
    : Box(binder, stats, "DAC"),
      _config(config),
      _statFrames(stat("frames")),
      _statBusy(stat("busyCycles"))
{
    _ctrl.init(*this, binder, "cp.ctrl.dac", 1, 1, 2);
    _ack.init(*this, binder, "ack.dac", 1, 1, 2);
    _txns.setPooled(config.memFastPath);
    _mem.init(*this, binder, "mc.dac", config.memoryRequestQueue);
}

void
Dac::assembleFrame(const RenderState& state)
{
    FrameImage frame;
    frame.width = state.width;
    frame.height = state.height;
    frame.pixels.assign(static_cast<std::size_t>(state.width) *
                            state.height,
                        0);
    if (!_memory)
        panic("DAC: no memory attached");

    for (u32 y = 0; y < state.height; ++y) {
        for (u32 x = 0; x < state.width; ++x) {
            const u32 tile =
                fbTileIndex(state.width, x, y);
            // A tile still in the "cleared" block state has no
            // memory backing: the clear colour is its content.
            // Only the ROP owning the tile (tile interleaving)
            // holds its authoritative state.
            bool resolved = false;
            u32 word = 0;
            if (!_clearInfos.empty()) {
                const auto& info =
                    _clearInfos[tile % _clearInfos.size()];
                if (info->bufferBase == state.colorBufferAddress) {
                    const BlockState bs = info->table.get(tile);
                    if (bs == BlockState::Cleared) {
                        resolved = true;
                        word = info->clearWord;
                    } else if (bs == BlockState::CompQuarter) {
                        // Uniform compressed tile: the single
                        // stored word is the whole tile.
                        resolved = true;
                        word = _memory->readAs<u32>(fbTileAddress(
                            state.colorBufferAddress, state.width,
                            x, y));
                    }
                }
            }
            frame.pixels[y * state.width + x] =
                resolved ? word
                         : _memory->readAs<u32>(fbPixelAddress(
                               state.colorBufferAddress,
                               state.width, x, y));
        }
    }
    if (_keepLastOnly)
        _frames.clear();
    _frames.push_back(std::move(frame));
    _statFrames.inc();
}

void
Dac::update(Cycle cycle)
{
    _ctrl.clock(cycle);
    _ack.clock(cycle);
    _mem.clock(cycle);

    // Drain timing reads.
    while (_mem.hasResponse()) {
        _mem.popResponse(cycle);
        --_tilesLeft;
    }

    if (_dumping) {
        _statBusy.inc();
        // Issue tile reads (refresh bandwidth).
        while (_nextTile < _totalTiles && _mem.canRequest(cycle)) {
            auto txn = _txns.acquire();
            txn->isRead = true;
            txn->address = _bufferBase + _nextTile * fbTileBytes;
            txn->size = fbTileBytes;
            txn->client = MemClient::Dac;
            _mem.request(cycle, txn);
            ++_nextTile;
        }
        if (_tilesLeft == 0 && _nextTile >= _totalTiles &&
            _ack.canSend(cycle)) {
            auto ack = std::make_shared<AckObj>();
            ack->kind = ControlKind::DumpFrame;
            _ack.send(cycle, ack);
            _dumping = false;
        }
        return;
    }

    if (_ctrl.empty())
        return;
    ControlObjPtr ctrl = _ctrl.pop(cycle);
    if (ctrl->kind != ControlKind::DumpFrame)
        panic("DAC: unexpected control message");

    const RenderState& state = *ctrl->state;
    assembleFrame(state);
    _bufferBase = state.colorBufferAddress;
    _totalTiles = fbSurfaceBytes(state.width, state.height) /
                  fbTileBytes;
    _tilesLeft = _totalTiles;
    _nextTile = 0;
    _dumping = true;
}

bool
Dac::empty() const
{
    return !_dumping && _ctrl.empty();
}

} // namespace attila::gpu

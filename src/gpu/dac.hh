/**
 * @file
 * Dac: dumps the colour buffer into an image so the rendered output
 * of the architecture can be verified against an independent
 * renderer (paper §2.2) — the Figure 10 methodology.  The screen
 * refresh bandwidth of the dump is modelled through the Memory
 * Controller.
 */

#ifndef ATTILA_GPU_DAC_HH
#define ATTILA_GPU_DAC_HH

#include <string>
#include <vector>

#include "emu/memory.hh"
#include "gpu/color_write.hh"
#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "gpu/txn_pool.hh"
#include "sim/box.hh"

namespace attila::gpu
{

/** A dumped frame: RGBA8 pixels, row-major, y = 0 at the bottom
 * (OpenGL convention). */
struct FrameImage
{
    u32 width = 0;
    u32 height = 0;
    std::vector<u32> pixels;

    u32
    pixel(u32 x, u32 y) const
    {
        return pixels[y * width + x];
    }

    /** Write as a binary PPM (alpha dropped, rows flipped). */
    void writePpm(const std::string& path) const;

    /** Number of pixels differing from @p other. */
    u64 diffCount(const FrameImage& other) const;
};

/** The DAC box. */
class Dac : public sim::Box
{
  public:
    Dac(sim::SignalBinder& binder, sim::StatisticManager& stats,
        const GpuConfig& config);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet. */
    bool busy() const override { return !empty(); }

    /** Clear-state tables of the ColorWrite units (set by Gpu). */
    void
    setClearInfo(
        std::vector<std::shared_ptr<const ColorClearInfo>> infos)
    {
        _clearInfos = std::move(infos);
    }

    void setMemory(const emu::GpuMemory* memory) { _memory = memory; }

    const std::vector<FrameImage>& frames() const { return _frames; }

    /** Keep only the most recent frame (bounds long runs). */
    void setKeepLastOnly(bool keep) { _keepLastOnly = keep; }

  private:
    void assembleFrame(const RenderState& state);

    const GpuConfig& _config;
    LinkRx<ControlObj> _ctrl;
    LinkTx _ack;
    MemPort _mem;
    TxnAllocator _txns;

    std::vector<std::shared_ptr<const ColorClearInfo>> _clearInfos;
    const emu::GpuMemory* _memory = nullptr;
    std::vector<FrameImage> _frames;
    bool _keepLastOnly = false;

    /** Timing: tiles left to read for the current dump. */
    bool _dumping = false;
    u32 _tilesLeft = 0;
    u32 _nextTile = 0;
    u32 _totalTiles = 0;
    u32 _bufferBase = 0;

    sim::Statistic& _statFrames;
    sim::Statistic& _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_DAC_HH

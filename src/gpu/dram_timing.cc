#include "gpu/dram_timing.hh"

#include <bit>
#include <sstream>

#include "sim/config_file.hh"

namespace attila::gpu
{

namespace
{

[[noreturn]] void
badSpec(const std::string& spec, const std::string& msg)
{
    throw sim::ConfigError("config: dram timing '" + spec + "': " +
                           msg);
}

} // anonymous namespace

DramTiming
DramTiming::parse(const std::string& spec)
{
    DramTiming t;
    std::istringstream in(spec);
    std::string token;
    while (std::getline(in, token, ':')) {
        if (token.empty())
            continue;
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) {
            badSpec(spec, "expected name=cycles, got '" + token +
                              "'");
        }
        const std::string name = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        u64 cycles = 0;
        std::size_t pos = 0;
        bool ok = !value.empty();
        if (ok) {
            try {
                cycles = std::stoull(value, &pos, 10);
            } catch (const std::exception&) {
                ok = false;
            }
        }
        if (!ok || pos != value.size() || cycles > ~u32{0}) {
            badSpec(spec, "bad value in '" + token + "'");
        }
        const u32 v = static_cast<u32>(cycles);
        if (name == "nbk")
            t.nbk = v;
        else if (name == "CCD")
            t.CCD = v;
        else if (name == "RRD")
            t.RRD = v;
        else if (name == "RCD")
            t.RCD = v;
        else if (name == "RAS")
            t.RAS = v;
        else if (name == "RP")
            t.RP = v;
        else if (name == "RC")
            t.RC = v;
        else if (name == "CL")
            t.CL = v;
        else if (name == "WL")
            t.WL = v;
        else if (name == "WR")
            t.WR = v;
        else if (name == "CDLR")
            ; // Accepted for gpgpu-sim spec compatibility; unused.
        else
            badSpec(spec, "unknown parameter '" + name + "'");
    }
    if (t.nbk == 0 || !std::has_single_bit(t.nbk)) {
        badSpec(spec, "nbk must be a nonzero power of two, got " +
                          std::to_string(t.nbk));
    }
    return t;
}

std::string
DramTiming::format() const
{
    std::ostringstream out;
    out << "nbk=" << nbk << ":CCD=" << CCD << ":RRD=" << RRD
        << ":RCD=" << RCD << ":RAS=" << RAS << ":RP=" << RP
        << ":RC=" << RC << ":CL=" << CL << ":WL=" << WL
        << ":WR=" << WR;
    return out.str();
}

} // namespace attila::gpu

/**
 * @file
 * DramTiming: the banked GDDR timing parameter set, parsed from the
 * gpgpu-sim-style option string
 *
 *   nbk=8:CCD=2:RRD=8:RCD=12:RAS=25:RP=10:RC=35:CL=10:WL=7:WR=11
 *
 * (GDDR3 timing of the Samsung K4J52324QH-HC12 — the exemplar spec
 * in SNIPPETS.md).  All values are cycles of the memory clock, which
 * this model ties to the core clock 1:1.
 *
 * The banked MemoryController model (GpuConfig::memModel == Banked)
 * derives three access classes from the per-bank row state:
 *
 *   row hit      — bank active, same row:     CL (read) / WL (write)
 *   row closed   — bank precharged:           RCD + CL/WL
 *   row conflict — bank active, other row:    RP + RCD + CL/WL
 *
 * plus RAS (minimum row-open time before precharge), RC (minimum
 * activate-to-activate on one bank), RRD (activate-to-activate
 * across banks of a channel) and WR (write recovery before
 * precharge).  CCD is subsumed by the single data bus per channel.
 */

#ifndef ATTILA_GPU_DRAM_TIMING_HH
#define ATTILA_GPU_DRAM_TIMING_HH

#include <string>

#include "sim/types.hh"

namespace attila::gpu
{

/** Parsed DRAM timing parameters (defaults: GDDR3 per SNIPPETS). */
struct DramTiming
{
    u32 nbk = 8;  ///< Banks per channel.
    u32 CCD = 2;  ///< Column-to-column delay.
    u32 RRD = 8;  ///< Activate-to-activate, different banks.
    u32 RCD = 12; ///< Row-to-column (activate-to-access).
    u32 RAS = 25; ///< Minimum row-open time.
    u32 RP = 10;  ///< Precharge time.
    u32 RC = 35;  ///< Activate-to-activate, same bank.
    u32 CL = 10;  ///< Read column access (CAS) latency.
    u32 WL = 7;   ///< Write column access latency.
    u32 WR = 11;  ///< Write recovery before precharge.

    bool operator==(const DramTiming&) const = default;

    /**
     * Parse a "nbk=8:RCD=12:..." option string.  Unlisted fields
     * keep their defaults; unknown or malformed tokens throw
     * sim::ConfigError naming the offending token.  nbk must be a
     * power of two (the bank index is taken from address bits).
     */
    static DramTiming parse(const std::string& spec);

    /** Canonical round-trip form (parse(format()) == *this). */
    std::string format() const;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_DRAM_TIMING_HH

#include "gpu/fragment_fifo.hh"

#include "gpu/framebuffer.hh"

namespace attila::gpu
{

FragmentFifo::FragmentFifo(sim::SignalBinder& binder,
                           sim::StatisticManager& stats,
                           const GpuConfig& config)
    : Box(binder, stats, "FragmentFIFO"),
      _config(config),
      _numUnits(config.numShaders),
      _numVertexUnits(config.unifiedShaders
                          ? 0
                          : config.numVertexShaders),
      _statThreadsIssued(stat("threadsIssued")),
      _statQuadsCommitted(stat("quadsCommitted")),
      _statVerticesCommitted(stat("verticesCommitted")),
      _statWindowFullCycles(stat("windowFullCycles")),
      _statRegistersFullCycles(stat("registersFullCycles")),
      _statBusy(stat("busyCycles"))
{
    _vertexIn.init(*this, binder, "streamer.shading", 1, 1, 16);
    _fragmentIn.init(*this, binder, "interp.ffifo",
                     config.interpolatorQuadsPerCycle, 1,
                     config.fragmentFifoQueue);
    _vertexOut.init(*this, binder, "shading.streamer", 1, 1, 16);

    const u32 totalUnits = _numUnits + _numVertexUnits;
    for (u32 s = 0; s < totalUnits; ++s) {
        auto tx = std::make_unique<LinkTx>();
        tx->init(*this, binder, "ffifo.shader" + std::to_string(s),
                 1, 1, 4);
        _toShader.push_back(std::move(tx));
        auto rx = std::make_unique<LinkRx<ShaderWorkObj>>();
        rx->init(*this, binder,
                 "shader" + std::to_string(s) + ".ffifo", 1, 1, 4);
        _fromShader.push_back(std::move(rx));
    }
    for (u32 r = 0; r < config.numRops; ++r) {
        auto ropc = std::make_unique<LinkTx>();
        ropc->init(*this, binder, "ffifo.ropc" + std::to_string(r),
                   2, 1, 16);
        _toRopc.push_back(std::move(ropc));
        auto ropz = std::make_unique<LinkTx>();
        ropz->init(*this, binder,
                   "ffifo.ropz" + std::to_string(r) + ".late", 2, 1,
                   8);
        _toRopzLate.push_back(std::move(ropz));
    }
    _unitLoad.assign(totalUnits, 0);
}

u32
FragmentFifo::groupLanes() const
{
    // Unified shaders process four vertices per thread; the
    // dedicated vertex shaders of the non-unified model process one
    // vertex per thread (paper §2.3).
    return _config.unifiedShaders ? 4 : 1;
}

u32
FragmentFifo::ropOf(const QuadObj& quad) const
{
    return fbTileIndex(quad.state->width,
                       static_cast<u32>(quad.x0),
                       static_cast<u32>(quad.y0)) %
           _config.numRops;
}

bool
FragmentFifo::admit(Entry&& entry)
{
    if (entry.kind != EntryKind::Marker) {
        const bool vertexClass =
            entry.kind == EntryKind::VertexGroup &&
            !_config.unifiedShaders;
        if (vertexClass) {
            // Dedicated vertex pool (threads checked at issue).
            if (_usedVertexRegisters + entry.registers >
                _config.vertexShaderRegisters) {
                _statRegistersFullCycles.inc();
                return false;
            }
            _usedVertexRegisters += entry.registers;
        } else {
            if (_usedInputs + entry.inputs >
                _config.shaderInputsInFlight) {
                _statWindowFullCycles.inc();
                return false;
            }
            if (_usedRegisters + entry.registers >
                _config.shaderRegisters) {
                _statRegistersFullCycles.inc();
                return false;
            }
            _usedInputs += entry.inputs;
            _usedRegisters += entry.registers;
        }
    }

    const u64 id = _nextEntryId++;
    entry.id = id;
    if (entry.kind == EntryKind::VertexGroup) {
        _vertexChain.push_back(id);
    } else {
        _fragmentChain.push_back(id);
    }
    if (entry.kind != EntryKind::Marker)
        _issueOrder.push_back(id);
    _entries.emplace(id, std::move(entry));
    return true;
}

void
FragmentFifo::acceptVertices(Cycle cycle)
{
    _vertexArrivedThisCycle = false;
    while (!_vertexIn.empty()) {
        const VertexObjPtr& head = _vertexIn.front();
        const RenderState& state = *head->state;
        if (!state.vertexProgram)
            panic("FragmentFIFO: vertex without a vertex program");

        // Build (or extend) the pending group.
        _pendingGroup.push_back(_vertexIn.front());

        const u32 lanes = groupLanes();
        if (_pendingGroup.size() < lanes) {
            _vertexIn.pop(cycle);
            _vertexArrivedThisCycle = true;
            continue;
        }

        Entry entry;
        entry.kind = EntryKind::VertexGroup;
        entry.vertices = _pendingGroup;
        entry.inputs = lanes;
        entry.registers = state.vertexProgram->numTemps * lanes;
        if (!admit(std::move(entry))) {
            _pendingGroup.pop_back();
            return; // Window or registers full; retry next cycle.
        }
        _vertexIn.pop(cycle);
        _vertexArrivedThisCycle = true;
        _pendingGroup.clear();
    }

    // Flush a partial group when the input ran dry (batch ends).
    if (!_pendingGroup.empty() && !_vertexArrivedThisCycle) {
        const RenderState& state = *_pendingGroup.front()->state;
        Entry entry;
        entry.kind = EntryKind::VertexGroup;
        entry.vertices = _pendingGroup;
        entry.inputs = static_cast<u32>(_pendingGroup.size());
        entry.registers = state.vertexProgram->numTemps *
                          static_cast<u32>(_pendingGroup.size());
        if (admit(std::move(entry)))
            _pendingGroup.clear();
    }
}

void
FragmentFifo::acceptFragments(Cycle cycle)
{
    u32 accepted = 0;
    while (!_fragmentIn.empty() &&
           accepted < _config.interpolatorQuadsPerCycle) {
        const QuadObjPtr& head = _fragmentIn.front();

        if (head->isMarker()) {
            Entry entry;
            entry.kind = EntryKind::Marker;
            entry.quad = head;
            entry.status = EntryStatus::Completed;
            if (!admit(std::move(entry)))
                return;
            _fragmentIn.pop(cycle);
            continue;
        }

        const RenderState& state = *head->state;
        if (!state.fragmentProgram)
            panic("FragmentFIFO: quad without a fragment program");
        Entry entry;
        entry.kind = EntryKind::Quad;
        entry.quad = head;
        entry.inputs = 4;
        entry.registers = state.fragmentProgram->numTemps * 4;
        if (!admit(std::move(entry)))
            return;
        _fragmentIn.pop(cycle);
        ++accepted;
    }
}

void
FragmentFifo::issue(Cycle cycle)
{
    // Strict in-order issue, skipping only across classes: a stuck
    // fragment thread must not idle the dedicated vertex units.
    u32 scanned = 0;
    for (auto it = _issueOrder.begin();
         it != _issueOrder.end() && scanned < 8;) {
        ++scanned;
        auto entryIt = _entries.find(*it);
        if (entryIt == _entries.end()) {
            it = _issueOrder.erase(it);
            continue;
        }
        Entry& entry = entryIt->second;
        if (entry.status != EntryStatus::Waiting) {
            it = _issueOrder.erase(it);
            continue;
        }

        const bool vertexClass =
            entry.kind == EntryKind::VertexGroup &&
            !_config.unifiedShaders;
        const u32 unitBase = vertexClass ? _numUnits : 0;
        const u32 unitCount = vertexClass ? _numVertexUnits
                                          : _numUnits;
        const u32 maxThreads =
            vertexClass
                ? _config.vertexShaderThreads
                : std::max(1u, _config.shaderInputsInFlight / 4 /
                                   std::max(1u, _numUnits));

        // Pick the least-loaded unit with a free slot and credit.
        s32 best = -1;
        u32 bestLoad = ~0u;
        for (u32 k = 0; k < unitCount; ++k) {
            const u32 u = unitBase + (k + _issueRr) % unitCount;
            if (_unitLoad[u] >= maxThreads)
                continue;
            if (!_toShader[u]->canSend(cycle))
                continue;
            if (_unitLoad[u] < bestLoad) {
                bestLoad = _unitLoad[u];
                best = static_cast<s32>(u);
            }
        }
        if (best < 0) {
            // In-order within the class: stop at the first entry of
            // this class that cannot issue, but let the other class
            // proceed.
            bool otherClassAhead = false;
            for (auto jt = std::next(it); jt != _issueOrder.end();
                 ++jt) {
                auto other = _entries.find(*jt);
                if (other == _entries.end())
                    continue;
                const bool ov =
                    other->second.kind == EntryKind::VertexGroup &&
                    !_config.unifiedShaders;
                if (ov != vertexClass) {
                    otherClassAhead = true;
                    break;
                }
            }
            if (!otherClassAhead)
                return;
            ++it;
            continue;
        }

        auto work = std::make_shared<ShaderWorkObj>();
        work->entryId = entry.id;
        work->setInfo("thread");
        if (entry.kind == EntryKind::Quad) {
            work->target = emu::ShaderTarget::Fragment;
            work->state = entry.quad->state;
            work->batchId = entry.quad->batchId;
            work->copyTrailFrom(*entry.quad);
            for (u32 l = 0; l < 4; ++l) {
                work->active[l] = true; // Helper pixels execute.
                work->in[l] = entry.quad->in[l];
            }
        } else {
            work->target = emu::ShaderTarget::Vertex;
            work->state = entry.vertices.front()->state;
            work->batchId = entry.vertices.front()->batchId;
            work->copyTrailFrom(*entry.vertices.front());
            for (u32 l = 0; l < entry.vertices.size(); ++l) {
                work->active[l] = true;
                work->in[l] = entry.vertices[l]->in;
            }
        }
        entry.work = work;
        entry.status = EntryStatus::Running;
        entry.shaderUnit = static_cast<u32>(best);
        ++_unitLoad[best];
        _toShader[best]->send(cycle, work);
        _statThreadsIssued.inc();
        ++_issueRr;
        it = _issueOrder.erase(it);
    }
}

void
FragmentFifo::collectResults(Cycle cycle)
{
    for (auto& rx : _fromShader) {
        while (!rx->empty()) {
            ShaderWorkObjPtr work = rx->pop(cycle);
            auto it = _entries.find(work->entryId);
            if (it == _entries.end())
                panic("FragmentFIFO: result for unknown entry ",
                      work->entryId);
            Entry& entry = it->second;
            entry.status = EntryStatus::Completed;
            --_unitLoad[entry.shaderUnit];

            if (entry.kind == EntryKind::Quad) {
                for (u32 l = 0; l < 4; ++l) {
                    entry.quad->out[l] = work->out[l];
                    if (work->killed[l])
                        entry.quad->coverage[l] = false;
                }
                entry.quad->shaded = true;
            } else {
                for (u32 l = 0; l < entry.vertices.size(); ++l)
                    entry.vertices[l]->out = work->out[l];
            }
        }
    }
}

void
FragmentFifo::commitVertices(Cycle cycle)
{
    // Drain the send queue first (link bandwidth 1).
    while (!_vertexSendQueue.empty() && _vertexOut.canSend(cycle)) {
        _vertexOut.send(cycle, _vertexSendQueue.front());
        _vertexSendQueue.pop_front();
        _statVerticesCommitted.inc();
    }

    while (!_vertexChain.empty() && _vertexSendQueue.size() < 8) {
        auto it = _entries.find(_vertexChain.front());
        if (it == _entries.end()) {
            _vertexChain.pop_front();
            continue;
        }
        Entry& entry = it->second;
        if (entry.status != EntryStatus::Completed)
            return;
        for (const VertexObjPtr& v : entry.vertices)
            _vertexSendQueue.push_back(v);
        // Free resources.
        if (!_config.unifiedShaders) {
            _usedVertexRegisters -= entry.registers;
        } else {
            _usedInputs -= entry.inputs;
            _usedRegisters -= entry.registers;
        }
        _entries.erase(it);
        _vertexChain.pop_front();
    }
}

void
FragmentFifo::commitFragments(Cycle cycle)
{
    u32 committed = 0;
    while (!_fragmentChain.empty() && committed < 4) {
        auto it = _entries.find(_fragmentChain.front());
        if (it == _entries.end()) {
            _fragmentChain.pop_front();
            continue;
        }
        Entry& entry = it->second;
        if (entry.status != EntryStatus::Completed)
            return;

        if (entry.kind == EntryKind::Marker) {
            // Broadcast to every ROPc (early path) and every ROPz
            // late input; atomic across all targets.
            for (auto& l : _toRopc) {
                if (!l->canSend(cycle))
                    return;
            }
            for (auto& l : _toRopzLate) {
                if (!l->canSend(cycle))
                    return;
            }
            for (auto& l : _toRopc)
                l->send(cycle, entry.quad);
            for (auto& l : _toRopzLate)
                l->send(cycle, entry.quad);
            _entries.erase(it);
            _fragmentChain.pop_front();
            ++committed;
            continue;
        }

        QuadObjPtr quad = entry.quad;
        const bool alive = quad->coverage[0] || quad->coverage[1] ||
                           quad->coverage[2] || quad->coverage[3];
        if (alive) {
            LinkTx& out = quad->lateZPath
                              ? *_toRopzLate[ropOf(*quad)]
                              : *_toRopc[ropOf(*quad)];
            if (!out.canSend(cycle))
                return;
            out.send(cycle, quad);
        }
        _usedInputs -= entry.inputs;
        _usedRegisters -= entry.registers;
        _entries.erase(it);
        _fragmentChain.pop_front();
        _statQuadsCommitted.inc();
        ++committed;
    }
}

void
FragmentFifo::update(Cycle cycle)
{
    _vertexIn.clock(cycle);
    _fragmentIn.clock(cycle);
    _vertexOut.clock(cycle);
    for (auto& l : _toShader)
        l->clock(cycle);
    for (auto& l : _fromShader)
        l->clock(cycle);
    for (auto& l : _toRopc)
        l->clock(cycle);
    for (auto& l : _toRopzLate)
        l->clock(cycle);

    if (!_entries.empty())
        _statBusy.inc();

    collectResults(cycle);
    commitVertices(cycle);
    commitFragments(cycle);
    acceptVertices(cycle);
    acceptFragments(cycle);
    issue(cycle);
}

bool
FragmentFifo::empty() const
{
    return _entries.empty() && _vertexIn.empty() &&
           _fragmentIn.empty() && _pendingGroup.empty() &&
           _vertexSendQueue.empty();
}

} // namespace attila::gpu

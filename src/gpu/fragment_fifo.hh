/**
 * @file
 * FragmentFIFO: the crossbar and scheduler between the shader
 * producers/consumers and the unified shader pool (paper §3).
 *
 * The box receives shader inputs — vertices from the Streamer loader
 * and interpolated fragment quads — packs them into threads (one
 * thread = one fragment quad or four vertices), admits them into the
 * global window subject to the window size (in shader inputs) and
 * the temporary register pool, distributes them over the shader
 * units, collects the shaded results and commits them **in order**
 * (separately for vertices and fragments) to the consuming boxes:
 * Streamer commit for vertices, Color Write (early Z) or Z Stencil
 * Test (late Z) for fragment quads.
 *
 * The window admits out-of-order *execution* (the shader units pick
 * any ready thread) with in-order *commit*; the alternative
 * "shader input queue" mode of the Fig 7 experiment keeps the same
 * structure but restricts the shader units to their oldest thread.
 */

#ifndef ATTILA_GPU_FRAGMENT_FIFO_HH
#define ATTILA_GPU_FRAGMENT_FIFO_HH

#include <deque>
#include <map>

#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "gpu/shader_unit.hh"
#include "sim/box.hh"

namespace attila::gpu
{

/** The Fragment FIFO box. */
class FragmentFifo : public sim::Box
{
  public:
    FragmentFifo(sim::SignalBinder& binder,
                 sim::StatisticManager& stats,
                 const GpuConfig& config);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet. */
    bool busy() const override { return !empty(); }

  private:
    enum class EntryKind : u8 { VertexGroup, Quad, Marker };
    enum class EntryStatus : u8 { Waiting, Running, Completed };

    struct Entry
    {
        u64 id = 0;
        EntryKind kind = EntryKind::Quad;
        EntryStatus status = EntryStatus::Waiting;
        u32 inputs = 0;    ///< Window cost in shader inputs.
        u32 registers = 0; ///< Temp registers reserved.
        u32 shaderUnit = 0;
        std::vector<VertexObjPtr> vertices;
        QuadObjPtr quad;
        ShaderWorkObjPtr work;
    };

    void acceptVertices(Cycle cycle);
    void acceptFragments(Cycle cycle);
    bool admit(Entry&& entry);
    void issue(Cycle cycle);
    void collectResults(Cycle cycle);
    void commitVertices(Cycle cycle);
    void commitFragments(Cycle cycle);
    u32 ropOf(const QuadObj& quad) const;
    u32 groupLanes() const;

    const GpuConfig& _config;
    const u32 _numUnits;     ///< Fragment/unified units.
    const u32 _numVertexUnits; ///< Extra dedicated vertex units.

    LinkRx<VertexObj> _vertexIn;
    LinkRx<QuadObj> _fragmentIn;
    LinkTx _vertexOut;
    std::vector<std::unique_ptr<LinkTx>> _toShader;
    std::vector<std::unique_ptr<LinkRx<ShaderWorkObj>>> _fromShader;
    std::vector<std::unique_ptr<LinkTx>> _toRopc;
    std::vector<std::unique_ptr<LinkTx>> _toRopzLate;

    std::map<u64, Entry> _entries;
    std::deque<u64> _vertexChain;   ///< Commit order.
    std::deque<u64> _fragmentChain;
    std::deque<u64> _issueOrder;    ///< Issue (arrival) order.
    u64 _nextEntryId = 1;

    u32 _usedInputs = 0;
    u32 _usedRegisters = 0;
    u32 _usedVertexRegisters = 0;
    std::vector<u32> _unitLoad; ///< Threads assigned per unit.
    u32 _issueRr = 0;

    /** Vertex group being filled. */
    std::vector<VertexObjPtr> _pendingGroup;
    bool _vertexArrivedThisCycle = false;

    /** Committed vertices waiting for the (narrower) output link. */
    std::deque<VertexObjPtr> _vertexSendQueue;

    sim::Statistic& _statThreadsIssued;
    sim::Statistic& _statQuadsCommitted;
    sim::Statistic& _statVerticesCommitted;
    sim::Statistic& _statWindowFullCycles;
    sim::Statistic& _statRegistersFullCycles;
    sim::Statistic& _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_FRAGMENT_FIFO_HH

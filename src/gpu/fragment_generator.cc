#include "gpu/fragment_generator.hh"

#include "emu/rasterizer_emulator.hh"
#include "gpu/framebuffer.hh"

namespace attila::gpu
{

FragmentGenerator::FragmentGenerator(sim::SignalBinder& binder,
                                     sim::StatisticManager& stats,
                                     const GpuConfig& config)
    : Box(binder, stats, "FragmentGenerator"),
      _config(config),
      _statTiles(stat("tiles")),
      _statFragments(stat("fragments")),
      _statBusy(stat("busyCycles"))
{
    _in.init(*this, binder, "setup.fgen", config.trianglesPerCycle,
             config.setupLatency, config.fragmentGenQueue);
    _out.init(*this, binder, "fgen.hz", config.tilesPerCycle, 1,
              config.hzQueue);
}

TileObjPtr
FragmentGenerator::buildTile(s32 x0, s32 y0) const
{
    using emu::RasterizerEmulator;

    const RenderState& state = *_current->state;
    auto tile = std::make_shared<TileObj>();
    tile->batchId = _current->batchId;
    tile->state = _current->state;
    tile->triangle = _current;
    tile->x0 = x0;
    tile->y0 = y0;
    tile->setInfo("tile");
    tile->copyTrailFrom(*_current);

    f32 minZ = 1.0f;
    u64 coverage = 0;
    for (u32 dy = 0; dy < fbTileDim; ++dy) {
        for (u32 dx = 0; dx < fbTileDim; ++dx) {
            const s32 x = x0 + static_cast<s32>(dx);
            const s32 y = y0 + static_cast<s32>(dy);
            const auto frag = RasterizerEmulator::evalFragment(
                _current->setup, x, y);
            const u32 bit = dy * fbTileDim + dx;
            tile->z[bit] = frag.z;
            if (!frag.inside)
                continue;
            // Render target bounds.
            if (x < 0 || y < 0 ||
                x >= static_cast<s32>(state.width) ||
                y >= static_cast<s32>(state.height)) {
                continue;
            }
            // Scissor rejection happens at generation (the paper
            // removes these fragments with the cull flag).
            if (state.scissor.enabled) {
                const ScissorState& sc = state.scissor;
                if (x < sc.x || y < sc.y ||
                    x >= sc.x + static_cast<s32>(sc.width) ||
                    y >= sc.y + static_cast<s32>(sc.height)) {
                    continue;
                }
            }
            coverage |= 1ull << bit;
            minZ = std::min(minZ, frag.z);
        }
    }
    tile->coverage = coverage;
    tile->minZ = minZ;
    return tile;
}

void
FragmentGenerator::startTriangle(Cycle cycle)
{
    if (_current || _in.empty())
        return;
    const TriangleObjPtr& head = _in.front();
    if (head->isMarker()) {
        if (!_out.canSend(cycle))
            return;
        _out.send(cycle, _in.pop(cycle));
        return;
    }
    _current = _in.pop(cycle);
    _tiles.clear();
    auto visitor = [this](s32 x, s32 y) {
        _tiles.emplace_back(x, y);
    };
    if (_config.fragmentGen == FragmentGenKind::Recursive) {
        emu::RasterizerEmulator::traverseRecursive(
            _current->setup, _config.genTileSize, visitor);
    } else {
        emu::RasterizerEmulator::traverseScanline(
            _current->setup, _config.genTileSize, visitor);
    }
}

void
FragmentGenerator::update(Cycle cycle)
{
    _in.clock(cycle);
    _out.clock(cycle);

    startTriangle(cycle);
    if (!_current)
        return;

    // Generate up to tilesPerCycle tiles.
    u32 emitted = 0;
    for (u32 n = 0; n < _config.tilesPerCycle && !_tiles.empty();) {
        if (!_out.canSend(cycle))
            break;
        auto [x, y] = _tiles.front();
        _tiles.pop_front();
        TileObjPtr tile = buildTile(x, y);
        if (tile->coverage == 0)
            continue; // Empty candidate tile: costs nothing.
        _statTiles.inc();
        _statFragments.inc(
            static_cast<u64>(__builtin_popcountll(tile->coverage)));
        _out.send(cycle, tile);
        ++n;
        ++emitted;
    }
    if (emitted > 0)
        _statBusy.inc();
    if (_tiles.empty())
        _current.reset();
}

bool
FragmentGenerator::empty() const
{
    return _in.empty() && !_current;
}

} // namespace attila::gpu

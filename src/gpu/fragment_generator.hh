/**
 * @file
 * FragmentGenerator: traverses the triangle's projected area and
 * iteratively generates 8x8-fragment tiles (paper §2.2).
 *
 * Two traversal algorithms are implemented, as in ATTILA: the
 * recursive descent of McCool et al. (default) and a Neon-style tile
 * scanner.  Fragments outside the triangle or the scissor window are
 * generated with their cull flag set (cleared coverage); fully empty
 * tiles are dropped.  The baseline emits up to two tiles (2 x 64
 * fragments) per cycle.
 */

#ifndef ATTILA_GPU_FRAGMENT_GENERATOR_HH
#define ATTILA_GPU_FRAGMENT_GENERATOR_HH

#include <deque>

#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "sim/box.hh"

namespace attila::gpu
{

/** The Fragment Generator box. */
class FragmentGenerator : public sim::Box
{
  public:
    FragmentGenerator(sim::SignalBinder& binder,
                      sim::StatisticManager& stats,
                      const GpuConfig& config);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet. */
    bool busy() const override { return !empty(); }

  private:
    void startTriangle(Cycle cycle);
    TileObjPtr buildTile(s32 x0, s32 y0) const;

    const GpuConfig& _config;
    LinkRx<TriangleObj> _in;
    LinkTx _out;

    TriangleObjPtr _current;
    std::deque<std::pair<s32, s32>> _tiles; ///< Candidate tiles left.

    sim::Statistic& _statTiles;
    sim::Statistic& _statFragments;
    sim::Statistic& _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_FRAGMENT_GENERATOR_HH

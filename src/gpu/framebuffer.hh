/**
 * @file
 * Framebuffer memory layout helpers.
 *
 * Colour and depth/stencil buffers are stored tile-linear: 8x8-pixel
 * tiles of 4-byte elements, 256 bytes per tile — exactly one
 * framebuffer cache line (Table 2) and one Hierarchical Z block.
 * Tiles are laid out row-major.  This is the third tiling level of
 * the fragment generator (paper §2.2).
 */

#ifndef ATTILA_GPU_FRAMEBUFFER_HH
#define ATTILA_GPU_FRAMEBUFFER_HH

#include "sim/types.hh"

namespace attila::gpu
{

/** Framebuffer tile dimension in pixels. */
constexpr u32 fbTileDim = 8;
/** Pixels per tile. */
constexpr u32 fbTilePixels = fbTileDim * fbTileDim;
/** Bytes per 4-byte-pixel tile (== cache line size). */
constexpr u32 fbTileBytes = fbTilePixels * 4;

/** Number of tiles across a surface of @p width pixels. */
inline u32
fbTilesPerRow(u32 width)
{
    return (width + fbTileDim - 1) / fbTileDim;
}

/** Linear tile index of the tile containing pixel (x, y). */
inline u32
fbTileIndex(u32 width, u32 x, u32 y)
{
    return (y / fbTileDim) * fbTilesPerRow(width) + (x / fbTileDim);
}

/** Byte address of pixel (x, y) in a tiled 4-byte surface. */
inline u32
fbPixelAddress(u32 base, u32 width, u32 x, u32 y)
{
    return base + fbTileIndex(width, x, y) * fbTileBytes +
           ((y % fbTileDim) * fbTileDim + (x % fbTileDim)) * 4;
}

/** Byte address of the tile containing pixel (x, y). */
inline u32
fbTileAddress(u32 base, u32 width, u32 x, u32 y)
{
    return base + fbTileIndex(width, x, y) * fbTileBytes;
}

/** Total bytes of a tiled surface. */
inline u32
fbSurfaceBytes(u32 width, u32 height)
{
    const u32 rows = (height + fbTileDim - 1) / fbTileDim;
    return fbTilesPerRow(width) * rows * fbTileBytes;
}

} // namespace attila::gpu

#endif // ATTILA_GPU_FRAMEBUFFER_HH

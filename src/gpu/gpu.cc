#include "gpu/gpu.hh"

#include <algorithm>
#include <cstdlib>

#include "emu/decoded_program.hh"

namespace attila::gpu
{

namespace
{

/**
 * Environment layering for direct Gpu construction (tests, examples,
 * embedded hosts): ATTILA_CONFIG / ATTILA_CONFIG_SET plus the legacy
 * per-knob toggles, all parsed by GpuConfig::applyEnvOverrides()
 * against the shared string<->enum tables.  A config that already
 * went through a harness's explicit layering (envApplied) passes
 * through untouched, so `--set` overrides stay on top of the
 * environment.
 */
GpuConfig
applyEnvOverrides(GpuConfig config)
{
    if (!config.envApplied)
        config.applyEnvOverrides();
    return config;
}

} // anonymous namespace

Gpu::Gpu(const GpuConfig& config)
    : _config(applyEnvOverrides(config)),
      _memory(std::make_unique<emu::GpuMemory>(_config.memorySize))
{
    _sim.stats().setWindow(config.statsWindow);
    if (!config.signalTracePath.empty())
        _sim.enableTracing(config.signalTracePath);

    sim::SignalBinder& binder = _sim.binder();
    sim::StatisticManager& stats = _sim.stats();
    binder.attachStatistics(stats);

    _commandProcessor =
        std::make_unique<CommandProcessor>(binder, stats, _config);
    _streamer = std::make_unique<Streamer>(binder, stats, _config);
    _assembly =
        std::make_unique<PrimitiveAssembly>(binder, stats, _config);
    _clipper = std::make_unique<Clipper>(binder, stats, _config);
    _setup = std::make_unique<TriangleSetup>(binder, stats, _config);
    _fragmentGenerator =
        std::make_unique<FragmentGenerator>(binder, stats, _config);
    _hz = std::make_unique<HierarchicalZ>(binder, stats, _config);
    for (u32 i = 0; i < _config.numRops; ++i) {
        _ropz.push_back(std::make_unique<ZStencilTest>(
            binder, stats, _config, i, *_memory));
    }
    _interpolator =
        std::make_unique<Interpolator>(binder, stats, _config);
    _ffifo = std::make_unique<FragmentFifo>(binder, stats, _config);

    const u32 totalShaders =
        _config.numShaders +
        (_config.unifiedShaders ? 0 : _config.numVertexShaders);
    for (u32 s = 0; s < totalShaders; ++s) {
        const bool vertexOnly = s >= _config.numShaders;
        _shaders.push_back(std::make_unique<ShaderUnit>(
            binder, stats, _config, s, vertexOnly));
    }
    for (u32 t = 0; t < _config.numTextureUnits; ++t) {
        _textureUnits.push_back(std::make_unique<TextureUnit>(
            binder, stats, _config, t, *_memory));
    }
    for (u32 i = 0; i < _config.numRops; ++i) {
        _ropc.push_back(std::make_unique<ColorWrite>(
            binder, stats, _config, i, *_memory));
    }
    _dac = std::make_unique<Dac>(binder, stats, _config);
    _dac->setMemory(_memory.get());
    {
        std::vector<std::shared_ptr<const ColorClearInfo>> infos;
        for (const auto& rop : _ropc)
            infos.push_back(rop->clearInfo());
        _dac->setClearInfo(std::move(infos));
    }

    std::vector<std::string> clients;
    clients.push_back("mc.cp");
    clients.push_back("mc.streamer");
    for (u32 i = 0; i < _config.numRops; ++i)
        clients.push_back("mc.zcache" + std::to_string(i));
    for (u32 i = 0; i < _config.numRops; ++i)
        clients.push_back("mc.colorcache" + std::to_string(i));
    for (u32 t = 0; t < _config.numTextureUnits; ++t)
        clients.push_back("mc.texcache" + std::to_string(t));
    clients.push_back("mc.dac");
    _memoryController = std::make_unique<MemoryController>(
        binder, stats, _config, *_memory, clients);

    binder.checkConnectivity();

    // The whole pipeline runs in one master-rate domain for now; the
    // domain layer is the seam for future memory/display clocks.
    // The configured memory/display rates are validated here (they
    // must divide the core clock — the divider machinery only models
    // integer ratios) even while the boxes still share the core
    // domain, so sweep files fail at load, not when the domains
    // split.
    if (_config.clockMHz == 0)
        fatal("config: clock.gpuMHz must be >= 1");
    if (_config.memoryClockMHz != 0 &&
        _config.clockMHz % _config.memoryClockMHz != 0) {
        fatal("config: clock.memoryMHz (", _config.memoryClockMHz,
              ") must divide clock.gpuMHz (", _config.clockMHz, ")");
    }
    if (_config.displayClockMHz != 0 &&
        _config.clockMHz % _config.displayClockMHz != 0) {
        fatal("config: clock.displayMHz (", _config.displayClockMHz,
              ") must divide clock.gpuMHz (", _config.clockMHz, ")");
    }
    sim::ClockDomain& core = _sim.domain("gpu");
    core.setFrequencyMHz(_config.clockMHz);
    core.addBox(_commandProcessor.get());
    core.addBox(_streamer.get());
    core.addBox(_assembly.get());
    core.addBox(_clipper.get());
    core.addBox(_setup.get());
    core.addBox(_fragmentGenerator.get());
    core.addBox(_hz.get());
    for (auto& rop : _ropz)
        core.addBox(rop.get());
    core.addBox(_interpolator.get());
    core.addBox(_ffifo.get());
    for (auto& shader : _shaders)
        core.addBox(shader.get());
    for (auto& tu : _textureUnits)
        core.addBox(tu.get());
    for (auto& rop : _ropc)
        core.addBox(rop.get());
    core.addBox(_dac.get());
    core.addBox(_memoryController.get());

    if (_config.scheduler == SchedulerKind::Parallel) {
        if (!_config.signalTracePath.empty()) {
            // The trace file's record order is only meaningful when
            // boxes commit in a fixed order.
            warn("signal tracing forces the serial scheduler");
        } else {
            sim::ParallelScheduler::Options options;
            options.workSteal = _config.schedWorkSteal;
            options.slackPercent = _config.schedPartitionSlack;
            _sim.setScheduler(std::make_unique<sim::ParallelScheduler>(
                _config.schedulerThreads, options));
        }
    }
    _sim.setIdleSkip(_config.idleSkip);

    // Structured event tracing records into per-thread chunks, so —
    // unlike the text signal trace above — it runs under any
    // scheduler.  Enabled last: every box is in its domain and every
    // signal registered, so unit ids come out deterministic.
    if (_config.eventTrace) {
        if constexpr (!sim::kEventTraceCompiled) {
            warn("event tracing requested but compiled out "
                 "(ATTILA_TRACE_EVENTS=0); no events will be "
                 "recorded");
        } else {
            _sim.enableEventTrace();
        }
    }
}

bool
Gpu::runUntilIdle(u64 max_cycles)
{
    // The full quiescence check walks every box and every signal
    // (including objects still inside the wires), so it only runs
    // every drainPollInterval cycles once the command stream is
    // exhausted; the per-cycle cost is a single empty() call on the
    // command processor.
    const u64 poll = std::max(1u, _config.drainPollInterval);
    for (u64 i = 0; i < max_cycles; ++i) {
        _sim.step();
        if (!_commandProcessor->empty())
            continue;
        if (_sim.cycle() % poll == 0 && _sim.quiescent())
            return true;
        // Fully idle stretches between polls fast-forward in bulk
        // (bit-identical: the skipped steps clock nothing).  Cap at
        // the next poll boundary so the quiescence check still runs
        // at exactly the cycles the always-clock path checks.
        if (_config.idleSkip && i + 1 < max_cycles) {
            const u64 untilPoll = poll - _sim.cycle() % poll;
            if (untilPoll > 1) {
                i += _sim.fastForward(
                    std::min(untilPoll - 1, max_cycles - i - 1));
            }
        }
    }
    return false;
}

} // namespace attila::gpu

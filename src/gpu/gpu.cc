#include "gpu/gpu.hh"

namespace attila::gpu
{

Gpu::Gpu(const GpuConfig& config)
    : _config(config),
      _memory(std::make_unique<emu::GpuMemory>(config.memorySize))
{
    _sim.stats().setWindow(config.statsWindow);
    if (!config.signalTracePath.empty())
        _sim.enableTracing(config.signalTracePath);

    sim::SignalBinder& binder = _sim.binder();
    sim::StatisticManager& stats = _sim.stats();
    binder.attachStatistics(stats);

    _commandProcessor =
        std::make_unique<CommandProcessor>(binder, stats, _config);
    _streamer = std::make_unique<Streamer>(binder, stats, _config);
    _assembly =
        std::make_unique<PrimitiveAssembly>(binder, stats, _config);
    _clipper = std::make_unique<Clipper>(binder, stats, _config);
    _setup = std::make_unique<TriangleSetup>(binder, stats, _config);
    _fragmentGenerator =
        std::make_unique<FragmentGenerator>(binder, stats, _config);
    _hz = std::make_unique<HierarchicalZ>(binder, stats, _config);
    for (u32 i = 0; i < _config.numRops; ++i) {
        _ropz.push_back(std::make_unique<ZStencilTest>(
            binder, stats, _config, i, *_memory));
    }
    _interpolator =
        std::make_unique<Interpolator>(binder, stats, _config);
    _ffifo = std::make_unique<FragmentFifo>(binder, stats, _config);

    const u32 totalShaders =
        _config.numShaders +
        (_config.unifiedShaders ? 0 : _config.numVertexShaders);
    for (u32 s = 0; s < totalShaders; ++s) {
        const bool vertexOnly = s >= _config.numShaders;
        _shaders.push_back(std::make_unique<ShaderUnit>(
            binder, stats, _config, s, vertexOnly));
    }
    for (u32 t = 0; t < _config.numTextureUnits; ++t) {
        _textureUnits.push_back(std::make_unique<TextureUnit>(
            binder, stats, _config, t, *_memory));
    }
    for (u32 i = 0; i < _config.numRops; ++i) {
        _ropc.push_back(std::make_unique<ColorWrite>(
            binder, stats, _config, i, *_memory));
    }
    _dac = std::make_unique<Dac>(binder, stats, _config);
    _dac->setMemory(_memory.get());
    {
        std::vector<std::shared_ptr<const ColorClearInfo>> infos;
        for (const auto& rop : _ropc)
            infos.push_back(rop->clearInfo());
        _dac->setClearInfo(std::move(infos));
    }

    std::vector<std::string> clients;
    clients.push_back("mc.cp");
    clients.push_back("mc.streamer");
    for (u32 i = 0; i < _config.numRops; ++i)
        clients.push_back("mc.zcache" + std::to_string(i));
    for (u32 i = 0; i < _config.numRops; ++i)
        clients.push_back("mc.colorcache" + std::to_string(i));
    for (u32 t = 0; t < _config.numTextureUnits; ++t)
        clients.push_back("mc.texcache" + std::to_string(t));
    clients.push_back("mc.dac");
    _memoryController = std::make_unique<MemoryController>(
        binder, stats, _config, *_memory, clients);

    binder.checkConnectivity();

    _sim.addBox(_commandProcessor.get());
    _sim.addBox(_streamer.get());
    _sim.addBox(_assembly.get());
    _sim.addBox(_clipper.get());
    _sim.addBox(_setup.get());
    _sim.addBox(_fragmentGenerator.get());
    _sim.addBox(_hz.get());
    for (auto& rop : _ropz)
        _sim.addBox(rop.get());
    _sim.addBox(_interpolator.get());
    _sim.addBox(_ffifo.get());
    for (auto& shader : _shaders)
        _sim.addBox(shader.get());
    for (auto& tu : _textureUnits)
        _sim.addBox(tu.get());
    for (auto& rop : _ropc)
        _sim.addBox(rop.get());
    _sim.addBox(_dac.get());
    _sim.addBox(_memoryController.get());
}

bool
Gpu::runUntilIdle(u64 max_cycles)
{
    // Signals can hold objects in flight for up to the largest
    // configured latency, which boxes' empty() cannot see; require
    // a long stable-empty streak before declaring the drain done.
    constexpr u32 stableCycles = 64;
    u32 stable = 0;
    for (u64 i = 0; i < max_cycles; ++i) {
        _sim.step();
        if (_commandProcessor->empty() && _sim.allEmpty()) {
            if (++stable >= stableCycles)
                return true;
        } else {
            stable = 0;
        }
    }
    return false;
}

} // namespace attila::gpu

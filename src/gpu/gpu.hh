/**
 * @file
 * Gpu: the top-level simulated ATTILA GPU.
 *
 * Assembles the configured pipeline — unified (Fig 2) or non-unified
 * (Fig 1) — out of boxes and signals, owns the GPU memory image and
 * the simulator infrastructure, and exposes the host interface used
 * by the driver: submit a command stream and run the clock.
 */

#ifndef ATTILA_GPU_GPU_HH
#define ATTILA_GPU_GPU_HH

#include <memory>

#include "emu/memory.hh"
#include "gpu/color_write.hh"
#include "gpu/command_processor.hh"
#include "gpu/dac.hh"
#include "gpu/fragment_fifo.hh"
#include "gpu/fragment_generator.hh"
#include "gpu/gpu_config.hh"
#include "gpu/hierarchical_z.hh"
#include "gpu/interpolator.hh"
#include "gpu/memory_controller.hh"
#include "gpu/primitive_assembly.hh"
#include "gpu/clipper.hh"
#include "gpu/shader_unit.hh"
#include "gpu/streamer.hh"
#include "gpu/texture_unit.hh"
#include "gpu/triangle_setup.hh"
#include "gpu/z_stencil_test.hh"
#include "sim/simulator.hh"

namespace attila::gpu
{

/** The whole simulated GPU. */
class Gpu
{
  public:
    explicit Gpu(const GpuConfig& config);

    Gpu(const Gpu&) = delete;
    Gpu& operator=(const Gpu&) = delete;

    /** Queue a command stream for execution. */
    void
    submit(const CommandList& list)
    {
        _commandProcessor->submit(list);
    }

    /**
     * Clock the GPU until the submitted work drains (or @p max_cycles
     * elapse).  Returns true when the pipeline drained.
     */
    bool runUntilIdle(u64 max_cycles = 500'000'000);

    sim::Simulator& simulator() { return _sim; }
    sim::StatisticManager& stats() { return _sim.stats(); }
    emu::GpuMemory& memory() { return *_memory; }
    const GpuConfig& config() const { return _config; }

    CommandProcessor& commandProcessor()
    {
        return *_commandProcessor;
    }
    Dac& dac() { return *_dac; }

    /** Frames dumped by the DAC so far. */
    const std::vector<FrameImage>&
    frames() const
    {
        return _dac->frames();
    }

    Cycle cycle() const { return _sim.cycle(); }

  private:
    GpuConfig _config;
    std::unique_ptr<emu::GpuMemory> _memory;
    sim::Simulator _sim;

    std::unique_ptr<CommandProcessor> _commandProcessor;
    std::unique_ptr<Streamer> _streamer;
    std::unique_ptr<PrimitiveAssembly> _assembly;
    std::unique_ptr<Clipper> _clipper;
    std::unique_ptr<TriangleSetup> _setup;
    std::unique_ptr<FragmentGenerator> _fragmentGenerator;
    std::unique_ptr<HierarchicalZ> _hz;
    std::vector<std::unique_ptr<ZStencilTest>> _ropz;
    std::unique_ptr<Interpolator> _interpolator;
    std::unique_ptr<FragmentFifo> _ffifo;
    std::vector<std::unique_ptr<ShaderUnit>> _shaders;
    std::vector<std::unique_ptr<TextureUnit>> _textureUnits;
    std::vector<std::unique_ptr<ColorWrite>> _ropc;
    std::unique_ptr<Dac> _dac;
    std::unique_ptr<MemoryController> _memoryController;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_GPU_HH

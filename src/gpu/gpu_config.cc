/**
 * @file
 * GpuConfig text-configuration plumbing: the field table binding
 * every parameter to its "section.key" name, the layered
 * file/env/--set application, the canonical dump and the
 * gpgpu-sim-style composite string parsers (cache geometry, DRAM
 * timing validation).
 *
 * One visitor template walks the field table in both directions, so
 * a parameter added to visitConfigFields() is automatically loaded,
 * dumped, hashed, diffed and covered by the round-trip test.
 */

#include "gpu/gpu_config.hh"

#include <bit>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "emu/decoded_program.hh"
#include "gpu/dram_timing.hh"
#include "sim/config_file.hh"

namespace attila::gpu
{

namespace
{

/**
 * The field table.  Visitor contract: one field() overload per value
 * category (bool, u32, u64, string, enum).  Key order here defines
 * nothing — the ConfigFile dump sorts canonically — but grouping
 * mirrors the struct for review.
 */
template <typename V>
void
visitConfigFields(GpuConfig& c, V&& v)
{
    v.field("global.unifiedShaders", c.unifiedShaders);
    v.field("global.memorySize", c.memorySize);

    v.field("clock.gpuMHz", c.clockMHz);
    v.field("clock.memoryMHz", c.memoryClockMHz);
    v.field("clock.displayMHz", c.displayClockMHz);

    v.field("shader.units", c.numShaders);
    v.field("shader.vertexUnits", c.numVertexShaders);
    v.field("shader.scheduling", c.scheduling);
    v.field("shader.inputsInFlight", c.shaderInputsInFlight);
    v.field("shader.vertexThreads", c.vertexShaderThreads);
    v.field("shader.registers", c.shaderRegisters);
    v.field("shader.vertexRegisters", c.vertexShaderRegisters);
    v.field("shader.fetchRate", c.shaderFetchRate);
    v.field("shader.inputsPerCycle", c.shaderInputsPerCycle);

    v.field("texture.units", c.numTextureUnits);
    v.field("texture.cacheKB", c.textureCacheKB);
    v.field("texture.cacheWays", c.textureCacheWays);
    v.field("texture.cacheLine", c.textureCacheLine);
    v.field("texture.cachePorts", c.textureCachePorts);
    v.field("texture.cacheMshr", c.textureCacheMshr);
    v.field("texture.requestQueue", c.textureRequestQueue);

    v.field("rop.units", c.numRops);
    v.field("rop.fragmentsPerCycle", c.ropFragmentsPerCycle);
    v.field("rop.latency", c.ropLatency);
    v.field("rop.zCacheKB", c.zCacheKB);
    v.field("rop.zCacheWays", c.zCacheWays);
    v.field("rop.zCacheLine", c.zCacheLine);
    v.field("rop.zCacheMshr", c.zCacheMshr);
    v.field("rop.colorCacheKB", c.colorCacheKB);
    v.field("rop.colorCacheWays", c.colorCacheWays);
    v.field("rop.colorCacheLine", c.colorCacheLine);
    v.field("rop.colorCacheMshr", c.colorCacheMshr);
    v.field("rop.zCompression", c.zCompression);
    v.field("rop.fastClear", c.fastClear);
    v.field("rop.clearCycles", c.clearCycles);
    v.field("rop.doubleRateZ", c.doubleRateZ);
    v.field("rop.colorCompression", c.colorCompression);

    v.field("geometry.streamerQueue", c.streamerQueue);
    v.field("geometry.vertexCacheEntries", c.vertexCacheEntries);
    v.field("geometry.vertexRequestQueue", c.vertexRequestQueue);
    v.field("geometry.primitiveAssemblyQueue",
            c.primitiveAssemblyQueue);
    v.field("geometry.clipperQueue", c.clipperQueue);
    v.field("geometry.clipperLatency", c.clipperLatency);
    v.field("geometry.trianglesPerCycle", c.trianglesPerCycle);
    v.field("geometry.setupQueue", c.setupQueue);
    v.field("geometry.setupLatency", c.setupLatency);
    v.field("geometry.fragmentGenQueue", c.fragmentGenQueue);
    v.field("geometry.fragmentGen", c.fragmentGen);
    v.field("geometry.tilesPerCycle", c.tilesPerCycle);
    v.field("geometry.genTileSize", c.genTileSize);

    v.field("hz.enabled", c.hzEnabled);
    v.field("hz.queue", c.hzQueue);
    v.field("hz.tilesPerCycle", c.hzTilesPerCycle);

    v.field("interpolator.baseLatency", c.interpolatorBaseLatency);
    v.field("interpolator.maxLatency", c.interpolatorMaxLatency);
    v.field("interpolator.quadsPerCycle",
            c.interpolatorQuadsPerCycle);

    v.field("ffifo.queue", c.fragmentFifoQueue);

    v.field("memory.channels", c.memoryChannels);
    v.field("memory.bytesPerCycle", c.channelBytesPerCycle);
    v.field("memory.burstBytes", c.memoryBurstBytes);
    v.field("memory.interleave", c.channelInterleave);
    v.field("memory.pageBytes", c.memoryPageBytes);
    v.field("memory.pageOpenPenalty", c.pageOpenPenalty);
    v.field("memory.readWriteTurnaround", c.readWriteTurnaround);
    v.field("memory.requestQueue", c.memoryRequestQueue);
    v.field("memory.systemBusBytesPerCycle",
            c.systemBusBytesPerCycle);
    v.field("memory.memModel", c.memModel);
    v.field("memory.dramScheduler", c.dramScheduler);
    v.field("memory.dramTiming", c.dramTiming);
    v.field("memory.frfcfsCap", c.frfcfsCap);
    v.field("memory.frfcfsWindow", c.frfcfsWindow);

    v.field("engine.scheduler", c.scheduler);
    v.field("engine.threads", c.schedulerThreads);
    v.field("engine.workSteal", c.schedWorkSteal);
    v.field("engine.partitionSlack", c.schedPartitionSlack);
    v.field("engine.idleSkip", c.idleSkip);
    v.field("engine.emuFastPath", c.emuFastPath);
    v.field("engine.memFastPath", c.memFastPath);
    v.field("engine.drainPollInterval", c.drainPollInterval);

    v.field("stats.window", c.statsWindow);
    v.field("stats.signalTracePath", c.signalTracePath);
    v.field("stats.eventTrace", c.eventTrace);
}

/** Loader: overlays a ConfigFile's assignments onto the fields. */
struct Loader
{
    const sim::ConfigFile& cfg;

    void
    field(const char* key, bool& ref)
    {
        ref = cfg.getBool(key, ref);
    }

    void
    field(const char* key, u32& ref)
    {
        ref = cfg.getU32(key, ref);
    }

    void
    field(const char* key, u64& ref)
    {
        ref = cfg.getU64(key, ref);
    }

    void
    field(const char* key, std::string& ref)
    {
        ref = cfg.getString(key, ref);
    }

    template <typename E>
    void
    field(const char* key, E& ref)
    {
        const sim::ConfigFile::Entry* e = cfg.find(key);
        if (!e)
            return;
        if (const auto v = enumFromName<E>(e->value)) {
            ref = *v;
            return;
        }
        throw sim::ConfigError("config: " + e->origin + ": key '" +
                               key + "': expected " +
                               enumChoices<E>() + ", got '" +
                               e->value + "'");
    }
};

/** Dumper: renders every field into a ConfigFile for dump(). */
struct Dumper
{
    sim::ConfigFile& cfg;

    void
    field(const char* key, bool& ref)
    {
        cfg.set(key, ref ? "true" : "false", "default");
    }

    void
    field(const char* key, u32& ref)
    {
        cfg.set(key, std::to_string(ref), "default");
    }

    void
    field(const char* key, u64& ref)
    {
        cfg.set(key, std::to_string(ref), "default");
    }

    void
    field(const char* key, std::string& ref)
    {
        cfg.set(key, ref, "default");
    }

    template <typename E>
    void
    field(const char* key, E& ref)
    {
        cfg.set(key, enumName(ref), "default");
    }
};

/**
 * Expand the input-only composite keys: the gpgpu-sim cache
 * geometry strings set the discrete KB/ways/line/MSHR fields, and
 * the DRAM timing string is validated eagerly so a bad sweep file
 * fails at load, not mid-run.
 */
void
applyCompositeKeys(GpuConfig& c, const sim::ConfigFile& cfg)
{
    struct GeomKey
    {
        const char* key;
        u32* kb;
        u32* ways;
        u32* line;
        u32* mshr;
    };
    const GeomKey geoms[] = {
        {"texture.cacheGeometry", &c.textureCacheKB,
         &c.textureCacheWays, &c.textureCacheLine,
         &c.textureCacheMshr},
        {"rop.zCacheGeometry", &c.zCacheKB, &c.zCacheWays,
         &c.zCacheLine, &c.zCacheMshr},
        {"rop.colorCacheGeometry", &c.colorCacheKB, &c.colorCacheWays,
         &c.colorCacheLine, &c.colorCacheMshr},
    };
    for (const GeomKey& g : geoms) {
        const sim::ConfigFile::Entry* e = cfg.find(g.key);
        if (!e)
            continue;
        const CacheGeometry geom = CacheGeometry::parse(e->value);
        *g.kb = geom.sizeKB();
        *g.ways = geom.ways;
        *g.line = geom.lineBytes;
        *g.mshr = geom.mshr;
    }
    // Validation only; the string itself is the stored form.
    (void)DramTiming::parse(c.dramTiming);
}

void
applyConfig(GpuConfig& c, const sim::ConfigFile& cfg)
{
    visitConfigFields(c, Loader{cfg});
    applyCompositeKeys(c, cfg);
    cfg.failOnUnconsumed("GpuConfig");
}

/** Shared boolean env parsing for the legacy ATTILA_* toggles. */
std::optional<bool>
envFlag(const char* name)
{
    const char* env = std::getenv(name);
    if (!env)
        return std::nullopt;
    const std::string flag(env);
    if (flag.empty())
        return std::nullopt;
    if (flag == "1" || flag == "true" || flag == "on")
        return true;
    if (flag == "0" || flag == "false" || flag == "off")
        return false;
    fatal(name, "='", flag, "': expected 0|1|false|true|off|on");
}

} // anonymous namespace

CacheGeometry
CacheGeometry::parse(const std::string& spec)
{
    const auto bad = [&spec](const std::string& msg) -> void {
        throw sim::ConfigError("config: cache geometry '" + spec +
                               "': " + msg);
    };
    CacheGeometry g;
    const std::size_t comma = spec.find(',');
    const std::string geom = spec.substr(0, comma);

    u32 parts[3] = {0, 0, 0};
    std::istringstream in(geom);
    std::string token;
    int n = 0;
    while (std::getline(in, token, ':')) {
        if (n >= 3)
            bad("expected <sets>:<bsize>:<assoc>");
        std::size_t pos = 0;
        u64 v = 0;
        bool ok = !token.empty();
        if (ok) {
            try {
                v = std::stoull(token, &pos, 10);
            } catch (const std::exception&) {
                ok = false;
            }
        }
        if (!ok || pos != token.size() || v == 0 || v > ~u32{0})
            bad("bad value '" + token + "'");
        parts[n++] = static_cast<u32>(v);
    }
    if (n != 3)
        bad("expected <sets>:<bsize>:<assoc>");
    g.sets = parts[0];
    g.lineBytes = parts[1];
    g.ways = parts[2];
    if (!std::has_single_bit(g.sets))
        bad("sets must be a power of two, got " +
            std::to_string(g.sets));
    if (!std::has_single_bit(g.lineBytes))
        bad("bsize must be a power of two, got " +
            std::to_string(g.lineBytes));

    if (comma != std::string::npos) {
        const std::string mshr = spec.substr(comma + 1);
        const std::size_t colon = mshr.find(':');
        if (colon == std::string::npos)
            bad("expected ,<mshr type>:<N> after geometry");
        const std::string type = mshr.substr(0, colon);
        const std::string count = mshr.substr(colon + 1);
        if (type.size() != 1 ||
            !std::isalpha(static_cast<unsigned char>(type[0])))
            bad("bad MSHR type '" + type + "'");
        std::size_t pos = 0;
        u64 v = 0;
        bool ok = !count.empty();
        if (ok) {
            try {
                v = std::stoull(count, &pos, 10);
            } catch (const std::exception&) {
                ok = false;
            }
        }
        if (!ok || pos != count.size() || v == 0 || v > 32)
            bad("bad MSHR count '" + count +
                "' (expected 1..32 — the fill table free mask is "
                "32 bits)");
        g.mshr = static_cast<u32>(v);
    }
    return g;
}

std::string
CacheGeometry::format() const
{
    std::ostringstream out;
    out << sets << ":" << lineBytes << ":" << ways << ",A:" << mshr;
    return out.str();
}

GpuConfig
GpuConfig::fromFile(const std::string& path)
{
    GpuConfig c = baseline();
    c.applyFile(path);
    return c;
}

GpuConfig
GpuConfig::fromConfigText(const std::string& text,
                          const std::string& name)
{
    GpuConfig c = baseline();
    c.applyText(text, name);
    return c;
}

void
GpuConfig::applyFile(const std::string& path)
{
    sim::ConfigFile cfg;
    cfg.parseFile(path);
    applyConfig(*this, cfg);
}

void
GpuConfig::applyText(const std::string& text,
                     const std::string& name)
{
    sim::ConfigFile cfg;
    cfg.parseString(text, name);
    applyConfig(*this, cfg);
}

void
GpuConfig::applySet(const std::string& assignment,
                    const std::string& origin)
{
    sim::ConfigFile cfg;
    cfg.setOverride(assignment, origin);
    applyConfig(*this, cfg);
}

void
GpuConfig::applyEnvOverrides()
{
    if (const char* env = std::getenv("ATTILA_CONFIG")) {
        if (*env)
            applyFile(env);
    }
    if (const char* env = std::getenv("ATTILA_CONFIG_SET")) {
        // Comma or semicolon separated section.key=value list.
        std::string item;
        std::istringstream in(env);
        while (std::getline(in, item, ',')) {
            std::istringstream sub(item);
            std::string one;
            while (std::getline(sub, one, ';')) {
                if (!one.empty())
                    applySet(one, "ATTILA_CONFIG_SET");
            }
        }
    }
    if (const char* env = std::getenv("ATTILA_SCHEDULER")) {
        const std::string kind(env);
        if (!kind.empty()) {
            if (const auto v = enumFromName<SchedulerKind>(kind))
                scheduler = *v;
            else
                fatal("ATTILA_SCHEDULER='", kind, "': expected ",
                      enumChoices<SchedulerKind>());
        }
    }
    if (const char* env = std::getenv("ATTILA_SCHED_THREADS")) {
        schedulerThreads =
            static_cast<u32>(std::strtoul(env, nullptr, 10));
    }
    if (const auto flag = envFlag("ATTILA_WORK_STEAL"))
        schedWorkSteal = *flag;
    if (const auto flag = envFlag("ATTILA_IDLE_SKIP"))
        idleSkip = *flag;
    if (const auto fast = emu::envFastPathOverride())
        emuFastPath = *fast;
    if (const auto flag = envFlag("ATTILA_MEM_FASTPATH"))
        memFastPath = *flag;
    if (const auto flag = envFlag("ATTILA_EVENT_TRACE"))
        eventTrace = *flag;
    envApplied = true;
}

std::string
GpuConfig::toConfigText() const
{
    sim::ConfigFile cfg;
    // The dumper only reads; the const_cast keeps visitConfigFields
    // single-sourced for both directions.
    visitConfigFields(const_cast<GpuConfig&>(*this), Dumper{cfg});
    return cfg.dump();
}

void
GpuConfig::toFile(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) {
        throw sim::ConfigError("config: cannot write '" + path +
                               "'");
    }
    out << toConfigText();
}

u64
GpuConfig::configHash() const
{
    const std::string text = toConfigText();
    u64 h = 1469598103934665603ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace attila::gpu

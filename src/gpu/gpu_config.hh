/**
 * @file
 * GpuConfig: the simulator's configuration (paper §3: "over 100
 * parameters").  Defaults reproduce the baseline architecture of
 * Tables 1 and 2.
 *
 * Every field is reachable without a rebuild through the layered
 * text-configuration system (sim/config_file.hh):
 *
 *   defaults  <  --config file  <  ATTILA_CONFIG file
 *             <  ATTILA_CONFIG_SET / legacy ATTILA_* env vars
 *             <  --set section.key=value
 *
 * fromFile()/toFile() round-trip the full parameter set;
 * toConfigText() is the canonical dump whose FNV-1a hash keys
 * BENCH_JSON lines and sweep result stores.
 */

#ifndef ATTILA_GPU_GPU_CONFIG_HH
#define ATTILA_GPU_GPU_CONFIG_HH

#include <optional>
#include <string>
#include <string_view>

#include "sim/types.hh"

namespace attila::gpu
{

/** Shader scheduling modes (the Fig 7 experiment). */
enum class ShaderScheduling : u8
{
    /** Thread window: out-of-order execution across the window's
     * threads, in-order commit. */
    ThreadWindow,
    /** Shader input queue: strictly in-order execution. */
    InOrderQueue,
};

/** Fragment generator traversal algorithms (paper §2.2). */
enum class FragmentGenKind : u8
{
    Recursive, ///< McCool et al. recursive descent (default).
    Scanline,  ///< Neon-style tile scanner.
};

/** Engine clocking the boxes each cycle (sim/scheduler.hh). */
enum class SchedulerKind : u8
{
    Serial,   ///< Single-threaded reference engine.
    Parallel, ///< Worker pool, one barrier per phase.
};

/** Memory controller timing model. */
enum class MemModel : u8
{
    Flat,   ///< Flat burst latency + page-open/turnaround penalties.
    Banked, ///< Banked GDDR: row state + RCD/RAS/RP/RC/CL/WL/WR.
};

/** DRAM request scheduling policy (banked model only). */
enum class DramSchedPolicy : u8
{
    Fifo,   ///< Oldest first (matches the flat model's order).
    FrFcfs, ///< Row-hit first, oldest within a class (FR-FCFS).
};

// ===== String <-> enum tables =====================================
// The single source of truth for every textual spelling of a config
// enum, shared by the config-file loader, the bench --flags and the
// ATTILA_* environment overrides.  Adding an enumerator means adding
// exactly one table row.

/** One name↔value binding of a config enum. */
template <typename E>
struct EnumName
{
    const char* name;
    E value;
};

template <typename E>
struct EnumNames; // Specialized per enum below.

template <>
struct EnumNames<ShaderScheduling>
{
    static constexpr EnumName<ShaderScheduling> table[] = {
        {"threadwindow", ShaderScheduling::ThreadWindow},
        {"inorder", ShaderScheduling::InOrderQueue},
    };
};

template <>
struct EnumNames<FragmentGenKind>
{
    static constexpr EnumName<FragmentGenKind> table[] = {
        {"recursive", FragmentGenKind::Recursive},
        {"scanline", FragmentGenKind::Scanline},
    };
};

template <>
struct EnumNames<SchedulerKind>
{
    static constexpr EnumName<SchedulerKind> table[] = {
        {"serial", SchedulerKind::Serial},
        {"parallel", SchedulerKind::Parallel},
    };
};

template <>
struct EnumNames<MemModel>
{
    static constexpr EnumName<MemModel> table[] = {
        {"flat", MemModel::Flat},
        {"banked", MemModel::Banked},
    };
};

template <>
struct EnumNames<DramSchedPolicy>
{
    static constexpr EnumName<DramSchedPolicy> table[] = {
        {"fifo", DramSchedPolicy::Fifo},
        {"frfcfs", DramSchedPolicy::FrFcfs},
    };
};

/** Canonical spelling of @p value. */
template <typename E>
constexpr const char*
enumName(E value)
{
    for (const auto& entry : EnumNames<E>::table) {
        if (entry.value == value)
            return entry.name;
    }
    return "?";
}

/** Parse @p name; nullopt when it matches no table row. */
template <typename E>
constexpr std::optional<E>
enumFromName(std::string_view name)
{
    for (const auto& entry : EnumNames<E>::table) {
        if (name == entry.name)
            return entry.value;
    }
    return std::nullopt;
}

/** "a|b|c" choice list for usage and error messages. */
template <typename E>
std::string
enumChoices()
{
    std::string out;
    for (const auto& entry : EnumNames<E>::table) {
        if (!out.empty())
            out += '|';
        out += entry.name;
    }
    return out;
}

/**
 * A gpgpu-sim-style cache geometry: `<sets>:<bsize>:<assoc>,<mshr
 * type>:<N>` (e.g. "16:256:4,A:8").  The MSHR clause is optional;
 * the type letter is accepted for spec compatibility and ignored.
 * Feeds the FbCache SoA geometry, so sets and bsize must be powers
 * of two.
 */
struct CacheGeometry
{
    u32 sets = 16;
    u32 lineBytes = 256;
    u32 ways = 4;
    u32 mshr = 4;

    u32 sizeKB() const { return sets * lineBytes * ways / 1024; }

    bool operator==(const CacheGeometry&) const = default;

    /** Throws sim::ConfigError on malformed or non-pow2 input. */
    static CacheGeometry parse(const std::string& spec);

    std::string format() const;
};

/** The full configuration of a simulated ATTILA GPU. */
struct GpuConfig
{
    // ===== Global ===================================================
    bool unifiedShaders = true; ///< Fig 2 (true) vs Fig 1 (false).
    u32 memorySize = 64u << 20; ///< GPU memory bytes.

    // ===== Clock domains ============================================
    /** Core ("gpu") clock domain frequency; also the fps-reporting
     * rate. */
    u64 clockMHz = 600;
    /** Memory clock domain frequency; 0 folds the memory boxes into
     * the core domain (the current model — cross-rate wires need an
     * explicit bridge box).  A non-zero value must divide clockMHz
     * (the divider machinery only models integer ratios). */
    u64 memoryClockMHz = 0;
    /** Display (DAC) clock domain frequency; same rules as
     * memoryClockMHz. */
    u64 displayClockMHz = 0;

    // ===== Shader pool ==============================================
    u32 numShaders = 2;       ///< Fragment/unified shader units.
    u32 numVertexShaders = 4; ///< Dedicated units (non-unified).
    ShaderScheduling scheduling = ShaderScheduling::ThreadWindow;
    /** Shader inputs in flight (fragments+vertices); 1 thread = 4
     * inputs.  Baseline: 112 fragment + 16 vertex inputs. */
    u32 shaderInputsInFlight = 128;
    u32 vertexShaderThreads = 12; ///< Non-unified vertex threads.
    /** Physical temp registers (per input).  Baseline: 448 for the
     * fragment/unified pool. */
    u32 shaderRegisters = 512;
    u32 vertexShaderRegisters = 96;
    u32 shaderFetchRate = 1;  ///< Instructions issued per cycle.
    u32 shaderInputsPerCycle = 4; ///< Fragments accepted per cycle.

    // ===== Texture units ============================================
    u32 numTextureUnits = 2;  ///< One per shader in the baseline.
    u32 textureCacheKB = 16;
    u32 textureCacheWays = 4;
    u32 textureCacheLine = 256;
    u32 textureCachePorts = 4; ///< Texel reads per cycle.
    u32 textureCacheMshr = 4;  ///< Concurrent misses in flight.
    u32 textureRequestQueue = 16;

    // ===== ROPs =====================================================
    u32 numRops = 2;         ///< Z/stencil + colour units each.
    u32 ropFragmentsPerCycle = 4; ///< 1 quad per cycle per unit.
    u32 ropLatency = 2;      ///< Pipeline latency before memory.
    u32 zCacheKB = 16;
    u32 zCacheWays = 4;
    u32 zCacheLine = 256;
    u32 zCacheMshr = 4;
    u32 colorCacheKB = 16;
    u32 colorCacheWays = 4;
    u32 colorCacheLine = 256;
    u32 colorCacheMshr = 4;
    bool zCompression = true;
    bool fastClear = true;
    u32 clearCycles = 8;     ///< Fast clear latency.
    /** Double-rate Z (paper §7 extension): depth/stencil-only
     *  passes (colour writes masked) process two quads per cycle. */
    bool doubleRateZ = false;
    /** Colour compression (paper §7 extension): uniform tiles write
     *  back at 1:4 (flat surfaces, UI, sky). */
    bool colorCompression = false;

    // ===== Geometry pipeline (Table 1) ==============================
    u32 streamerQueue = 48;
    u32 vertexCacheEntries = 16; ///< Post-shading vertex cache.
    u32 vertexRequestQueue = 16;
    u32 primitiveAssemblyQueue = 8;
    u32 clipperQueue = 4;
    u32 clipperLatency = 6;
    u32 trianglesPerCycle = 1;
    u32 setupQueue = 12;
    u32 setupLatency = 10;
    u32 fragmentGenQueue = 16;
    FragmentGenKind fragmentGen = FragmentGenKind::Recursive;
    u32 tilesPerCycle = 2;   ///< 2 x 64 fragments per cycle.
    u32 genTileSize = 8;     ///< Second/third tiling level (8x8).

    // ===== Hierarchical Z ===========================================
    bool hzEnabled = true;
    u32 hzQueue = 64;
    u32 hzTilesPerCycle = 2;

    // ===== Interpolator =============================================
    u32 interpolatorBaseLatency = 2;
    u32 interpolatorMaxLatency = 8;
    u32 interpolatorQuadsPerCycle = 2;

    // ===== Fragment FIFO ============================================
    u32 fragmentFifoQueue = 64;

    // ===== Memory controller ========================================
    u32 memoryChannels = 4;
    u32 channelBytesPerCycle = 16; ///< 64-bit DDR: 16 B/cycle.
    u32 memoryBurstBytes = 64;     ///< One transaction burst.
    u32 channelInterleave = 256;   ///< Bytes per channel stripe.
    u32 memoryPageBytes = 4096;    ///< DRAM row (page) size.
    u32 pageOpenPenalty = 8;       ///< Flat model: page-change cost.
    u32 readWriteTurnaround = 4;   ///< Flat model: rd<->wr switch.
    u32 memoryRequestQueue = 16;   ///< Per-client request queue.
    u32 systemBusBytesPerCycle = 16; ///< PCIe-like: 2 x 8 B/cycle.
    /** DRAM timing model.  Flat reproduces the historical burst
     * latency bit for bit; Banked adds per-channel banks with row
     * open/close state driven by dramTiming. */
    MemModel memModel = MemModel::Flat;
    /** Banked-model request scheduling policy. */
    DramSchedPolicy dramScheduler = DramSchedPolicy::Fifo;
    /** Banked-model timing string (see gpu/dram_timing.hh). */
    std::string dramTiming =
        "nbk=8:CCD=2:RRD=8:RCD=12:RAS=25:RP=10:RC=35:CL=10:WL=7"
        ":WR=11";
    /** FR-FCFS starvation cap: once the oldest pending burst has
     * been overtaken this many times, it is scheduled next
     * regardless of row hits behind it. */
    u32 frfcfsCap = 64;
    /** FR-FCFS scheduling window: pending bursts examined per
     * decision (gpgpu-sim's frfcfs_dram_sched_queue_size). */
    u32 frfcfsWindow = 16;

    // ===== Execution engine =========================================
    /** Box-loop engine; overridable via ATTILA_SCHEDULER
     * (serial|parallel). */
    SchedulerKind scheduler = SchedulerKind::Serial;
    /** Worker threads for the parallel engine; 0 = all hardware
     * threads.  Overridable via ATTILA_SCHED_THREADS. */
    u32 schedulerThreads = 0;
    /** Parallel engine: idle workers steal active boxes from loaded
     * partitions (commit order stays canonical, so results are
     * bit-identical either way).  Overridable via
     * ATTILA_WORK_STEAL=0|1. */
    bool schedWorkSteal = true;
    /** Parallel engine: partition size cap as a percentage of
     * perfect balance; larger values let the partitioner keep heavy
     * signal edges uncut at the cost of imbalance (work stealing
     * absorbs it). */
    u32 schedPartitionSlack = 125;
    /** Activity-driven clocking: skip provably idle boxes and
     * fast-forward fully idle stretches.  Bit-identical results
     * either way; false restores the always-clock reference path
     * for debugging and A/B runs.  Overridable via
     * ATTILA_IDLE_SKIP=0|1. */
    bool idleSkip = true;
    /** Pre-decoded shader programs + quad-lockstep emulation (and
     * the shared-footprint texture sampling that rides on it).
     * Bit-identical results either way; false restores the
     * per-lane interpreter reference path for debugging and A/B
     * runs.  Overridable via ATTILA_EMU_FASTPATH=0|1. */
    bool emuFastPath = true;
    /** Memory-hierarchy host fast path: pooled MemTransaction
     * recycling, batched statistic commits and reused sampling
     * scratch in the cache clients and memory controller.
     * Bit-identical cycles and statistics either way; false restores
     * the allocate-per-transaction reference path for debugging and
     * A/B runs.  Overridable via ATTILA_MEM_FASTPATH=0|1. */
    bool memFastPath = true;
    /** Cycles between drain polls once the command stream is
     * exhausted (the poll walks every box and signal, so it is too
     * expensive to run each cycle). */
    u32 drainPollInterval = 64;

    // ===== Statistics / debugging ===================================
    u64 statsWindow = 10000; ///< Sampling window in cycles.
    std::string signalTracePath; ///< Empty disables tracing.
    /** Structured binary event tracing (box activity spans, signal
     * occupancy, cache transactions, shader thread slots).  Works
     * under any scheduler; exported to Chrome-tracing/Perfetto JSON
     * by the benches and examples.  Overridable via
     * ATTILA_EVENT_TRACE=0|1; no-op when the build compiled tracing
     * out (ATTILA_TRACE_EVENTS=0). */
    bool eventTrace = false;

    // ===== Host bookkeeping (not configuration state) ===============
    /** Set once applyEnvOverrides() ran, so the Gpu constructor does
     * not re-apply the environment over explicit `--set` overrides
     * (precedence: file < env < --set). */
    bool envApplied = false;

    bool operator==(const GpuConfig&) const = default;

    /** Baseline configuration of Tables 1 and 2. */
    static GpuConfig
    baseline()
    {
        return GpuConfig{};
    }

    /**
     * The Fig 7-9 case study configuration: three unified shaders,
     * one ROP, two 64-bit DDR channels, a 384-input window/queue and
     * 1536 temporary registers.
     */
    static GpuConfig
    caseStudy(ShaderScheduling mode, u32 textureUnits)
    {
        GpuConfig c;
        c.unifiedShaders = true;
        c.numShaders = 3;
        c.numTextureUnits = textureUnits;
        c.numRops = 1;
        c.memoryChannels = 2;
        c.scheduling = mode;
        c.shaderInputsInFlight = 384;
        c.shaderRegisters = 1536;
        return c;
    }

    /** Embedded configuration: a single unified shader does all the
     * vertex, fragment and triangle shading work (paper ref [2]). */
    static GpuConfig
    embedded()
    {
        GpuConfig c;
        c.unifiedShaders = true;
        c.numShaders = 1;
        c.numTextureUnits = 1;
        c.numRops = 1;
        c.memoryChannels = 1;
        c.shaderInputsInFlight = 32;
        c.shaderRegisters = 128;
        c.textureCacheKB = 4;
        c.zCacheKB = 4;
        c.colorCacheKB = 4;
        return c;
    }

    // ===== Text configuration (gpu/gpu_config.cc) ===================

    /** baseline() overlaid with @p path (no environment layering). */
    static GpuConfig fromFile(const std::string& path);

    /** Parse @p text as a config file named @p name over baseline. */
    static GpuConfig fromConfigText(
        const std::string& text,
        const std::string& name = "<config>");

    /** Overlay @p path onto this config (absent keys keep their
     * current values, so partial sweep files compose). */
    void applyFile(const std::string& path);

    /** Overlay config text (see applyFile). */
    void applyText(const std::string& text,
                   const std::string& name = "<config>");

    /** Apply one "section.key=value" override (the --set layer). */
    void applySet(const std::string& assignment,
                  const std::string& origin = "--set");

    /**
     * Apply the environment layer: ATTILA_CONFIG (a config file
     * path), ATTILA_CONFIG_SET (comma/semicolon-separated
     * section.key=value overrides) and the legacy per-knob variables
     * (ATTILA_SCHEDULER, ATTILA_SCHED_THREADS, ATTILA_WORK_STEAL,
     * ATTILA_IDLE_SKIP, ATTILA_EMU_FASTPATH, ATTILA_MEM_FASTPATH).
     * Idempotent per
     * config: sets envApplied so the Gpu constructor skips its own
     * application when a harness already layered the environment
     * (keeping `--set` the highest-precedence layer).
     */
    void applyEnvOverrides();

    /** Canonical full-parameter dump; fromConfigText() of it
     * reproduces this config exactly. */
    std::string toConfigText() const;

    /** Write toConfigText() to @p path. */
    void toFile(const std::string& path) const;

    /** FNV-1a hash of toConfigText(): the scenario identity carried
     * in BENCH_JSON lines and sweep result stores. */
    u64 configHash() const;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_GPU_CONFIG_HH

/**
 * @file
 * GpuConfig: the simulator's configuration file (paper §3: "over 100
 * parameters").  Defaults reproduce the baseline architecture of
 * Tables 1 and 2.
 */

#ifndef ATTILA_GPU_GPU_CONFIG_HH
#define ATTILA_GPU_GPU_CONFIG_HH

#include <string>

#include "sim/types.hh"

namespace attila::gpu
{

/** Shader scheduling modes (the Fig 7 experiment). */
enum class ShaderScheduling : u8
{
    /** Thread window: out-of-order execution across the window's
     * threads, in-order commit. */
    ThreadWindow,
    /** Shader input queue: strictly in-order execution. */
    InOrderQueue,
};

/** Fragment generator traversal algorithms (paper §2.2). */
enum class FragmentGenKind : u8
{
    Recursive, ///< McCool et al. recursive descent (default).
    Scanline,  ///< Neon-style tile scanner.
};

/** Engine clocking the boxes each cycle (sim/scheduler.hh). */
enum class SchedulerKind : u8
{
    Serial,   ///< Single-threaded reference engine.
    Parallel, ///< Worker pool, one barrier per phase.
};

/** The full configuration of a simulated ATTILA GPU. */
struct GpuConfig
{
    // ===== Global ===================================================
    bool unifiedShaders = true; ///< Fig 2 (true) vs Fig 1 (false).
    u32 memorySize = 64u << 20; ///< GPU memory bytes.
    u64 clockMHz = 600;         ///< For fps reporting only.

    // ===== Shader pool ==============================================
    u32 numShaders = 2;       ///< Fragment/unified shader units.
    u32 numVertexShaders = 4; ///< Dedicated units (non-unified).
    ShaderScheduling scheduling = ShaderScheduling::ThreadWindow;
    /** Shader inputs in flight (fragments+vertices); 1 thread = 4
     * inputs.  Baseline: 112 fragment + 16 vertex inputs. */
    u32 shaderInputsInFlight = 128;
    u32 vertexShaderThreads = 12; ///< Non-unified vertex threads.
    /** Physical temp registers (per input).  Baseline: 448 for the
     * fragment/unified pool. */
    u32 shaderRegisters = 512;
    u32 vertexShaderRegisters = 96;
    u32 shaderFetchRate = 1;  ///< Instructions issued per cycle.
    u32 shaderInputsPerCycle = 4; ///< Fragments accepted per cycle.

    // ===== Texture units ============================================
    u32 numTextureUnits = 2;  ///< One per shader in the baseline.
    u32 textureCacheKB = 16;
    u32 textureCacheWays = 4;
    u32 textureCacheLine = 256;
    u32 textureCachePorts = 4; ///< Texel reads per cycle.
    u32 textureRequestQueue = 16;

    // ===== ROPs =====================================================
    u32 numRops = 2;         ///< Z/stencil + colour units each.
    u32 ropFragmentsPerCycle = 4; ///< 1 quad per cycle per unit.
    u32 ropLatency = 2;      ///< Pipeline latency before memory.
    u32 zCacheKB = 16;
    u32 zCacheWays = 4;
    u32 zCacheLine = 256;
    u32 colorCacheKB = 16;
    u32 colorCacheWays = 4;
    u32 colorCacheLine = 256;
    bool zCompression = true;
    bool fastClear = true;
    u32 clearCycles = 8;     ///< Fast clear latency.
    /** Double-rate Z (paper §7 extension): depth/stencil-only
     *  passes (colour writes masked) process two quads per cycle. */
    bool doubleRateZ = false;
    /** Colour compression (paper §7 extension): uniform tiles write
     *  back at 1:4 (flat surfaces, UI, sky). */
    bool colorCompression = false;

    // ===== Geometry pipeline (Table 1) ==============================
    u32 streamerQueue = 48;
    u32 vertexCacheEntries = 16; ///< Post-shading vertex cache.
    u32 vertexRequestQueue = 16;
    u32 primitiveAssemblyQueue = 8;
    u32 clipperQueue = 4;
    u32 clipperLatency = 6;
    u32 trianglesPerCycle = 1;
    u32 setupQueue = 12;
    u32 setupLatency = 10;
    u32 fragmentGenQueue = 16;
    FragmentGenKind fragmentGen = FragmentGenKind::Recursive;
    u32 tilesPerCycle = 2;   ///< 2 x 64 fragments per cycle.
    u32 genTileSize = 8;     ///< Second/third tiling level (8x8).

    // ===== Hierarchical Z ===========================================
    bool hzEnabled = true;
    u32 hzQueue = 64;
    u32 hzTilesPerCycle = 2;

    // ===== Interpolator =============================================
    u32 interpolatorBaseLatency = 2;
    u32 interpolatorMaxLatency = 8;
    u32 interpolatorQuadsPerCycle = 2;

    // ===== Fragment FIFO ============================================
    u32 fragmentFifoQueue = 64;

    // ===== Memory controller ========================================
    u32 memoryChannels = 4;
    u32 channelBytesPerCycle = 16; ///< 64-bit DDR: 16 B/cycle.
    u32 memoryBurstBytes = 64;     ///< One transaction burst.
    u32 channelInterleave = 256;   ///< Bytes per channel stripe.
    u32 memoryPageBytes = 4096;
    u32 pageOpenPenalty = 8;       ///< Cycles on page change.
    u32 readWriteTurnaround = 4;   ///< Cycles on rd<->wr switch.
    u32 memoryRequestQueue = 16;   ///< Per-client request queue.
    u32 systemBusBytesPerCycle = 16; ///< PCIe-like: 2 x 8 B/cycle.

    // ===== Execution engine =========================================
    /** Box-loop engine; overridable via ATTILA_SCHEDULER
     * (serial|parallel). */
    SchedulerKind scheduler = SchedulerKind::Serial;
    /** Worker threads for the parallel engine; 0 = all hardware
     * threads.  Overridable via ATTILA_SCHED_THREADS. */
    u32 schedulerThreads = 0;
    /** Activity-driven clocking: skip provably idle boxes and
     * fast-forward fully idle stretches.  Bit-identical results
     * either way; false restores the always-clock reference path
     * for debugging and A/B runs.  Overridable via
     * ATTILA_IDLE_SKIP=0|1. */
    bool idleSkip = true;
    /** Pre-decoded shader programs + quad-lockstep emulation (and
     * the shared-footprint texture sampling that rides on it).
     * Bit-identical results either way; false restores the
     * per-lane interpreter reference path for debugging and A/B
     * runs.  Overridable via ATTILA_EMU_FASTPATH=0|1. */
    bool emuFastPath = true;
    /** Memory-hierarchy host fast path: pooled MemTransaction
     * recycling, batched statistic commits and reused sampling
     * scratch in the cache clients and memory controller.
     * Bit-identical cycles and statistics either way; false restores
     * the allocate-per-transaction reference path for debugging and
     * A/B runs.  Overridable via ATTILA_MEM_FASTPATH=0|1. */
    bool memFastPath = true;
    /** Cycles between drain polls once the command stream is
     * exhausted (the poll walks every box and signal, so it is too
     * expensive to run each cycle). */
    u32 drainPollInterval = 64;

    // ===== Statistics / debugging ===================================
    u64 statsWindow = 10000; ///< Sampling window in cycles.
    std::string signalTracePath; ///< Empty disables tracing.

    /** Baseline configuration of Tables 1 and 2. */
    static GpuConfig
    baseline()
    {
        return GpuConfig{};
    }

    /**
     * The Fig 7-9 case study configuration: three unified shaders,
     * one ROP, two 64-bit DDR channels, a 384-input window/queue and
     * 1536 temporary registers.
     */
    static GpuConfig
    caseStudy(ShaderScheduling mode, u32 textureUnits)
    {
        GpuConfig c;
        c.unifiedShaders = true;
        c.numShaders = 3;
        c.numTextureUnits = textureUnits;
        c.numRops = 1;
        c.memoryChannels = 2;
        c.scheduling = mode;
        c.shaderInputsInFlight = 384;
        c.shaderRegisters = 1536;
        return c;
    }

    /** Embedded configuration: a single unified shader does all the
     * vertex, fragment and triangle shading work (paper ref [2]). */
    static GpuConfig
    embedded()
    {
        GpuConfig c;
        c.unifiedShaders = true;
        c.numShaders = 1;
        c.numTextureUnits = 1;
        c.numRops = 1;
        c.memoryChannels = 1;
        c.shaderInputsInFlight = 32;
        c.shaderRegisters = 128;
        c.textureCacheKB = 4;
        c.zCacheKB = 4;
        c.colorCacheKB = 4;
        return c;
    }
};

} // namespace attila::gpu

#endif // ATTILA_GPU_GPU_CONFIG_HH

#include "gpu/hierarchical_z.hh"

#include <algorithm>
#include <cmath>

namespace attila::gpu
{

HierarchicalZ::HierarchicalZ(sim::SignalBinder& binder,
                             sim::StatisticManager& stats,
                             const GpuConfig& config)
    : Box(binder, stats, "HierarchicalZ"),
      _config(config),
      _statTiles(stat("tiles")),
      _statCulled(stat("tilesCulled")),
      _statQuads(stat("quads")),
      _statBusy(stat("busyCycles"))
{
    _statTiles.setImmediate(!config.memFastPath);
    _statCulled.setImmediate(!config.memFastPath);
    _statQuads.setImmediate(!config.memFastPath);
    _statBusy.setImmediate(!config.memFastPath);
    _in.init(*this, binder, "fgen.hz", config.tilesPerCycle, 1,
             config.hzQueue);
    for (u32 i = 0; i < config.numRops; ++i) {
        auto tx = std::make_unique<LinkTx>();
        tx->init(*this, binder, "hz.ropz" + std::to_string(i), 16, 1,
                 16);
        _toRopz.push_back(std::move(tx));
        auto rx = std::make_unique<LinkRx<HzUpdateObj>>();
        rx->init(*this, binder, "ropz" + std::to_string(i) + ".hzupd",
                 4, 1, 32);
        _updates.push_back(std::move(rx));
    }
    _ctrl.init(*this, binder, "cp.ctrl.hz", 1, 1, 2);
    _ack.init(*this, binder, "ack.hz", 1, 1, 2);
}

u32
HierarchicalZ::ropOf(u32 tileIndex) const
{
    return tileIndex % _config.numRops;
}

void
HierarchicalZ::processControl(Cycle cycle)
{
    if (_ctrl.empty())
        return;
    const ControlObjPtr& head = _ctrl.front();
    if (head->kind == ControlKind::HzPoison) {
        _poisoned = true;
        std::fill(_hz.begin(), _hz.end(), 255);
        _ctrl.pop(cycle);
        return;
    }
    if (head->kind == ControlKind::ClearZStencil) {
        if (!_ack.canSend(cycle))
            return;
        const RenderState& state = *head->state;
        _tilesPerRow = fbTilesPerRow(state.width);
        const u32 rows =
            (state.height + fbTileDim - 1) / fbTileDim;
        _hz.assign(_tilesPerRow * rows,
                   quantizeUp(state.clearDepth));
        _poisoned = false;
        auto ack = std::make_shared<AckObj>();
        ack->kind = head->kind;
        _ack.send(cycle, ack);
        _ctrl.pop(cycle);
        return;
    }
    panic("HierarchicalZ: unexpected control message");
}

void
HierarchicalZ::processUpdates(Cycle cycle)
{
    for (auto& rx : _updates) {
        while (!rx->empty()) {
            auto upd = rx->pop(cycle);
            if (_poisoned || upd->tileIndex >= _hz.size())
                continue;
            _hz[upd->tileIndex] = quantizeUp(upd->maxZ);
        }
    }
}

bool
HierarchicalZ::splitTile(Cycle cycle, const TileObjPtr& tile)
{
    // Build the quads lazily into the pending queue, then drain.
    if (_pendingQuads.empty()) {
        for (u32 qy = 0; qy < fbTileDim / 2; ++qy) {
            for (u32 qx = 0; qx < fbTileDim / 2; ++qx) {
                std::array<bool, 4> cover{};
                bool any = false;
                for (u32 f = 0; f < 4; ++f) {
                    const u32 dx = qx * 2 + (f % 2);
                    const u32 dy = qy * 2 + (f / 2);
                    const u32 bit = dy * fbTileDim + dx;
                    cover[f] = (tile->coverage >> bit) & 1;
                    any |= cover[f];
                }
                if (!any)
                    continue;
                auto quad = std::make_shared<QuadObj>();
                quad->batchId = tile->batchId;
                quad->state = tile->state;
                quad->triangle = tile->triangle;
                quad->x0 = tile->x0 + static_cast<s32>(qx * 2);
                quad->y0 = tile->y0 + static_cast<s32>(qy * 2);
                quad->coverage = cover;
                for (u32 f = 0; f < 4; ++f) {
                    const u32 dx = qx * 2 + (f % 2);
                    const u32 dy = qy * 2 + (f / 2);
                    quad->z[f] = tile->z[dy * fbTileDim + dx];
                }
                quad->lateZPath = !tile->state->earlyZ();
                // Winding for double-sided stencil: a triangle is
                // front facing when its rasterizer winding matches
                // the configured front face.
                quad->backFacing =
                    tile->triangle->setup.ccw !=
                    tile->state->frontFaceCcw;
                quad->setInfo("quad");
                quad->copyTrailFrom(*tile);
                _pendingQuads.push_back(std::move(quad));
            }
        }
    }

    while (!_pendingQuads.empty()) {
        const QuadObjPtr& quad = _pendingQuads.front();
        const RenderState& state = *quad->state;
        const u32 tileIndex = fbTileIndex(
            state.width, static_cast<u32>(quad->x0),
            static_cast<u32>(quad->y0));
        LinkTx& out = *_toRopz[ropOf(tileIndex)];
        if (!out.canSend(cycle))
            return false;
        out.send(cycle, std::move(_pendingQuads.front()));
        _pendingQuads.pop_front();
        _statQuads.inc();
    }
    return true;
}

void
HierarchicalZ::processTiles(Cycle cycle)
{
    // Finish a tile blocked on output backpressure first.
    if (!_pendingQuads.empty()) {
        _statBusy.inc();
        if (!splitTile(cycle, nullptr))
            return;
    }
    bool counted = false;
    for (u32 n = 0; n < _config.hzTilesPerCycle; ++n) {
        if (_in.empty())
            return;
        if (!counted) {
            _statBusy.inc();
            counted = true;
        }
        const TileObjPtr& head = _in.front();

        if (head->isMarker()) {
            // Broadcast markers to every ROPz.
            for (auto& out : _toRopz) {
                if (!out->canSend(cycle))
                    return;
            }
            auto marker = _in.pop(cycle);
            for (auto& out : _toRopz)
                out->send(cycle, marker);
            continue;
        }

        _statTiles.inc();
        const RenderState& state = *head->state;
        if (_config.hzEnabled && state.hzUsable()) {
            const u32 tileIndex = fbTileIndex(
                state.width, static_cast<u32>(head->x0),
                static_cast<u32>(head->y0));
            if (tileIndex < _hz.size() &&
                quantizeDown(head->minZ) > _hz[tileIndex]) {
                _statCulled.inc();
                _in.pop(cycle);
                continue; // Entire tile hidden.
            }
        }

        TileObjPtr tile = _in.pop(cycle);
        if (!splitTile(cycle, tile))
            return; // Output stalled; resume next cycle.
    }
}

void
HierarchicalZ::update(Cycle cycle)
{
    _in.clock(cycle);
    for (auto& out : _toRopz)
        out->clock(cycle);
    for (auto& rx : _updates)
        rx->clock(cycle);
    _ctrl.clock(cycle);
    _ack.clock(cycle);

    processControl(cycle);
    processUpdates(cycle);
    processTiles(cycle);
    _statTiles.commit();
    _statCulled.commit();
    _statQuads.commit();
    _statBusy.commit();
}

bool
HierarchicalZ::empty() const
{
    return _in.empty() && _pendingQuads.empty() && _ctrl.empty();
}

} // namespace attila::gpu

/**
 * @file
 * HierarchicalZ: tests generated fragment tiles against the on-chip
 * Hierarchical Z buffer to remove non-visible tiles at a very fast
 * rate — up to two 8x8 tiles per cycle in the baseline (paper §2.2).
 *
 * The HZ buffer stores one 8-bit far value per framebuffer tile
 * (256 KB covers up to 4096x4096).  A tile whose minimum generated
 * depth is farther than the stored value cannot contain any visible
 * fragment and is culled.  Values are refined when the Z cache
 * evicts and compresses lines (exact per-tile maxima) and reset by
 * fast Z clears.  Batches whose depth function could raise stored
 * depths poison the buffer until the next clear (conservative).
 *
 * Surviving tiles are divided into the 2x2 fragment quads that feed
 * the rest of the fragment pipeline, distributed to the ROP units by
 * tile interleaving.
 */

#ifndef ATTILA_GPU_HIERARCHICAL_Z_HH
#define ATTILA_GPU_HIERARCHICAL_Z_HH

#include <vector>

#include "gpu/framebuffer.hh"
#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "sim/box.hh"
#include "sim/ring_queue.hh"

namespace attila::gpu
{

/** The Hierarchical Z box. */
class HierarchicalZ : public sim::Box
{
  public:
    HierarchicalZ(sim::SignalBinder& binder,
                  sim::StatisticManager& stats,
                  const GpuConfig& config);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet. */
    bool busy() const override { return !empty(); }

    /** Quantize a depth to the 8-bit HZ scale (round up = far). */
    static u8
    quantizeUp(f32 z)
    {
        const f32 c = std::clamp(z, 0.0f, 1.0f);
        return static_cast<u8>(
            std::min(255.0f, std::ceil(c * 255.0f)));
    }

    /** Quantize a depth rounding down (for conservative tests). */
    static u8
    quantizeDown(f32 z)
    {
        const f32 c = std::clamp(z, 0.0f, 1.0f);
        return static_cast<u8>(std::floor(c * 255.0f));
    }

  private:
    void processControl(Cycle cycle);
    void processUpdates(Cycle cycle);
    void processTiles(Cycle cycle);
    bool splitTile(Cycle cycle, const TileObjPtr& tile);
    u32 ropOf(u32 tileIndex) const;

    const GpuConfig& _config;
    LinkRx<TileObj> _in;
    std::vector<std::unique_ptr<LinkTx>> _toRopz;
    std::vector<std::unique_ptr<LinkRx<HzUpdateObj>>> _updates;
    LinkRx<ControlObj> _ctrl;
    LinkTx _ack;

    std::vector<u8> _hz;      ///< Per-tile 8-bit far values.
    u32 _tilesPerRow = 0;
    bool _poisoned = false;   ///< Ignore refinements until clear.

    /** Quads of a partially sent tile (output backpressure). */
    sim::RingQueue<QuadObjPtr> _pendingQuads;

    sim::BatchedStat _statTiles;
    sim::BatchedStat _statCulled;
    sim::BatchedStat _statQuads;
    sim::BatchedStat _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_HIERARCHICAL_Z_HH

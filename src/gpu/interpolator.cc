#include "gpu/interpolator.hh"

#include "emu/rasterizer_emulator.hh"

namespace attila::gpu
{

Interpolator::Interpolator(sim::SignalBinder& binder,
                           sim::StatisticManager& stats,
                           const GpuConfig& config)
    : Box(binder, stats, "Interpolator"),
      _config(config),
      _statQuads(stat("quads")),
      _statBusy(stat("busyCycles"))
{
    for (u32 i = 0; i < config.numRops; ++i) {
        auto rx = std::make_unique<LinkRx<QuadObj>>();
        rx->init(*this, binder, "ropz" + std::to_string(i) + ".interp",
                 1, config.ropLatency, 16);
        _in.push_back(std::move(rx));
    }
    _out.init(*this, binder, "interp.ffifo",
              config.interpolatorQuadsPerCycle, 1,
              config.fragmentFifoQueue);
}

void
Interpolator::interpolateQuad(QuadObj& quad)
{
    using emu::RasterizerEmulator;
    using namespace emu::regix;

    const RenderState& state = *quad.state;
    const emu::TriangleSetup& setup = quad.triangle->setup;
    u32 inputs = 0xffffu;
    if (state.fragmentProgram)
        inputs = state.fragmentProgram->inputsRead;

    // Every lane is interpolated, covered or not: uncovered lanes
    // are the "helper pixels" whose attributes feed the texture
    // derivative computation.
    for (u32 f = 0; f < 4; ++f) {
        const s32 x = quad.x0 + static_cast<s32>(f % 2);
        const s32 y = quad.y0 + static_cast<s32>(f / 2);

        // Edge equation values at the pixel center act as
        // barycentric coordinates (paper §2.2).
        std::array<f64, 3> e;
        const f64 px = x + 0.5;
        const f64 py = y + 0.5;
        for (u32 i = 0; i < 3; ++i) {
            e[i] = setup.a[i] * px + setup.b[i] * py + setup.c[i];
        }

        for (u32 attr = 1; attr < numInputRegs; ++attr) {
            if (!(inputs & (1u << attr)))
                continue;
            quad.in[f][attr] = RasterizerEmulator::interpolate(
                e, quad.triangle->vertex[0][attr],
                quad.triangle->vertex[1][attr],
                quad.triangle->vertex[2][attr]);
        }
        // fragment.position = (x, y, z, 1/w).
        quad.in[f][finPosition] = {
            static_cast<f32>(px), static_cast<f32>(py), quad.z[f],
            RasterizerEmulator::oneOverW(setup, e)};
    }
}

void
Interpolator::acceptQuads(Cycle cycle)
{
    const u32 n = static_cast<u32>(_in.size());
    u32 processed = 0;
    u32 scanned = 0;
    while (processed < _config.interpolatorQuadsPerCycle &&
           scanned < n) {
        LinkRx<QuadObj>& rx = *_in[_rrNext];
        if (rx.empty()) {
            _rrNext = (_rrNext + 1) % n;
            ++scanned;
            continue;
        }
        const QuadObjPtr& head = rx.front();

        if (head->isMarker()) {
            // Collect one marker copy from every ROPz stream, then
            // forward a single marker.
            u32 ready = 0;
            for (auto& other : _in) {
                if (!other->empty() && other->front()->isMarker() &&
                    other->front()->batchId == head->batchId &&
                    other->front()->marker == head->marker) {
                    ++ready;
                }
            }
            if (ready < n ||
                _delay.size() >= 2 * _config.fragmentFifoQueue) {
                _rrNext = (_rrNext + 1) % n;
                ++scanned;
                continue;
            }
            // One combined marker, through the same delay queue as
            // the quads so it cannot overtake them.
            WorkObjectPtr marker;
            for (auto& other : _in)
                marker = other->pop(cycle);
            _delay.push_back(
                {cycle + _config.interpolatorBaseLatency, marker});
            ++processed;
            continue;
        }

        // Attribute-count-dependent latency.
        const RenderState& state = *head->state;
        u32 attrs = 1;
        if (state.fragmentProgram) {
            attrs = static_cast<u32>(__builtin_popcount(
                state.fragmentProgram->inputsRead));
        }
        const u32 latency = std::min(
            _config.interpolatorMaxLatency,
            _config.interpolatorBaseLatency + attrs / 2);

        if (_delay.size() >= 2 * _config.fragmentFifoQueue) {
            _rrNext = (_rrNext + 1) % n;
            ++scanned;
            continue;
        }

        QuadObjPtr quad = rx.pop(cycle);
        interpolateQuad(*quad);
        _delay.push_back({cycle + latency, quad});
        _statQuads.inc();
        if (processed == 0)
            _statBusy.inc();
        ++processed;
        _rrNext = (_rrNext + 1) % n;
        scanned = 0;
    }
}

void
Interpolator::drain(Cycle cycle)
{
    u32 sent = 0;
    while (!_delay.empty() && _delay.front().readyAt <= cycle &&
           sent < _config.interpolatorQuadsPerCycle) {
        if (!_out.canSend(cycle))
            break;
        _out.send(cycle, _delay.front().quad);
        _delay.pop_front();
        ++sent;
    }
}

void
Interpolator::update(Cycle cycle)
{
    for (auto& rx : _in)
        rx->clock(cycle);
    _out.clock(cycle);

    drain(cycle);
    acceptQuads(cycle);
}

bool
Interpolator::empty() const
{
    for (const auto& rx : _in) {
        if (!rx->empty())
            return false;
    }
    return _delay.empty();
}

} // namespace attila::gpu

/**
 * @file
 * Interpolator: computes fragment input attributes from the triangle
 * vertex attributes using perspective-corrected linear interpolation
 * (paper §2.2).  Latency scales with the number of live attributes
 * (2 to 8 cycles in the baseline).
 *
 * Merges the quad streams of the ROPz units (round-robin) and feeds
 * interpolated quads to the Fragment FIFO.  Batch markers are
 * synchronized: one combined marker is forwarded once every ROPz
 * stream delivered its copy.
 */

#ifndef ATTILA_GPU_INTERPOLATOR_HH
#define ATTILA_GPU_INTERPOLATOR_HH

#include <deque>

#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "sim/box.hh"

namespace attila::gpu
{

/** The Interpolator box. */
class Interpolator : public sim::Box
{
  public:
    Interpolator(sim::SignalBinder& binder,
                 sim::StatisticManager& stats,
                 const GpuConfig& config);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet (the delay pipeline counts
     * as held work). */
    bool busy() const override { return !empty(); }

    /** Interpolate the inputs of @p quad in place (also used by unit
     * tests). */
    static void interpolateQuad(QuadObj& quad);

  private:
    void acceptQuads(Cycle cycle);
    void drain(Cycle cycle);

    const GpuConfig& _config;
    std::vector<std::unique_ptr<LinkRx<QuadObj>>> _in;
    LinkTx _out;

    struct Delayed
    {
        Cycle readyAt;
        WorkObjectPtr quad; ///< Quad or batch marker.
    };
    std::deque<Delayed> _delay;
    u32 _rrNext = 0;

    sim::Statistic& _statQuads;
    sim::Statistic& _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_INTERPOLATOR_HH

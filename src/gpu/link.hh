/**
 * @file
 * Credit-based flow control over a pair of signals.
 *
 * A Link models the paper's "queues with configurable sizes"
 * (Table 1): the producer owns a LinkTx with one credit per slot of
 * the consumer's input queue; the consumer owns a LinkRx holding the
 * queue and returns a credit through the feedback signal whenever it
 * pops an entry.  Data latency and bandwidth are modelled by the
 * forward signal; credits return with a one-cycle latency.
 *
 * The invariant (in-flight objects + queued objects <= capacity)
 * guarantees the consumer queue can never overflow, and the signal
 * layer's own verification catches any bug violating it.
 */

#ifndef ATTILA_GPU_LINK_HH
#define ATTILA_GPU_LINK_HH

#include "gpu/work_objects.hh"
#include "sim/box.hh"
#include "sim/object_pool.hh"
#include "sim/ring_queue.hh"

namespace attila::gpu
{

/** Producer end of a flow-controlled link. */
class LinkTx
{
  public:
    LinkTx() = default;

    /**
     * Register the producer-side signals on @p box.
     * @param capacity consumer queue size = initial credits.
     */
    void
    init(sim::Box& box, sim::SignalBinder& binder,
         const std::string& name, u32 bandwidth, u32 latency,
         u32 capacity)
    {
        _data = binder.registerSignal(&box, name, sim::Direction::Out,
                                      bandwidth, latency);
        _credit = binder.registerSignal(&box, name + ".credit",
                                        sim::Direction::In, capacity,
                                        1);
        _credits = capacity;
    }

    /** Collect returned credits; call once per cycle. */
    void
    clock(Cycle cycle)
    {
        while (_credit->read(cycle))
            ++_credits;
    }

    /** True when a send this cycle is within credits and signal
     * bandwidth. */
    bool
    canSend(Cycle cycle) const
    {
        return _credits > 0 && _data->canWrite(cycle);
    }

    /** Send one object (consumes a credit). */
    void
    send(Cycle cycle, sim::DynamicObjectPtr obj)
    {
        if (_credits == 0)
            panic("link '", _data->name(), "': send without credit");
        --_credits;
        _data->write(cycle, std::move(obj));
    }

    u32 credits() const { return _credits; }

    /** True when every sent object has been popped downstream. */
    bool
    idle() const
    {
        return _credits == _capacityOrInit();
    }

  private:
    u32
    _capacityOrInit() const
    {
        // Initial credits equal the capacity; idle means all are
        // home.  _credit bandwidth stores the capacity.
        return _credit->bandwidth();
    }

    sim::Signal* _data = nullptr;
    sim::Signal* _credit = nullptr;
    u32 _credits = 0;
};

/** Consumer end of a flow-controlled link. */
template <typename T>
class LinkRx
{
  public:
    void
    init(sim::Box& box, sim::SignalBinder& binder,
         const std::string& name, u32 bandwidth, u32 latency,
         u32 capacity)
    {
        _data = binder.registerSignal(&box, name, sim::Direction::In,
                                      bandwidth, latency);
        _credit = binder.registerSignal(&box, name + ".credit",
                                        sim::Direction::Out, capacity,
                                        1);
        _capacity = capacity;
    }

    /** Move arrivals into the queue; call once per cycle. */
    void
    clock(Cycle cycle)
    {
        while (auto obj = _data->read(cycle)) {
            if (_queue.size() >= _capacity) {
                panic("link '", _data->name(),
                      "': queue overflow (capacity ", _capacity,
                      ")");
            }
            _queue.push_back(std::static_pointer_cast<T>(obj));
        }
    }

    bool empty() const { return _queue.empty(); }
    std::size_t size() const { return _queue.size(); }

    const std::shared_ptr<T>& front() const { return _queue.front(); }

    /** Pop the head entry, returning its credit. */
    std::shared_ptr<T>
    pop(Cycle cycle)
    {
        auto obj = _queue.pop_front();
        _credit->write(cycle, _pool.acquire());
        return obj;
    }

    u32 capacity() const { return _capacity; }

  private:
    sim::Signal* _data = nullptr;
    sim::Signal* _credit = nullptr;
    sim::RingQueue<std::shared_ptr<T>> _queue;
    u32 _capacity = 0;
    sim::ObjectPool<CreditObj> _pool;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_LINK_HH

#include "gpu/memory_controller.hh"

#include <algorithm>
#include <bit>

namespace attila::gpu
{

MemoryController::MemoryController(sim::SignalBinder& binder,
                                   sim::StatisticManager& stats,
                                   const GpuConfig& config,
                                   emu::GpuMemory& memory,
                                   std::vector<std::string>
                                       client_ports)
    : Box(binder, stats, "MemoryController"),
      _config(config),
      _memory(memory),
      _fastPath(config.memFastPath),
      _banked(config.memModel == MemModel::Banked),
      _timing(DramTiming::parse(config.dramTiming)),
      _statReadBytes(stat("readBytes")),
      _statWriteBytes(stat("writeBytes")),
      _statBusyCycles(stat("busyCycles")),
      _statPageOpens(stat("pageOpens")),
      _statTurnarounds(stat("turnarounds")),
      _statRowHits(stat("rowHits")),
      _statRowMisses(stat("rowMisses")),
      _statRowConflicts(stat("rowConflicts")),
      _statPrecharges(stat("precharges")),
      _statActivates(stat("activates"))
{
    _channels.resize(config.memoryChannels);
    for (auto& ch : _channels) {
        ch.queues.resize(client_ports.size());
        if (_banked)
            ch.banks.resize(_timing.nbk);
    }

    for (const std::string& port : client_ports) {
        auto client = std::make_unique<ClientPort>();
        client->name = port;
        client->req.init(*this, binder, port + ".req", 8, 1,
                         config.memoryRequestQueue);
        client->resp.init(*this, binder, port + ".resp", 8, 1,
                          config.memoryRequestQueue);
        _statClientBytes.emplace_back(stat(port + ".bytes"));
        _clients.push_back(std::move(client));
    }

    _fastAddr = std::has_single_bit(config.channelInterleave) &&
                std::has_single_bit(config.memoryChannels);
    if (_fastAddr) {
        _ilShift = static_cast<u32>(
            std::countr_zero(config.channelInterleave));
        _chanMask = config.memoryChannels - 1;
    }
    _fastPage = std::has_single_bit(config.memoryPageBytes);
    if (_fastPage) {
        _pageShift = static_cast<u32>(
            std::countr_zero(config.memoryPageBytes));
    }
    _fastCost = std::has_single_bit(config.channelBytesPerCycle);
    if (_fastCost) {
        _bpcShift = static_cast<u32>(
            std::countr_zero(config.channelBytesPerCycle));
    }

    const bool immediate = !_fastPath;
    _statReadBytes.setImmediate(immediate);
    _statWriteBytes.setImmediate(immediate);
    _statBusyCycles.setImmediate(immediate);
    _statPageOpens.setImmediate(immediate);
    _statTurnarounds.setImmediate(immediate);
    _statRowHits.setImmediate(immediate);
    _statRowMisses.setImmediate(immediate);
    _statRowConflicts.setImmediate(immediate);
    _statPrecharges.setImmediate(immediate);
    _statActivates.setImmediate(immediate);
    for (auto& stat : _statClientBytes)
        stat.setImmediate(immediate);
}

void
MemoryController::acceptRequests(Cycle cycle)
{
    for (u32 ci = 0; ci < _clients.size(); ++ci) {
        ClientPort& client = *_clients[ci];
        client.req.clock(cycle);
        while (!client.req.empty()) {
            MemTransactionPtr txn = client.req.pop(cycle);
            if (txn->size == 0 || txn->size > 256) {
                panic("memory controller: transaction size ",
                      txn->size, " out of range");
            }
            if (txn->isRead)
                txn->data.assign(txn->size, 0);

            // Split into bursts along channel stripes.
            u32 offset = 0;
            u32 bursts = 0;
            while (offset < txn->size) {
                const u32 addr = txn->address + offset;
                const u32 stripeEnd =
                    _fastAddr
                        ? ((addr >> _ilShift) + 1) << _ilShift
                        : (addr / _config.channelInterleave + 1) *
                              _config.channelInterleave;
                const u32 size = std::min(
                    {txn->size - offset, stripeEnd - addr,
                     _config.memoryBurstBytes});
                Burst b;
                b.txn = txn;
                b.clientIdx = ci;
                b.offset = offset;
                b.size = size;
                Channel& channel = _channels[channelOf(addr)];
                if (_banked)
                    channel.pending.push_back(std::move(b));
                else
                    channel.queues[ci].push_back(std::move(b));
                offset += size;
                ++bursts;
            }
            if (_fastPath)
                txn->hostBurstsLeft = bursts;
            else
                _pendingBursts[txn.get()] = bursts;
            ++_pendingTxns;
        }
    }
}

u32
MemoryController::pickPending(Channel& ch)
{
    if (_config.dramScheduler == DramSchedPolicy::Fifo)
        return 0;
    // FR-FCFS: the first row hit inside the scheduling window goes
    // first, unless the oldest burst has already been overtaken
    // frfcfsCap times (starvation cap); with no hit the policy
    // degenerates to FIFO.
    if (ch.pending.front().bypassed >= _config.frfcfsCap)
        return 0;
    const u32 window = static_cast<u32>(
        std::min<std::size_t>(ch.pending.size(),
                              std::max(1u, _config.frfcfsWindow)));
    for (u32 i = 0; i < window; ++i) {
        const Burst& b = ch.pending.at(i);
        const u32 addr = b.txn->address + b.offset;
        const Bank& bank = ch.banks[bankOf(addr)];
        if (bank.rowOpen && bank.openRow == rowOf(addr)) {
            if (i != 0)
                ++ch.pending.front().bypassed;
            return i;
        }
    }
    return 0;
}

void
MemoryController::scheduleBanked(Cycle cycle)
{
    for (Channel& ch : _channels) {
        if (ch.hasInflight || ch.pending.empty())
            continue;
        Burst b = ch.pending.remove_at(pickPending(ch));

        const u32 addr = b.txn->address + b.offset;
        const bool isWrite = !b.txn->isRead;
        Bank& bank = ch.banks[bankOf(addr)];
        const u64 row = rowOf(addr);
        const u32 column = isWrite ? _timing.WL : _timing.CL;

        // One command sequence occupies the channel end to end; bank
        // timestamps carry the RAS/RC/RRD/WR constraints across
        // bursts, so reordering (FR-FCFS) can never violate them.
        Cycle ready = cycle;
        if (bank.rowOpen && bank.openRow == row) {
            _statRowHits.inc();
        } else if (!bank.rowOpen) {
            // Cold bank: activate the row (RCD), gated by the
            // same-bank RC and cross-bank RRD activate windows.
            Cycle actAt = cycle;
            if (bank.everActivated)
                actAt = std::max(actAt, bank.activateAt + _timing.RC);
            if (ch.everActivated) {
                actAt = std::max(actAt,
                                 ch.lastActivateAt + _timing.RRD);
            }
            ready = actAt + _timing.RCD;
            bank.rowOpen = true;
            bank.openRow = row;
            bank.everActivated = true;
            bank.activateAt = actAt;
            ch.everActivated = true;
            ch.lastActivateAt = actAt;
            _statRowMisses.inc();
            _statActivates.inc();
        } else {
            // Row conflict: precharge the open row (honouring RAS
            // and write recovery), then activate the new one.
            Cycle preAt = std::max(cycle, bank.prechargeReadyAt);
            preAt = std::max(preAt, bank.activateAt + _timing.RAS);
            Cycle actAt = preAt + _timing.RP;
            actAt = std::max(actAt, bank.activateAt + _timing.RC);
            if (ch.everActivated) {
                actAt = std::max(actAt,
                                 ch.lastActivateAt + _timing.RRD);
            }
            ready = actAt + _timing.RCD;
            bank.openRow = row;
            bank.activateAt = actAt;
            ch.lastActivateAt = actAt;
            _statRowConflicts.inc();
            _statPrecharges.inc();
            _statActivates.inc();
        }
        const Cycle dataEnd =
            ready + column + transferCycles(b.size);
        if (isWrite)
            bank.prechargeReadyAt = dataEnd + _timing.WR;

        ch.busyUntil = dataEnd;
        ch.inflight = std::move(b);
        ch.hasInflight = true;
        _statBusyCycles.inc(dataEnd - cycle);
    }
}

void
MemoryController::scheduleChannels(Cycle cycle)
{
    if (_banked) {
        scheduleBanked(cycle);
        return;
    }
    for (Channel& ch : _channels) {
        if (ch.hasInflight)
            continue;
        // Round-robin arbitration over client queues.
        const u32 n = static_cast<u32>(ch.queues.size());
        for (u32 k = 0; k < n; ++k) {
            const u32 ci = (ch.rrNext + k) % n;
            if (ch.queues[ci].empty())
                continue;
            Burst b = ch.queues[ci].pop_front();
            ch.rrNext = (ci + 1) % n;

            const u32 addr = b.txn->address + b.offset;
            const u64 page = pageOf(addr);
            u64 cost = transferCycles(b.size);
            if (page != ch.currentPage) {
                cost += _config.pageOpenPenalty;
                _statPageOpens.inc();
                ch.currentPage = page;
            }
            const bool isWrite = !b.txn->isRead;
            if (isWrite != ch.lastWasWrite) {
                cost += _config.readWriteTurnaround;
                _statTurnarounds.inc();
                ch.lastWasWrite = isWrite;
            }
            ch.busyUntil = cycle + cost;
            ch.inflight = std::move(b);
            ch.hasInflight = true;
            _statBusyCycles.inc(cost);
            break;
        }
    }
}

void
MemoryController::completeBursts(Cycle cycle)
{
    for (Channel& ch : _channels) {
        if (!ch.hasInflight || cycle < ch.busyUntil)
            continue;
        Burst& b = ch.inflight;
        const u32 addr = b.txn->address + b.offset;
        if (b.txn->isRead) {
            _memory.read(addr, b.size, b.txn->data.data() + b.offset);
            _statReadBytes.inc(b.size);
        } else {
            _memory.write(addr, b.size,
                          b.txn->data.data() + b.offset);
            _statWriteBytes.inc(b.size);
        }
        _totalBytes += b.size;
        _statClientBytes[b.clientIdx].inc(b.size);

        bool lastBurst = false;
        if (_fastPath) {
            if (b.txn->hostBurstsLeft == 0) {
                panic("memory controller: completion for an unknown"
                      " transaction");
            }
            lastBurst = --b.txn->hostBurstsLeft == 0;
        } else {
            auto it = _pendingBursts.find(b.txn.get());
            if (it == _pendingBursts.end()) {
                panic("memory controller: completion for an unknown"
                      " transaction");
            }
            lastBurst = --it->second == 0;
            if (lastBurst)
                _pendingBursts.erase(it);
        }
        if (lastBurst) {
            --_pendingTxns;
            _clients[b.clientIdx]->completed.push_back(
                std::move(b.txn));
        }
        b.txn.reset();
        ch.hasInflight = false;
    }
}

void
MemoryController::sendResponses(Cycle cycle)
{
    for (auto& clientPtr : _clients) {
        ClientPort& client = *clientPtr;
        client.resp.clock(cycle);
        while (!client.completed.empty() &&
               client.resp.canSend(cycle)) {
            client.resp.send(cycle, client.completed.pop_front());
        }
    }
}

void
MemoryController::update(Cycle cycle)
{
    acceptRequests(cycle);
    completeBursts(cycle);
    scheduleChannels(cycle);
    sendResponses(cycle);
    commitStats();
}

void
MemoryController::commitStats()
{
    _statReadBytes.commit();
    _statWriteBytes.commit();
    _statBusyCycles.commit();
    _statPageOpens.commit();
    _statTurnarounds.commit();
    _statRowHits.commit();
    _statRowMisses.commit();
    _statRowConflicts.commit();
    _statPrecharges.commit();
    _statActivates.commit();
    for (auto& stat : _statClientBytes)
        stat.commit();
}

bool
MemoryController::empty() const
{
    if (_pendingTxns != 0)
        return false;
    for (const auto& client : _clients) {
        if (!client->completed.empty() || !client->req.empty())
            return false;
    }
    for (const Channel& ch : _channels) {
        if (ch.hasInflight || !ch.pending.empty())
            return false;
    }
    return true;
}

} // namespace attila::gpu

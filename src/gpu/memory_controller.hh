/**
 * @file
 * MemoryController: the unit interfacing GPU memory (paper §2.2).
 *
 * Modelled on GDDR3: the access unit is a 64-byte transaction (a
 * 4-cycle transfer from a double-rate 64-bit channel); the baseline's
 * four channels deliver up to 64 bytes/cycle.  Channels are
 * interleaved every 256 bytes.  Configurable penalties apply when a
 * channel opens a new page or turns around between reads and writes.
 * Per-client request queues and response buses form the crossbar
 * servicing the GPU units.
 *
 * Transactions are functional: reads return the current bytes of the
 * GpuMemory image at completion time, writes commit their payload at
 * completion time.  Clients therefore observe memory-consistent data
 * with realistic timing.
 *
 * Host-side fast path (GpuConfig::memFastPath, timing-identical):
 * burst bookkeeping lives in the transaction itself
 * (MemTransaction::hostBurstsLeft) instead of a std::map keyed by
 * pointer, the per-channel and completion queues are RingQueues
 * instead of deques, address decomposition uses precomputed
 * shift/mask pairs when the geometry is a power of two, and
 * statistics commit once per clock.
 *
 * Timing models (GpuConfig::memModel):
 *
 *  - Flat (default): one burst in flight per channel, flat transfer
 *    cost plus page-open and read/write-turnaround penalties.
 *    Bit-identical to the historical controller.
 *  - Banked: per-channel GDDR banks with row open/close state and
 *    the RCD/RAS/RP/RC/CL/WL/WR counters of gpu/dram_timing.hh.  A
 *    row hit costs CL/WL, a cold bank adds RCD (activate), a row
 *    conflict adds RP + RCD (precharge + activate) gated by
 *    RAS/RC/RRD/WR accounting.  Bursts queue in one per-channel
 *    arrival-order pending ring; the scheduling policy
 *    (GpuConfig::dramScheduler) picks the next burst — FIFO takes
 *    the oldest, FR-FCFS takes the first row hit in the scheduling
 *    window unless the oldest has already been overtaken frfcfsCap
 *    times (starvation cap).
 */

#ifndef ATTILA_GPU_MEMORY_CONTROLLER_HH
#define ATTILA_GPU_MEMORY_CONTROLLER_HH

#include <map>
#include <string>
#include <vector>

#include "emu/memory.hh"
#include "gpu/dram_timing.hh"
#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "gpu/work_objects.hh"
#include "sim/box.hh"
#include "sim/ring_queue.hh"

namespace attila::gpu
{

/**
 * Client-side access port: request LinkTx + response LinkRx.
 * Owned by the client box; the signal names pair with the
 * MemoryController's per-client registration.
 */
class MemPort
{
  public:
    /** @param port_name unique name, e.g. "mc.zcache0". */
    void
    init(sim::Box& box, sim::SignalBinder& binder,
         const std::string& port_name, u32 queue_capacity)
    {
        // The command bus accepts several requests per cycle; data
        // transfer timing is modelled inside the controller.
        _req.init(box, binder, port_name + ".req", 8, 1,
                  queue_capacity);
        _resp.init(box, binder, port_name + ".resp", 8, 1,
                   queue_capacity);
    }

    void
    clock(Cycle cycle)
    {
        _req.clock(cycle);
        _resp.clock(cycle);
    }

    bool canRequest(Cycle cycle) const { return _req.canSend(cycle); }

    /** Free request-queue credits (for multi-request bursts). */
    u32 requestCredits() const { return _req.credits(); }

    void
    request(Cycle cycle, MemTransactionPtr txn)
    {
        _req.send(cycle, std::move(txn));
    }

    bool hasResponse() const { return !_resp.empty(); }

    MemTransactionPtr
    popResponse(Cycle cycle)
    {
        return _resp.pop(cycle);
    }

    bool idle() const { return _req.idle() && !hasResponse(); }

  private:
    LinkTx _req;
    LinkRx<MemTransaction> _resp;
};

/** The GDDR3-like memory controller box. */
class MemoryController : public sim::Box
{
  public:
    /**
     * @param client_ports signal base names of every client port
     *        ("mc.zcache0", ...), fixed at construction.
     */
    MemoryController(sim::SignalBinder& binder,
                     sim::StatisticManager& stats,
                     const GpuConfig& config, emu::GpuMemory& memory,
                     std::vector<std::string> client_ports);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet (in-flight channel bursts
     * count as held work). */
    bool busy() const override { return !empty(); }

    /** Total bytes transferred (reads + writes). */
    u64 totalBytes() const { return _totalBytes; }

    // Banked-model observables (live totals; also exported as
    // MemoryController.* statistics).
    u64 rowHits() const { return _statRowHits.liveTotal(); }
    u64 rowMisses() const { return _statRowMisses.liveTotal(); }
    u64 rowConflicts() const { return _statRowConflicts.liveTotal(); }
    u64 precharges() const { return _statPrecharges.liveTotal(); }
    u64 activates() const { return _statActivates.liveTotal(); }

  private:
    struct Burst
    {
        MemTransactionPtr txn;
        u32 clientIdx = 0;
        u32 offset = 0; ///< Offset within the transaction.
        u32 size = 0;
        u32 bypassed = 0; ///< Times overtaken (FR-FCFS cap).
    };

    /** One GDDR bank's row state (banked model only). */
    struct Bank
    {
        bool rowOpen = false;
        u64 openRow = ~0ull;
        bool everActivated = false;
        Cycle activateAt = 0;       ///< Last ACT issue time.
        Cycle prechargeReadyAt = 0; ///< Write-recovery (WR) gate.
    };

    struct Channel
    {
        std::vector<sim::RingQueue<Burst>> queues; ///< Per client.
        u32 rrNext = 0;
        Cycle busyUntil = 0;
        bool hasInflight = false;
        Burst inflight;
        u64 currentPage = ~0ull;
        bool lastWasWrite = false;
        // Banked model state.
        sim::RingQueue<Burst> pending; ///< Arrival order.
        std::vector<Bank> banks;
        bool everActivated = false;
        Cycle lastActivateAt = 0; ///< RRD gate across banks.
    };

    struct ClientPort
    {
        std::string name;
        LinkRx<MemTransaction> req;
        LinkTx resp;
        sim::RingQueue<MemTransactionPtr> completed;
    };

    u32
    channelOf(u32 addr) const
    {
        return _fastAddr ? (addr >> _ilShift) & _chanMask
                         : (addr / _config.channelInterleave) %
                               _config.memoryChannels;
    }

    u64
    pageOf(u32 addr) const
    {
        return _fastPage ? addr >> _pageShift
                         : addr / _config.memoryPageBytes;
    }

    u64
    transferCycles(u32 size) const
    {
        const u32 bpc = _config.channelBytesPerCycle;
        return _fastCost ? (size + bpc - 1) >> _bpcShift
                         : (size + bpc - 1) / bpc;
    }

    /** Bank index of @p addr within its channel. */
    u32
    bankOf(u32 addr) const
    {
        return _fastPage ? (addr >> _pageShift) & (_timing.nbk - 1)
                         : (addr / _config.memoryPageBytes) %
                               _timing.nbk;
    }

    /** Row index of @p addr within its bank. */
    u64
    rowOf(u32 addr) const
    {
        return pageOf(addr) / _timing.nbk;
    }

    void acceptRequests(Cycle cycle);
    void scheduleChannels(Cycle cycle);
    void scheduleBanked(Cycle cycle);
    /** Pending-ring position the policy schedules next; bumps the
     * front burst's bypass counter when overtaking it. */
    u32 pickPending(Channel& ch);
    void completeBursts(Cycle cycle);
    void sendResponses(Cycle cycle);
    void commitStats();

    const GpuConfig& _config;
    emu::GpuMemory& _memory;
    std::vector<std::unique_ptr<ClientPort>> _clients;
    std::vector<Channel> _channels;
    bool _fastPath = true;
    bool _banked = false;
    DramTiming _timing;
    /** Transactions accepted but not yet completed (both paths). */
    u32 _pendingTxns = 0;
    /** Reference-path burst bookkeeping (memFastPath off); the fast
     * path counts down MemTransaction::hostBurstsLeft instead. */
    std::map<const MemTransaction*, u32> _pendingBursts;
    u64 _totalBytes = 0;

    // Precomputed address decomposition (power-of-two geometry).
    bool _fastAddr = false;
    bool _fastPage = false;
    bool _fastCost = false;
    u32 _ilShift = 0;
    u32 _chanMask = 0;
    u32 _pageShift = 0;
    u32 _bpcShift = 0;

    sim::BatchedStat _statReadBytes;
    sim::BatchedStat _statWriteBytes;
    sim::BatchedStat _statBusyCycles;
    sim::BatchedStat _statPageOpens;
    sim::BatchedStat _statTurnarounds;
    sim::BatchedStat _statRowHits;
    sim::BatchedStat _statRowMisses;
    sim::BatchedStat _statRowConflicts;
    sim::BatchedStat _statPrecharges;
    sim::BatchedStat _statActivates;
    std::vector<sim::BatchedStat> _statClientBytes;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_MEMORY_CONTROLLER_HH

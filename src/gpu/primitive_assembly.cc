#include "gpu/primitive_assembly.hh"

namespace attila::gpu
{

PrimitiveAssembly::PrimitiveAssembly(sim::SignalBinder& binder,
                                     sim::StatisticManager& stats,
                                     const GpuConfig& config)
    : Box(binder, stats, "PrimitiveAssembly"),
      _statTriangles(stat("triangles")),
      _statBusy(stat("busyCycles"))
{
    _in.init(*this, binder, "streamer.assembly", 1, 1,
             config.primitiveAssemblyQueue);
    _out.init(*this, binder, "assembly.clipper", config.trianglesPerCycle,
              1, config.clipperQueue);
}

bool
PrimitiveAssembly::emitTriangle(Cycle cycle, u32 a, u32 b, u32 c)
{
    if (!_out.canSend(cycle))
        return false;
    auto tri = std::make_shared<TriangleObj>();
    tri->batchId = _batchId;
    tri->state = _state;
    tri->triangleId = _triangleCount++;
    tri->vertex[0] = _window[a]->out;
    tri->vertex[1] = _window[b]->out;
    tri->vertex[2] = _window[c]->out;
    tri->setInfo("tri");
    tri->copyTrailFrom(*_window[a]);
    _out.send(cycle, tri);
    _statTriangles.inc();
    return true;
}

void
PrimitiveAssembly::assemble(Cycle cycle)
{
    // One vertex consumed per cycle (Table 1: 1 vertex in, 1
    // triangle out).
    if (_in.empty())
        return;

    const VertexObjPtr& head = _in.front();

    if (head->marker == MarkerKind::BatchStart) {
        if (!_out.canSend(cycle))
            return;
        _state = head->state;
        _batchId = head->batchId;
        _primitive = head->primitive;
        _window.clear();
        _vertexCount = 0;
        _triangleCount = 0;
        _out.send(cycle, _in.pop(cycle));
        return;
    }
    if (head->marker == MarkerKind::BatchEnd) {
        if (!_out.canSend(cycle))
            return;
        _window.clear();
        _out.send(cycle, _in.pop(cycle));
        return;
    }

    // Consume the vertex.
    const u32 n = _vertexCount;
    switch (_primitive) {
      case Primitive::Triangles:
        if (_window.size() == 3)
            _window.clear();
        if (_window.size() == 2 && !_out.canSend(cycle))
            return;
        _window.push_back(_in.pop(cycle));
        ++_vertexCount;
        if (_window.size() == 3) {
            emitTriangle(cycle, 0, 1, 2);
            _window.clear();
        }
        break;

      case Primitive::TriangleStrip:
        if (_window.size() == 3)
            _window.erase(_window.begin());
        if (_window.size() == 2 && !_out.canSend(cycle))
            return;
        _window.push_back(_in.pop(cycle));
        ++_vertexCount;
        if (_window.size() == 3) {
            // Keep the winding consistent: odd triangles swap.
            if ((n % 2) == 0)
                emitTriangle(cycle, 0, 1, 2);
            else
                emitTriangle(cycle, 1, 0, 2);
        }
        break;

      case Primitive::TriangleFan:
        if (_window.size() == 3)
            _window.erase(_window.begin() + 1);
        if (_window.size() == 2 && !_out.canSend(cycle))
            return;
        _window.push_back(_in.pop(cycle));
        ++_vertexCount;
        if (_window.size() == 3)
            emitTriangle(cycle, 0, 1, 2);
        break;

      case Primitive::Quads:
        if (_window.size() == 4)
            _window.clear();
        // The 4th vertex triggers two triangles: needs two credits
        // over two cycles; emit the first now, keep the window and
        // emit the second next cycle via the pending flag.
        if (_window.size() == 3 && !_out.canSend(cycle))
            return;
        _window.push_back(_in.pop(cycle));
        ++_vertexCount;
        if (_window.size() == 4) {
            emitTriangle(cycle, 0, 1, 2);
            _pendingSecond = true;
        }
        break;

      case Primitive::QuadStrip:
        if (_window.size() == 4) {
            _window.erase(_window.begin());
            _window.erase(_window.begin());
        }
        if (_window.size() == 3 && !_out.canSend(cycle))
            return;
        _window.push_back(_in.pop(cycle));
        ++_vertexCount;
        if (_window.size() == 4) {
            // Quad strip vertices arrive as pairs (v0 v1) (v2 v3)
            // forming the quad v0 v1 v3 v2.
            emitTriangle(cycle, 0, 1, 3);
            _pendingSecond = true;
        }
        break;
    }
}

void
PrimitiveAssembly::update(Cycle cycle)
{
    _in.clock(cycle);
    _out.clock(cycle);

    if (_pendingSecond) {
        if (!_out.canSend(cycle))
            return;
        if (_primitive == Primitive::Quads)
            emitTriangle(cycle, 0, 2, 3);
        else
            emitTriangle(cycle, 0, 3, 2); // Quad strip.
        _pendingSecond = false;
        _statBusy.inc();
        return;
    }

    if (!_in.empty())
        _statBusy.inc();
    assemble(cycle);
}

bool
PrimitiveAssembly::empty() const
{
    return _in.empty() && !_pendingSecond;
}

} // namespace attila::gpu

/**
 * @file
 * PrimitiveAssembly: stores shaded vertices and assembles them into
 * triangles (paper §2.2).  Supports the five OpenGL primitives
 * ATTILA implements: triangle lists, strips and fans, and quad lists
 * and strips (quads become two triangles).
 */

#ifndef ATTILA_GPU_PRIMITIVE_ASSEMBLY_HH
#define ATTILA_GPU_PRIMITIVE_ASSEMBLY_HH

#include <vector>

#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "sim/box.hh"

namespace attila::gpu
{

/** The Primitive Assembly box. */
class PrimitiveAssembly : public sim::Box
{
  public:
    PrimitiveAssembly(sim::SignalBinder& binder,
                      sim::StatisticManager& stats,
                      const GpuConfig& config);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet. */
    bool busy() const override { return !empty(); }

  private:
    /** Emit a triangle from stored vertices a, b, c. */
    bool emitTriangle(Cycle cycle, u32 a, u32 b, u32 c);
    void assemble(Cycle cycle);

    LinkRx<VertexObj> _in;
    LinkTx _out;

    /** Vertices of the current primitive run. */
    std::vector<VertexObjPtr> _window;
    u32 _vertexCount = 0; ///< Vertices consumed in this batch.
    u32 _triangleCount = 0;
    RenderStatePtr _state;
    u32 _batchId = 0;
    Primitive _primitive = Primitive::Triangles;
    bool _pendingSecond = false; ///< Second triangle of a quad.

    sim::Statistic& _statTriangles;
    sim::Statistic& _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_PRIMITIVE_ASSEMBLY_HH

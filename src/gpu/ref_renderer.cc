#include "gpu/ref_renderer.hh"

#include <cstring>

#include "emu/clipper_emulator.hh"
#include "emu/fragment_op_emulator.hh"
#include "emu/rasterizer_emulator.hh"
#include "emu/texture_emulator.hh"
#include "gpu/framebuffer.hh"

namespace attila::gpu
{

using emu::FragmentOpEmulator;
using emu::RasterizerEmulator;
using emu::TextureEmulator;
using emu::Vec4;

RefRenderer::RefRenderer(u32 memory_size)
    : _memory(std::make_unique<emu::GpuMemory>(memory_size))
{
}

void
RefRenderer::execute(const CommandList& list)
{
    for (const Command& cmd : list) {
        switch (cmd.op) {
          case CommandOp::WriteReg:
            applyRegister(_state, cmd.reg, cmd.regIndex, cmd.value);
            break;
          case CommandOp::WriteBuffer:
            _memory->write(cmd.address,
                           static_cast<u32>(cmd.data->size()),
                           cmd.data->data());
            break;
          case CommandOp::LoadVertexProgram:
            _state.vertexProgram = cmd.program;
            emu::ShaderEmulator::applyLiterals(
                *cmd.program, _state.vertexConstants);
            break;
          case CommandOp::LoadFragmentProgram:
            _state.fragmentProgram = cmd.program;
            emu::ShaderEmulator::applyLiterals(
                *cmd.program, _state.fragmentConstants);
            break;
          case CommandOp::Draw:
            draw(cmd.draw);
            break;
          case CommandOp::ClearColor:
            clearColor();
            break;
          case CommandOp::ClearZStencil:
            clearZStencil();
            break;
          case CommandOp::Swap:
            swap();
            break;
        }
    }
}

u32
RefRenderer::fetchIndex(u32 i) const
{
    if (!_state.indexStream.enabled)
        return i;
    if (_state.indexStream.wide) {
        return _memory->readAs<u32>(_state.indexStream.address +
                                    i * 4);
    }
    return _memory->readAs<u16>(_state.indexStream.address + i * 2);
}

Vec4
RefRenderer::fetchAttribute(u32 stream, u32 index) const
{
    const VertexStream& vs = _state.streams[stream];
    const u32 addr = vs.address + index * vs.stride;
    Vec4 v(0.0f, 0.0f, 0.0f, 1.0f);
    u8 bytes[16];
    _memory->read(addr, streamFormatBytes(vs.format), bytes);
    switch (vs.format) {
      case StreamFormat::Float4:
        std::memcpy(&v.w, bytes + 12, 4);
        [[fallthrough]];
      case StreamFormat::Float3:
        std::memcpy(&v.z, bytes + 8, 4);
        [[fallthrough]];
      case StreamFormat::Float2:
        std::memcpy(&v.y, bytes + 4, 4);
        [[fallthrough]];
      case StreamFormat::Float1:
        std::memcpy(&v.x, bytes, 4);
        break;
      case StreamFormat::UByte4N:
        v = {bytes[0] / 255.0f, bytes[1] / 255.0f, bytes[2] / 255.0f,
             bytes[3] / 255.0f};
        break;
    }
    return v;
}

RefRenderer::ShadedVertex
RefRenderer::shadeVertex(u32 index)
{
    emu::ShaderThreadState thread;
    for (u32 s = 0; s < maxVertexStreams; ++s) {
        if (_state.streams[s].enabled)
            thread.in[s] = fetchAttribute(s, index);
    }
    if (!_state.vertexProgram)
        fatal("RefRenderer: draw without a vertex program");
    if (_fastPath) {
        _emulator.runDecoded(_decodeCache.get(_state.vertexProgram),
                             _state.vertexConstants, thread);
    } else {
        _emulator.run(*_state.vertexProgram, _state.vertexConstants,
                      thread);
    }
    ShadedVertex out;
    out.out = thread.out;
    return out;
}

void
RefRenderer::shadeQuad(std::array<emu::ShaderThreadState, 4>& lanes,
                       std::array<bool, 4>& killed) const
{
    const emu::ShaderProgram& prog = *_state.fragmentProgram;
    const emu::ConstantBank& consts = _state.fragmentConstants;

    if (_fastPath) {
        // Pre-decoded quad-lockstep path.  The sampler replicates the
        // per-lane path below operation for operation (projection,
        // shared footprint, per-lane sample) so registers stay
        // bit-identical; the decoded-block cache is pure memoization.
        auto quadSample =
            [&](u32 unit, emu::TexTarget, const std::array<Vec4, 4>&
                    rawCoords, u8 liveMask, f32 lodBias,
                bool projected) -> std::array<Vec4, 4> {
            std::array<Vec4, 4> coords = rawCoords;
            if (projected) {
                for (u32 l = 0; l < 4; ++l) {
                    const f32 q =
                        coords[l].w != 0.0f ? coords[l].w : 1.0f;
                    coords[l] = {coords[l].x / q, coords[l].y / q,
                                 coords[l].z / q, 1.0f};
                }
            }
            const emu::TextureDescriptor& desc =
                _state.textures[unit];
            u32 aniso;
            f32 lod;
            Vec4 majorAxis;
            TextureEmulator::quadFootprint(desc, coords, lodBias,
                                           aniso, lod, majorAxis);
            std::array<Vec4, 4> texels{};
            emu::TexBlockCache blockCache;
            for (u32 l = 0; l < 4; ++l) {
                if (!(liveMask & (1u << l)))
                    continue;
                texels[l] = TextureEmulator::samplePlanned(
                    desc, coords[l], lod, aniso, majorAxis, *_memory,
                    &blockCache);
            }
            return texels;
        };
        const emu::QuadSampler sampler = quadSample;
        std::array<bool, 4> laneDone{};
        _emulator.runQuad(_decodeCache.get(_state.fragmentProgram),
                          consts, lanes, laneDone, killed, sampler);
        return;
    }

    // Lockstep execution with quad-context texture sampling, exactly
    // as the shader units + texture units do it.
    std::array<bool, 4> done{};
    killed.fill(false);
    for (u32 guard = 0; guard < 65536; ++guard) {
        s32 ref = -1;
        for (u32 l = 0; l < 4; ++l) {
            if (!done[l]) {
                ref = static_cast<s32>(l);
                break;
            }
        }
        if (ref < 0)
            return;

        const emu::Instruction& ins = prog.code[lanes[ref].pc];
        const emu::OpcodeInfo& info = emu::opcodeInfo(ins.op);

        if (info.isTexture) {
            std::array<Vec4, 4> coords{};
            std::array<emu::StepResult, 4> steps;
            for (u32 l = 0; l < 4; ++l) {
                if (done[l])
                    continue;
                steps[l] = _emulator.step(prog, consts, lanes[l]);
                coords[l] = steps[l].texCoord;
            }
            const emu::StepResult& s0 =
                steps[static_cast<u32>(ref)];
            if (s0.texProjected) {
                for (u32 l = 0; l < 4; ++l) {
                    const f32 q =
                        coords[l].w != 0.0f ? coords[l].w : 1.0f;
                    coords[l] = {coords[l].x / q, coords[l].y / q,
                                 coords[l].z / q, 1.0f};
                }
            }
            const emu::TextureDescriptor& desc =
                _state.textures[s0.texUnit];
            u32 aniso;
            f32 lod;
            Vec4 majorAxis;
            TextureEmulator::quadFootprint(desc, coords,
                                           s0.texLodBias, aniso,
                                           lod, majorAxis);
            for (u32 l = 0; l < 4; ++l) {
                if (done[l])
                    continue;
                const auto plan = TextureEmulator::planSample(
                    desc, coords[l], lod, aniso, majorAxis);
                const Vec4 texel = TextureEmulator::executePlan(
                    desc, plan, *_memory);
                _emulator.completeTexture(prog, lanes[l], texel);
            }
            continue;
        }

        for (u32 l = 0; l < 4; ++l) {
            if (done[l])
                continue;
            const auto step = _emulator.step(prog, consts, lanes[l]);
            if (step.outcome == emu::StepOutcome::Done) {
                done[l] = true;
                killed[l] = lanes[l].killed;
            }
        }
    }
    panic("RefRenderer: fragment program did not terminate");
}

void
RefRenderer::drawTriangle(const ShadedVertex& v0,
                          const ShadedVertex& v1,
                          const ShadedVertex& v2)
{
    using namespace emu::regix;

    const Vec4& p0 = v0.out[vposPosition];
    const Vec4& p1 = v1.out[vposPosition];
    const Vec4& p2 = v2.out[vposPosition];

    if (emu::ClipperEmulator::trivialReject(p0, p1, p2))
        return;

    bool cullCcw = false, cullCw = false;
    switch (_state.cull) {
      case CullMode::None:
        break;
      case CullMode::Front:
        (_state.frontFaceCcw ? cullCcw : cullCw) = true;
        break;
      case CullMode::Back:
        (_state.frontFaceCcw ? cullCw : cullCcw) = true;
        break;
      case CullMode::FrontAndBack:
        cullCcw = cullCw = true;
        break;
    }

    const auto setup = RasterizerEmulator::setup(
        p0, p1, p2, _state.viewport, cullCcw, cullCw);
    if (!setup.valid)
        return;
    const bool backFacing = setup.ccw != _state.frontFaceCcw;

    const bool writesDepth =
        _state.fragmentProgram &&
        (_state.fragmentProgram->outputsWritten &
         (1u << foutDepth));
    const u32 inputsRead = _state.fragmentProgram
                               ? _state.fragmentProgram->inputsRead
                               : 0u;

    RasterizerEmulator::traverseScanline(
        setup, fbTileDim, [&](s32 tx, s32 ty) {
            for (u32 qy = 0; qy < fbTileDim / 2; ++qy) {
                for (u32 qx = 0; qx < fbTileDim / 2; ++qx) {
                    const s32 x0 = tx + static_cast<s32>(qx * 2);
                    const s32 y0 = ty + static_cast<s32>(qy * 2);

                    std::array<bool, 4> cover{};
                    std::array<f32, 4> depth{};
                    std::array<emu::ShaderThreadState, 4> lanes;
                    bool any = false;
                    for (u32 f = 0; f < 4; ++f) {
                        const s32 x = x0 + static_cast<s32>(f % 2);
                        const s32 y = y0 + static_cast<s32>(f / 2);
                        const auto frag =
                            RasterizerEmulator::evalFragment(setup,
                                                             x, y);
                        bool inside = frag.inside;
                        if (x < 0 || y < 0 ||
                            x >= static_cast<s32>(_state.width) ||
                            y >= static_cast<s32>(_state.height)) {
                            inside = false;
                        }
                        if (inside && _state.scissor.enabled) {
                            const ScissorState& sc = _state.scissor;
                            if (x < sc.x || y < sc.y ||
                                x >= sc.x +
                                         static_cast<s32>(sc.width) ||
                                y >= sc.y +
                                         static_cast<s32>(
                                             sc.height)) {
                                inside = false;
                            }
                        }
                        cover[f] = inside;
                        any |= inside;
                        depth[f] = frag.z;

                        // Interpolate inputs for every lane (helper
                        // pixels included).
                        lanes[f].reset();
                        for (u32 attr = 1; attr < numInputRegs;
                             ++attr) {
                            if (!(inputsRead & (1u << attr)))
                                continue;
                            lanes[f].in[attr] =
                                RasterizerEmulator::interpolate(
                                    frag.edge, v0.out[attr],
                                    v1.out[attr], v2.out[attr]);
                        }
                        lanes[f].in[finPosition] = {
                            static_cast<f32>(x) + 0.5f,
                            static_cast<f32>(y) + 0.5f, frag.z,
                            RasterizerEmulator::oneOverW(setup,
                                                         frag.edge)};
                    }
                    if (!any)
                        continue;

                    std::array<bool, 4> killed{};
                    if (!_state.fragmentProgram)
                        fatal("RefRenderer: draw without a fragment"
                              " program");
                    shadeQuad(lanes, killed);

                    for (u32 f = 0; f < 4; ++f) {
                        if (!cover[f] || killed[f])
                            continue;
                        const u32 x =
                            static_cast<u32>(x0) + (f % 2);
                        const u32 y =
                            static_cast<u32>(y0) + (f / 2);

                        f32 z = depth[f];
                        if (writesDepth)
                            z = lanes[f].out[foutDepth].x;

                        // Z / stencil.
                        const emu::ZStencilState& zs =
                            _state.zStencil;
                        if (zs.depthTest || zs.stencilTest) {
                            const u32 addr = fbPixelAddress(
                                _state.zStencilBufferAddress,
                                _state.width, x, y);
                            const u32 stored =
                                _memory->readAs<u32>(addr);
                            const auto result =
                                FragmentOpEmulator::zStencilTest(
                                    zs, emu::quantizeDepth(z),
                                    stored, backFacing);
                            if (result.newZS != stored)
                                _memory->writeAs<u32>(addr,
                                                      result.newZS);
                            if (!result.pass)
                                continue;
                        }

                        // Colour.
                        if (_state.blend.colorMask == 0)
                            continue;
                        const u32 caddr = fbPixelAddress(
                            _state.colorBufferAddress, _state.width,
                            x, y);
                        const u32 storedColor =
                            _memory->readAs<u32>(caddr);
                        const u32 updated =
                            FragmentOpEmulator::colorWrite(
                                _state.blend,
                                lanes[f].out[foutColor],
                                storedColor);
                        if (updated != storedColor)
                            _memory->writeAs<u32>(caddr, updated);
                    }
                }
            }
        });
}

void
RefRenderer::draw(const DrawParams& params)
{
    // Shade every vertex of the batch once (the post-shading vertex
    // cache makes the timing path equivalent).
    std::vector<ShadedVertex> shaded;
    shaded.reserve(params.count);
    for (u32 i = 0; i < params.count; ++i) {
        const u32 seq = _state.indexStream.enabled
                            ? i
                            : params.first + i;
        shaded.push_back(shadeVertex(fetchIndex(seq)));
    }

    auto tri = [&](u32 a, u32 b, u32 c) {
        drawTriangle(shaded[a], shaded[b], shaded[c]);
    };

    const u32 n = params.count;
    switch (params.primitive) {
      case Primitive::Triangles:
        for (u32 i = 0; i + 2 < n; i += 3)
            tri(i, i + 1, i + 2);
        break;
      case Primitive::TriangleStrip:
        for (u32 i = 0; i + 2 < n; ++i) {
            if (i % 2 == 0)
                tri(i, i + 1, i + 2);
            else
                tri(i + 1, i, i + 2);
        }
        break;
      case Primitive::TriangleFan:
        for (u32 i = 1; i + 1 < n; ++i)
            tri(0, i, i + 1);
        break;
      case Primitive::Quads:
        for (u32 i = 0; i + 3 < n; i += 4) {
            tri(i, i + 1, i + 2);
            tri(i, i + 2, i + 3);
        }
        break;
      case Primitive::QuadStrip:
        for (u32 i = 0; i + 3 < n; i += 2) {
            tri(i, i + 1, i + 3);
            tri(i, i + 3, i + 2);
        }
        break;
    }
}

void
RefRenderer::clearColor()
{
    const u32 word =
        FragmentOpEmulator::packRgba8(_state.clearColor);
    const u32 bytes = fbSurfaceBytes(_state.width, _state.height);
    for (u32 off = 0; off < bytes; off += 4)
        _memory->writeAs<u32>(_state.colorBufferAddress + off, word);
}

void
RefRenderer::clearZStencil()
{
    const u32 word = emu::packDepthStencil(
        emu::quantizeDepth(_state.clearDepth), _state.clearStencil);
    const u32 bytes = fbSurfaceBytes(_state.width, _state.height);
    for (u32 off = 0; off < bytes; off += 4) {
        _memory->writeAs<u32>(_state.zStencilBufferAddress + off,
                              word);
    }
}

void
RefRenderer::swap()
{
    FrameImage frame;
    frame.width = _state.width;
    frame.height = _state.height;
    frame.pixels.assign(static_cast<std::size_t>(_state.width) *
                            _state.height,
                        0);
    for (u32 y = 0; y < _state.height; ++y) {
        for (u32 x = 0; x < _state.width; ++x) {
            frame.pixels[y * _state.width + x] =
                _memory->readAs<u32>(fbPixelAddress(
                    _state.colorBufferAddress, _state.width, x, y));
        }
    }
    _frames.push_back(std::move(frame));
}

} // namespace attila::gpu

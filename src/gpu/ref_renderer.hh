/**
 * @file
 * RefRenderer: an independent, purely functional renderer consuming
 * the same Command Processor streams as the timing GPU.
 *
 * It shares the *emulation* libraries (shader interpreter, texture
 * sampler, rasterizer equations, fragment operations) but none of
 * the *timing* code (boxes, signals, caches, scheduling), so
 * comparing its output against the DAC dump catches exactly the
 * class of bugs the paper's Figure 10 methodology targets: data
 * corruption introduced by the timing simulator.
 *
 * Fragments are processed as 2x2 quads with helper pixels, in
 * lockstep, so texture level-of-detail selection matches the
 * hardware model bit for bit.
 */

#ifndef ATTILA_GPU_REF_RENDERER_HH
#define ATTILA_GPU_REF_RENDERER_HH

#include <memory>

#include "emu/decoded_program.hh"
#include "emu/memory.hh"
#include "emu/shader_emulator.hh"
#include "gpu/commands.hh"
#include "gpu/dac.hh"

namespace attila::gpu
{

/** The functional reference renderer. */
class RefRenderer
{
  public:
    /** @param memory_size GPU memory image size in bytes. */
    explicit RefRenderer(u32 memory_size = 64u << 20);

    /** Execute a command stream. */
    void execute(const CommandList& list);

    /** Frames produced at Swap commands. */
    const std::vector<FrameImage>& frames() const { return _frames; }

    emu::GpuMemory& memory() { return *_memory; }

    /** Toggle the pre-decoded quad-lockstep fast path (bit-identical
     * output either way; defaults to GpuConfig::emuFastPath's
     * ATTILA_EMU_FASTPATH-aware default). */
    void setFastPath(bool on) { _fastPath = on; }
    bool fastPath() const { return _fastPath; }

  private:
    struct ShadedVertex
    {
        std::array<emu::Vec4, emu::regix::numOutputRegs> out;
    };

    void draw(const DrawParams& params);
    void drawTriangle(const ShadedVertex& v0, const ShadedVertex& v1,
                      const ShadedVertex& v2);
    ShadedVertex shadeVertex(u32 index);
    u32 fetchIndex(u32 i) const;
    emu::Vec4 fetchAttribute(u32 stream, u32 index) const;
    void clearColor();
    void clearZStencil();
    void swap();

    /** Run the fragment program on a 2x2 quad in lockstep. */
    void shadeQuad(
        std::array<emu::ShaderThreadState, 4>& lanes,
        std::array<bool, 4>& killed) const;

    std::unique_ptr<emu::GpuMemory> _memory;
    RenderState _state;
    std::vector<FrameImage> _frames;
    emu::ShaderEmulator _emulator;
    /** Pre-decoded program cache (fast path); mutable because
     * shadeQuad() is const and decode-on-first-use is pure. */
    mutable emu::DecodedProgramCache _decodeCache;
    bool _fastPath = emu::emuFastPathDefault();
};

} // namespace attila::gpu

#endif // ATTILA_GPU_REF_RENDERER_HH

#include "gpu/regs.hh"

#include "sim/logging.hh"

namespace attila::gpu
{

void
applyRegister(RenderState& state, Reg reg, u32 index,
              const RegValue& value)
{
    using emu::CompareFunc;
    using emu::StencilOp;
    using emu::BlendFactor;
    using emu::BlendEquation;

    switch (reg) {
      case Reg::FbWidth:
        state.width = value.u;
        break;
      case Reg::FbHeight:
        state.height = value.u;
        break;
      case Reg::ColorBufferAddr:
        state.colorBufferAddress = value.u;
        break;
      case Reg::ZStencilBufferAddr:
        state.zStencilBufferAddress = value.u;
        break;

      case Reg::ViewportX:
        state.viewport.x = static_cast<s32>(value.u);
        break;
      case Reg::ViewportY:
        state.viewport.y = static_cast<s32>(value.u);
        break;
      case Reg::ViewportWidth:
        state.viewport.width = value.u;
        break;
      case Reg::ViewportHeight:
        state.viewport.height = value.u;
        break;

      case Reg::CullMode_:
        state.cull = static_cast<CullMode>(value.u);
        break;
      case Reg::FrontFaceCcw:
        state.frontFaceCcw = value.u != 0;
        break;

      case Reg::ScissorEnable:
        state.scissor.enabled = value.u != 0;
        break;
      case Reg::ScissorX:
        state.scissor.x = static_cast<s32>(value.u);
        break;
      case Reg::ScissorY:
        state.scissor.y = static_cast<s32>(value.u);
        break;
      case Reg::ScissorWidth:
        state.scissor.width = value.u;
        break;
      case Reg::ScissorHeight:
        state.scissor.height = value.u;
        break;

      case Reg::DepthTestEnable:
        state.zStencil.depthTest = value.u != 0;
        break;
      case Reg::DepthFunc:
        state.zStencil.depthFunc = static_cast<CompareFunc>(value.u);
        break;
      case Reg::DepthWriteMask:
        state.zStencil.depthWrite = value.u != 0;
        break;

      case Reg::StencilTestEnable:
        state.zStencil.stencilTest = value.u != 0;
        break;
      case Reg::StencilFunc:
        state.zStencil.stencilFunc =
            static_cast<CompareFunc>(value.u);
        break;
      case Reg::StencilRef:
        state.zStencil.stencilRef = static_cast<u8>(value.u);
        break;
      case Reg::StencilCompareMask:
        state.zStencil.stencilCompareMask = static_cast<u8>(value.u);
        break;
      case Reg::StencilWriteMask:
        state.zStencil.stencilWriteMask = static_cast<u8>(value.u);
        break;
      case Reg::StencilOpFail:
        state.zStencil.stencilFail = static_cast<StencilOp>(value.u);
        break;
      case Reg::StencilOpZFail:
        state.zStencil.depthFail = static_cast<StencilOp>(value.u);
        break;
      case Reg::StencilOpZPass:
        state.zStencil.depthPass = static_cast<StencilOp>(value.u);
        break;

      case Reg::StencilTwoSideEnable:
        state.zStencil.twoSided = value.u != 0;
        break;
      case Reg::StencilBackFunc:
        state.zStencil.backFunc = static_cast<CompareFunc>(value.u);
        break;
      case Reg::StencilBackRef:
        state.zStencil.backRef = static_cast<u8>(value.u);
        break;
      case Reg::StencilBackCompareMask:
        state.zStencil.backCompareMask = static_cast<u8>(value.u);
        break;
      case Reg::StencilBackWriteMask:
        state.zStencil.backWriteMask = static_cast<u8>(value.u);
        break;
      case Reg::StencilBackOpFail:
        state.zStencil.backFail = static_cast<StencilOp>(value.u);
        break;
      case Reg::StencilBackOpZFail:
        state.zStencil.backDepthFail =
            static_cast<StencilOp>(value.u);
        break;
      case Reg::StencilBackOpZPass:
        state.zStencil.backDepthPass =
            static_cast<StencilOp>(value.u);
        break;

      case Reg::BlendEnable:
        state.blend.enabled = value.u != 0;
        break;
      case Reg::BlendEquation_:
        state.blend.equation = static_cast<BlendEquation>(value.u);
        break;
      case Reg::BlendSrcFactor:
        state.blend.srcFactor = static_cast<BlendFactor>(value.u);
        break;
      case Reg::BlendDstFactor:
        state.blend.dstFactor = static_cast<BlendFactor>(value.u);
        break;
      case Reg::BlendConstantColor:
        state.blend.constantColor = value.v;
        break;
      case Reg::ColorWriteMask:
        state.blend.colorMask = static_cast<u8>(value.u);
        break;

      case Reg::ClearColor:
        state.clearColor = value.v;
        break;
      case Reg::ClearDepth:
        state.clearDepth = value.f;
        break;
      case Reg::ClearStencil:
        state.clearStencil = static_cast<u8>(value.u);
        break;

      case Reg::StreamEnable:
        state.streams.at(index).enabled = value.u != 0;
        break;
      case Reg::StreamAddress:
        state.streams.at(index).address = value.u;
        break;
      case Reg::StreamStride:
        state.streams.at(index).stride = value.u;
        break;
      case Reg::StreamFormat_:
        state.streams.at(index).format =
            static_cast<StreamFormat>(value.u);
        break;
      case Reg::IndexEnable:
        state.indexStream.enabled = value.u != 0;
        break;
      case Reg::IndexAddress:
        state.indexStream.address = value.u;
        break;
      case Reg::IndexWide:
        state.indexStream.wide = value.u != 0;
        break;

      case Reg::VertexConstant:
        state.vertexConstants.at(index) = value.v;
        break;
      case Reg::FragmentConstant:
        state.fragmentConstants.at(index) = value.v;
        break;

      case Reg::TexEnable:
        state.textureEnabled.at(index) = value.u != 0;
        break;
      case Reg::TexTarget_:
        state.textures.at(index).target =
            static_cast<emu::TexTarget>(value.u);
        break;
      case Reg::TexFormat_:
        state.textures.at(index).format =
            static_cast<emu::TexFormat>(value.u);
        break;
      case Reg::TexWrapS:
        state.textures.at(index).wrapS =
            static_cast<emu::WrapMode>(value.u);
        break;
      case Reg::TexWrapT:
        state.textures.at(index).wrapT =
            static_cast<emu::WrapMode>(value.u);
        break;
      case Reg::TexMinFilter:
        state.textures.at(index).minFilter =
            static_cast<emu::MinFilter>(value.u);
        break;
      case Reg::TexMagLinear:
        state.textures.at(index).magLinear = value.u != 0;
        break;
      case Reg::TexMaxAniso:
        state.textures.at(index).maxAnisotropy = value.u;
        break;
      case Reg::TexLevels:
        state.textures.at(index).levels = value.u;
        break;
      case Reg::TexMipAddress: {
        const u32 unit = index / emu::maxMipLevels;
        const u32 level = index % emu::maxMipLevels;
        // Cube faces address the texture unit through aliases:
        // effective unit = face * maxTextureUnits + unit (see
        // Driver::emitTextureDescriptor).
        state.textures.at(unit % maxTextureUnits)
            .mips[unit / maxTextureUnits][level].address = value.u;
        break;
      }
      case Reg::TexMipWidth: {
        const u32 unit = index / emu::maxMipLevels;
        const u32 level = index % emu::maxMipLevels;
        state.textures.at(unit % maxTextureUnits)
            .mips[unit / maxTextureUnits][level].width = value.u;
        break;
      }
      case Reg::TexMipHeight: {
        const u32 unit = index / emu::maxMipLevels;
        const u32 level = index % emu::maxMipLevels;
        state.textures.at(unit % maxTextureUnits)
            .mips[unit / maxTextureUnits][level].height = value.u;
        break;
      }

      case Reg::HzEnable:
        state.hzEnabled = value.u != 0;
        break;
      case Reg::ZCompressionEnable:
        state.zCompressionEnabled = value.u != 0;
        break;
      case Reg::EarlyZAllowed:
        state.earlyZAllowed = value.u != 0;
        break;

      default:
        panic("applyRegister: unknown register id ",
              static_cast<u32>(reg));
    }
}

} // namespace attila::gpu

/**
 * @file
 * The ATTILA GPU register file: every piece of render state the
 * driver programs through Command Processor register writes.
 *
 * RenderState is the decoded register file.  Each Draw command
 * snapshots the current state, which is how the pipeline keeps two
 * batches in flight (geometry + fragment phase) without register
 * hazards: every in-flight batch carries an immutable snapshot.
 */

#ifndef ATTILA_GPU_REGS_HH
#define ATTILA_GPU_REGS_HH

#include <array>
#include <memory>

#include "emu/fragment_op_emulator.hh"
#include "emu/rasterizer_emulator.hh"
#include "emu/shader_emulator.hh"
#include "emu/texture_emulator.hh"
#include "emu/vector.hh"

namespace attila::gpu
{

/** Maximum vertex attribute streams. */
constexpr u32 maxVertexStreams = 16;
/** Maximum texture units visible to fragment programs. */
constexpr u32 maxTextureUnits = 16;

/** Vertex attribute source formats in GPU memory. */
enum class StreamFormat : u8
{
    Float1, Float2, Float3, Float4, ///< 32-bit floats.
    UByte4N,                        ///< 4 normalized bytes.
};

/** Bytes per element of a stream format. */
inline u32
streamFormatBytes(StreamFormat f)
{
    switch (f) {
      case StreamFormat::Float1: return 4;
      case StreamFormat::Float2: return 8;
      case StreamFormat::Float3: return 12;
      case StreamFormat::Float4: return 16;
      case StreamFormat::UByte4N: return 4;
    }
    return 16;
}

/** One vertex attribute stream descriptor. */
struct VertexStream
{
    bool enabled = false;
    u32 address = 0;
    u32 stride = 0;
    StreamFormat format = StreamFormat::Float4;
};

/** Index buffer descriptor. */
struct IndexStream
{
    bool enabled = false; ///< Disabled = sequential indices.
    u32 address = 0;
    bool wide = false;    ///< false = 16-bit, true = 32-bit indices.
};

/** OpenGL-style primitive topologies (the five ATTILA supports). */
enum class Primitive : u8
{
    Triangles, TriangleStrip, TriangleFan, Quads, QuadStrip,
};

/** Face culling configuration. */
enum class CullMode : u8 { None, Front, Back, FrontAndBack };

/** Scissor rectangle. */
struct ScissorState
{
    bool enabled = false;
    s32 x = 0, y = 0;
    u32 width = 0, height = 0;
};

/** The complete decoded register file. */
struct RenderState
{
    // --- Surfaces -------------------------------------------------
    u32 width = 0;            ///< Render target width in pixels.
    u32 height = 0;           ///< Render target height in pixels.
    u32 colorBufferAddress = 0;
    u32 zStencilBufferAddress = 0;

    // --- Geometry -------------------------------------------------
    emu::Viewport viewport;
    CullMode cull = CullMode::None;
    bool frontFaceCcw = true; ///< glFrontFace(GL_CCW).

    // --- Per fragment ---------------------------------------------
    ScissorState scissor;
    emu::ZStencilState zStencil;
    emu::BlendState blend;

    // --- Clear values ---------------------------------------------
    emu::Vec4 clearColor;
    f32 clearDepth = 1.0f;
    u8 clearStencil = 0;

    // --- Shaders --------------------------------------------------
    emu::ShaderProgramPtr vertexProgram;
    emu::ShaderProgramPtr fragmentProgram;
    emu::ConstantBank vertexConstants{};
    emu::ConstantBank fragmentConstants{};

    // --- Streams --------------------------------------------------
    std::array<VertexStream, maxVertexStreams> streams{};
    IndexStream indexStream;

    // --- Textures -------------------------------------------------
    std::array<emu::TextureDescriptor, maxTextureUnits> textures{};
    std::array<bool, maxTextureUnits> textureEnabled{};

    // --- Pipeline feature switches (ablations) ----------------------
    bool hzEnabled = true;         ///< Hierarchical Z test.
    bool zCompressionEnabled = true;
    bool earlyZAllowed = true;     ///< Driver's early-Z decision.

    /**
     * Early Z is legal when the fragment program does not write
     * depth or kill fragments (alpha test is folded into the
     * program as KIL, paper §2.2).
     */
    bool
    earlyZ() const
    {
        if (!earlyZAllowed || !fragmentProgram)
            return earlyZAllowed;
        const bool writesDepth =
            fragmentProgram->outputsWritten &
            (1u << emu::regix::foutDepth);
        bool kills = false;
        for (const auto& ins : fragmentProgram->code) {
            if (ins.op == emu::Opcode::KIL) {
                kills = true;
                break;
            }
        }
        return !writesDepth && !kills;
    }

    /**
     * The Hierarchical Z test is only sound for non-increasing depth
     * functions and when a culled fragment cannot have stencil side
     * effects.
     */
    bool
    hzUsable() const
    {
        if (!hzEnabled || !zStencil.depthTest)
            return false;
        const bool funcOk =
            zStencil.depthFunc == emu::CompareFunc::Less ||
            zStencil.depthFunc == emu::CompareFunc::LessEqual;
        bool stencilSafe =
            !zStencil.stencilTest ||
            (zStencil.depthFail == emu::StencilOp::Keep &&
             zStencil.stencilFail == emu::StencilOp::Keep);
        if (zStencil.stencilTest && zStencil.twoSided &&
            (zStencil.backDepthFail != emu::StencilOp::Keep ||
             zStencil.backFail != emu::StencilOp::Keep)) {
            stencilSafe = false;
        }
        return funcOk && stencilSafe;
    }

    /**
     * True when this batch's depth writes can *raise* stored depth
     * values, which poisons the Hierarchical Z buffer (it must be
     * reset to the far value to stay conservative).
     */
    bool
    raisesDepth() const
    {
        if (!zStencil.depthTest || !zStencil.depthWrite)
            return false;
        switch (zStencil.depthFunc) {
          case emu::CompareFunc::Less:
          case emu::CompareFunc::LessEqual:
          case emu::CompareFunc::Equal:
          case emu::CompareFunc::Never:
            return false;
          default:
            return true;
        }
    }
};

using RenderStatePtr = std::shared_ptr<const RenderState>;

/**
 * Register identifiers for Command Processor writes.  Indexed
 * registers (streams, textures) use the Command's index field.
 */
enum class Reg : u16
{
    // Surfaces.
    FbWidth, FbHeight, ColorBufferAddr, ZStencilBufferAddr,
    // Viewport.
    ViewportX, ViewportY, ViewportWidth, ViewportHeight,
    // Geometry.
    CullMode_, FrontFaceCcw,
    // Scissor.
    ScissorEnable, ScissorX, ScissorY, ScissorWidth, ScissorHeight,
    // Depth.
    DepthTestEnable, DepthFunc, DepthWriteMask,
    // Stencil.
    StencilTestEnable, StencilFunc, StencilRef, StencilCompareMask,
    StencilWriteMask, StencilOpFail, StencilOpZFail, StencilOpZPass,
    // Double-sided stencil (paper §7 extension).
    StencilTwoSideEnable, StencilBackFunc, StencilBackRef,
    StencilBackCompareMask, StencilBackWriteMask, StencilBackOpFail,
    StencilBackOpZFail, StencilBackOpZPass,
    // Blend.
    BlendEnable, BlendEquation_, BlendSrcFactor, BlendDstFactor,
    BlendConstantColor, ColorWriteMask,
    // Clear values.
    ClearColor, ClearDepth, ClearStencil,
    // Vertex streams (indexed).
    StreamEnable, StreamAddress, StreamStride, StreamFormat_,
    IndexEnable, IndexAddress, IndexWide,
    // Shader constants (indexed).
    VertexConstant, FragmentConstant,
    // Textures (indexed by unit; mip levels via TexMipAddress).
    TexEnable, TexTarget_, TexFormat_, TexWrapS, TexWrapT,
    TexMinFilter, TexMagLinear, TexMaxAniso, TexLevels,
    TexMipAddress, TexMipWidth, TexMipHeight,
    // Feature switches.
    HzEnable, ZCompressionEnable, EarlyZAllowed,
};

/** A register write payload: word, float or vector views. */
struct RegValue
{
    u32 u = 0;
    f32 f = 0.0f;
    emu::Vec4 v;

    RegValue() = default;
    explicit RegValue(u32 word) : u(word) {}
    explicit RegValue(f32 value) : f(value) {}
    explicit RegValue(const emu::Vec4& vec) : v(vec) {}
    RegValue(u32 word, f32 value) : u(word), f(value) {}
};

/**
 * Decode one register write into @p state.  Shared by the Command
 * Processor (timing path) and the reference renderer, so both decode
 * identically.  For TexMip* registers @p index packs
 * unit * maxMipLevels + level.
 */
void applyRegister(RenderState& state, Reg reg, u32 index,
                   const RegValue& value);

} // namespace attila::gpu

#endif // ATTILA_GPU_REGS_HH

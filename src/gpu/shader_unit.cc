#include "gpu/shader_unit.hh"

namespace attila::gpu
{

using emu::StepOutcome;

ShaderUnit::ShaderUnit(sim::SignalBinder& binder,
                       sim::StatisticManager& stats,
                       const GpuConfig& config, u32 unit,
                       bool vertex_only)
    : Box(binder, stats, "ShaderUnit" + std::to_string(unit)),
      _config(config),
      _unit(unit),
      _vertexOnly(vertex_only),
      _fastPath(config.emuFastPath),
      _statInstructions(stat("instructions")),
      _statThreads(stat("threads")),
      _statTexRequests(stat("textureRequests")),
      _statBusy(stat("busyCycles")),
      _statStallTex(stat("textureStallCycles"))
{
    const std::string id = std::to_string(unit);
    _in.init(*this, binder, "ffifo.shader" + id, 1, 1, 4);
    _out.init(*this, binder, "shader" + id + ".ffifo", 1, 1, 4);
    if (!vertex_only) {
        for (u32 t = 0; t < config.numTextureUnits; ++t) {
            auto req = std::make_unique<LinkTx>();
            req->init(*this, binder,
                      "shader" + id + ".tu" + std::to_string(t) +
                          ".req",
                      1, 1, 2);
            _texReq.push_back(std::move(req));
            auto resp = std::make_unique<LinkRx<TexRequest>>();
            resp->init(*this, binder,
                       "tu" + std::to_string(t) + ".shader" + id +
                           ".resp",
                       1, 1, 2);
            _texResp.push_back(std::move(resp));
        }
        _tuNext = unit % std::max(1u, config.numTextureUnits);
    }
}

void
ShaderUnit::acceptWork(Cycle cycle)
{
    while (!_in.empty()) {
        ShaderWorkObjPtr work = _in.pop(cycle);
        u32 slot;
        if (!_freeThreads.empty()) {
            slot = _freeThreads.back();
            _freeThreads.pop_back();
        } else {
            slot = static_cast<u32>(_threadPool.size());
            _threadPool.emplace_back();
        }
        Thread& thread = _threadPool[slot];
        thread.order = _orderCounter++;
        thread.work = std::move(work);
        const RenderState& state = *thread.work->state;
        if (thread.work->target == emu::ShaderTarget::Vertex) {
            thread.program = state.vertexProgram;
            thread.constants = &state.vertexConstants;
        } else {
            thread.program = state.fragmentProgram;
            thread.constants = &state.fragmentConstants;
        }
        if (!thread.program)
            panic("ShaderUnit", _unit, ": work without a program");
        thread.decoded = nullptr;
        if (_fastPath)
            thread.decoded = &_decodeCache.get(thread.program);
        for (u32 l = 0; l < 4; ++l) {
            thread.lanes[l].reset();
            thread.lanes[l].in = thread.work->in[l];
            thread.laneDone[l] = !thread.work->active[l];
        }
        thread.waitingTexture = false;
        thread.finished = false;
        thread.tempReady.fill(0);
        thread.pendingTex.reset();
        thread.epoch = 1;
        thread.depsEpoch = 0;
        _activeSlots.push_back(slot);
        _statThreads.inc();
        if constexpr (sim::kEventTraceCompiled) {
            if (_evtTrace) [[unlikely]] {
                _evtTrace->emit(sim::EventKind::ThreadBegin, cycle,
                                _evtShaderId, slot,
                                thread.work->id(),
                                sim::traceParentOf(*thread.work));
            }
        }
    }
}

void
ShaderUnit::handleTexResponses(Cycle cycle)
{
    for (auto& rx : _texResp) {
        while (!rx->empty()) {
            TexRequestPtr resp = rx->pop(cycle);
            bool found = false;
            for (const u32 slot : _activeSlots) {
                Thread& thread = _threadPool[slot];
                if (thread.work->entryId != resp->threadTag ||
                    !thread.waitingTexture) {
                    continue;
                }
                u32 pc = 0;
                for (u32 l = 0; l < 4; ++l) {
                    if (!thread.laneDone[l]) {
                        pc = thread.lanes[l].pc;
                        break;
                    }
                }
                s32 dstTemp = -1;
                if (thread.decoded) {
                    dstTemp = thread.decoded->code[pc].dstTempIndex;
                    _emulator.completeTextureQuad(
                        *thread.decoded, thread.lanes,
                        thread.laneDone, resp->texels);
                } else {
                    const emu::Instruction& ins =
                        thread.program->code[pc];
                    if (ins.dst.bank == emu::Bank::Temp)
                        dstTemp = ins.dst.index;
                    for (u32 l = 0; l < 4; ++l) {
                        if (thread.laneDone[l])
                            continue;
                        _emulator.completeTexture(*thread.program,
                                                  thread.lanes[l],
                                                  resp->texels[l]);
                    }
                }
                // The texture result register becomes readable
                // shortly after the response arrives.
                if (dstTemp >= 0)
                    thread.tempReady[static_cast<u32>(dstTemp)] =
                        cycle + 1;
                thread.waitingTexture = false;
                ++thread.epoch;
                found = true;
                break;
            }
            if (!found)
                panic("ShaderUnit", _unit,
                      ": texture response with no waiting thread");
        }
    }
}

Cycle
ShaderUnit::computeReadyAt(const Thread& thread) const
{
    // All lanes share the pc; lane 0 is the reference.
    u32 pc = ~0u;
    for (u32 l = 0; l < 4; ++l) {
        if (!thread.laneDone[l]) {
            pc = thread.lanes[l].pc;
            break;
        }
    }
    if (pc == ~0u)
        return 0;
    Cycle readyAt = 0;
    if (thread.decoded) {
        const emu::DecodedIns& d = thread.decoded->code[pc];
        for (u32 i = 0; i < d.numSrc; ++i) {
            const emu::DecodedSrc& src = d.src[i];
            if (!src.fromConstants &&
                src.offset >= emu::decoded::tempBase) {
                readyAt = std::max(
                    readyAt, thread.tempReady[src.offset -
                                              emu::decoded::tempBase]);
            }
        }
        return readyAt;
    }
    const emu::Instruction& ins = thread.program->code[pc];
    const emu::OpcodeInfo& info = emu::opcodeInfo(ins.op);
    for (u32 i = 0; i < info.numSrc; ++i) {
        if (ins.src[i].bank == emu::Bank::Temp) {
            readyAt = std::max(readyAt,
                               thread.tempReady[ins.src[i].index]);
        }
    }
    return readyAt;
}

bool
ShaderUnit::dependenciesReady(const Thread& thread,
                              Cycle cycle) const
{
    // "Ready at cycle c" was: no source temp has tempReady > c,
    // i.e. c >= max(tempReady over sources).  That maximum only
    // moves when the pc, laneDone or scoreboard change — all bump
    // the thread's epoch — so it is computed once per epoch and the
    // per-cycle check collapses to a compare.
    if (thread.depsEpoch != thread.epoch) {
        thread.depsReadyAt = computeReadyAt(thread);
        thread.depsEpoch = thread.epoch;
    }
    return cycle >= thread.depsReadyAt;
}

ShaderUnit::Thread*
ShaderUnit::selectThread(Cycle cycle)
{
    if (_activeSlots.empty())
        return nullptr;

    if (_config.scheduling == ShaderScheduling::InOrderQueue) {
        // Strictly in-order: only the oldest thread may execute.
        // Insertion order is age order, so that is the front.
        Thread* oldest = &_threadPool[_activeSlots.front()];
        if (oldest->waitingTexture) {
            _statStallTex.inc();
            return nullptr;
        }
        if (!dependenciesReady(*oldest, cycle))
            return nullptr;
        return oldest;
    }

    // Thread window: round-robin among ready threads — the first
    // ready thread at position >= rrNext, else the first ready one
    // before it (a circular scan, stopping at the first match).
    const u32 n = static_cast<u32>(_activeSlots.size());
    const u32 start = _rrNext % n;
    Thread* candidate = nullptr;
    bool anyTexWait = false;
    for (u32 k = 0; k < n; ++k) {
        u32 pos = start + k;
        if (pos >= n)
            pos -= n;
        Thread& thread = _threadPool[_activeSlots[pos]];
        if (thread.waitingTexture) {
            anyTexWait = true;
            continue;
        }
        if (thread.finished)
            continue;
        if (!dependenciesReady(thread, cycle))
            continue;
        candidate = &thread;
        break;
    }
    // No candidate means the scan visited every thread, so
    // anyTexWait is complete exactly when it is needed.
    if (!candidate && anyTexWait)
        _statStallTex.inc();
    ++_rrNext;
    return candidate;
}

bool
ShaderUnit::sendResult(Cycle cycle, Thread& thread)
{
    if (!_out.canSend(cycle))
        return false;
    for (u32 l = 0; l < 4; ++l) {
        thread.work->out[l] = thread.lanes[l].out;
        thread.work->killed[l] = thread.lanes[l].killed;
    }
    _out.send(cycle, thread.work);
    return true;
}

void
ShaderUnit::execute(Cycle cycle, Thread& thread)
{
    for (u32 n = 0; n < _config.shaderFetchRate; ++n) {
        if (thread.waitingTexture || thread.finished)
            return;
        if (!dependenciesReady(thread, cycle))
            return;

        // Reference lane for control decisions.
        s32 ref = -1;
        for (u32 l = 0; l < 4; ++l) {
            if (!thread.laneDone[l]) {
                ref = static_cast<s32>(l);
                break;
            }
        }
        if (ref < 0) {
            thread.finished = true;
            return;
        }

        const u32 pc = thread.lanes[ref].pc;

        if (thread.decoded) {
            // Pre-decoded quad-lockstep path: one dispatch per
            // instruction instead of one per live lane.  Stats,
            // latencies and the scoreboard update exactly as below.
            const emu::DecodedIns& d = thread.decoded->code[pc];
            if (d.isTexture) {
                LinkTx& link = *_texReq[_tuNext % _texReq.size()];
                if (!link.canSend(cycle))
                    return; // No TU slot this cycle; retry.
                const auto qs = _emulator.stepQuad(
                    *thread.decoded, *thread.constants, thread.lanes,
                    thread.laneDone);
                if (qs.outcome != StepOutcome::TexRequest)
                    panic("ShaderUnit", _unit,
                          ": expected a texture request");
                auto req = makeTexRequest();
                req->shaderId = _unit;
                req->threadTag = thread.work->entryId;
                req->state = thread.work->state;
                req->setInfo("tex");
                req->copyTrailFrom(*thread.work);
                for (u32 l = 0; l < 4; ++l) {
                    req->active[l] = !thread.laneDone[l];
                    if (!thread.laneDone[l])
                        req->coords[l] = qs.texCoords[l];
                }
                req->textureUnit = qs.texUnit;
                req->target = qs.texTarget;
                req->lodBias = qs.texLodBias;
                req->projected = qs.texProjected;
                link.send(cycle, req);
                _tuNext = (_tuNext + 1) %
                          std::max<std::size_t>(1, _texReq.size());
                thread.waitingTexture = true;
                ++thread.epoch;
                _statTexRequests.inc();
                _statInstructions.inc();
                return;
            }

            const auto qs = _emulator.stepQuad(
                *thread.decoded, *thread.constants, thread.lanes,
                thread.laneDone);
            _statInstructions.inc();
            if (d.dstTempIndex >= 0) {
                thread.tempReady[static_cast<u32>(d.dstTempIndex)] =
                    cycle + qs.latency;
            }
            ++thread.epoch;
            if (qs.outcome == StepOutcome::Done) {
                thread.finished = true;
                return;
            }
            continue;
        }

        const emu::Instruction& ins = thread.program->code[pc];
        const emu::OpcodeInfo& info = emu::opcodeInfo(ins.op);

        if (info.isTexture) {
            // Build a quad texture request.
            LinkTx& link = *_texReq[_tuNext % _texReq.size()];
            if (!link.canSend(cycle))
                return; // No TU slot this cycle; retry.
            auto req = makeTexRequest();
            req->shaderId = _unit;
            req->threadTag = thread.work->entryId;
            req->state = thread.work->state;
            req->setInfo("tex");
            req->copyTrailFrom(*thread.work);
            for (u32 l = 0; l < 4; ++l) {
                req->active[l] = !thread.laneDone[l];
                if (thread.laneDone[l])
                    continue;
                const auto step = _emulator.step(
                    *thread.program, *thread.constants,
                    thread.lanes[l]);
                if (step.outcome != StepOutcome::TexRequest)
                    panic("ShaderUnit", _unit,
                          ": expected a texture request");
                req->textureUnit = step.texUnit;
                req->target = step.texTarget;
                req->coords[l] = step.texCoord;
                req->lodBias = step.texLodBias;
                req->projected = step.texProjected;
            }
            link.send(cycle, req);
            _tuNext = (_tuNext + 1) %
                      std::max<std::size_t>(1, _texReq.size());
            thread.waitingTexture = true;
            ++thread.epoch;
            _statTexRequests.inc();
            _statInstructions.inc();
            return;
        }

        // Regular instruction: step every live lane in lockstep.
        u32 latency = 1;
        bool done = true;
        for (u32 l = 0; l < 4; ++l) {
            if (thread.laneDone[l])
                continue;
            const auto step = _emulator.step(*thread.program,
                                             *thread.constants,
                                             thread.lanes[l]);
            latency = step.latency;
            if (step.outcome == StepOutcome::Done) {
                thread.laneDone[l] = true;
            } else {
                done = false;
            }
        }
        _statInstructions.inc();

        if (info.hasDst && ins.dst.bank == emu::Bank::Temp)
            thread.tempReady[ins.dst.index] = cycle + latency;
        ++thread.epoch;

        if (done) {
            thread.finished = true;
            return;
        }
    }
}

TexRequestPtr
ShaderUnit::makeTexRequest()
{
    // Pooled on the memory fast path (texture requests are the
    // shader units' steady-state allocation); plain otherwise for
    // A/B runs.  Timing is identical either way.
    if (_config.memFastPath)
        return _texPool.acquire();
    return std::make_shared<TexRequest>();
}

void
ShaderUnit::update(Cycle cycle)
{
    _in.clock(cycle);
    _out.clock(cycle);
    for (auto& l : _texReq)
        l->clock(cycle);
    for (auto& l : _texResp)
        l->clock(cycle);

    acceptWork(cycle);
    handleTexResponses(cycle);

    // Retire finished threads (one per cycle).
    for (u32 i = 0; i < _activeSlots.size(); ++i) {
        Thread& thread = _threadPool[_activeSlots[i]];
        if (thread.finished) {
            if (sendResult(cycle, thread)) {
                if constexpr (sim::kEventTraceCompiled) {
                    if (_evtTrace) [[unlikely]] {
                        _evtTrace->emit(
                            sim::EventKind::ThreadEnd, cycle,
                            _evtShaderId, _activeSlots[i],
                            thread.work->id(),
                            sim::traceParentOf(*thread.work));
                    }
                }
                // Release references; the slot itself is recycled.
                thread.work.reset();
                thread.program.reset();
                thread.pendingTex.reset();
                thread.constants = nullptr;
                thread.decoded = nullptr;
                _freeThreads.push_back(_activeSlots[i]);
                _activeSlots.erase(_activeSlots.begin() + i);
            }
            break;
        }
    }

    if (Thread* thread = selectThread(cycle)) {
        _statBusy.inc();
        execute(cycle, *thread);
    }
}

bool
ShaderUnit::empty() const
{
    return _activeSlots.empty() && _in.empty();
}

} // namespace attila::gpu

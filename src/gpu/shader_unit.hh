/**
 * @file
 * ShaderUnit: the multithreaded programmable shader processor (paper
 * §2.3).
 *
 * The unit works on groups of four shader inputs as a single thread:
 * the same instructions are fetched, decoded and executed for the
 * four inputs in parallel (a 512-bit processor).  Instructions
 * execute in order; a per-thread register scoreboard stalls on data
 * dependencies (execution latencies range from 1 to 9 cycles by
 * opcode).  Texture accesses block the thread until the Texture Unit
 * responds; multithreading hides that latency by switching to
 * another ready thread every cycle — except in the in-order
 * (shader input queue) configuration, where only the oldest thread
 * may execute (the Fig 7 experiment).
 */

#ifndef ATTILA_GPU_SHADER_UNIT_HH
#define ATTILA_GPU_SHADER_UNIT_HH

#include <deque>

#include "emu/decoded_program.hh"
#include "emu/shader_emulator.hh"
#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "gpu/txn_pool.hh"
#include "sim/box.hh"

namespace attila::gpu
{

/** One thread of work (4 inputs) sent to a shader unit. */
class ShaderWorkObj : public WorkObject
{
  public:
    u64 entryId = 0; ///< Fragment FIFO window entry.
    emu::ShaderTarget target = emu::ShaderTarget::Vertex;
    std::array<bool, 4> active{};
    std::array<std::array<emu::Vec4, emu::regix::numInputRegs>, 4>
        in{};
    std::array<std::array<emu::Vec4, emu::regix::numOutputRegs>, 4>
        out{};
    std::array<bool, 4> killed{};
};

using ShaderWorkObjPtr = std::shared_ptr<ShaderWorkObj>;

/** The shader processor box. */
class ShaderUnit : public sim::Box
{
  public:
    /**
     * @param unit global shader unit index (signal naming).
     * @param vertex_only dedicated vertex unit (non-unified model).
     */
    ShaderUnit(sim::SignalBinder& binder,
               sim::StatisticManager& stats, const GpuConfig& config,
               u32 unit, bool vertex_only);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no threads and no queued inputs. */
    bool busy() const override { return !empty(); }

    /** Wire thread-slot lifecycle events (shader unit name = box
     * name, matching the .threads statistic). */
    void
    attachEventTrace(sim::EventTrace& trace) override
    {
        _evtTrace = &trace;
        _evtShaderId = trace.registerShader(name());
    }

  private:
    struct Thread
    {
        u64 order = 0; ///< Age (for in-order scheduling).
        ShaderWorkObjPtr work;
        emu::ShaderProgramPtr program;
        /** Pre-decoded form (fast path only).  Stable: the cache
         * entry pins the source program for its own lifetime. */
        const emu::DecodedProgram* decoded = nullptr;
        const emu::ConstantBank* constants = nullptr;
        std::array<emu::ShaderThreadState, 4> lanes;
        std::array<bool, 4> laneDone{};
        bool waitingTexture = false;
        bool finished = false;
        /** Scoreboard: cycle each temp register becomes readable. */
        std::array<Cycle, emu::regix::numTempRegs> tempReady{};
        TexRequestPtr pendingTex; ///< Built but not yet sent.

        /** Host-side change counter: bumped whenever the pc,
         * laneDone or scoreboard changes, so the dependency check
         * below can be memoized per epoch. */
        u64 epoch = 1;
        mutable u64 depsEpoch = 0;
        mutable Cycle depsReadyAt = 0;
    };

    void acceptWork(Cycle cycle);
    void handleTexResponses(Cycle cycle);
    Thread* selectThread(Cycle cycle);
    void execute(Cycle cycle, Thread& thread);
    bool sendResult(Cycle cycle, Thread& thread);
    bool dependenciesReady(const Thread& thread, Cycle cycle) const;
    Cycle computeReadyAt(const Thread& thread) const;
    TexRequestPtr makeTexRequest();

    const GpuConfig& _config;
    const u32 _unit;
    const bool _vertexOnly;

    LinkRx<ShaderWorkObj> _in;
    LinkTx _out;
    std::vector<std::unique_ptr<LinkTx>> _texReq;
    std::vector<std::unique_ptr<LinkRx<TexRequest>>> _texResp;

    emu::ShaderEmulator _emulator;
    emu::DecodedProgramCache _decodeCache;
    const bool _fastPath;
    /** Thread storage: a never-shrinking deque of slots recycled
     * through a free list (a Thread is ~4.5 KB of register state —
     * per-thread heap churn and node hops are host-side waste).
     * `_activeSlots` lists the live slots in insertion order, which
     * is exactly the old std::list iteration order the round-robin
     * scheduling is defined over. */
    std::deque<Thread> _threadPool;
    std::vector<u32> _freeThreads;
    std::vector<u32> _activeSlots;
    sim::ObjectPool<TexRequest> _texPool;
    u64 _orderCounter = 0;
    u32 _rrNext = 0;
    u32 _tuNext = 0;

    sim::Statistic& _statInstructions;
    sim::Statistic& _statThreads;
    sim::Statistic& _statTexRequests;
    sim::Statistic& _statBusy;
    sim::Statistic& _statStallTex;

    sim::EventTrace* _evtTrace = nullptr;
    u16 _evtShaderId = 0;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_SHADER_UNIT_HH

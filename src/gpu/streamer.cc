#include "gpu/streamer.hh"

#include <algorithm>
#include <cstring>

namespace attila::gpu
{

namespace
{

constexpr u32 indexChunkBytes = 64;

/** Memory transaction tags: indices vs attributes. */
constexpr u64 tagIndexBase = 1ull << 40;

} // anonymous namespace

Streamer::Streamer(sim::SignalBinder& binder,
                   sim::StatisticManager& stats,
                   const GpuConfig& config)
    : Box(binder, stats, "Streamer"),
      _config(config),
      _statVertices(stat("vertices")),
      _statCacheHits(stat("vertexCacheHits")),
      _statCacheMisses(stat("vertexCacheMisses")),
      _statBusy(stat("busyCycles"))
{
    _drawIn.init(*this, binder, "cp.draw", 1, 1, 4);
    _toShading.init(*this, binder, "streamer.shading", 1, 1, 16);
    _fromShading.init(*this, binder, "shading.streamer", 1, 1, 16);
    _toAssembly.init(*this, binder, "streamer.assembly", 1, 1,
                     config.primitiveAssemblyQueue);
    _txns.setPooled(config.memFastPath);
    _mem.init(*this, binder, "mc.streamer",
              config.memoryRequestQueue);
}

const Streamer::CacheEntry*
Streamer::cacheLookup(u32 index) const
{
    for (const CacheEntry& e : _cache) {
        if (e.index == index)
            return &e;
    }
    return nullptr;
}

void
Streamer::cacheInsert(
    u32 index,
    const std::array<emu::Vec4, emu::regix::numOutputRegs>& out)
{
    if (_config.vertexCacheEntries == 0)
        return; // Cache disabled (ablation).
    for (CacheEntry& e : _cache) {
        if (e.index == index) {
            e.out = out;
            return;
        }
    }
    if (_cache.size() >= _config.vertexCacheEntries)
        _cache.pop_front();
    _cache.push_back({index, out});
}

emu::Vec4
Streamer::convertAttribute(const u8* bytes, StreamFormat fmt,
                           u32 stream) const
{
    (void)stream;
    emu::Vec4 v(0.0f, 0.0f, 0.0f, 1.0f);
    switch (fmt) {
      case StreamFormat::Float4:
        std::memcpy(&v.w, bytes + 12, 4);
        [[fallthrough]];
      case StreamFormat::Float3:
        std::memcpy(&v.z, bytes + 8, 4);
        [[fallthrough]];
      case StreamFormat::Float2:
        std::memcpy(&v.y, bytes + 4, 4);
        [[fallthrough]];
      case StreamFormat::Float1:
        std::memcpy(&v.x, bytes, 4);
        break;
      case StreamFormat::UByte4N:
        v = {bytes[0] / 255.0f, bytes[1] / 255.0f, bytes[2] / 255.0f,
             bytes[3] / 255.0f};
        break;
    }
    return v;
}

void
Streamer::startBatch(Cycle cycle)
{
    if (_active || _drawIn.empty())
        return;
    _batch = _drawIn.pop(cycle);
    _active = true;
    _dispatched = 0;
    _committed = 0;
    _endSent = false;
    _indices.clear();
    _indexChunks.clear();
    _indexChunksRequested = 0;
    // The post-shading cache is only valid within one batch: the
    // next batch may bind a different vertex program or streams.
    _cache.clear();

    const RenderState& state = *_batch->state;
    u32 enabledStreams = 0;
    for (const VertexStream& vs : state.streams)
        enabledStreams += vs.enabled ? 1 : 0;
    if (enabledStreams > 8)
        fatal("Streamer: at most 8 enabled vertex streams are"
              " supported (got ", enabledStreams, ")");
    if (state.indexStream.enabled) {
        const u32 indexBytes = state.indexStream.wide ? 4 : 2;
        const u32 total = _batch->params.count * indexBytes;
        _indexChunksNeeded =
            (total + indexChunkBytes - 1) / indexChunkBytes;
    } else {
        _indexChunksNeeded = 0;
        _indices.reserve(_batch->params.count);
        for (u32 i = 0; i < _batch->params.count; ++i)
            _indices.push_back(_batch->params.first + i);
    }

    // The BatchStart marker leads the vertex stream so every
    // downstream box snapshots the state in order.
    // (Sent through the assembly link during commit().)
}

void
Streamer::fetchIndices(Cycle cycle)
{
    if (!_active || !_batch->state->indexStream.enabled)
        return;
    while (_indexChunksRequested < _indexChunksNeeded &&
           _mem.canRequest(cycle)) {
        const RenderState& state = *_batch->state;
        const u32 indexBytes = state.indexStream.wide ? 4 : 2;
        const u32 total = _batch->params.count * indexBytes;
        const u32 offset = _indexChunksRequested * indexChunkBytes;
        auto txn = _txns.acquire();
        txn->isRead = true;
        txn->address = state.indexStream.address + offset;
        txn->size = std::min(indexChunkBytes, total - offset);
        txn->client = MemClient::Streamer;
        txn->tag = tagIndexBase + _indexChunksRequested;
        _mem.request(cycle, txn);
        ++_indexChunksRequested;
    }
}

void
Streamer::handleMemory(Cycle cycle)
{
    while (_mem.hasResponse()) {
        MemTransactionPtr txn = _mem.popResponse(cycle);
        if (txn->tag >= tagIndexBase) {
            _indexChunks[static_cast<u32>(txn->tag - tagIndexBase)] =
                txn->data;
            // Parse any newly contiguous chunks.
            const RenderState& state = *_batch->state;
            const u32 indexBytes = state.indexStream.wide ? 4 : 2;
            const u32 perChunk = indexChunkBytes / indexBytes;
            while (true) {
                const u32 chunk =
                    static_cast<u32>(_indices.size()) / perChunk;
                auto it = _indexChunks.find(chunk);
                if (it == _indexChunks.end())
                    break;
                const std::vector<u8>& bytes = it->second;
                for (u32 off = 0; off + indexBytes <= bytes.size();
                     off += indexBytes) {
                    if (_indices.size() >= _batch->params.count)
                        break;
                    u32 idx = 0;
                    std::memcpy(&idx, bytes.data() + off,
                                indexBytes);
                    _indices.push_back(idx);
                }
                _indexChunks.erase(it);
            }
        } else {
            // Attribute response: tag = sequence * 16 + stream.
            const u32 seq = static_cast<u32>(txn->tag / 16);
            const u32 stream = static_cast<u32>(txn->tag % 16);
            auto it = _fetches.find(seq);
            if (it == _fetches.end())
                panic("Streamer: attribute response for unknown"
                      " vertex");
            PendingFetch& fetch = it->second;
            const RenderState& state = *_batch->state;
            fetch.in[stream] = convertAttribute(
                txn->data.data(), state.streams[stream].format,
                stream);
            if (--fetch.outstanding == 0) {
                // Vertex ready for shading.
                auto v = std::make_shared<VertexObj>();
                v->batchId = _batch->batchId;
                v->state = _batch->state;
                v->index = fetch.index;
                v->sequence = fetch.sequence;
                v->in = fetch.in;
                v->setInfo("vtx");
                v->copyTrailFrom(*_batch);
                _readyForShading.push_back(std::move(v));
                _fetches.erase(it);
            }
        }
    }

    // Push ready vertices to the shading crossbar.
    while (!_readyForShading.empty() && _toShading.canSend(cycle)) {
        _toShading.send(cycle, _readyForShading.front());
        _readyForShading.pop_front();
    }
}

void
Streamer::dispatchVertices(Cycle cycle)
{
    if (!_active)
        return;
    // One index per cycle (Table 1).
    if (_dispatched >= _batch->params.count)
        return;
    if (_dispatched >= _indices.size())
        return; // Index data not fetched yet.
    if (_rob.size() >= _config.streamerQueue)
        return;
    if (_fetches.size() >= _config.vertexRequestQueue)
        return;

    const RenderState& state = *_batch->state;
    const u32 index = _indices[_dispatched];
    const u32 seq = _dispatched;

    RobEntry rob;
    rob.sequence = seq;
    rob.index = index;

    const bool indexed = state.indexStream.enabled;
    const CacheEntry* hit =
        indexed ? cacheLookup(index) : nullptr;
    if (hit) {
        rob.ready = true;
        rob.cacheHit = true;
        rob.out = hit->out;
        _statCacheHits.inc();
        _rob.emplace(seq, rob);
        ++_dispatched;
        return;
    }
    if (indexed)
        _statCacheMisses.inc();

    // All of the vertex's attribute transactions must fit in the
    // memory request queue this cycle; otherwise retry next cycle.
    // (startBatch() already rejected batches with more than 8
    // enabled streams, the request signal's bandwidth.)
    std::vector<u32> active;
    for (u32 s = 0; s < maxVertexStreams; ++s) {
        if (state.streams[s].enabled)
            active.push_back(s);
    }
    if (_mem.requestCredits() < active.size())
        return;

    PendingFetch fetch;
    fetch.sequence = seq;
    fetch.index = index;

    for (u32 s : active) {
        const VertexStream& vs = state.streams[s];
        auto txn = _txns.acquire();
        txn->isRead = true;
        txn->address = vs.address + index * vs.stride;
        txn->size = streamFormatBytes(vs.format);
        txn->client = MemClient::Streamer;
        txn->tag = static_cast<u64>(seq) * 16 + s;
        if (!_mem.canRequest(cycle))
            panic("Streamer: memory request queue exhausted"
                  " mid-vertex");
        _mem.request(cycle, txn);
        ++fetch.outstanding;
    }

    if (fetch.outstanding == 0) {
        // No enabled streams: shade with default inputs.
        auto v = std::make_shared<VertexObj>();
        v->batchId = _batch->batchId;
        v->state = _batch->state;
        v->index = index;
        v->sequence = seq;
        v->setInfo("vtx");
        v->copyTrailFrom(*_batch);
        _readyForShading.push_back(std::move(v));
    } else {
        _fetches.emplace(seq, fetch);
    }
    _rob.emplace(seq, rob);
    ++_dispatched;
    _statVertices.inc();
}

void
Streamer::handleShaded(Cycle cycle)
{
    while (!_fromShading.empty()) {
        VertexObjPtr v = _fromShading.pop(cycle);
        auto it = _rob.find(v->sequence);
        if (it == _rob.end())
            panic("Streamer: shaded vertex for unknown sequence ",
                  v->sequence);
        it->second.ready = true;
        it->second.out = v->out;
        if (_batch->state->indexStream.enabled)
            cacheInsert(it->second.index, v->out);
    }
}

void
Streamer::commit(Cycle cycle)
{
    if (!_active)
        return;

    // Send the BatchStart marker before the first vertex.
    if (_committed == 0 && !_startSent) {
        if (!_toAssembly.canSend(cycle))
            return;
        auto marker = std::make_shared<VertexObj>();
        marker->marker = MarkerKind::BatchStart;
        marker->batchId = _batch->batchId;
        marker->state = _batch->state;
        marker->primitive = _batch->params.primitive;
        marker->setInfo("batch.start");
        _toAssembly.send(cycle, marker);
        _startSent = true;
    }

    // One vertex per cycle to Primitive Assembly.
    auto it = _rob.find(_committed);
    if (it != _rob.end() && it->second.ready &&
        _toAssembly.canSend(cycle)) {
        auto v = std::make_shared<VertexObj>();
        v->batchId = _batch->batchId;
        v->state = _batch->state;
        v->index = it->second.index;
        v->sequence = it->second.sequence;
        v->out = it->second.out;
        v->fromVertexCache = it->second.cacheHit;
        v->setInfo("vtx.shaded");
        _toAssembly.send(cycle, v);
        _rob.erase(it);
        ++_committed;
        _statBusy.inc();
    }

    // Close the batch.
    if (_committed == _batch->params.count && !_endSent &&
        _toAssembly.canSend(cycle)) {
        auto marker = std::make_shared<VertexObj>();
        marker->marker = MarkerKind::BatchEnd;
        marker->batchId = _batch->batchId;
        marker->state = _batch->state;
        marker->setInfo("batch.end");
        _toAssembly.send(cycle, marker);
        _endSent = true;
        _active = false;
        _startSent = false;
    }
}

void
Streamer::update(Cycle cycle)
{
    _drawIn.clock(cycle);
    _toShading.clock(cycle);
    _fromShading.clock(cycle);
    _toAssembly.clock(cycle);
    _mem.clock(cycle);

    startBatch(cycle);
    fetchIndices(cycle);
    handleMemory(cycle);
    dispatchVertices(cycle);
    handleShaded(cycle);
    commit(cycle);
}

bool
Streamer::empty() const
{
    return !_active && _drawIn.empty() && _rob.empty() &&
           _fetches.empty() && _readyForShading.empty();
}

} // namespace attila::gpu

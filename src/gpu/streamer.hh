/**
 * @file
 * Streamer: requests vertex input data from the Memory Controller,
 * converts it to the internal format (4-component 32-bit float
 * vectors), issues vertices for shading and commits shaded vertices
 * in order to Primitive Assembly (paper §2.2).
 *
 * A post-shading vertex cache keyed by vertex index lets indexed
 * batches reuse shading results for vertices shared by adjacent
 * triangles.
 */

#ifndef ATTILA_GPU_STREAMER_HH
#define ATTILA_GPU_STREAMER_HH

#include <deque>
#include <list>
#include <map>
#include <vector>

#include "gpu/command_processor.hh"
#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "gpu/txn_pool.hh"
#include "gpu/memory_controller.hh"
#include "sim/box.hh"

namespace attila::gpu
{

/** The Streamer box (loader + commit halves). */
class Streamer : public sim::Box
{
  public:
    Streamer(sim::SignalBinder& binder, sim::StatisticManager& stats,
             const GpuConfig& config);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet. */
    bool busy() const override { return !empty(); }

  private:
    /** Reorder buffer entry: one vertex awaiting commit. */
    struct RobEntry
    {
        u32 sequence = 0;
        u32 index = 0;
        bool ready = false;
        bool cacheHit = false;
        std::array<emu::Vec4, emu::regix::numOutputRegs> out{};
    };

    /** A vertex whose attributes are being fetched. */
    struct PendingFetch
    {
        u32 sequence = 0;
        u32 index = 0;
        u32 outstanding = 0; ///< Attribute transactions in flight.
        std::array<emu::Vec4, emu::regix::numInputRegs> in{};
    };

    /** Post-shading vertex cache entry. */
    struct CacheEntry
    {
        u32 index = 0;
        std::array<emu::Vec4, emu::regix::numOutputRegs> out;
    };

    void startBatch(Cycle cycle);
    void fetchIndices(Cycle cycle);
    void dispatchVertices(Cycle cycle);
    void handleMemory(Cycle cycle);
    void handleShaded(Cycle cycle);
    void commit(Cycle cycle);
    emu::Vec4 convertAttribute(const u8* bytes, StreamFormat fmt,
                               u32 stream) const;
    const CacheEntry* cacheLookup(u32 index) const;
    void cacheInsert(u32 index,
                     const std::array<emu::Vec4,
                                      emu::regix::numOutputRegs>& out);

    const GpuConfig& _config;

    LinkRx<DrawCmdObj> _drawIn;
    LinkTx _toShading;   ///< Vertex inputs to the Fragment FIFO.
    LinkRx<VertexObj> _fromShading;
    LinkTx _toAssembly;
    MemPort _mem;
    TxnAllocator _txns;

    // Current batch.
    bool _active = false;
    std::shared_ptr<DrawCmdObj> _batch;
    u32 _dispatched = 0; ///< Vertices dispatched so far.
    u32 _committed = 0;
    bool _endSent = false;

    // Index data.
    std::vector<u32> _indices; ///< Parsed indices (prefix).
    u32 _indexChunksRequested = 0;
    u32 _indexChunksNeeded = 0;
    std::map<u32, std::vector<u8>> _indexChunks;

    // In-flight attribute fetches, keyed by sequence.
    std::map<u32, PendingFetch> _fetches;

    // Vertices with all attributes loaded, awaiting a shading slot.
    std::deque<VertexObjPtr> _readyForShading;
    bool _startSent = false;

    // Reorder buffer, keyed by sequence.
    std::map<u32, RobEntry> _rob;

    // Post-shading vertex cache (FIFO replacement).
    std::list<CacheEntry> _cache;

    sim::Statistic& _statVertices;
    sim::Statistic& _statCacheHits;
    sim::Statistic& _statCacheMisses;
    sim::Statistic& _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_STREAMER_HH

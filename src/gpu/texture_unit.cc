#include "gpu/texture_unit.hh"

#include <algorithm>

namespace attila::gpu
{

using emu::TextureEmulator;

TextureUnit::TextureUnit(sim::SignalBinder& binder,
                         sim::StatisticManager& stats,
                         const GpuConfig& config, u32 unit,
                         emu::GpuMemory& memory)
    : Box(binder, stats, "TextureUnit" + std::to_string(unit)),
      _config(config),
      _unit(unit),
      _memory(memory),
      _cache("texcache" + std::to_string(unit),
             FbCache::Config{config.textureCacheKB,
                             config.textureCacheWays,
                             config.textureCacheLine,
                             config.textureCachePorts,
                             config.textureCacheMshr,
                             config.memFastPath},
             stat("cacheHits"), stat("cacheMisses")),
      _statRequests(stat("requests")),
      _statBilinearOps(stat("bilinearOps")),
      _statBusy(stat("busyCycles"))
{
    _statRequests.setImmediate(!config.memFastPath);
    _statBilinearOps.setImmediate(!config.memFastPath);
    _statBusy.setImmediate(!config.memFastPath);
    const std::string id = std::to_string(unit);
    for (u32 s = 0; s < config.numShaders; ++s) {
        auto rx = std::make_unique<LinkRx<TexRequest>>();
        rx->init(*this, binder,
                 "shader" + std::to_string(s) + ".tu" + id + ".req",
                 1, 1, 2);
        _reqIn.push_back(std::move(rx));
        auto tx = std::make_unique<LinkTx>();
        tx->init(*this, binder,
                 "tu" + id + ".shader" + std::to_string(s) + ".resp",
                 1, 1, 2);
        _respOut.push_back(std::move(tx));
    }
    _mem.init(*this, binder, "mc.texcache" + id,
              config.memoryRequestQueue);
}

void
TextureUnit::acceptRequests(Cycle cycle)
{
    const u32 n = static_cast<u32>(_reqIn.size());
    for (u32 k = 0; k < n; ++k) {
        const u32 s = (_rrNext + k) % n;
        LinkRx<TexRequest>& rx = *_reqIn[s];
        if (rx.empty())
            continue;
        if (_queue.size() >= _config.textureRequestQueue)
            break;
        _queue.push_back(rx.pop(cycle));
        _rrNext = (s + 1) % n;
    }
}

void
TextureUnit::planRequest(Active& active)
{
    const TexRequest& req = *active.req;
    const RenderState& state = *req.state;
    const emu::TextureDescriptor& desc =
        state.textures[req.textureUnit];

    // Project coordinates (TXP) before planning.
    std::array<emu::Vec4, 4> coords = req.coords;
    if (req.projected) {
        for (u32 l = 0; l < 4; ++l) {
            const f32 q = coords[l].w != 0.0f ? coords[l].w : 1.0f;
            coords[l] = {coords[l].x / q, coords[l].y / q,
                         coords[l].z / q, 1.0f};
        }
    }

    u32 aniso;
    f32 lod;
    emu::Vec4 majorAxis;
    TextureEmulator::quadFootprint(desc, coords, req.lodBias, aniso,
                                   lod, majorAxis);

    active.bilinearOps = 0;
    if (_config.memFastPath) {
        // Collect into reused scratch, then sort + deduplicate:
        // the same ascending unique order a std::set yields,
        // without its per-node allocations.
        _lineScratch.clear();
        for (u32 l = 0; l < 4; ++l) {
            active.plans[l] = TextureEmulator::planSample(
                desc, coords[l], lod, aniso, majorAxis);
            active.bilinearOps += active.plans[l].bilinearOps;
            for (const emu::TexelRef& ref :
                 active.plans[l].texels) {
                _lineScratch.push_back(
                    ref.address -
                    ref.address % _config.textureCacheLine);
                // Texels may straddle a line boundary (DXT
                // blocks).
                const u32 end = ref.address + ref.bytes - 1;
                _lineScratch.push_back(
                    end - end % _config.textureCacheLine);
            }
        }
        std::sort(_lineScratch.begin(), _lineScratch.end());
        _lineScratch.erase(std::unique(_lineScratch.begin(),
                                       _lineScratch.end()),
                           _lineScratch.end());
        active.lineAddrs.assign(_lineScratch.begin(),
                                _lineScratch.end());
        return;
    }

    std::set<u32> lines;
    for (u32 l = 0; l < 4; ++l) {
        active.plans[l] =
            TextureEmulator::planSample(desc, coords[l], lod, aniso,
                                        majorAxis);
        active.bilinearOps += active.plans[l].bilinearOps;
        for (const emu::TexelRef& ref : active.plans[l].texels) {
            const u32 line =
                ref.address -
                ref.address % _config.textureCacheLine;
            lines.insert(line);
            // Texels may straddle a line boundary (DXT blocks).
            const u32 end = ref.address + ref.bytes - 1;
            lines.insert(end - end % _config.textureCacheLine);
        }
    }
    active.lineAddrs.assign(lines.begin(), lines.end());
}

void
TextureUnit::process(Cycle cycle)
{
    if (!_activeLive) {
        if (_queue.empty())
            return;
        _active.req = _queue.pop_front();
        _active.nextLine = 0;
        _active.filtering = false;
        _active.filterDoneAt = 0;
        _activeLive = true;
        planRequest(_active);
        _statRequests.inc();
    }

    Active& active = _active;
    _statBusy.inc();

    if (!active.filtering) {
        // Touch every needed line; stall on misses.
        while (active.nextLine < active.lineAddrs.size()) {
            const CacheAccess access = _cache.access(
                cycle, active.lineAddrs[active.nextLine], false);
            if (access == CacheAccess::Hit) {
                ++active.nextLine;
                continue;
            }
            return; // Miss or ports exhausted: retry next cycle.
        }
        // All lines resident: sample functionally from GPU memory
        // (the cache holds the same bytes — textures are
        // read-only) and charge the filter throughput.
        const RenderState& state = *active.req->state;
        const emu::TextureDescriptor& desc =
            state.textures[active.req->textureUnit];
        // Fast path: one decoded-block cache shared across the
        // quad's four plans (pure memoization — identical texels).
        emu::TexBlockCache blockCache;
        emu::TexBlockCache* cache =
            _config.emuFastPath ? &blockCache : nullptr;
        for (u32 l = 0; l < 4; ++l) {
            active.req->texels[l] = TextureEmulator::executePlan(
                desc, active.plans[l], _memory, cache);
        }
        _statBilinearOps.inc(active.bilinearOps);
        active.filtering = true;
        active.filterDoneAt = cycle + std::max(1u,
                                               active.bilinearOps);
        return;
    }

    if (cycle >= active.filterDoneAt) {
        _done.push_back(std::move(active.req));
        active.req.reset();
        _activeLive = false;
    }
}

void
TextureUnit::finish(Cycle cycle)
{
    while (!_done.empty()) {
        LinkTx& out = *_respOut[_done.front()->shaderId];
        if (!out.canSend(cycle))
            return;
        out.send(cycle, _done.pop_front());
    }
}

void
TextureUnit::update(Cycle cycle)
{
    for (auto& rx : _reqIn)
        rx->clock(cycle);
    for (auto& tx : _respOut)
        tx->clock(cycle);
    _mem.clock(cycle);

    finish(cycle);
    process(cycle);
    acceptRequests(cycle);
    _cache.clock(cycle, _mem, MemClient::TextureCache);
    _statRequests.commit();
    _statBilinearOps.commit();
    _statBusy.commit();
}

bool
TextureUnit::empty() const
{
    if (_activeLive || !_queue.empty() || !_done.empty())
        return false;
    for (const auto& rx : _reqIn) {
        if (!rx->empty())
            return false;
    }
    return _cache.idle();
}

} // namespace attila::gpu

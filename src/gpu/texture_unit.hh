/**
 * @file
 * TextureUnit: processes texture requests for whole fragment quads
 * (paper §2.2).  A small texture cache exploits the locality of
 * mipmapping and bilinear filtering; the implemented throughput is
 * one bilinear sample per cycle (trilinear every two cycles,
 * anisotropic N per sample count).  Compressed (DXT) textures are
 * fetched in compressed form and decompressed on access, so they
 * consume proportionally less memory bandwidth.
 */

#ifndef ATTILA_GPU_TEXTURE_UNIT_HH
#define ATTILA_GPU_TEXTURE_UNIT_HH

#include <deque>
#include <set>

#include "emu/texture_emulator.hh"
#include "gpu/cache.hh"
#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "sim/box.hh"

namespace attila::gpu
{

/** The Texture Unit box. */
class TextureUnit : public sim::Box
{
  public:
    TextureUnit(sim::SignalBinder& binder,
                sim::StatisticManager& stats, const GpuConfig& config,
                u32 unit, emu::GpuMemory& memory);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet (an active request filtering
     * against its timer counts as held work). */
    bool busy() const override { return !empty(); }

  private:
    /** A request being processed. */
    struct Active
    {
        TexRequestPtr req;
        std::array<emu::SamplePlan, 4> plans;
        std::vector<u32> lineAddrs; ///< Unique cache lines needed.
        u32 nextLine = 0;           ///< Lines confirmed resident.
        u32 bilinearOps = 0;
        Cycle filterDoneAt = 0;
        bool filtering = false;
    };

    void acceptRequests(Cycle cycle);
    void process(Cycle cycle);
    void planRequest(Active& active);
    void finish(Cycle cycle);

    const GpuConfig& _config;
    const u32 _unit;
    emu::GpuMemory& _memory;

    std::vector<std::unique_ptr<LinkRx<TexRequest>>> _reqIn;
    std::vector<std::unique_ptr<LinkTx>> _respOut;
    MemPort _mem;
    FbCache _cache;

    std::deque<TexRequestPtr> _queue;
    std::unique_ptr<Active> _active;
    std::deque<TexRequestPtr> _done; ///< Awaiting response credit.
    u32 _rrNext = 0;

    sim::Statistic& _statRequests;
    sim::Statistic& _statBilinearOps;
    sim::Statistic& _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_TEXTURE_UNIT_HH

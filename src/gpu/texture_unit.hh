/**
 * @file
 * TextureUnit: processes texture requests for whole fragment quads
 * (paper §2.2).  A small texture cache exploits the locality of
 * mipmapping and bilinear filtering; the implemented throughput is
 * one bilinear sample per cycle (trilinear every two cycles,
 * anisotropic N per sample count).  Compressed (DXT) textures are
 * fetched in compressed form and decompressed on access, so they
 * consume proportionally less memory bandwidth.
 */

#ifndef ATTILA_GPU_TEXTURE_UNIT_HH
#define ATTILA_GPU_TEXTURE_UNIT_HH

#include <set>

#include "emu/texture_emulator.hh"
#include "gpu/cache.hh"
#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "sim/box.hh"
#include "sim/ring_queue.hh"

namespace attila::gpu
{

/** The Texture Unit box. */
class TextureUnit : public sim::Box
{
  public:
    TextureUnit(sim::SignalBinder& binder,
                sim::StatisticManager& stats, const GpuConfig& config,
                u32 unit, emu::GpuMemory& memory);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet (an active request filtering
     * against its timer counts as held work). */
    bool busy() const override { return !empty(); }

    /** Wire the texture cache's hit/miss events (cache unit name =
     * box name, matching the cacheHits/cacheMisses statistics). */
    void
    attachEventTrace(sim::EventTrace& trace) override
    {
        _cache.setEventTrace(&trace, trace.registerCache(name()));
    }

  private:
    /** A request being processed. */
    struct Active
    {
        TexRequestPtr req;
        std::array<emu::SamplePlan, 4> plans;
        std::vector<u32> lineAddrs; ///< Unique cache lines needed.
        u32 nextLine = 0;           ///< Lines confirmed resident.
        u32 bilinearOps = 0;
        Cycle filterDoneAt = 0;
        bool filtering = false;
    };

    void acceptRequests(Cycle cycle);
    void process(Cycle cycle);
    void planRequest(Active& active);
    void finish(Cycle cycle);

    const GpuConfig& _config;
    const u32 _unit;
    emu::GpuMemory& _memory;

    std::vector<std::unique_ptr<LinkRx<TexRequest>>> _reqIn;
    std::vector<std::unique_ptr<LinkTx>> _respOut;
    MemPort _mem;
    FbCache _cache;

    sim::RingQueue<TexRequestPtr> _queue;
    /** Storage reused across requests (plans and line lists keep
     * their capacity); _activeLive marks occupancy. */
    Active _active;
    bool _activeLive = false;
    sim::RingQueue<TexRequestPtr> _done; ///< Awaiting resp credit.
    u32 _rrNext = 0;
    /** Reused line-collection scratch (sorted + deduplicated, same
     * order a std::set yields). */
    std::vector<u32> _lineScratch;

    sim::BatchedStat _statRequests;
    sim::BatchedStat _statBilinearOps;
    sim::BatchedStat _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_TEXTURE_UNIT_HH

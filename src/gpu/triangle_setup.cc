#include "gpu/triangle_setup.hh"

#include "emu/rasterizer_emulator.hh"

namespace attila::gpu
{

TriangleSetup::TriangleSetup(sim::SignalBinder& binder,
                             sim::StatisticManager& stats,
                             const GpuConfig& config)
    : Box(binder, stats, "TriangleSetup"),
      _statTriangles(stat("triangles")),
      _statCulled(stat("culled")),
      _statBusy(stat("busyCycles"))
{
    _in.init(*this, binder, "clipper.setup", config.trianglesPerCycle,
             config.clipperLatency, config.setupQueue);
    _out.init(*this, binder, "setup.fgen", config.trianglesPerCycle,
              config.setupLatency, config.fragmentGenQueue);
}

void
TriangleSetup::update(Cycle cycle)
{
    _in.clock(cycle);
    _out.clock(cycle);

    if (_in.empty() || !_out.canSend(cycle))
        return;
    _statBusy.inc();

    TriangleObjPtr tri = _in.pop(cycle);
    if (tri->isMarker()) {
        _out.send(cycle, tri);
        return;
    }
    _statTriangles.inc();

    const RenderState& state = *tri->state;

    // Map GL-style culling to winding flags.  With a CCW front
    // face, culling back faces culls clockwise triangles.
    bool cullCcw = false;
    bool cullCw = false;
    switch (state.cull) {
      case CullMode::None:
        break;
      case CullMode::Front:
        (state.frontFaceCcw ? cullCcw : cullCw) = true;
        break;
      case CullMode::Back:
        (state.frontFaceCcw ? cullCw : cullCcw) = true;
        break;
      case CullMode::FrontAndBack:
        cullCcw = cullCw = true;
        break;
    }

    const u32 pos = emu::regix::vposPosition;
    tri->setup = emu::RasterizerEmulator::setup(
        tri->vertex[0][pos], tri->vertex[1][pos],
        tri->vertex[2][pos], state.viewport, cullCcw, cullCw);

    if (!tri->setup.valid) {
        _statCulled.inc();
        return;
    }
    _out.send(cycle, tri);
}

bool
TriangleSetup::empty() const
{
    return _in.empty();
}

} // namespace attila::gpu

/**
 * @file
 * TriangleSetup: computes the triangle's half-plane edge equations
 * and the depth (z/w) interpolation equation from the homogeneous
 * vertex matrix (paper §2.2), performs face culling, and feeds the
 * coefficients to the Fragment Generator.
 */

#ifndef ATTILA_GPU_TRIANGLE_SETUP_HH
#define ATTILA_GPU_TRIANGLE_SETUP_HH

#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "sim/box.hh"

namespace attila::gpu
{

/** The Triangle Setup box. */
class TriangleSetup : public sim::Box
{
  public:
    TriangleSetup(sim::SignalBinder& binder,
                  sim::StatisticManager& stats,
                  const GpuConfig& config);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet. */
    bool busy() const override { return !empty(); }

  private:
    LinkRx<TriangleObj> _in;
    LinkTx _out;

    sim::Statistic& _statTriangles;
    sim::Statistic& _statCulled;
    sim::Statistic& _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_TRIANGLE_SETUP_HH

/**
 * @file
 * TxnAllocator: the MemTransaction source used by boxes that talk to
 * the memory controller.
 *
 * With GpuConfig::memFastPath on (the default), transactions are
 * recycled through a sharded ObjectPool — MemTransaction::poolReset()
 * keeps the payload vector's capacity, so steady-state requests
 * allocate nothing.  With it off, every request gets a fresh
 * make_shared (the reference path for A/B runs).  Timing is
 * identical either way; only host-side allocation behaviour differs.
 */

#ifndef ATTILA_GPU_TXN_POOL_HH
#define ATTILA_GPU_TXN_POOL_HH

#include "gpu/work_objects.hh"
#include "sim/object_pool.hh"

namespace attila::gpu
{

/** Pooled (or plain, for A/B) MemTransaction factory. */
class TxnAllocator
{
  public:
    void setPooled(bool pooled) { _pooled = pooled; }

    MemTransactionPtr
    acquire()
    {
        if (_pooled)
            return _pool.acquire();
        return std::make_shared<MemTransaction>();
    }

    /** Transactions ever heap-allocated (not recycled); the
     * zero-steady-state-allocation check watches this plateau. */
    u64 allocated() const { return _pool.allocated(); }

  private:
    bool _pooled = true;
    sim::ObjectPool<MemTransaction> _pool;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_TXN_POOL_HH

/**
 * @file
 * The DynamicObjects that travel through the ATTILA pipeline's
 * signals: vertices, triangles, fragment tiles, fragment quads,
 * memory transactions and control markers.  Real data (32-bit FP
 * attributes, depth values, texels) travels inside these objects —
 * the simulator is execution driven (paper §3).
 */

#ifndef ATTILA_GPU_WORK_OBJECTS_HH
#define ATTILA_GPU_WORK_OBJECTS_HH

#include <array>
#include <memory>
#include <vector>

#include "emu/rasterizer_emulator.hh"
#include "emu/shader_emulator.hh"
#include "emu/vector.hh"
#include "gpu/regs.hh"
#include "sim/dynamic_object.hh"

namespace attila::gpu
{

/** Pipeline control markers interleaved with the data stream. */
enum class MarkerKind : u8
{
    None,
    BatchStart, ///< Carries the batch's render state snapshot.
    BatchEnd,   ///< Flows behind the batch's last work item.
};

/** Base class for pipeline work: carries batch id and state. */
class WorkObject : public sim::DynamicObject
{
  public:
    u32 batchId = 0;
    RenderStatePtr state;
    MarkerKind marker = MarkerKind::None;

    bool isMarker() const { return marker != MarkerKind::None; }
};

using WorkObjectPtr = std::shared_ptr<WorkObject>;

/** A vertex flowing from the Streamer to Primitive Assembly. */
class VertexObj : public WorkObject
{
  public:
    u32 index = 0;    ///< Source index in the batch.
    u32 sequence = 0; ///< Position within the batch (commit order).
    /** Input attributes (loaded by the Streamer). */
    std::array<emu::Vec4, emu::regix::numInputRegs> in{};
    /** Shaded outputs (position in out[0]). */
    std::array<emu::Vec4, emu::regix::numOutputRegs> out{};
    bool fromVertexCache = false;
    /** Batch primitive topology (valid on BatchStart markers). */
    Primitive primitive = Primitive::Triangles;
};

using VertexObjPtr = std::shared_ptr<VertexObj>;

/** An assembled triangle with its (later) setup data. */
class TriangleObj : public WorkObject
{
  public:
    /** Shaded vertex outputs of the three corners. */
    std::array<std::array<emu::Vec4, emu::regix::numOutputRegs>, 3>
        vertex{};
    /** Filled by the Triangle Setup unit. */
    emu::TriangleSetup setup;
    u32 triangleId = 0; ///< Sequence within the batch.
};

using TriangleObjPtr = std::shared_ptr<TriangleObj>;

/** An 8x8 fragment tile produced by the Fragment Generator. */
class TileObj : public WorkObject
{
  public:
    TriangleObjPtr triangle;
    s32 x0 = 0; ///< Tile origin in pixels.
    s32 y0 = 0;
    u64 coverage = 0; ///< Bit (y*8 + x) set = fragment inside.
    std::array<f32, 64> z{};
    f32 minZ = 1.0f; ///< Minimum covered depth (for the HZ test).
};

using TileObjPtr = std::shared_ptr<TileObj>;

/** One 2x2 fragment quad: the basic fragment work unit. */
class QuadObj : public WorkObject
{
  public:
    TriangleObjPtr triangle;
    s32 x0 = 0; ///< Top-left fragment position.
    s32 y0 = 0;
    /** Per-fragment coverage (index: dy*2 + dx). */
    std::array<bool, 4> coverage{};
    std::array<f32, 4> z{};
    /** Edge equation values for attribute interpolation. */
    std::array<std::array<f64, 3>, 4> edge{};
    /** Interpolated fragment inputs (by the Interpolator). */
    std::array<std::array<emu::Vec4, emu::regix::numInputRegs>, 4>
        in{};
    /** Shaded outputs (colour in out[0], optional depth out[1]). */
    std::array<std::array<emu::Vec4, emu::regix::numOutputRegs>, 4>
        out{};
    bool shaded = false;
    bool lateZPath = false; ///< Needs z/stencil after shading.
    bool backFacing = false; ///< For double-sided stencil.
};

using QuadObjPtr = std::shared_ptr<QuadObj>;

/** Memory transaction client identifiers (for statistics). */
enum class MemClient : u8
{
    CommandProcessor, Streamer, ZCache, ColorCache, TextureCache, Dac,
};

/** Printable name of a memory client. */
inline const char*
memClientName(MemClient c)
{
    switch (c) {
      case MemClient::CommandProcessor: return "cp";
      case MemClient::Streamer: return "streamer";
      case MemClient::ZCache: return "zcache";
      case MemClient::ColorCache: return "colorcache";
      case MemClient::TextureCache: return "texcache";
      case MemClient::Dac: return "dac";
    }
    return "?";
}

/** A read or write request to the Memory Controller. */
class MemTransaction : public sim::DynamicObject
{
  public:
    bool isRead = true;
    u32 address = 0;
    u32 size = 0;            ///< Bytes, up to 256.
    std::vector<u8> data;    ///< Write payload / read result.
    MemClient client = MemClient::Streamer;
    u64 tag = 0;             ///< Requester-private identifier.
    /** Host-side bookkeeping: bursts still in flight inside the
     * memory controller.  Not modeled state. */
    u32 hostBurstsLeft = 0;

    /** Recycle hook for sim::ObjectPool: reset all fields but keep
     * the payload vector's capacity, so steady-state transactions
     * allocate nothing. */
    void
    poolReset()
    {
        resetDynamicState();
        isRead = true;
        address = 0;
        size = 0;
        data.clear();
        client = MemClient::Streamer;
        tag = 0;
        hostBurstsLeft = 0;
    }
};

using MemTransactionPtr = std::shared_ptr<MemTransaction>;

/** Texture request from a shader unit to a Texture Unit. */
class TexRequest : public sim::DynamicObject
{
  public:
    u32 shaderId = 0;
    u64 threadTag = 0;
    u32 textureUnit = 0; ///< Texture *stage* (sampler index).
    emu::TexTarget target = emu::TexTarget::Tex2D;
    std::array<emu::Vec4, 4> coords{};   ///< Whole quad.
    std::array<bool, 4> active{};        ///< Lane coverage.
    f32 lodBias = 0.0f;
    bool projected = false;
    RenderStatePtr state;
    /** Response payload. */
    std::array<emu::Vec4, 4> texels{};

    /** Recycle hook for sim::ObjectPool: the shader units pool quad
     * texture requests on the memory fast path. */
    void
    poolReset()
    {
        resetDynamicState();
        shaderId = 0;
        threadTag = 0;
        textureUnit = 0;
        target = emu::TexTarget::Tex2D;
        coords.fill(emu::Vec4());
        active.fill(false);
        lodBias = 0.0f;
        projected = false;
        state.reset();
        texels.fill(emu::Vec4());
    }
};

using TexRequestPtr = std::shared_ptr<TexRequest>;

/** Control messages broadcast by the Command Processor. */
enum class ControlKind : u8
{
    ClearColor, ClearZStencil, Flush, HzPoison, DumpFrame,
};

/** A control message (clears, flushes) with its state snapshot. */
class ControlObj : public sim::DynamicObject
{
  public:
    ControlKind kind = ControlKind::Flush;
    RenderStatePtr state;
};

using ControlObjPtr = std::shared_ptr<ControlObj>;

/** Acknowledgement of a control message. */
class AckObj : public sim::DynamicObject
{
  public:
    ControlKind kind = ControlKind::Flush;
    u32 unit = 0;
};

/** Hierarchical Z update from a ROPz unit. */
class HzUpdateObj : public sim::DynamicObject
{
  public:
    u32 tileIndex = 0;
    f32 maxZ = 1.0f;
};

/** End-of-batch retirement notification to the Command Processor. */
class RetireObj : public sim::DynamicObject
{
  public:
    u32 batchId = 0;
    u32 unit = 0;
};

/** Generic single-credit token for flow-control links. */
class CreditObj : public sim::DynamicObject
{
};

} // namespace attila::gpu

#endif // ATTILA_GPU_WORK_OBJECTS_HH

#include "gpu/z_stencil_test.hh"

#include <cstring>

#include "emu/fragment_op_emulator.hh"

namespace attila::gpu
{

using emu::FragmentOpEmulator;
using emu::ZCompressor;

u32
ZStencilBacking::fillSize(u32 lineAddr)
{
    switch (table.get(blockOf(lineAddr))) {
      case BlockState::Cleared:
        return 0;
      case BlockState::CompHalf:
        return emu::zTileBytes / 2;
      case BlockState::CompQuarter:
        return emu::zTileBytes / 4;
      case BlockState::Uncompressed:
        return emu::zTileBytes;
    }
    return emu::zTileBytes;
}

void
ZStencilBacking::fillFromMemory(u32 lineAddr, const u8* memBytes,
                                u32 size, u8* lineOut)
{
    const BlockState state = table.get(blockOf(lineAddr));
    if (state == BlockState::Uncompressed) {
        std::memcpy(lineOut, memBytes, emu::zTileBytes);
        return;
    }
    const emu::TileCompression mode =
        state == BlockState::CompHalf ? emu::TileCompression::Half
                                      : emu::TileCompression::Quarter;
    const std::vector<u8> data(memBytes, memBytes + size);
    const auto tile = ZCompressor::decompress(mode, data);
    std::memcpy(lineOut, tile.data(), emu::zTileBytes);
}

void
ZStencilBacking::fillLocal(u32 lineAddr, u8* lineOut)
{
    (void)lineAddr;
    for (u32 i = 0; i < emu::zTileWords; ++i)
        std::memcpy(lineOut + i * 4, &clearWord, 4);
}

u32
ZStencilBacking::writeback(u32 lineAddr, const u8* lineData, u8* out)
{
    std::array<u32, emu::zTileWords> tile;
    std::memcpy(tile.data(), lineData, emu::zTileBytes);

    // Exact tile maximum refines the Hierarchical Z buffer.
    if (hzHook) {
        u32 maxDepth = 0;
        for (u32 w : tile)
            maxDepth = std::max(maxDepth, emu::depthOf(w));
        hzHook(blockOf(lineAddr),
               static_cast<f32>(maxDepth) /
                   static_cast<f32>(emu::maxDepthValue));
    }

    if (compressionEnabled) {
        const auto result = ZCompressor::compress(tile);
        if (result.mode != emu::TileCompression::Uncompressed) {
            table.set(blockOf(lineAddr),
                      result.mode == emu::TileCompression::Half
                          ? BlockState::CompHalf
                          : BlockState::CompQuarter);
            std::memcpy(out, result.data.data(),
                        result.data.size());
            return static_cast<u32>(result.data.size());
        }
    }
    table.set(blockOf(lineAddr), BlockState::Uncompressed);
    std::memcpy(out, lineData, emu::zTileBytes);
    return emu::zTileBytes;
}

ZStencilTest::ZStencilTest(sim::SignalBinder& binder,
                           sim::StatisticManager& stats,
                           const GpuConfig& config, u32 unit,
                           emu::GpuMemory& memory)
    : Box(binder, stats, "ZStencilTest" + std::to_string(unit)),
      _config(config),
      _unit(unit),
      _memory(memory),
      _cache("zcache" + std::to_string(unit),
             FbCache::Config{config.zCacheKB, config.zCacheWays,
                             config.zCacheLine, 4,
                             config.zCacheMshr,
                             config.memFastPath},
             stat("cacheHits"), stat("cacheMisses"), &_backing),
      _statQuads(stat("quads")),
      _statFragsTested(stat("fragmentsTested")),
      _statFragsPassed(stat("fragmentsPassed")),
      _statBusy(stat("busyCycles"))
{
    _statQuads.setImmediate(!config.memFastPath);
    _statFragsTested.setImmediate(!config.memFastPath);
    _statFragsPassed.setImmediate(!config.memFastPath);
    _statBusy.setImmediate(!config.memFastPath);
    const std::string id = std::to_string(unit);
    _earlyIn.init(*this, binder, "hz.ropz" + id, 16, 1, 16);
    _lateIn.init(*this, binder, "ffifo.ropz" + id + ".late", 2, 1,
                 8);
    _toInterp.init(*this, binder, "ropz" + id + ".interp", 1,
                   config.ropLatency, 16);
    _toRopc.init(*this, binder, "ropz" + id + ".ropc", 1,
                 config.ropLatency, 8);
    _hzUpdates.init(*this, binder, "ropz" + id + ".hzupd", 4, 1, 32);
    _ctrl.init(*this, binder, "cp.ctrl.ropz" + id, 1, 1, 2);
    _ack.init(*this, binder, "ack.ropz" + id, 1, 1, 2);
    _mem.init(*this, binder, "mc.zcache" + id,
              config.memoryRequestQueue);

    _backing.compressionEnabled = config.zCompression;
    _backing.hzHook = _hzEnqueue;
}

void
ZStencilTest::HzEnqueue::operator()(u32 tileIndex, f32 maxZ) const
{
    auto upd = owner->_config.memFastPath
                   ? owner->_hzPool.acquire()
                   : std::make_shared<HzUpdateObj>();
    upd->tileIndex = tileIndex;
    upd->maxZ = maxZ;
    owner->_hzQueue.push_back(std::move(upd));
}

void
ZStencilTest::processControl(Cycle cycle)
{
    if (_ctrlPhase == CtrlPhase::Clearing) {
        if (cycle < _ctrlDoneAt || !_ack.canSend(cycle))
            return;
        auto ack = std::make_shared<AckObj>();
        ack->kind = _ctrlKind;
        ack->unit = _unit;
        _ack.send(cycle, ack);
        _ctrlPhase = CtrlPhase::None;
        return;
    }
    if (_ctrlPhase == CtrlPhase::Flushing) {
        if (!_cache.flushStep(cycle, _mem, MemClient::ZCache))
            return;
        if (!_ack.canSend(cycle))
            return;
        auto ack = std::make_shared<AckObj>();
        ack->kind = _ctrlKind;
        ack->unit = _unit;
        _ack.send(cycle, ack);
        _ctrlPhase = CtrlPhase::None;
        return;
    }

    if (_ctrl.empty())
        return;
    ControlObjPtr ctrl = _ctrl.pop(cycle);
    _ctrlKind = ctrl->kind;
    const RenderState& state = *ctrl->state;

    if (ctrl->kind == ControlKind::ClearZStencil) {
        _backing.bufferBase = state.zStencilBufferAddress;
        _backing.clearWord = emu::packDepthStencil(
            emu::quantizeDepth(state.clearDepth),
            state.clearStencil);
        const u32 tiles =
            fbSurfaceBytes(state.width, state.height) / fbTileBytes;
        _cache.invalidateAll();
        if (_config.fastClear) {
            // Fast clear: flip the block states, a few cycles.
            _backing.table.reset(tiles, BlockState::Cleared);
            _ctrlDoneAt = cycle + _config.clearCycles;
        } else {
            // Slow clear (ablation): write the whole buffer.  The
            // data movement is functional; the cost models an
            // uncontended sequential write of the surface.
            _backing.table.reset(tiles, BlockState::Uncompressed);
            const u32 myUnit = _unit;
            for (u32 t = myUnit; t < tiles;
                 t += _config.numRops) {
                for (u32 w = 0; w < emu::zTileWords; ++w) {
                    _memory.writeAs<u32>(_backing.bufferBase +
                                             t * fbTileBytes + w * 4,
                                         _backing.clearWord);
                }
            }
            const u32 myTiles =
                (tiles + _config.numRops - 1) / _config.numRops;
            _ctrlDoneAt =
                cycle + static_cast<Cycle>(myTiles) * fbTileBytes /
                            (_config.memoryChannels *
                             _config.channelBytesPerCycle);
        }
        // Late batches completed before a barrier can be forgotten.
        _lateDone.clear();
        _prevWasLate = false;
        _gateBatch = ~0u;
        _ctrlPhase = CtrlPhase::Clearing;
        return;
    }
    if (ctrl->kind == ControlKind::Flush) {
        _ctrlPhase = CtrlPhase::Flushing;
        return;
    }
    panic("ZStencilTest: unexpected control message");
}

bool
ZStencilTest::zAccess(Cycle cycle, QuadObj& quad, bool shaded)
{
    const RenderState& state = *quad.state;
    const emu::ZStencilState& zs = state.zStencil;

    if (!zs.depthTest && !zs.stencilTest)
        return true; // Nothing to do.

    const u32 lineAddr = fbTileAddress(
        state.zStencilBufferAddress, state.width,
        static_cast<u32>(quad.x0), static_cast<u32>(quad.y0));

    const CacheAccess access = _cache.access(cycle, lineAddr, false);
    if (access != CacheAccess::Hit)
        return false;

    const bool programWritesDepth =
        shaded && state.fragmentProgram &&
        (state.fragmentProgram->outputsWritten &
         (1u << emu::regix::foutDepth));

    bool wrote = false;
    for (u32 f = 0; f < 4; ++f) {
        if (!quad.coverage[f])
            continue;
        _statFragsTested.inc();
        const u32 x = static_cast<u32>(quad.x0) + (f % 2);
        const u32 y = static_cast<u32>(quad.y0) + (f / 2);
        const u32 addr = fbPixelAddress(
            state.zStencilBufferAddress, state.width, x, y);
        u32 stored;
        std::memcpy(&stored, _cache.wordPtr(addr), 4);

        f32 depth = quad.z[f];
        if (programWritesDepth)
            depth = quad.out[f][emu::regix::foutDepth].x;

        const auto result = FragmentOpEmulator::zStencilTest(
            zs, emu::quantizeDepth(depth), stored,
            quad.backFacing);
        if (result.newZS != stored) {
            std::memcpy(_cache.wordPtr(addr), &result.newZS, 4);
            wrote = true;
        }
        if (result.pass) {
            _statFragsPassed.inc();
        } else {
            quad.coverage[f] = false;
        }
    }
    if (wrote)
        _cache.markDirty(lineAddr);
    return true;
}

void
ZStencilTest::processEarly(Cycle cycle)
{
    if (_earlyIn.empty())
        return;
    const QuadObjPtr& head = _earlyIn.front();

    if (head->isMarker()) {
        if (head->marker == MarkerKind::BatchStart) {
            // A batch's early Z accesses must wait until the
            // previous batch — if it tested after shading — has
            // finished its own Z accesses.
            _gateBatch = _prevWasLate ? _prevBatchId : ~0u;
            _prevWasLate = head->state && !head->state->earlyZ();
            _prevBatchId = head->batchId;
        }
        // Markers take the same delay pipeline as quads so they can
        // never overtake work of their own batch.
        if (_delayInterp.size() >= 8)
            return;
        _delayInterp.push_back(
            {cycle + _config.ropLatency, _earlyIn.pop(cycle)});
        return;
    }

    // Cross-batch hazard: an early-tested batch must not access the
    // Z buffer before the previous *late* batch finished its
    // accesses.
    if (head->marker == MarkerKind::None && !head->lateZPath) {
        if (_gateBatch != ~0u && !_lateDone.count(_gateBatch))
            return;
    }

    QuadObjPtr quad = _earlyIn.front();

    if (quad->lateZPath) {
        // Late-Z batch: pass through untested.
        if (!_toInterp.canSend(cycle))
            return;
        _toInterp.send(cycle, _earlyIn.pop(cycle));
        _statQuads.inc();
        return;
    }

    if (_delayInterp.size() >= 8)
        return; // Output pipeline full.
    if (!zAccess(cycle, *quad, false))
        return; // Cache miss; retry.
    _earlyIn.pop(cycle);
    _statQuads.inc();

    const bool alive = quad->coverage[0] || quad->coverage[1] ||
                       quad->coverage[2] || quad->coverage[3];
    if (!alive)
        return; // Fully culled quads leave the pipeline here.
    _delayInterp.push_back({cycle + _config.ropLatency, quad});
}

void
ZStencilTest::processLate(Cycle cycle)
{
    if (_lateIn.empty())
        return;
    const QuadObjPtr& head = _lateIn.front();

    if (head->isMarker()) {
        if (_delayRopc.size() >= 8)
            return;
        auto marker = _lateIn.pop(cycle);
        if (marker->marker == MarkerKind::BatchEnd)
            _lateDone.insert(marker->batchId);
        _delayRopc.push_back({cycle + _config.ropLatency, marker});
        return;
    }

    QuadObjPtr quad = _lateIn.front();
    if (_delayRopc.size() >= 8)
        return;
    if (!zAccess(cycle, *quad, true))
        return;
    _lateIn.pop(cycle);
    _statQuads.inc();

    const bool alive = quad->coverage[0] || quad->coverage[1] ||
                       quad->coverage[2] || quad->coverage[3];
    if (!alive)
        return;
    _delayRopc.push_back({cycle + _config.ropLatency, quad});
}

void
ZStencilTest::drainOutputs(Cycle cycle)
{
    while (!_delayInterp.empty() &&
           _delayInterp.front().readyAt <= cycle &&
           _toInterp.canSend(cycle)) {
        _toInterp.send(cycle,
                       std::move(_delayInterp.front().quad));
        _delayInterp.pop_front();
    }
    while (!_delayRopc.empty() &&
           _delayRopc.front().readyAt <= cycle &&
           _toRopc.canSend(cycle)) {
        _toRopc.send(cycle, std::move(_delayRopc.front().quad));
        _delayRopc.pop_front();
    }
}

void
ZStencilTest::sendHzUpdates(Cycle cycle)
{
    while (!_hzQueue.empty() && _hzUpdates.canSend(cycle)) {
        _hzUpdates.send(cycle, std::move(_hzQueue.front()));
        _hzQueue.pop_front();
    }
}

void
ZStencilTest::update(Cycle cycle)
{
    _earlyIn.clock(cycle);
    _lateIn.clock(cycle);
    _toInterp.clock(cycle);
    _toRopc.clock(cycle);
    _hzUpdates.clock(cycle);
    _ctrl.clock(cycle);
    _ack.clock(cycle);
    _mem.clock(cycle);

    processControl(cycle);
    if (_ctrlPhase == CtrlPhase::None) {
        const u64 quadsBefore = _statQuads.liveTotal();
        drainOutputs(cycle);
        processLate(cycle);
        processEarly(cycle);
        // Double-rate Z (paper §7 extension): a second quad per
        // cycle when the head of an input belongs to a
        // depth/stencil-only pass (colour writes masked).
        if (_config.doubleRateZ) {
            auto depthOnlyHead = [](const LinkRx<QuadObj>& rx) {
                return !rx.empty() && !rx.front()->isMarker() &&
                       rx.front()->state->blend.colorMask == 0;
            };
            if (depthOnlyHead(_lateIn))
                processLate(cycle);
            if (depthOnlyHead(_earlyIn))
                processEarly(cycle);
        }
        if (_statQuads.liveTotal() != quadsBefore)
            _statBusy.inc();
        _cache.clock(cycle, _mem, MemClient::ZCache);
    }
    sendHzUpdates(cycle);
    _statQuads.commit();
    _statFragsTested.commit();
    _statFragsPassed.commit();
    _statBusy.commit();
}

bool
ZStencilTest::empty() const
{
    return _earlyIn.empty() && _lateIn.empty() &&
           _delayInterp.empty() && _delayRopc.empty() &&
           _hzQueue.empty() && _ctrl.empty() &&
           _ctrlPhase == CtrlPhase::None && _cache.idle();
}

} // namespace attila::gpu

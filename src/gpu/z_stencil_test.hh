/**
 * @file
 * ZStencilTest (ROPz): tests fragment quads against the stencil and
 * depth buffer — 8 stencil bits + 24 depth bits per element (paper
 * §2.2).
 *
 * A Z cache (Table 2) exploits access locality; evicted lines are
 * losslessly compressed (1:2 / 1:4) before writeback and their exact
 * per-tile maximum depth refines the Hierarchical Z buffer.  Fast Z
 * and stencil clear is implemented through the per-block state
 * memory: cleared blocks are filled on demand without memory
 * traffic.
 *
 * The unit serves both datapaths: quads arriving from the
 * Hierarchical Z box are tested before shading (early Z) or passed
 * through (late-Z batches), and shaded quads coming back from the
 * Fragment FIFO are tested after shading and forwarded to Color
 * Write.
 */

#ifndef ATTILA_GPU_Z_STENCIL_TEST_HH
#define ATTILA_GPU_Z_STENCIL_TEST_HH

#include <set>

#include "emu/memory.hh"
#include "emu/z_compressor.hh"
#include "gpu/cache.hh"
#include "gpu/framebuffer.hh"
#include "gpu/gpu_config.hh"
#include "gpu/link.hh"
#include "sim/box.hh"
#include "sim/function_ref.hh"
#include "sim/ring_queue.hh"

namespace attila::gpu
{

/** Line backing implementing Z compression and fast clear. */
class ZStencilBacking : public LineBacking
{
  public:
    BlockStateTable table;
    u32 bufferBase = 0;
    u32 clearWord = 0;
    bool compressionEnabled = true;
    /** Called with (tileIndex, maxDepth in [0,1]) on writeback.
     * Non-owning: bind a named functor or member that outlives the
     * backing, never a temporary lambda. */
    sim::FunctionRef<void(u32, f32)> hzHook;

    u32
    blockOf(u32 lineAddr) const
    {
        return (lineAddr - bufferBase) / fbTileBytes;
    }

    u32 fillSize(u32 lineAddr) override;
    void fillFromMemory(u32 lineAddr, const u8* memBytes, u32 size,
                        u8* lineOut) override;
    void fillLocal(u32 lineAddr, u8* lineOut) override;
    u32 writeback(u32 lineAddr, const u8* lineData,
                  u8* out) override;
};

/** The Z and Stencil Test box. */
class ZStencilTest : public sim::Box
{
  public:
    ZStencilTest(sim::SignalBinder& binder,
                 sim::StatisticManager& stats,
                 const GpuConfig& config, u32 unit,
                 emu::GpuMemory& memory);

    void update(Cycle cycle) override;
    bool empty() const override;
    /** Idle == drained: update() is a no-op whenever the unit holds
     * no work and its inputs are quiet (delay pipelines and control
     * phases count as held work). */
    bool busy() const override { return !empty(); }

    /** Wire the Z cache's hit/miss events (cache unit name = box
     * name, matching the cacheHits/cacheMisses statistics). */
    void
    attachEventTrace(sim::EventTrace& trace) override
    {
        _cache.setEventTrace(&trace, trace.registerCache(name()));
    }

  private:
    enum class CtrlPhase : u8 { None, Clearing, Flushing };

    void processControl(Cycle cycle);
    void processEarly(Cycle cycle);
    void processLate(Cycle cycle);
    /** Run the z/stencil test on @p quad.  Returns false when the
     * access must be retried (cache miss / blocked). */
    bool zAccess(Cycle cycle, QuadObj& quad, bool shaded);
    void drainOutputs(Cycle cycle);
    void sendHzUpdates(Cycle cycle);

    const GpuConfig& _config;
    const u32 _unit;
    emu::GpuMemory& _memory; ///< For slow (non-fast) clears only.

    LinkRx<QuadObj> _earlyIn;
    LinkRx<QuadObj> _lateIn;
    LinkTx _toInterp;
    LinkTx _toRopc;
    LinkTx _hzUpdates;
    LinkRx<ControlObj> _ctrl;
    LinkTx _ack;
    MemPort _mem;

    ZStencilBacking _backing;
    FbCache _cache;

    CtrlPhase _ctrlPhase = CtrlPhase::None;
    Cycle _ctrlDoneAt = 0;
    ControlKind _ctrlKind = ControlKind::Flush;

    /** Cross-batch ordering: set when a late batch's z accesses are
     * complete (its BatchEnd popped on the late input). */
    std::set<u32> _lateDone;
    bool _prevWasLate = false; ///< Previous batch used late Z.
    u32 _prevBatchId = 0;
    /** Batch id whose late accesses gate the current early batch
     * (~0u = no gate). */
    u32 _gateBatch = ~0u;

    /** Output delay pipelines (ROP latency).  The early (to the
     *  Interpolator) and late (to Color Write) outputs are
     *  independent: sharing one queue would deadlock the pipeline
     *  when the early path backs up while Color Write waits for
     *  late-path markers. */
    struct Delayed
    {
        Cycle readyAt;
        WorkObjectPtr quad; ///< Quad or batch marker.
    };
    sim::RingQueue<Delayed> _delayInterp;
    sim::RingQueue<Delayed> _delayRopc;
    sim::RingQueue<std::shared_ptr<HzUpdateObj>> _hzQueue;
    sim::ObjectPool<HzUpdateObj> _hzPool;

    /** Persistent callable behind _backing.hzHook (the hook is a
     * non-owning FunctionRef, so it must reference a member). */
    struct HzEnqueue
    {
        ZStencilTest* owner;
        void operator()(u32 tileIndex, f32 maxZ) const;
    };
    HzEnqueue _hzEnqueue{this};

    sim::BatchedStat _statQuads;
    sim::BatchedStat _statFragsTested;
    sim::BatchedStat _statFragsPassed;
    sim::BatchedStat _statBusy;
};

} // namespace attila::gpu

#endif // ATTILA_GPU_Z_STENCIL_TEST_HH

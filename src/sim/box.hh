/**
 * @file
 * Box: base class for every simulated pipeline unit.
 *
 * A box abstracts a "large enough" piece of the pipeline (the
 * Clipper, the Fragment Generator, ...).  Each cycle the simulator
 * calls clock(); the box reads its input signals, updates local state
 * (registers and queues) and writes its output signals.  Boxes model
 * resource restrictions and control/data flow; signals model latency
 * and bandwidth.
 */

#ifndef ATTILA_SIM_BOX_HH
#define ATTILA_SIM_BOX_HH

#include <string>

#include "sim/signal_binder.hh"
#include "sim/statistics.hh"
#include "sim/types.hh"

namespace attila::sim
{

/** Base class for all simulated pipeline units. */
class Box
{
  public:
    /**
     * @param binder Signal name server used to register this box's
     *               interface.
     * @param stats Statistic name server.
     * @param name Unique box instance name.
     */
    Box(SignalBinder& binder, StatisticManager& stats,
        std::string name)
        : _binder(binder), _stats(stats), _name(std::move(name))
    {}
    virtual ~Box() = default;

    Box(const Box&) = delete;
    Box& operator=(const Box&) = delete;

    const std::string& name() const { return _name; }

    /** Advance the box one cycle. */
    virtual void clock(Cycle cycle) = 0;

    /**
     * True when the box holds no in-flight work.  Used by the
     * simulator's drain detection.
     */
    virtual bool empty() const { return true; }

  protected:
    /** Register an input signal of this box. */
    Signal*
    input(const std::string& signal_name, u32 bandwidth, u32 latency)
    {
        return _binder.registerSignal(this, signal_name, Direction::In,
                                      bandwidth, latency);
    }

    /** Register an output signal of this box. */
    Signal*
    output(const std::string& signal_name, u32 bandwidth, u32 latency)
    {
        return _binder.registerSignal(this, signal_name,
                                      Direction::Out, bandwidth,
                                      latency);
    }

    /** Get (or create) a statistic scoped to this box. */
    Statistic&
    stat(const std::string& stat_name)
    {
        return _stats.get(_name, stat_name);
    }

    SignalBinder& binder() { return _binder; }
    StatisticManager& statistics() { return _stats; }

  private:
    SignalBinder& _binder;
    StatisticManager& _stats;
    std::string _name;
};

} // namespace attila::sim

#endif // ATTILA_SIM_BOX_HH

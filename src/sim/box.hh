/**
 * @file
 * Box: base class for every simulated pipeline unit.
 *
 * A box abstracts a "large enough" piece of the pipeline (the
 * Clipper, the Fragment Generator, ...).  Boxes model resource
 * restrictions and control/data flow; signals model latency and
 * bandwidth.
 *
 * Each cycle a box goes through an explicit two-phase lifecycle:
 *
 *  - update(cycle)    (phase A): read input signals, advance local
 *                     state (registers and queues) and *stage* output
 *                     signal writes.  No other box observes these
 *                     writes yet, so phase A has no ordering hazards
 *                     between boxes and may run concurrently for all
 *                     boxes of a clock domain.
 *  - propagate(cycle) (phase B): publish the staged writes into the
 *                     signals' delivery slots.  Each signal has a
 *                     single writer box, so phase B is also free of
 *                     cross-box hazards.
 *
 * The scheduler (see sim/scheduler.hh) runs phase A for every box of
 * a domain, then phase B for every box.  clock() bundles both phases
 * for single-box harnesses and tests.
 */

#ifndef ATTILA_SIM_BOX_HH
#define ATTILA_SIM_BOX_HH

#include <string>
#include <vector>

#include "sim/signal_binder.hh"
#include "sim/statistics.hh"
#include "sim/types.hh"

namespace attila::sim
{

/** Base class for all simulated pipeline units. */
class Box
{
  public:
    /**
     * @param binder Signal name server used to register this box's
     *               interface.
     * @param stats Statistic name server.
     * @param name Unique box instance name.
     */
    Box(SignalBinder& binder, StatisticManager& stats,
        std::string name)
        : _binder(binder), _stats(stats), _name(std::move(name))
    {}
    virtual ~Box() = default;

    Box(const Box&) = delete;
    Box& operator=(const Box&) = delete;

    const std::string& name() const { return _name; }

    /**
     * Phase A: read inputs, advance internal state, stage output
     * writes.  Must not touch state owned by another box.
     */
    virtual void update(Cycle cycle) = 0;

    /**
     * Phase B: publish the output writes staged during update().
     * The default commits every output signal registered by this
     * box; boxes with extra end-of-cycle bookkeeping may override
     * (and must call the base).
     */
    virtual void
    propagate(Cycle cycle)
    {
        (void)cycle;
        for (Signal* signal : _outputSignals)
            signal->commit();
    }

    /** Run both phases; for single-box harnesses and tests. */
    void
    clock(Cycle cycle)
    {
        update(cycle);
        propagate(cycle);
    }

    /**
     * True when the box holds no in-flight work.  Used by the
     * simulator's drain detection.
     */
    virtual bool empty() const { return true; }

  protected:
    /** Register an input signal of this box. */
    Signal*
    input(const std::string& signal_name, u32 bandwidth, u32 latency)
    {
        return _binder.registerSignal(this, signal_name, Direction::In,
                                      bandwidth, latency);
    }

    /** Register an output signal of this box. */
    Signal*
    output(const std::string& signal_name, u32 bandwidth, u32 latency)
    {
        return _binder.registerSignal(this, signal_name,
                                      Direction::Out, bandwidth,
                                      latency);
    }

    /** Get (or create) a statistic scoped to this box. */
    Statistic&
    stat(const std::string& stat_name)
    {
        return _stats.get(_name, stat_name);
    }

    SignalBinder& binder() { return _binder; }
    StatisticManager& statistics() { return _stats; }

  private:
    // The binder appends every signal this box writes, regardless of
    // whether registration went through output() or a helper (links,
    // memory ports) talking to the binder directly.
    friend class SignalBinder;

    SignalBinder& _binder;
    StatisticManager& _stats;
    std::string _name;
    std::vector<Signal*> _outputSignals;
};

} // namespace attila::sim

#endif // ATTILA_SIM_BOX_HH

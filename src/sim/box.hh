/**
 * @file
 * Box: base class for every simulated pipeline unit.
 *
 * A box abstracts a "large enough" piece of the pipeline (the
 * Clipper, the Fragment Generator, ...).  Boxes model resource
 * restrictions and control/data flow; signals model latency and
 * bandwidth.
 *
 * Each cycle a box goes through an explicit two-phase lifecycle:
 *
 *  - update(cycle)    (phase A): read input signals, advance local
 *                     state (registers and queues) and *stage* output
 *                     signal writes.  No other box observes these
 *                     writes yet, so phase A has no ordering hazards
 *                     between boxes and may run concurrently for all
 *                     boxes of a clock domain.
 *  - propagate(cycle) (phase B): publish the staged writes into the
 *                     signals' delivery slots.  Each signal has a
 *                     single writer box, so phase B is also free of
 *                     cross-box hazards.
 *
 * The scheduler (see sim/scheduler.hh) runs phase A for every box of
 * a domain, then phase B for every box.  clock() bundles both phases
 * for single-box harnesses and tests.
 */

#ifndef ATTILA_SIM_BOX_HH
#define ATTILA_SIM_BOX_HH

#include <string>
#include <vector>

#include "sim/event_trace.hh"
#include "sim/signal_binder.hh"
#include "sim/statistics.hh"
#include "sim/types.hh"

namespace attila::sim
{

/** Base class for all simulated pipeline units. */
class Box
{
  public:
    /**
     * @param binder Signal name server used to register this box's
     *               interface.
     * @param stats Statistic name server.
     * @param name Unique box instance name.
     */
    Box(SignalBinder& binder, StatisticManager& stats,
        std::string name)
        : _binder(binder), _stats(stats), _name(std::move(name))
    {}
    virtual ~Box() = default;

    Box(const Box&) = delete;
    Box& operator=(const Box&) = delete;

    const std::string& name() const { return _name; }

    /**
     * Phase A: read inputs, advance internal state, stage output
     * writes.  Must not touch state owned by another box.
     */
    virtual void update(Cycle cycle) = 0;

    /**
     * Phase B: publish the output writes staged during update().
     * The default commits every output signal registered by this
     * box; boxes with extra end-of-cycle bookkeeping may override
     * (and must call the base).
     */
    virtual void
    propagate(Cycle cycle)
    {
        (void)cycle;
        for (Signal* signal : _outputSignals)
            signal->commit();
    }

    /** Run both phases; for single-box harnesses and tests. */
    void
    clock(Cycle cycle)
    {
        update(cycle);
        propagate(cycle);
    }

    /**
     * True when the box holds no in-flight work.  Used by the
     * simulator's drain detection.
     */
    virtual bool empty() const { return true; }

    // ===== Activity contract (idle skipping) =======================
    //
    // A box is *provably idle* at a cycle when its update() would be
    // a semantic no-op: no internal state to advance, no input
    // traffic to consume, no scheduled wakeup due.  The scheduler
    // may then skip both phases for the cycle without changing any
    // observable (cycle counts, statistics, signal traffic) — the
    // basis for the engine's activity-driven clocking.
    //
    // Contract for implementors:
    //  - busy() must return true whenever update() does anything
    //    observable that is not triggered by input-signal traffic
    //    (stat increments count!).  The default returns true, so a
    //    box that does not opt in is simply always clocked.
    //  - Work that begins at a known future cycle while the box is
    //    otherwise idle must be announced with wakeAt(); the
    //    scheduler guarantees the box is clocked no later than the
    //    announced cycle.  A box that is busy() until the work lands
    //    never needs wakeAt().
    //  - Input traffic needs no reporting: every registered input
    //    signal holding an in-flight object keeps the box awake
    //    automatically (signal delivery marks the consumer active).

    /**
     * True while update() may have observable work that is not
     * driven by input-signal traffic.  Override to opt in to idle
     * skipping; the conservative default keeps the box clocked
     * every cycle.
     */
    virtual bool busy() const { return true; }

    /** Sentinel for "no wakeup scheduled". */
    static constexpr Cycle NoWake = ~Cycle{0};

    /** Earliest scheduled wakeup, or NoWake. */
    Cycle nextWake() const { return _nextWake; }

    /**
     * True when the scheduler may skip this box at @p cycle: not
     * busy, no wakeup due, and no object in flight on any input
     * signal.  An object is counted from the moment its writer
     * commits until it is read, so a sleeping consumer is clocked
     * throughout the delivery window and can never miss an arrival
     * (which would otherwise trip the signal's data-loss check).
     */
    bool
    idleAt(Cycle cycle) const
    {
        if (busy())
            return false;
        if (cycle >= _nextWake)
            return false;
        for (const Signal* signal : _inputSignals) {
            if (!signal->fastEmpty())
                return false;
        }
        return true;
    }

    /**
     * Scheduler entry point for phase A: clears an expired wakeup
     * hint (the box re-arms it from update() when needed) and runs
     * update().
     */
    void
    beginUpdate(Cycle cycle)
    {
        if (cycle >= _nextWake)
            _nextWake = NoWake;
        if constexpr (kEventTraceCompiled) {
            // Activity span bookkeeping.  The fields are only ever
            // touched by the one thread clocking this box this cycle
            // (phase A) or by the simulator thread during the skip
            // pass / at trace finish, when no worker is inside a
            // phase — the scheduler's end-of-cycle barrier orders
            // the two.
            if (_eventTrace) [[unlikely]] {
                if (!_spanOpen) {
                    _eventTrace->emit(EventKind::SpanBegin, cycle,
                                      _eventTraceId);
                    _spanOpen = true;
                }
                _spanLast = cycle;
            }
        }
        update(cycle);
    }

    /**
     * Per-cycle skip latch, written by the scheduler's skip pass
     * before any box is clocked and read back in phase B so a
     * skipped box also skips propagate().  Under the partitioned
     * parallel engine the decisions are made on the simulator thread
     * before the workers are dispatched (and any error-path write by
     * a worker is ordered by the partition's update counter), so the
     * latch needs no synchronization of its own.
     */
    void
    markSkipped(bool skipped)
    {
        if constexpr (kEventTraceCompiled) {
            if (_eventTrace && skipped) [[unlikely]]
                finishEventSpan();
        }
        _skipped = skipped;
    }
    bool skipped() const { return _skipped; }

    // ===== Structured event tracing ================================

    /**
     * Install the event trace sink and this box's registered id
     * (Simulator::enableEventTrace).  Activity spans are recorded
     * from the scheduler's clock/skip decisions without any help
     * from the subclass.
     */
    void
    installEventTrace(EventTrace* trace, u16 id)
    {
        _eventTrace = trace;
        _eventTraceId = id;
        _spanOpen = false;
    }

    /**
     * Hook for boxes with unit-level event sources (caches, shader
     * thread slots): register names with @p trace and wire internal
     * emitters.  Called once, after installEventTrace().
     */
    virtual void attachEventTrace(EventTrace& trace) { (void)trace; }

    /**
     * Close an open activity span one cycle past the last clocked
     * cycle.  Called on the simulator thread when the box is skipped
     * and at trace collection, so spans of boxes that never go idle
     * still terminate.
     */
    void
    finishEventSpan()
    {
        if constexpr (kEventTraceCompiled) {
            if (_eventTrace && _spanOpen) {
                _eventTrace->emit(EventKind::SpanEnd, _spanLast + 1,
                                  _eventTraceId);
                _spanOpen = false;
            }
        }
    }

    /** Input signals registered for this box (read-only). */
    const std::vector<Signal*>& inputSignals() const
    {
        return _inputSignals;
    }

    /** Output signals registered for this box (read-only); with the
     * binder's single-reader rule this is what lets the scheduler
     * recover the box connectivity graph at bind time. */
    const std::vector<Signal*>& outputSignals() const
    {
        return _outputSignals;
    }

  protected:
    /** Register an input signal of this box. */
    Signal*
    input(const std::string& signal_name, u32 bandwidth, u32 latency)
    {
        return _binder.registerSignal(this, signal_name, Direction::In,
                                      bandwidth, latency);
    }

    /** Register an output signal of this box. */
    Signal*
    output(const std::string& signal_name, u32 bandwidth, u32 latency)
    {
        return _binder.registerSignal(this, signal_name,
                                      Direction::Out, bandwidth,
                                      latency);
    }

    /** Get (or create) a statistic scoped to this box. */
    Statistic&
    stat(const std::string& stat_name)
    {
        return _stats.get(_name, stat_name);
    }

    /**
     * Announce that this box, though currently not busy(), has work
     * scheduled at @p cycle.  Earlier of the two wins when a wakeup
     * is already pending; the hint is cleared when the box is next
     * clocked at or after the announced cycle.
     */
    void
    wakeAt(Cycle cycle)
    {
        if (cycle < _nextWake)
            _nextWake = cycle;
    }

    SignalBinder& binder() { return _binder; }
    StatisticManager& statistics() { return _stats; }

  private:
    // The binder appends every signal this box writes or reads,
    // regardless of whether registration went through
    // input()/output() or a helper (links, memory ports) talking to
    // the binder directly.
    friend class SignalBinder;

    SignalBinder& _binder;
    StatisticManager& _stats;
    std::string _name;
    std::vector<Signal*> _outputSignals;
    std::vector<Signal*> _inputSignals;
    Cycle _nextWake = NoWake;
    bool _skipped = false;
    EventTrace* _eventTrace = nullptr;
    u16 _eventTraceId = 0;
    bool _spanOpen = false;
    Cycle _spanLast = 0;
};

} // namespace attila::sim

#endif // ATTILA_SIM_BOX_HH

/**
 * @file
 * ClockDomain: a group of boxes sharing one clock.
 *
 * Modern GPUs run different parts of the chip at different
 * frequencies (core, memory, display).  A ClockDomain groups the
 * boxes of one such region and owns their cycle counter; the
 * Simulator ticks a master clock and steps each domain whose divider
 * matches, handing the domain's own cycle to the boxes.
 *
 * A divider of N means the domain advances once every N master
 * ticks; divider 1 is the master rate.  Signals between boxes of
 * different-rate domains are not translated — cross-rate traffic
 * must go through an explicit bridge box.  (All of the ATTILA
 * pipeline currently runs in one divider-1 "gpu" domain; the
 * abstraction is the seam for memory/display clocks.)
 */

#ifndef ATTILA_SIM_CLOCK_DOMAIN_HH
#define ATTILA_SIM_CLOCK_DOMAIN_HH

#include <algorithm>
#include <string>
#include <vector>

#include "sim/box.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace attila::sim
{

/** A named group of boxes advanced by a common clock. */
class ClockDomain
{
  public:
    /**
     * @param name Unique domain name ("gpu", "memory", ...).
     * @param divider Master ticks per domain cycle (>= 1).
     */
    explicit ClockDomain(std::string name, u32 divider = 1)
        : _name(std::move(name)), _divider(divider)
    {
        if (_divider < 1)
            fatal("clock domain '", _name,
                  "': divider must be >= 1");
    }

    ClockDomain(const ClockDomain&) = delete;
    ClockDomain& operator=(const ClockDomain&) = delete;

    const std::string& name() const { return _name; }
    u32 divider() const { return _divider; }

    /**
     * Nominal frequency metadata in MHz (0 = unspecified).  Purely
     * informational — timing is governed by the divider — but it is
     * what configuration files and reports call the domain's rate,
     * so the owner records it here for introspection.
     */
    void setFrequencyMHz(u64 mhz) { _frequencyMHz = mhz; }
    u64 frequencyMHz() const { return _frequencyMHz; }

    /** Domain-local cycle counter (cycles completed so far). */
    Cycle cycle() const { return _cycle; }

    /** Register a box to be clocked with this domain (not owned). */
    void
    addBox(Box* box)
    {
        _boxes.push_back(box);
    }

    const std::vector<Box*>& boxes() const { return _boxes; }

    /** True when this domain advances on master tick @p tick. */
    bool
    ticksAt(u64 tick) const
    {
        return tick % _divider == 0;
    }

    /** Complete one domain cycle. */
    void advance() { ++_cycle; }

    /** Complete @p n domain cycles at once (whole-domain
     * fast-forward: the skipped cycles clock no boxes). */
    void advanceBy(u64 n) { _cycle += n; }

    /**
     * Record whether the last clockDomain() pass skipped every box.
     * Written by the scheduler, read by the simulator's fast-forward
     * check.
     */
    void noteAllIdle(bool idle) { _lastAllIdle = idle; }
    bool lastAllIdle() const { return _lastAllIdle; }

    /** Earliest wakeup scheduled by any box, or Box::NoWake. */
    Cycle
    nextWake() const
    {
        Cycle wake = Box::NoWake;
        for (const Box* box : _boxes)
            wake = std::min(wake, box->nextWake());
        return wake;
    }

    /** True when every box of the domain reports no in-flight work. */
    bool
    allEmpty() const
    {
        for (const Box* box : _boxes) {
            if (!box->empty())
                return false;
        }
        return true;
    }

  private:
    std::string _name;
    u32 _divider;
    u64 _frequencyMHz = 0;
    std::vector<Box*> _boxes;
    Cycle _cycle = 0;
    bool _lastAllIdle = false;
};

} // namespace attila::sim

#endif // ATTILA_SIM_CLOCK_DOMAIN_HH

#include "sim/config_file.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace attila::sim
{

namespace
{

std::string
trim(const std::string& s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

[[noreturn]] void
configError(const std::string& origin, const std::string& msg)
{
    throw ConfigError("config: " + origin + ": " + msg);
}

bool
validKey(const std::string& key)
{
    if (key.empty())
        return false;
    for (char c : key) {
        if (!std::isalnum(static_cast<unsigned char>(c)) &&
            c != '_' && c != '.')
            return false;
    }
    return true;
}

} // anonymous namespace

void
ConfigFile::parseFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        throw ConfigError("config: cannot open '" + path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    parseString(text.str(), path);
}

void
ConfigFile::parseString(const std::string& text,
                        const std::string& name)
{
    std::istringstream in(text);
    std::string line;
    std::string section;
    u32 lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string origin =
            name + ":" + std::to_string(lineNo);
        // Strip comments (a # or ; outside a value's leading text
        // starts one; values themselves never contain either).
        const std::size_t hash = line.find_first_of("#;");
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']') {
                configError(origin, "malformed section header '" +
                                        line + "'");
            }
            section = trim(line.substr(1, line.size() - 2));
            if (!validKey(section)) {
                configError(origin, "malformed section name '" +
                                        section + "'");
            }
            continue;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            configError(origin,
                        "expected 'key = value', got '" + line + "'");
        }
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (!validKey(key)) {
            configError(origin, "malformed key '" + key + "'");
        }
        const std::string full =
            section.empty() ? key : section + "." + key;
        set(full, value, origin);
    }
}

void
ConfigFile::setOverride(const std::string& assignment,
                        const std::string& origin)
{
    const std::size_t eq = assignment.find('=');
    if (eq == std::string::npos) {
        configError(origin, "expected 'section.key=value', got '" +
                                assignment + "'");
    }
    const std::string key = trim(assignment.substr(0, eq));
    const std::string value = trim(assignment.substr(eq + 1));
    if (!validKey(key)) {
        configError(origin, "malformed key '" + key + "'");
    }
    set(key, value, origin);
}

void
ConfigFile::set(const std::string& key, const std::string& value,
                const std::string& origin)
{
    Entry& entry = _entries[key];
    entry.value = value;
    entry.origin = origin;
    entry.consumed = false;
}

bool
ConfigFile::has(const std::string& key) const
{
    return _entries.count(key) != 0;
}

std::vector<std::string>
ConfigFile::keys() const
{
    std::vector<std::string> out;
    out.reserve(_entries.size());
    for (const auto& [key, entry] : _entries)
        out.push_back(key);
    return out;
}

const ConfigFile::Entry*
ConfigFile::find(const std::string& key) const
{
    auto it = _entries.find(key);
    if (it == _entries.end())
        return nullptr;
    // Consumption marking is logically const: it tracks reads, not
    // configuration state.
    const_cast<Entry&>(it->second).consumed = true;
    return &it->second;
}

std::string
ConfigFile::getString(const std::string& key,
                      const std::string& def) const
{
    const Entry* e = find(key);
    return e ? e->value : def;
}

bool
ConfigFile::getBool(const std::string& key, bool def) const
{
    const Entry* e = find(key);
    if (!e)
        return def;
    const std::string& v = e->value;
    if (v == "1" || v == "true" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "off")
        return false;
    configError(e->origin, "key '" + key + "': expected boolean "
                           "(0|1|false|true|off|on), got '" +
                               v + "'");
}

u32
ConfigFile::getU32(const std::string& key, u32 def) const
{
    const u64 v = getU64(key, def);
    if (v > ~u32{0}) {
        const Entry* e = find(key);
        configError(e->origin, "key '" + key + "': value " +
                                   std::to_string(v) +
                                   " exceeds 32 bits");
    }
    return static_cast<u32>(v);
}

u64
ConfigFile::getU64(const std::string& key, u64 def) const
{
    const Entry* e = find(key);
    if (!e)
        return def;
    const std::string& v = e->value;
    u64 result = 0;
    std::size_t pos = 0;
    bool ok = !v.empty();
    if (ok) {
        try {
            result = std::stoull(v, &pos, 0);
        } catch (const std::exception&) {
            ok = false;
        }
    }
    if (!ok || pos != v.size()) {
        configError(e->origin, "key '" + key +
                                   "': expected unsigned integer, "
                                   "got '" +
                                   v + "'");
    }
    return result;
}

void
ConfigFile::failOnUnconsumed(const std::string& what) const
{
    std::vector<std::string> unknown;
    for (const auto& [key, entry] : _entries) {
        if (!entry.consumed) {
            unknown.push_back(entry.origin + ": unknown " + what +
                              " key '" + key + "'");
        }
    }
    if (unknown.empty())
        return;
    std::string msg = "config: ";
    for (std::size_t i = 0; i < unknown.size(); ++i) {
        if (i)
            msg += "\nconfig: ";
        msg += unknown[i];
    }
    throw ConfigError(msg);
}

std::string
ConfigFile::dump() const
{
    // Group by section; std::map ordering makes the dump canonical,
    // so equal configurations produce byte-identical text.
    std::ostringstream out;
    std::string section;
    bool first = true;
    for (const auto& [key, entry] : _entries) {
        const std::size_t dot = key.rfind('.');
        const std::string sec =
            dot == std::string::npos ? "" : key.substr(0, dot);
        const std::string leaf =
            dot == std::string::npos ? key : key.substr(dot + 1);
        if (sec != section || first) {
            if (!first)
                out << "\n";
            out << "[" << sec << "]\n";
            section = sec;
            first = false;
        }
        out << leaf << " = " << entry.value << "\n";
    }
    return out.str();
}

} // namespace attila::sim

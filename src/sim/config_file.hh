/**
 * @file
 * ConfigFile: the text-configuration layer (paper §3: "over 100
 * parameters" — without a rebuild per scenario).
 *
 * The format is the INI-style key=value dialect used by the
 * gpgpu-sim configuration family: `[section]` headers, `key = value`
 * assignments, `#`/`;` comments, blank lines.  Keys are addressed as
 * "section.key".  Values stay strings until a typed accessor
 * converts them; conversion failures and unknown keys are reported
 * with the originating file:line so sweep scripts fail loudly.
 *
 * Layering: a ConfigFile accumulates assignments in application
 * order — file contents first, then environment overrides
 * (ATTILA_CONFIG_SET), then `--set key=value` command-line
 * overrides.  Later assignments shadow earlier ones but keep the
 * earlier origin available for diagnostics.
 *
 * Consumption tracking powers unknown-key detection: every accessor
 * marks its key consumed, and failOnUnconsumed() turns any leftover
 * assignment (a typo, a key from a newer simulator version) into a
 * ConfigError pointing at the offending file:line.
 */

#ifndef ATTILA_SIM_CONFIG_FILE_HH
#define ATTILA_SIM_CONFIG_FILE_HH

#include <map>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace attila::sim
{

/**
 * A configuration error carrying file:line provenance.  Derives from
 * SimError so existing harnesses that contain simulator failures
 * catch configuration failures the same way.
 */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string& msg) : SimError(msg) {}
};

/** Parsed key=value store with provenance and typed accessors. */
class ConfigFile
{
  public:
    /** One assignment as it appeared in the input. */
    struct Entry
    {
        std::string value;
        std::string origin; ///< "file.cfg:12", "--set", "env".
        bool consumed = false;
    };

    /** Parse @p path, layering its assignments over the current
     * contents.  Throws ConfigError on I/O or syntax errors. */
    void parseFile(const std::string& path);

    /** Parse @p text as if it were a file named @p name. */
    void parseString(const std::string& text,
                     const std::string& name = "<config>");

    /**
     * Apply one "section.key=value" override (the `--set` and
     * ATTILA_CONFIG_SET layers).  @p origin tags diagnostics.
     */
    void setOverride(const std::string& assignment,
                     const std::string& origin);

    /** Direct assignment of an already-split key/value pair. */
    void set(const std::string& key, const std::string& value,
             const std::string& origin);

    bool has(const std::string& key) const;

    /** All keys in sorted order (for dumps and diagnostics). */
    std::vector<std::string> keys() const;

    // ===== Typed accessors ========================================
    // Each accessor marks the key consumed; absent keys return the
    // default untouched, so a partial file composes with compiled-in
    // defaults.  Conversion failures throw ConfigError with the
    // assignment's origin.

    std::string getString(const std::string& key,
                          const std::string& def = "") const;
    bool getBool(const std::string& key, bool def = false) const;
    u32 getU32(const std::string& key, u32 def = 0) const;
    u64 getU64(const std::string& key, u64 def = 0) const;

    /** Raw entry lookup (marks consumed); nullptr when absent. */
    const Entry* find(const std::string& key) const;

    /**
     * Throw ConfigError naming every assignment no accessor
     * consumed — the unknown-key diagnostic.  @p what names the
     * consumer ("GpuConfig") in the message.
     */
    void failOnUnconsumed(const std::string& what) const;

    /** Round-trip writer: sorted sections, `key = value` lines. */
    std::string dump() const;

    bool empty() const { return _entries.empty(); }

  private:
    // std::map keeps keys sorted for dump() and deterministic
    // diagnostics; config loading is cold path.
    std::map<std::string, Entry> _entries;
};

} // namespace attila::sim

#endif // ATTILA_SIM_CONFIG_FILE_HH

/**
 * @file
 * DynamicObject: base class for everything that travels through
 * signals.
 *
 * Every object flowing between boxes derives from DynamicObject.  It
 * carries an identifier, a 'color' and a debug info string, plus a
 * cookie trail that associates related objects into a multilevel
 * hierarchy (e.g. a memory access belongs to a fragment which belongs
 * to a triangle which belongs to a batch).  The cookie trail is what
 * the Signal Trace Visualizer uses to follow work through the
 * pipeline.
 */

#ifndef ATTILA_SIM_DYNAMIC_OBJECT_HH
#define ATTILA_SIM_DYNAMIC_OBJECT_HH

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace attila::sim
{

class DynamicObject;

/** Shared ownership handle used when objects travel through signals. */
using DynamicObjectPtr = std::shared_ptr<DynamicObject>;

/**
 * Base class for all objects travelling through signals.
 */
class DynamicObject
{
  public:
    DynamicObject() : _id(nextId()) {}
    DynamicObject(const DynamicObject& other) = default;
    DynamicObject& operator=(const DynamicObject& other) = default;
    virtual ~DynamicObject() = default;

    /** Globally unique object identifier. */
    u64 id() const { return _id; }

    /** Display color used by the Signal Trace Visualizer. */
    u32 color() const { return _color; }
    void setColor(u32 color) { _color = color; }

    /** Free-form debugging text shown in signal traces. */
    const std::string& info() const { return _info; }
    void setInfo(std::string info) { _info = std::move(info); }

    /**
     * Cookie trail: the identifiers of the ancestors of this object,
     * outermost first.  copyTrailFrom() inherits a parent's trail plus
     * the parent's own id, forming the multilevel hierarchy described
     * in the paper.
     */
    const std::vector<u64>& cookies() const { return _cookies; }

    /** Inherit @p parent's cookie trail and append the parent itself. */
    void
    copyTrailFrom(const DynamicObject& parent)
    {
        _cookies = parent._cookies;
        _cookies.push_back(parent._id);
    }

    /** Render the cookie trail as "a.b.c" for trace files. */
    std::string
    trailString() const
    {
        std::string s;
        for (u64 c : _cookies) {
            if (!s.empty())
                s += '.';
            s += std::to_string(c);
        }
        return s;
    }

    /**
     * Reset the base-class state for pool recycling: a recycled
     * object gets a fresh identity (so traces never conflate two
     * logical objects) while the info string and cookie trail keep
     * their heap buffers (clear(), not reallocation).
     */
    void
    resetDynamicState()
    {
        _id = nextId();
        _color = 0;
        _info.clear();
        _cookies.clear();
    }

  private:
    static u64
    nextId()
    {
        static std::atomic<u64> counter{0};
        return counter.fetch_add(1, std::memory_order_relaxed);
    }

    u64 _id;
    u32 _color = 0;
    std::string _info;
    std::vector<u64> _cookies;
};

} // namespace attila::sim

#endif // ATTILA_SIM_DYNAMIC_OBJECT_HH

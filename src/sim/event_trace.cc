#include "sim/event_trace.hh"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <tuple>

#include "sim/logging.hh"

namespace attila::sim
{

namespace
{

/** Globally unique trace serials; 0 is reserved for "empty" TLS
 * entries, so the counter starts at 1. */
u64
nextTraceSerial()
{
    static std::atomic<u64> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

constexpr char kMagic[8] = {'A', 'T', 'E', 'V', 'T', 'R', '0', '1'};

u64
fnv1a(const void* data, std::size_t size, u64 hash = 0xcbf29ce484222325ull)
{
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

} // anonymous namespace

EventTrace::EventTrace() : _serial(nextTraceSerial()) {}

EventTrace::Chunk*
EventTrace::freshChunk()
{
    std::lock_guard<std::mutex> lock(_mutex);
    TlsEntry& entry = tlsEntry(_serial);
    Chunk* chunk;
    if ((_chunks.size() + 1) * kChunkEvents > _limitEvents) {
        // Over the cap: hand this thread the shared discard sentinel
        // (never written — emit() checks the flag before storing).
        static Chunk discardSentinel{{}, true};
        chunk = &discardSentinel;
    } else {
        _chunks.push_back(std::make_unique<Chunk>());
        chunk = _chunks.back().get();
        chunk->events.reserve(kChunkEvents);
    }
    entry.serial = _serial;
    entry.chunk = chunk;
    return chunk;
}

u16
EventTrace::registerName(std::vector<std::string>& table,
                         const std::string& name, const char* what)
{
    std::lock_guard<std::mutex> lock(_mutex);
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (table[i] == name)
            return static_cast<u16>(i);
    }
    if (table.size() >= 0xFFFF)
        fatal("event trace: too many ", what, " registrations (",
              table.size(), ") adding '", name, "'");
    table.push_back(name);
    return static_cast<u16>(table.size() - 1);
}

u16
EventTrace::registerBox(const std::string& name)
{
    return registerName(_boxes, name, "box");
}

u16
EventTrace::registerSignal(const std::string& name)
{
    return registerName(_signals, name, "signal");
}

u16
EventTrace::registerCache(const std::string& name)
{
    return registerName(_caches, name, "cache");
}

u16
EventTrace::registerShader(const std::string& name)
{
    return registerName(_shaders, name, "shader");
}

EventTraceData
EventTrace::collect()
{
    std::lock_guard<std::mutex> lock(_mutex);
    EventTraceData data;
    data.boxes = _boxes;
    data.signals = _signals;
    data.caches = _caches;
    data.shaders = _shaders;
    data.dropped = _dropped.load(std::memory_order_relaxed);
    std::size_t total = 0;
    for (const auto& chunk : _chunks)
        total += chunk->events.size();
    data.events.reserve(total);
    for (auto& chunk : _chunks) {
        data.events.insert(data.events.end(), chunk->events.begin(),
                           chunk->events.end());
        chunk->events.clear();
    }
    // Merge the per-thread chunks into one cycle-ordered stream.  The
    // full-record tie-break makes the result a pure function of the
    // recorded multiset — the thread that happened to record an event
    // leaves no mark on the output.
    std::sort(data.events.begin(), data.events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  return std::tie(a.cycle, a.kind, a.unit, a.id,
                                  a.parent, a.arg) <
                         std::tie(b.cycle, b.kind, b.unit, b.id,
                                  b.parent, b.arg);
              });
    return data;
}

u64
EventTrace::eventCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    u64 total = 0;
    for (const auto& chunk : _chunks)
        total += chunk->events.size();
    return total;
}

// ===== Binary trace files ==========================================

namespace
{

void
writeBytes(std::ofstream& out, const void* data, std::size_t size)
{
    out.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(size));
}

void
writeU32(std::ofstream& out, u32 v)
{
    writeBytes(out, &v, sizeof v);
}

void
writeU64(std::ofstream& out, u64 v)
{
    writeBytes(out, &v, sizeof v);
}

void
writeTable(std::ofstream& out, const std::vector<std::string>& table)
{
    writeU32(out, static_cast<u32>(table.size()));
    for (const std::string& name : table) {
        writeU32(out, static_cast<u32>(name.size()));
        writeBytes(out, name.data(), name.size());
    }
}

/** Checked reader that tracks its offset for diagnostics. */
struct BinaryReader
{
    std::ifstream in;
    const std::string& path;
    u64 offset = 0;

    void
    read(void* data, std::size_t size, const char* what)
    {
        in.read(static_cast<char*>(data),
                static_cast<std::streamsize>(size));
        if (static_cast<std::size_t>(in.gcount()) != size) {
            fatal("event trace: '", path, "': truncated ", what,
                  " at offset ", offset, " (wanted ", size,
                  " bytes, got ", in.gcount(), ")");
        }
        offset += size;
    }

    u32
    readU32(const char* what)
    {
        u32 v;
        read(&v, sizeof v, what);
        return v;
    }

    u64
    readU64(const char* what)
    {
        u64 v;
        read(&v, sizeof v, what);
        return v;
    }

    std::vector<std::string>
    readTable(const char* what)
    {
        const u32 count = readU32(what);
        if (count > (1u << 20))
            fatal("event trace: '", path, "': implausible ", what,
                  " count ", count, " at offset ", offset);
        std::vector<std::string> table;
        table.reserve(count);
        for (u32 i = 0; i < count; ++i) {
            const u32 len = readU32(what);
            if (len > 4096)
                fatal("event trace: '", path, "': implausible ",
                      what, " name length ", len, " at offset ",
                      offset);
            std::string name(len, '\0');
            read(name.data(), len, what);
            table.push_back(std::move(name));
        }
        return table;
    }
};

} // anonymous namespace

void
writeEventTraceBinary(const EventTraceData& data,
                      const std::string& path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("event trace: cannot open '", path, "' for writing");
    writeBytes(out, kMagic, sizeof kMagic);
    writeTable(out, data.boxes);
    writeTable(out, data.signals);
    writeTable(out, data.caches);
    writeTable(out, data.shaders);
    writeU64(out, data.dropped);
    writeU64(out, static_cast<u64>(data.events.size()));
    writeBytes(out, data.events.data(),
               data.events.size() * sizeof(TraceEvent));
    writeU64(out, fnv1a(data.events.data(),
                        data.events.size() * sizeof(TraceEvent)));
    if (!out)
        fatal("event trace: write error on '", path, "'");
}

EventTraceData
readEventTraceBinary(const std::string& path)
{
    BinaryReader reader{std::ifstream(path, std::ios::binary), path};
    if (!reader.in)
        fatal("event trace: cannot open '", path, "' for reading");

    char magic[sizeof kMagic];
    reader.read(magic, sizeof magic, "magic");
    if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
        fatal("event trace: '", path,
              "': bad magic (not an .evtrace file, or an "
              "incompatible version)");

    EventTraceData data;
    data.boxes = reader.readTable("box table");
    data.signals = reader.readTable("signal table");
    data.caches = reader.readTable("cache table");
    data.shaders = reader.readTable("shader table");
    data.dropped = reader.readU64("dropped count");
    const u64 count = reader.readU64("event count");
    if (count > (u64{1} << 32))
        fatal("event trace: '", path, "': implausible event count ",
              count, " at offset ", reader.offset);
    data.events.resize(count);
    reader.read(data.events.data(), count * sizeof(TraceEvent),
                "events");
    const u64 checksum = reader.readU64("checksum");
    const u64 computed =
        fnv1a(data.events.data(), count * sizeof(TraceEvent));
    if (checksum != computed)
        fatal("event trace: '", path, "': checksum mismatch (file ",
              checksum, ", computed ", computed,
              ") — the trace is corrupt");
    return data;
}

} // namespace attila::sim

/**
 * @file
 * EventTrace: low-overhead structured binary event recording.
 *
 * Where the text signal trace (sim/signal_trace.hh) pays a mutex and
 * an ofstream per record — and therefore forces the serial scheduler
 * — the event trace records fixed-size 32-byte events into per-thread
 * chunks with no lock on the hot path.  Workers under the partitioned
 * parallel scheduler each append to their own chunk; collect() merges
 * the chunks and sorts by cycle, so the trace works identically under
 * serial and parallel clocking.
 *
 * Four event families are recorded:
 *  - box activity spans (SpanBegin/SpanEnd) from the scheduler's
 *    clock/skip decisions — unit utilization timelines;
 *  - signal occupancy (SignalWrite), one event per object published
 *    into a wire, carrying the object's id and parent cookie so the
 *    fragment→triangle→batch lineage survives into the trace;
 *  - cache transactions (CacheHit/CacheMiss) from the framebuffer and
 *    texture caches;
 *  - shader thread-slot lifecycles (ThreadBegin/ThreadEnd).
 *
 * The whole facility compiles out when ATTILA_TRACE_EVENTS is defined
 * to 0 (hook sites are `if constexpr` guarded), and costs one
 * predictable null-check per hook when compiled in but disabled.
 * Recording never mutates model state, so cycles, statistics and
 * framebuffer contents are bit-identical with tracing on or off.
 */

#ifndef ATTILA_SIM_EVENT_TRACE_HH
#define ATTILA_SIM_EVENT_TRACE_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/dynamic_object.hh"
#include "sim/types.hh"

/** Compile-time master switch; define to 0 to compile every hook
 * site out of the model entirely. */
#ifndef ATTILA_TRACE_EVENTS
#define ATTILA_TRACE_EVENTS 1
#endif

namespace attila::sim
{

/** True when the event-trace hook sites are compiled in. */
inline constexpr bool kEventTraceCompiled = ATTILA_TRACE_EVENTS != 0;

/** Sentinel for "no object id / no parent". */
inline constexpr u64 kNoTraceId = ~u64{0};

/** Event type discriminator (u16 in the record). */
enum class EventKind : u16 {
    SpanBegin = 1,  ///< Box becomes active; unit = box id.
    SpanEnd = 2,    ///< Box goes idle; cycle is exclusive span end.
    SignalWrite = 3, ///< Object published into a wire; unit = signal.
    CacheHit = 4,   ///< Cache access hit; unit = cache, arg = address.
    CacheMiss = 5,  ///< Fresh cache miss; unit = cache, arg = address.
    ThreadBegin = 6, ///< Shader thread slot allocated; arg = slot.
    ThreadEnd = 7,  ///< Shader thread slot retired; arg = slot.
};

/**
 * One recorded event.  Fixed 32-byte POD so chunks are cache-friendly
 * and the binary file format is a raw dump.
 */
struct TraceEvent
{
    u64 cycle;  ///< Domain cycle of the event.
    u64 id;     ///< DynamicObject id (kNoTraceId when not applicable).
    u64 parent; ///< Innermost ancestor cookie (kNoTraceId when root).
    u32 arg;    ///< Kind-specific payload (color, address, slot).
    u16 unit;   ///< Registered unit id (box / signal / cache / shader).
    u16 kind;   ///< EventKind.
};

static_assert(sizeof(TraceEvent) == 32,
              "TraceEvent must stay a packed 32-byte record");

/** Innermost ancestor cookie of @p obj, or kNoTraceId for roots. */
inline u64
traceParentOf(const DynamicObject& obj)
{
    return obj.cookies().empty() ? kNoTraceId : obj.cookies().back();
}

/**
 * A merged, self-describing snapshot of a trace: the four unit name
 * tables (indexed by TraceEvent::unit) and the events sorted by
 * cycle.  This is what the binary file stores and what the exporter
 * and aggregator consume.
 */
struct EventTraceData
{
    std::vector<std::string> boxes;
    std::vector<std::string> signals;
    std::vector<std::string> caches;
    std::vector<std::string> shaders;
    std::vector<TraceEvent> events;
    u64 dropped = 0; ///< Events discarded by an event limit.
};

/**
 * The recording sink.  Unit name registration and collect() run on
 * the simulator thread (enable time / between cycles); emit() may run
 * from any worker thread concurrently with other emitters, never
 * concurrently with collect().  The scheduler's end-of-cycle barrier
 * provides that separation for free.
 */
class EventTrace
{
  public:
    /** Events per per-thread chunk (256 KiB of records). */
    static constexpr std::size_t kChunkEvents = 8192;

    EventTrace();
    ~EventTrace() = default;

    EventTrace(const EventTrace&) = delete;
    EventTrace& operator=(const EventTrace&) = delete;

    // ===== Unit registration (sim thread) ==========================

    /** Register a box name; returns the id used in span events. */
    u16 registerBox(const std::string& name);
    /** Register a signal name; returns the id for SignalWrite. */
    u16 registerSignal(const std::string& name);
    /** Register a cache name; returns the id for CacheHit/Miss. */
    u16 registerCache(const std::string& name);
    /** Register a shader name; returns the id for ThreadBegin/End. */
    u16 registerShader(const std::string& name);

    // ===== Recording (any thread) ==================================

    /**
     * Append one event to the calling thread's chunk.  Lock-free on
     * the hot path: the chunk is owned by this thread until collect()
     * runs, and collect() only runs when no emitter is active.
     */
    void
    emit(EventKind kind, Cycle cycle, u16 unit, u32 arg = 0,
         u64 id = kNoTraceId, u64 parent = kNoTraceId)
    {
        Chunk* chunk = cachedChunk();
        if (!chunk || chunk->events.size() >= kChunkEvents)
            [[unlikely]]
            chunk = freshChunk();
        if (chunk->discard) [[unlikely]] {
            _dropped.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        chunk->events.push_back({cycle, id, parent, arg, unit,
                                 static_cast<u16>(kind)});
    }

    /**
     * Cap the number of retained events; once every chunk slot is
     * spoken for, further emits are counted in dropped() and thrown
     * away (rounded up to whole chunks).  Default: unlimited.
     */
    void setEventLimit(u64 limit) { _limitEvents = limit; }

    // ===== Collection (sim thread, no concurrent emitters) =========

    /**
     * Merge every thread's chunk into one snapshot sorted by cycle
     * (ties broken on kind/unit/id so the result is a deterministic
     * function of the recorded multiset, independent of thread
     * interleaving).  Drains the chunks; recording may continue
     * afterwards into fresh chunks.
     */
    EventTraceData collect();

    /** Events currently buffered across all chunks. */
    u64 eventCount() const;

    /** Events discarded because of the event limit. */
    u64 dropped() const
    {
        return _dropped.load(std::memory_order_relaxed);
    }

  private:
    struct Chunk
    {
        std::vector<TraceEvent> events;
        bool discard = false;
    };

    /** TLS chunk-cache associativity (power of two). */
    static constexpr std::size_t kTlsWays = 8;

    struct TlsEntry
    {
        u64 serial = 0; ///< 0 = empty (live serials start at 1).
        Chunk* chunk = nullptr;
    };

    /**
     * Per-thread chunk cache, keyed by the trace's globally unique
     * serial so entries from a destroyed (or merely different)
     * EventTrace can never alias this one.  Direct-mapped: a
     * collision between two live traces just re-acquires a chunk.
     */
    static TlsEntry&
    tlsEntry(u64 serial)
    {
        thread_local TlsEntry entries[kTlsWays];
        return entries[serial & (kTlsWays - 1)];
    }

    Chunk*
    cachedChunk() const
    {
        const TlsEntry& entry = tlsEntry(_serial);
        return entry.serial == _serial ? entry.chunk : nullptr;
    }

    /** Slow path: allocate (or hand out the discard sentinel) and
     * cache a chunk for the calling thread. */
    Chunk* freshChunk();

    u16 registerName(std::vector<std::string>& table,
                     const std::string& name, const char* what);

    const u64 _serial;
    mutable std::mutex _mutex;
    std::vector<std::unique_ptr<Chunk>> _chunks;
    std::vector<std::string> _boxes;
    std::vector<std::string> _signals;
    std::vector<std::string> _caches;
    std::vector<std::string> _shaders;
    u64 _limitEvents = ~u64{0};
    std::atomic<u64> _dropped{0};
};

// ===== Binary trace files ==========================================

/**
 * Write @p data as an .evtrace binary file: a magic/version header,
 * the four name tables, the raw 32-byte events and a trailing FNV-1a
 * checksum.  Throws FatalError on I/O failure.
 */
void writeEventTraceBinary(const EventTraceData& data,
                           const std::string& path);

/**
 * Parse an .evtrace file back.  Corrupt input (bad magic, truncated
 * tables or events, checksum mismatch) is a diagnostic FatalError
 * naming the file and offset, never a raw exception or a crash.
 */
EventTraceData readEventTraceBinary(const std::string& path);

} // namespace attila::sim

#endif // ATTILA_SIM_EVENT_TRACE_HH

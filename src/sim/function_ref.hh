/**
 * @file
 * FunctionRef: a non-owning, trivially copyable reference to a
 * callable — the hot-path replacement for std::function members and
 * parameters (ImmediateSampler, TileVisitor, hzHook).
 *
 * A FunctionRef is two words: an opaque context pointer and a plain
 * function pointer that casts the context back and invokes it.
 * Calling through one costs a single indirect call — no heap
 * allocation, no virtual dispatch, no small-buffer copies.
 *
 * LIFETIME CONTRACT: a FunctionRef does NOT extend the life of the
 * callable it refers to.  Never bind one to a temporary whose full
 * expression ends before the last call (e.g. assigning a lambda
 * directly to a FunctionRef member).  Name the lambda first:
 *
 *     auto onTile = [&](s32 x, s32 y) { ... };
 *     traverse(tri, size, onTile);            // OK: outlives the call
 *
 *     member = [this](u32 i, f32 z) { ... };  // WRONG: dangles
 */

#ifndef ATTILA_SIM_FUNCTION_REF_HH
#define ATTILA_SIM_FUNCTION_REF_HH

#include <type_traits>
#include <utility>

namespace attila::sim
{

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)>
{
  public:
    constexpr FunctionRef() = default;
    constexpr FunctionRef(std::nullptr_t) {}

    /** Bind to any callable lvalue (or named const lambda).  The
     * referenced object must outlive every call — see the lifetime
     * contract above. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>
                  && std::is_invocable_r_v<R, F&, Args...>>>
    constexpr FunctionRef(F&& f)
        : _ctx(const_cast<void*>(
              static_cast<const void*>(std::addressof(f)))),
          _call([](void* ctx, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F>*>(
                  ctx))(std::forward<Args>(args)...);
          })
    {}

    R
    operator()(Args... args) const
    {
        return _call(_ctx, std::forward<Args>(args)...);
    }

    constexpr explicit
    operator bool() const
    {
        return _call != nullptr;
    }

  private:
    void* _ctx = nullptr;
    R (*_call)(void*, Args...) = nullptr;
};

} // namespace attila::sim

#endif // ATTILA_SIM_FUNCTION_REF_HH

/**
 * @file
 * Error and status reporting helpers.
 *
 * Follows gem5 semantics: panic() is for internal simulator bugs
 * (conditions that should never happen regardless of user input),
 * fatal() is for user/configuration errors.  Both are implemented as
 * exceptions so that a host application (or a unit test) can contain
 * the failure; the distinction is preserved in the exception type.
 * The paper's signal verification checks ("may terminate the
 * simulator, for example when bandwidth is exceeded or data is
 * lost") map onto panic()/SimError.
 */

#ifndef ATTILA_SIM_LOGGING_HH
#define ATTILA_SIM_LOGGING_HH

#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace attila
{

/** Thrown by panic(): an internal simulator invariant was violated. */
class SimError : public std::runtime_error
{
  public:
    explicit SimError(const std::string& msg) : std::runtime_error(msg) {}
};

/** Thrown by fatal(): the simulation cannot continue due to a user or
 * configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

namespace detail
{

/** Concatenate any streamable arguments into a single string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/**
 * Report an internal simulator bug and abort the simulation by
 * throwing SimError.
 */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    throw SimError(detail::concat("panic: ",
                                  std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user/configuration error by throwing
 * FatalError.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    throw FatalError(detail::concat("fatal: ",
                                    std::forward<Args>(args)...));
}

/** Warn the user about questionable but survivable behaviour. */
template <typename... Args>
void
warn(Args&&... args)
{
    std::cerr << "warn: " << detail::concat(std::forward<Args>(args)...)
              << '\n';
}

/** Informative status message. */
template <typename... Args>
void
inform(Args&&... args)
{
    std::cerr << "info: " << detail::concat(std::forward<Args>(args)...)
              << '\n';
}

} // namespace attila

#endif // ATTILA_SIM_LOGGING_HH

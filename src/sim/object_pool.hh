/**
 * @file
 * ObjectPool: cheap creation and destruction of DynamicObjects.
 *
 * This is the OptimizedMemory facility of the paper expressed with
 * RAII: acquire() hands out shared_ptr<T> whose deleter recycles the
 * storage into a freelist instead of returning it to the heap.  Boxes
 * that create millions of short-lived fragments per second use a pool
 * to avoid allocator churn.
 *
 * The freelist is sharded per thread: each thread owns one shard
 * (indexed by a process-wide thread slot) that only it pushes to and
 * pops from, so the common acquire/release path takes no lock and
 * touches no shared cache line.  An object acquired on one thread
 * and released on another simply migrates to the releasing thread's
 * shard.  Threads beyond the shard count (and shard refills) fall
 * back to a mutex-protected overflow list.  Handing an object
 * between threads is always synchronized externally — by the signal
 * phase barrier in the simulator, or by the shared_ptr refcount for
 * the final release — so shard contents never race.
 */

#ifndef ATTILA_SIM_OBJECT_POOL_HH
#define ATTILA_SIM_OBJECT_POOL_HH

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace attila::sim
{

/**
 * Freelist-backed pool for objects of type T.
 *
 * The pool must outlive every object it hands out; objects released
 * after the pool is destroyed are freed normally (the recycling
 * deleter keeps the freelists alive until the last object dies).
 */
template <typename T>
class ObjectPool
{
  public:
    ObjectPool() : _state(std::make_shared<State>()) {}

    /** Construct (or recycle) an object. */
    template <typename... Args>
    std::shared_ptr<T>
    acquire(Args&&... args)
    {
        auto& st = *_state;
        T* raw = nullptr;
        const u32 slot = threadSlot();
        if (slot < kShards) {
            Shard& shard = st.shards[slot];
            if (!shard.free.empty()) {
                raw = shard.free.back();
                shard.free.pop_back();
                shard.count.store(shard.free.size(),
                                  std::memory_order_relaxed);
            } else if (st.overflowCount.load(
                           std::memory_order_relaxed) != 0) {
                raw = st.popOverflow();
            }
        } else {
            raw = st.popOverflow();
        }
        if (raw) {
            st.recycled.fetch_add(1, std::memory_order_relaxed);
            // Types with a poolReset() keep their heap buffers
            // (payload vectors, strings) across recycling; everything
            // else re-runs the constructor in place.
            if constexpr (sizeof...(Args) == 0 &&
                          requires(T& t) { t.poolReset(); }) {
                raw->poolReset();
            } else {
                raw->~T();
                new (raw) T(std::forward<Args>(args)...);
            }
        } else {
            st.allocated.fetch_add(1, std::memory_order_relaxed);
            raw = static_cast<T*>(::operator new(sizeof(T)));
            new (raw) T(std::forward<Args>(args)...);
        }
        // The deleter holds the state alive, so a release after the
        // pool object itself is gone still just parks the storage
        // (freed when the last outstanding object dies).
        return std::shared_ptr<T>(raw, [st = _state](T* p) {
            const u32 s = threadSlot();
            if (s < kShards) {
                Shard& shard = st->shards[s];
                shard.free.push_back(p);
                shard.count.store(shard.free.size(),
                                  std::memory_order_relaxed);
            } else {
                std::lock_guard<std::mutex> lock(st->overflowMutex);
                st->overflow.push_back(p);
                st->overflowCount.store(
                    st->overflow.size(), std::memory_order_relaxed);
            }
        });
    }

    // Counter accessors use relaxed atomics so reporting while the
    // simulation is running never contends with the hot path.  They
    // are exact whenever the pool is quiesced (between runs);
    // freeCount() may transiently lag a concurrent push/pop.

    /** Total number of raw allocations performed. */
    u64
    allocated() const
    {
        return _state->allocated.load(std::memory_order_relaxed);
    }
    /** Number of acquisitions served from a freelist. */
    u64
    recycled() const
    {
        return _state->recycled.load(std::memory_order_relaxed);
    }
    /** Number of objects currently parked across all freelists. */
    std::size_t
    freeCount() const
    {
        std::size_t total = _state->overflowCount.load(
            std::memory_order_relaxed);
        for (const Shard& shard : _state->shards)
            total += shard.count.load(std::memory_order_relaxed);
        return total;
    }

  private:
    static constexpr u32 kShards = 8;

    /** Per-thread freelist; `free` is touched only by the owning
     * thread, `count` mirrors its size for freeCount(). */
    struct alignas(64) Shard
    {
        std::vector<T*> free;
        std::atomic<std::size_t> count{0};
    };

    struct State
    {
        ~State()
        {
            for (Shard& shard : shards) {
                for (T* p : shard.free) {
                    p->~T();
                    ::operator delete(p);
                }
            }
            for (T* p : overflow) {
                p->~T();
                ::operator delete(p);
            }
        }

        T*
        popOverflow()
        {
            std::lock_guard<std::mutex> lock(overflowMutex);
            if (overflow.empty())
                return nullptr;
            T* p = overflow.back();
            overflow.pop_back();
            overflowCount.store(overflow.size(),
                                std::memory_order_relaxed);
            return p;
        }

        std::array<Shard, kShards> shards;
        std::mutex overflowMutex;
        std::vector<T*> overflow;
        std::atomic<std::size_t> overflowCount{0};
        std::atomic<u64> allocated{0};
        std::atomic<u64> recycled{0};
    };

    /**
     * Process-wide thread slot: the first kShards distinct threads
     * that touch any pool each get a dedicated shard index; later
     * threads share the overflow path.  (Slots are never reused, so
     * a shard belongs to exactly one thread for the process
     * lifetime.)
     */
    static u32
    threadSlot()
    {
        static std::atomic<u32> next{0};
        thread_local const u32 slot =
            next.fetch_add(1, std::memory_order_relaxed);
        return slot;
    }

    std::shared_ptr<State> _state;
};

} // namespace attila::sim

#endif // ATTILA_SIM_OBJECT_POOL_HH

/**
 * @file
 * ObjectPool: cheap creation and destruction of DynamicObjects.
 *
 * This is the OptimizedMemory facility of the paper expressed with
 * RAII: acquire() hands out shared_ptr<T> whose deleter recycles the
 * storage into a freelist instead of returning it to the heap.  Boxes
 * that create millions of short-lived fragments per second use a pool
 * to avoid allocator churn.
 */

#ifndef ATTILA_SIM_OBJECT_POOL_HH
#define ATTILA_SIM_OBJECT_POOL_HH

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace attila::sim
{

/**
 * Freelist-backed pool for objects of type T.
 *
 * The pool must outlive every object it hands out; objects released
 * after the pool is destroyed are freed normally.
 */
template <typename T>
class ObjectPool
{
  public:
    ObjectPool() : _state(std::make_shared<State>()) {}

    /** Construct (or recycle) an object. */
    template <typename... Args>
    std::shared_ptr<T>
    acquire(Args&&... args)
    {
        auto& st = *_state;
        T* raw = nullptr;
        {
            // An object acquired by one box may be released from
            // another box's worker thread (e.g. credits travelling
            // through signals), so the freelist is locked.
            std::lock_guard<std::mutex> lock(st.mutex);
            if (!st.free.empty()) {
                raw = st.free.back();
                st.free.pop_back();
                ++st.recycled;
            } else {
                ++st.allocated;
            }
        }
        if (raw) {
            // Re-run the constructor in place on recycled storage.
            raw->~T();
            new (raw) T(std::forward<Args>(args)...);
        } else {
            raw = static_cast<T*>(::operator new(sizeof(T)));
            new (raw) T(std::forward<Args>(args)...);
        }
        // The deleter holds the state alive, so a release after the
        // pool object itself is gone still just parks the storage
        // (freed when the last outstanding object dies).
        return std::shared_ptr<T>(raw, [st = _state](T* p) {
            std::lock_guard<std::mutex> lock(st->mutex);
            st->free.push_back(p);
        });
    }

    /** Total number of raw allocations performed. */
    u64
    allocated() const
    {
        std::lock_guard<std::mutex> lock(_state->mutex);
        return _state->allocated;
    }
    /** Number of acquisitions served from the freelist. */
    u64
    recycled() const
    {
        std::lock_guard<std::mutex> lock(_state->mutex);
        return _state->recycled;
    }
    /** Number of objects currently sitting in the freelist. */
    std::size_t
    freeCount() const
    {
        std::lock_guard<std::mutex> lock(_state->mutex);
        return _state->free.size();
    }

  private:
    struct State
    {
        ~State()
        {
            for (T* p : free) {
                p->~T();
                ::operator delete(p);
            }
        }

        mutable std::mutex mutex;
        std::vector<T*> free;
        u64 allocated = 0;
        u64 recycled = 0;
    };

    std::shared_ptr<State> _state;
};

} // namespace attila::sim

#endif // ATTILA_SIM_OBJECT_POOL_HH

/**
 * @file
 * outPath: route generated artifacts (.ppm images, .csv stats,
 * .sigtrace dumps) into an out/ directory under the current working
 * directory instead of littering the repository root.
 */

#ifndef ATTILA_SIM_OUT_DIR_HH
#define ATTILA_SIM_OUT_DIR_HH

#include <filesystem>
#include <string>

namespace attila::sim
{

/** Return "out/<name>", creating the out/ directory on first use.
 * Falls back to @p name unchanged if the directory cannot be
 * created (e.g. read-only cwd). */
inline std::string
outPath(const std::string& name)
{
    std::error_code ec;
    std::filesystem::create_directories("out", ec);
    if (ec && !std::filesystem::is_directory("out"))
        return name;
    return (std::filesystem::path("out") / name).string();
}

} // namespace attila::sim

#endif // ATTILA_SIM_OUT_DIR_HH

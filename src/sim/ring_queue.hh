/**
 * @file
 * RingQueue: a power-of-two circular FIFO used on simulator hot
 * paths in place of std::deque.
 *
 * std::deque allocates and frees its block map nodes as elements
 * cross block boundaries, so a steady-state producer/consumer pair
 * still churns the allocator.  RingQueue keeps one contiguous
 * buffer that only grows (doubling) when the population exceeds the
 * current capacity; after warm-up, push/pop are index arithmetic
 * with no allocation.  Element order and FIFO semantics match the
 * deque usage it replaces.
 */

#ifndef ATTILA_SIM_RING_QUEUE_HH
#define ATTILA_SIM_RING_QUEUE_HH

#include <utility>
#include <vector>

#include "sim/types.hh"

namespace attila::sim
{

/** Growable circular FIFO with allocation-free steady state. */
template <typename T>
class RingQueue
{
  public:
    explicit RingQueue(std::size_t initial_capacity = 8)
    {
        reserve(initial_capacity);
    }

    bool empty() const { return _count == 0; }
    std::size_t size() const { return _count; }
    std::size_t capacity() const { return _slots.size(); }

    T& front() { return _slots[_head]; }
    const T& front() const { return _slots[_head]; }

    /** Element @p i positions behind the head (0 == front). */
    T& at(std::size_t i) { return _slots[(_head + i) & _mask]; }
    const T&
    at(std::size_t i) const
    {
        return _slots[(_head + i) & _mask];
    }

    void
    push_back(T value)
    {
        if (_count == _slots.size())
            grow();
        _slots[(_head + _count) & _mask] = std::move(value);
        ++_count;
    }

    T
    pop_front()
    {
        T value = std::move(_slots[_head]);
        _slots[_head] = T{};
        _head = (_head + 1) & _mask;
        --_count;
        return value;
    }

    /**
     * Remove the element @p i positions behind the head, preserving
     * the order of the rest (the FR-FCFS scheduler extracts row
     * hits from the middle of the pending ring).  O(i) element
     * moves; callers scan bounded windows from the front.
     */
    T
    remove_at(std::size_t i)
    {
        T value = std::move(at(i));
        for (; i > 0; --i)
            at(i) = std::move(at(i - 1));
        pop_front();
        return value;
    }

    /** Drop every element; capacity is retained. */
    void
    clear()
    {
        while (_count != 0)
            pop_front();
        _head = 0;
    }

  private:
    void
    reserve(std::size_t capacity)
    {
        std::size_t pow2 = 1;
        while (pow2 < capacity)
            pow2 <<= 1;
        _slots.resize(pow2);
        _mask = pow2 - 1;
    }

    void
    grow()
    {
        std::vector<T> bigger(_slots.size() * 2);
        for (std::size_t i = 0; i < _count; ++i)
            bigger[i] = std::move(_slots[(_head + i) & _mask]);
        _slots = std::move(bigger);
        _mask = _slots.size() - 1;
        _head = 0;
    }

    std::vector<T> _slots;
    std::size_t _mask = 0;
    std::size_t _head = 0;
    std::size_t _count = 0;
};

} // namespace attila::sim

#endif // ATTILA_SIM_RING_QUEUE_HH

#include "sim/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/box.hh"
#include "sim/logging.hh"

namespace attila::sim
{

namespace
{

/**
 * One worker's share of a clock domain: a cluster of boxes chosen so
 * that the heaviest signal edges stay internal.  The per-cycle fields
 * (active list, cursor, update counter) are reset by the simulator
 * thread before each dispatch; the atomics live on their own cache
 * lines because they are the only words hammered cross-thread.
 */
struct Partition
{
    /** Member boxes in canonical (registration) order. */
    std::vector<Box*> boxes;
    /** Global box index of boxes[i]; for error attribution. */
    std::vector<u32> indices;
    /** This cycle's non-skipped members, as offsets into boxes. */
    std::vector<u32> active;
    /** Next active entry to update; thieves fetch_add past the end
     * harmlessly. */
    alignas(64) std::atomic<u32> cursor{0};
    /** Updates still outstanding this cycle (stolen ones included);
     * the owner may only commit once this hits zero. */
    alignas(64) std::atomic<u32> updatesLeft{0};
};

/** Cached per-domain execution plan. */
struct Plan
{
    const ClockDomain* domain = nullptr;
    std::size_t boxCount = 0;
    /** Box index -> partition index. */
    std::vector<u32> partitionOf;
    /** Box index -> offset inside its partition's boxes vector. */
    std::vector<u32> offsetOf;
    /** deque: Partition holds atomics and must never relocate. */
    std::deque<Partition> parts;
    /** Signals whose writer and reader land in different
     * partitions (the edge cut). */
    u32 crossSignals = 0;
};

/**
 * Build the execution plan for @p domain: recover the box
 * connectivity graph from the registered signal wiring, cluster it
 * greedily so the heaviest edges stay partition-internal, and place
 * the clusters on min(threads, boxes) partitions longest-first.
 * Fully deterministic: ties break towards the lowest box index at
 * every step, so the same graph always yields the same partitions.
 */
void
buildPlan(Plan& plan, ClockDomain& domain, u32 threads,
          u32 slackPercent)
{
    const auto& boxes = domain.boxes();
    const u32 n = static_cast<u32>(boxes.size());
    const u32 partCount = std::min(threads, std::max(1u, n));

    plan.domain = &domain;
    plan.boxCount = n;
    plan.partitionOf.assign(n, 0);
    plan.offsetOf.assign(n, 0);
    plan.parts.clear();
    for (u32 p = 0; p < partCount; ++p)
        plan.parts.emplace_back();
    plan.crossSignals = 0;
    if (n == 0)
        return;

    // Reader lookup: the binder enforces a single reader per signal,
    // so each box's registered inputs invert into a signal -> reader
    // map.  Signals whose reader lives outside this domain simply
    // contribute no edge.
    std::unordered_map<const Signal*, u32> readerOf;
    for (u32 i = 0; i < n; ++i) {
        for (const Signal* s : boxes[i]->inputSignals())
            readerOf.emplace(s, i);
    }

    // Box-pair edge weights: the modelled per-cycle traffic capacity
    // (sum of signal bandwidths) between the two boxes, both
    // directions folded into one undirected edge.
    std::map<std::pair<u32, u32>, u64> edges;
    for (u32 i = 0; i < n; ++i) {
        for (const Signal* s : boxes[i]->outputSignals()) {
            auto it = readerOf.find(s);
            if (it == readerOf.end() || it->second == i)
                continue;
            const u32 j = it->second;
            edges[{std::min(i, j), std::max(i, j)}] += s->bandwidth();
        }
    }

    // Greedy agglomerative clustering.  Every box starts as its own
    // cluster; repeatedly merge the heaviest-edge cluster pair whose
    // merged size respects the balance cap.  A cluster's id is its
    // lowest member box index (merges keep the smaller id), which
    // makes the tie-break "lowest id pair wins" well-defined.
    const u32 ideal = (n + partCount - 1) / partCount;
    const u32 cap = std::max<u32>(
        1, static_cast<u32>(static_cast<u64>(ideal) * slackPercent /
                            100));

    std::vector<u32> clusterOf(n);
    std::vector<u32> clusterSize(n, 1);
    std::vector<bool> alive(n, true);
    for (u32 i = 0; i < n; ++i)
        clusterOf[i] = i;
    u32 aliveCount = n;

    while (aliveCount > partCount) {
        // Re-accumulate cluster-pair weights from the box edges; the
        // graph is pipeline-sized, so the rescan is trivial.
        std::map<std::pair<u32, u32>, u64> cw;
        for (const auto& [pair, weight] : edges) {
            u32 a = clusterOf[pair.first];
            u32 b = clusterOf[pair.second];
            if (a == b)
                continue;
            cw[{std::min(a, b), std::max(a, b)}] += weight;
        }
        bool merged = false;
        std::pair<u32, u32> best{0, 0};
        u64 bestWeight = 0;
        for (const auto& [pair, weight] : cw) {
            if (clusterSize[pair.first] + clusterSize[pair.second] >
                cap) {
                continue;
            }
            // Strict > : equal weights keep the earlier (lower id)
            // pair thanks to std::map iteration order.
            if (!merged || weight > bestWeight) {
                merged = true;
                best = pair;
                bestWeight = weight;
            }
        }
        if (!merged)
            break;
        for (u32 i = 0; i < n; ++i) {
            if (clusterOf[i] == best.second)
                clusterOf[i] = best.first;
        }
        clusterSize[best.first] += clusterSize[best.second];
        alive[best.second] = false;
        --aliveCount;
    }

    // Place clusters on partitions longest-processing-time first:
    // biggest cluster to the least-loaded partition.  Deterministic
    // ties again: equal sizes order by cluster id, equal loads pick
    // the lowest partition index.
    std::vector<u32> order;
    for (u32 c = 0; c < n; ++c) {
        if (alive[c])
            order.push_back(c);
    }
    std::sort(order.begin(), order.end(), [&](u32 a, u32 b) {
        if (clusterSize[a] != clusterSize[b])
            return clusterSize[a] > clusterSize[b];
        return a < b;
    });
    std::vector<u32> load(partCount, 0);
    std::vector<u32> partitionOfCluster(n, 0);
    for (u32 c : order) {
        u32 target = 0;
        for (u32 p = 1; p < partCount; ++p) {
            if (load[p] < load[target])
                target = p;
        }
        partitionOfCluster[c] = target;
        load[target] += clusterSize[c];
    }

    for (u32 i = 0; i < n; ++i)
        plan.partitionOf[i] = partitionOfCluster[clusterOf[i]];

    // Fill the partitions in canonical box order; the offset table
    // lets the per-cycle skip pass append to active lists in O(1).
    for (u32 i = 0; i < n; ++i) {
        Partition& part = plan.parts[plan.partitionOf[i]];
        plan.offsetOf[i] = static_cast<u32>(part.boxes.size());
        part.boxes.push_back(boxes[i]);
        part.indices.push_back(i);
        part.active.reserve(part.boxes.size());
    }

    for (u32 i = 0; i < n; ++i) {
        for (const Signal* s : boxes[i]->outputSignals()) {
            auto it = readerOf.find(s);
            if (it == readerOf.end())
                continue;
            if (plan.partitionOf[i] != plan.partitionOf[it->second])
                ++plan.crossSignals;
        }
    }
}

} // namespace

/**
 * Shared state between the simulator thread and the worker pool.
 *
 * One job per dispatched cycle (quiescent and single-partition
 * cycles never reach the pool): the simulator thread publishes the
 * job with a generation bump, acts as worker 0 itself, and the whole
 * pool joins one end-of-cycle barrier.  Inside the job, phase A is a
 * cursor race over each partition's active list (with stealing) and
 * phase B is each owner committing its own partition in canonical
 * order once its update counter drains.
 */
struct ParallelScheduler::Impl
{
    Impl(u32 thread_count, bool steal, u32 slack)
        : threads(thread_count), workSteal(steal),
          slackPercent(std::max(100u, slack))
    {
        // The simulator thread is worker 0; the pool provides the
        // other threads - 1.
        workers.reserve(threads - 1);
        for (u32 w = 1; w < threads; ++w)
            workers.emplace_back([this, w] { workerMain(w); });
    }

    ~Impl()
    {
        {
            std::lock_guard<std::mutex> lock(wakeMutex);
            stop.store(true, std::memory_order_relaxed);
        }
        wakeCv.notify_all();
        for (std::thread& t : workers)
            t.join();
    }

    /** Find (or build) the cached plan for @p domain. */
    Plan&
    planFor(ClockDomain& domain)
    {
        for (auto& plan : plans) {
            if (plan->domain == &domain) {
                if (plan->boxCount != domain.boxes().size())
                    buildPlan(*plan, domain, threads, slackPercent);
                return *plan;
            }
        }
        plans.push_back(std::make_unique<Plan>());
        buildPlan(*plans.back(), domain, threads, slackPercent);
        return *plans.back();
    }

    void
    recordError(int phase_rank, u32 box_index)
    {
        std::lock_guard<std::mutex> lock(errorMutex);
        errors.push_back(
            {phase_rank, box_index, std::current_exception()});
    }

    /**
     * Rethrow the earliest failure: lowest phase, then lowest box
     * index — the error the serial engine would have hit first.
     */
    void
    rethrowFirstError()
    {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (errors.empty())
            return;
        auto it = std::min_element(
            errors.begin(), errors.end(),
            [](const ErrorRecord& a, const ErrorRecord& b) {
                if (a.phase != b.phase)
                    return a.phase < b.phase;
                return a.boxIndex < b.boxIndex;
            });
        std::exception_ptr err = it->error;
        errors.clear();
        std::rethrow_exception(err);
    }

    /**
     * One participant's share of the dispatched cycle.  Safe under
     * any box-to-thread assignment: phase A only touches a box's own
     * state, its inputs' delivery slots and its outputs' staging
     * buffers, none of which another box's phase A can reach.
     */
    void
    runWorker(u32 w)
    {
        Plan& pl = *plan;
        const Cycle c = cycle;
        const u32 partCount = static_cast<u32>(pl.parts.size());

        // Phase A: drain the own partition first, then rotate over
        // the neighbours stealing leftover boxes.  Without stealing
        // a worker only ever sees its own partition.
        const u32 scans =
            workSteal ? partCount : (w < partCount ? 1u : 0u);
        for (u32 r = 0; r < scans; ++r) {
            Partition& p = pl.parts[(w + r) % partCount];
            for (;;) {
                const u32 slot =
                    p.cursor.fetch_add(1, std::memory_order_relaxed);
                if (slot >= p.active.size())
                    break;
                const u32 off = p.active[slot];
                Box* box = p.boxes[off];
                try {
                    box->beginUpdate(c);
                } catch (...) {
                    recordError(0, p.indices[off]);
                    // Suppress the commit of the corrupt box; the
                    // release decrement below orders this write for
                    // the owner.
                    box->markSkipped(true);
                }
                p.updatesLeft.fetch_sub(1,
                                        std::memory_order_release);
            }
        }

        // Phase B: each owner waits for its own partition's updates
        // (wherever they ran) and commits in canonical box order, so
        // the per-signal write order never depends on the steal
        // schedule.
        if (w < partCount) {
            Partition& p = pl.parts[w];
            u32 spin = 0;
            while (p.updatesLeft.load(std::memory_order_acquire) !=
                   0) {
                if ((++spin & 63u) == 0)
                    std::this_thread::yield();
            }
            for (u32 off : p.active) {
                Box* box = p.boxes[off];
                if (box->skipped())
                    continue;
                try {
                    box->propagate(c);
                } catch (...) {
                    recordError(1, p.indices[off]);
                }
            }
        }
    }

    void
    workerMain(u32 index)
    {
        u64 seen = 0;
        for (;;) {
            // Spin briefly before sleeping: the inter-cycle gap is
            // normally far shorter than a futex round trip.
            bool woke = false;
            for (u32 spin = 0; spin < 4096; ++spin) {
                if (generation.load(std::memory_order_acquire) !=
                        seen ||
                    stop.load(std::memory_order_relaxed)) {
                    woke = true;
                    break;
                }
                if ((spin & 63) == 63)
                    std::this_thread::yield();
            }
            if (!woke) {
                std::unique_lock<std::mutex> lock(wakeMutex);
                wakeCv.wait(lock, [&] {
                    return generation.load(
                               std::memory_order_acquire) != seen ||
                           stop.load(std::memory_order_relaxed);
                });
            }
            if (stop.load(std::memory_order_relaxed))
                return;
            seen = generation.load(std::memory_order_acquire);

            runWorker(index);

            if (remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
                std::lock_guard<std::mutex> lock(doneMutex);
                doneCv.notify_one();
            }
        }
    }

    /** Publish the job, work as worker 0, join the end barrier. */
    void
    dispatch()
    {
        const u32 participants =
            1 + static_cast<u32>(workers.size());
        remaining.store(participants, std::memory_order_relaxed);
        {
            // The lock pairs with the workers' predicate check so a
            // generation bump can never slip between a worker's
            // check and its sleep (lost-wakeup).
            std::lock_guard<std::mutex> lock(wakeMutex);
            generation.fetch_add(1, std::memory_order_release);
        }
        wakeCv.notify_all();

        runWorker(0);

        if (remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) {
            for (u32 spin = 0; spin < 4096; ++spin) {
                if (remaining.load(std::memory_order_acquire) == 0)
                    return;
                if ((spin & 63) == 63)
                    std::this_thread::yield();
            }
            std::unique_lock<std::mutex> lock(doneMutex);
            doneCv.wait(lock, [&] {
                return remaining.load(std::memory_order_acquire) ==
                       0;
            });
        }
    }

    u32 threads;
    bool workSteal;
    u32 slackPercent;
    std::vector<std::thread> workers;

    // Job descriptor; written by the simulator thread before the
    // generation release-store, read by workers after the acquire.
    Plan* plan = nullptr;
    Cycle cycle = 0;

    std::atomic<u64> generation{0};
    std::atomic<u32> remaining{0};
    std::atomic<bool> stop{false};

    std::mutex wakeMutex;
    std::condition_variable wakeCv;
    std::mutex doneMutex;
    std::condition_variable doneCv;

    struct ErrorRecord
    {
        int phase;
        u32 boxIndex;
        std::exception_ptr error;
    };
    std::mutex errorMutex;
    std::vector<ErrorRecord> errors;

    std::vector<std::unique_ptr<Plan>> plans;
};

ParallelScheduler::ParallelScheduler(u32 threads)
    : ParallelScheduler(threads, Options{})
{}

ParallelScheduler::ParallelScheduler(u32 threads, Options options)
    : _threads(threads != 0
                   ? threads
                   : std::max(1u,
                              std::thread::hardware_concurrency())),
      _options(options)
{
    _impl = std::make_unique<Impl>(_threads, _options.workSteal,
                                   _options.slackPercent);
}

ParallelScheduler::~ParallelScheduler() = default;

void
ParallelScheduler::clockDomain(ClockDomain& domain, Cycle cycle)
{
    Impl& im = *_impl;
    Plan& plan = im.planFor(domain);
    const auto& boxes = domain.boxes();
    const bool skipping = idleSkip();

    // Serial skip pass: every decision is made here, on this thread,
    // before any box runs — bit-identical to SerialScheduler's pass
    // and immune to mid-cycle commits from other partitions.  It
    // doubles as the active-list builder.
    for (Partition& p : plan.parts)
        p.active.clear();
    u32 activeTotal = 0;
    u32 activeParts = 0;
    for (u32 i = 0; i < boxes.size(); ++i) {
        const bool skip = skipping && boxes[i]->idleAt(cycle);
        boxes[i]->markSkipped(skip);
        if (!skip) {
            Partition& p = plan.parts[plan.partitionOf[i]];
            if (p.active.empty())
                ++activeParts;
            p.active.push_back(plan.offsetOf[i]);
            ++activeTotal;
        }
    }

    // Quiescent cycle: nothing to run, nothing to synchronize.
    if (activeTotal == 0) {
        domain.noteAllIdle(skipping);
        return;
    }

    // Degenerate cycles run inline: a single active partition has no
    // cross-partition traffic this cycle, and a couple of boxes are
    // cheaper to run than to hand to the pool.  The inline path is
    // exactly the serial engine (canonical order, immediate throw).
    if (im.workers.empty() || activeParts <= 1 || activeTotal <= 2) {
        for (Box* box : boxes) {
            if (!box->skipped())
                box->beginUpdate(cycle);
        }
        for (Box* box : boxes) {
            if (!box->skipped())
                box->propagate(cycle);
        }
        domain.noteAllIdle(false);
        return;
    }

    for (Partition& p : plan.parts) {
        p.cursor.store(0, std::memory_order_relaxed);
        p.updatesLeft.store(static_cast<u32>(p.active.size()),
                            std::memory_order_relaxed);
    }
    im.plan = &plan;
    im.cycle = cycle;
    im.dispatch();
    im.rethrowFirstError();
    domain.noteAllIdle(false);
}

std::vector<u32>
ParallelScheduler::partitionAssignment(ClockDomain& domain)
{
    return _impl->planFor(domain).partitionOf;
}

u32
ParallelScheduler::crossSignals(ClockDomain& domain)
{
    return _impl->planFor(domain).crossSignals;
}

std::unique_ptr<Scheduler>
makeScheduler(const std::string& kind, u32 threads,
              ParallelScheduler::Options options)
{
    if (kind == "serial")
        return std::make_unique<SerialScheduler>();
    if (kind == "parallel")
        return std::make_unique<ParallelScheduler>(threads, options);
    fatal("unknown scheduler kind '", kind,
          "' (expected 'serial' or 'parallel')");
}

} // namespace attila::sim

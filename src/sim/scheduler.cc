#include "sim/scheduler.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace attila::sim
{

/**
 * Shared state between the simulator thread and the worker pool.
 *
 * Per cycle the pool runs two "jobs" (phase A, phase B).  A job is
 * published by bumping the generation counter; workers spin briefly
 * on it and fall back to a condition variable, which keeps the
 * per-cycle barrier cheap when cores are available without burning a
 * loaded machine.
 */
struct ParallelScheduler::Impl
{
    explicit Impl(u32 thread_count) : threads(thread_count)
    {
        workers.reserve(threads);
        for (u32 w = 0; w < threads; ++w)
            workers.emplace_back([this, w] { workerMain(w); });
    }

    ~Impl()
    {
        {
            std::lock_guard<std::mutex> lock(wakeMutex);
            stop.store(true, std::memory_order_relaxed);
        }
        wakeCv.notify_all();
        for (std::thread& t : workers)
            t.join();
    }

    void
    workerMain(u32 index)
    {
        u64 seen = 0;
        for (;;) {
            // Spin a little before sleeping: the inter-phase gap is
            // normally far shorter than a futex round trip.
            bool woke = false;
            for (u32 spin = 0; spin < 4096; ++spin) {
                if (generation.load(std::memory_order_acquire) !=
                        seen ||
                    stop.load(std::memory_order_relaxed)) {
                    woke = true;
                    break;
                }
                if ((spin & 63) == 63)
                    std::this_thread::yield();
            }
            if (!woke) {
                std::unique_lock<std::mutex> lock(wakeMutex);
                wakeCv.wait(lock, [&] {
                    return generation.load(
                               std::memory_order_acquire) != seen ||
                           stop.load(std::memory_order_relaxed);
                });
            }
            if (stop.load(std::memory_order_relaxed))
                return;
            seen = generation.load(std::memory_order_acquire);

            const auto& boxes = domain->boxes();
            const Cycle c = cycle;
            const bool updatePhase = phase == 0;
            const bool skipping = idleSkip;
            bool workerActive = false;
            for (std::size_t i = index; i < boxes.size();
                 i += threads) {
                try {
                    if (updatePhase) {
                        // The skip decision and latch are private to
                        // this worker: the static partition hands
                        // the same box to the same worker in both
                        // phases.
                        const bool skip =
                            skipping && boxes[i]->idleAt(c);
                        boxes[i]->markSkipped(skip);
                        if (!skip) {
                            workerActive = true;
                            boxes[i]->beginUpdate(c);
                        }
                    } else if (!boxes[i]->skipped()) {
                        boxes[i]->propagate(c);
                    }
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errorMutex);
                    errors.emplace_back(i, std::current_exception());
                    break;
                }
            }
            if (updatePhase && workerActive)
                anyActive.store(true, std::memory_order_relaxed);

            if (remaining.fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
                std::lock_guard<std::mutex> lock(doneMutex);
                doneCv.notify_one();
            }
        }
    }

    /** Run one phase over the current domain and wait for the pool. */
    void
    runPhase(int which)
    {
        phase = which;
        remaining.store(threads, std::memory_order_relaxed);
        generation.fetch_add(1, std::memory_order_release);
        wakeCv.notify_all();

        for (u32 spin = 0; spin < 4096; ++spin) {
            if (remaining.load(std::memory_order_acquire) == 0)
                return;
            if ((spin & 63) == 63)
                std::this_thread::yield();
        }
        std::unique_lock<std::mutex> lock(doneMutex);
        doneCv.wait(lock, [&] {
            return remaining.load(std::memory_order_acquire) == 0;
        });
    }

    /** Rethrow the failure of the lowest-indexed box, if any. */
    void
    rethrowFirstError()
    {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (errors.empty())
            return;
        auto it = std::min_element(
            errors.begin(), errors.end(),
            [](const auto& a, const auto& b) {
                return a.first < b.first;
            });
        std::exception_ptr err = it->second;
        errors.clear();
        std::rethrow_exception(err);
    }

    u32 threads;
    std::vector<std::thread> workers;

    // Job descriptor; written by the simulator thread before the
    // generation release-store, read by workers after the acquire.
    ClockDomain* domain = nullptr;
    Cycle cycle = 0;
    int phase = 0;
    bool idleSkip = true;

    // Set by any worker that clocked at least one box in phase A;
    // the simulator thread reads it after the phase barrier.
    std::atomic<bool> anyActive{false};

    std::atomic<u64> generation{0};
    std::atomic<u32> remaining{0};
    std::atomic<bool> stop{false};

    std::mutex wakeMutex;
    std::condition_variable wakeCv;
    std::mutex doneMutex;
    std::condition_variable doneCv;

    std::mutex errorMutex;
    std::vector<std::pair<std::size_t, std::exception_ptr>> errors;
};

ParallelScheduler::ParallelScheduler(u32 threads)
    : _threads(threads != 0
                   ? threads
                   : std::max(1u,
                              std::thread::hardware_concurrency()))
{
    _impl = std::make_unique<Impl>(_threads);
}

ParallelScheduler::~ParallelScheduler() = default;

void
ParallelScheduler::clockDomain(ClockDomain& domain, Cycle cycle)
{
    _impl->domain = &domain;
    _impl->cycle = cycle;
    _impl->idleSkip = idleSkip();
    _impl->anyActive.store(false, std::memory_order_relaxed);
    _impl->runPhase(0);
    _impl->rethrowFirstError();
    _impl->runPhase(1);
    _impl->rethrowFirstError();
    domain.noteAllIdle(
        idleSkip() &&
        !_impl->anyActive.load(std::memory_order_relaxed));
}

std::unique_ptr<Scheduler>
makeScheduler(const std::string& kind, u32 threads)
{
    if (kind == "serial")
        return std::make_unique<SerialScheduler>();
    if (kind == "parallel")
        return std::make_unique<ParallelScheduler>(threads);
    fatal("unknown scheduler kind '", kind,
          "' (expected 'serial' or 'parallel')");
}

} // namespace attila::sim

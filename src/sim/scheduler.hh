/**
 * @file
 * Scheduler: pluggable engine that clocks the boxes of a domain.
 *
 * The two-phase box lifecycle (Box::update staging writes, then
 * Box::propagate publishing them) guarantees that boxes of one cycle
 * never observe each other's same-cycle effects, so the scheduler is
 * free to run each phase in any order — or concurrently.  Two
 * backends exist:
 *
 *  - SerialScheduler: phase A over all boxes, then phase B; the
 *    reference engine, behaviour-identical to the classic single
 *    clock loop.
 *  - ParallelScheduler: a persistent worker pool; boxes are
 *    partitioned round-robin across threads and a barrier separates
 *    the phases.  The static partition and the per-signal
 *    single-writer rule make results bit-identical to the serial
 *    engine.
 *
 * A SimError raised inside a box (signal bandwidth/data-loss checks)
 * is rethrown on the simulator thread; when several boxes fail in
 * the same phase the lowest-indexed box wins, matching the serial
 * engine's first-failure semantics.
 */

#ifndef ATTILA_SIM_SCHEDULER_HH
#define ATTILA_SIM_SCHEDULER_HH

#include <memory>
#include <string>

#include "sim/clock_domain.hh"
#include "sim/types.hh"

namespace attila::sim
{

/** Engine that advances a clock domain by one cycle. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual const char* name() const = 0;

    /** Worker threads used (1 for the serial engine). */
    virtual u32 threadCount() const { return 1; }

    /**
     * Run one cycle of @p domain at domain-local cycle @p cycle:
     * phase A (update) for every box, then phase B (propagate).
     * With idle skipping enabled, boxes that are provably idle
     * (Box::idleAt) skip both phases, and the domain's all-idle
     * flag is recorded for the simulator's fast-forward check.
     */
    virtual void clockDomain(ClockDomain& domain, Cycle cycle) = 0;

    /**
     * Enable or disable idle skipping (default on).  Disabling
     * restores the always-clock reference path: every box runs both
     * phases every cycle, exactly as before the activity contract
     * existed.  Observables are identical either way; the switch
     * exists for debugging and A/B benchmarking.
     */
    void setIdleSkip(bool enable) { _idleSkip = enable; }
    bool idleSkip() const { return _idleSkip; }

  private:
    bool _idleSkip = true;
};

/** Reference single-threaded engine. */
class SerialScheduler final : public Scheduler
{
  public:
    const char* name() const override { return "serial"; }

    void
    clockDomain(ClockDomain& domain, Cycle cycle) override
    {
        const auto& boxes = domain.boxes();
        if (!idleSkip()) {
            // Always-clock reference path; beginUpdate still
            // retires expired wake hints so toggling the mode
            // mid-run cannot leave stale ones behind.
            for (Box* box : boxes)
                box->beginUpdate(cycle);
            for (Box* box : boxes)
                box->propagate(cycle);
            domain.noteAllIdle(false);
            return;
        }
        bool allIdle = true;
        for (Box* box : boxes) {
            const bool skip = box->idleAt(cycle);
            box->markSkipped(skip);
            if (!skip) {
                allIdle = false;
                box->beginUpdate(cycle);
            }
        }
        for (Box* box : boxes) {
            if (!box->skipped())
                box->propagate(cycle);
        }
        domain.noteAllIdle(allIdle);
    }
};

/**
 * Persistent worker-pool engine: boxes are partitioned round-robin
 * across threads; a barrier separates the update and propagate
 * phases.  Deterministic: same partition, same per-signal write
 * order (one writer per signal), same statistics (one owner per
 * counter).
 */
class ParallelScheduler final : public Scheduler
{
  public:
    /** @param threads Worker threads; 0 picks hardware_concurrency. */
    explicit ParallelScheduler(u32 threads = 0);
    ~ParallelScheduler() override;

    const char* name() const override { return "parallel"; }
    u32 threadCount() const override { return _threads; }

    void clockDomain(ClockDomain& domain, Cycle cycle) override;

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
    u32 _threads;
};

/**
 * Build a scheduler by name: "serial" or "parallel".  Throws
 * FatalError for unknown kinds.
 */
std::unique_ptr<Scheduler> makeScheduler(const std::string& kind,
                                         u32 threads = 0);

} // namespace attila::sim

#endif // ATTILA_SIM_SCHEDULER_HH

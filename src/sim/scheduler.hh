/**
 * @file
 * Scheduler: pluggable engine that clocks the boxes of a domain.
 *
 * The two-phase box lifecycle (Box::update staging writes, then
 * Box::propagate publishing them) guarantees that boxes of one cycle
 * never observe each other's same-cycle effects, so the scheduler is
 * free to run each phase in any order — or concurrently.  Two
 * backends exist:
 *
 *  - SerialScheduler: phase A over all boxes, then phase B; the
 *    reference engine, behaviour-identical to the classic single
 *    clock loop.
 *  - ParallelScheduler: a dependency-aware partitioned engine.  At
 *    bind time the box connectivity graph (recovered from each
 *    box's registered input/output signals) is partitioned into one
 *    cluster per worker, minimizing the signal traffic that crosses
 *    partitions.  Each cycle the simulator thread runs the
 *    idle-skip pass serially (decisions identical to the serial
 *    engine), then the workers update the active boxes — stealing
 *    whole boxes from loaded neighbours when their own partition
 *    runs dry — and each partition's owner commits its boxes in
 *    canonical box-index order.  One barrier per cycle, none at all
 *    when at most one partition has active boxes.
 *
 * A SimError raised inside a box (signal bandwidth/data-loss checks)
 * is rethrown on the simulator thread; when several boxes fail in
 * the same cycle the earliest phase and then the lowest-indexed box
 * wins, matching the serial engine's first-failure semantics.
 */

#ifndef ATTILA_SIM_SCHEDULER_HH
#define ATTILA_SIM_SCHEDULER_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/clock_domain.hh"
#include "sim/types.hh"

namespace attila::sim
{

/** Engine that advances a clock domain by one cycle. */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual const char* name() const = 0;

    /** Worker threads used (1 for the serial engine). */
    virtual u32 threadCount() const { return 1; }

    /**
     * Run one cycle of @p domain at domain-local cycle @p cycle:
     * phase A (update) for every box, then phase B (propagate).
     * With idle skipping enabled, boxes that are provably idle
     * (Box::idleAt) skip both phases, and the domain's all-idle
     * flag is recorded for the simulator's fast-forward check.
     */
    virtual void clockDomain(ClockDomain& domain, Cycle cycle) = 0;

    /**
     * Enable or disable idle skipping (default on).  Disabling
     * restores the always-clock reference path: every box runs both
     * phases every cycle, exactly as before the activity contract
     * existed.  Observables are identical either way; the switch
     * exists for debugging and A/B benchmarking.
     */
    void setIdleSkip(bool enable) { _idleSkip = enable; }
    bool idleSkip() const { return _idleSkip; }

  private:
    bool _idleSkip = true;
};

/** Reference single-threaded engine. */
class SerialScheduler final : public Scheduler
{
  public:
    const char* name() const override { return "serial"; }

    void
    clockDomain(ClockDomain& domain, Cycle cycle) override
    {
        const auto& boxes = domain.boxes();
        if (!idleSkip()) {
            // Always-clock reference path; beginUpdate still
            // retires expired wake hints so toggling the mode
            // mid-run cannot leave stale ones behind.
            for (Box* box : boxes)
                box->beginUpdate(cycle);
            for (Box* box : boxes)
                box->propagate(cycle);
            domain.noteAllIdle(false);
            return;
        }
        bool allIdle = true;
        for (Box* box : boxes) {
            const bool skip = box->idleAt(cycle);
            box->markSkipped(skip);
            if (!skip) {
                allIdle = false;
                box->beginUpdate(cycle);
            }
        }
        for (Box* box : boxes) {
            if (!box->skipped())
                box->propagate(cycle);
        }
        domain.noteAllIdle(allIdle);
    }
};

/**
 * Dependency-aware partitioned worker-pool engine.
 *
 * Bind time (first clockDomain of a domain): the box connectivity
 * graph is built from the binder's recorded wiring — every signal
 * has one writer and one reader box — weighted by signal bandwidth,
 * and greedily clustered into one partition per worker so that the
 * heaviest edges stay partition-internal.  The GPU pipeline is
 * nearly linear, so the cut is small and the clusters follow the
 * pipeline stages.
 *
 * Cycle time: the simulator thread makes every skip decision
 * serially (bit-identical to SerialScheduler), builds each
 * partition's active-box list, and dispatches the pool only when
 * two or more partitions have active boxes — a quiescent or
 * single-partition cycle runs inline with no synchronization at
 * all.  Workers drain their own partition's active list through an
 * atomic cursor and then steal whole boxes from other partitions'
 * lists; updates are data-race-free under any assignment because a
 * box's update only touches its own state, its inputs' delivery
 * slots and its outputs' staging buffers.  Each partition's owner
 * then waits for its own update count (stolen boxes included) and
 * commits its boxes in canonical box-index order, preserving the
 * per-signal write order regardless of who ran the updates.  One
 * end-of-cycle barrier joins the pool.
 *
 * Determinism: skip decisions, update effects and per-signal commit
 * order are all independent of the steal schedule, so results are
 * bit-identical to the serial engine (tests/test_determinism.cc).
 */
class ParallelScheduler final : public Scheduler
{
  public:
    /** Partitioning / stealing knobs (gpu_config `engine.*`). */
    struct Options
    {
        /** Idle workers steal active boxes from loaded partitions. */
        bool workSteal = true;
        /** Partition size cap as a percentage of perfect balance
         * (ceil(boxes/threads)); 100 forbids any imbalance from
         * clustering, larger values keep heavy edges uncut. */
        u32 slackPercent = 125;
    };

    /** @param threads Worker threads; 0 picks hardware_concurrency. */
    explicit ParallelScheduler(u32 threads = 0);
    ParallelScheduler(u32 threads, Options options);
    ~ParallelScheduler() override;

    const char* name() const override { return "parallel"; }
    u32 threadCount() const override { return _threads; }
    const Options& schedulerOptions() const { return _options; }

    void clockDomain(ClockDomain& domain, Cycle cycle) override;

    /**
     * Introspection for tests and tools: the partition index of
     * every box of @p domain in registration order.  Builds (and
     * caches) the same plan the engine runs with.
     */
    std::vector<u32> partitionAssignment(ClockDomain& domain);

    /** Signals of @p domain whose writer and reader land in
     * different partitions (the edge cut, in wires). */
    u32 crossSignals(ClockDomain& domain);

  private:
    struct Impl;
    std::unique_ptr<Impl> _impl;
    u32 _threads;
    Options _options;
};

/**
 * Build a scheduler by name: "serial" or "parallel".  Throws
 * FatalError for unknown kinds.
 */
std::unique_ptr<Scheduler> makeScheduler(
    const std::string& kind, u32 threads = 0,
    ParallelScheduler::Options options = {});

} // namespace attila::sim

#endif // ATTILA_SIM_SCHEDULER_HH

#include "sim/signal.hh"

#include "sim/event_trace.hh"
#include "sim/logging.hh"
#include "sim/signal_trace.hh"
#include "sim/statistics.hh"

namespace attila::sim
{

Signal::Signal(std::string name, u32 bandwidth, u32 latency)
    : _name(std::move(name)), _bandwidth(bandwidth), _latency(latency)
{
    if (_bandwidth < 1)
        fatal("signal '", _name, "': bandwidth must be >= 1");
    if (_latency < 1)
        fatal("signal '", _name, "': latency must be >= 1");
    // One slot per in-flight arrival cycle.  An object written at
    // cycle c arrives at c + latency, so at most latency + 1 distinct
    // arrival cycles are live at once.  Rounded up to a power of two
    // so the ring index on the per-cycle poll path is a mask instead
    // of a division; each slot still validates its arrival cycle, so
    // the extra slots are just never-hit ring positions.
    std::size_t slots = 1;
    while (slots < static_cast<std::size_t>(_latency) + 1)
        slots <<= 1;
    _slots.resize(slots);
    _slotMask = slots - 1;
    for (auto& slot : _slots)
        slot.objects.reserve(_bandwidth);
}

Signal::Slot&
Signal::slotFor(Cycle arrival)
{
    return _slots[arrival & _slotMask];
}

const Signal::Slot&
Signal::slotFor(Cycle arrival) const
{
    return _slots[arrival & _slotMask];
}

void
Signal::write(Cycle cycle, DynamicObjectPtr obj)
{
    if (!obj)
        panic("signal '", _name, "': writing null object at cycle ",
              cycle);

    if (_buffered) {
        // Bandwidth is a per-cycle property of the wire, so it is
        // checked at write time even though publication is deferred.
        // All staged writes belong to the current cycle (commit runs
        // every cycle), but count per-cycle anyway so direct harness
        // use stays well-defined.
        u32 sameCycle = 0;
        for (const PendingWrite& p : _pending) {
            if (p.cycle == cycle)
                ++sameCycle;
        }
        if (sameCycle >= _bandwidth) {
            panic("signal '", _name, "': bandwidth exceeded at cycle ",
                  cycle, " (bandwidth ", _bandwidth, ")");
        }
        _pending.push_back({cycle, std::move(obj)});
        return;
    }

    publish(cycle, std::move(obj));
}

void
Signal::publish(Cycle cycle, DynamicObjectPtr obj)
{
    const Cycle arrival = cycle + _latency;
    Slot& slot = slotFor(arrival);

    if (!slot.objects.empty() && slot.arrival != arrival) {
        // The slot still holds objects from a previous lap of the
        // ring.  They arrived at their reader's cycle and were never
        // read: modelled data was lost.
        if (!slot.drained()) {
            panic("signal '", _name, "': data loss — ",
                  slot.objects.size() - slot.readIndex,
                  " object(s) that arrived at cycle ", slot.arrival,
                  " were never read (write at cycle ", cycle, ")");
        }
        slot.objects.clear();
        slot.readIndex = 0;
    }

    if (slot.objects.empty()) {
        slot.arrival = arrival;
        slot.readIndex = 0;
    }

    if (slot.objects.size() >= _bandwidth) {
        panic("signal '", _name, "': bandwidth exceeded at cycle ",
              cycle, " (bandwidth ", _bandwidth, ")");
    }

    if (_tracer)
        _tracer->record(cycle, _name, *obj);

    if constexpr (kEventTraceCompiled) {
        if (_eventTrace) [[unlikely]] {
            _eventTrace->emit(EventKind::SignalWrite, cycle,
                              _eventTraceId, obj->color(), obj->id(),
                              traceParentOf(*obj));
        }
    }

    slot.objects.push_back(std::move(obj));
    _live.fetch_add(1, std::memory_order_relaxed);
    ++_totalWrites;
    if (_writeStat)
        _writeStat->inc();
}

void
Signal::commitPending()
{
    for (PendingWrite& p : _pending)
        publish(p.cycle, std::move(p.obj));
    _pending.clear();
}

void
Signal::setBuffered(bool buffered)
{
    if (!buffered)
        commit();
    _buffered = buffered;
}

bool
Signal::canWriteBuffered(Cycle cycle) const
{
    u32 sameCycle = 0;
    for (const PendingWrite& p : _pending) {
        if (p.cycle == cycle)
            ++sameCycle;
    }
    return sameCycle < _bandwidth;
}

u64
Signal::inFlight() const
{
    return _pending.size() + _live.load(std::memory_order_relaxed);
}

} // namespace attila::sim

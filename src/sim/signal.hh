/**
 * @file
 * Signal: the "wire" connecting boxes.
 *
 * A signal has a bandwidth (objects per cycle) and a latency (cycles
 * between write and read).  All communication between boxes happens
 * in a message-passing style through signals, which both transport
 * the data and *verify* the modelled communication constraints: a
 * write beyond the configured bandwidth, or data that reaches the
 * reader's cycle without being read, terminates the simulation with a
 * diagnostic (SimError).  This is what keeps timing bugs loud instead
 * of silent.
 *
 * Two-phase (buffered) mode: when a signal is owned by a Simulator,
 * writes issued during the update phase are staged in a pending
 * buffer and only published into the delivery slots by commit(),
 * which the writer box runs in its propagate phase.  Because every
 * latency is >= 1 this does not change the modelled timing, but it
 * removes every same-cycle ordering hazard between boxes, which is
 * what makes parallel clocking safe.  Standalone signals (unit
 * tests) default to immediate mode, where write() publishes
 * directly.
 */

#ifndef ATTILA_SIM_SIGNAL_HH
#define ATTILA_SIM_SIGNAL_HH

#include <atomic>
#include <string>
#include <vector>

#include "sim/dynamic_object.hh"
#include "sim/types.hh"

namespace attila::sim
{

class EventTrace;
class SignalTraceWriter;
class Statistic;

/**
 * Latency- and bandwidth-modelled communication wire between two
 * boxes.
 */
class Signal
{
  public:
    /**
     * @param name Unique signal name (assigned by the SignalBinder).
     * @param bandwidth Maximum objects writable per cycle (>= 1).
     * @param latency Cycles between write and availability (>= 1).
     */
    Signal(std::string name, u32 bandwidth, u32 latency);

    const std::string& name() const { return _name; }
    u32 bandwidth() const { return _bandwidth; }
    u32 latency() const { return _latency; }

    /**
     * Write an object into the signal at @p cycle; it becomes
     * readable at cycle + latency.  Throws SimError when the cycle's
     * bandwidth is exceeded or when undelivered data would be
     * overwritten.  In buffered mode the object is staged and only
     * published by commit(); the bandwidth check still fires here,
     * the data-loss check fires at commit time.
     */
    void write(Cycle cycle, DynamicObjectPtr obj);

    /**
     * True when writing another object at @p cycle would not exceed
     * the signal bandwidth.
     */
    bool
    canWrite(Cycle cycle) const
    {
        if (_buffered)
            return canWriteBuffered(cycle);
        const Cycle arrival = cycle + _latency;
        const Slot& slot = _slots[arrival & _slotMask];
        if (slot.objects.empty() || slot.arrival != arrival)
            return true;
        return slot.objects.size() < _bandwidth;
    }

    /**
     * Read one object arriving at @p cycle.  Returns nullptr when no
     * (more) objects arrive this cycle.
     *
     * Inline with a _live == 0 early-out: the link layer polls every
     * input signal every cycle and the overwhelming majority of polls
     * find an empty wire, so the common case must be a load and a
     * branch, not an out-of-line call.
     */
    DynamicObjectPtr
    read(Cycle cycle)
    {
        if (_live.load(std::memory_order_relaxed) == 0)
            return nullptr;
        Slot& slot = _slots[cycle & _slotMask];
        if (slot.objects.empty() || slot.arrival != cycle ||
            slot.drained()) {
            return nullptr;
        }
        DynamicObjectPtr obj = std::move(slot.objects[slot.readIndex]);
        ++slot.readIndex;
        _live.fetch_sub(1, std::memory_order_relaxed);
        ++_totalReads;
        if (slot.drained()) {
            slot.objects.clear();
            slot.readIndex = 0;
        }
        return obj;
    }

    /** Number of unread objects arriving at @p cycle. */
    u32
    pendingAt(Cycle cycle) const
    {
        if (_live.load(std::memory_order_relaxed) == 0)
            return 0;
        const Slot& slot = _slots[cycle & _slotMask];
        if (slot.objects.empty() || slot.arrival != cycle)
            return 0;
        return static_cast<u32>(slot.objects.size() - slot.readIndex);
    }

    /**
     * Enable or disable two-phase buffered writes.  Disabling
     * publishes any still-staged writes first.
     */
    void setBuffered(bool buffered);
    bool buffered() const { return _buffered; }

    /**
     * Publish all writes staged since the last commit.  Called by the
     * writer box's propagate phase; only the writer's thread may call
     * this.  Throws SimError on the data-loss check.  Inline no-op
     * when nothing is staged — the scheduler commits every output of
     * every active box each cycle, and most have nothing pending.
     */
    void
    commit()
    {
        if (!_pending.empty())
            commitPending();
    }

    /** Writes staged but not yet committed. */
    u32 pendingWrites() const
    {
        return static_cast<u32>(_pending.size());
    }

    /**
     * Objects somewhere inside the wire: committed but unread, plus
     * staged writes.  Used by the drain detector — a model is only
     * quiescent when every signal is empty.  O(1): maintained as a
     * live counter, not a slot walk.
     */
    u64 inFlight() const;

    /**
     * True when no committed-but-unread object is inside the wire.
     * O(1) — this is the idle-skip hot path, polled for every input
     * of every candidate box each cycle.  Staged (uncommitted)
     * writes are deliberately *not* counted: they belong to the
     * writer's in-progress cycle and only become observable once the
     * writer commits.  The counter is a relaxed atomic because under
     * the partitioned parallel engine a writer's commit (owner
     * partition, phase B) may overlap another partition's phase A
     * that reads the same wire: the delivery slots stay disjoint
     * (a commit at cycle c lands at c + latency >= c + 1, never the
     * slot read at c), so the counter is the only shared word.  A
     * racy load can only miss a same-cycle commit, whose object is
     * unreadable this cycle anyway — results stay deterministic.
     */
    bool
    fastEmpty() const
    {
        return _live.load(std::memory_order_relaxed) == 0;
    }

    /** Attach a trace writer; every write is then recorded. */
    void setTracer(SignalTraceWriter* tracer) { _tracer = tracer; }

    /** Attach a statistic counting objects written. */
    void setWriteStat(Statistic* stat) { _writeStat = stat; }

    /**
     * Attach the structured event trace under unit id @p id; every
     * published object then emits one SignalWrite event.  Unlike the
     * text tracer this records into the publishing thread's chunk,
     * so it is safe under the parallel scheduler.
     */
    void
    setEventTrace(EventTrace* trace, u16 id)
    {
        _eventTrace = trace;
        _eventTraceId = id;
    }

    /** Lifetime statistics. */
    u64 totalWrites() const { return _totalWrites; }
    u64 totalReads() const { return _totalReads; }

  private:
    struct Slot
    {
        Cycle arrival = 0;
        std::vector<DynamicObjectPtr> objects;
        u32 readIndex = 0;

        bool
        drained() const
        {
            return readIndex >= objects.size();
        }
    };

    struct PendingWrite
    {
        Cycle cycle = 0;
        DynamicObjectPtr obj;
    };

    Slot& slotFor(Cycle arrival);
    const Slot& slotFor(Cycle arrival) const;

    /** Publish one object (the pre-two-phase write body). */
    void publish(Cycle cycle, DynamicObjectPtr obj);

    /** canWrite() when buffered: scans the staged writes. */
    bool canWriteBuffered(Cycle cycle) const;

    /** commit() slow path: publishes the staged writes. */
    void commitPending();

    std::string _name;
    u32 _bandwidth;
    u32 _latency;
    bool _buffered = false;
    std::vector<Slot> _slots;
    /** _slots.size() - 1; the slot count is rounded up to a power of
     * two so the per-poll ring index is a mask, not a division. */
    Cycle _slotMask = 0;
    std::vector<PendingWrite> _pending;
    SignalTraceWriter* _tracer = nullptr;
    Statistic* _writeStat = nullptr;
    EventTrace* _eventTrace = nullptr;
    u16 _eventTraceId = 0;
    u64 _totalWrites = 0;
    u64 _totalReads = 0;
    /** Committed-but-unread objects across all slots; see
     * fastEmpty() for the threading contract.  Relaxed atomic: the
     * single writer increments (commit) and the single reader
     * decrements (read); cross-thread observers only ever use it as
     * a conservative emptiness hint. */
    std::atomic<u64> _live{0};
};

} // namespace attila::sim

#endif // ATTILA_SIM_SIGNAL_HH

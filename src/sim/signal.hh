/**
 * @file
 * Signal: the "wire" connecting boxes.
 *
 * A signal has a bandwidth (objects per cycle) and a latency (cycles
 * between write and read).  All communication between boxes happens
 * in a message-passing style through signals, which both transport
 * the data and *verify* the modelled communication constraints: a
 * write beyond the configured bandwidth, or data that reaches the
 * reader's cycle without being read, terminates the simulation with a
 * diagnostic (SimError).  This is what keeps timing bugs loud instead
 * of silent.
 */

#ifndef ATTILA_SIM_SIGNAL_HH
#define ATTILA_SIM_SIGNAL_HH

#include <string>
#include <vector>

#include "sim/dynamic_object.hh"
#include "sim/types.hh"

namespace attila::sim
{

class SignalTraceWriter;
class Statistic;

/**
 * Latency- and bandwidth-modelled communication wire between two
 * boxes.
 */
class Signal
{
  public:
    /**
     * @param name Unique signal name (assigned by the SignalBinder).
     * @param bandwidth Maximum objects writable per cycle (>= 1).
     * @param latency Cycles between write and availability (>= 1).
     */
    Signal(std::string name, u32 bandwidth, u32 latency);

    const std::string& name() const { return _name; }
    u32 bandwidth() const { return _bandwidth; }
    u32 latency() const { return _latency; }

    /**
     * Write an object into the signal at @p cycle; it becomes
     * readable at cycle + latency.  Throws SimError when the cycle's
     * bandwidth is exceeded or when undelivered data would be
     * overwritten.
     */
    void write(Cycle cycle, DynamicObjectPtr obj);

    /**
     * True when writing another object at @p cycle would not exceed
     * the signal bandwidth.
     */
    bool canWrite(Cycle cycle) const;

    /**
     * Read one object arriving at @p cycle.  Returns nullptr when no
     * (more) objects arrive this cycle.
     */
    DynamicObjectPtr read(Cycle cycle);

    /** Number of unread objects arriving at @p cycle. */
    u32 pendingAt(Cycle cycle) const;

    /** Attach a trace writer; every write is then recorded. */
    void setTracer(SignalTraceWriter* tracer) { _tracer = tracer; }

    /** Attach a statistic counting objects written. */
    void setWriteStat(Statistic* stat) { _writeStat = stat; }

    /** Lifetime statistics. */
    u64 totalWrites() const { return _totalWrites; }
    u64 totalReads() const { return _totalReads; }

  private:
    struct Slot
    {
        Cycle arrival = 0;
        std::vector<DynamicObjectPtr> objects;
        u32 readIndex = 0;

        bool
        drained() const
        {
            return readIndex >= objects.size();
        }
    };

    Slot& slotFor(Cycle arrival);
    const Slot& slotFor(Cycle arrival) const;

    std::string _name;
    u32 _bandwidth;
    u32 _latency;
    std::vector<Slot> _slots;
    SignalTraceWriter* _tracer = nullptr;
    Statistic* _writeStat = nullptr;
    u64 _totalWrites = 0;
    u64 _totalReads = 0;
};

} // namespace attila::sim

#endif // ATTILA_SIM_SIGNAL_HH

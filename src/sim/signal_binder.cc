#include "sim/signal_binder.hh"

#include "sim/box.hh"
#include "sim/event_trace.hh"
#include "sim/logging.hh"
#include "sim/statistics.hh"

namespace attila::sim
{

Signal*
SignalBinder::registerSignal(Box* box, const std::string& name,
                             Direction dir, u32 bandwidth, u32 latency)
{
    if (!box)
        panic("signal '", name, "': registered without a box");

    auto it = _entries.find(name);
    if (it == _entries.end()) {
        Entry entry;
        entry.signal = std::make_unique<Signal>(name, bandwidth,
                                                latency);
        if (_tracer)
            entry.signal->setTracer(_tracer);
        if (_eventTrace) {
            entry.signal->setEventTrace(
                _eventTrace, _eventTrace->registerSignal(name));
        }
        if (_stats) {
            entry.signal->setWriteStat(
                &_stats->get("signal." + name, "writes"));
        }
        entry.signal->setBuffered(_buffered);
        it = _entries.emplace(name, std::move(entry)).first;
    } else {
        Signal* sig = it->second.signal.get();
        if (sig->bandwidth() != bandwidth ||
            sig->latency() != latency) {
            fatal("signal '", name, "': interface mismatch — box '",
                  box->name(), "' registered bandwidth ", bandwidth,
                  " latency ", latency, " but the signal was created",
                  " with bandwidth ", sig->bandwidth(), " latency ",
                  sig->latency());
        }
    }

    Entry& entry = it->second;
    if (dir == Direction::Out) {
        if (entry.writer) {
            fatal("signal '", name, "': both '",
                  entry.writer->name(), "' and '", box->name(),
                  "' registered as writer");
        }
        entry.writer = box;
        box->_outputSignals.push_back(entry.signal.get());
    } else {
        if (entry.reader) {
            fatal("signal '", name, "': both '",
                  entry.reader->name(), "' and '", box->name(),
                  "' registered as reader");
        }
        entry.reader = box;
        box->_inputSignals.push_back(entry.signal.get());
    }
    return entry.signal.get();
}

Signal*
SignalBinder::find(const std::string& name) const
{
    auto it = _entries.find(name);
    return it == _entries.end() ? nullptr : it->second.signal.get();
}

void
SignalBinder::checkConnectivity() const
{
    std::string dangling;
    for (const auto& [name, entry] : _entries) {
        if (!entry.writer)
            dangling += "\n  '" + name + "' has no writer";
        if (!entry.reader)
            dangling += "\n  '" + name + "' has no reader";
    }
    if (!dangling.empty())
        fatal("unconnected signals:", dangling);
}

void
SignalBinder::setBuffered(bool buffered)
{
    _buffered = buffered;
    for (auto& [name, entry] : _entries)
        entry.signal->setBuffered(buffered);
}

u64
SignalBinder::totalInFlight() const
{
    u64 count = 0;
    for (const auto& [name, entry] : _entries)
        count += entry.signal->inFlight();
    return count;
}

u64
SignalBinder::totalWrites() const
{
    u64 count = 0;
    for (const auto& [name, entry] : _entries)
        count += entry.signal->totalWrites();
    return count;
}

void
SignalBinder::setTracer(SignalTraceWriter* tracer)
{
    _tracer = tracer;
    for (auto& [name, entry] : _entries)
        entry.signal->setTracer(tracer);
}

void
SignalBinder::setEventTrace(EventTrace* trace)
{
    _eventTrace = trace;
    if (!trace)
        return;
    for (auto& [name, entry] : _entries) {
        entry.signal->setEventTrace(trace,
                                    trace->registerSignal(name));
    }
}

void
SignalBinder::attachStatistics(StatisticManager& stats)
{
    _stats = &stats;
    for (auto& [name, entry] : _entries) {
        entry.signal->setWriteStat(
            &stats.get("signal." + name, "writes"));
    }
}

std::vector<std::string>
SignalBinder::signalNames() const
{
    std::vector<std::string> out;
    out.reserve(_entries.size());
    for (const auto& [name, entry] : _entries)
        out.push_back(name);
    return out;
}

std::string
SignalBinder::writerOf(const std::string& name) const
{
    auto it = _entries.find(name);
    if (it == _entries.end() || !it->second.writer)
        return "";
    return it->second.writer->name();
}

std::string
SignalBinder::readerOf(const std::string& name) const
{
    auto it = _entries.find(name);
    if (it == _entries.end() || !it->second.reader)
        return "";
    return it->second.reader->name();
}

} // namespace attila::sim

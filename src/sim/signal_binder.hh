/**
 * @file
 * SignalBinder: the name server that creates signals and binds them
 * to the boxes they connect.
 *
 * A signal is registered twice — once by its writer (Direction::Out)
 * and once by its reader (Direction::In) — under the same unique
 * name.  The binder checks that both registrations agree on bandwidth
 * and latency, which is how the model guarantees that two boxes agree
 * on their interface.  A box can then be swapped for an alternative
 * implementation as long as it registers the same signals.
 *
 * Unlike the paper's static class, each Simulator owns its own binder
 * so that multiple GPUs can be simulated in one process (e.g. in the
 * test suite).
 */

#ifndef ATTILA_SIM_SIGNAL_BINDER_HH
#define ATTILA_SIM_SIGNAL_BINDER_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/signal.hh"

namespace attila::sim
{

class Box;
class EventTrace;
class SignalTraceWriter;
class StatisticManager;

/** Signal registration direction relative to the registering box. */
enum class Direction { In, Out };

/** Creates, names and connects signals between boxes. */
class SignalBinder
{
  public:
    /**
     * Register one end of the signal @p name for @p box.  The first
     * registration creates the signal; the second must match
     * bandwidth and latency and take the opposite direction.
     * Returns the shared Signal.
     */
    Signal* registerSignal(Box* box, const std::string& name,
                           Direction dir, u32 bandwidth, u32 latency);

    /** Look a signal up by name; nullptr when absent. */
    Signal* find(const std::string& name) const;

    /**
     * Switch every signal (current and future) into two-phase
     * buffered-write mode; see Signal::setBuffered().  Enabled by the
     * Simulator, off for standalone binders in unit tests.
     */
    void setBuffered(bool buffered);
    bool buffered() const { return _buffered; }

    /** Sum of Signal::inFlight() over every signal. */
    u64 totalInFlight() const;

    /** Sum of Signal::totalWrites() over every signal. */
    u64 totalWrites() const;

    /**
     * Verify that every registered signal has both a writer and a
     * reader; throws FatalError listing the dangling ends otherwise.
     */
    void checkConnectivity() const;

    /** Attach @p tracer to every signal (current and future). */
    void setTracer(SignalTraceWriter* tracer);

    /**
     * Attach the structured event trace to every signal (current and
     * future), registering each signal's name for a unit id.  The
     * map iteration order makes the id assignment deterministic.
     */
    void setEventTrace(EventTrace* trace);

    /**
     * Register a per-signal traffic statistic
     * ("signal.<name>.writes") for every current and future signal.
     */
    void attachStatistics(StatisticManager& stats);

    /** Names of all registered signals, sorted. */
    std::vector<std::string> signalNames() const;

    /** Writer / reader box names for a signal ("" when unbound). */
    std::string writerOf(const std::string& name) const;
    std::string readerOf(const std::string& name) const;

  private:
    struct Entry
    {
        std::unique_ptr<Signal> signal;
        Box* writer = nullptr;
        Box* reader = nullptr;
    };

    std::map<std::string, Entry> _entries;
    SignalTraceWriter* _tracer = nullptr;
    EventTrace* _eventTrace = nullptr;
    StatisticManager* _stats = nullptr;
    bool _buffered = false;
};

} // namespace attila::sim

#endif // ATTILA_SIM_SIGNAL_BINDER_HH

#include "sim/signal_trace.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"

namespace attila::sim
{

namespace
{

/** Escape '|' and newlines so records stay one per line. */
std::string
escapeField(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '|':
            out += "\\p";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\\':
            out += "\\\\";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
unescapeField(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\\' && i + 1 < s.size()) {
            ++i;
            switch (s[i]) {
              case 'p':
                out += '|';
                break;
              case 'n':
                out += '\n';
                break;
              default:
                out += s[i];
            }
        } else {
            out += s[i];
        }
    }
    return out;
}

} // anonymous namespace

SignalTraceWriter::SignalTraceWriter(const std::string& path)
    : _out(path)
{
    if (!_out)
        fatal("signal trace: cannot open '", path, "' for writing");
    _out << "# attila signal trace v1\n";
}

SignalTraceWriter::~SignalTraceWriter()
{
    flush();
}

void
SignalTraceWriter::record(Cycle cycle, const std::string& signal_name,
                          const DynamicObject& obj)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _out << cycle << '|' << escapeField(signal_name) << '|'
         << obj.id() << '|' << obj.trailString() << '|'
         << obj.color() << '|' << escapeField(obj.info()) << '\n';
    ++_records;
}

void
SignalTraceWriter::flush()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _out.flush();
}

SignalTraceReader::SignalTraceReader(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("signal trace: cannot open '", path, "' for reading");

    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string field;
        SignalTraceRecord rec;

        if (!std::getline(ls, field, '|'))
            fatal("signal trace: malformed line: ", line);
        rec.cycle = std::stoull(field);
        if (!std::getline(ls, field, '|'))
            fatal("signal trace: malformed line: ", line);
        rec.signal = unescapeField(field);
        if (!std::getline(ls, field, '|'))
            fatal("signal trace: malformed line: ", line);
        rec.objectId = std::stoull(field);
        if (!std::getline(ls, field, '|'))
            fatal("signal trace: malformed line: ", line);
        rec.trail = field;
        if (!std::getline(ls, field, '|'))
            fatal("signal trace: malformed line: ", line);
        rec.color = static_cast<u32>(std::stoul(field));
        std::getline(ls, field);
        rec.info = unescapeField(field);

        if (first) {
            _firstCycle = rec.cycle;
            first = false;
        }
        _firstCycle = std::min(_firstCycle, rec.cycle);
        _lastCycle = std::max(_lastCycle, rec.cycle);
        _bySignal[rec.signal].push_back(rec.cycle);
        _records.push_back(std::move(rec));
    }
    for (auto& [name, cycles] : _bySignal)
        std::sort(cycles.begin(), cycles.end());
}

std::vector<std::string>
SignalTraceReader::signalNames() const
{
    std::vector<std::string> out;
    out.reserve(_bySignal.size());
    for (const auto& [name, cycles] : _bySignal)
        out.push_back(name);
    return out;
}

u64
SignalTraceReader::activity(const std::string& signal, Cycle from,
                            Cycle to) const
{
    auto it = _bySignal.find(signal);
    if (it == _bySignal.end())
        return 0;
    const auto& cycles = it->second;
    auto lo = std::lower_bound(cycles.begin(), cycles.end(), from);
    auto hi = std::lower_bound(cycles.begin(), cycles.end(), to);
    return static_cast<u64>(hi - lo);
}

} // namespace attila::sim

#include "sim/signal_trace.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"

namespace attila::sim
{

namespace
{

/** Escape '|' and newlines so records stay one per line. */
std::string
escapeField(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '|':
            out += "\\p";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\\':
            out += "\\\\";
            break;
          default:
            out += c;
        }
    }
    return out;
}

std::string
unescapeField(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\\' && i + 1 < s.size()) {
            ++i;
            switch (s[i]) {
              case 'p':
                out += '|';
                break;
              case 'n':
                out += '\n';
                break;
              default:
                out += s[i];
            }
        } else {
            out += s[i];
        }
    }
    return out;
}

/**
 * Parse an unsigned decimal field.  Anything else — empty field,
 * stray characters, a sign, overflow — is a diagnostic FatalError
 * naming the file, line number and offending line, never a raw
 * std::invalid_argument out of the std::sto* family.
 */
u64
parseU64Field(const std::string& field, const char* what,
              const std::string& path, u64 line_no,
              const std::string& line)
{
    if (field.empty())
        fatal("signal trace: ", path, ":", line_no, ": empty ", what,
              " field in line: ", line);
    u64 value = 0;
    for (char c : field) {
        if (c < '0' || c > '9')
            fatal("signal trace: ", path, ":", line_no,
                  ": non-numeric ", what, " field '", field,
                  "' in line: ", line);
        const u64 digit = static_cast<u64>(c - '0');
        if (value > (~u64{0} - digit) / 10)
            fatal("signal trace: ", path, ":", line_no,
                  ": overflowing ", what, " field '", field,
                  "' in line: ", line);
        value = value * 10 + digit;
    }
    return value;
}

u32
parseU32Field(const std::string& field, const char* what,
              const std::string& path, u64 line_no,
              const std::string& line)
{
    const u64 value = parseU64Field(field, what, path, line_no, line);
    if (value > 0xFFFFFFFFull)
        fatal("signal trace: ", path, ":", line_no, ": overflowing ",
              what, " field '", field, "' in line: ", line);
    return static_cast<u32>(value);
}

} // anonymous namespace

SignalTraceWriter::SignalTraceWriter(const std::string& path)
    : _out(path)
{
    if (!_out)
        fatal("signal trace: cannot open '", path, "' for writing");
    _out << "# attila signal trace v1\n";
}

SignalTraceWriter::~SignalTraceWriter()
{
    flush();
}

void
SignalTraceWriter::record(Cycle cycle, const std::string& signal_name,
                          const DynamicObject& obj)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _out << cycle << '|' << escapeField(signal_name) << '|'
         << obj.id() << '|' << escapeField(obj.trailString()) << '|'
         << obj.color() << '|' << escapeField(obj.info()) << '\n';
    ++_records;
}

void
SignalTraceWriter::flush()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _out.flush();
}

SignalTraceReader::SignalTraceReader(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("signal trace: cannot open '", path, "' for reading");

    std::string line;
    bool first = true;
    u64 lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        std::string field;
        SignalTraceRecord rec;

        const auto nextField = [&](const char* what) {
            if (!std::getline(ls, field, '|'))
                fatal("signal trace: ", path, ":", lineNo,
                      ": malformed line (missing ", what,
                      " field): ", line);
        };

        nextField("cycle");
        rec.cycle = parseU64Field(field, "cycle", path, lineNo, line);
        nextField("signal");
        rec.signal = unescapeField(field);
        nextField("object id");
        rec.objectId =
            parseU64Field(field, "object id", path, lineNo, line);
        nextField("trail");
        rec.trail = unescapeField(field);
        nextField("color");
        rec.color = parseU32Field(field, "color", path, lineNo, line);
        std::getline(ls, field);
        rec.info = unescapeField(field);

        if (first) {
            _firstCycle = rec.cycle;
            first = false;
        }
        _firstCycle = std::min(_firstCycle, rec.cycle);
        _lastCycle = std::max(_lastCycle, rec.cycle);
        _bySignal[rec.signal].push_back(rec.cycle);
        _records.push_back(std::move(rec));
    }
    for (auto& [name, cycles] : _bySignal)
        std::sort(cycles.begin(), cycles.end());
}

std::vector<std::string>
SignalTraceReader::signalNames() const
{
    std::vector<std::string> out;
    out.reserve(_bySignal.size());
    for (const auto& [name, cycles] : _bySignal)
        out.push_back(name);
    return out;
}

u64
SignalTraceReader::activity(const std::string& signal, Cycle from,
                            Cycle to) const
{
    auto it = _bySignal.find(signal);
    if (it == _bySignal.end())
        return 0;
    const auto& cycles = it->second;
    auto lo = std::lower_bound(cycles.begin(), cycles.end(), from);
    auto hi = std::lower_bound(cycles.begin(), cycles.end(), to);
    return static_cast<u64>(hi - lo);
}

} // namespace attila::sim

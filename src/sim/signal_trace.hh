/**
 * @file
 * Signal trace output for the Signal Trace Visualizer.
 *
 * When enabled, every object written into a traced signal emits one
 * record: cycle, signal name, object id, cookie trail, color and info
 * string.  The SignalTraceReader parses the file back and computes
 * per-signal occupancy, which the visualizer example renders as an
 * ASCII timeline for performance debugging.
 */

#ifndef ATTILA_SIM_SIGNAL_TRACE_HH
#define ATTILA_SIM_SIGNAL_TRACE_HH

#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/dynamic_object.hh"
#include "sim/types.hh"

namespace attila::sim
{

/** Streams signal activity records to a trace file. */
class SignalTraceWriter
{
  public:
    /** Opens @p path for writing; throws FatalError on failure. */
    explicit SignalTraceWriter(const std::string& path);
    ~SignalTraceWriter();

    /**
     * Record one object entering @p signal_name at @p cycle.
     * Serialized internally; note that record *order* is only
     * deterministic under the serial scheduler (the Gpu forces it
     * when tracing is enabled).
     */
    void record(Cycle cycle, const std::string& signal_name,
                const DynamicObject& obj);

    /** Flush buffered records to disk. */
    void flush();

    u64 recordCount() const { return _records; }

  private:
    std::mutex _mutex;
    std::ofstream _out;
    u64 _records = 0;
};

/** One parsed record from a signal trace file. */
struct SignalTraceRecord
{
    Cycle cycle = 0;
    std::string signal;
    u64 objectId = 0;
    std::string trail;
    u32 color = 0;
    std::string info;
};

/** Parses signal trace files and derives per-signal activity. */
class SignalTraceReader
{
  public:
    /** Parse the whole trace at @p path; throws FatalError on I/O or
     * parse errors. */
    explicit SignalTraceReader(const std::string& path);

    const std::vector<SignalTraceRecord>& records() const
    {
        return _records;
    }

    /** All signal names seen in the trace, sorted. */
    std::vector<std::string> signalNames() const;

    /**
     * Number of objects written into @p signal within
     * [@p from, @p to).
     */
    u64 activity(const std::string& signal, Cycle from, Cycle to) const;

    Cycle firstCycle() const { return _firstCycle; }
    Cycle lastCycle() const { return _lastCycle; }

  private:
    std::vector<SignalTraceRecord> _records;
    std::map<std::string, std::vector<Cycle>> _bySignal;
    Cycle _firstCycle = 0;
    Cycle _lastCycle = 0;
};

} // namespace attila::sim

#endif // ATTILA_SIM_SIGNAL_TRACE_HH

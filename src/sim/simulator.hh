/**
 * @file
 * Simulator: the clock loop driving boxes and signals.
 *
 * The simulator owns the signal binder and statistic manager, keeps
 * the list of boxes (owned elsewhere, typically by the Gpu), and
 * advances the whole model one cycle at a time.  Because every
 * inter-box signal has latency >= 1, the order in which boxes are
 * clocked within a cycle does not affect the modelled behaviour.
 */

#ifndef ATTILA_SIM_SIMULATOR_HH
#define ATTILA_SIM_SIMULATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/box.hh"
#include "sim/signal_binder.hh"
#include "sim/signal_trace.hh"
#include "sim/statistics.hh"

namespace attila::sim
{

/** Owns the simulation infrastructure and runs the clock loop. */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    SignalBinder& binder() { return _binder; }
    StatisticManager& stats() { return _stats; }

    /** Register a box to be clocked each cycle (not owned). */
    void
    addBox(Box* box)
    {
        _boxes.push_back(box);
    }

    /** Enable signal tracing into @p path. */
    void
    enableTracing(const std::string& path)
    {
        _tracer = std::make_unique<SignalTraceWriter>(path);
        _binder.setTracer(_tracer.get());
    }

    SignalTraceWriter* tracer() { return _tracer.get(); }

    Cycle cycle() const { return _cycle; }

    /** Advance the whole model one cycle. */
    void
    step()
    {
        for (Box* box : _boxes)
            box->clock(_cycle);
        ++_cycle;
        _stats.cycle(_cycle);
    }

    /** Run for @p cycles cycles. */
    void
    run(u64 cycles)
    {
        for (u64 i = 0; i < cycles; ++i)
            step();
    }

    /** True when every box reports no in-flight work. */
    bool
    allEmpty() const
    {
        for (const Box* box : _boxes) {
            if (!box->empty())
                return false;
        }
        return true;
    }

  private:
    SignalBinder _binder;
    StatisticManager _stats;
    std::vector<Box*> _boxes;
    std::unique_ptr<SignalTraceWriter> _tracer;
    Cycle _cycle = 0;
};

} // namespace attila::sim

#endif // ATTILA_SIM_SIMULATOR_HH

/**
 * @file
 * Simulator: the clock loop driving boxes and signals.
 *
 * The simulator owns the signal binder, the statistic manager, the
 * clock domains grouping the boxes, and the scheduler that advances
 * them.  Because every inter-box signal has latency >= 1 and boxes
 * follow the two-phase update/propagate lifecycle, the order in
 * which boxes are clocked within a cycle does not affect the
 * modelled behaviour — which is what lets the scheduler clock them
 * serially or across a worker pool with bit-identical results.
 *
 * Each master tick advances every clock domain whose divider
 * matches; statistics window bookkeeping runs after phase B on the
 * simulator thread, so counters are only ever touched by one thread
 * at a time.
 */

#ifndef ATTILA_SIM_SIMULATOR_HH
#define ATTILA_SIM_SIMULATOR_HH

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "sim/box.hh"
#include "sim/clock_domain.hh"
#include "sim/event_trace.hh"
#include "sim/scheduler.hh"
#include "sim/signal_binder.hh"
#include "sim/signal_trace.hh"
#include "sim/statistics.hh"

namespace attila::sim
{

/** Owns the simulation infrastructure and runs the clock loop. */
class Simulator
{
  public:
    Simulator()
        : _scheduler(std::make_unique<SerialScheduler>())
    {
        // Simulator-driven models always use the two-phase write
        // protocol; standalone binders (unit tests) stay immediate.
        _binder.setBuffered(true);
    }

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    SignalBinder& binder() { return _binder; }
    StatisticManager& stats() { return _stats; }

    /**
     * Find or create the clock domain @p name.  The divider is fixed
     * at creation; re-requesting an existing domain with a different
     * divider is a configuration error.
     */
    ClockDomain&
    domain(const std::string& name, u32 divider = 1)
    {
        for (auto& d : _domains) {
            if (d->name() == name) {
                if (d->divider() != divider)
                    fatal("clock domain '", name,
                          "': divider mismatch (", d->divider(),
                          " vs ", divider, ")");
                return *d;
            }
        }
        _domains.push_back(
            std::make_unique<ClockDomain>(name, divider));
        return *_domains.back();
    }

    const std::vector<std::unique_ptr<ClockDomain>>&
    domains() const
    {
        return _domains;
    }

    /**
     * Register a box to be clocked each cycle (not owned); shorthand
     * for adding to the master-rate "default" domain.
     */
    void
    addBox(Box* box)
    {
        domain("default").addBox(box);
    }

    /**
     * Install the engine that clocks the domains.  Defaults to
     * SerialScheduler.
     */
    void
    setScheduler(std::unique_ptr<Scheduler> scheduler)
    {
        if (!scheduler)
            fatal("setScheduler: null scheduler");
        _scheduler = std::move(scheduler);
        _scheduler->setIdleSkip(_idleSkip);
    }

    Scheduler& scheduler() { return *_scheduler; }

    /**
     * Enable or disable activity-driven clocking (default on):
     * per-box idle skipping in the scheduler plus the whole-model
     * fast-forward in run().  Off restores the always-clock
     * reference path; observables are identical either way.
     */
    void
    setIdleSkip(bool enable)
    {
        _idleSkip = enable;
        _scheduler->setIdleSkip(enable);
    }

    bool idleSkip() const { return _idleSkip; }

    /** Enable signal tracing into @p path. */
    void
    enableTracing(const std::string& path)
    {
        _tracer = std::make_unique<SignalTraceWriter>(path);
        _binder.setTracer(_tracer.get());
    }

    SignalTraceWriter* tracer() { return _tracer.get(); }

    /**
     * Enable structured event tracing: register every box (span
     * events come from the scheduler's clock/skip decisions), give
     * each box the chance to wire unit-level emitters
     * (attachEventTrace), and attach the trace to every signal.
     * Call after all boxes are in their domains; boxes and signals
     * added later are still picked up via the binder and explicit
     * attachment, but ids assigned here are deterministic.  Unlike
     * the text signal trace this does not constrain the scheduler.
     */
    void
    enableEventTrace()
    {
        if (_eventTrace)
            return;
        _eventTrace = std::make_unique<EventTrace>();
        for (auto& d : _domains) {
            for (Box* box : d->boxes()) {
                box->installEventTrace(
                    _eventTrace.get(),
                    _eventTrace->registerBox(box->name()));
                box->attachEventTrace(*_eventTrace);
            }
        }
        _binder.setEventTrace(_eventTrace.get());
    }

    EventTrace* eventTrace() { return _eventTrace.get(); }

    /**
     * Close all open activity spans at the current cycle and return
     * the merged, cycle-sorted trace snapshot.  Run between steps on
     * the simulator thread (no worker is inside a phase then);
     * recording continues afterwards if the model keeps running.
     */
    EventTraceData
    finishEventTrace()
    {
        if (!_eventTrace)
            fatal("finishEventTrace: event tracing is not enabled");
        for (auto& d : _domains) {
            for (Box* box : d->boxes())
                box->finishEventSpan();
        }
        return _eventTrace->collect();
    }

    /** Master ticks elapsed (the rate of divider-1 domains). */
    Cycle cycle() const { return _tick; }

    /** Advance the whole model one master tick. */
    void
    step()
    {
        for (auto& d : _domains) {
            if (d->ticksAt(_tick))
                _scheduler->clockDomain(*d, d->cycle());
        }
        for (auto& d : _domains) {
            if (d->ticksAt(_tick))
                d->advance();
        }
        ++_tick;
        _stats.cycle(_tick);
    }

    /** Run for @p cycles master ticks. */
    void
    run(u64 cycles)
    {
        for (u64 i = 0; i < cycles; ++i) {
            step();
            if (_idleSkip && i + 1 < cycles)
                i += fastForward(cycles - i - 1);
        }
    }

    /**
     * Whole-model fast-forward: when the last step skipped every
     * box of every domain and no object is anywhere inside a wire,
     * nothing can change state before the earliest scheduled box
     * wakeup — so skip up to @p maxTicks master ticks in bulk,
     * performing only the per-tick bookkeeping (domain cycle
     * counters, statistics windows) the skipped steps would have
     * done.  Returns the ticks skipped (0 when the model is not
     * provably idle).  Observables stay bit-identical: the skipped
     * steps would have clocked no box and closed the same all-zero
     * statistics windows.
     */
    u64
    fastForward(u64 maxTicks)
    {
        if (maxTicks == 0)
            return 0;
        for (const auto& d : _domains) {
            if (!d->lastAllIdle())
                return 0;
        }
        // The per-domain flags can be stale for slow domains between
        // their ticks (and say nothing about wires between domains),
        // so additionally require every signal empty.  With no box
        // busy and nothing in flight, the only future event is the
        // earliest wakeup.
        if (_binder.totalInFlight() != 0)
            return 0;
        u64 skip = maxTicks;
        for (const auto& d : _domains) {
            const Cycle wake = d->nextWake();
            if (wake == Box::NoWake)
                continue;
            const Cycle local = d->cycle();
            if (wake <= local)
                return 0; // Wakeup due at the very next tick.
            // Master tick running domain cycle `wake`: the next tick
            // where the domain fires, plus (wake - local) periods.
            const u64 div = d->divider();
            const u64 rem = _tick % div;
            const u64 firstFire = rem == 0 ? _tick : _tick + div - rem;
            const u64 wakeTick = firstFire + (wake - local) * div;
            skip = std::min(skip, wakeTick - _tick);
        }
        if (skip == 0)
            return 0;
        for (auto& d : _domains) {
            const u64 div = d->divider();
            const u64 rem = _tick % div;
            const u64 firstFire = rem == 0 ? _tick : _tick + div - rem;
            if (firstFire < _tick + skip) {
                d->advanceBy((_tick + skip - 1 - firstFire) / div +
                             1);
            }
        }
        _stats.skipCycles(_tick, _tick + skip);
        _tick += skip;
        return skip;
    }

    /** True when every box reports no in-flight work. */
    bool
    allEmpty() const
    {
        for (const auto& d : _domains) {
            if (!d->allEmpty())
                return false;
        }
        return true;
    }

    /**
     * True when every box is empty *and* no signal holds in-flight
     * objects: the model is fully drained.  O(boxes + signals); poll
     * sparingly.
     */
    bool
    quiescent() const
    {
        return allEmpty() && _binder.totalInFlight() == 0;
    }

  private:
    SignalBinder _binder;
    StatisticManager _stats;
    std::vector<std::unique_ptr<ClockDomain>> _domains;
    std::unique_ptr<Scheduler> _scheduler;
    std::unique_ptr<SignalTraceWriter> _tracer;
    std::unique_ptr<EventTrace> _eventTrace;
    Cycle _tick = 0;
    bool _idleSkip = true;
};

} // namespace attila::sim

#endif // ATTILA_SIM_SIMULATOR_HH

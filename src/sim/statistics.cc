#include "sim/statistics.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace attila::sim
{

Statistic&
StatisticManager::get(const std::string& box_name,
                      const std::string& stat_name)
{
    const std::string full = box_name + "." + stat_name;
    std::lock_guard<std::mutex> lock(_registry);
    auto it = _stats.find(full);
    if (it == _stats.end()) {
        auto stat = std::make_unique<Statistic>(full);
        // Late-registered statistics must not desynchronize the CSV
        // rows: pad with empty windows already closed.
        for (std::size_t i = 0; i < _sampleCount; ++i)
            stat->closeWindow();
        it = _stats.emplace(full, std::move(stat)).first;
    }
    return *it->second;
}

const Statistic*
StatisticManager::find(const std::string& full_name) const
{
    // get() may insert from any worker thread (boxes register
    // statistics lazily), so every map traversal needs the registry
    // lock — an unlocked find() races the rebalancing of the tree.
    std::lock_guard<std::mutex> lock(_registry);
    auto it = _stats.find(full_name);
    return it == _stats.end() ? nullptr : it->second.get();
}

void
StatisticManager::closeAllWindows()
{
    std::lock_guard<std::mutex> lock(_registry);
    for (auto& [name, stat] : _stats)
        stat->closeWindow();
    ++_sampleCount;
}

std::vector<std::string>
StatisticManager::names() const
{
    std::lock_guard<std::mutex> lock(_registry);
    std::vector<std::string> out;
    out.reserve(_stats.size());
    for (const auto& [name, stat] : _stats)
        out.push_back(name);
    return out;
}

void
StatisticManager::writeCsv(std::ostream& os) const
{
    std::lock_guard<std::mutex> lock(_registry);
    os << "window";
    for (const auto& [name, stat] : _stats)
        os << ',' << name;
    os << '\n';
    for (std::size_t row = 0; row < _sampleCount; ++row) {
        os << row;
        for (const auto& [name, stat] : _stats) {
            os << ',';
            if (row < stat->samples().size())
                os << stat->samples()[row];
            else
                os << 0;
        }
        os << '\n';
    }
}

void
StatisticManager::writeTotalsCsv(std::ostream& os) const
{
    std::lock_guard<std::mutex> lock(_registry);
    os << "statistic,total\n";
    for (const auto& [name, stat] : _stats)
        os << name << ',' << stat->total() << '\n';
}

} // namespace attila::sim

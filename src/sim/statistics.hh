/**
 * @file
 * Statistics collection.
 *
 * Every statistic is registered with the StatisticManager under a
 * "box.stat" name.  Besides lifetime totals, the manager samples each
 * statistic over fixed cycle windows (10K cycles in the paper's
 * figures) so time-series such as per-frame texture cache hit rate or
 * unit utilization can be produced, and dumps everything as CSV —
 * the paper's statistics file.
 */

#ifndef ATTILA_SIM_STATISTICS_HH
#define ATTILA_SIM_STATISTICS_HH

#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace attila::sim
{

/** A monotonically accumulating counter with windowed sampling. */
class Statistic
{
  public:
    explicit Statistic(std::string name) : _name(std::move(name)) {}

    const std::string& name() const { return _name; }

    /** Accumulate @p n events. */
    void
    inc(u64 n = 1)
    {
        _total += n;
        _window += n;
    }

    /** Lifetime total. */
    u64 total() const { return _total; }

    /** Value accumulated in the current (unclosed) window. */
    u64 windowValue() const { return _window; }

    /** Per-window samples closed so far. */
    const std::vector<u64>& samples() const { return _samples; }

    /** Close the current window, pushing it onto the sample list. */
    void
    closeWindow()
    {
        _samples.push_back(_window);
        _window = 0;
    }

  private:
    std::string _name;
    u64 _total = 0;
    u64 _window = 0;
    std::vector<u64> _samples;
};

/**
 * Deferred accumulator for hot-loop counting.
 *
 * Incrementing a Statistic from an inner loop chases the reference
 * and touches two u64s per event.  A BatchedStat accumulates into a
 * plain local counter and folds the sum into the Statistic once per
 * clock (commit() at the end of the owning box's update), which is
 * observably identical as long as commits happen before the
 * StatisticManager closes the cycle's sampling window — the
 * simulator closes windows between master ticks, after every box
 * has updated.  setImmediate(true) restores the straight-through
 * reference path for A/B runs.
 */
class BatchedStat
{
  public:
    explicit BatchedStat(Statistic& stat) : _stat(stat) {}

    void
    inc(u64 n = 1)
    {
        if (_immediate)
            _stat.inc(n);
        else
            _pending += n;
    }

    /** Events accumulated since the last commit. */
    u64 pending() const { return _pending; }

    /** Committed total plus pending events — what total() will
     * read after the next commit.  Valid in both modes. */
    u64 liveTotal() const { return _stat.total() + _pending; }

    void
    commit()
    {
        if (_pending) {
            _stat.inc(_pending);
            _pending = 0;
        }
    }

    void setImmediate(bool immediate) { _immediate = immediate; }

  private:
    Statistic& _stat;
    u64 _pending = 0;
    bool _immediate = false;
};

/**
 * Name server that registers, samples and dumps statistics.
 *
 * Threading contract under the parallel scheduler: every method that
 * touches the registry map (get(), find(), names(), the CSV dumps
 * and closeAllWindows()) takes the registry mutex, so lookups may
 * run from any thread concurrently with worker-side registration.
 * The *contents* of a Statistic are not locked: each Statistic is
 * incremented only by the box that registered it (one owner per
 * counter, signal write counters belong to the signal's single
 * writer), and window closing / CSV dumping runs on the simulator
 * thread between cycles, when no worker is inside a phase — so a
 * pointer returned by find() is safe to read only under that same
 * quiescence rule.
 */
class StatisticManager
{
  public:
    /** Get or create the statistic "box.stat". */
    Statistic& get(const std::string& box_name,
                   const std::string& stat_name);

    /** Look up an existing statistic; nullptr when absent. */
    const Statistic* find(const std::string& full_name) const;

    /** Set the sampling window in cycles (0 disables sampling). */
    void setWindow(Cycle window) { _window = window; }
    Cycle window() const { return _window; }

    /**
     * Advance the sampling clock; closes a window on every multiple
     * of the window size.
     */
    void
    cycle(Cycle now)
    {
        if (_window == 0)
            return;
        if (now != 0 && now % _window == 0)
            closeAllWindows();
    }

    /**
     * Bulk form of cycle() for the simulator's whole-model
     * fast-forward: closes exactly the windows that per-tick calls
     * for every cycle in (@p from, @p to] would have closed.  The
     * skipped cycles accumulated nothing, so the CSV rows come out
     * bit-identical to stepping through them.
     */
    void
    skipCycles(Cycle from, Cycle to)
    {
        if (_window == 0)
            return;
        const u64 closes = to / _window - from / _window;
        for (u64 k = 0; k < closes; ++k)
            closeAllWindows();
    }

    /** Close the current window on every statistic. */
    void closeAllWindows();

    /** Number of windows closed so far. */
    std::size_t sampleCount() const { return _sampleCount; }

    /** All registered statistic names, sorted. */
    std::vector<std::string> names() const;

    /**
     * Dump one row per closed window, one column per statistic, as
     * CSV with a header row.
     */
    void writeCsv(std::ostream& os) const;

    /** Dump lifetime totals as "name,total" CSV. */
    void writeTotalsCsv(std::ostream& os) const;

  private:
    std::map<std::string, std::unique_ptr<Statistic>> _stats;
    mutable std::mutex _registry;
    Cycle _window = 0;
    std::size_t _sampleCount = 0;
};

} // namespace attila::sim

#endif // ATTILA_SIM_STATISTICS_HH

#include "sim/trace_export.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <tuple>

#include "sim/logging.hh"
#include "sim/statistics.hh"

namespace attila::sim
{

namespace
{

const std::string&
unitName(const std::vector<std::string>& table, u16 unit,
         const char* what)
{
    if (unit >= table.size())
        fatal("event trace: corrupt snapshot — ", what, " id ", unit,
              " outside the name table (", table.size(), " entries)");
    return table[unit];
}

/** Add the span [begin, end) to a per-bucket cycle-count series. */
void
addSpan(std::vector<u64>& buckets, u64 window, Cycle begin, Cycle end)
{
    if (end <= begin)
        return;
    const std::size_t first = begin / window;
    const std::size_t last = (end - 1) / window;
    for (std::size_t k = first;
         k <= last && k < buckets.size(); ++k) {
        const Cycle lo = std::max<Cycle>(begin, k * window);
        const Cycle hi = std::min<Cycle>(end, (k + 1) * window);
        buckets[k] += hi - lo;
    }
}

bool
endsWith(const std::string& s, const std::string& suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(),
                     suffix) == 0;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Pair SpanBegin/SpanEnd events per box.  The event stream is sorted
 * by cycle and a box records at most one span edge per cycle, so a
 * linear scan with one open-start slot per box reconstructs every
 * span.  Unmatched opens are closed one cycle past the last event
 * (they were still active when the trace was collected).
 */
std::vector<std::tuple<u16, Cycle, Cycle>>
collectSpans(const EventTraceData& data)
{
    std::vector<std::tuple<u16, Cycle, Cycle>> spans;
    constexpr Cycle kClosed = ~Cycle{0};
    std::vector<Cycle> open(data.boxes.size(), kClosed);
    Cycle maxCycle = 0;
    for (const TraceEvent& ev : data.events) {
        maxCycle = std::max(maxCycle, ev.cycle);
        const auto kind = static_cast<EventKind>(ev.kind);
        if (kind != EventKind::SpanBegin &&
            kind != EventKind::SpanEnd) {
            continue;
        }
        unitName(data.boxes, ev.unit, "box");
        if (kind == EventKind::SpanBegin) {
            if (open[ev.unit] == kClosed)
                open[ev.unit] = ev.cycle;
        } else if (open[ev.unit] != kClosed) {
            spans.emplace_back(ev.unit, open[ev.unit], ev.cycle);
            open[ev.unit] = kClosed;
        }
    }
    for (std::size_t box = 0; box < open.size(); ++box) {
        if (open[box] != kClosed) {
            spans.emplace_back(static_cast<u16>(box), open[box],
                               maxCycle + 1);
        }
    }
    return spans;
}

} // anonymous namespace

TraceSeries
aggregateTrace(const EventTraceData& data, u64 window)
{
    if (window == 0)
        fatal("aggregateTrace: window must be >= 1");

    TraceSeries series;
    series.window = window;
    if (data.events.empty())
        return series;

    Cycle maxCycle = 0;
    for (const TraceEvent& ev : data.events)
        maxCycle = std::max(maxCycle, ev.cycle);
    series.buckets = static_cast<std::size_t>(maxCycle / window) + 1;

    auto bucketOf = [&](const std::string& key) -> std::vector<u64>& {
        auto& counts = series.counts[key];
        if (counts.empty())
            counts.resize(series.buckets, 0);
        return counts;
    };

    for (const TraceEvent& ev : data.events) {
        const std::size_t bucket =
            static_cast<std::size_t>(ev.cycle / window);
        switch (static_cast<EventKind>(ev.kind)) {
          case EventKind::SignalWrite:
            bucketOf("signal." +
                     unitName(data.signals, ev.unit, "signal") +
                     ".writes")[bucket] += 1;
            break;
          case EventKind::CacheHit:
            bucketOf(unitName(data.caches, ev.unit, "cache") +
                     ".cacheHits")[bucket] += 1;
            break;
          case EventKind::CacheMiss:
            bucketOf(unitName(data.caches, ev.unit, "cache") +
                     ".cacheMisses")[bucket] += 1;
            break;
          case EventKind::ThreadBegin:
            bucketOf(unitName(data.shaders, ev.unit, "shader") +
                     ".threads")[bucket] += 1;
            break;
          default:
            break;
        }
    }

    for (const auto& [box, begin, end] : collectSpans(data)) {
        addSpan(bucketOf(data.boxes[box] + ".activeCycles"), window,
                begin, end);
    }
    return series;
}

std::vector<std::string>
crossCheckStats(const TraceSeries& series,
                const StatisticManager& stats)
{
    std::vector<std::string> mismatches;
    std::size_t compared = 0;
    for (const auto& [key, counts] : series.counts) {
        // Utilization series are derived from spans; no statistic
        // counts "active cycles", so there is nothing to compare.
        if (endsWith(key, ".activeCycles"))
            continue;
        const Statistic* stat = stats.find(key);
        if (!stat) {
            mismatches.push_back("series '" + key +
                                 "' has no registered statistic");
            continue;
        }
        ++compared;
        const auto& samples = stat->samples();
        for (std::size_t w = 0; w < samples.size(); ++w) {
            const u64 expect = w < counts.size() ? counts[w] : 0;
            if (samples[w] != expect) {
                mismatches.push_back(
                    "series '" + key + "' window " +
                    std::to_string(w) + ": trace " +
                    std::to_string(expect) + " vs stat " +
                    std::to_string(samples[w]));
                break;
            }
        }
        const u64 sum = std::accumulate(counts.begin(), counts.end(),
                                        u64{0});
        if (sum != stat->total()) {
            mismatches.push_back(
                "series '" + key + "' total: trace " +
                std::to_string(sum) + " vs stat " +
                std::to_string(stat->total()));
        }
    }
    if (compared == 0)
        mismatches.push_back(
            "no trace series had a statistic to cross-check against");
    return mismatches;
}

std::string
chromeTraceJson(const EventTraceData& data, u64 window)
{
    if (window == 0)
        fatal("chromeTraceJson: window must be >= 1");

    std::ostringstream os;
    os << "{\"traceEvents\":[\n";
    bool firstEvent = true;
    auto next = [&]() -> std::ostringstream& {
        if (!firstEvent)
            os << ",\n";
        firstEvent = false;
        return os;
    };

    next() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
              "\"args\":{\"name\":\"ATTILA GPU\"}}";
    for (std::size_t i = 0; i < data.boxes.size(); ++i) {
        next() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":"
               << i << ",\"args\":{\"name\":\""
               << jsonEscape(data.boxes[i]) << "\"}}";
    }

    // Box activity spans: one track per box, one duration event per
    // span.  Cycles map 1:1 onto microseconds.
    for (const auto& [box, begin, end] : collectSpans(data)) {
        next() << "{\"name\":\"active\",\"cat\":\"box\",\"ph\":\"X\","
                  "\"ts\":"
               << begin << ",\"dur\":" << (end - begin)
               << ",\"pid\":0,\"tid\":" << box << "}";
    }

    // Aggregated series as counter tracks (the Figure 8/9 views).
    const TraceSeries series = aggregateTrace(data, window);
    for (const auto& [key, counts] : series.counts) {
        const std::string name = jsonEscape(key);
        for (std::size_t k = 0; k < counts.size(); ++k) {
            next() << "{\"name\":\"" << name
                   << "\",\"ph\":\"C\",\"pid\":0,\"ts\":"
                   << k * window << ",\"args\":{\"value\":"
                   << counts[k] << "}}";
        }
    }

    os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
          "\"window\":\""
       << window << "\",\"events\":\"" << data.events.size()
       << "\",\"dropped\":\"" << data.dropped << "\"}}\n";
    return os.str();
}

void
writeChromeTraceJson(const EventTraceData& data, u64 window,
                     const std::string& path)
{
    std::ofstream out(path);
    if (!out)
        fatal("event trace: cannot open '", path, "' for writing");
    out << chromeTraceJson(data, window);
    if (!out)
        fatal("event trace: write error on '", path, "'");
}

} // namespace attila::sim

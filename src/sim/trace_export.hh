/**
 * @file
 * Event trace export and aggregation.
 *
 * Two consumers of an EventTraceData snapshot:
 *
 *  - aggregateTrace() folds the event stream into per-window count
 *    series under the same names the StatisticManager uses
 *    ("signal.<name>.writes", "<cache>.cacheHits", ...), which is
 *    what regenerates the paper's Figure 8 (texture cache behaviour)
 *    and Figure 9 (unit utilization) time series from a trace alone.
 *    crossCheckStats() then proves trace and statistics agree window
 *    by window — the trace is validated against an independently
 *    collected ground truth, not against itself.
 *
 *  - writeChromeTraceJson() renders the snapshot as a Chrome-tracing
 *    / Perfetto JSON file: box activity spans become duration events
 *    on one track per box, and the aggregated series become counter
 *    tracks, so a fig10 run can be opened directly in
 *    ui.perfetto.dev.
 */

#ifndef ATTILA_SIM_TRACE_EXPORT_HH
#define ATTILA_SIM_TRACE_EXPORT_HH

#include <map>
#include <string>
#include <vector>

#include "sim/event_trace.hh"

namespace attila::sim
{

class StatisticManager;

/** Per-window event-count series keyed by statistic-style names. */
struct TraceSeries
{
    u64 window = 0;       ///< Cycles per bucket.
    std::size_t buckets = 0; ///< Buckets covering [0, maxCycle].
    /** Counts per bucket; missing trailing buckets are zero. */
    std::map<std::string, std::vector<u64>> counts;
};

/**
 * Aggregate @p data into @p window -cycle buckets.  Emitted series:
 *  - "signal.<name>.writes"  — SignalWrite counts;
 *  - "<cache>.cacheHits" / "<cache>.cacheMisses";
 *  - "<shader>.threads"      — thread slots allocated;
 *  - "<box>.activeCycles"    — cycles covered by activity spans
 *    (utilization; derived from spans, no statistic counterpart).
 * @p window must be >= 1.
 */
TraceSeries aggregateTrace(const EventTraceData& data, u64 window);

/**
 * Compare every series that has a StatisticManager counterpart (all
 * but "<box>.activeCycles") against the statistic's closed windows
 * and lifetime total.  Requires @p series.window to equal the
 * manager's sampling window for the per-window comparison to be
 * meaningful.  Returns human-readable mismatch descriptions; empty
 * means every comparable series matched and at least one series was
 * actually compared.
 */
std::vector<std::string>
crossCheckStats(const TraceSeries& series,
                const StatisticManager& stats);

/**
 * Render @p data as Chrome-tracing JSON ("traceEvents" array with
 * metadata, duration and counter events; timestamps are cycles
 * expressed as microseconds).  @p window sizes the counter buckets.
 */
std::string chromeTraceJson(const EventTraceData& data, u64 window);

/** chromeTraceJson() straight to @p path; FatalError on I/O error. */
void writeChromeTraceJson(const EventTraceData& data, u64 window,
                          const std::string& path);

} // namespace attila::sim

#endif // ATTILA_SIM_TRACE_EXPORT_HH

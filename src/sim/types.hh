/**
 * @file
 * Basic type aliases shared by every ATTILA module.
 */

#ifndef ATTILA_SIM_TYPES_HH
#define ATTILA_SIM_TYPES_HH

#include <cstdint>

namespace attila
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;
using f32 = float;
using f64 = double;

/** Simulation time expressed in clock cycles. */
using Cycle = std::uint64_t;

} // namespace attila

#endif // ATTILA_SIM_TYPES_HH

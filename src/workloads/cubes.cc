#include "workloads/cubes.hh"

#include <cmath>
#include <cstring>

namespace attila::workloads
{

using emu::Vec4;
using gl::Cap;
using gpu::Primitive;
using gpu::StreamFormat;

namespace
{

/** Interleaved vertex: position, normal, texcoord. */
struct CubeVertex
{
    f32 px, py, pz;
    f32 nx, ny, nz;
    f32 u, v;
};

} // anonymous namespace

void
CubesWorkload::setup(gl::Context& ctx)
{
    // A unit cube as a quad list (exercises Primitive::Quads).
    struct Face
    {
        f32 n[3];
        f32 c[4][3];
    };
    const Face faces[6] = {
        {{0, 0, 1},
         {{-1, -1, 1}, {1, -1, 1}, {1, 1, 1}, {-1, 1, 1}}},
        {{0, 0, -1},
         {{1, -1, -1}, {-1, -1, -1}, {-1, 1, -1}, {1, 1, -1}}},
        {{1, 0, 0},
         {{1, -1, 1}, {1, -1, -1}, {1, 1, -1}, {1, 1, 1}}},
        {{-1, 0, 0},
         {{-1, -1, -1}, {-1, -1, 1}, {-1, 1, 1}, {-1, 1, -1}}},
        {{0, 1, 0}, {{-1, 1, 1}, {1, 1, 1}, {1, 1, -1}, {-1, 1, -1}}},
        {{0, -1, 0},
         {{-1, -1, -1}, {1, -1, -1}, {1, -1, 1}, {-1, -1, 1}}},
    };
    std::vector<CubeVertex> vertices;
    for (const Face& face : faces) {
        const f32 uv[4][2] = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
        for (u32 i = 0; i < 4; ++i) {
            vertices.push_back({face.c[i][0], face.c[i][1],
                                face.c[i][2], face.n[0], face.n[1],
                                face.n[2], uv[i][0], uv[i][1]});
        }
    }
    _vertexCount = static_cast<u32>(vertices.size());
    std::vector<u8> bytes(vertices.size() * sizeof(CubeVertex));
    std::memcpy(bytes.data(), vertices.data(), bytes.size());
    _vertexBuffer = ctx.genBuffer();
    ctx.bufferData(_vertexBuffer, std::move(bytes));

    Rng rng(0x12345u);
    _texture = ctx.genTexture();
    ctx.activeTexture(0);
    ctx.bindTexture(_texture);
    ctx.texImage2D(0, emu::TexFormat::RGBA8, _params.textureSize,
                   _params.textureSize,
                   makeDiffuseTexture(_params.textureSize, rng));
    ctx.generateMipmaps();
    ctx.texFilter(emu::MinFilter::LinearMipLinear, true);
    ctx.texWrap(emu::WrapMode::Repeat, emu::WrapMode::Repeat);
    ctx.texEnv(gl::TexEnvMode::Modulate);
}

void
CubesWorkload::renderFrame(gl::Context& ctx, u32 frame)
{
    const f32 t = static_cast<f32>(frame) * 3.0f;

    ctx.clearColor(0.1f, 0.1f, 0.15f, 1.0f);
    ctx.clearDepth(1.0f);
    ctx.clear(gl::clearColorBit | gl::clearDepthBit);

    ctx.enable(Cap::DepthTest);
    ctx.depthFunc(emu::CompareFunc::Less);
    ctx.depthMask(true);
    ctx.enable(Cap::CullFace);
    ctx.cullFace(gpu::CullMode::Back);
    ctx.frontFaceCcw(true);

    ctx.matrixMode(gl::MatrixMode::Projection);
    ctx.loadIdentity();
    ctx.perspective(55.0f,
                    static_cast<f32>(_params.width) /
                        static_cast<f32>(_params.height),
                    0.5f, 50.0f);
    ctx.matrixMode(gl::MatrixMode::ModelView);
    ctx.loadIdentity();
    ctx.lookAt({0.0f, 3.5f, 9.0f, 1.0f}, {0.0f, 0.0f, 0.0f, 1.0f},
               {0.0f, 1.0f, 0.0f, 0.0f});

    // Fixed-function lighting: one directional light.
    ctx.enable(Cap::Lighting);
    gl::LightState light;
    light.enabled = true;
    light.direction = {0.4f, 0.8f, 0.45f, 0.0f}; // Eye space-ish.
    light.diffuse = {1.0f, 0.95f, 0.85f, 1.0f};
    light.ambient = {0.1f, 0.1f, 0.12f, 1.0f};
    ctx.light(0, light);
    gl::MaterialState material;
    material.diffuse = {0.9f, 0.9f, 0.9f, 1.0f};
    material.ambient = {0.4f, 0.4f, 0.4f, 1.0f};
    ctx.material(material);

    ctx.enable(Cap::Texture2D);
    ctx.bindTexture(_texture);

    ctx.vertexPointer(_vertexBuffer, StreamFormat::Float3,
                      sizeof(CubeVertex), 0);
    ctx.normalPointer(_vertexBuffer, sizeof(CubeVertex), 12);
    ctx.texCoordPointer(0, _vertexBuffer, StreamFormat::Float2,
                        sizeof(CubeVertex), 24);

    const u32 cubes = std::max(1u, _params.detail / 2);
    for (u32 i = 0; i < cubes; ++i) {
        ctx.pushMatrix();
        const f32 angle =
            t + static_cast<f32>(i) * 360.0f / cubes;
        ctx.rotate(angle, 0.0f, 1.0f, 0.0f);
        ctx.translate(3.5f, 0.8f * std::sin(t * 0.05f + i), 0.0f);
        ctx.rotate(t * 1.7f + i * 40.0f, 1.0f, 1.0f, 0.0f);
        ctx.drawArrays(Primitive::Quads, 0, _vertexCount);
        ctx.popMatrix();
    }

    ctx.disable(Cap::Lighting);
    ctx.swapBuffers();
}

} // namespace attila::workloads

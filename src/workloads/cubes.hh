/**
 * @file
 * CubesWorkload: a quickstart-grade scene — spinning textured,
 * fixed-function-lit cubes.  Exercises the legacy transform and
 * lighting path, quad-list primitives and mipmapped texturing.
 */

#ifndef ATTILA_WORKLOADS_CUBES_HH
#define ATTILA_WORKLOADS_CUBES_HH

#include "workloads/workload.hh"

namespace attila::workloads
{

/** Spinning lit cubes. */
class CubesWorkload : public Workload
{
  public:
    explicit CubesWorkload(const WorkloadParams& params)
        : Workload(params)
    {}

    void setup(gl::Context& ctx) override;
    void renderFrame(gl::Context& ctx, u32 frame) override;

  private:
    u32 _vertexBuffer = 0;
    u32 _texture = 0;
    u32 _vertexCount = 0;
};

} // namespace attila::workloads

#endif // ATTILA_WORKLOADS_CUBES_HH

#include "workloads/shadows.hh"

#include <cmath>
#include <cstring>

namespace attila::workloads
{

using emu::Vec4;
using gl::Cap;
using gpu::Primitive;
using gpu::StreamFormat;

namespace
{

/** Interleaved vertex: position (3f), normal (3f), texcoord (2f). */
struct SceneVertex
{
    f32 px, py, pz;
    f32 nx, ny, nz;
    f32 u, v;
};

constexpr u32 sceneStride = sizeof(SceneVertex);

void
addQuad(std::vector<SceneVertex>& vertices, std::vector<u16>& indices,
        const Vec4& a, const Vec4& b, const Vec4& c, const Vec4& d,
        const Vec4& normal, f32 uvScale)
{
    const u16 base = static_cast<u16>(vertices.size());
    const Vec4 corners[4] = {a, b, c, d};
    const f32 uvs[4][2] = {{0, 0}, {uvScale, 0}, {uvScale, uvScale},
                           {0, uvScale}};
    for (u32 i = 0; i < 4; ++i) {
        vertices.push_back({corners[i].x, corners[i].y, corners[i].z,
                            normal.x, normal.y, normal.z, uvs[i][0],
                            uvs[i][1]});
    }
    indices.insert(indices.end(),
                   {base, static_cast<u16>(base + 1),
                    static_cast<u16>(base + 2), base,
                    static_cast<u16>(base + 2),
                    static_cast<u16>(base + 3)});
}

void
addBox(std::vector<SceneVertex>& vertices, std::vector<u16>& indices,
       f32 cx, f32 cy, f32 cz, f32 s)
{
    const f32 h = s / 2;
    const Vec4 p[8] = {
        {cx - h, cy - h, cz - h, 1}, {cx + h, cy - h, cz - h, 1},
        {cx + h, cy - h, cz + h, 1}, {cx - h, cy - h, cz + h, 1},
        {cx - h, cy + h, cz - h, 1}, {cx + h, cy + h, cz - h, 1},
        {cx + h, cy + h, cz + h, 1}, {cx - h, cy + h, cz + h, 1},
    };
    addQuad(vertices, indices, p[4], p[5], p[6], p[7],
            {0, 1, 0, 0}, 1.0f); // top
    addQuad(vertices, indices, p[0], p[1], p[5], p[4],
            {0, 0, -1, 0}, 1.0f);
    addQuad(vertices, indices, p[2], p[3], p[7], p[6],
            {0, 0, 1, 0}, 1.0f);
    addQuad(vertices, indices, p[1], p[2], p[6], p[5],
            {1, 0, 0, 0}, 1.0f);
    addQuad(vertices, indices, p[3], p[0], p[4], p[7],
            {-1, 0, 0, 0}, 1.0f);
}

const char* depthVp = R"(!!ARBvp1.0
# transform only (depth prepass / shadow volumes)
DP4 result.position.x, program.env[0], vertex.position;
DP4 result.position.y, program.env[1], vertex.position;
DP4 result.position.z, program.env[2], vertex.position;
DP4 result.position.w, program.env[3], vertex.position;
END
)";

const char* depthFp = R"(!!ARBfp1.0
MOV result.color, 0;
END
)";

const char* lightVp = R"(!!ARBvp1.0
# per-light pass: world position and normal to the interpolator
DP4 result.position.x, program.env[0], vertex.position;
DP4 result.position.y, program.env[1], vertex.position;
DP4 result.position.z, program.env[2], vertex.position;
DP4 result.position.w, program.env[3], vertex.position;
MOV result.texcoord[0], vertex.texcoord[0];
MOV result.texcoord[1], vertex.normal;
MOV result.texcoord[2], vertex.position;
END
)";

const char* lightFp = R"(!!ARBfp1.0
# Doom3-style point light: diffuse * N.L * attenuation
TEMP l, n, t, col;
SUB l, program.env[32], fragment.texcoord[2];
DP3 t.x, l, l;
RSQ t.y, t.x;
MUL l, l, t.y;
DP3 n.w, fragment.texcoord[1], fragment.texcoord[1];
RSQ n.w, n.w;
MUL n, fragment.texcoord[1], n.w;
DP3 t.z, n, l;
MAX t.z, t.z, 0;
MAD t.w, t.x, program.env[34].x, 1;
RCP t.w, t.w;
MUL t.z, t.z, t.w;
TEX col, fragment.texcoord[0], texture[0], 2D;
MUL col, col, program.env[33];
MUL result.color, col, t.z;
END
)";

const char* grateFp = R"(!!ARBfp1.0
# alpha-tested grate: the library injects KIL for the alpha test
TEMP c;
TEX c, fragment.texcoord[0], texture[0], 2D;
MOV result.color, c;
END
)";

} // anonymous namespace

void
ShadowsWorkload::buildGeometry(gl::Context& ctx)
{
    // Room: floor + 4 walls + ceiling, normals inward.
    std::vector<SceneVertex> rv;
    std::vector<u16> ri;
    const f32 R = 12.0f;  // Half extent.
    const f32 H = 6.0f;   // Height.
    addQuad(rv, ri, {-R, 0, -R, 1}, {R, 0, -R, 1}, {R, 0, R, 1},
            {-R, 0, R, 1}, {0, 1, 0, 0}, 6.0f); // floor
    addQuad(rv, ri, {-R, H, R, 1}, {R, H, R, 1}, {R, H, -R, 1},
            {-R, H, -R, 1}, {0, -1, 0, 0}, 6.0f); // ceiling
    addQuad(rv, ri, {-R, 0, -R, 1}, {-R, H, -R, 1}, {R, H, -R, 1},
            {R, 0, -R, 1}, {0, 0, 1, 0}, 4.0f);
    addQuad(rv, ri, {R, 0, R, 1}, {R, H, R, 1}, {-R, H, R, 1},
            {-R, 0, R, 1}, {0, 0, -1, 0}, 4.0f);
    addQuad(rv, ri, {-R, 0, R, 1}, {-R, H, R, 1}, {-R, H, -R, 1},
            {-R, 0, -R, 1}, {1, 0, 0, 0}, 4.0f);
    addQuad(rv, ri, {R, 0, -R, 1}, {R, H, -R, 1}, {R, H, R, 1},
            {R, 0, R, 1}, {-1, 0, 0, 0}, 4.0f);

    std::vector<u8> bytes(rv.size() * sceneStride);
    std::memcpy(bytes.data(), rv.data(), bytes.size());
    _room.vertexBuffer = ctx.genBuffer();
    ctx.bufferData(_room.vertexBuffer, std::move(bytes));
    std::vector<u8> ibytes(ri.size() * 2);
    std::memcpy(ibytes.data(), ri.data(), ibytes.size());
    _room.indexBuffer = ctx.genBuffer();
    ctx.bufferData(_room.indexBuffer, std::move(ibytes));
    _room.indexCount = static_cast<u32>(ri.size());

    // Boxes (the occluders).
    Rng rng(0xcafef00du);
    std::vector<SceneVertex> bv;
    std::vector<u16> bi;
    const u32 numBoxes = std::max(2u, _params.detail / 2);
    _boxCenters.clear();
    for (u32 i = 0; i < numBoxes; ++i) {
        const f32 x = rng.range(-8.0f, 8.0f);
        const f32 z = rng.range(-8.0f, 8.0f);
        const f32 s = rng.range(1.0f, 2.2f);
        addBox(bv, bi, x, s / 2, z, s);
        _boxCenters.push_back({x, s / 2, z, s});
    }
    bytes.assign(bv.size() * sceneStride, 0);
    std::memcpy(bytes.data(), bv.data(), bytes.size());
    _boxes.vertexBuffer = ctx.genBuffer();
    ctx.bufferData(_boxes.vertexBuffer, std::move(bytes));
    ibytes.assign(bi.size() * 2, 0);
    std::memcpy(ibytes.data(), bi.data(), ibytes.size());
    _boxes.indexBuffer = ctx.genBuffer();
    ctx.bufferData(_boxes.indexBuffer, std::move(ibytes));
    _boxes.indexCount = static_cast<u32>(bi.size());

    // Grate: a free-standing alpha-tested quad.
    std::vector<SceneVertex> gv;
    std::vector<u16> gi;
    addQuad(gv, gi, {-3, 0, 5, 1}, {3, 0, 5, 1}, {3, 4, 5, 1},
            {-3, 4, 5, 1}, {0, 0, -1, 0}, 3.0f);
    bytes.assign(gv.size() * sceneStride, 0);
    std::memcpy(bytes.data(), gv.data(), bytes.size());
    _grate.vertexBuffer = ctx.genBuffer();
    ctx.bufferData(_grate.vertexBuffer, std::move(bytes));
    ibytes.assign(gi.size() * 2, 0);
    std::memcpy(ibytes.data(), gi.data(), ibytes.size());
    _grate.indexBuffer = ctx.genBuffer();
    ctx.bufferData(_grate.indexBuffer, std::move(ibytes));
    _grate.indexCount = static_cast<u32>(gi.size());
}

void
ShadowsWorkload::buildShadowVolumes(gl::Context& ctx)
{
    // Per light: one static volume mesh extruding every box's top
    // face away from the light (a closed prism: near cap, sides,
    // far cap).  Positions only.
    const f32 D = 40.0f; // Extrusion distance.
    for (const Vec4& lp : _lightPositions) {
        std::vector<f32> verts;
        std::vector<u16> idx;
        auto emit = [&](const Vec4& p) -> u16 {
            verts.insert(verts.end(), {p.x, p.y, p.z});
            return static_cast<u16>(verts.size() / 3 - 1);
        };
        for (const Vec4& box : _boxCenters) {
            const f32 h = box.w / 2;
            const f32 top = box.y + h;
            const Vec4 q[4] = {
                {box.x - h, top, box.z - h, 1},
                {box.x + h, top, box.z - h, 1},
                {box.x + h, top, box.z + h, 1},
                {box.x - h, top, box.z + h, 1},
            };
            Vec4 e[4];
            for (u32 i = 0; i < 4; ++i) {
                Vec4 dir = q[i] - lp;
                const f32 len = std::sqrt(dot3(dir, dir));
                dir = dir * (len > 0 ? 1.0f / len : 0.0f);
                e[i] = q[i] + dir * D;
                e[i].w = 1.0f;
            }
            u16 qi[4], ei[4];
            for (u32 i = 0; i < 4; ++i)
                qi[i] = emit(q[i]);
            for (u32 i = 0; i < 4; ++i)
                ei[i] = emit(e[i]);
            // Near cap.
            idx.insert(idx.end(), {qi[0], qi[1], qi[2], qi[0],
                                   qi[2], qi[3]});
            // Far cap (reversed).
            idx.insert(idx.end(), {ei[2], ei[1], ei[0], ei[3],
                                   ei[2], ei[0]});
            // Sides.
            for (u32 i = 0; i < 4; ++i) {
                const u32 j = (i + 1) % 4;
                idx.insert(idx.end(),
                           {qi[i], qi[j], ei[j], qi[i], ei[j],
                            ei[i]});
            }
        }
        Mesh volume;
        std::vector<u8> bytes(verts.size() * 4);
        std::memcpy(bytes.data(), verts.data(), bytes.size());
        volume.vertexBuffer = ctx.genBuffer();
        ctx.bufferData(volume.vertexBuffer, std::move(bytes));
        std::vector<u8> ibytes(idx.size() * 2);
        std::memcpy(ibytes.data(), idx.data(), ibytes.size());
        volume.indexBuffer = ctx.genBuffer();
        ctx.bufferData(volume.indexBuffer, std::move(ibytes));
        volume.indexCount = static_cast<u32>(idx.size());
        _volumes.push_back(volume);
    }
}

void
ShadowsWorkload::buildPrograms(gl::Context& ctx)
{
    _depthProgV = ctx.genProgram();
    ctx.programString(_depthProgV, depthVp);
    _depthProgF = ctx.genProgram();
    ctx.programString(_depthProgF, depthFp);
    _lightProgV = ctx.genProgram();
    ctx.programString(_lightProgV, lightVp);
    _lightProgF = ctx.genProgram();
    ctx.programString(_lightProgF, lightFp);
    _grateProgF = ctx.genProgram();
    ctx.programString(_grateProgF, grateFp);
}

void
ShadowsWorkload::setup(gl::Context& ctx)
{
    _lightPositions = {{4.0f, 5.0f, 2.0f, 1.0f},
                       {-5.0f, 4.5f, -3.0f, 1.0f}};
    _lightColors = {{1.0f, 0.85f, 0.6f, 1.0f},
                    {0.5f, 0.6f, 1.0f, 1.0f}};

    buildGeometry(ctx);
    buildShadowVolumes(ctx);
    buildPrograms(ctx);

    Rng rng(0xfeedbeefu);
    const u32 ts = _params.textureSize;
    _diffuseTex = ctx.genTexture();
    ctx.activeTexture(0);
    ctx.bindTexture(_diffuseTex);
    ctx.texImage2D(0, emu::TexFormat::RGBA8, ts, ts,
                   makeDiffuseTexture(ts, rng));
    ctx.generateMipmaps();
    ctx.texFilter(emu::MinFilter::LinearMipLinear, true);
    ctx.texWrap(emu::WrapMode::Repeat, emu::WrapMode::Repeat);
    ctx.texMaxAnisotropy(_params.anisotropy);
    ctx.texEnv(gl::TexEnvMode::Modulate);

    _grateTex = ctx.genTexture();
    ctx.bindTexture(_grateTex);
    ctx.texImage2D(0, emu::TexFormat::DXT3, ts, ts,
                   encodeDxt3(makeGrateTexture(ts), ts, ts));
    ctx.texFilter(emu::MinFilter::Linear, true);
    ctx.texWrap(emu::WrapMode::Repeat, emu::WrapMode::Repeat);
    ctx.texEnv(gl::TexEnvMode::Replace);
    ctx.bindTexture(_diffuseTex);
}

void
ShadowsWorkload::renderFrame(gl::Context& ctx, u32 frame)
{
    const f32 t = static_cast<f32>(frame) * 0.1f;

    ctx.clearColor(0.0f, 0.0f, 0.0f, 1.0f);
    ctx.clearDepth(1.0f);
    ctx.clearStencil(0);
    ctx.clear(gl::clearColorBit | gl::clearDepthBit |
              gl::clearStencilBit);

    ctx.matrixMode(gl::MatrixMode::Projection);
    ctx.loadIdentity();
    ctx.perspective(70.0f,
                    static_cast<f32>(_params.width) /
                        static_cast<f32>(_params.height),
                    0.3f, 100.0f);
    ctx.matrixMode(gl::MatrixMode::ModelView);
    ctx.loadIdentity();
    const Vec4 eye{9.0f * std::sin(t), 3.0f, 9.0f * std::cos(t),
                   1.0f};
    ctx.lookAt(eye, {0.0f, 1.0f, 0.0f, 1.0f},
               {0.0f, 1.0f, 0.0f, 0.0f});

    ctx.enable(Cap::DepthTest);
    ctx.depthFunc(emu::CompareFunc::Less);
    ctx.depthMask(true);
    ctx.disable(Cap::CullFace);
    ctx.disable(Cap::Blend);
    ctx.disable(Cap::StencilTest);
    ctx.enable(Cap::Texture2D); // Unit 0 for all passes.

    auto bindScene = [&](const Mesh& mesh) {
        ctx.vertexPointer(mesh.vertexBuffer, StreamFormat::Float3,
                          sceneStride, 0);
        ctx.normalPointer(mesh.vertexBuffer, sceneStride, 12);
        ctx.texCoordPointer(0, mesh.vertexBuffer,
                            StreamFormat::Float2, sceneStride, 24);
    };
    auto drawScene = [&]() {
        bindScene(_room);
        ctx.drawElements(Primitive::Triangles, _room.indexCount,
                         _room.indexBuffer, 0, false);
        bindScene(_boxes);
        ctx.drawElements(Primitive::Triangles, _boxes.indexCount,
                         _boxes.indexBuffer, 0, false);
    };

    // --- 1. Depth prepass (colour writes off) ----------------------
    ctx.enable(Cap::VertexProgram);
    ctx.enable(Cap::FragmentProgram);
    ctx.bindProgramVertex(_depthProgV);
    ctx.bindProgramFragment(_depthProgF);
    ctx.colorMask(false, false, false, false);
    drawScene();
    ctx.colorMask(true, true, true, true);

    // --- 2. Ambient pass (fixed function, dim modulate) ------------
    ctx.disable(Cap::VertexProgram);
    ctx.disable(Cap::FragmentProgram);
    ctx.depthFunc(emu::CompareFunc::LessEqual);
    ctx.depthMask(false);
    ctx.color(0.18f, 0.18f, 0.2f, 1.0f);
    drawScene();

    // --- 3. Per-light shadow volume + additive light pass ----------
    for (u32 l = 0; l < _lightPositions.size(); ++l) {
        // 3a. Stencil the shadow volume (z-pass counting).
        ctx.enable(Cap::VertexProgram);
        ctx.enable(Cap::FragmentProgram);
        ctx.bindProgramVertex(_depthProgV);
        ctx.bindProgramFragment(_depthProgF);
        ctx.colorMask(false, false, false, false);
        ctx.enable(Cap::StencilTest);
        ctx.stencilFunc(emu::CompareFunc::Always, 0, 0xff);
        ctx.stencilMask(0xff);
        ctx.enable(Cap::CullFace);
        ctx.depthFunc(emu::CompareFunc::Less);

        ctx.vertexPointer(_volumes[l].vertexBuffer,
                          StreamFormat::Float3, 12, 0);
        ctx.disableAttrib(gl::attrNormal);
        ctx.disableAttrib(gl::attrTexCoord0);

        if (_params.twoSidedVolumes) {
            // Single pass with double-sided stencil (paper §7
            // extension): front faces increment, back faces
            // decrement, no culling.
            ctx.disable(Cap::CullFace);
            ctx.enable(Cap::StencilTwoSide);
            ctx.stencilOp(emu::StencilOp::Keep,
                          emu::StencilOp::Keep,
                          emu::StencilOp::IncrWrap);
            ctx.stencilFuncBack(emu::CompareFunc::Always, 0, 0xff);
            ctx.stencilOpBack(emu::StencilOp::Keep,
                              emu::StencilOp::Keep,
                              emu::StencilOp::DecrWrap);
            ctx.drawElements(Primitive::Triangles,
                             _volumes[l].indexCount,
                             _volumes[l].indexBuffer, 0, false);
            ctx.disable(Cap::StencilTwoSide);
        } else {
            // Front faces increment...
            ctx.cullFace(gpu::CullMode::Back);
            ctx.stencilOp(emu::StencilOp::Keep,
                          emu::StencilOp::Keep,
                          emu::StencilOp::IncrWrap);
            ctx.drawElements(Primitive::Triangles,
                             _volumes[l].indexCount,
                             _volumes[l].indexBuffer, 0, false);
            // ...back faces decrement.
            ctx.cullFace(gpu::CullMode::Front);
            ctx.stencilOp(emu::StencilOp::Keep,
                          emu::StencilOp::Keep,
                          emu::StencilOp::DecrWrap);
            ctx.drawElements(Primitive::Triangles,
                             _volumes[l].indexCount,
                             _volumes[l].indexBuffer, 0, false);
        }
        ctx.disable(Cap::CullFace);
        ctx.colorMask(true, true, true, true);

        // 3b. Additive lighting where unshadowed (stencil == 0).
        ctx.stencilFunc(emu::CompareFunc::Equal, 0, 0xff);
        ctx.stencilOp(emu::StencilOp::Keep, emu::StencilOp::Keep,
                      emu::StencilOp::Keep);
        ctx.enable(Cap::Blend);
        ctx.blendFunc(emu::BlendFactor::One, emu::BlendFactor::One);
        ctx.depthFunc(emu::CompareFunc::LessEqual);
        ctx.bindProgramVertex(_lightProgV);
        ctx.bindProgramFragment(_lightProgF);
        ctx.programEnvParam(emu::ShaderTarget::Fragment, 32,
                            _lightPositions[l]);
        ctx.programEnvParam(emu::ShaderTarget::Fragment, 33,
                            _lightColors[l]);
        ctx.programEnvParam(emu::ShaderTarget::Fragment, 34,
                            {0.02f, 0.0f, 0.0f, 0.0f});
        drawScene();
        ctx.disable(Cap::Blend);

        // 3c. Undo pass: restore the stencil to zero for the next
        // light by counting in the opposite direction.
        ctx.colorMask(false, false, false, false);
        ctx.stencilFunc(emu::CompareFunc::Always, 0, 0xff);
        ctx.bindProgramVertex(_depthProgV);
        ctx.bindProgramFragment(_depthProgF);
        ctx.enable(Cap::CullFace);
        ctx.depthFunc(emu::CompareFunc::Less);
        ctx.vertexPointer(_volumes[l].vertexBuffer,
                          StreamFormat::Float3, 12, 0);
        ctx.disableAttrib(gl::attrNormal);
        ctx.disableAttrib(gl::attrTexCoord0);
        if (_params.twoSidedVolumes) {
            ctx.disable(Cap::CullFace);
            ctx.enable(Cap::StencilTwoSide);
            ctx.stencilOp(emu::StencilOp::Keep,
                          emu::StencilOp::Keep,
                          emu::StencilOp::DecrWrap);
            ctx.stencilFuncBack(emu::CompareFunc::Always, 0, 0xff);
            ctx.stencilOpBack(emu::StencilOp::Keep,
                              emu::StencilOp::Keep,
                              emu::StencilOp::IncrWrap);
            ctx.drawElements(Primitive::Triangles,
                             _volumes[l].indexCount,
                             _volumes[l].indexBuffer, 0, false);
            ctx.disable(Cap::StencilTwoSide);
        } else {
            ctx.cullFace(gpu::CullMode::Back);
            ctx.stencilOp(emu::StencilOp::Keep,
                          emu::StencilOp::Keep,
                          emu::StencilOp::DecrWrap);
            ctx.drawElements(Primitive::Triangles,
                             _volumes[l].indexCount,
                             _volumes[l].indexBuffer, 0, false);
            ctx.cullFace(gpu::CullMode::Front);
            ctx.stencilOp(emu::StencilOp::Keep,
                          emu::StencilOp::Keep,
                          emu::StencilOp::IncrWrap);
            ctx.drawElements(Primitive::Triangles,
                             _volumes[l].indexCount,
                             _volumes[l].indexBuffer, 0, false);
        }
        ctx.disable(Cap::CullFace);
        ctx.colorMask(true, true, true, true);
        ctx.disable(Cap::StencilTest);
    }

    // --- 4. Alpha-tested grate (KIL injection) ----------------------
    ctx.bindTexture(_grateTex);
    ctx.enable(Cap::AlphaTest);
    ctx.alphaFunc(emu::CompareFunc::Greater, 0.5f);
    ctx.disable(Cap::VertexProgram); // FF vertex (needs texcoords).
    ctx.enable(Cap::FragmentProgram);
    ctx.bindProgramFragment(_grateProgF);
    ctx.depthFunc(emu::CompareFunc::LessEqual);
    ctx.depthMask(true);
    bindScene(_grate);
    ctx.drawElements(Primitive::Triangles, _grate.indexCount,
                     _grate.indexBuffer, 0, false);
    ctx.disable(Cap::AlphaTest);
    ctx.disable(Cap::FragmentProgram);
    ctx.bindTexture(_diffuseTex);
    ctx.depthMask(true);
    ctx.depthFunc(emu::CompareFunc::Less);

    ctx.swapBuffers();
}

} // namespace attila::workloads

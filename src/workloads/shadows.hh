/**
 * @file
 * ShadowsWorkload: the Doom3-style scene (DESIGN.md §1).
 *
 * A room with boxes rendered Doom3-style: a depth-only prepass, then
 * per light a stencil shadow-volume pass (z-pass counting with
 * separate front/back passes) and an additive lighting pass using
 * ARB-style user shader programs.  A final alpha-tested "grate" pass
 * exercises the library's KIL injection into user fragment programs.
 * This drives exactly the hardware the paper's trDemo2 trace does:
 * fast Z clears, the Hierarchical Z buffer, heavy ROPz stencil
 * traffic and additive blending.
 */

#ifndef ATTILA_WORKLOADS_SHADOWS_HH
#define ATTILA_WORKLOADS_SHADOWS_HH

#include "workloads/workload.hh"

namespace attila::workloads
{

/** The stencil shadow-volume scene. */
class ShadowsWorkload : public Workload
{
  public:
    explicit ShadowsWorkload(const WorkloadParams& params)
        : Workload(params)
    {}

    void setup(gl::Context& ctx) override;
    void renderFrame(gl::Context& ctx, u32 frame) override;

  private:
    struct Mesh
    {
        u32 vertexBuffer = 0;
        u32 indexBuffer = 0;
        u32 indexCount = 0;
    };

    void buildGeometry(gl::Context& ctx);
    void buildShadowVolumes(gl::Context& ctx);
    void buildPrograms(gl::Context& ctx);

    Mesh _room;
    Mesh _boxes;
    /** One static extruded volume mesh per light. */
    std::vector<Mesh> _volumes;
    Mesh _grate;
    /** Box centers (x, y, z) and size (w). */
    std::vector<emu::Vec4> _boxCenters;

    u32 _diffuseTex = 0;
    u32 _grateTex = 0;

    u32 _depthProgV = 0, _depthProgF = 0;
    u32 _lightProgV = 0, _lightProgF = 0;
    u32 _grateProgF = 0;

    std::vector<emu::Vec4> _lightPositions;
    std::vector<emu::Vec4> _lightColors;
};

} // namespace attila::workloads

#endif // ATTILA_WORKLOADS_SHADOWS_HH

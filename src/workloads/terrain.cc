#include "workloads/terrain.hh"

#include <cmath>
#include <cstring>

namespace attila::workloads
{

using emu::Vec4;
using gl::Cap;
using gpu::Primitive;
using gpu::StreamFormat;

namespace
{

/** Interleaved terrain vertex: position (3f) + 2 texcoords (2f). */
struct TerrainVertex
{
    f32 x, y, z;
    f32 u0, v0;
    f32 u1, v1;
};

f32
terrainHeight(f32 x, f32 z)
{
    return 0.6f * std::sin(x * 0.7f) * std::cos(z * 0.5f) +
           0.25f * std::sin(x * 2.3f + z * 1.7f);
}

} // anonymous namespace

void
TerrainWorkload::setup(gl::Context& ctx)
{
    Rng rng(0xdeadbeefu);

    // --- Terrain mesh ----------------------------------------------
    _gridSize = std::max(4u, _params.detail * 4);
    const u32 n = _gridSize;
    std::vector<TerrainVertex> vertices;
    vertices.reserve((n + 1) * (n + 1));
    const f32 extent = 40.0f;
    for (u32 gz = 0; gz <= n; ++gz) {
        for (u32 gx = 0; gx <= n; ++gx) {
            const f32 x = (static_cast<f32>(gx) / n - 0.5f) * extent;
            const f32 z = (static_cast<f32>(gz) / n - 0.5f) * extent;
            TerrainVertex v;
            v.x = x;
            v.y = terrainHeight(x, z);
            v.z = z;
            // Diffuse repeats densely; the lightmap stretches once
            // over the whole terrain (UT-style).
            v.u0 = static_cast<f32>(gx) * 0.8f;
            v.v0 = static_cast<f32>(gz) * 0.8f;
            v.u1 = static_cast<f32>(gx) / n;
            v.v1 = static_cast<f32>(gz) / n;
            vertices.push_back(v);
        }
    }
    std::vector<u8> vbytes(vertices.size() * sizeof(TerrainVertex));
    std::memcpy(vbytes.data(), vertices.data(), vbytes.size());
    _vertexBuffer = ctx.genBuffer();
    ctx.bufferData(_vertexBuffer, std::move(vbytes));

    std::vector<u16> indices;
    indices.reserve(n * n * 6);
    for (u32 gz = 0; gz < n; ++gz) {
        for (u32 gx = 0; gx < n; ++gx) {
            const u16 a = static_cast<u16>(gz * (n + 1) + gx);
            const u16 b = static_cast<u16>(a + 1);
            const u16 c = static_cast<u16>(a + n + 1);
            const u16 d = static_cast<u16>(c + 1);
            indices.insert(indices.end(), {a, c, b, b, c, d});
        }
    }
    _indexCount = static_cast<u32>(indices.size());
    std::vector<u8> ibytes(indices.size() * 2);
    std::memcpy(ibytes.data(), indices.data(), ibytes.size());
    _indexBuffer = ctx.genBuffer();
    ctx.bufferData(_indexBuffer, std::move(ibytes));

    // --- Sky quad ---------------------------------------------------
    const TerrainVertex sky[4] = {
        {-60.0f, 12.0f, -60.0f, 0.0f, 0.0f, 0.0f, 0.0f},
        {60.0f, 12.0f, -60.0f, 4.0f, 0.0f, 0.0f, 0.0f},
        {60.0f, 12.0f, 60.0f, 4.0f, 4.0f, 0.0f, 0.0f},
        {-60.0f, 12.0f, 60.0f, 0.0f, 4.0f, 0.0f, 0.0f},
    };
    std::vector<u8> sbytes(sizeof(sky));
    std::memcpy(sbytes.data(), sky, sizeof(sky));
    _skyBuffer = ctx.genBuffer();
    ctx.bufferData(_skyBuffer, std::move(sbytes));

    // --- Textures ---------------------------------------------------
    const u32 ts = _params.textureSize;
    {
        // Diffuse: DXT1-compressed with a full hand-built mip chain.
        _diffuseTex = ctx.genTexture();
        ctx.activeTexture(0);
        ctx.bindTexture(_diffuseTex);
        std::vector<u8> rgba = makeDiffuseTexture(ts, rng);
        u32 size = ts;
        u32 level = 0;
        std::vector<u8> current = rgba;
        while (true) {
            ctx.texImage2D(level, emu::TexFormat::DXT1, size, size,
                           encodeDxt1(current, size, size));
            if (size == 1)
                break;
            // Box-filter downsample for the next level.
            const u32 half = size / 2;
            std::vector<u8> down(half * half * 4);
            for (u32 y = 0; y < half; ++y) {
                for (u32 x = 0; x < half; ++x) {
                    for (u32 c = 0; c < 4; ++c) {
                        u32 acc = 0;
                        for (u32 d = 0; d < 4; ++d) {
                            acc += current[((y * 2 + d / 2) * size +
                                            x * 2 + d % 2) * 4 + c];
                        }
                        down[(y * half + x) * 4 + c] =
                            static_cast<u8>(acc / 4);
                    }
                }
            }
            current = std::move(down);
            size = half;
            ++level;
        }
        ctx.texFilter(emu::MinFilter::LinearMipLinear, true);
        ctx.texWrap(emu::WrapMode::Repeat, emu::WrapMode::Repeat);
        ctx.texMaxAnisotropy(_params.anisotropy);
        ctx.texEnv(gl::TexEnvMode::Modulate);
    }
    {
        // Lightmap on unit 1.
        _lightmapTex = ctx.genTexture();
        ctx.activeTexture(1);
        ctx.bindTexture(_lightmapTex);
        ctx.texImage2D(0, emu::TexFormat::RGBA8, ts / 2, ts / 2,
                       makeLightmapTexture(ts / 2, rng));
        ctx.generateMipmaps();
        ctx.texFilter(emu::MinFilter::LinearMipLinear, true);
        ctx.texWrap(emu::WrapMode::Clamp, emu::WrapMode::Clamp);
        ctx.texEnv(gl::TexEnvMode::Modulate);
    }
    {
        // Sky texture on unit 0 when drawing the sky.
        _skyTex = ctx.genTexture();
        ctx.activeTexture(0);
        ctx.bindTexture(_skyTex);
        Rng skyRng(0x5eedu);
        ctx.texImage2D(0, emu::TexFormat::RGBA8, ts, ts,
                       makeLightmapTexture(ts, skyRng));
        ctx.generateMipmaps();
        ctx.texFilter(emu::MinFilter::LinearMipLinear, true);
        ctx.texWrap(emu::WrapMode::Repeat, emu::WrapMode::Repeat);
        ctx.texEnv(gl::TexEnvMode::Replace);
        ctx.bindTexture(_diffuseTex);
    }
}

void
TerrainWorkload::renderFrame(gl::Context& ctx, u32 frame)
{
    const f32 t = static_cast<f32>(frame) * 0.12f;

    ctx.clearColor(0.45f, 0.55f, 0.7f, 1.0f);
    ctx.clearDepth(1.0f);
    ctx.clear(gl::clearColorBit | gl::clearDepthBit);

    ctx.enable(Cap::DepthTest);
    ctx.depthFunc(emu::CompareFunc::Less);
    ctx.depthMask(true);
    // The heightfield is viewed from above only; face culling is
    // left off (its winding flips under the orbiting camera).
    ctx.disable(Cap::CullFace);
    ctx.frontFaceCcw(true);

    ctx.matrixMode(gl::MatrixMode::Projection);
    ctx.loadIdentity();
    ctx.perspective(60.0f,
                    static_cast<f32>(_params.width) /
                        static_cast<f32>(_params.height),
                    0.5f, 200.0f);

    ctx.matrixMode(gl::MatrixMode::ModelView);
    ctx.loadIdentity();
    const Vec4 eye{12.0f * std::sin(t), 4.5f, 12.0f * std::cos(t),
                   1.0f};
    const Vec4 at{0.0f, 0.5f, 0.0f, 1.0f};
    ctx.lookAt(eye, at, {0.0f, 1.0f, 0.0f, 0.0f});

    // Fog over the terrain (fixed function, emulated in the
    // generated fragment program).
    gl::FogState fogState;
    fogState.mode = gl::FogMode::Linear;
    fogState.color = {0.45f, 0.55f, 0.7f, 1.0f};
    fogState.start = 15.0f;
    fogState.end = 60.0f;
    ctx.fog(fogState);
    ctx.enable(Cap::Fog);

    // --- Terrain pass: diffuse x lightmap --------------------------
    ctx.activeTexture(0);
    ctx.bindTexture(_diffuseTex);
    ctx.enable(Cap::Texture2D);
    ctx.activeTexture(1);
    ctx.bindTexture(_lightmapTex);
    ctx.enable(Cap::Texture2D);

    ctx.color(1.0f, 1.0f, 1.0f, 1.0f);
    const u32 stride = sizeof(TerrainVertex);
    ctx.vertexPointer(_vertexBuffer, StreamFormat::Float3, stride,
                      0);
    ctx.texCoordPointer(0, _vertexBuffer, StreamFormat::Float2,
                        stride, 12);
    ctx.texCoordPointer(1, _vertexBuffer, StreamFormat::Float2,
                        stride, 20);
    ctx.drawElements(Primitive::Triangles, _indexCount,
                     _indexBuffer, 0, false);

    // --- Sky pass: single texture, no depth write ------------------
    ctx.activeTexture(1);
    ctx.disable(Cap::Texture2D);
    ctx.activeTexture(0);
    ctx.bindTexture(_skyTex);
    ctx.depthMask(false);
    ctx.disableAttrib(gl::attrTexCoord0 + 1);
    ctx.vertexPointer(_skyBuffer, StreamFormat::Float3, stride, 0);
    ctx.texCoordPointer(0, _skyBuffer, StreamFormat::Float2, stride,
                        12);
    ctx.drawArrays(Primitive::Quads, 0, 4);
    ctx.depthMask(true);
    ctx.disable(Cap::Fog);
    ctx.bindTexture(_diffuseTex);

    ctx.swapBuffers();
}

} // namespace attila::workloads

/**
 * @file
 * TerrainWorkload: the UT2004-style scene (DESIGN.md §1).
 *
 * A heightfield terrain rendered with diffuse x lightmap
 * multitexturing (the dominant fragment workload of 2004-era
 * engines), a textured sky quad, and a fly-over camera.  The diffuse
 * texture is DXT1-compressed and mipmapped; anisotropic filtering is
 * configurable.  Uses the fixed-function pipeline with fog.
 */

#ifndef ATTILA_WORKLOADS_TERRAIN_HH
#define ATTILA_WORKLOADS_TERRAIN_HH

#include "workloads/workload.hh"

namespace attila::workloads
{

/** The terrain fly-over scene. */
class TerrainWorkload : public Workload
{
  public:
    explicit TerrainWorkload(const WorkloadParams& params)
        : Workload(params)
    {}

    void setup(gl::Context& ctx) override;
    void renderFrame(gl::Context& ctx, u32 frame) override;

  private:
    u32 _vertexBuffer = 0;
    u32 _indexBuffer = 0;
    u32 _skyBuffer = 0;
    u32 _diffuseTex = 0;
    u32 _lightmapTex = 0;
    u32 _skyTex = 0;
    u32 _indexCount = 0;
    u32 _gridSize = 0;
};

} // namespace attila::workloads

#endif // ATTILA_WORKLOADS_TERRAIN_HH

#include "workloads/workload.hh"

#include <algorithm>
#include <cmath>

namespace attila::workloads
{

std::vector<u8>
makeDiffuseTexture(u32 size, Rng& rng)
{
    std::vector<u8> img(size * size * 4);
    for (u32 y = 0; y < size; ++y) {
        for (u32 x = 0; x < size; ++x) {
            // Checker base with per-texel noise: plausible albedo
            // statistics for the texture cache.
            const bool check = ((x / 8) ^ (y / 8)) & 1;
            const u32 base = check ? 150 : 90;
            const u32 noise = static_cast<u32>(rng.next() % 60);
            u8* px = &img[(y * size + x) * 4];
            px[0] = static_cast<u8>(base + noise / 2);
            px[1] = static_cast<u8>(base / 2 + noise);
            px[2] = static_cast<u8>(60 + noise / 3);
            px[3] = 255;
        }
    }
    return img;
}

std::vector<u8>
makeLightmapTexture(u32 size, Rng& rng)
{
    // Smooth blobs of light: sum of a few gaussians.
    struct Blob { f32 x, y, radius, intensity; };
    std::vector<Blob> blobs;
    for (u32 i = 0; i < 6; ++i) {
        blobs.push_back({rng.uniform(), rng.uniform(),
                         rng.range(0.1f, 0.35f),
                         rng.range(0.4f, 1.0f)});
    }
    std::vector<u8> img(size * size * 4);
    for (u32 y = 0; y < size; ++y) {
        for (u32 x = 0; x < size; ++x) {
            const f32 u = static_cast<f32>(x) / size;
            const f32 v = static_cast<f32>(y) / size;
            f32 light = 0.15f;
            for (const Blob& b : blobs) {
                const f32 dx = u - b.x;
                const f32 dy = v - b.y;
                light += b.intensity *
                         std::exp(-(dx * dx + dy * dy) /
                                  (b.radius * b.radius));
            }
            const u8 l = static_cast<u8>(
                std::min(255.0f, light * 255.0f));
            u8* px = &img[(y * size + x) * 4];
            px[0] = l;
            px[1] = l;
            px[2] = static_cast<u8>(std::min(255, l + 10));
            px[3] = 255;
        }
    }
    return img;
}

std::vector<u8>
makeGrateTexture(u32 size)
{
    std::vector<u8> img(size * size * 4);
    for (u32 y = 0; y < size; ++y) {
        for (u32 x = 0; x < size; ++x) {
            const bool hole = (x % 8) < 5 && (y % 8) < 5;
            u8* px = &img[(y * size + x) * 4];
            px[0] = 140;
            px[1] = 140;
            px[2] = 150;
            px[3] = hole ? 0 : 255;
        }
    }
    return img;
}

namespace
{

u16
pack565(u32 r, u32 g, u32 b)
{
    return static_cast<u16>(((r >> 3) << 11) | ((g >> 2) << 5) |
                            (b >> 3));
}

/** Encode one 4x4 RGBA8 block with min/max endpoints. */
void
encodeBlockColor(const u8 texels[16][4], u8* out,
                 bool alwaysFourColor)
{
    u32 minV = 255 * 3, maxV = 0;
    u32 minI = 0, maxI = 0;
    for (u32 i = 0; i < 16; ++i) {
        const u32 lum = texels[i][0] + texels[i][1] + texels[i][2];
        if (lum < minV) { minV = lum; minI = i; }
        if (lum > maxV) { maxV = lum; maxI = i; }
    }
    u16 c0 = pack565(texels[maxI][0], texels[maxI][1],
                     texels[maxI][2]);
    u16 c1 = pack565(texels[minI][0], texels[minI][1],
                     texels[minI][2]);
    if (alwaysFourColor && c0 == c1 && c0 != 0) {
        // Distinct endpoints keep the encoder in 4-color mode.
        c1 = static_cast<u16>(c1 - 1);
    }
    if (c0 < c1)
        std::swap(c0, c1);

    // Select per-texel indices against the 4-entry palette.
    const u32 pr[4] = {u32(c0 >> 11) << 3, u32(c1 >> 11) << 3, 0, 0};
    u32 palette[4][3];
    palette[0][0] = (c0 >> 11) << 3;
    palette[0][1] = ((c0 >> 5) & 0x3f) << 2;
    palette[0][2] = (c0 & 0x1f) << 3;
    palette[1][0] = (c1 >> 11) << 3;
    palette[1][1] = ((c1 >> 5) & 0x3f) << 2;
    palette[1][2] = (c1 & 0x1f) << 3;
    for (u32 c = 0; c < 3; ++c) {
        palette[2][c] = (2 * palette[0][c] + palette[1][c]) / 3;
        palette[3][c] = (palette[0][c] + 2 * palette[1][c]) / 3;
    }
    (void)pr;

    u32 bits = 0;
    for (u32 i = 0; i < 16; ++i) {
        u32 best = 0;
        u32 bestErr = ~0u;
        for (u32 p = 0; p < 4; ++p) {
            u32 err = 0;
            for (u32 c = 0; c < 3; ++c) {
                const s32 d = static_cast<s32>(texels[i][c]) -
                              static_cast<s32>(palette[p][c]);
                err += static_cast<u32>(d * d);
            }
            if (err < bestErr) {
                bestErr = err;
                best = p;
            }
        }
        bits |= best << (2 * i);
    }

    out[0] = static_cast<u8>(c0);
    out[1] = static_cast<u8>(c0 >> 8);
    out[2] = static_cast<u8>(c1);
    out[3] = static_cast<u8>(c1 >> 8);
    out[4] = static_cast<u8>(bits);
    out[5] = static_cast<u8>(bits >> 8);
    out[6] = static_cast<u8>(bits >> 16);
    out[7] = static_cast<u8>(bits >> 24);
}

void
gatherBlock(const std::vector<u8>& rgba, u32 width, u32 height,
            u32 bx, u32 by, u8 texels[16][4])
{
    for (u32 i = 0; i < 16; ++i) {
        const u32 x = std::min(width - 1, bx * 4 + i % 4);
        const u32 y = std::min(height - 1, by * 4 + i / 4);
        for (u32 c = 0; c < 4; ++c)
            texels[i][c] = rgba[(y * width + x) * 4 + c];
    }
}

} // anonymous namespace

std::vector<u8>
encodeDxt1(const std::vector<u8>& rgba, u32 width, u32 height)
{
    const u32 bw = (width + 3) / 4;
    const u32 bh = (height + 3) / 4;
    std::vector<u8> out(bw * bh * 8);
    for (u32 by = 0; by < bh; ++by) {
        for (u32 bx = 0; bx < bw; ++bx) {
            u8 texels[16][4];
            gatherBlock(rgba, width, height, bx, by, texels);
            encodeBlockColor(texels,
                             &out[(by * bw + bx) * 8],
                             /*alwaysFourColor=*/true);
        }
    }
    return out;
}

std::vector<u8>
encodeDxt3(const std::vector<u8>& rgba, u32 width, u32 height)
{
    const u32 bw = (width + 3) / 4;
    const u32 bh = (height + 3) / 4;
    std::vector<u8> out(bw * bh * 16);
    for (u32 by = 0; by < bh; ++by) {
        for (u32 bx = 0; bx < bw; ++bx) {
            u8 texels[16][4];
            gatherBlock(rgba, width, height, bx, by, texels);
            u8* block = &out[(by * bw + bx) * 16];
            // Explicit 4-bit alpha.
            for (u32 i = 0; i < 8; ++i) {
                const u32 a0 = texels[i * 2][3] >> 4;
                const u32 a1 = texels[i * 2 + 1][3] >> 4;
                block[i] = static_cast<u8>(a0 | (a1 << 4));
            }
            encodeBlockColor(texels, block + 8, true);
        }
    }
    return out;
}

} // namespace attila::workloads

/**
 * @file
 * Workload: base class for the deterministic synthetic scenes that
 * stand in for the paper's proprietary game traces (UT2004 Primeval,
 * Doom3 trDemo2).  See DESIGN.md §1 for the substitution rationale.
 *
 * A workload issues AGL calls: setup() uploads frame-independent
 * resources, renderFrame() draws one frame ending with swapBuffers.
 * Everything is seeded and deterministic, so the timing simulator
 * and the reference renderer consume identical command streams.
 */

#ifndef ATTILA_WORKLOADS_WORKLOAD_HH
#define ATTILA_WORKLOADS_WORKLOAD_HH

#include <vector>

#include "gl/context.hh"

namespace attila::workloads
{

/** xorshift64* deterministic RNG. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) : _state(seed) {}

    u64
    next()
    {
        _state ^= _state >> 12;
        _state ^= _state << 25;
        _state ^= _state >> 27;
        return _state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform float in [0, 1). */
    f32
    uniform()
    {
        return static_cast<f32>(next() >> 40) /
               static_cast<f32>(1ull << 24);
    }

    /** Uniform float in [lo, hi). */
    f32
    range(f32 lo, f32 hi)
    {
        return lo + uniform() * (hi - lo);
    }

  private:
    u64 _state;
};

/** Common workload parameters. */
struct WorkloadParams
{
    u32 width = 256;
    u32 height = 256;
    u32 frames = 2;
    u32 textureSize = 128;
    u32 anisotropy = 1;  ///< Max anisotropic samples (1 = off).
    u32 detail = 8;      ///< Scene density knob.
    /** Shadows workload: stencil the volumes in a single two-sided
     *  pass instead of two culled passes (paper §7 extension). */
    bool twoSidedVolumes = false;
};

/** Base class for synthetic scenes. */
class Workload
{
  public:
    explicit Workload(const WorkloadParams& params)
        : _params(params)
    {}
    virtual ~Workload() = default;

    /** Upload buffers / textures / programs (once). */
    virtual void setup(gl::Context& ctx) = 0;

    /** Render one frame (ends with swapBuffers). */
    virtual void renderFrame(gl::Context& ctx, u32 frame) = 0;

    const WorkloadParams& params() const { return _params; }

  protected:
    WorkloadParams _params;
};

// ===== Texture generators ==========================================

/** Procedural RGBA8 noise-and-pattern texture (tightly packed). */
std::vector<u8> makeDiffuseTexture(u32 size, Rng& rng);

/** Low-frequency RGBA8 lightmap-style texture. */
std::vector<u8> makeLightmapTexture(u32 size, Rng& rng);

/** RGBA8 grate pattern with binary alpha (for alpha testing). */
std::vector<u8> makeGrateTexture(u32 size);

/**
 * Encode an RGBA8 image as DXT1 blocks (simple min/max endpoint
 * encoder) — exercises the compressed-texture path.
 */
std::vector<u8> encodeDxt1(const std::vector<u8>& rgba, u32 width,
                           u32 height);

/** Encode an RGBA8 image as DXT3 (explicit alpha). */
std::vector<u8> encodeDxt3(const std::vector<u8>& rgba, u32 width,
                           u32 height);

} // namespace attila::workloads

#endif // ATTILA_WORKLOADS_WORKLOAD_HH

/**
 * @file
 * Tests for the activity-driven clocking contract: busy()/wakeAt()
 * hints, automatic re-activation on signal delivery, and the
 * bit-exactness of whole-model fast-forward (statistics windows and
 * cycle counts must not depend on whether idle skipping is enabled).
 */

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "sim/box.hh"
#include "sim/scheduler.hh"
#include "sim/signal.hh"
#include "sim/signal_binder.hh"
#include "sim/simulator.hh"
#include "sim/statistics.hh"

using namespace attila;
using namespace attila::sim;

namespace
{

/** Fires every @p period cycles via wakeAt(), never busy between
 * firings.  Records every cycle its update() actually ran. */
class PeriodicBox : public Box
{
  public:
    PeriodicBox(SignalBinder& binder, StatisticManager& stats,
                std::string name, Cycle period)
        : Box(binder, stats, std::move(name)), _period(period)
    {
        wakeAt(0);
    }

    void
    update(Cycle cycle) override
    {
        updates.push_back(cycle);
        wakeAt(cycle + _period);
    }

    bool busy() const override { return false; }

    std::vector<Cycle> updates;

  private:
    Cycle _period;
};

/** Writes a single object at a scheduled cycle, idle otherwise. */
class OneShotProducer : public Box
{
  public:
    OneShotProducer(SignalBinder& binder, StatisticManager& stats,
                    std::string name, const std::string& wire,
                    Cycle fireAt, u32 latency)
        : Box(binder, stats, std::move(name)), _fireAt(fireAt)
    {
        _out = output(wire, 1, latency);
        wakeAt(fireAt);
    }

    void
    update(Cycle cycle) override
    {
        if (cycle == _fireAt)
            _out->write(cycle, std::make_shared<DynamicObject>());
    }

    bool busy() const override { return false; }

  private:
    Signal* _out = nullptr;
    Cycle _fireAt;
};

/** Stateless consumer: never busy, never schedules a wakeup.  It can
 * only run again because arriving signal data re-activates it. */
class SleepyConsumer : public Box
{
  public:
    SleepyConsumer(SignalBinder& binder, StatisticManager& stats,
                   std::string name, const std::string& wire,
                   u32 latency)
        : Box(binder, stats, std::move(name)),
          _stat(stats.get(this->name(), "received"))
    {
        _in = input(wire, 1, latency);
    }

    void
    update(Cycle cycle) override
    {
        if (_in->read(cycle)) {
            receivedAt.push_back(cycle);
            _stat.inc();
        }
    }

    bool busy() const override { return false; }

    std::vector<Cycle> receivedAt;

  private:
    Signal* _in = nullptr;
    Statistic& _stat;
};

void
runWithScheduler(Simulator& sim, bool parallel)
{
    if (parallel)
        sim.setScheduler(std::make_unique<ParallelScheduler>(2));
}

} // anonymous namespace

// A box that hints wakeAt(c) must be clocked at cycle c even when
// everything is idle and the simulator fast-forwards: skipping may
// never jump past a scheduled wakeup.
TEST(Activity, WakeAtNeverSkippedPastWakeup)
{
    for (const bool parallel : {false, true}) {
        Simulator sim;
        PeriodicBox box(sim.binder(), sim.stats(), "periodic", 10);
        sim.addBox(&box);
        runWithScheduler(sim, parallel);
        sim.run(95);
        ASSERT_EQ(box.updates.size(), 10u) << "parallel=" << parallel;
        for (u64 i = 0; i < box.updates.size(); ++i)
            EXPECT_EQ(box.updates[i], i * 10);
        EXPECT_EQ(sim.cycle(), 95u);
    }
}

// With idle skipping off the box is clocked every cycle; the wakeAt
// hint must be behaviour-neutral (updates are a superset).
TEST(Activity, IdleSkipOffClocksEveryCycle)
{
    Simulator sim;
    sim.setIdleSkip(false);
    PeriodicBox box(sim.binder(), sim.stats(), "periodic", 10);
    sim.addBox(&box);
    sim.run(20);
    EXPECT_EQ(box.updates.size(), 20u);
}

// Delivering an object into a sleeping box's input must re-activate
// it in time to observe the arrival, without any wakeAt cooperation
// from the consumer.
TEST(Activity, SignalDeliveryReactivatesSleepingConsumer)
{
    for (const bool parallel : {false, true}) {
        Simulator sim;
        OneShotProducer prod(sim.binder(), sim.stats(), "prod",
                             "wire", /*fireAt=*/5, /*latency=*/3);
        SleepyConsumer cons(sim.binder(), sim.stats(), "cons",
                            "wire", /*latency=*/3);
        sim.addBox(&prod);
        sim.addBox(&cons);
        runWithScheduler(sim, parallel);
        sim.run(20);
        ASSERT_EQ(cons.receivedAt.size(), 1u)
            << "parallel=" << parallel;
        EXPECT_EQ(cons.receivedAt[0], 8u);
    }
}

// Fast-forwarding over idle stretches must close exactly the same
// statistics windows the skipped cycles would have closed: the CSV
// dumps are bit-identical with idle skipping on and off.
TEST(Activity, FastForwardKeepsStatWindowsExact)
{
    const auto capture = [](bool idle_skip) {
        Simulator sim;
        sim.setIdleSkip(idle_skip);
        sim.stats().setWindow(8);
        PeriodicBox box(sim.binder(), sim.stats(), "periodic", 17);
        OneShotProducer prod(sim.binder(), sim.stats(), "prod",
                             "wire", 40, 2);
        SleepyConsumer cons(sim.binder(), sim.stats(), "cons",
                            "wire", 2);
        sim.addBox(&box);
        sim.addBox(&prod);
        sim.addBox(&cons);
        sim.run(100);
        std::ostringstream windows;
        std::ostringstream totals;
        sim.stats().writeCsv(windows);
        sim.stats().writeTotalsCsv(totals);
        return std::make_pair(windows.str(), totals.str());
    };
    const auto on = capture(true);
    const auto off = capture(false);
    EXPECT_EQ(on.first, off.first);
    EXPECT_EQ(on.second, off.second);
}

// When every box is quiescent and nothing is scheduled, run() must
// still account for every requested cycle (fast-forward consumes the
// budget rather than spinning).
TEST(Activity, QuiescentModelFastForwardsToBudget)
{
    Simulator sim;
    OneShotProducer prod(sim.binder(), sim.stats(), "prod", "wire",
                         3, 1);
    SleepyConsumer cons(sim.binder(), sim.stats(), "cons", "wire",
                        1);
    sim.addBox(&prod);
    sim.addBox(&cons);
    sim.run(1'000'000);
    EXPECT_EQ(sim.cycle(), 1'000'000u);
    ASSERT_EQ(cons.receivedAt.size(), 1u);
    EXPECT_EQ(cons.receivedAt[0], 4u);
}

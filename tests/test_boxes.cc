/**
 * @file
 * Unit tests for individual pipeline pieces: flow-controlled links,
 * the interpolator math, Hierarchical Z quantization, register
 * decode and the GPU configuration presets.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_config.hh"
#include "gpu/hierarchical_z.hh"
#include "gpu/interpolator.hh"
#include "gpu/link.hh"
#include "gpu/regs.hh"
#include "sim/simulator.hh"

using namespace attila;
using namespace attila::gpu;

namespace
{

class HostBox : public sim::Box
{
  public:
    HostBox(sim::SignalBinder& binder, sim::StatisticManager& stats,
            std::string name)
        : Box(binder, stats, std::move(name))
    {}

    void
    update(Cycle cycle) override
    {
        if (tick)
            tick(cycle);
    }

    std::function<void(Cycle)> tick;
};

} // anonymous namespace

TEST(Link, CreditFlowControl)
{
    sim::Simulator sim;
    HostBox producer(sim.binder(), sim.stats(), "producer");
    HostBox consumer(sim.binder(), sim.stats(), "consumer");

    LinkTx tx;
    tx.init(producer, sim.binder(), "link", 2, 3, 4);
    LinkRx<WorkObject> rx;
    rx.init(consumer, sim.binder(), "link", 2, 3, 4);

    u32 sent = 0, received = 0;
    bool produce = true;
    producer.tick = [&](Cycle cycle) {
        tx.clock(cycle);
        while (produce && tx.canSend(cycle)) {
            auto obj = std::make_shared<WorkObject>();
            tx.send(cycle, obj);
            ++sent;
        }
    };
    bool consume = false;
    consumer.tick = [&](Cycle cycle) {
        rx.clock(cycle);
        while (consume && !rx.empty()) {
            rx.pop(cycle);
            ++received;
        }
    };
    sim.addBox(&producer);
    sim.addBox(&consumer);

    // Without consumption, at most `capacity` objects can be sent.
    sim.run(20);
    EXPECT_EQ(sent, 4u);
    EXPECT_EQ(rx.size(), 4u);

    // Start consuming: credits return and throughput resumes.
    consume = true;
    sim.run(50);
    EXPECT_GT(sent, 20u); // Sustained flow.

    // Stop producing; everything in flight drains and all credits
    // come home.
    produce = false;
    sim.run(20);
    EXPECT_EQ(received, sent);
    EXPECT_TRUE(tx.idle());
}

TEST(Link, QueueNeverOverflows)
{
    sim::Simulator sim;
    HostBox producer(sim.binder(), sim.stats(), "producer");
    HostBox consumer(sim.binder(), sim.stats(), "consumer");
    LinkTx tx;
    tx.init(producer, sim.binder(), "link", 4, 1, 3);
    LinkRx<WorkObject> rx;
    rx.init(consumer, sim.binder(), "link", 4, 1, 3);

    producer.tick = [&](Cycle cycle) {
        tx.clock(cycle);
        // Aggressive: send as much as credits allow every cycle.
        while (tx.canSend(cycle))
            tx.send(cycle, std::make_shared<WorkObject>());
    };
    u64 seen = 0;
    consumer.tick = [&](Cycle cycle) {
        rx.clock(cycle);
        EXPECT_LE(rx.size(), 3u);
        // Slow consumer: one every three cycles.
        if (cycle % 3 == 0 && !rx.empty()) {
            rx.pop(cycle);
            ++seen;
        }
    };
    sim.addBox(&producer);
    sim.addBox(&consumer);
    EXPECT_NO_THROW(sim.run(200));
    EXPECT_GT(seen, 50u);
}

TEST(Interpolator, QuadAttributesPerspectiveCorrect)
{
    // Build a quad referencing a triangle with a perspective ramp
    // and check interpolateQuad reproduces the rasterizer's math.
    auto tri = std::make_shared<TriangleObj>();
    const emu::Vec4 v0{-1, -1, 0, 1};
    const emu::Vec4 v1{4, -4, 0, 4};
    const emu::Vec4 v2{-1, 3, 0, 1};
    tri->vertex[0][emu::regix::vposPosition] = v0;
    tri->vertex[1][emu::regix::vposPosition] = v1;
    tri->vertex[2][emu::regix::vposPosition] = v2;
    tri->vertex[0][emu::regix::ioColor] = {0, 0, 0, 0};
    tri->vertex[1][emu::regix::ioColor] = {1, 1, 1, 1};
    tri->vertex[2][emu::regix::ioColor] = {0, 0, 0, 0};

    emu::Viewport vp{0, 0, 64, 64};
    tri->setup = emu::RasterizerEmulator::setup(v0, v1, v2, vp);
    ASSERT_TRUE(tri->setup.valid);

    auto state = std::make_shared<RenderState>();
    // No fragment program: all inputs interpolated.
    auto quad = std::make_shared<QuadObj>();
    quad->triangle = tri;
    quad->state = state;
    quad->x0 = 32;
    quad->y0 = 0;
    quad->coverage = {true, true, true, true};

    Interpolator::interpolateQuad(*quad);

    // Perspective-correct: u ~ 0.2 at the screen midpoint (see the
    // rasterizer test for the derivation).
    EXPECT_NEAR(quad->in[0][emu::regix::ioColor].x, 0.2f, 0.03f);
    // fragment.position carries window x, y.
    EXPECT_FLOAT_EQ(quad->in[0][emu::regix::finPosition].x, 32.5f);
    EXPECT_FLOAT_EQ(quad->in[3][emu::regix::finPosition].y, 1.5f);
}

TEST(HierarchicalZ, QuantizationConservative)
{
    for (f32 z : {0.0f, 0.1f, 0.25f, 0.5f, 0.999f, 1.0f}) {
        EXPECT_LE(HierarchicalZ::quantizeDown(z),
                  HierarchicalZ::quantizeUp(z));
    }
    EXPECT_EQ(HierarchicalZ::quantizeUp(1.0f), 255);
    EXPECT_EQ(HierarchicalZ::quantizeDown(0.0f), 0);
    // A fragment at the same depth as the stored max must never be
    // culled: floor(z) > ceil(z) is impossible.
    for (u32 i = 0; i <= 100; ++i) {
        const f32 z = static_cast<f32>(i) / 100.0f;
        EXPECT_FALSE(HierarchicalZ::quantizeDown(z) >
                     HierarchicalZ::quantizeUp(z));
    }
}

TEST(Regs, ApplyRegisterDecodes)
{
    RenderState state;
    applyRegister(state, Reg::FbWidth, 0, RegValue(640u));
    applyRegister(state, Reg::DepthFunc, 0,
                  RegValue(static_cast<u32>(
                      emu::CompareFunc::GreaterEqual)));
    applyRegister(state, Reg::StreamAddress, 5, RegValue(0x1234u));
    applyRegister(state, Reg::BlendConstantColor, 0,
                  RegValue(emu::Vec4(1, 2, 3, 4)));
    applyRegister(state, Reg::VertexConstant, 17,
                  RegValue(emu::Vec4(5, 6, 7, 8)));
    const u32 mipIndex =
        (2u * maxTextureUnits + 3u) * emu::maxMipLevels + 4u;
    applyRegister(state, Reg::TexMipAddress, mipIndex,
                  RegValue(0x8000u));

    EXPECT_EQ(state.width, 640u);
    EXPECT_EQ(state.zStencil.depthFunc,
              emu::CompareFunc::GreaterEqual);
    EXPECT_EQ(state.streams[5].address, 0x1234u);
    EXPECT_EQ(state.blend.constantColor, emu::Vec4(1, 2, 3, 4));
    EXPECT_EQ(state.vertexConstants[17], emu::Vec4(5, 6, 7, 8));
    EXPECT_EQ(state.textures[3].mips[2][4].address, 0x8000u);
}

TEST(Regs, EarlyZDecision)
{
    RenderState state;
    emu::ShaderAssembler assembler;

    state.fragmentProgram = assembler.assemble(
        "!!ARBfp1.0\nMOV result.color, fragment.color;\nEND\n");
    EXPECT_TRUE(state.earlyZ());

    // KIL forces the late-Z path.
    state.fragmentProgram = assembler.assemble(
        "!!ARBfp1.0\nKIL fragment.color;\nMOV result.color,"
        " fragment.color;\nEND\n");
    EXPECT_FALSE(state.earlyZ());

    // Depth output forces the late-Z path.
    state.fragmentProgram = assembler.assemble(
        "!!ARBfp1.0\nMOV result.color, fragment.color;\n"
        "MOV result.depth.x, fragment.color;\nEND\n");
    EXPECT_FALSE(state.earlyZ());

    // The driver can veto early Z entirely.
    state.fragmentProgram = assembler.assemble(
        "!!ARBfp1.0\nMOV result.color, fragment.color;\nEND\n");
    state.earlyZAllowed = false;
    EXPECT_FALSE(state.earlyZ());
}

TEST(Regs, HzUsableRules)
{
    RenderState state;
    state.zStencil.depthTest = true;
    state.zStencil.depthFunc = emu::CompareFunc::Less;
    EXPECT_TRUE(state.hzUsable());

    state.zStencil.depthFunc = emu::CompareFunc::Greater;
    EXPECT_FALSE(state.hzUsable());

    state.zStencil.depthFunc = emu::CompareFunc::LessEqual;
    state.zStencil.stencilTest = true;
    state.zStencil.depthFail = emu::StencilOp::IncrWrap;
    EXPECT_FALSE(state.hzUsable()); // Z-fail stencil side effect.

    state.zStencil.depthFail = emu::StencilOp::Keep;
    state.zStencil.stencilFail = emu::StencilOp::Keep;
    EXPECT_TRUE(state.hzUsable());

    state.hzEnabled = false;
    EXPECT_FALSE(state.hzUsable());
}

TEST(Regs, RaisesDepthDetection)
{
    RenderState state;
    state.zStencil.depthTest = true;
    state.zStencil.depthWrite = true;
    state.zStencil.depthFunc = emu::CompareFunc::Less;
    EXPECT_FALSE(state.raisesDepth());
    state.zStencil.depthFunc = emu::CompareFunc::Always;
    EXPECT_TRUE(state.raisesDepth());
    state.zStencil.depthWrite = false;
    EXPECT_FALSE(state.raisesDepth());
}

TEST(GpuConfig, Presets)
{
    const GpuConfig base = GpuConfig::baseline();
    EXPECT_TRUE(base.unifiedShaders);
    EXPECT_EQ(base.numShaders, 2u);
    EXPECT_EQ(base.numRops, 2u);
    EXPECT_EQ(base.memoryChannels, 4u);
    EXPECT_EQ(base.channelBytesPerCycle, 16u);
    EXPECT_EQ(base.zCacheKB, 16u);

    const GpuConfig cs = GpuConfig::caseStudy(
        ShaderScheduling::InOrderQueue, 2);
    EXPECT_EQ(cs.numShaders, 3u);
    EXPECT_EQ(cs.numRops, 1u);
    EXPECT_EQ(cs.memoryChannels, 2u);
    EXPECT_EQ(cs.numTextureUnits, 2u);
    EXPECT_EQ(cs.shaderInputsInFlight, 384u);
    EXPECT_EQ(cs.shaderRegisters, 1536u);
    EXPECT_EQ(cs.scheduling, ShaderScheduling::InOrderQueue);

    const GpuConfig embedded = GpuConfig::embedded();
    EXPECT_EQ(embedded.numShaders, 1u);
    EXPECT_EQ(embedded.memoryChannels, 1u);
}

TEST(Framebuffer, TiledAddressing)
{
    // 8x8 tiles of 4-byte pixels: 256 bytes per tile.
    EXPECT_EQ(fbPixelAddress(0, 64, 0, 0), 0u);
    EXPECT_EQ(fbPixelAddress(0, 64, 7, 0), 28u);
    EXPECT_EQ(fbPixelAddress(0, 64, 0, 1), 32u);
    EXPECT_EQ(fbPixelAddress(0, 64, 8, 0), 256u); // Next tile.
    EXPECT_EQ(fbPixelAddress(0, 64, 0, 8), 8 * 256u); // Next row.
    EXPECT_EQ(fbTileIndex(64, 9, 9), 9u);
    EXPECT_EQ(fbSurfaceBytes(64, 64), 64u * 64 * 4);
    // Non-multiple sizes round up to whole tiles.
    EXPECT_EQ(fbSurfaceBytes(60, 60), 8u * 8 * 256);
}

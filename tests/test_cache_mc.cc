/**
 * @file
 * Unit tests for the memory controller and the framebuffer caches,
 * driven through a harness box.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "gpu/cache.hh"
#include "gpu/z_stencil_test.hh"
#include "gpu/memory_controller.hh"
#include "sim/simulator.hh"

using namespace attila;
using namespace attila::gpu;

namespace
{

/** Host box owning a MemPort (and optionally a cache). */
class ClientBox : public sim::Box
{
  public:
    ClientBox(sim::SignalBinder& binder, sim::StatisticManager& stats,
              const GpuConfig& config, const std::string& port)
        : Box(binder, stats, "client")
    {
        mem.init(*this, binder, port, config.memoryRequestQueue);
    }

    void
    update(Cycle cycle) override
    {
        mem.clock(cycle);
        if (tick)
            tick(cycle);
    }

    MemPort mem;
    std::function<void(Cycle)> tick;
};

struct McHarness
{
    explicit McHarness(GpuConfig cfg = GpuConfig::baseline())
        : config(cfg), memory(1 << 20)
    {
        client = std::make_unique<ClientBox>(
            sim.binder(), sim.stats(), config, "mc.test");
        mc = std::make_unique<MemoryController>(
            sim.binder(), sim.stats(), config, memory,
            std::vector<std::string>{"mc.test"});
        sim.addBox(client.get());
        sim.addBox(mc.get());
    }

    GpuConfig config;
    emu::GpuMemory memory;
    sim::Simulator sim;
    std::unique_ptr<ClientBox> client;
    std::unique_ptr<MemoryController> mc;
};

} // anonymous namespace

TEST(MemoryController, WriteThenReadRoundTrip)
{
    McHarness h;

    std::vector<u8> payload(256);
    for (u32 i = 0; i < 256; ++i)
        payload[i] = static_cast<u8>(i ^ 0x5a);

    MemTransactionPtr response;
    h.client->tick = [&](Cycle cycle) {
        static bool wroteSent = false;
        static bool readSent = false;
        while (h.client->mem.hasResponse()) {
            auto txn = h.client->mem.popResponse(cycle);
            if (txn->isRead)
                response = txn;
        }
        if (!wroteSent && h.client->mem.canRequest(cycle)) {
            auto txn = std::make_shared<MemTransaction>();
            txn->isRead = false;
            txn->address = 0x1000;
            txn->size = 256;
            txn->data = payload;
            h.client->mem.request(cycle, txn);
            wroteSent = true;
        } else if (wroteSent && !readSent && response == nullptr &&
                   h.client->mem.idle() &&
                   h.client->mem.canRequest(cycle)) {
            auto txn = std::make_shared<MemTransaction>();
            txn->isRead = true;
            txn->address = 0x1000;
            txn->size = 256;
            h.client->mem.request(cycle, txn);
            readSent = true;
        }
    };

    for (u32 i = 0; i < 500 && !response; ++i)
        h.sim.step();
    ASSERT_NE(response, nullptr);
    EXPECT_EQ(response->data, payload);
    // Functional memory also holds the bytes.
    u8 probe = 0;
    h.memory.read(0x1000 + 17, 1, &probe);
    EXPECT_EQ(probe, static_cast<u8>(17 ^ 0x5a));
}

TEST(MemoryController, BandwidthBound)
{
    // Reading N bytes through C channels of B bytes/cycle takes at
    // least N / (C*B) cycles.
    McHarness h;
    const u32 totalBytes = 16 * 256;
    u32 responses = 0;
    u32 sent = 0;
    h.client->tick = [&](Cycle cycle) {
        while (h.client->mem.hasResponse()) {
            h.client->mem.popResponse(cycle);
            ++responses;
        }
        while (sent < 16 && h.client->mem.canRequest(cycle)) {
            auto txn = std::make_shared<MemTransaction>();
            txn->isRead = true;
            txn->address = sent * 256;
            txn->size = 256;
            h.client->mem.request(cycle, txn);
            ++sent;
        }
    };
    u64 cycles = 0;
    while (responses < 16 && cycles < 5000) {
        h.sim.step();
        ++cycles;
    }
    ASSERT_EQ(responses, 16u);
    const u64 minCycles = totalBytes /
                          (h.config.memoryChannels *
                           h.config.channelBytesPerCycle);
    EXPECT_GE(cycles, minCycles);
    // And not paying more than ~4x overhead for page/turnaround.
    EXPECT_LE(cycles, minCycles * 6);
    EXPECT_EQ(h.mc->totalBytes(), totalBytes);
}

TEST(MemoryController, ChannelInterleaving)
{
    McHarness h;
    // Consecutive 256-byte stripes map to consecutive channels.
    const auto* stat =
        h.sim.stats().find("MemoryController.pageOpens");
    ASSERT_NE(stat, nullptr);
    // (Smoke check through the stat interface; detailed mapping is
    // architectural: addr / 256 % channels.)
    GpuConfig cfg;
    EXPECT_EQ((0 / cfg.channelInterleave) % cfg.memoryChannels, 0u);
    EXPECT_EQ((256 / cfg.channelInterleave) % cfg.memoryChannels,
              1u);
    EXPECT_EQ((1024 / cfg.channelInterleave) % cfg.memoryChannels,
              0u);
}

// ===== FbCache ======================================================

namespace
{

struct CacheHarness
{
    CacheHarness()
        : h(),
          cache("testcache",
                FbCache::Config{16, 4, 256, 4, 4},
                h.sim.stats().get("cache", "hits"),
                h.sim.stats().get("cache", "misses"))
    {
        h.client->tick = [this](Cycle cycle) {
            cache.clock(cycle, h.client->mem, MemClient::ZCache);
            if (step)
                step(cycle);
        };
    }

    void
    run(u32 cycles)
    {
        for (u32 i = 0; i < cycles; ++i)
            h.sim.step();
    }

    McHarness h;
    FbCache cache;
    std::function<void(Cycle)> step;
};

} // anonymous namespace

TEST(FbCache, Geometry)
{
    CacheHarness ch;
    EXPECT_EQ(ch.cache.lineCount(), 64u); // 16KB / 256B.
    EXPECT_EQ(ch.cache.sets(), 16u);
    EXPECT_EQ(ch.cache.ways(), 4u);
}

TEST(FbCache, MissThenHit)
{
    CacheHarness ch;
    // Seed memory.
    for (u32 i = 0; i < 256; ++i)
        ch.h.memory.data()[0x2000 + i] = static_cast<u8>(i);

    CacheAccess first = CacheAccess::Blocked;
    CacheAccess eventual = CacheAccess::Blocked;
    ch.step = [&](Cycle cycle) {
        const CacheAccess a = ch.cache.access(cycle, 0x2010, false);
        if (first == CacheAccess::Blocked)
            first = a;
        eventual = a;
    };
    ch.run(100);
    EXPECT_EQ(first, CacheAccess::Miss);
    EXPECT_EQ(eventual, CacheAccess::Hit);
    EXPECT_EQ(*ch.cache.wordPtr(0x2010), 0x10);
}

TEST(FbCache, WritebackOnEviction)
{
    CacheHarness ch;
    // Fill one set beyond its ways with dirty lines; evicted dirty
    // data must land in memory.
    // Lines mapping to set 0: addresses k * 16 * 256.
    std::vector<u32> addrs;
    for (u32 k = 0; k < 6; ++k)
        addrs.push_back(k * 16 * 256);

    u32 phase = 0;
    ch.step = [&](Cycle cycle) {
        if (phase >= addrs.size())
            return;
        const CacheAccess a =
            ch.cache.access(cycle, addrs[phase], true);
        if (a == CacheAccess::Hit) {
            *ch.cache.wordPtr(addrs[phase]) =
                static_cast<u8>(0xc0 + phase);
            ch.cache.markDirty(addrs[phase]);
            ++phase;
        }
    };
    ch.run(600);
    ASSERT_EQ(phase, addrs.size());
    // Wait for pending writebacks.
    ch.step = nullptr;
    ch.run(200);
    // The first two lines were evicted (6 > 4 ways): their bytes
    // must be in memory now.
    EXPECT_EQ(ch.h.memory.data()[addrs[0]], 0xc0);
    EXPECT_EQ(ch.h.memory.data()[addrs[1]], 0xc1);
}

TEST(FbCache, FlushWritesAllDirtyLines)
{
    CacheHarness ch;
    u32 phase = 0;
    bool flushed = false;
    ch.step = [&](Cycle cycle) {
        if (phase < 3) {
            const u32 addr = phase * 256;
            if (ch.cache.access(cycle, addr, true) ==
                CacheAccess::Hit) {
                *ch.cache.wordPtr(addr) = static_cast<u8>(9 + phase);
                ch.cache.markDirty(addr);
                ++phase;
            }
        } else if (!flushed) {
            flushed = ch.cache.flushStep(cycle, ch.h.client->mem,
                                         MemClient::ZCache);
        }
    };
    ch.run(800);
    ASSERT_TRUE(flushed);
    EXPECT_EQ(ch.h.memory.data()[0], 9);
    EXPECT_EQ(ch.h.memory.data()[256], 10);
    EXPECT_EQ(ch.h.memory.data()[512], 11);
}

TEST(FbCache, PortLimit)
{
    CacheHarness ch;
    bool done = false;
    ch.step = [&](Cycle cycle) {
        if (done)
            return;
        // Warm one line.
        if (ch.cache.access(cycle, 0, false) != CacheAccess::Hit)
            return;
        // 4 ports: the 4th extra access this cycle must block.
        EXPECT_EQ(ch.cache.access(cycle, 0, false),
                  CacheAccess::Hit);
        EXPECT_EQ(ch.cache.access(cycle, 0, false),
                  CacheAccess::Hit);
        EXPECT_EQ(ch.cache.access(cycle, 0, false),
                  CacheAccess::Hit);
        EXPECT_EQ(ch.cache.access(cycle, 0, false),
                  CacheAccess::Blocked);
        done = true;
    };
    ch.run(100);
    EXPECT_TRUE(done);
}

TEST(FbCache, ClearedBlockBackingNeedsNoMemory)
{
    // A ZStencilBacking with a cleared block state fills lines
    // locally.
    McHarness h;
    ZStencilBacking backing;
    backing.bufferBase = 0;
    backing.clearWord = emu::packDepthStencil(12345, 7);
    backing.table.reset(64, BlockState::Cleared);
    FbCache cache("zc", FbCache::Config{16, 4, 256, 4, 4},
                  h.sim.stats().get("zc", "hits"),
                  h.sim.stats().get("zc", "misses"), &backing);

    bool hit = false;
    h.client->tick = [&](Cycle cycle) {
        cache.clock(cycle, h.client->mem, MemClient::ZCache);
        if (!hit &&
            cache.access(cycle, 0x100, false) == CacheAccess::Hit) {
            hit = true;
            u32 word;
            std::memcpy(&word, cache.wordPtr(0x100), 4);
            EXPECT_EQ(word, backing.clearWord);
        }
    };
    for (u32 i = 0; i < 50 && !hit; ++i)
        h.sim.step();
    EXPECT_TRUE(hit);
    // No memory traffic for the cleared fill.
    EXPECT_EQ(h.mc->totalBytes(), 0u);
}

TEST(FbCache, CompressedWritebackShrinksTraffic)
{
    McHarness h;
    ZStencilBacking backing;
    backing.bufferBase = 0;
    backing.clearWord = emu::packDepthStencil(1000, 0);
    backing.table.reset(64, BlockState::Cleared);
    backing.compressionEnabled = true;
    f32 hzMax = -1.0f;
    auto onHz = [&](u32, f32 z) { hzMax = z; };
    backing.hzHook = onHz; // Non-owning: the lambda is named so it
                           // outlives the writebacks below.

    FbCache cache("zc", FbCache::Config{16, 4, 256, 4, 4},
                  h.sim.stats().get("zc", "hits"),
                  h.sim.stats().get("zc", "misses"), &backing);

    u32 phase = 0;
    bool flushed = false;
    h.client->tick = [&](Cycle cycle) {
        cache.clock(cycle, h.client->mem, MemClient::ZCache);
        if (phase == 0) {
            if (cache.access(cycle, 0, true) == CacheAccess::Hit) {
                // A uniform (clear-value) tile: compresses 1:4.
                cache.markDirty(0);
                phase = 1;
            }
        } else if (!flushed) {
            flushed = cache.flushStep(cycle, h.client->mem,
                                      MemClient::ZCache);
        }
    };
    for (u32 i = 0; i < 400 && !flushed; ++i)
        h.sim.step();
    ASSERT_TRUE(flushed);
    // 64 bytes written, not 256.
    EXPECT_EQ(h.mc->totalBytes(), 64u);
    EXPECT_EQ(backing.table.get(0), BlockState::CompQuarter);
    EXPECT_NEAR(hzMax,
                1000.0f / emu::maxDepthValue, 1e-6);
}

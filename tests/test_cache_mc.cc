/**
 * @file
 * Unit tests for the memory controller and the framebuffer caches,
 * driven through a harness box.
 */

#include <cstring>
#include <gtest/gtest.h>

#include "gpu/cache.hh"
#include "gpu/z_stencil_test.hh"
#include "gpu/memory_controller.hh"
#include "sim/simulator.hh"

using namespace attila;
using namespace attila::gpu;

namespace
{

/** Host box owning a MemPort (and optionally a cache). */
class ClientBox : public sim::Box
{
  public:
    ClientBox(sim::SignalBinder& binder, sim::StatisticManager& stats,
              const GpuConfig& config, const std::string& port)
        : Box(binder, stats, "client")
    {
        mem.init(*this, binder, port, config.memoryRequestQueue);
    }

    void
    update(Cycle cycle) override
    {
        mem.clock(cycle);
        if (tick)
            tick(cycle);
    }

    MemPort mem;
    std::function<void(Cycle)> tick;
};

struct McHarness
{
    explicit McHarness(GpuConfig cfg = GpuConfig::baseline())
        : config(cfg), memory(1 << 20)
    {
        client = std::make_unique<ClientBox>(
            sim.binder(), sim.stats(), config, "mc.test");
        mc = std::make_unique<MemoryController>(
            sim.binder(), sim.stats(), config, memory,
            std::vector<std::string>{"mc.test"});
        sim.addBox(client.get());
        sim.addBox(mc.get());
    }

    GpuConfig config;
    emu::GpuMemory memory;
    sim::Simulator sim;
    std::unique_ptr<ClientBox> client;
    std::unique_ptr<MemoryController> mc;
};

} // anonymous namespace

TEST(MemoryController, WriteThenReadRoundTrip)
{
    McHarness h;

    std::vector<u8> payload(256);
    for (u32 i = 0; i < 256; ++i)
        payload[i] = static_cast<u8>(i ^ 0x5a);

    MemTransactionPtr response;
    h.client->tick = [&](Cycle cycle) {
        static bool wroteSent = false;
        static bool readSent = false;
        while (h.client->mem.hasResponse()) {
            auto txn = h.client->mem.popResponse(cycle);
            if (txn->isRead)
                response = txn;
        }
        if (!wroteSent && h.client->mem.canRequest(cycle)) {
            auto txn = std::make_shared<MemTransaction>();
            txn->isRead = false;
            txn->address = 0x1000;
            txn->size = 256;
            txn->data = payload;
            h.client->mem.request(cycle, txn);
            wroteSent = true;
        } else if (wroteSent && !readSent && response == nullptr &&
                   h.client->mem.idle() &&
                   h.client->mem.canRequest(cycle)) {
            auto txn = std::make_shared<MemTransaction>();
            txn->isRead = true;
            txn->address = 0x1000;
            txn->size = 256;
            h.client->mem.request(cycle, txn);
            readSent = true;
        }
    };

    for (u32 i = 0; i < 500 && !response; ++i)
        h.sim.step();
    ASSERT_NE(response, nullptr);
    EXPECT_EQ(response->data, payload);
    // Functional memory also holds the bytes.
    u8 probe = 0;
    h.memory.read(0x1000 + 17, 1, &probe);
    EXPECT_EQ(probe, static_cast<u8>(17 ^ 0x5a));
}

TEST(MemoryController, BandwidthBound)
{
    // Reading N bytes through C channels of B bytes/cycle takes at
    // least N / (C*B) cycles.
    McHarness h;
    const u32 totalBytes = 16 * 256;
    u32 responses = 0;
    u32 sent = 0;
    h.client->tick = [&](Cycle cycle) {
        while (h.client->mem.hasResponse()) {
            h.client->mem.popResponse(cycle);
            ++responses;
        }
        while (sent < 16 && h.client->mem.canRequest(cycle)) {
            auto txn = std::make_shared<MemTransaction>();
            txn->isRead = true;
            txn->address = sent * 256;
            txn->size = 256;
            h.client->mem.request(cycle, txn);
            ++sent;
        }
    };
    u64 cycles = 0;
    while (responses < 16 && cycles < 5000) {
        h.sim.step();
        ++cycles;
    }
    ASSERT_EQ(responses, 16u);
    const u64 minCycles = totalBytes /
                          (h.config.memoryChannels *
                           h.config.channelBytesPerCycle);
    EXPECT_GE(cycles, minCycles);
    // And not paying more than ~4x overhead for page/turnaround.
    EXPECT_LE(cycles, minCycles * 6);
    EXPECT_EQ(h.mc->totalBytes(), totalBytes);
}

TEST(MemoryController, ChannelInterleaving)
{
    McHarness h;
    // Consecutive 256-byte stripes map to consecutive channels.
    const auto* stat =
        h.sim.stats().find("MemoryController.pageOpens");
    ASSERT_NE(stat, nullptr);
    // (Smoke check through the stat interface; detailed mapping is
    // architectural: addr / 256 % channels.)
    GpuConfig cfg;
    EXPECT_EQ((0 / cfg.channelInterleave) % cfg.memoryChannels, 0u);
    EXPECT_EQ((256 / cfg.channelInterleave) % cfg.memoryChannels,
              1u);
    EXPECT_EQ((1024 / cfg.channelInterleave) % cfg.memoryChannels,
              0u);
}

// ===== FbCache ======================================================

namespace
{

struct CacheHarness
{
    explicit CacheHarness(
        FbCache::Config cfg = FbCache::Config{16, 4, 256, 4, 4})
        : h(),
          cache("testcache", cfg,
                h.sim.stats().get("cache", "hits"),
                h.sim.stats().get("cache", "misses"))
    {
        h.client->tick = [this](Cycle cycle) {
            cache.clock(cycle, h.client->mem, MemClient::ZCache);
            if (step)
                step(cycle);
        };
    }

    void
    run(u32 cycles)
    {
        for (u32 i = 0; i < cycles; ++i)
            h.sim.step();
    }

    McHarness h;
    FbCache cache;
    std::function<void(Cycle)> step;
};

} // anonymous namespace

TEST(FbCache, Geometry)
{
    CacheHarness ch;
    EXPECT_EQ(ch.cache.lineCount(), 64u); // 16KB / 256B.
    EXPECT_EQ(ch.cache.sets(), 16u);
    EXPECT_EQ(ch.cache.ways(), 4u);
}

TEST(FbCache, MissThenHit)
{
    CacheHarness ch;
    // Seed memory.
    for (u32 i = 0; i < 256; ++i)
        ch.h.memory.data()[0x2000 + i] = static_cast<u8>(i);

    CacheAccess first = CacheAccess::Blocked;
    CacheAccess eventual = CacheAccess::Blocked;
    ch.step = [&](Cycle cycle) {
        const CacheAccess a = ch.cache.access(cycle, 0x2010, false);
        if (first == CacheAccess::Blocked)
            first = a;
        eventual = a;
    };
    ch.run(100);
    EXPECT_EQ(first, CacheAccess::Miss);
    EXPECT_EQ(eventual, CacheAccess::Hit);
    EXPECT_EQ(*ch.cache.wordPtr(0x2010), 0x10);
}

TEST(FbCache, WritebackOnEviction)
{
    CacheHarness ch;
    // Fill one set beyond its ways with dirty lines; evicted dirty
    // data must land in memory.
    // Lines mapping to set 0: addresses k * 16 * 256.
    std::vector<u32> addrs;
    for (u32 k = 0; k < 6; ++k)
        addrs.push_back(k * 16 * 256);

    u32 phase = 0;
    ch.step = [&](Cycle cycle) {
        if (phase >= addrs.size())
            return;
        const CacheAccess a =
            ch.cache.access(cycle, addrs[phase], true);
        if (a == CacheAccess::Hit) {
            *ch.cache.wordPtr(addrs[phase]) =
                static_cast<u8>(0xc0 + phase);
            ch.cache.markDirty(addrs[phase]);
            ++phase;
        }
    };
    ch.run(600);
    ASSERT_EQ(phase, addrs.size());
    // Wait for pending writebacks.
    ch.step = nullptr;
    ch.run(200);
    // The first two lines were evicted (6 > 4 ways): their bytes
    // must be in memory now.
    EXPECT_EQ(ch.h.memory.data()[addrs[0]], 0xc0);
    EXPECT_EQ(ch.h.memory.data()[addrs[1]], 0xc1);
}

TEST(FbCache, FlushWritesAllDirtyLines)
{
    CacheHarness ch;
    u32 phase = 0;
    bool flushed = false;
    ch.step = [&](Cycle cycle) {
        if (phase < 3) {
            const u32 addr = phase * 256;
            if (ch.cache.access(cycle, addr, true) ==
                CacheAccess::Hit) {
                *ch.cache.wordPtr(addr) = static_cast<u8>(9 + phase);
                ch.cache.markDirty(addr);
                ++phase;
            }
        } else if (!flushed) {
            flushed = ch.cache.flushStep(cycle, ch.h.client->mem,
                                         MemClient::ZCache);
        }
    };
    ch.run(800);
    ASSERT_TRUE(flushed);
    EXPECT_EQ(ch.h.memory.data()[0], 9);
    EXPECT_EQ(ch.h.memory.data()[256], 10);
    EXPECT_EQ(ch.h.memory.data()[512], 11);
}

TEST(FbCache, PortLimit)
{
    CacheHarness ch;
    bool done = false;
    ch.step = [&](Cycle cycle) {
        if (done)
            return;
        // Warm one line.
        if (ch.cache.access(cycle, 0, false) != CacheAccess::Hit)
            return;
        // 4 ports: the 4th extra access this cycle must block.
        EXPECT_EQ(ch.cache.access(cycle, 0, false),
                  CacheAccess::Hit);
        EXPECT_EQ(ch.cache.access(cycle, 0, false),
                  CacheAccess::Hit);
        EXPECT_EQ(ch.cache.access(cycle, 0, false),
                  CacheAccess::Hit);
        EXPECT_EQ(ch.cache.access(cycle, 0, false),
                  CacheAccess::Blocked);
        done = true;
    };
    ch.run(100);
    EXPECT_TRUE(done);
}

TEST(FbCache, ClearedBlockBackingNeedsNoMemory)
{
    // A ZStencilBacking with a cleared block state fills lines
    // locally.
    McHarness h;
    ZStencilBacking backing;
    backing.bufferBase = 0;
    backing.clearWord = emu::packDepthStencil(12345, 7);
    backing.table.reset(64, BlockState::Cleared);
    FbCache cache("zc", FbCache::Config{16, 4, 256, 4, 4},
                  h.sim.stats().get("zc", "hits"),
                  h.sim.stats().get("zc", "misses"), &backing);

    bool hit = false;
    h.client->tick = [&](Cycle cycle) {
        cache.clock(cycle, h.client->mem, MemClient::ZCache);
        if (!hit &&
            cache.access(cycle, 0x100, false) == CacheAccess::Hit) {
            hit = true;
            u32 word;
            std::memcpy(&word, cache.wordPtr(0x100), 4);
            EXPECT_EQ(word, backing.clearWord);
        }
    };
    for (u32 i = 0; i < 50 && !hit; ++i)
        h.sim.step();
    EXPECT_TRUE(hit);
    // No memory traffic for the cleared fill.
    EXPECT_EQ(h.mc->totalBytes(), 0u);
}

TEST(FbCache, CompressedWritebackShrinksTraffic)
{
    McHarness h;
    ZStencilBacking backing;
    backing.bufferBase = 0;
    backing.clearWord = emu::packDepthStencil(1000, 0);
    backing.table.reset(64, BlockState::Cleared);
    backing.compressionEnabled = true;
    f32 hzMax = -1.0f;
    auto onHz = [&](u32, f32 z) { hzMax = z; };
    backing.hzHook = onHz; // Non-owning: the lambda is named so it
                           // outlives the writebacks below.

    FbCache cache("zc", FbCache::Config{16, 4, 256, 4, 4},
                  h.sim.stats().get("zc", "hits"),
                  h.sim.stats().get("zc", "misses"), &backing);

    u32 phase = 0;
    bool flushed = false;
    h.client->tick = [&](Cycle cycle) {
        cache.clock(cycle, h.client->mem, MemClient::ZCache);
        if (phase == 0) {
            if (cache.access(cycle, 0, true) == CacheAccess::Hit) {
                // A uniform (clear-value) tile: compresses 1:4.
                cache.markDirty(0);
                phase = 1;
            }
        } else if (!flushed) {
            flushed = cache.flushStep(cycle, h.client->mem,
                                      MemClient::ZCache);
        }
    };
    for (u32 i = 0; i < 400 && !flushed; ++i)
        h.sim.step();
    ASSERT_TRUE(flushed);
    // 64 bytes written, not 256.
    EXPECT_EQ(h.mc->totalBytes(), 64u);
    EXPECT_EQ(backing.table.get(0), BlockState::CompQuarter);
    EXPECT_NEAR(hzMax,
                1000.0f / emu::maxDepthValue, 1e-6);
}

TEST(FbCache, MaxOutstandingSaturationBlocks)
{
    // maxOutstanding = 4: a 5th concurrent miss must report Blocked
    // until a fill slot frees up, then succeed.
    CacheHarness ch;
    bool checked = false;
    bool fifthServed = false;
    ch.step = [&](Cycle cycle) {
        if (!checked) {
            // 5 distinct lines in 5 distinct sets; misses consume
            // MSHR slots, not ports.
            EXPECT_EQ(ch.cache.access(cycle, 0x000, false),
                      CacheAccess::Miss);
            EXPECT_EQ(ch.cache.access(cycle, 0x100, false),
                      CacheAccess::Miss);
            EXPECT_EQ(ch.cache.access(cycle, 0x200, false),
                      CacheAccess::Miss);
            EXPECT_EQ(ch.cache.access(cycle, 0x300, false),
                      CacheAccess::Miss);
            EXPECT_EQ(ch.cache.access(cycle, 0x400, false),
                      CacheAccess::Blocked);
            checked = true;
        } else if (!fifthServed) {
            fifthServed = ch.cache.access(cycle, 0x400, false) ==
                          CacheAccess::Hit;
        }
    };
    ch.run(200);
    EXPECT_TRUE(checked);
    EXPECT_TRUE(fifthServed);
}

TEST(FbCache, EvictionNeverPicksFillingLine)
{
    // 8 fill slots but only 4 ways: once every way of a set is
    // Filling, a further miss to that set must block rather than
    // steal a line whose fill is still in flight.
    CacheHarness ch(FbCache::Config{16, 4, 256, 4, 8});
    for (u32 k = 0; k < 4; ++k) {
        for (u32 i = 0; i < 256; ++i) {
            ch.h.memory.data()[k * 16 * 256 + i] =
                static_cast<u8>(0xa0 + k);
        }
    }
    bool checked = false;
    u32 hits = 0;
    ch.step = [&](Cycle cycle) {
        if (!checked) {
            // 4 misses filling every way of set 0...
            for (u32 k = 0; k < 4; ++k) {
                EXPECT_EQ(
                    ch.cache.access(cycle, k * 16 * 256, false),
                    CacheAccess::Miss);
            }
            // ...leave no victim for a 5th line of the same set.
            EXPECT_EQ(ch.cache.access(cycle, 4 * 16 * 256, false),
                      CacheAccess::Blocked);
            checked = true;
            return;
        }
        // Every fill must complete with its own data intact.
        hits = 0;
        for (u32 k = 0; k < 4; ++k) {
            if (ch.cache.access(cycle, k * 16 * 256, false) ==
                CacheAccess::Hit) {
                EXPECT_EQ(*ch.cache.wordPtr(k * 16 * 256),
                          static_cast<u8>(0xa0 + k));
                ++hits;
            }
        }
    };
    ch.run(300);
    EXPECT_TRUE(checked);
    EXPECT_EQ(hits, 4u);
}

TEST(FbCache, FlushRoundTripLeavesCacheIdle)
{
    // Dirty lines -> flush -> cache idle, memory holds the data and
    // a re-access misses cleanly and refills the written values.
    CacheHarness ch;
    u32 phase = 0;
    bool flushed = false;
    bool refilled = false;
    ch.step = [&](Cycle cycle) {
        if (phase < 2) {
            const u32 addr = phase * 256;
            if (ch.cache.access(cycle, addr, true) ==
                CacheAccess::Hit) {
                *ch.cache.wordPtr(addr) =
                    static_cast<u8>(0x40 + phase);
                ch.cache.markDirty(addr);
                ++phase;
            }
        } else if (!flushed) {
            flushed = ch.cache.flushStep(cycle, ch.h.client->mem,
                                         MemClient::ZCache);
            if (flushed) {
                EXPECT_TRUE(ch.cache.idle());
            }
        } else if (!refilled) {
            refilled =
                ch.cache.access(cycle, 0, false) == CacheAccess::Hit;
            if (refilled) {
                EXPECT_EQ(*ch.cache.wordPtr(0), 0x40);
            }
        }
    };
    ch.run(800);
    ASSERT_TRUE(flushed);
    EXPECT_EQ(ch.h.memory.data()[0], 0x40);
    EXPECT_EQ(ch.h.memory.data()[256], 0x41);
    EXPECT_TRUE(refilled);
    // A second flush with nothing dirty completes immediately-ish
    // and leaves the cache idle again.
    bool flushed2 = false;
    ch.step = [&](Cycle cycle) {
        if (!flushed2) {
            flushed2 = ch.cache.flushStep(cycle, ch.h.client->mem,
                                          MemClient::ZCache);
        }
    };
    ch.run(100);
    EXPECT_TRUE(flushed2);
    EXPECT_TRUE(ch.cache.idle());
}

TEST(FbCache, WriteAllocateDirtyTracking)
{
    // A line allocated forWrite is written back on flush; a line
    // only read (never marked dirty) is not.
    CacheHarness ch;
    for (u32 i = 0; i < 256; ++i) {
        ch.h.memory.data()[0x0000 + i] = 0x11;
        ch.h.memory.data()[0x8000 + i] = 0x22;
    }
    u32 phase = 0;
    bool flushed = false;
    ch.step = [&](Cycle cycle) {
        if (phase == 0) {
            if (ch.cache.access(cycle, 0x0000, true) ==
                CacheAccess::Hit) {
                *ch.cache.wordPtr(0x0000) = 0x77;
                ++phase;
            }
        } else if (phase == 1) {
            if (ch.cache.access(cycle, 0x8000, false) ==
                CacheAccess::Hit) {
                // Poke the clean line behind the cache's back: the
                // flush must NOT write it out.
                *ch.cache.wordPtr(0x8000) = 0x99;
                ++phase;
            }
        } else if (!flushed) {
            flushed = ch.cache.flushStep(cycle, ch.h.client->mem,
                                         MemClient::ZCache);
        }
    };
    ch.run(800);
    ASSERT_TRUE(flushed);
    // Write-allocated line landed in memory; clean line did not.
    EXPECT_EQ(ch.h.memory.data()[0x0000], 0x77);
    EXPECT_EQ(ch.h.memory.data()[0x8000], 0x22);
}

TEST(FbCache, InvalidateAllCancelsInFlightFills)
{
    // Regression: invalidateAll() while a fill is in flight must not
    // let the eventual memory response resurrect a stale line.
    CacheHarness ch;
    for (u32 i = 0; i < 256; ++i)
        ch.h.memory.data()[0x3000 + i] = 0x5c;

    u32 phase = 0;
    bool probed = false;
    bool refilled = false;
    ch.step = [&](Cycle cycle) {
        switch (phase) {
          case 0:
            // Start the miss; the fill goes out to memory.
            EXPECT_EQ(ch.cache.access(cycle, 0x3000, false),
                      CacheAccess::Miss);
            phase = 1;
            break;
          case 1:
            // Wait until the fill is issued, then clear.
            if (!ch.cache.idle() && ch.cache.cancelledFills() == 0) {
                ch.cache.invalidateAll();
                EXPECT_EQ(ch.cache.cancelledFills(), 1u);
                EXPECT_FALSE(ch.cache.idle());
                phase = 2;
            }
            break;
          case 2:
            // Drain: the cancelled fill's response arrives and is
            // discarded.  No accesses here — a probe would start a
            // fresh (legitimate) fill and muddy the check below.
            if (ch.cache.cancelledFills() == 0 && ch.cache.idle())
                phase = 3;
            break;
          case 3:
            // Had the discarded response resurrected the line, this
            // first access would Hit on stale data.  It must Miss,
            // then refill with the real memory contents.
            if (!refilled) {
                const CacheAccess a =
                    ch.cache.access(cycle, 0x3000, false);
                if (!probed) {
                    EXPECT_EQ(a, CacheAccess::Miss);
                    probed = true;
                }
                if (a == CacheAccess::Hit) {
                    EXPECT_EQ(*ch.cache.wordPtr(0x3000), 0x5c);
                    refilled = true;
                }
            }
            break;
        }
    };
    ch.run(400);
    EXPECT_EQ(ch.cache.cancelledFills(), 0u);
    EXPECT_TRUE(probed);
    EXPECT_TRUE(refilled);
}

TEST(FbCache, FastPathOffMatchesFastPathOn)
{
    // The host fast path (pooled transactions, batched stats) must
    // not change modeled timing: the same access script produces the
    // same hit cycle and the same stat totals either way.
    auto script = [](bool fastPath, u64& hitCycle, u64& hits,
                     u64& misses) {
        CacheHarness ch(
            FbCache::Config{16, 4, 256, 4, 4, fastPath});
        for (u32 i = 0; i < 256; ++i)
            ch.h.memory.data()[0x2000 + i] = static_cast<u8>(i);
        hitCycle = 0;
        ch.step = [&](Cycle cycle) {
            if (hitCycle == 0 &&
                ch.cache.access(cycle, 0x2000, false) ==
                    CacheAccess::Hit) {
                hitCycle = cycle;
            }
        };
        ch.run(200);
        hits = ch.h.sim.stats().get("cache", "hits").total();
        misses = ch.h.sim.stats().get("cache", "misses").total();
    };
    u64 hitFast = 0, hFast = 0, mFast = 0;
    u64 hitRef = 0, hRef = 0, mRef = 0;
    script(true, hitFast, hFast, mFast);
    script(false, hitRef, hRef, mRef);
    EXPECT_NE(hitFast, 0u);
    EXPECT_EQ(hitFast, hitRef);
    EXPECT_EQ(hFast, hRef);
    EXPECT_EQ(mFast, mRef);
}

TEST(FbCache, SteadyStateMissesAllocateNothing)
{
    // After a warm-up round, the pooled fast path recycles its fill
    // and writeback transactions: the pool's allocation counter must
    // plateau even as misses keep streaming.
    CacheHarness ch;
    u32 round = 0;
    u32 phase = 0;
    u64 allocsAfterWarmup = 0;
    ch.step = [&](Cycle cycle) {
        if (round >= 6)
            return;
        // Walk 8 sets' worth of lines, dirtying each: every round
        // after the first evicts and refills, producing a steady
        // miss + writeback stream.
        const u32 addr = (round & 1 ? 0x20000 : 0) + phase * 256;
        if (ch.cache.access(cycle, addr, true) == CacheAccess::Hit) {
            ch.cache.markDirty(addr);
            if (++phase == 64) {
                phase = 0;
                ++round;
                if (round == 2)
                    allocsAfterWarmup = ch.cache.txnAllocations();
            }
        }
    };
    ch.run(60000);
    ASSERT_GE(round, 6u);
    EXPECT_GT(ch.cache.txnAllocations(), 0u);
    EXPECT_EQ(ch.cache.txnAllocations(), allocsAfterWarmup);
}

/**
 * @file
 * Tests for the text-configuration layer: the ConfigFile parser, the
 * GpuConfig round-trip, composite cache-geometry keys, layered
 * overrides and the shipped example configs.
 */

#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>

#include "gpu/gpu_config.hh"
#include "sim/config_file.hh"

using namespace attila;
using namespace attila::gpu;

namespace
{

/** Run @p f and return the ConfigError message it throws. */
template <typename F>
std::string
errorOf(F&& f)
{
    try {
        f();
    } catch (const sim::ConfigError& e) {
        return e.what();
    }
    ADD_FAILURE() << "expected a ConfigError";
    return "";
}

} // anonymous namespace

// ===== ConfigFile =================================================

TEST(ConfigFile, ParsesSectionsCommentsAndTypes)
{
    sim::ConfigFile cfg;
    cfg.parseString("# leading comment\n"
                    "[alpha]\n"
                    "count = 42   ; trailing comment\n"
                    "flag = true\n"
                    "name = hello\n"
                    "\n"
                    "[beta]\n"
                    "big = 0x10\n",
                    "test.cfg");
    EXPECT_EQ(cfg.getU32("alpha.count", 0), 42u);
    EXPECT_TRUE(cfg.getBool("alpha.flag", false));
    EXPECT_EQ(cfg.getString("alpha.name"), "hello");
    EXPECT_EQ(cfg.getU64("beta.big", 0), 16u); // Base-0 parsing.
    EXPECT_FALSE(cfg.has("beta.absent"));
    EXPECT_EQ(cfg.getU32("beta.absent", 7), 7u); // Default flows.
}

TEST(ConfigFile, DiagnosticsCarryFileAndLine)
{
    sim::ConfigFile cfg;
    const std::string msg = errorOf([&] {
        cfg.parseString("[memory]\nchannels == 4\n", "bad.cfg");
        cfg.getU32("memory.channels", 0);
    });
    EXPECT_NE(msg.find("bad.cfg:2"), std::string::npos) << msg;
}

TEST(ConfigFile, BadValueNamesKeyAndOrigin)
{
    sim::ConfigFile cfg;
    cfg.parseString("[memory]\nchannels = lots\n", "sweep.cfg");
    const std::string msg =
        errorOf([&] { cfg.getU32("memory.channels", 0); });
    EXPECT_NE(msg.find("sweep.cfg:2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("memory.channels"), std::string::npos) << msg;
}

TEST(ConfigFile, UnknownKeysAreFatalWithOrigin)
{
    sim::ConfigFile cfg;
    cfg.parseString("[memory]\nchannels = 4\nchanels = 8\n",
                    "typo.cfg");
    cfg.getU32("memory.channels", 0);
    const std::string msg =
        errorOf([&] { cfg.failOnUnconsumed("GpuConfig"); });
    EXPECT_NE(msg.find("typo.cfg:3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("memory.chanels"), std::string::npos) << msg;
    // The consumed key is not reported.
    EXPECT_EQ(msg.find("'memory.channels'"), std::string::npos)
        << msg;
}

TEST(ConfigFile, LayeringLaterWins)
{
    sim::ConfigFile cfg;
    cfg.parseString("[engine]\nthreads = 2\n", "base.cfg");
    cfg.setOverride("engine.threads=8", "--set");
    EXPECT_EQ(cfg.getU32("engine.threads", 0), 8u);
}

TEST(ConfigFile, DumpRoundTrips)
{
    sim::ConfigFile cfg;
    cfg.parseString("[b]\ny = 2\n[a]\nx = 1\nz = hello\n", "in.cfg");
    const std::string text = cfg.dump();
    sim::ConfigFile again;
    again.parseString(text, "again.cfg");
    EXPECT_EQ(again.dump(), text);
    EXPECT_EQ(again.getU32("a.x", 0), 1u);
    EXPECT_EQ(again.getU32("b.y", 0), 2u);
}

// ===== CacheGeometry ==============================================

TEST(CacheGeometry, ParsesGpgpuSimSpec)
{
    const CacheGeometry g = CacheGeometry::parse("32:128:8,A:16");
    EXPECT_EQ(g.sets, 32u);
    EXPECT_EQ(g.lineBytes, 128u);
    EXPECT_EQ(g.ways, 8u);
    EXPECT_EQ(g.mshr, 16u);
    EXPECT_EQ(g.sizeKB(), 32u);
    // The MSHR clause is optional.
    EXPECT_EQ(CacheGeometry::parse("16:256:4").mshr, 4u);
    // format() round-trips.
    EXPECT_EQ(CacheGeometry::parse(g.format()), g);
}

TEST(CacheGeometry, RejectsMalformedSpecs)
{
    EXPECT_NE(errorOf([] { CacheGeometry::parse("16:256"); })
                  .find("<sets>:<bsize>:<assoc>"),
              std::string::npos);
    // Pow2 validation is preserved from the SoA cache geometry.
    EXPECT_NE(errorOf([] { CacheGeometry::parse("12:256:4"); })
                  .find("power of two"),
              std::string::npos);
    EXPECT_NE(errorOf([] { CacheGeometry::parse("16:100:4"); })
                  .find("power of two"),
              std::string::npos);
    EXPECT_THROW(CacheGeometry::parse("16:256:0"),
                 sim::ConfigError);
    EXPECT_THROW(CacheGeometry::parse("16:256:4,A:0"),
                 sim::ConfigError);
    EXPECT_THROW(CacheGeometry::parse("16:256:4,A:64"),
                 sim::ConfigError);
    EXPECT_THROW(CacheGeometry::parse("16:256:4,AB:4"),
                 sim::ConfigError);
}

// ===== GpuConfig round-trip =======================================

TEST(GpuConfigText, RoundTripReproducesBaseline)
{
    const GpuConfig base = GpuConfig::baseline();
    const GpuConfig again =
        GpuConfig::fromConfigText(base.toConfigText());
    EXPECT_EQ(again, base);
    EXPECT_EQ(again.configHash(), base.configHash());
}

TEST(GpuConfigText, RoundTripReproducesModifiedConfigs)
{
    GpuConfig c =
        GpuConfig::caseStudy(ShaderScheduling::InOrderQueue, 3);
    c.memModel = MemModel::Banked;
    c.dramScheduler = DramSchedPolicy::FrFcfs;
    c.dramTiming = "nbk=4:RCD=9:CL=7";
    c.fragmentGen = FragmentGenKind::Scanline;
    c.scheduler = SchedulerKind::Parallel;
    c.signalTracePath = "trace.csv";
    c.statsWindow = 1234567;
    const GpuConfig again =
        GpuConfig::fromConfigText(c.toConfigText());
    EXPECT_EQ(again, c);
    EXPECT_NE(c.configHash(), GpuConfig::baseline().configHash());
}

TEST(GpuConfigText, FileRoundTrip)
{
    GpuConfig c = GpuConfig::embedded();
    const std::string path =
        ::testing::TempDir() + "attila_roundtrip.cfg";
    c.toFile(path);
    EXPECT_EQ(GpuConfig::fromFile(path), c);
    std::remove(path.c_str());
}

TEST(GpuConfigText, PartialOverlayKeepsOtherFields)
{
    GpuConfig c = GpuConfig::baseline();
    c.applyText("[memory]\nmemModel = banked\n"
                "dramScheduler = frfcfs\n");
    EXPECT_EQ(c.memModel, MemModel::Banked);
    EXPECT_EQ(c.dramScheduler, DramSchedPolicy::FrFcfs);
    // Everything else still at baseline.
    GpuConfig expect = GpuConfig::baseline();
    expect.memModel = MemModel::Banked;
    expect.dramScheduler = DramSchedPolicy::FrFcfs;
    EXPECT_EQ(c, expect);
}

TEST(GpuConfigText, CompositeGeometryKeySetsDiscreteFields)
{
    GpuConfig c = GpuConfig::baseline();
    c.applyText("[texture]\ncacheGeometry = 32:128:8,A:16\n");
    EXPECT_EQ(c.textureCacheKB, 32u);
    EXPECT_EQ(c.textureCacheLine, 128u);
    EXPECT_EQ(c.textureCacheWays, 8u);
    EXPECT_EQ(c.textureCacheMshr, 16u);
    c.applyText("[rop]\nzCacheGeometry = 16:256:2\n"
                "colorCacheGeometry = 64:64:4,B:8\n");
    EXPECT_EQ(c.zCacheKB, 8u);
    EXPECT_EQ(c.zCacheWays, 2u);
    EXPECT_EQ(c.colorCacheKB, 16u);
    EXPECT_EQ(c.colorCacheLine, 64u);
    EXPECT_EQ(c.colorCacheMshr, 8u);
}

TEST(GpuConfigText, ClockSectionLoadsAndRoundTrips)
{
    // The clock-domain frequencies are real config keys: loadable
    // from the [clock] section, preserved by the canonical dump, and
    // distinguishing in the config hash.
    GpuConfig c = GpuConfig::baseline();
    c.applyText("[clock]\ngpuMHz = 500\nmemoryMHz = 250\n"
                "displayMHz = 100\n");
    EXPECT_EQ(c.clockMHz, 500u);
    EXPECT_EQ(c.memoryClockMHz, 250u);
    EXPECT_EQ(c.displayClockMHz, 100u);

    const std::string dump = c.toConfigText();
    EXPECT_NE(dump.find("gpuMHz = 500"), std::string::npos) << dump;
    EXPECT_NE(dump.find("memoryMHz = 250"), std::string::npos)
        << dump;
    EXPECT_NE(dump.find("displayMHz = 100"), std::string::npos)
        << dump;
    const GpuConfig again = GpuConfig::fromConfigText(dump);
    EXPECT_EQ(again, c);
    EXPECT_NE(c.configHash(), GpuConfig::baseline().configHash());

    // Scheduler knobs ride the same [engine] section.
    c.applySet("engine.workSteal=false");
    c.applySet("engine.partitionSlack=150");
    EXPECT_FALSE(c.schedWorkSteal);
    EXPECT_EQ(c.schedPartitionSlack, 150u);
    EXPECT_EQ(GpuConfig::fromConfigText(c.toConfigText()), c);
}

TEST(GpuConfigText, UnknownKeyIsFatal)
{
    GpuConfig c = GpuConfig::baseline();
    const std::string msg = errorOf([&] {
        c.applyText("[memory]\nchanels = 8\n", "typo.cfg");
    });
    EXPECT_NE(msg.find("typo.cfg:2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown GpuConfig key"), std::string::npos)
        << msg;
}

TEST(GpuConfigText, BadEnumListsChoices)
{
    GpuConfig c = GpuConfig::baseline();
    const std::string msg = errorOf([&] {
        c.applyText("[memory]\ndramScheduler = lifo\n", "bad.cfg");
    });
    EXPECT_NE(msg.find("fifo|frfcfs"), std::string::npos) << msg;
    EXPECT_NE(msg.find("bad.cfg:2"), std::string::npos) << msg;
}

TEST(GpuConfigText, BadDramTimingFailsAtLoad)
{
    GpuConfig c = GpuConfig::baseline();
    EXPECT_THROW(
        c.applyText("[memory]\ndramTiming = nbk=8:BOGUS=3\n"),
        sim::ConfigError);
    // nbk must be a nonzero power of two.
    EXPECT_THROW(c.applyText("[memory]\ndramTiming = nbk=6\n"),
                 sim::ConfigError);
}

TEST(GpuConfigText, ApplySetOverridesSingleKey)
{
    GpuConfig c = GpuConfig::baseline();
    c.applySet("engine.scheduler=parallel");
    c.applySet("memory.frfcfsCap=7");
    EXPECT_EQ(c.scheduler, SchedulerKind::Parallel);
    EXPECT_EQ(c.frfcfsCap, 7u);
    EXPECT_THROW(c.applySet("memory.noSuchKey=1"),
                 sim::ConfigError);
    EXPECT_THROW(c.applySet("missingEquals"), sim::ConfigError);
}

TEST(GpuConfigText, EnvLayerSitsBetweenFileAndSet)
{
    // file sets 2 threads, env overrides to 3, --set wins with 4.
    // The legacy vars sit in the same env layer and would clobber
    // ATTILA_CONFIG_SET; clear them so the CI harness (which runs the
    // whole suite under ATTILA_SCHED_THREADS=4) can't skew this test.
    unsetenv("ATTILA_SCHEDULER");
    unsetenv("ATTILA_SCHED_THREADS");
    GpuConfig c = GpuConfig::baseline();
    c.applyText("[engine]\nthreads = 2\n");
    ASSERT_EQ(setenv("ATTILA_CONFIG_SET", "engine.threads=3", 1), 0);
    c.applyEnvOverrides();
    EXPECT_EQ(c.schedulerThreads, 3u);
    EXPECT_TRUE(c.envApplied);
    c.applySet("engine.threads=4");
    EXPECT_EQ(c.schedulerThreads, 4u);
    unsetenv("ATTILA_CONFIG_SET");
}

TEST(GpuConfigText, ShippedBaselineConfigMatchesCompiledDefaults)
{
    const std::string path = std::string(ATTILA_SOURCE_DIR) +
                             "/examples/configs/baseline_table1.cfg";
    const GpuConfig fromCfg = GpuConfig::fromFile(path);
    EXPECT_EQ(fromCfg, GpuConfig::baseline());
    EXPECT_EQ(fromCfg.configHash(),
              GpuConfig::baseline().configHash());
}

TEST(GpuConfigText, ShippedSweepConfigsAreDistinct)
{
    const std::string dir =
        std::string(ATTILA_SOURCE_DIR) + "/examples/configs/";
    GpuConfig fifo = GpuConfig::baseline();
    fifo.applyFile(dir + "dram_banked_fifo.cfg");
    GpuConfig frfcfs = GpuConfig::baseline();
    frfcfs.applyFile(dir + "dram_banked_frfcfs.cfg");
    EXPECT_EQ(fifo.memModel, MemModel::Banked);
    EXPECT_EQ(frfcfs.memModel, MemModel::Banked);
    EXPECT_EQ(fifo.dramScheduler, DramSchedPolicy::Fifo);
    EXPECT_EQ(frfcfs.dramScheduler, DramSchedPolicy::FrFcfs);
    EXPECT_NE(fifo.configHash(), frfcfs.configHash());
    EXPECT_NE(fifo.configHash(), GpuConfig::baseline().configHash());
}
